(* Batched update ingestion: single-insert vs insert_many throughput.

   The workload is the paper's §5.1 setting pushed to where per-insert
   bookkeeping dominates: an XMark-like document chopped into ~1024
   small segments (Chopper Balanced), ingested into an empty database.
   Each unbatched insert pays its own SB-tree insert, gp-table
   construction and sorted tag-list maintenance — O(segments) work per
   edit — while the batched path (Update_log.insert_batch) pays each
   of those once per batch.  The sweep: engine LD/LS x batch size
   1/8/64/512 x WAL off/on; batch 1 uses Lazy_db.insert, larger sizes
   feed consecutive chunks to Lazy_db.insert_many.

   Beyond the console table, the run writes BENCH_update.json (or the
   --json path): the update-throughput entry of the perf trajectory,
   gated by scripts/bench_gate.sh.  See EXPERIMENTS.md for the
   schema. *)

open Lxu_workload
open Lazy_xml

(* Small document, many segments: ~200 bytes per segment keeps the
   per-element costs (parsing, element-index descent) minor next to
   the per-insert O(segments) bookkeeping — gp-table construction and
   sorted tag-list maintenance — that batching amortizes. *)
let persons = 300 * Bench_util.scale
let target_segments = 1_024 * Bench_util.scale
let repeat = 3

let workload () =
  let text = Xmark.generate_text ~persons ~items:(persons * 3 / 5) ~seed:42 () in
  let edits = Chopper.chop ~text ~segments:target_segments Chopper.Balanced in
  (text, edits)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_bench_update_%d_%d" (Unix.getpid ())
         (incr counter; !counter))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Consecutive chunks of [k] edits, preserving order. *)
let chunks k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let engine_name = function
  | Lazy_db.LD -> "LD"
  | Lazy_db.LS -> "LS"
  | Lazy_db.STD -> "STD"

let build ~engine ~dir ~batch edits =
  let durability = match dir with Some d -> `Wal d | None -> `None in
  let db = Lazy_db.create ~engine ~durability () in
  (match batch with
  | 1 -> List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits
  | k -> List.iter (Lazy_db.insert_many db) (chunks k edits));
  db

let ingest_ms ~engine ~wal ~batch edits =
  let dir = if wal then Some (fresh_dir ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter rm_rf dir)
    (fun () ->
      (* `Wal starts the directory fresh on every create, so samples
         don't accumulate log records across repeats. *)
      Bench_util.measure_min ~repeat (fun () ->
          let db = build ~engine ~dir ~batch edits in
          Lazy_db.close db))

let run () =
  Bench_util.header
    (Printf.sprintf "Batched ingestion: %d chopped segments, LD/LS, batch 1/8/64/512, +/-WAL"
       target_segments);
  let text, edits = workload () in
  let n = List.length edits in
  (* Correctness guard, outside the timing: every batched variant must
     land on the same document and the same query answer as the
     one-at-a-time baseline. *)
  let baseline =
    let db = build ~engine:Lazy_db.LD ~dir:None ~batch:1 edits in
    let c = Lazy_db.count db ~anc:"person" ~desc:"phone" () in
    (Lazy_db.doc_length db, Lazy_db.segment_count db, c)
  in
  let check_variant engine batch =
    let db = build ~engine ~dir:None ~batch edits in
    let got =
      ( Lazy_db.doc_length db,
        Lazy_db.segment_count db,
        Lazy_db.count db ~anc:"person" ~desc:"phone" () )
    in
    if got <> baseline then
      failwith
        (Printf.sprintf "fig_update: %s batch=%d diverged from baseline" (engine_name engine)
           batch)
  in
  Printf.printf "document: %d bytes, %d segments\n\n" (String.length text) n;
  let batches = [ 1; 8; 64; 512 ] in
  Bench_util.columns [ 8; 6; 8; 12; 14; 10 ]
    [ "engine"; "wal"; "batch"; "min ms"; "segs/sec"; "speedup" ];
  let rows =
    List.concat_map
      (fun engine ->
        List.concat_map
          (fun wal ->
            let base_ms = ref 0.0 in
            List.map
              (fun batch ->
                check_variant engine batch;
                let ms = ingest_ms ~engine ~wal ~batch edits in
                if batch = 1 then base_ms := ms;
                let segs_per_sec = if ms > 0.0 then float_of_int n /. (ms /. 1000.0) else 0.0 in
                let speedup = if ms > 0.0 then !base_ms /. ms else 0.0 in
                Bench_util.columns [ 8; 6; 8; 12; 14; 10 ]
                  [
                    engine_name engine;
                    (if wal then "on" else "off");
                    string_of_int batch;
                    Bench_util.fmt_ms ms;
                    Printf.sprintf "%.0f" segs_per_sec;
                    Printf.sprintf "%.2fx" speedup;
                  ];
                (engine, wal, batch, ms, segs_per_sec, speedup))
              batches)
          [ false; true ])
      [ Lazy_db.LD; Lazy_db.LS ]
  in
  let find engine wal batch =
    List.fold_left
      (fun acc (e, w, b, _, sps, _) -> if e = engine && w = wal && b = batch then sps else acc)
      0.0 rows
  in
  let ld_single = find Lazy_db.LD false 1 in
  let ld_batch64 = find Lazy_db.LD false 64 in
  let speedup64 = if ld_single > 0.0 then ld_batch64 /. ld_single else 0.0 in
  let note =
    if speedup64 >= 3.0 then
      Printf.sprintf "meets the >=3x-at-batch-64 target on LD (%.2fx)" speedup64
    else Printf.sprintf "below the 3x-at-batch-64 target on LD (%.2fx)" speedup64
  in
  Printf.printf "\n%s\n" note;
  let open Bench_util in
  let json =
    J_obj
      [
        ("bench", J_str "fig_update");
        ("schema_version", J_int 1);
        ( "workload",
          J_obj
            [
              ("generator", J_str "xmark+chopper");
              ("doc_bytes", J_int (String.length text));
              ("segments", J_int n);
              ("repeat", J_int repeat);
            ] );
        ("machine", J_obj [ ("ocaml", J_str Sys.ocaml_version) ]);
        ( "series",
          J_list
            (List.map
               (fun (engine, wal, batch, ms, sps, speedup) ->
                 J_obj
                   [
                     ("engine", J_str (engine_name engine));
                     ("wal", J_bool wal);
                     ("batch", J_int batch);
                     ("min_ms", J_float ms);
                     ("segs_per_sec", J_float sps);
                     ("speedup_vs_batch1", J_float speedup);
                   ])
               rows) );
        ("ld_batch64_segs_per_sec", J_float ld_batch64);
        ("speedup_batch64_ld", J_float speedup64);
        ("meets_3x_batch64_ld", J_bool (speedup64 >= 3.0));
        ("notes", J_str note);
      ]
  in
  write_json (json_out ~default:"BENCH_update.json") json
