(* Recovery-time target: how fast a crashed database comes back, and
   what a checkpoint buys.

   For a range of update counts N the harness builds a durable
   database (one WAL record per update), then measures:

     wal_replay_ms        recover from an empty base + N-record WAL
     checkpoint_ms        snapshot + rotate at N updates
     snap_recover_ms      recover from snapshot + empty WAL
     mixed_recover_ms     recover from snapshot + N/2-record suffix

   Machine-readable output goes to BENCH_recovery.json (or the path
   given with --json).  The headline claim: checkpointed recovery is
   O(snapshot) instead of O(history), so snap_recover_ms stays far
   below wal_replay_ms as N grows. *)

open Lazy_xml
open Bench_util

let fragment i =
  match i mod 3 with
  | 0 -> "<person><name>p</name><phone>5</phone></person>"
  | 1 -> "<item><price>12</price></item>"
  | _ -> "<note>x</note>"

(* A workload of [n] updates on a durable database rooted in [dir]:
   inserts just inside the root, with every 10th update removing the
   fragment it follows — enough churn to exercise remove records. *)
let apply_workload db n =
  Lazy_db.insert db ~gp:0 "<db></db>";
  for i = 1 to n - 1 do
    let frag = fragment i in
    Lazy_db.insert db ~gp:4 frag;
    if i mod 10 = 0 then Lazy_db.remove db ~gp:4 ~len:(String.length frag)
  done

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "lazyxml_bench_recovery_%d_%d" (Unix.getpid ()) !counter)
    in
    d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let recover_ms dir =
  measure ~repeat:3 (fun () ->
      let db, _ = Lazy_db.recover dir in
      Lazy_db.close db)

let measure_one n =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let db = Lazy_db.create ~durability:(`Wal dir) () in
      apply_workload db n;
      Lazy_db.close db;
      let wal_bytes = (Unix.stat (Lxu_storage.Wal_store.wal_path dir)).Unix.st_size in
      let wal_replay_ms = recover_ms dir in
      (* Reopen for real so checkpoint appends to a live store. *)
      let db, _ = Lazy_db.recover dir in
      let checkpoint_ms = measure ~repeat:3 (fun () -> Lazy_db.checkpoint db) in
      Lazy_db.close db;
      let snap_recover_ms = recover_ms dir in
      let db, _ = Lazy_db.recover dir in
      apply_workload db (n / 2);
      Lazy_db.close db;
      let mixed_recover_ms = recover_ms dir in
      let records_per_sec =
        if wal_replay_ms > 0.0 then float_of_int n /. (wal_replay_ms /. 1000.0) else 0.0
      in
      columns [ 10; 12; 14; 12; 14; 14; 14 ]
        [
          string_of_int n;
          string_of_int wal_bytes;
          fmt_ms wal_replay_ms;
          fmt_ms checkpoint_ms;
          fmt_ms snap_recover_ms;
          fmt_ms mixed_recover_ms;
          Printf.sprintf "%.0f" records_per_sec;
        ];
      J_obj
        [
          ("updates", J_int n);
          ("wal_bytes", J_int wal_bytes);
          ("wal_replay_ms", J_float wal_replay_ms);
          ("checkpoint_ms", J_float checkpoint_ms);
          ("snap_recover_ms", J_float snap_recover_ms);
          ("mixed_recover_ms", J_float mixed_recover_ms);
          ("replay_records_per_sec", J_float records_per_sec);
        ])

let run () =
  header "Recovery: WAL replay vs checkpointed restart";
  Printf.printf "(one WAL record per update; recover = snapshot + suffix replay)\n";
  columns [ 10; 12; 14; 12; 14; 14; 14 ]
    [ "updates"; "wal bytes"; "replay ms"; "ckpt ms"; "snap rec ms"; "mixed rec ms"; "rec/s" ];
  let sizes = List.map (fun n -> n * scale) [ 100; 300; 1000 ] in
  let series = List.map measure_one sizes in
  let json =
    J_obj
      [
        ("bench", J_str "recovery");
        ("scale", J_int scale);
        ("series", J_list series);
        ( "notes",
          J_str
            "wal_replay_ms grows with history; snap_recover_ms tracks snapshot size only — \
             the checkpoint bounds restart time." );
      ]
  in
  write_json (json_out ~default:"BENCH_recovery.json") json
