(* Figures 14 and 15: the XMark experiment.  Figure 14 is the query
   table with result cardinalities; Figure 15 the elapsed join time of
   LS, LD and STD on the XMark-like document chopped into 100 balanced
   segments. *)

open Lxu_workload
open Lxu_seglog

let persons = 2_000 * Bench_util.scale

let run () =
  Bench_util.header "Figures 14-15: XMark-like dataset, queries Q1-Q5";
  let text = Xmark.generate_text ~persons ~items:(persons * 3 / 5) ~seed:42 () in
  (* The paper modified its XMark data to raise cross-segment joins to
     20-30%: we reproduce that by appending, after the chop, extra
     watch/interest segments inside every fourth watches/profile
     element.  Insertion points are just past the element's opening
     '>'; descending order keeps earlier offsets valid. *)
  let extra_inside marker fragment =
    let m = String.length marker in
    let points = ref [] in
    let k = ref 0 in
    for i = 0 to String.length text - m do
      if String.sub text i m = marker then begin
        if !k mod 12 = 0 then points := (String.index_from text i '>' + 1) :: !points;
        incr k
      end
    done;
    List.map (fun gp -> (gp, fragment)) (List.sort (fun a b -> compare b a) !points)
  in
  let edits =
    Chopper.chop ~text ~segments:100 Chopper.Balanced
    @ extra_inside "<watches>" "<watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/><watch open_auction=\"oa0\"/>"
    @ extra_inside "<profile " "<interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/><interest category=\"extra\"/>"
  in
  Printf.printf "document: %d bytes, %d segments (paper: 100MB, 100 segments)\n"
    (String.length text) (Chopper.segment_count edits);
  let ld = Bench_util.load_log Update_log.Lazy_dynamic edits in
  let ls = Bench_util.load_log Update_log.Lazy_static edits in
  Printf.printf "elements: %d\n\n" (Update_log.element_count ld);
  Printf.printf "Figure 14: queries and result cardinality\n";
  Bench_util.columns [ 6; 22; 12; 10 ] [ "query"; "xpath"; "pairs"; "cross" ];
  let cards =
    List.map
      (fun (name, anc, desc) ->
        let pairs, stats = Lxu_join.Lazy_join.run ld ~anc ~desc () in
        let n = Array.length pairs in
        let crosspct =
          if n = 0 then 0 else 100 * stats.Lxu_join.Lazy_join.cross_pairs / n
        in
        Bench_util.columns [ 6; 22; 12; 10 ]
          [ name; anc ^ "//" ^ desc; string_of_int n; string_of_int crosspct ^ "%" ];
        (name, anc, desc, n))
      Xmark.queries
  in
  Printf.printf "\nFigure 15: elapsed join time (ms)\n";
  Bench_util.columns [ 6; 22; 12; 12; 12 ] [ "query"; "xpath"; "LS"; "LD"; "STD" ];
  List.iter
    (fun (name, anc, desc, _) ->
      Bench_util.columns [ 6; 22; 12; 12; 12 ]
        [
          name;
          anc ^ "//" ^ desc;
          Bench_util.fmt_ms (Bench_util.time_ls ls ~anc ~desc);
          Bench_util.fmt_ms (Bench_util.time_ld ld ~anc ~desc);
          Bench_util.fmt_ms (Bench_util.time_std ld ~anc ~desc);
        ])
    cards
