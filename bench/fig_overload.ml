(* Overload benchmark: a governed database under a closed-loop client
   sweep at 1x / 4x / 16x the read-admission capacity.  Each client
   domain issues governed count queries back-to-back; the governor
   sheds what does not fit.  Reported per load level: attempts, shed
   rate, and the p50/p99 latency of the queries that completed — the
   graceful-degradation claim in numbers (latency of admitted work
   stays flat while the shed rate absorbs the excess).

   Beyond the console table, the run writes BENCH_overload.json (or
   the --json path): the overload entry of the repository's perf
   trajectory.  See EXPERIMENTS.md for the schema. *)

open Lazy_xml
module Generator = Lxu_workload.Generator
module Rng = Lxu_workload.Rng

let max_readers = 2
let multipliers = [ 1; 4; 16 ]
let requests_per_client = 120 * Bench_util.scale
let vocabulary = [| "a"; "b"; "c"; "d"; "e" |]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan else sorted.(min (n - 1) (p * (n - 1) / 100))

type level = {
  multiplier : int;
  clients : int;
  attempts : int;
  completed : int;
  shed : int;
  shed_rate : float;
  p50_ms : float;
  p99_ms : float;
  elapsed_s : float;
}

let run_level gov ~multiplier =
  let clients = multiplier * max_readers in
  let latencies = Array.make clients [] in
  let sheds = Array.make clients 0 in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init clients (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create ((multiplier * 1009) + i) in
            for _ = 1 to requests_per_client do
              let anc = Rng.pick rng vocabulary in
              let desc = Rng.pick rng vocabulary in
              let q0 = Unix.gettimeofday () in
              match Governor.count gov ~anc ~desc () with
              | Ok _ ->
                latencies.(i) <- ((Unix.gettimeofday () -. q0) *. 1000.) :: latencies.(i)
              | Error (Governor.Overloaded _) -> sheds.(i) <- sheds.(i) + 1
              | Error r -> failwith ("overload bench: " ^ Governor.rejection_to_string r)
            done))
  in
  Array.iter Domain.join domains;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list (Array.to_list latencies |> List.concat) in
  Array.sort compare lat;
  let shed = Array.fold_left ( + ) 0 sheds in
  let attempts = clients * requests_per_client in
  {
    multiplier;
    clients;
    attempts;
    completed = Array.length lat;
    shed;
    shed_rate = float_of_int shed /. float_of_int attempts;
    p50_ms = percentile lat 50;
    p99_ms = percentile lat 99;
    elapsed_s;
  }

let run () =
  Bench_util.header
    (Printf.sprintf "Overload shedding: %d read slots, closed-loop clients at 1x/4x/16x capacity"
       max_readers);
  let config = { Governor.max_readers; max_writer_queue = 8; default_deadline_s = None } in
  let gov = Governor.create ~config ~engine:Lazy_db.LD () in
  let text =
    Generator.generate_text
      ~params:{ Generator.default_params with Generator.tags = vocabulary }
      ~seed:42
      ~target_elements:(4_000 * Bench_util.scale)
      ()
  in
  (match Governor.write gov (fun _guard db -> Lazy_db.insert db ~gp:0 text) with
  | Ok () -> ()
  | Error r -> failwith ("overload bench setup: " ^ Governor.rejection_to_string r));
  Printf.printf "document: %d bytes, %d elements; %d requests per client\n\n" (String.length text)
    (Shared_db.read (Governor.shared gov) Lazy_db.element_count)
    requests_per_client;
  let widths = [ 6; 9; 10; 11; 10; 11; 11 ] in
  Bench_util.columns widths
    [ "load"; "clients"; "attempts"; "completed"; "shed%"; "p50 ms"; "p99 ms" ];
  let levels =
    List.map
      (fun multiplier ->
        let l = run_level gov ~multiplier in
        Bench_util.columns widths
          [
            Printf.sprintf "%dx" l.multiplier;
            string_of_int l.clients;
            string_of_int l.attempts;
            string_of_int l.completed;
            Printf.sprintf "%.1f" (100. *. l.shed_rate);
            Bench_util.fmt_ms l.p50_ms;
            Bench_util.fmt_ms l.p99_ms;
          ];
        l)
      multipliers
  in
  Bench_util.sep ();
  let json =
    Bench_util.(
      J_obj
        [
          ("bench", J_str "overload");
          ("engine", J_str "LD");
          ("max_readers", J_int max_readers);
          ("requests_per_client", J_int requests_per_client);
          ( "levels",
            J_list
              (List.map
                 (fun l ->
                   J_obj
                     [
                       ("multiplier", J_int l.multiplier);
                       ("clients", J_int l.clients);
                       ("attempts", J_int l.attempts);
                       ("completed", J_int l.completed);
                       ("shed", J_int l.shed);
                       ("shed_rate", J_float l.shed_rate);
                       ("p50_ms", J_float l.p50_ms);
                       ("p99_ms", J_float l.p99_ms);
                       ("elapsed_s", J_float l.elapsed_s);
                     ])
                 levels) );
        ])
  in
  Bench_util.write_json (Bench_util.json_out ~default:"BENCH_overload.json") json
