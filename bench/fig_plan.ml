(* Cost-based twig planning benchmark: reversed-selectivity path
   queries where left-to-right evaluation is the worst order.  The
   document is thousands of common <g><a><b/>x4</a></g> groups plus a
   few dozen rare <g><q><a><b><c/></b></a></q></g> groups, chopped
   into ~80 segments, so the rare tags (q, c) are segment-localized:

   - rare-leaf chains (//a//b//c, //a//c, //a/b//c) make naive
     evaluation materialize every common a and the full a//b join
     before the tiny tail prunes it;
   - a rare-root chain (//q//a//b) still pays the full a//b join in
     the middle under the naive order;
   - deep chains (//g//q//a//c) start from the most common tag;
   - //a//b//q is provably empty — the synopsis shows no q below b —
     so the planner answers without running a join;
   - //a//b is the control: plan and naive coincide, bounding planner
     overhead (the never-slower check).

   For each query the run times naive (plan=`Naive), planned
   (plan=`Auto) and the best hand-picked seed (min over `Seed k), and
   verifies all orders return identical extents.  Headline metrics:
   [frac_ge3] — fraction of queries where planned is >= 3x naive —
   and [worst_ratio] — max planned/naive time over all queries
   (planner overhead bound).  Results land in BENCH_plan.json (or the
   --json path), gated by scripts/bench_gate.sh; see EXPERIMENTS.md
   for the schema. *)

open Lazy_xml
module B = Bench_util

let common_groups = 2500 * B.scale
let rare_groups = 40
let segments = 80
let repeat = 7

let build_db () =
  let buf = Buffer.create (common_groups * 32) in
  Buffer.add_string buf "<root>";
  (* Spread the rare groups through the document so they land in
     different segments. *)
  let every = max 1 (common_groups / rare_groups) in
  for i = 1 to common_groups do
    Buffer.add_string buf "<g><a><b/><b/><b/><b/></a></g>";
    if i mod every = 0 then
      Buffer.add_string buf "<g><q><a><b><c/></b></a></q></g>"
  done;
  Buffer.add_string buf "</root>";
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Lxu_workload.Chopper.chop ~text:(Buffer.contents buf) ~segments
       Lxu_workload.Chopper.Balanced);
  db

let queries =
  [
    ("rare_leaf_3", "//a//b//c");
    ("rare_leaf_2", "//a//c");
    ("child_mix", "//a/b//c");
    ("rare_root", "//q//a//b");
    ("deep_chain", "//g//q//a//c");
    ("provably_empty", "//a//b//q");
    ("common_control", "//a//b");
  ]

type row = {
  label : string;
  expr : string;
  matches : int;
  naive_ms : float;
  planned_ms : float;
  best_ms : float;
  fingerprints_ok : bool;
}

let bench_query db (label, expr) =
  let twig = Path_query.parse_exn expr in
  let n = List.length twig in
  let reference = Path_query.eval ~plan:`Naive db twig in
  let ok = ref (Path_query.eval ~plan:`Auto db twig = reference) in
  List.iter
    (fun k -> if Path_query.eval ~plan:(`Seed k) db twig <> reference then ok := false)
    (List.init n Fun.id);
  (* The headline is a ratio of short passes, so the variants are
     timed interleaved — one sample of each per round, best-of kept
     per variant — putting host weather on all of them in proportion
     instead of deciding a single variant's minimum. *)
  let variants = `Naive :: `Auto :: List.init n (fun k -> `Seed k) in
  let mins = Array.make (List.length variants) infinity in
  for _ = 1 to repeat do
    List.iteri
      (fun i plan ->
        let _, ms = B.time_ms (fun () -> ignore (Path_query.eval ~plan db twig)) in
        mins.(i) <- min mins.(i) ms)
      variants
  done;
  let naive_ms = mins.(0) and planned_ms = mins.(1) in
  let best_ms = Array.fold_left min infinity (Array.sub mins 2 n) in
  {
    label;
    expr;
    matches = List.length reference;
    naive_ms;
    planned_ms;
    best_ms;
    fingerprints_ok = !ok;
  }

let run () =
  B.header "plan: cost-based twig planning vs naive order";
  let db = build_db () in
  Printf.printf "document: %d bytes, %d elements, %d segments\n%!"
    (Lazy_db.doc_length db) (Lazy_db.element_count db) (Lazy_db.segment_count db);
  let rows = List.map (bench_query db) queries in
  Printf.printf "%-16s %-14s %9s %10s %10s %9s %8s\n" "query" "expr" "matches"
    "naive ms" "planned ms" "best ms" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-16s %-14s %9d %10.3f %10.3f %9.3f %7.1fx%s\n" r.label r.expr
        r.matches r.naive_ms r.planned_ms r.best_ms (r.naive_ms /. r.planned_ms)
        (if r.fingerprints_ok then "" else "  MISMATCH"))
    rows;
  let frac_ge3 =
    float_of_int (List.length (List.filter (fun r -> r.naive_ms >= 3.0 *. r.planned_ms) rows))
    /. float_of_int (List.length rows)
  in
  let worst_ratio =
    List.fold_left (fun acc r -> max acc (r.planned_ms /. r.naive_ms)) 0.0 rows
  in
  let fingerprints_ok = List.for_all (fun r -> r.fingerprints_ok) rows in
  Printf.printf
    "frac >=3x: %.3f   worst planned/naive ratio: %.3f   fingerprints %s\n" frac_ge3
    worst_ratio
    (if fingerprints_ok then "identical" else "DIVERGED");
  let json =
    B.J_obj
      [
        ("bench", B.J_str "plan");
        ("scale", B.J_int B.scale);
        ("common_groups", B.J_int common_groups);
        ("rare_groups", B.J_int rare_groups);
        ("segments", B.J_int segments);
        ( "queries",
          B.J_list
            (List.map
               (fun r ->
                 B.J_obj
                   [
                     ("label", B.J_str r.label);
                     ("query", B.J_str r.expr);
                     ("matches", B.J_int r.matches);
                     ("naive_ms", B.J_float r.naive_ms);
                     ("planned_ms", B.J_float r.planned_ms);
                     ("best_ms", B.J_float r.best_ms);
                     ("speedup", B.J_float (r.naive_ms /. r.planned_ms));
                   ])
               rows) );
        ("frac_ge3", B.J_float frac_ge3);
        ("worst_ratio", B.J_float worst_ratio);
        ("fingerprints_ok", B.J_bool fingerprints_ok);
      ]
  in
  B.write_json (B.json_out ~default:"BENCH_plan.json") json
