(* Reproduction harness: one entry per table/figure of the paper's
   evaluation (§5).  Run everything:

     dune exec bench/main.exe

   or a subset:

     dune exec bench/main.exe -- fig12 fig16

   Available targets: fig11a fig11b fig12 fig13 fig14 fig15 fig16
   fig17a fig17b fig17c joins cache labels boxes micro parallel
   recovery overload update mvcc maint plan paged.  (fig14 and fig15
   share one workload and always run together.)

   Set LAZYXML_BENCH_SCALE=k to multiply the key dataset sizes of
   figs 12-16 by k (paper-scale runs take minutes).

   --json <path> redirects the machine-readable output of figures
   that emit one ([parallel] -> BENCH_join.json, [cache] ->
   BENCH_cache.json, [update] -> BENCH_update.json, [mvcc] ->
   BENCH_mvcc.json, [maint] -> BENCH_maint.json, [plan] ->
   BENCH_plan.json, [paged] -> BENCH_paged.json) to <path>; the flag
   is shared wiring for the whole perf trajectory. *)

(* (target, runner-id, runner): fig14 and fig15 share one runner. *)
let targets : (string * string * (unit -> unit)) list =
  [
    ("fig11a", "fig11a", Fig11.run_a);
    ("fig11b", "fig11b", Fig11.run_b);
    ("fig12", "fig12", Fig12.run);
    ("fig13", "fig13", Fig13.run);
    ("fig14", "fig14_15", Fig14_15.run);
    ("fig15", "fig14_15", Fig14_15.run);
    ("fig16", "fig16", Fig16.run);
    ("fig17a", "fig17a", Fig17.run_a);
    ("fig17b", "fig17b", Fig17.run_b);
    ("fig17c", "fig17c", Fig17.run_c);
    ("joins", "joins", Ablation.run_joins);
    ("cache", "cache", Ablation.run_cache);
    ("labels", "labels", Ablation.run_labels);
    ("boxes", "boxes", Ablation.run_boxes);
    ("micro", "micro", Micro.run);
    ("parallel", "parallel", Fig_parallel.run);
    ("recovery", "recovery", Fig_recovery.run);
    ("overload", "overload", Fig_overload.run);
    ("update", "update", Fig_update.run);
    ("mvcc", "mvcc", Fig_mvcc.run);
    ("maint", "maint", Fig_maint.run);
    ("plan", "plan", Fig_plan.run);
    ("paged", "paged", Fig_paged.run);
  ]

(* Strips [--json <path>] (shared by all JSON-emitting figures) from
   the argument list, recording the path in Bench_util. *)
let rec extract_json_flag = function
  | [] -> []
  | "--json" :: path :: rest ->
    Bench_util.json_path := Some path;
    extract_json_flag rest
  | "--json" :: [] ->
    prerr_endline "--json requires a path argument";
    exit 2
  | arg :: rest -> arg :: extract_json_flag rest

let () =
  (* Size the minor heap for measurement (64 MB): the runtime default
     (2 MB) forces minor collections mid-pass on every figure, and the
     promotion of live working state adds milliseconds of identical,
     variance-heavy noise to every variant — drowning the deltas the
     figures exist to show.  This is runtime sizing a long-lived query
     server would use anyway; it applies to all targets and variants
     alike.  OCAMLRUNPARAM cannot override it (Gc.set wins), so edit
     here to experiment. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let requested = extract_json_flag (List.tl (Array.to_list Sys.argv)) in
  let names = List.map (fun (n, _, _) -> n) targets in
  let unknown = List.filter (fun r -> not (List.mem r names)) requested in
  if unknown <> [] then begin
    Printf.eprintf "unknown targets: %s\navailable: %s\n"
      (String.concat " " unknown) (String.concat " " names);
    exit 2
  end;
  Printf.printf
    "Lazy XML Updates (SIGMOD 2005) -- reproduction harness\n\
     Shapes (who wins, growth, crossovers) are the comparison target;\n\
     absolute times differ from the paper's 2005-era hardware.\n";
  let to_run = match requested with [] -> names | rs -> rs in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let _, runner_id, f =
        List.find (fun (n, _, _) -> n = name) targets
      in
      if not (Hashtbl.mem seen runner_id) then begin
        Hashtbl.add seen runner_id ();
        f ()
      end)
    to_run;
  print_newline ()
