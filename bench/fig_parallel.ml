(* Segment-parallel Lazy-Join benchmark: sweeps 1/2/4/8 domains over
   the XMark-like super document chopped into 500+ balanced segments
   (the workload of Figures 14-15 scaled up in segment count) and
   reports the median wall-clock of the five paper queries per domain
   count, plus pairs/sec and the speedup over 1 domain.

   Beyond the console table, the run writes a machine-readable record
   to BENCH_join.json (or the --json path): the seed entry of the
   repository's perf trajectory.  See EXPERIMENTS.md for the schema. *)

open Lxu_workload
open Lxu_seglog
open Lxu_util

let persons = 2_000 * Bench_util.scale
let target_segments = 500 * Bench_util.scale

(* The benchmark document and its edit schedule; shared with the cache
   ablation (bench/ablation.ml) so both measure the same workload. *)
let workload () =
  let text = Xmark.generate_text ~persons ~items:(persons * 3 / 5) ~seed:42 () in
  (* Raise the cross-segment share the way fig14_15 does: extra watch
     and interest segments inserted inside existing elements. *)
  let extra_inside marker fragment =
    let m = String.length marker in
    let points = ref [] in
    let k = ref 0 in
    for i = 0 to String.length text - m do
      if String.sub text i m = marker then begin
        if !k mod 12 = 0 then points := (String.index_from text i '>' + 1) :: !points;
        incr k
      end
    done;
    List.map (fun gp -> (gp, fragment)) (List.sort (fun a b -> compare b a) !points)
  in
  let watch = "<watch open_auction=\"oa0\"/>" in
  let interest = "<interest category=\"extra\"/>" in
  let rep n s = String.concat "" (List.init n (fun _ -> s)) in
  let edits =
    Chopper.chop ~text ~segments:target_segments Chopper.Balanced
    @ extra_inside "<watches>" (rep 16 watch)
    @ extra_inside "<profile " (rep 8 interest)
  in
  (text, edits)

let run () =
  Bench_util.header
    (Printf.sprintf "Parallel Lazy-Join: XMark workload, %d+ segments, 1/2/4/8 domains"
       target_segments);
  let text, edits = workload () in
  let log = Bench_util.load_log Update_log.Lazy_dynamic edits in
  Update_log.prepare_for_query log;
  let segments = Update_log.segment_count log in
  let elements = Update_log.element_count log in
  Printf.printf "document: %d bytes, %d segments, %d elements (host: %d recommended domain(s))\n\n"
    (String.length text) segments elements
    (Domain.recommended_domain_count ());
  let total_pairs =
    List.fold_left
      (fun acc (_, anc, desc) ->
        let pairs, _ = Lxu_join.Lazy_join.run log ~anc ~desc () in
        acc + Array.length pairs)
      0 Xmark.queries
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  Bench_util.columns [ 10; 14; 14; 14 ] [ "domains"; "median ms"; "pairs/sec"; "speedup" ];
  let series =
    List.map
      (fun d ->
        let pool = Domain_pool.create ~size:d () in
        let per_query =
          List.map
            (fun (name, anc, desc) ->
              (name, Bench_util.measure (fun () ->
                   ignore (Lxu_join.Lazy_join.run ~pool log ~anc ~desc ()))))
            Xmark.queries
        in
        Domain_pool.shutdown pool;
        let total_ms = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 per_query in
        (d, total_ms, per_query))
      domain_counts
  in
  let base_ms = match series with (_, ms, _) :: _ -> ms | [] -> 0.0 in
  let rows =
    List.map
      (fun (d, total_ms, per_query) ->
        let pairs_per_sec =
          if total_ms > 0.0 then float_of_int total_pairs /. (total_ms /. 1000.0) else 0.0
        in
        let speedup = if total_ms > 0.0 then base_ms /. total_ms else 0.0 in
        Bench_util.columns [ 10; 14; 14; 14 ]
          [
            string_of_int d;
            Bench_util.fmt_ms total_ms;
            Printf.sprintf "%.0f" pairs_per_sec;
            Printf.sprintf "%.2fx" speedup;
          ];
        (d, total_ms, pairs_per_sec, speedup, per_query))
      series
  in
  let speedup_at_4 =
    List.fold_left (fun acc (d, _, _, s, _) -> if d = 4 then s else acc) 1.0 rows
  in
  let cores = Domain.recommended_domain_count () in
  let note =
    if cores <= 1 then
      Printf.sprintf
        "host exposes a single core (Domain.recommended_domain_count = %d): extra \
         domains only add scheduling overhead, so the >=1.5x target at 4 domains is \
         unreachable on this machine; the numbers document that ceiling"
        cores
    else if speedup_at_4 >= 1.5 then "meets the >=1.5x-at-4-domains target"
    else
      Printf.sprintf
        "below the 1.5x-at-4-domains target on a %d-core host; see per-query medians"
        cores
  in
  Printf.printf "\n%s\n" note;
  let open Bench_util in
  let json =
    J_obj
      [
        ("bench", J_str "fig_parallel");
        ("schema_version", J_int 1);
        ( "workload",
          J_obj
            [
              ("generator", J_str "xmark+chopper");
              ("doc_bytes", J_int (String.length text));
              ("segments", J_int segments);
              ("elements", J_int elements);
              ("total_pairs", J_int total_pairs);
              ( "queries",
                J_list
                  (List.map (fun (n, a, d) -> J_str (Printf.sprintf "%s:%s//%s" n a d))
                     Xmark.queries) );
            ] );
        ( "machine",
          J_obj
            [
              ("recommended_domains", J_int cores);
              ("ocaml", J_str Sys.ocaml_version);
              ( "lxu_domains_env",
                match Domain_pool.env_domains () with
                | Some d -> J_int d
                | None -> J_null );
            ] );
        ( "series",
          J_list
            (List.map
               (fun (d, total_ms, pps, speedup, per_query) ->
                 J_obj
                   [
                     ("domains", J_int d);
                     ("median_ms", J_float total_ms);
                     ("pairs_per_sec", J_float pps);
                     ("speedup_vs_1", J_float speedup);
                     ( "queries",
                       J_list
                         (List.map
                            (fun (name, ms) ->
                              J_obj [ ("name", J_str name); ("median_ms", J_float ms) ])
                            per_query) );
                   ])
               rows) );
        ("speedup_at_4_domains", J_float speedup_at_4);
        ("meets_1_5x_at_4", J_bool (speedup_at_4 >= 1.5));
        ("notes", J_str note);
      ]
  in
  write_json (json_out ~default:"BENCH_join.json") json
