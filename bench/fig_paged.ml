(* Paged-storage benchmark: the fig_parallel XMark workload ingested
   and queried twice — once on the default in-memory indexes, once on
   the shadow-paged backend with a buffer pool deliberately smaller
   than half the document — and compared head to head.

   Three verdicts land in BENCH_paged.json (or the --json path):

   - [mem_pairs_per_sec]: single-domain join throughput of the
     in-memory path, measured exactly as fig_parallel's domains=1 row
     (same workload, same queries).  The gate holds it within 0.95x
     of the committed BENCH_join.json so the storage-backend
     indirection stays free for RAM-resident stores.
   - [warm_ratio]: paged/mem query throughput once the pool is warm
     (every query has run once).  Floor 0.5x — the beyond-RAM path
     may pay for page pins and the odd refill, but not multiples.
   - [hit_rate] + [beyond_ram]: pool hits/lookups over the whole run
     and proof the document really exceeded 2x the pool budget, so
     the warm numbers cannot come from an accidentally RAM-sized
     pool.

   All five query extents are also checked pairwise identical between
   the two backends ([results_ok]) — a throughput win that changes
   answers is a bug, not a result.  See EXPERIMENTS.md for the
   schema; scripts/bench_gate.sh enforces the floors. *)

open Lxu_workload
open Lxu_seglog

(* Half the (unscaled) 1.4 MB document, with margin: beyond-RAM by
   construction, yet big enough that the per-query working set can
   stay resident once warm. *)
let pool_budget = 512 * 1024

let ingest ?backend edits =
  let log = Update_log.create ~mode:Update_log.Lazy_dynamic ?backend () in
  let (), ms =
    Bench_util.time_ms (fun () ->
        List.iter (fun (gp, frag) -> ignore (Update_log.insert log ~gp frag)) edits)
  in
  Update_log.prepare_for_query log;
  (log, ms)

(* Median single-domain wall-clock per query, after one untimed
   warm-up pass (fills the buffer pool / branch caches). *)
let query_pass log =
  List.map
    (fun (name, anc, desc) ->
      ignore (Lxu_join.Lazy_join.run log ~anc ~desc ());
      (name, Bench_util.measure (fun () ->
           ignore (Lxu_join.Lazy_join.run log ~anc ~desc ()))))
    Xmark.queries

let run () =
  Bench_util.header
    (Printf.sprintf "Paged storage: beyond-RAM XMark workload, %d KiB pool vs in-memory"
       (pool_budget / 1024));
  let text, edits = Fig_parallel.workload () in
  let mem_log, mem_ingest_ms = ingest edits in
  let device = Lxu_storage.Sim_file.in_memory () in
  let pstore = Lxu_storage.Page_store.create ~device ~pool_bytes:pool_budget () in
  let backend = Lxu_btree.Storage_backend.Paged { store = pstore; attach = false } in
  let paged_log, paged_ingest_ms = ingest ~backend edits in
  let segments = Update_log.segment_count mem_log in
  let elements = Update_log.element_count mem_log in
  let doc_bytes = String.length text in
  Printf.printf "document: %d bytes, %d segments, %d elements; pool budget %d bytes\n\n"
    doc_bytes segments elements pool_budget;
  (* Same extents on both backends, or the comparison is void. *)
  let results_ok =
    List.for_all
      (fun (_, anc, desc) ->
        let m, _ = Lxu_join.Lazy_join.run mem_log ~anc ~desc () in
        let p, _ = Lxu_join.Lazy_join.run paged_log ~anc ~desc () in
        m = p)
      Xmark.queries
  in
  let total_pairs =
    List.fold_left
      (fun acc (_, anc, desc) ->
        let pairs, _ = Lxu_join.Lazy_join.run mem_log ~anc ~desc () in
        acc + Array.length pairs)
      0 Xmark.queries
  in
  let mem_queries = query_pass mem_log in
  let paged_queries = query_pass paged_log in
  let total ms_list = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 ms_list in
  let mem_ms = total mem_queries and paged_ms = total paged_queries in
  let pps ms = if ms > 0.0 then float_of_int total_pairs /. (ms /. 1000.0) else 0.0 in
  let mem_pps = pps mem_ms and paged_pps = pps paged_ms in
  let warm_ratio = if mem_pps > 0.0 then paged_pps /. mem_pps else 0.0 in
  let stats = Lxu_storage.Page_store.stats pstore in
  let pool = stats.Lxu_storage.Page_store.pool in
  let hit_rate =
    let open Lxu_storage.Buffer_pool in
    if pool.lookups > 0 then float_of_int pool.hits /. float_of_int pool.lookups
    else 0.0
  in
  let beyond_ram = doc_bytes > 2 * pool.Lxu_storage.Buffer_pool.max_bytes in
  Bench_util.columns [ 16; 14; 14; 14 ] [ "query"; "mem ms"; "paged ms"; "ratio" ];
  List.iter2
    (fun (name, m) (_, p) ->
      Bench_util.columns [ 16; 14; 14; 14 ]
        [
          name;
          Bench_util.fmt_ms m;
          Bench_util.fmt_ms p;
          Printf.sprintf "%.2fx" (if m > 0.0 then p /. m else 0.0);
        ])
    mem_queries paged_queries;
  Printf.printf
    "\ningest: mem %.1f ms, paged %.1f ms; warm query throughput: mem %.0f pairs/s, \
     paged %.0f pairs/s (ratio %.2fx)\n"
    mem_ingest_ms paged_ingest_ms mem_pps paged_pps warm_ratio;
  Printf.printf
    "pool: %d/%d bytes, %d pages, hit rate %.3f (%d lookups, %d evictions, %d writebacks); \
     beyond-RAM: %b; extents identical: %b\n"
    pool.Lxu_storage.Buffer_pool.bytes pool.Lxu_storage.Buffer_pool.max_bytes
    stats.Lxu_storage.Page_store.pages hit_rate pool.Lxu_storage.Buffer_pool.lookups
    pool.Lxu_storage.Buffer_pool.evictions pool.Lxu_storage.Buffer_pool.writebacks
    beyond_ram results_ok;
  let open Bench_util in
  let json =
    J_obj
      [
        ("bench", J_str "fig_paged");
        ("schema_version", J_int 1);
        ( "workload",
          J_obj
            [
              ("generator", J_str "xmark+chopper (fig_parallel workload)");
              ("doc_bytes", J_int doc_bytes);
              ("segments", J_int segments);
              ("elements", J_int elements);
              ("total_pairs", J_int total_pairs);
            ] );
        ("pool_bytes", J_int pool_budget);
        ("beyond_ram", J_bool beyond_ram);
        ("results_ok", J_bool results_ok);
        ("mem_ingest_ms", J_float mem_ingest_ms);
        ("paged_ingest_ms", J_float paged_ingest_ms);
        ("mem_pairs_per_sec", J_float mem_pps);
        ("paged_pairs_per_sec", J_float paged_pps);
        ("warm_ratio", J_float warm_ratio);
        ("hit_rate", J_float hit_rate);
        ( "pool",
          J_obj
            [
              ("lookups", J_int pool.Lxu_storage.Buffer_pool.lookups);
              ("hits", J_int pool.Lxu_storage.Buffer_pool.hits);
              ("evictions", J_int pool.Lxu_storage.Buffer_pool.evictions);
              ("writebacks", J_int pool.Lxu_storage.Buffer_pool.writebacks);
              ("pages", J_int stats.Lxu_storage.Page_store.pages);
              ("page_size", J_int stats.Lxu_storage.Page_store.page_size);
            ] );
        ( "queries",
          J_list
            (List.map2
               (fun (name, m) (_, p) ->
                 J_obj
                   [
                     ("name", J_str name);
                     ("mem_ms", J_float m);
                     ("paged_ms", J_float p);
                   ])
               mem_queries paged_queries) );
      ]
  in
  write_json (json_out ~default:"BENCH_paged.json") json
