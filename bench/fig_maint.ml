(* Autonomous-maintenance churn benchmark: the same compressed
   "week" of FLUX-style churn (bursts of governed inserts/removes,
   then measured sweep requests) run twice — once with the background
   maintainer paying down fragmentation in the idle gap of every
   epoch, once with no maintenance at all — and compared against a
   store freshly rebuilt from the final document.

   The paper's position is that laziness trades update speed for debt
   someone must eventually repay; the maintainer's job is to repay it
   continuously, so the headline is steady-state query latency:

   - auto-maintenance p99 must stay within 1.15x the freshly rebuilt
     store's p99 (the store never drifts far from "day one"), while
   - manual-only p99 degrades measurably above it (the debt is real —
     skipping maintenance costs you), shown by ER segment counts and
     chain depth at end of run.

   Steady state is measured after the churn completes, round-robin
   across the three final stores (one request each per round), so
   host weather — GC slices, hypervisor steal — lands on every store
   in proportion instead of deciding one store's tail; the in-churn
   trajectory p99s ride along in the JSON.  Both churn runs execute
   the identical schedule (maintenance changes no query-visible state
   and draws nothing from the generator), so the comparison isolates
   physical-layout debt.

   Beyond the console table the run writes BENCH_maint.json (or the
   --json path): the maintenance entry of the repository's perf
   trajectory, gated by scripts/bench_gate.sh on auto_ratio and
   manual_ratio.  See EXPERIMENTS.md for the schema. *)

module Maint_harness = Lxu_crash_harness.Maint_harness

let seed = 42
let epochs = 60 * Bench_util.scale
let auto_budget = 6

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan else sorted.(min (n - 1) (p * (n - 1) / 100))

(* second half of the samples: the steady-state window *)
let tail a = Array.sub a (Array.length a / 2) (Array.length a - (Array.length a / 2))

let p50_p99 samples =
  let s = Array.copy samples in
  Array.sort compare s;
  (percentile s 50, percentile s 99)

let run () =
  Bench_util.header
    "Autonomous maintenance under churn: auto vs manual-only vs freshly rebuilt";
  Printf.printf
    "churn: %d epochs x (6 inserts + 0.4 removes), 3 sweep requests per epoch;\n\
     auto runs <= %d maintenance jobs in each epoch's idle gap; steady state measured\n\
     round-robin across the three final stores so host weather lands on all of them\n\n"
    epochs auto_budget;
  let auto, text, gov_auto =
    Maint_harness.run_churn_perf ~seed ~epochs ~maintain:(`Auto auto_budget) ()
  in
  let manual, _, gov_manual = Maint_harness.run_churn_perf ~seed ~epochs ~maintain:`Manual () in
  let fresh_db = Maint_harness.fresh_store text in
  let steady_n = Array.length (tail auto.Maint_harness.latencies_ms) in
  let governed_sweep gov () =
    match Lazy_xml.Governor.read gov (fun _ db -> Maint_harness.sweep db) with
    | Ok () -> ()
    | Error r -> failwith (Lazy_xml.Governor.rejection_to_string r)
  in
  let a_lat, m_lat, f_lat =
    match
      Maint_harness.measure_interleaved ~rounds:steady_n
        [
          governed_sweep gov_auto;
          governed_sweep gov_manual;
          (fun () -> Maint_harness.sweep fresh_db);
        ]
    with
    | [ a; m; f ] -> (a, m, f)
    | _ -> assert false
  in
  let a50, a99 = p50_p99 a_lat in
  let m50, m99 = p50_p99 m_lat in
  let f50, f99 = p50_p99 f_lat in
  let widths = [ 14; 10; 10; 10; 9; 7 ] in
  Bench_util.columns widths [ "store"; "p50 ms"; "p99 ms"; "segments"; "er depth"; "jobs" ];
  Bench_util.columns widths
    [
      "auto-maint";
      Bench_util.fmt_ms a50;
      Bench_util.fmt_ms a99;
      string_of_int auto.Maint_harness.segments_end;
      string_of_int auto.Maint_harness.er_depth_end;
      string_of_int auto.Maint_harness.jobs_run;
    ];
  Bench_util.columns widths
    [
      "manual-only";
      Bench_util.fmt_ms m50;
      Bench_util.fmt_ms m99;
      string_of_int manual.Maint_harness.segments_end;
      string_of_int manual.Maint_harness.er_depth_end;
      "0";
    ];
  Bench_util.columns widths
    [ "fresh-rebuilt"; Bench_util.fmt_ms f50; Bench_util.fmt_ms f99; "1"; "1"; "-" ];
  Bench_util.sep ();
  let auto_ratio = a99 /. f99 in
  let manual_ratio = m99 /. f99 in
  Printf.printf
    "document: %d bytes final; steady-state window %d requests per store\n\
     auto p99 = %.2fx fresh (acceptance: within 1.15x) | manual-only p99 = %.2fx fresh\n"
    (String.length text) steady_n auto_ratio manual_ratio;
  if auto.Maint_harness.shed > 0 then
    Printf.printf "note: %d maintenance ticks shed by admission during the run\n"
      auto.Maint_harness.shed;
  let json =
    Bench_util.(
      J_obj
        [
          ("bench", J_str "maint");
          ("engine", J_str "LD");
          ("seed", J_int seed);
          ("epochs", J_int epochs);
          ("auto_budget", J_int auto_budget);
          ("steady_requests", J_int steady_n);
          ("auto_p50_ms", J_float a50);
          ("auto_p99_ms", J_float a99);
          ("manual_p50_ms", J_float m50);
          ("manual_p99_ms", J_float m99);
          ("fresh_p50_ms", J_float f50);
          ("fresh_p99_ms", J_float f99);
          ("auto_ratio", J_float auto_ratio);
          ("manual_ratio", J_float manual_ratio);
          ("auto_segments_end", J_int auto.Maint_harness.segments_end);
          ("manual_segments_end", J_int manual.Maint_harness.segments_end);
          ("auto_er_depth_end", J_int auto.Maint_harness.er_depth_end);
          ("manual_er_depth_end", J_int manual.Maint_harness.er_depth_end);
          ("auto_jobs", J_int auto.Maint_harness.jobs_run);
          ("auto_shed", J_int auto.Maint_harness.shed);
          ("churn_auto_p99_ms", J_float (snd (p50_p99 (tail auto.Maint_harness.latencies_ms))));
          ( "churn_manual_p99_ms",
            J_float (snd (p50_p99 (tail manual.Maint_harness.latencies_ms))) );
        ])
  in
  Bench_util.write_json (Bench_util.json_out ~default:"BENCH_maint.json") json
