(* MVCC read-latency benchmark: one closed-loop reader is timed over
   alternating read-only and mixed phases of the same shared lazy
   database; in the mixed phases a single writer streams batch-64
   [insert_many] groups at a fixed pace.  Readers run lock-free
   against pinned snapshots, so the headline number is the mixed-phase
   p99 staying within 25% of the read-only p99 — under the pre-MVCC
   rw-lock every committing batch (including its snapshot publication)
   stalled the whole reader pool for the write's duration.

   Protocol notes, all in service of measuring the database rather
   than the host:

   - One read request is the full 5x5 vocabulary sweep (25 count
     queries) run twice under a single snapshot pin, so a request is
     long enough (tens of ms) that its latency is dominated by join
     work, not by the scheduler quantum of small shared hosts — and
     the double sweep doubles as a repeatable-read check surface.
   - The writer inserts a tag outside the reader vocabulary, so the
     join inputs stay constant-size across the stream and the
     comparison isolates concurrency overhead from workload growth.
     It is paced (a short sleep between batches) because the claim
     under test is "writes do not stall readers", not "reads survive
     losing the CPU to a spin loop"; and every 8th batch it packs its
     newest garden chunk ([pack_subtree] over the fresh segments),
     the paper's maintenance story running inside the write stream,
     keeping snapshot publication from growing with stream length.
   - Phases alternate read-only/mixed over [rounds] short rounds and
     the headline p50/p99 pool all samples of a kind, so intermittent
     host stalls (hypervisor steal, GC slices) land on both kinds in
     proportion instead of deciding a single phase's tail — the same
     hostile-host reasoning behind [Bench_util.measure_min].

   Beyond the console table, the run writes BENCH_mvcc.json (or the
   --json path): the MVCC entry of the repository's perf trajectory,
   gated by scripts/bench_gate.sh on the mixed/read-only p99 ratio.
   See EXPERIMENTS.md for the schema. *)

open Lazy_xml
module Generator = Lxu_workload.Generator

let rounds = 6
let requests_per_phase = 60
let writer_batch = 64
let writer_pause_s = 0.020
let pack_every = 8
let vocabulary = [| "a"; "b"; "c"; "d"; "e" |]

let pairs =
  Array.to_list vocabulary
  |> List.concat_map (fun anc ->
         Array.to_list vocabulary |> List.map (fun desc -> (anc, desc)))

let sweep db =
  for _ = 1 to 2 do
    List.iter (fun (anc, desc) -> ignore (Lazy_db.count db ~anc ~desc ())) pairs
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan else sorted.(min (n - 1) (p * (n - 1) / 100))

type phase = {
  round : int;
  mixed : bool;
  p50_ms : float;
  p99_ms : float;
  batches_written : int;
  elapsed_s : float;
  samples : float array;  (* sorted per-request latencies, ms *)
}

(* One timed phase: the reader domain issues [requests_per_phase]
   sweep requests back-to-back, each under one snapshot pin; with
   [with_writer] a paced writer streams insert_many batches (packing
   its garden every [pack_every]-th) until the reader is done. *)
let run_phase t ~round ~with_writer =
  let lat = Array.make requests_per_phase 0. in
  let stop = Atomic.make false in
  let writer =
    if not with_writer then None
    else
      Some
        (Domain.spawn (fun () ->
             let batch = List.init writer_batch (fun _ -> (0, "<w/>")) in
             let chunk_len = pack_every * writer_batch * String.length "<w/>" in
             let n = ref 0 in
             while not (Atomic.get stop) do
               Shared_db.write t (fun db -> Lazy_db.insert_many db batch);
               incr n;
               if !n mod pack_every = 0 then
                 Shared_db.write t (fun db -> Lazy_db.pack_subtree db ~gp:0 ~len:chunk_len);
               Unix.sleepf writer_pause_s
             done;
             !n))
  in
  let t0 = Unix.gettimeofday () in
  let reader =
    Domain.spawn (fun () ->
        for k = 0 to requests_per_phase - 1 do
          let q0 = Unix.gettimeofday () in
          Shared_db.read t sweep;
          lat.(k) <- (Unix.gettimeofday () -. q0) *. 1000.
        done)
  in
  Domain.join reader;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let batches_written = match writer with Some d -> Domain.join d | None -> 0 in
  Array.sort compare lat;
  {
    round;
    mixed = with_writer;
    p50_ms = percentile lat 50;
    p99_ms = percentile lat 99;
    batches_written;
    elapsed_s;
    samples = lat;
  }

let run () =
  Bench_util.header
    (Printf.sprintf
       "MVCC snapshot reads: lock-free reader, read-only vs one writer streaming batch-%d inserts"
       writer_batch);
  let t = Shared_db.create ~engine:Lazy_db.LD ~index_attributes:true () in
  let text =
    Generator.generate_text
      ~params:{ Generator.default_params with Generator.tags = vocabulary }
      ~seed:42
      ~target_elements:(8_000 * Bench_util.scale)
      ()
  in
  Shared_db.insert t ~gp:0 text;
  for _ = 1 to 3 do
    Shared_db.read t sweep
  done;
  Printf.printf
    "document: %d bytes, %d elements; request = 2x 25-pair sweep, %d requests x %d rounds per kind\n\n"
    (String.length text)
    (Shared_db.read t Lazy_db.element_count)
    requests_per_phase rounds;
  let widths = [ 7; 11; 10; 10; 10; 10 ] in
  Bench_util.columns widths [ "round"; "phase"; "p50 ms"; "p99 ms"; "batches"; "epoch" ];
  let phases = ref [] in
  for round = 1 to rounds do
    List.iter
      (fun with_writer ->
        let ph = run_phase t ~round ~with_writer in
        phases := ph :: !phases;
        Bench_util.columns widths
          [
            string_of_int round;
            (if ph.mixed then "mixed" else "read-only");
            Bench_util.fmt_ms ph.p50_ms;
            Bench_util.fmt_ms ph.p99_ms;
            string_of_int ph.batches_written;
            string_of_int (Shared_db.current_epoch t);
          ])
      [ false; true ]
  done;
  let phases = List.rev !phases in
  Bench_util.sep ();
  let pooled mixed =
    let all =
      Array.concat (List.filter_map (fun ph -> if ph.mixed = mixed then Some ph.samples else None) phases)
    in
    Array.sort compare all;
    all
  in
  let baseline = pooled false and mixed_pool = pooled true in
  let baseline_p99 = percentile baseline 99 in
  let mixed_p99 = percentile mixed_pool 99 in
  let ratio = mixed_p99 /. baseline_p99 in
  Printf.printf
    "pooled over %d requests per kind:\n  read-only p50=%.3f p99=%.3f ms | mixed p50=%.3f \
     p99=%.3f ms\n  mixed p99 = %.2fx read-only p99 (acceptance: within 1.25x)\n"
    (Array.length baseline) (percentile baseline 50) baseline_p99 (percentile mixed_pool 50)
    mixed_p99 ratio;
  (match Shared_db.mvcc_stats t with
  | Some m ->
    Printf.printf "quiescence: %d version(s), %d pin(s), epoch %d, floor %d\n" m.Shared_db.versions
      m.Shared_db.pinned m.Shared_db.published_epoch m.Shared_db.floor
  | None -> ());
  let json =
    Bench_util.(
      J_obj
        [
          ("bench", J_str "mvcc");
          ("engine", J_str "LD");
          ("requests_per_phase", J_int requests_per_phase);
          ("rounds", J_int rounds);
          ("writer_batch", J_int writer_batch);
          ("writer_pause_s", J_float writer_pause_s);
          ("baseline_p50_ms", J_float (percentile baseline 50));
          ("baseline_p99_ms", J_float baseline_p99);
          ("mixed_p50_ms", J_float (percentile mixed_pool 50));
          ("mixed_p99_ms", J_float mixed_p99);
          ("p99_ratio", J_float ratio);
          ( "phases",
            J_list
              (List.map
                 (fun ph ->
                   J_obj
                     [
                       ("round", J_int ph.round);
                       ("phase", J_str (if ph.mixed then "mixed" else "read-only"));
                       ("p50_ms", J_float ph.p50_ms);
                       ("p99_ms", J_float ph.p99_ms);
                       ("batches_written", J_int ph.batches_written);
                       ("elapsed_s", J_float ph.elapsed_s);
                     ])
                 phases) );
        ])
  in
  Bench_util.write_json (Bench_util.json_out ~default:"BENCH_mvcc.json") json
