(* Two ablation studies beyond the paper's figures.

   [run_joins]: the structural-join family on one workload — MPMGJN
   (merge join, [14]), Stack-Tree-Desc/-Anc ([1]), the classical join
   over the lazy store (§4's translation), and Lazy-Join with each of
   Figure 9's optimizations toggled off.  This quantifies the paper's
   §2 narrative (stacks remove merge-join re-scans) and its own design
   choices.

   [run_labels]: the labeling schemes of §2 under a worst-case
   insertion pattern — repeated insertion at the same point — reporting
   label storage and its growth, the space argument motivating the lazy
   approach. *)

open Lxu_seglog
open Lxu_labeling

(* A workload where Figure 9's optimizations have teeth: a nested chain
   of segments, each carrying many A-elements of which only ONE wraps
   the hook where the next segments (and the D-carrying children) live.
   Without the push filter every frame drags all its A-elements;
   without top trimming dead elements linger on deep stacks. *)
let ablation_edits ~segments ~anc_per_segment ~d_per_child =
  let buf = Buffer.create 256 in
  for _ = 2 to anc_per_segment do
    Buffer.add_string buf "<A>t</A>"
  done;
  Buffer.add_string buf "<A><c></c></A>";
  let frag = Buffer.contents buf in
  let c_interior = String.length frag - String.length "</c></A>" in
  let cross =
    let b = Buffer.create 64 in
    for _ = 1 to d_per_child do
      Buffer.add_string b "<D/>"
    done;
    Buffer.contents b
  in
  (* Chain each segment inside the previous one's <c> (so ancestors'
     hook-wrapping A-elements contain everything below: deep stacks),
     then attach one D-carrier to every segment's <c>, deepest first. *)
  let edits = ref [] in
  let c_points = Array.make segments 0 in
  let cursor = ref 0 in
  for i = 0 to segments - 1 do
    edits := (!cursor, frag) :: !edits;
    c_points.(i) <- !cursor + c_interior;
    cursor := !cursor + c_interior
  done;
  let attach =
    Array.to_list c_points |> List.sort (fun a b -> Int.compare b a)
    |> List.map (fun gp -> (gp, cross))
  in
  List.rev !edits @ attach

let run_joins () =
  Bench_util.header "Ablation: structural join algorithms on one workload";
  let edits = ablation_edits ~segments:150 ~anc_per_segment:20 ~d_per_child:4 in
  let log = Bench_util.load_log Update_log.Lazy_dynamic edits in
  Update_log.prepare_for_query log;
  let anc = "A" and desc = "D" in
  (* Shared global input lists for the list-based algorithms. *)
  let a = Lxu_join.Std_baseline.global_list log ~tag:anc in
  let d = Lxu_join.Std_baseline.global_list log ~tag:desc in
  Printf.printf
    "workload: %d segments in a chain, %d A-elements (1 hook + 19 inert per\n\
     segment), %d D-elements in leaf carriers; all joins cross-segment\n\n"
    (Update_log.segment_count log) (Array.length a) (Array.length d);
  Bench_util.columns [ 34; 12; 12 ] [ "algorithm"; "ms"; "d-scans" ];
  let row name ms scans =
    Bench_util.columns [ 34; 12; 12 ]
      [ name; Bench_util.fmt_ms ms; (match scans with None -> "-" | Some n -> string_of_int n) ]
  in
  let scans = ref 0 in
  let t_mpm =
    Bench_util.measure (fun () ->
        let _, s = Lxu_join.Mpmgjn.join ~anc:a ~desc:d () in
        scans := s.Lxu_join.Stack_tree_desc.d_scanned)
  in
  row "MPMGJN (merge join, lists ready)" t_mpm (Some !scans);
  let t_std =
    Bench_util.measure (fun () ->
        let _, s = Lxu_join.Stack_tree_desc.join ~anc:a ~desc:d () in
        scans := s.Lxu_join.Stack_tree_desc.d_scanned)
  in
  row "Stack-Tree-Desc (lists ready)" t_std (Some !scans);
  let t_sta =
    Bench_util.measure (fun () ->
        let _, s = Lxu_join.Stack_tree_anc.join ~anc:a ~desc:d () in
        scans := s.Lxu_join.Stack_tree_desc.d_scanned)
  in
  row "Stack-Tree-Anc (lists ready)" t_sta (Some !scans);
  let xr_a = Lxu_join.Xr_index.build a and xr_d = Lxu_join.Xr_index.build d in
  let t_xr =
    Bench_util.measure (fun () ->
        let _, s = Lxu_join.Xr_join.join ~anc:xr_a ~desc:xr_d () in
        scans := s.Lxu_join.Stack_tree_desc.d_scanned)
  in
  row "XR-tree join (indexes ready)" t_xr (Some !scans);
  let t_base =
    Bench_util.measure (fun () -> ignore (Lxu_join.Std_baseline.run log ~anc ~desc ()))
  in
  row "classical join over lazy store" t_base None;
  let lazy_variant name ~push_filter ~trim_top =
    let ms =
      Bench_util.measure (fun () ->
          ignore (Lxu_join.Lazy_join.run ~push_filter ~trim_top log ~anc ~desc ()))
    in
    row name ms None
  in
  lazy_variant "Lazy-Join (both optimizations)" ~push_filter:true ~trim_top:true;
  lazy_variant "Lazy-Join (no push filter)" ~push_filter:false ~trim_top:true;
  lazy_variant "Lazy-Join (no top trimming)" ~push_filter:true ~trim_top:false;
  lazy_variant "Lazy-Join (neither)" ~push_filter:false ~trim_top:false

(* Columnar segment cache on/off, cold/warm, on the fig_parallel
   workload (same document, same five queries).  "cold" clears the
   cache before every pass; "warm" is the median of repeated passes
   after one priming pass — the repeated-query case the cache exists
   for.  Emits BENCH_cache.json (see EXPERIMENTS.md for the schema). *)
let run_cache () =
  Bench_util.header "Ablation: columnar segment cache, cold/warm on the parallel workload";
  (* Earlier targets leave a grown, fragmented major heap behind;
     compacting first keeps this figure's numbers independent of
     which targets ran before it. *)
  Gc.compact ();
  let text, edits = Fig_parallel.workload () in
  let queries = Lxu_workload.Xmark.queries in
  (* One scratch shared by every pass of both variants: a server
     issuing repeated queries would hold one too, and it keeps the
     comparison about the cache, not about buffer churn. *)
  let pass =
    let scratch = Lxu_join.Lazy_join.scratch () in
    fun log ->
      List.fold_left
        (fun acc (_, anc, desc) ->
          let pairs, _ = Lxu_join.Lazy_join.run ~scratch log ~anc ~desc () in
          acc + Array.length pairs)
        0 queries
  in
  let variant ~label ~cache_bytes =
    let log = Bench_util.load_log ?cache_bytes Update_log.Lazy_dynamic edits in
    Update_log.prepare_for_query log;
    let cache = Update_log.cache log in
    (* Cold: every pass starts from an empty cache (a no-op clear when
       the cache is disabled, so "off" cold = "off" warm modulo noise). *)
    (* Passes are a few ms, so a high repeat count is cheap; best-of
       keeps the verdict about the code rather than about whichever
       variant the host's scheduler happened to preempt. *)
    let cold_ms =
      Bench_util.measure_min ~repeat:31 (fun () ->
          Seg_cache.clear cache;
          ignore (pass log))
    in
    let total_pairs = pass log (* priming pass *) in
    let warm_ms = Bench_util.measure_min ~repeat:31 (fun () -> ignore (pass log)) in
    let a0 = Gc.allocated_bytes () in
    ignore (pass log);
    let alloc_bytes = Gc.allocated_bytes () -. a0 in
    let s = Seg_cache.stats cache in
    let hit_rate =
      if s.Seg_cache.lookups > 0 then
        float_of_int s.Seg_cache.hits /. float_of_int s.Seg_cache.lookups
      else 0.0
    in
    (label, cold_ms, warm_ms, alloc_bytes, hit_rate, s, total_pairs)
  in
  let on = variant ~label:"cache on" ~cache_bytes:None in
  let off = variant ~label:"cache off" ~cache_bytes:(Some 0) in
  let _, _, _, _, _, _, total_pairs = on in
  Printf.printf "document: %d bytes, %d pairs per query pass\n\n" (String.length text)
    total_pairs;
  Bench_util.columns [ 14; 12; 12; 16; 10 ]
    [ "variant"; "cold ms"; "warm ms"; "alloc MB/pass"; "hit rate" ];
  let rows = [ on; off ] in
  List.iter
    (fun (label, cold_ms, warm_ms, alloc, hit_rate, _, _) ->
      Bench_util.columns [ 14; 12; 12; 16; 10 ]
        [
          label;
          Bench_util.fmt_ms cold_ms;
          Bench_util.fmt_ms warm_ms;
          Printf.sprintf "%.1f" (alloc /. 1e6);
          Printf.sprintf "%.3f" hit_rate;
        ])
    rows;
  let warm_of (_, _, w, _, _, _, _) = w in
  let warm_speedup = if warm_of on > 0.0 then warm_of off /. warm_of on else 0.0 in
  Printf.printf "\nwarm speedup (cache on vs off): %.2fx %s\n" warm_speedup
    (if warm_speedup >= 2.0 then "(meets the >=2x target)" else "(below the >=2x target)");
  let open Bench_util in
  let series =
    List.map
      (fun (label, cold_ms, warm_ms, alloc, hit_rate, s, pairs) ->
        let pps = if warm_ms > 0.0 then float_of_int pairs /. (warm_ms /. 1000.0) else 0.0 in
        J_obj
          [
            ("cache", J_str label);
            ("cold_ms", J_float cold_ms);
            ("warm_ms", J_float warm_ms);
            ("warm_pairs_per_sec", J_float pps);
            ("alloc_bytes_per_pass", J_float alloc);
            ("hit_rate", J_float hit_rate);
            ( "cache_stats",
              J_obj
                [
                  ("lookups", J_int s.Seg_cache.lookups);
                  ("hits", J_int s.Seg_cache.hits);
                  ("misses", J_int s.Seg_cache.misses);
                  ("evictions", J_int s.Seg_cache.evictions);
                  ("invalidations", J_int s.Seg_cache.invalidations);
                  ("stale_drops", J_int s.Seg_cache.stale_drops);
                  ("entries", J_int s.Seg_cache.entries);
                  ("bytes", J_int s.Seg_cache.bytes);
                  ("max_bytes", J_int s.Seg_cache.max_bytes);
                ] );
          ])
      rows
  in
  let json =
    J_obj
      [
        ("bench", J_str "cache_ablation");
        ("schema_version", J_int 1);
        ( "workload",
          J_obj
            [
              ("generator", J_str "xmark+chopper (fig_parallel)");
              ("doc_bytes", J_int (String.length text));
              ("total_pairs", J_int total_pairs);
              ( "queries",
                J_list
                  (List.map (fun (n, a, d) -> J_str (Printf.sprintf "%s:%s//%s" n a d)) queries)
              );
            ] );
        ("series", J_list series);
        ("warm_speedup_vs_off", J_float warm_speedup);
        ("meets_2x_warm", J_bool (warm_speedup >= 2.0));
      ]
  in
  write_json (json_out ~default:"BENCH_cache.json") json

let run_labels () =
  Bench_util.header "Ablation: labeling scheme storage under adversarial insertion";
  Printf.printf
    "(n siblings inserted by repeated bisection between the same two\n\
    \ neighbours — the worst case for immutable prefix labels [4];\n\
    \ 'max' is the largest single label in bits)\n\n";
  Bench_util.columns [ 8; 12; 12; 12; 14; 12; 14 ]
    [ "n"; "interval"; "dewey tot"; "dewey max"; "binary tot"; "binary max"; "prime tot" ];
  List.iter
    (fun n ->
      (* Interval labels: fixed 3 machine words per element, but every
         insertion relabels (Figure 16's cost, not shown here). *)
      let interval_bits = n * 3 * 63 in
      (* Dewey/ORDPATH under alternating bisection: every new label
         lands between the two most recent neighbours, flipping sides —
         the pattern that defeats value-growth escapes and forces
         component-count growth. *)
      let dewey_total, dewey_max =
        let root = Dewey_label.root in
        let left = ref (Dewey_label.nth_child root 0) in
        let right = ref (Dewey_label.nth_child root 1) in
        let total = ref (Dewey_label.bit_size !left + Dewey_label.bit_size !right) in
        let biggest = ref 0 in
        for i = 3 to n do
          let lbl =
            Dewey_label.child_between ~parent:root ~left:(Some !left) ~right:(Some !right)
          in
          total := !total + Dewey_label.bit_size lbl;
          if Dewey_label.bit_size lbl > !biggest then biggest := Dewey_label.bit_size lbl;
          if i mod 2 = 0 then left := lbl else right := lbl
        done;
        (!total, !biggest)
      in
      (* CKM binary codes support appends only (the paper's critique);
         measured in their only (best) case. *)
      let binary_total, binary_max =
        let code = ref Binary_label.first_code in
        let total = ref (String.length !code) in
        let biggest = ref (String.length !code) in
        for _ = 2 to n do
          code := Binary_label.next_code !code;
          total := !total + String.length !code;
          if String.length !code > !biggest then biggest := String.length !code
        done;
        (!total, !biggest)
      in
      (* PRIME: label products plus the SC table for a flat tree with
         middle insertions. *)
      let prime_bits =
        let t = Prime_label.create ~k:10 ~capacity:(n + 2) () in
        let root = Prime_label.append t ~parent:None in
        for _ = 1 to n - 1 do
          ignore (Prime_label.insert t ~parent:(Some root) ~order_pos:1)
        done;
        Prime_label.label_bits t + Prime_label.sc_bits t
      in
      Bench_util.columns [ 8; 12; 12; 12; 14; 12; 14 ]
        [
          string_of_int n;
          string_of_int interval_bits;
          string_of_int dewey_total;
          string_of_int dewey_max;
          string_of_int binary_total;
          string_of_int binary_max;
          string_of_int prime_bits;
        ])
    [ 50; 100; 200; 400; 800 ];
  Printf.printf
    "\nUnder bisection the largest Dewey label grows linearly with n (the\n\
     Omega(n)-bits-per-label bound of [4]), while interval labels stay at\n\
     three words but pay Figure 16's relabeling on every update.  The lazy\n\
     scheme gets the best of both: interval-sized labels that never change,\n\
     at the price of the (small) update log.\n"

(* The comparison the paper defers to future work (§6): the lazy
   approach against W-BOX-style order-maintenance labeling [9], plus
   the traditional relabeling store and PRIME, under mid-document
   insertion.  Times are per inserted element; "touched" counts the
   labels each scheme rewrites. *)
let run_boxes () =
  Bench_util.header
    "Ablation: update cost per element vs the BOXes [9], traditional and PRIME";
  Bench_util.columns [ 8; 12; 12; 14; 12; 12; 14; 12; 14 ]
    [ "n"; "LD ms"; "WBOX ms"; "WBOX touch"; "BBOX ms"; "trad ms"; "trad touch"; "PRIME ms"; "PRIME recomp" ];
  List.iter
    (fun n ->
      (* LD: a document of n elements in 100 segments; insert a
         one-element segment mid-document. *)
      let ld_ms =
        let edits = Fig_workload.balanced_doc n in
        let log = Bench_util.load_log Update_log.Lazy_dynamic edits in
        let gp = Fig_workload.segment_boundary log in
        Bench_util.measure ~repeat:5 (fun () ->
            ignore (Update_log.insert log ~gp "<x/>");
            Update_log.remove log ~gp ~len:4)
      in
      (* WBOX: n elements under one root; keep inserting first children
         (the hot-spot adversary; no removals, so tag pressure is
         real). *)
      let wbox_ms, wbox_touch =
        let t = Box_store.create () in
        let root = Box_store.insert_last_child t ~parent:None in
        for _ = 1 to n - 1 do
          ignore (Box_store.insert_first_child t ~parent:(Some root))
        done;
        let before = Box_store.relabels t in
        let reps = 50 in
        let ms =
          Bench_util.measure ~repeat:3 (fun () ->
              for _ = 1 to reps do
                ignore (Box_store.insert_first_child t ~parent:(Some root))
              done)
          /. float_of_int reps
        in
        (ms, (Box_store.relabels t - before) / (3 * reps))
      in
      (* BBOX: same hot-spot insertions; nothing is ever relabelled,
         each insert is pure O(log n) tree work. *)
      let bbox_ms =
        let t = Bbox_store.create () in
        let root = Bbox_store.insert_last_child t ~parent:None in
        for _ = 1 to n - 1 do
          ignore (Bbox_store.insert_first_child t ~parent:(Some root))
        done;
        let reps = 50 in
        Bench_util.measure ~repeat:3 (fun () ->
            for _ = 1 to reps do
              ignore (Bbox_store.insert_first_child t ~parent:(Some root))
            done)
        /. float_of_int reps
      in
      (* Traditional: same shape; insert+remove one element mid-doc. *)
      let trad_ms, trad_touch =
        let store = Bench_util.load_store (Fig_workload.balanced_doc n) in
        let gp = Lxu_labeling.Interval_store.doc_length store / 2 / 4 * 4 in
        let ms =
          Bench_util.measure ~repeat:5 (fun () ->
              Lxu_labeling.Interval_store.insert store ~gp "<x/>";
              Lxu_labeling.Interval_store.remove store ~gp ~len:4)
        in
        (ms, Lxu_labeling.Interval_store.last_relabel_count store)
      in
      (* PRIME: n nodes; middle insertion (no removal support: measure
         a handful of inserts on a fresh structure). *)
      let prime_ms, prime_recomp =
        let t = Prime_label.create ~k:10 ~capacity:(n + 64) () in
        let root = Prime_label.append t ~parent:None in
        for _ = 1 to n - 1 do
          ignore (Prime_label.append t ~parent:(Some root))
        done;
        let before = Prime_label.sc_recomputations t in
        let reps = 8 in
        let _, ms =
          Bench_util.time_ms (fun () ->
              for _ = 1 to reps do
                ignore (Prime_label.insert t ~parent:(Some root) ~order_pos:(n / 2))
              done)
        in
        (ms /. float_of_int reps, (Prime_label.sc_recomputations t - before) / reps)
      in
      Bench_util.columns [ 8; 12; 12; 14; 12; 12; 14; 12; 14 ]
        [
          string_of_int n;
          Bench_util.fmt_ms ld_ms;
          Bench_util.fmt_ms wbox_ms;
          string_of_int wbox_touch;
          Bench_util.fmt_ms bbox_ms;
          Bench_util.fmt_ms trad_ms;
          string_of_int trad_touch;
          Bench_util.fmt_ms prime_ms;
          string_of_int prime_recomp;
        ])
    [ 1000; 2000; 4000; 8000 ];
  (* Query side: the containment test each scheme pays per join
     comparison.  Interval and W-BOX are integer compares; B-BOX
     reconstructs two ranks per test. *)
  Printf.printf "\ncontainment-test cost (ns per is_ancestor, n = 8000):\n";
  let n = 8000 in
  let wbox = Box_store.create () in
  let wroot = Box_store.insert_last_child wbox ~parent:None in
  let wlast = ref wroot in
  let bbox = Bbox_store.create () in
  let broot = Bbox_store.insert_last_child bbox ~parent:None in
  let blast = ref broot in
  for _ = 1 to n do
    wlast := Box_store.insert_last_child wbox ~parent:(Some !wlast);
    blast := Bbox_store.insert_last_child bbox ~parent:(Some !blast)
  done;
  let reps = 100_000 in
  let wms =
    Bench_util.measure ~repeat:3 (fun () ->
        for _ = 1 to reps do
          ignore (Box_store.is_ancestor wbox wroot !wlast)
        done)
  in
  let bms =
    Bench_util.measure ~repeat:3 (fun () ->
        for _ = 1 to reps do
          ignore (Bbox_store.is_ancestor bbox broot !blast)
        done)
  in
  Printf.printf "  W-BOX %.1f ns   B-BOX %.1f ns  (the [9] trade-off: B-BOX\n\
                \  never relabels but pays log-time comparisons)\n"
    (wms *. 1e6 /. float_of_int reps)
    (bms *. 1e6 /. float_of_int reps);
  Printf.printf
    "\nW-BOX keeps updates logarithmic where the traditional store is linear,\n\
     but its labels are mutable lookups through the structure; the lazy log\n\
     keeps immutable interval-style labels AND constant-ish update cost —\n\
     the trade-off the paper argues for.\n"
