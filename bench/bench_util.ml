(* Shared helpers for the figure-reproduction harness. *)

(* Workload multiplier from LAZYXML_BENCH_SCALE (default 1): the key
   dataset sizes of figs 12-16 scale linearly with it, for runs closer
   to the paper's 100 MB datasets. *)
let scale =
  match Sys.getenv_opt "LAZYXML_BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Median wall-clock of [repeat] runs, in milliseconds. *)
let measure ?(repeat = 5) f =
  let samples =
    List.init repeat (fun _ ->
        let _, ms = time_ms f in
        ms)
    |> List.sort compare
  in
  List.nth samples (repeat / 2)

(* Best-of-[repeat]: on a shared single-core host, scheduler
   preemption can land in most samples of a window, dragging medians
   around by multiples of the true cost; the minimum is the
   reproducible compute time and treats every variant identically.
   Use for figures whose verdict is a ratio of short passes. *)
let measure_min ?(repeat = 5) f =
  List.fold_left
    (fun acc _ ->
      let _, ms = time_ms f in
      min acc ms)
    infinity
    (List.init repeat Fun.id)

let header title =
  Printf.printf "\n=== %s ===\n" title

(* --- machine-readable output ---------------------------------------- *)

(* Figures that emit machine-readable results (the BENCH_*.json perf
   trajectory) write to the path given with [--json <path>] on the
   main.exe command line, or to their own default filename.  The flag
   is parsed by bench/main.ml and shared by every figure. *)
let json_path : string option ref = ref None

let json_out ~default = match !json_path with Some p -> p | None -> default

(* Minimal JSON construction — enough for flat benchmark records, no
   external dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let rec render_json buf = function
  | J_null -> Buffer.add_string buf "null"
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | J_str s ->
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  | J_list l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render_json buf x)
      l;
    Buffer.add_char buf ']'
  | J_obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        render_json buf (J_str k);
        Buffer.add_char buf ':';
        render_json buf v)
      fields;
    Buffer.add_char buf '}'

let write_json path json =
  let buf = Buffer.create 1024 in
  render_json buf json;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n" path

let columns widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s" w c) widths cells;
  print_newline ()

let fmt_ms ms = Printf.sprintf "%.3f" ms
let fmt_bytes b = Printf.sprintf "%d" b

let sep () = print_newline ()

(* Builds a Lazy_db from an edit schedule. *)
let load_db engine edits =
  let db = Lazy_xml.Lazy_db.create ~engine () in
  List.iter (fun (gp, frag) -> Lazy_xml.Lazy_db.insert db ~gp frag) edits;
  db

(* Builds an update log (LD or LS) from an edit schedule.
   [cache_bytes] sets the read-side segment-cache budget ([0]
   disables it). *)
let load_log ?cache_bytes mode edits =
  let log = Lxu_seglog.Update_log.create ~mode ?cache_bytes () in
  List.iter (fun (gp, frag) -> ignore (Lxu_seglog.Update_log.insert log ~gp frag)) edits;
  log

(* Builds the traditional interval store from an edit schedule. *)
let load_store edits =
  let store = Lxu_labeling.Interval_store.create () in
  List.iter (fun (gp, frag) -> Lxu_labeling.Interval_store.insert store ~gp frag) edits;
  store

(* The three query timers used across figures; all measure the join
   itself, on label pairs, the way the paper does.  The LS timer
   includes the pre-query sort/rebuild that discipline defers. *)
let time_ld log ~anc ~desc =
  Lxu_seglog.Update_log.prepare_for_query log;
  measure (fun () -> ignore (Lxu_join.Lazy_join.run log ~anc ~desc ()))

let time_ls log ~anc ~desc =
  measure (fun () ->
      Lxu_seglog.Update_log.mark_stale log;
      ignore (Lxu_join.Lazy_join.run log ~anc ~desc ()))

(* STD as the paper runs it over the same store (§4): fetch every
   element of both tags from the element index, translate local labels
   to global intervals through the SB-tree, sort, then Stack-Tree-Desc.
   Reading and translating the full lists is part of the measured cost,
   exactly as reading the full element lists is for the paper's STD. *)
let time_std log ~anc ~desc =
  Lxu_seglog.Update_log.prepare_for_query log;
  measure (fun () -> ignore (Lxu_join.Std_baseline.run log ~anc ~desc ()))
