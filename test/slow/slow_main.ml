(* The full crash-recovery acceptance matrix: >= 30 randomized
   workloads, each crashed at every WAL record boundary and under
   injected torn / bit-flipped / duplicated tails.  Quick versions of
   the same sweep run under the default test alias (test_recovery.ml);
   this one is the slow tier:

     dune build @slow

   LXU_CRASH_SEEDS / LXU_CRASH_OPS override the matrix size. *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let () =
  let seeds = int_env "LXU_CRASH_SEEDS" 48 in
  let target_ops = int_env "LXU_CRASH_OPS" 48 in
  Printf.printf "crash matrix: %d workloads x ~%d ops, every record boundary + 3 faults each\n%!"
    seeds target_ops;
  Lxu_crash_harness.Crash_harness.run_matrix ~seeds:(List.init seeds (fun i -> i + 1)) ~target_ops;
  Printf.printf "crash matrix: all %d workloads recovered byte-identically\n%!" seeds
