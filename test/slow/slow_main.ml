(* The slow acceptance tier:

   - the full crash-recovery matrix: >= 30 randomized workloads, each
     crashed at every WAL record boundary and under injected torn /
     bit-flipped / duplicated tails;
   - the full overload chaos matrix: LD and STD engines x sequential
     and 4-domain parallelism x several seeds, each run asserting
     typed shedding, bounded cancellation, a torn-state-free
     post-pressure fingerprint, and a mixed read/write phase with
     parked snapshot pins under an insert_many stream;
   - the full MVCC snapshot-isolation matrix: domains {1,4} x several
     seeds, every pinned read proved byte-identical to a
     single-threaded replay frozen at its epoch, with zero leaked
     versions at quiescence;
   - the full parser mutation-fuzz corpus;
   - the full maintenance chaos matrix: churn workloads interleaved
     with background maintenance, crashed at every maintenance-step
     and checkpoint-truncation boundary (plus torn/bit-flipped tails
     and backup restores), and a point-in-time restore sweep proving
     every committed prefix state reconstructible.

   Quick versions of all four run under the default test alias; this
   tier is:

     dune build @slow

   LXU_CRASH_SEEDS / LXU_CRASH_OPS / LXU_OVERLOAD_SEEDS /
   LXU_MVCC_SEEDS / LXU_MVCC_OPS / LXU_FUZZ_SEEDS / LXU_MAINT_SEEDS /
   LXU_MAINT_OPS override the matrix sizes. *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let () =
  let seeds = int_env "LXU_CRASH_SEEDS" 48 in
  let target_ops = int_env "LXU_CRASH_OPS" 48 in
  Printf.printf "crash matrix: %d workloads x ~%d ops, every record boundary + 3 faults each\n%!"
    seeds target_ops;
  Lxu_crash_harness.Crash_harness.run_matrix ~seeds:(List.init seeds (fun i -> i + 1)) ~target_ops;
  Printf.printf "crash matrix: all %d workloads recovered byte-identically\n%!" seeds;
  let overload_seeds = int_env "LXU_OVERLOAD_SEEDS" 6 in
  Printf.printf "overload matrix: {LD,STD} x domains {1,4} x %d seeds\n%!" overload_seeds;
  Lxu_crash_harness.Overload_harness.run_matrix
    ~engines:[ Lazy_xml.Lazy_db.LD; Lazy_xml.Lazy_db.STD ]
    ~domains:[ 1; 4 ]
    ~seeds:(List.init overload_seeds (fun i -> i + 1));
  Printf.printf "overload matrix: no hangs, typed shedding, fingerprints identical\n%!";
  let mvcc_seeds = int_env "LXU_MVCC_SEEDS" 8 in
  let mvcc_ops = int_env "LXU_MVCC_OPS" 40 in
  Printf.printf "mvcc matrix: domains {1,4} x %d seeds x ~%d ops\n%!" mvcc_seeds mvcc_ops;
  Lxu_crash_harness.Mvcc_harness.run_matrix
    ~seeds:(List.init mvcc_seeds (fun i -> i + 1))
    ~target_ops:mvcc_ops ~domains:[ 1; 4 ];
  Printf.printf "mvcc matrix: zero isolation divergences, zero leaked versions\n%!";
  let fuzz_seeds = int_env "LXU_FUZZ_SEEDS" 40 in
  Lxu_crash_harness.Parser_fuzz.run_corpus
    ~seeds:(List.init fuzz_seeds (fun i -> (i * 7919) + 1))
    ~rounds:250;
  Printf.printf "parser fuzz: %d seeds x 250 mutants, parser stayed total\n%!" fuzz_seeds;
  let maint_seeds = int_env "LXU_MAINT_SEEDS" 12 in
  let maint_ops = int_env "LXU_MAINT_OPS" 36 in
  Printf.printf
    "maint matrix: %d churn workloads x ~%d ops, crash at every maintenance boundary + pitr sweep\n%!"
    maint_seeds maint_ops;
  Lxu_crash_harness.Maint_harness.run_matrix
    ~seeds:(List.init maint_seeds (fun i -> i + 1))
    ~target_ops:maint_ops;
  Printf.printf "maint matrix: all recoveries fingerprint-identical, every prefix restorable\n%!"
