(* Tests for the element index: key ordering, per-segment scans,
   deletion bookkeeping. *)

open Lxu_seglog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let key ~tid ~sid ~start ~stop ~level = { Element_index.tid; sid; start; stop; level }

let sample () =
  let idx = Element_index.create ~branching:4 () in
  List.iter (Element_index.add idx)
    [
      key ~tid:1 ~sid:1 ~start:0 ~stop:20 ~level:0;
      key ~tid:1 ~sid:1 ~start:3 ~stop:9 ~level:1;
      key ~tid:1 ~sid:2 ~start:0 ~stop:4 ~level:2;
      key ~tid:2 ~sid:1 ~start:10 ~stop:18 ~level:1;
      key ~tid:2 ~sid:3 ~start:0 ~stop:8 ~level:0;
    ];
  idx

let test_size () =
  let idx = sample () in
  check_int "size" 5 (Element_index.size idx);
  check_bool "height" true (Element_index.height idx >= 1);
  check_bool "bytes" true (Element_index.size_bytes idx > 0)

let test_segment_scan_order () =
  let idx = sample () in
  let starts = ref [] in
  Element_index.iter_segment idx ~tid:1 ~sid:1 (fun k ->
      starts := k.Element_index.start :: !starts;
      true);
  Alcotest.(check (list int)) "local order" [ 0; 3 ] (List.rev !starts)

let test_segment_scan_isolation () =
  let idx = sample () in
  (* tid 1 / sid 2 must not leak records of sid 1 or tid 2. *)
  let got = Element_index.elements_of_segment idx ~tid:1 ~sid:2 in
  check_int "one record" 1 (Array.length got);
  check_int "right one" 2 got.(0).Element_index.sid;
  check_int "empty pair" 0 (Array.length (Element_index.elements_of_segment idx ~tid:2 ~sid:2))

let test_early_stop () =
  let idx = sample () in
  let n = ref 0 in
  Element_index.iter_segment idx ~tid:1 ~sid:1 (fun _ ->
      incr n;
      false);
  check_int "stopped after one" 1 !n

let test_remove () =
  let idx = sample () in
  check_bool "removed" true
    (Element_index.remove idx (key ~tid:1 ~sid:1 ~start:3 ~stop:9 ~level:1));
  check_bool "gone" false
    (Element_index.remove idx (key ~tid:1 ~sid:1 ~start:3 ~stop:9 ~level:1));
  check_int "size" 4 (Element_index.size idx)

let test_accesses_counted () =
  let idx = sample () in
  let before = Element_index.accesses idx in
  ignore (Element_index.elements_of_segment idx ~tid:1 ~sid:1);
  check_bool "counted" true (Element_index.accesses idx > before)

let test_accesses_exact () =
  let idx = sample () in
  (* tid 1 / sid 1 holds two records, and the tree has keys past them:
     the scan must count exactly the matching records, not the
     terminating sentinel key. *)
  let before = Element_index.accesses idx in
  ignore (Element_index.elements_of_segment idx ~tid:1 ~sid:1);
  check_int "exact accesses" 2 (Element_index.accesses idx - before);
  (* An empty scan touches no records at all. *)
  let before = Element_index.accesses idx in
  ignore (Element_index.elements_of_segment idx ~tid:2 ~sid:2);
  check_int "empty scan free" 0 (Element_index.accesses idx - before)

let test_cols_of_segment () =
  let idx = sample () in
  let c = Element_index.cols_of_segment idx ~tid:1 ~sid:1 in
  check_int "len" 2 (Seg_cache.cols_length c);
  Alcotest.(check (list int)) "starts" [ 0; 3 ] (Array.to_list c.Seg_cache.starts);
  Alcotest.(check (list int)) "stops" [ 20; 9 ] (Array.to_list c.Seg_cache.stops);
  Alcotest.(check (list int)) "levels" [ 0; 1 ] (Array.to_list c.Seg_cache.levels);
  check_int "empty cols" 0
    (Seg_cache.cols_length (Element_index.cols_of_segment idx ~tid:2 ~sid:2))

let test_iter_all () =
  let idx = sample () in
  let n = ref 0 in
  Element_index.iter_all idx (fun _ -> incr n);
  check_int "all" 5 !n

let test_many_records () =
  let idx = Element_index.create ~branching:4 () in
  for sid = 1 to 20 do
    for i = 0 to 49 do
      Element_index.add idx (key ~tid:(i mod 3) ~sid ~start:(i * 10) ~stop:((i * 10) + 5) ~level:0)
    done
  done;
  check_int "size" 1000 (Element_index.size idx);
  let per_seg = Element_index.elements_of_segment idx ~tid:1 ~sid:7 in
  check_int "scan count" 17 (Array.length per_seg);
  let sorted = Array.to_list (Array.map (fun k -> k.Element_index.start) per_seg) in
  check_bool "sorted" true (sorted = List.sort compare sorted)

let suite =
  [
    Alcotest.test_case "size and stats" `Quick test_size;
    Alcotest.test_case "segment scan order" `Quick test_segment_scan_order;
    Alcotest.test_case "segment scan isolation" `Quick test_segment_scan_isolation;
    Alcotest.test_case "early stop" `Quick test_early_stop;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "accesses counted" `Quick test_accesses_counted;
    Alcotest.test_case "accesses exact (no sentinel)" `Quick test_accesses_exact;
    Alcotest.test_case "cols_of_segment" `Quick test_cols_of_segment;
    Alcotest.test_case "iter_all" `Quick test_iter_all;
    Alcotest.test_case "many records" `Quick test_many_records;
  ]
