(* Tests for the growable-array substrate. *)

open Lxu_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 7" 49 (Vec.get v 7);
  check_int "last" (99 * 99) (Vec.last v)

let test_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set" (Invalid_argument "Vec: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_insert_remove () =
  let v = Vec.of_list [ 0; 1; 3; 4 ] in
  Vec.insert_at v 2 2;
  check_list "after insert" [ 0; 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.insert_at v 5 5;
  check_list "append via insert" [ 0; 1; 2; 3; 4; 5 ] (Vec.to_list v);
  check_int "removed" 3 (Vec.remove_at v 3);
  check_list "after remove" [ 0; 1; 2; 4; 5 ] (Vec.to_list v);
  Vec.remove_range v 1 3;
  check_list "after remove_range" [ 0; 5 ] (Vec.to_list v)

let test_truncate () =
  let v = Vec.of_list [ 0; 1; 2; 3; 4 ] in
  Vec.truncate v 5;
  check_list "noop at length" [ 0; 1; 2; 3; 4 ] (Vec.to_list v);
  Vec.truncate v 2;
  check_list "dropped tail" [ 0; 1 ] (Vec.to_list v);
  Vec.push v 9;
  check_list "push after truncate" [ 0; 1; 9 ] (Vec.to_list v);
  Vec.truncate v 0;
  check_list "empty" [] (Vec.to_list v);
  Alcotest.check_raises "past length" (Invalid_argument "Vec.truncate") (fun () ->
      Vec.truncate v 1)

let test_pop () =
  let v = Vec.of_list [ 1; 2 ] in
  check_int "pop" 2 (Vec.pop v);
  check_int "pop" 1 (Vec.pop v);
  Alcotest.check_raises "empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_lower_bound () =
  let v = Vec.of_list [ 2; 4; 4; 8; 16 ] in
  let lb x = Vec.lower_bound v ~compare:(fun e -> Int.compare e x) in
  check_int "before all" 0 (lb 1);
  check_int "exact" 1 (lb 4);
  check_int "between" 3 (lb 5);
  check_int "past end" 5 (lb 100)

let test_sort_fold () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort Int.compare v;
  check_list "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  check_int "sum" 6 (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 2) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 9) v)

let prop_insert_matches_list =
  let gen = QCheck2.Gen.(list_size (int_range 0 100) (pair (int_bound 1000) (int_bound 100))) in
  QCheck2.Test.make ~name:"vec insert_at matches list model" ~count:300 gen
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (x, pos) ->
          let i = pos mod (Vec.length v + 1) in
          Vec.insert_at v i x;
          let rec ins l n = if n = 0 then x :: l else List.hd l :: ins (List.tl l) (n - 1) in
          model := ins !model i)
        ops;
      Vec.to_list v = !model)

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "insert/remove" `Quick test_insert_remove;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "pop" `Quick test_pop;
    Alcotest.test_case "lower_bound" `Quick test_lower_bound;
    Alcotest.test_case "sort/fold/exists" `Quick test_sort_fold;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_insert_matches_list ]
