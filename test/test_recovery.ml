(* Crash recovery at the database level: durable WAL wiring,
   checkpoint + suffix restarts, in-place repair of torn tails, group
   commit via [batch], and the error paths.  A quick slice of the
   crash–recover differential matrix runs here; the full >= 30-seed
   acceptance sweep is [dune build @slow]. *)

open Lazy_xml
module H = Lxu_crash_harness.Crash_harness
module Wal = Lxu_storage.Wal
module Wal_store = Lxu_storage.Wal_store
module Recovery = Lxu_storage.Recovery

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_test_recovery_%d_%s_%d" (Unix.getpid ()) tag !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir tag f =
  let dir = fresh_dir tag in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A durable database in [dir] with [H.gen_ops ~seed] applied, closed,
   plus the fingerprint it must recover to. *)
let build_durable ?after dir ~seed ~target_ops =
  let ops = H.gen_ops ~seed ~target_ops in
  let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
  List.iter (H.apply db) ops;
  (match after with Some f -> f db | None -> ());
  let fp = H.fingerprint db in
  Lazy_db.close db;
  (ops, fp)

let test_durable_roundtrip () =
  with_dir "roundtrip" (fun dir ->
      let ops, fp = build_durable dir ~seed:11 ~target_ops:15 in
      let db, report = Lazy_db.recover dir in
      check_string "recovered state" fp (H.fingerprint db);
      check_int "every op replayed" (List.length ops) report.Recovery.records_applied;
      check_bool "clean" true (report.Recovery.corruption = None);
      Lazy_db.check db;
      Lazy_db.close db)

let test_checkpoint_and_suffix () =
  with_dir "ckpt" (fun dir ->
      let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      let ops = H.gen_ops ~seed:12 ~target_ops:16 in
      List.iteri
        (fun i op ->
          H.apply db op;
          if i = 7 then Lazy_db.checkpoint db)
        ops;
      let fp = H.fingerprint db in
      Lazy_db.close db;
      let db', report = Lazy_db.recover dir in
      check_string "snapshot + suffix" fp (H.fingerprint db');
      check_bool "recovered from a snapshot" true (report.Recovery.snapshot_lsn > 0);
      check_int "only the suffix replays" (List.length ops - 8) report.Recovery.records_applied;
      Lazy_db.close db')

let test_recover_then_continue () =
  with_dir "continue" (fun dir ->
      let _, _ = build_durable dir ~seed:13 ~target_ops:10 in
      let db, _ = Lazy_db.recover dir in
      let more = H.gen_ops ~seed:14 ~target_ops:6 in
      (* Replaying different ops onto the recovered text may be
         invalid; filter to those that still apply. *)
      List.iter (fun op -> try H.apply db op with _ -> ()) more;
      let fp = H.fingerprint db in
      Lazy_db.close db;
      let db', report = Lazy_db.recover dir in
      check_string "appends after recovery survive" fp (H.fingerprint db');
      check_bool "clean" true (report.Recovery.corruption = None);
      Lazy_db.close db')

let test_torn_tail_repaired_in_place () =
  with_dir "torn" (fun dir ->
      let _, _ = build_durable dir ~seed:15 ~target_ops:12 in
      let wal = Wal_store.wal_path dir in
      let bytes = read_file wal in
      let clean = Wal.scan bytes in
      let n = List.length clean.Wal.records in
      write_file wal (String.sub bytes 0 (String.length bytes - 5));
      let db, report = Lazy_db.recover dir in
      check_int "lost exactly the torn record" (n - 1) report.Recovery.records_applied;
      check_bool "tear reported" true (report.Recovery.corruption <> None);
      Lazy_db.close db;
      (* The tail was truncated on disk: a second recovery is clean. *)
      let rescan = Wal.scan (read_file wal) in
      check_bool "wal repaired" true (rescan.Wal.corruption = None);
      check_int "repaired length" report.Recovery.valid_bytes (String.length (read_file wal));
      let db', report' = Lazy_db.recover dir in
      check_bool "second recovery clean" true (report'.Recovery.corruption = None);
      check_int "same state" (n - 1) report'.Recovery.records_applied;
      Lazy_db.close db')

let test_batch_group_commit () =
  with_dir "batch" (fun dir ->
      let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      let ops = H.gen_ops ~seed:16 ~target_ops:12 in
      Lazy_db.batch db (fun () -> List.iter (H.apply db) ops);
      let fp = H.fingerprint db in
      Lazy_db.close db;
      let db', report = Lazy_db.recover dir in
      check_string "batched updates recover" fp (H.fingerprint db');
      check_int "all records" (List.length ops) report.Recovery.records_applied;
      Lazy_db.close db')

let test_load_with_durability () =
  with_dir "load" (fun dir ->
      (* Build a plain snapshot, then open it durably. *)
      let src = Lazy_db.create ~index_attributes:true () in
      List.iter (H.apply src) (H.gen_ops ~seed:17 ~target_ops:8);
      let snap = Filename.concat (Filename.get_temp_dir_name ()) "lazyxml_test_load_src" in
      Lazy_db.save src snap;
      Fun.protect
        ~finally:(fun () -> Sys.remove snap)
        (fun () ->
          let db = Lazy_db.load ~durability:(`Wal dir) snap in
          Lazy_db.insert db ~gp:0 "<a/>";
          let fp = H.fingerprint db in
          Lazy_db.close db;
          let db', _ = Lazy_db.recover dir in
          check_string "loaded base + wal suffix" fp (H.fingerprint db');
          Lazy_db.close db'))

let test_quick_matrix () =
  (* A quick slice of the @slow acceptance matrix. *)
  H.run_matrix ~seeds:[ 1; 2; 3; 4; 5; 6 ] ~target_ops:12

let test_error_paths () =
  with_dir "errors" (fun dir ->
      (* Nothing recoverable: the message names the directory. *)
      (match Lazy_db.recover dir with
      | exception Failure msg -> check_bool "recover names dir" true (contains ~needle:dir msg)
      | _ -> Alcotest.fail "recovered from an empty directory");
      (* Malformed snapshot: path in the message. *)
      let snap = Wal_store.snapshot_path dir in
      write_file snap "LXUCKPT1 lsn garbage\n";
      (match Recovery.read_snapshot ~path:snap () with
      | exception Failure msg -> check_bool "snapshot names path" true (contains ~needle:snap msg)
      | _ -> Alcotest.fail "malformed checkpoint accepted");
      Sys.remove snap);
  (* Lazy_db.load wraps Update_log failures with the path. *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "lazyxml_test_badsnap" in
  write_file path "junk";
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Lazy_db.load path with
      | exception Failure msg -> check_bool "load names path" true (contains ~needle:path msg)
      | _ -> Alcotest.fail "junk snapshot accepted")

let test_std_rejects_durability () =
  check_bool "STD + WAL rejected" true
    (match Lazy_db.create ~engine:Lazy_db.STD ~durability:(`Wal (fresh_dir "std")) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "durable roundtrip" `Quick test_durable_roundtrip;
    Alcotest.test_case "checkpoint + suffix" `Quick test_checkpoint_and_suffix;
    Alcotest.test_case "recover then continue" `Quick test_recover_then_continue;
    Alcotest.test_case "torn tail repaired in place" `Quick test_torn_tail_repaired_in_place;
    Alcotest.test_case "batch group commit" `Quick test_batch_group_commit;
    Alcotest.test_case "load with durability" `Quick test_load_with_durability;
    Alcotest.test_case "quick crash matrix" `Quick test_quick_matrix;
    Alcotest.test_case "error paths name files" `Quick test_error_paths;
    Alcotest.test_case "STD rejects durability" `Quick test_std_rejects_durability;
  ]
