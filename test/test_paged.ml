(* The paged storage engine: page-backed B+-trees over the
   copy-on-write page store, differentially against the in-memory
   backend — same keys in, same answers out — plus the crash shapes
   the shadow-paging protocol must survive (rollback to the last
   checkpoint, torn meta pages, torn data files) and the beyond-RAM
   acceptance path: a document larger than the buffer-pool budget
   that still ingests, checkpoints, recovers and answers planned twig
   queries exactly like the in-memory engine. *)

open Lazy_xml
module H = Lxu_crash_harness.Crash_harness
module Sim_file = Lxu_storage.Sim_file
module Page_file = Lxu_storage.Page_file
module Page_store = Lxu_storage.Page_store
module Paged_bptree = Lxu_btree.Paged_bptree
module Rng = Lxu_workload.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_dir tag f =
  let dir = H.fresh_dir ("paged_" ^ tag) in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> H.rm_rf dir) (fun () -> f dir)

(* Small pages so a few hundred keys already build a multi-level
   tree: splits, separators and the lazy-deletion paths all fire. *)
let small_store ?(page_size = 512) () =
  Page_store.create ~device:(Sim_file.in_memory ()) ~page_size ()

(* --- paged B+-tree vs Map, random schedule -------------------------- *)

module IPM = Map.Make (struct
  type t = int * int

  let compare = compare
end)

let test_bptree_differential () =
  let ps = small_store () in
  let tr = Paged_bptree.create ps ~slot:"t" ~kw:2 ~vw:1 in
  let rng = Rng.create 42 in
  let model = ref IPM.empty in
  let key () = (Rng.int rng 200, Rng.int rng 50) in
  for step = 1 to 3000 do
    let (a, b) as k = key () in
    if Rng.int rng 4 = 0 then begin
      let removed = Paged_bptree.remove tr [| a; b |] in
      check_bool "remove agrees" (IPM.mem k !model) removed;
      model := IPM.remove k !model
    end
    else begin
      let v = Rng.int rng 1000 in
      Paged_bptree.insert tr [| a; b |] [| v |];
      model := IPM.add k v !model
    end;
    if step mod 500 = 0 then begin
      Paged_bptree.check_invariants tr;
      check_int "length" (IPM.cardinal !model) (Paged_bptree.length tr)
    end
  done;
  (* Point lookups. *)
  let vbuf = [| 0 |] in
  for _ = 1 to 500 do
    let (a, b) as k = key () in
    match IPM.find_opt k !model with
    | Some v ->
      check_bool "find hit" true (Paged_bptree.find tr [| a; b |] ~value:vbuf);
      check_int "find value" v vbuf.(0)
    | None -> check_bool "find miss" false (Paged_bptree.mem tr [| a; b |])
  done;
  (* Full scan order and content. *)
  let got = ref [] in
  Paged_bptree.iter tr (fun kb vb ->
      got := ((kb.(0), kb.(1)), vb.(0)) :: !got;
      true);
  let expect = IPM.bindings !model in
  check_int "scan cardinality" (List.length expect) (List.length !got);
  List.iter2
    (fun (ek, ev) (gk, gv) ->
      check_bool "scan key" true (ek = gk);
      check_int "scan value" ev gv)
    expect
    (List.rev !got);
  (* Bounded scan from a midpoint. *)
  let lo = (100, 0) in
  let got = ref [] in
  Paged_bptree.iter_from tr [| 100; 0 |] (fun kb vb ->
      got := ((kb.(0), kb.(1)), vb.(0)) :: !got;
      true);
  let expect = List.filter (fun (k, _) -> k >= lo) expect in
  check_int "bounded scan" (List.length expect) (List.length !got);
  Page_store.close ps

let test_bptree_bulk () =
  let ps = small_store () in
  let tr = Paged_bptree.create ps ~slot:"t" ~kw:1 ~vw:1 in
  let n = 5000 in
  Paged_bptree.load_sorted tr ~n ~get:(fun i kb vb ->
      kb.(0) <- 2 * i;
      vb.(0) <- i);
  Paged_bptree.check_invariants tr;
  check_int "bulk length" n (Paged_bptree.length tr);
  (* Merge a batch that half-overlaps (replace) and half-extends. *)
  Paged_bptree.insert_sorted_batch tr ~n ~get:(fun i kb vb ->
      kb.(0) <- (2 * i) + (i mod 2);
      vb.(0) <- 100000 + i);
  Paged_bptree.check_invariants tr;
  let vbuf = [| 0 |] in
  check_bool "batch replaced" true (Paged_bptree.find tr [| 0 |] ~value:vbuf);
  check_int "batch wins tie" 100000 vbuf.(0);
  check_bool "batch extended" true (Paged_bptree.mem tr [| (2 * 4999) + 1 |]);
  (* Lazy deletion down to empty, then reuse. *)
  Paged_bptree.iter tr (fun _ _ -> true);
  Paged_bptree.clear tr;
  check_int "cleared" 0 (Paged_bptree.length tr);
  Paged_bptree.insert tr [| 7 |] [| 8 |];
  check_bool "reusable after clear" true (Paged_bptree.mem tr [| 7 |]);
  Page_store.close ps

(* --- checkpoint durability and crash rollback ------------------------ *)

let fill tr lo hi =
  for i = lo to hi - 1 do
    Paged_bptree.insert tr [| i |] [| i * i |]
  done

let test_checkpoint_reopen () =
  with_dir "reopen" (fun dir ->
      let path = Filename.concat dir "pages" in
      let ps = Page_store.create ~device:(Sim_file.open_path path) ~page_size:512 () in
      let tr = Paged_bptree.create ps ~slot:"t" ~kw:1 ~vw:1 in
      fill tr 0 1000;
      Page_store.checkpoint ps ~lsn:7;
      Page_store.close ps;
      let ps = Page_store.open_existing ~device:(Sim_file.open_path ~append:true path) () in
      check_int "checkpoint lsn survives" 7 (Page_store.checkpoint_lsn ps);
      let tr = Paged_bptree.attach ps ~slot:"t" ~kw:1 ~vw:1 in
      Paged_bptree.check_invariants tr;
      check_int "reopened length" 1000 (Paged_bptree.length tr);
      let vbuf = [| 0 |] in
      check_bool "reopened find" true (Paged_bptree.find tr [| 999 |] ~value:vbuf);
      check_int "reopened value" (999 * 999) vbuf.(0);
      Page_store.close ps)

(* Uncheckpointed work after a checkpoint rolls back to the checkpoint
   — the COW protocol must never overwrite a durably referenced page. *)
let test_crash_rollback () =
  let device = Sim_file.in_memory ~write_back:true () in
  let ps = Page_store.create ~device ~page_size:512 () in
  let tr = Paged_bptree.create ps ~slot:"t" ~kw:1 ~vw:1 in
  fill tr 0 500;
  Page_store.checkpoint ps ~lsn:1;
  (* Epoch 2: overwrite half the keys, delete a quarter, add new ones —
     all COW relocations of durable pages.  Then crash (drop every
     unsynced write). *)
  for i = 0 to 249 do
    Paged_bptree.insert tr [| i |] [| -1 |]
  done;
  for i = 250 to 374 do
    ignore (Paged_bptree.remove tr [| i |])
  done;
  fill tr 500 700;
  Sim_file.crash device;
  let ps2 = Page_store.open_existing ~device () in
  check_int "rolled back to lsn" 1 (Page_store.checkpoint_lsn ps2);
  let tr2 = Paged_bptree.attach ps2 ~slot:"t" ~kw:1 ~vw:1 in
  Paged_bptree.check_invariants tr2;
  check_int "rolled back length" 500 (Paged_bptree.length tr2);
  let vbuf = [| 0 |] in
  for i = 0 to 499 do
    check_bool "key present" true (Paged_bptree.find tr2 [| i |] ~value:vbuf);
    check_int "pre-crash value" (i * i) vbuf.(0)
  done;
  check_bool "post-checkpoint key gone" false (Paged_bptree.mem tr2 [| 600 |])

let test_torn_page_detected () =
  let device = Sim_file.in_memory () in
  let pf = Page_file.create ~device ~page_size:512 in
  let payload = Bytes.make (Page_file.payload_bytes pf) 'x' in
  Page_file.write pf 3 payload;
  (* Tear the tail off the next write of page 4: the checksum must
     catch it on read. *)
  Sim_file.inject device ~nth_write:(Sim_file.writes device) (Sim_file.Truncate_tail 100);
  Page_file.write pf 4 payload;
  let buf = Bytes.create (Page_file.payload_bytes pf) in
  Page_file.read pf 3 buf;
  check_bool "intact page reads" true (Bytes.equal buf payload);
  check_bool "torn page detected" true
    (match Page_file.read pf 4 buf with
    | () -> false
    | exception Page_file.Torn_page _ -> true)

(* A torn write of the newest meta page must fall back to the previous
   generation, not fail the open. *)
let test_torn_meta_fallback () =
  let device = Sim_file.in_memory () in
  let ps = Page_store.create ~device ~page_size:512 () in
  let tr = Paged_bptree.create ps ~slot:"t" ~kw:1 ~vw:1 in
  fill tr 0 100;
  Page_store.checkpoint ps ~lsn:1 (* gen 1, meta at pid 2 *);
  fill tr 100 200;
  Page_store.checkpoint ps ~lsn:2 (* gen 2, meta at pid 1 *);
  (* Smash generation 2's meta page the way a torn sector would. *)
  Sim_file.write_at device ~off:512 (String.make 512 '\xff');
  let ps2 = Page_store.open_existing ~device () in
  check_int "fell back to gen 1" 1 (Page_store.checkpoint_lsn ps2);
  let tr2 = Paged_bptree.attach ps2 ~slot:"t" ~kw:1 ~vw:1 in
  Paged_bptree.check_invariants tr2;
  check_int "gen-1 state" 100 (Paged_bptree.length tr2)

(* --- database level: paged vs mem, fingerprint-identical ------------- *)

let apply_all db ops = List.iter (H.apply db) ops

let test_db_paged_matches_mem () =
  List.iter
    (fun domains ->
      List.iter
        (fun seed ->
          let ops = H.gen_ops ~seed ~target_ops:18 in
          let mem = Lazy_db.create ~index_attributes:true ~domains ~storage:`Mem () in
          let paged = Lazy_db.create ~index_attributes:true ~domains ~storage:`Paged () in
          check_bool "is paged" true (Lazy_db.storage_kind paged = `Paged);
          apply_all mem ops;
          apply_all paged ops;
          Lazy_db.check paged;
          H.check ~ctx:(Printf.sprintf "paged seed %d domains %d" seed domains)
            (H.fingerprint mem) paged;
          (* Maintenance over the paged store: rebuild re-indexes into
             fresh pages and must change nothing observable (both sides
             rebuilt — the fingerprint includes the segment count). *)
          Lazy_db.rebuild mem;
          Lazy_db.rebuild paged;
          Lazy_db.check paged;
          H.check ~ctx:(Printf.sprintf "paged rebuild seed %d" seed) (H.fingerprint mem) paged;
          Lazy_db.close paged;
          Lazy_db.close mem)
        [ 3; 5; 8 ])
    [ 1; 4 ]

(* qcheck: random schedules, paged differentially equal to mem, with a
   mid-schedule save/load round-trip through the paged backend. *)
let qcheck_paged_differential =
  QCheck.Test.make ~count:12 ~name:"paged backend fingerprint-identical (random schedules)"
    QCheck.(pair small_nat (bool))
    (fun (seed0, big) ->
      let seed = 1000 + seed0 in
      let target_ops = if big then 24 else 10 in
      let ops = H.gen_ops ~seed ~target_ops in
      let mem = Lazy_db.create ~index_attributes:true ~storage:`Mem () in
      let paged = Lazy_db.create ~index_attributes:true ~storage:`Paged () in
      apply_all mem ops;
      apply_all paged ops;
      let fp = H.fingerprint mem in
      H.check ~ctx:(Printf.sprintf "qcheck seed %d" seed) fp paged;
      (* Round-trip the paged database through save/load (indexes are
         rebuilt into a fresh paged store on load). *)
      let file = H.fresh_dir "paged_qc" ^ ".snap" in
      Lazy_db.save paged file;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
        (fun () ->
          let re = Lazy_db.load ~storage:`Paged file in
          Lazy_db.check re;
          H.check ~ctx:(Printf.sprintf "qcheck reload seed %d" seed) fp re;
          Lazy_db.close re);
      Lazy_db.close paged;
      Lazy_db.close mem;
      true)

(* --- durable paged databases: checkpoint attach and rebuild ---------- *)

let build_paged_durable dir ~seed ~target_ops ~checkpoint_at =
  let ops = H.gen_ops ~seed ~target_ops in
  let db =
    Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) ~storage:`Paged ()
  in
  List.iteri
    (fun i op ->
      H.apply db op;
      if i = checkpoint_at then Lazy_db.checkpoint db)
    ops;
  Lazy_db.checkpoint db;
  let fp = H.fingerprint db in
  Lazy_db.close db;
  (ops, fp)

let test_db_recover_attach () =
  with_dir "attach" (fun dir ->
      let _, fp = build_paged_durable dir ~seed:21 ~target_ops:16 ~checkpoint_at:7 in
      let db, report = Lazy_db.recover ~storage:`Paged dir in
      (* The final checkpoint emptied the WAL: recovery must attach the
         durable paged indexes rather than rebuild (LSNs match). *)
      check_int "nothing to replay" 0 report.Lxu_storage.Recovery.records_applied;
      check_bool "paged after recover" true (Lazy_db.storage_kind db = `Paged);
      check_string "attached state" fp (H.fingerprint db);
      Lazy_db.check db;
      (* The recovered handle keeps working: update, checkpoint, recover
         again. *)
      Lazy_db.insert db ~gp:0 "<re><co>x</co></re>";
      let fp2 = H.fingerprint db in
      Lazy_db.checkpoint db;
      Lazy_db.close db;
      let db2, _ = Lazy_db.recover ~storage:`Paged dir in
      check_string "second recover" fp2 (H.fingerprint db2);
      Lazy_db.close db2)

let test_db_recover_suffix_replay () =
  with_dir "suffix" (fun dir ->
      (* Checkpoint mid-stream, then more updates land in the WAL: the
         page store's LSN is behind the WAL tail, so recovery attaches
         the checkpointed trees and replays the suffix on top. *)
      let ops = H.gen_ops ~seed:22 ~target_ops:16 in
      let db =
        Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) ~storage:`Paged ()
      in
      List.iteri
        (fun i op ->
          H.apply db op;
          if i = 7 then Lazy_db.checkpoint db)
        ops;
      let fp = H.fingerprint db in
      Lazy_db.close db;
      let db2, report = Lazy_db.recover ~storage:`Paged dir in
      check_bool "replayed a suffix" true (report.Lxu_storage.Recovery.records_applied > 0);
      check_string "suffix state" fp (H.fingerprint db2);
      Lazy_db.check db2;
      Lazy_db.close db2)

let test_db_recover_rebuild_paths () =
  (* Every way the pages file can be unusable must degrade to a sound
     rebuild, never a wrong answer. *)
  let scenarios =
    [
      ("pages file deleted", fun dir -> Sys.remove (Filename.concat dir "pages"));
      ( "pages file truncated to garbage",
        fun dir -> H.write_file (Filename.concat dir "pages") "not a page store" );
      ( "both meta pages smashed",
        fun dir ->
          (* Preserve the header, destroy both meta slots: no valid
             meta survives, so open fails and recovery resets. *)
          let path = Filename.concat dir "pages" in
          let data = H.read_file path in
          let page = 8192 in
          if String.length data >= 3 * page then begin
            let b = Bytes.of_string data in
            Bytes.fill b page (2 * page) '\xff';
            H.write_file path (Bytes.to_string b)
          end );
      ( "recovered with mem storage instead",
        fun _ -> () (* exercised below via ~storage:`Mem *) );
    ]
  in
  List.iter
    (fun (name, corrupt) ->
      with_dir "rebuild" (fun dir ->
          let _, fp = build_paged_durable dir ~seed:23 ~target_ops:14 ~checkpoint_at:6 in
          corrupt dir;
          let storage = if name = "recovered with mem storage instead" then `Mem else `Paged in
          let db, _ = Lazy_db.recover ~storage dir in
          check_string name fp (H.fingerprint db);
          Lazy_db.check db;
          Lazy_db.close db))
    scenarios

let test_db_crash_between_checkpoints () =
  with_dir "mismatch" (fun dir ->
      (* A snapshot written without the page checkpoint (simulating the
         crash window): the LSNs mismatch, recovery must rebuild. *)
      let ops = H.gen_ops ~seed:24 ~target_ops:12 in
      let db =
        Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) ~storage:`Paged ()
      in
      apply_all db ops;
      Lazy_db.checkpoint db;
      Lazy_db.insert db ~gp:0 "<post><ckpt>y</ckpt></post>";
      let fp = H.fingerprint db in
      (match Lazy_db.log db with
      | Some lg ->
        (* Snapshot at the WAL head, page store left at the old LSN. *)
        let s = Option.get (Lazy_db.wal_dir db) in
        ignore s;
        Lxu_storage.Recovery.write_snapshot
          ~path:(Lxu_storage.Wal_store.snapshot_path dir)
          ~lsn:(List.length ops + 1) lg
      | None -> assert false);
      Lazy_db.close db;
      let db2, _ = Lazy_db.recover ~storage:`Paged dir in
      check_string "mismatched lsn rebuilds" fp (H.fingerprint db2);
      Lazy_db.check db2;
      Lazy_db.close db2)

(* --- beyond-RAM: document >> pool budget ----------------------------- *)

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let test_beyond_ram () =
  with_env "LXU_POOL_BYTES" "65536" (fun () ->
      with_dir "beyond" (fun dir ->
          (* Generated XML appended until the document is well past
             2x the 64 KiB pool: the element index cannot stay
             resident. *)
          let frag seed = Lxu_workload.Generator.generate_text ~seed ~target_elements:80 () in
          let mem = Lazy_db.create ~storage:`Mem () in
          let paged =
            Lazy_db.create ~storage:`Paged ~durability:(`Wal dir) ~cache_bytes:0 ()
          in
          let bytes = ref 0 and seed = ref 0 in
          while !bytes < 160_000 do
            incr seed;
            let f = frag !seed in
            Lazy_db.insert mem ~gp:!bytes f;
            Lazy_db.insert paged ~gp:!bytes f;
            bytes := !bytes + String.length f
          done;
          let stats = Option.get (Lazy_db.page_stats paged) in
          check_bool "doc exceeds 2x pool budget"
            true
            (Lazy_db.doc_length paged > 2 * stats.Page_store.pool.Lxu_storage.Buffer_pool.max_bytes);
          check_bool "pool actually evicted" true
            (stats.Page_store.pool.Lxu_storage.Buffer_pool.evictions > 0);
          (* Planned twig queries agree with the in-memory engine. *)
          let twig db = Path_query.eval_string db "//a//b/c" in
          check_bool "twig matches mem" true (twig mem = twig paged);
          let join db = fst (Lazy_db.query db ~anc:"a" ~desc:"d" ()) in
          check_bool "join matches mem" true (join mem = join paged);
          let fp = H.fingerprint mem in
          H.check ~ctx:"beyond-RAM ingest" fp paged;
          (* Checkpoint, crash-recover, still identical. *)
          Lazy_db.checkpoint paged;
          Lazy_db.close paged;
          let re, _ = Lazy_db.recover ~storage:`Paged dir in
          H.check ~ctx:"beyond-RAM recover" fp re;
          check_bool "twig matches after recover" true (twig mem = twig re);
          Lazy_db.check re;
          Lazy_db.close re;
          Lazy_db.close mem))

let suite =
  [
    Alcotest.test_case "paged bptree vs Map (random ops)" `Quick test_bptree_differential;
    Alcotest.test_case "paged bptree bulk load + batch merge" `Quick test_bptree_bulk;
    Alcotest.test_case "checkpoint + reopen" `Quick test_checkpoint_reopen;
    Alcotest.test_case "crash rolls back to checkpoint" `Quick test_crash_rollback;
    Alcotest.test_case "torn page detected by checksum" `Quick test_torn_page_detected;
    Alcotest.test_case "torn meta falls back a generation" `Quick test_torn_meta_fallback;
    Alcotest.test_case "paged db = mem db (schedules x domains)" `Quick test_db_paged_matches_mem;
    QCheck_alcotest.to_alcotest qcheck_paged_differential;
    Alcotest.test_case "recover attaches at matching lsn" `Quick test_db_recover_attach;
    Alcotest.test_case "recover attaches + replays wal suffix" `Quick test_db_recover_suffix_replay;
    Alcotest.test_case "recover rebuilds on damaged page store" `Quick test_db_recover_rebuild_paths;
    Alcotest.test_case "lsn mismatch forces rebuild" `Quick test_db_crash_between_checkpoints;
    Alcotest.test_case "beyond-RAM ingest + query + recover" `Quick test_beyond_ram;
  ]
