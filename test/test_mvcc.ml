(* MVCC snapshot reads: epoch-pinned snapshots must be isolated from
   every later update — verified against single-threaded replays — and
   retired versions must be reclaimed once nobody can pin them. *)

open Lazy_xml
module Crash_harness = Lxu_crash_harness.Crash_harness
module Mvcc_harness = Lxu_crash_harness.Mvcc_harness
module Seg_cache = Lxu_seglog.Seg_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Replays the first [k] schedule ops into a fresh store — the oracle
   a snapshot pinned at epoch [k] must match byte for byte. *)
let replay ~engine k ops =
  let db = Lazy_db.create ~engine ~index_attributes:true () in
  List.iteri (fun i op -> if i < k then Crash_harness.apply db op) ops;
  db

(* --- satellite: with_snapshot at epoch E = replay of first E ops ----- *)

let prop_snapshot_replay =
  QCheck2.Test.make ~name:"with_snapshot = prefix replay (LD/LS, packs + rebuilds)" ~count:10
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let ops = Crash_harness.gen_ops ~seed ~target_ops:20 in
      let n = List.length ops in
      List.iter
        (fun (engine, ename) ->
          let db = Lazy_db.create ~engine ~index_attributes:true () in
          (* Pin a snapshot at every prefix boundary and hold them all
             while the rest of the schedule — removes, packs, rebuilds
             included — applies. *)
          let pinned = ref [ (0, Lazy_db.snapshot db) ] in
          List.iteri
            (fun i op ->
              Crash_harness.apply db op;
              check_int (Printf.sprintf "seed %d %s epoch after op %d" seed ename i) (i + 1)
                (Lazy_db.epoch db);
              pinned := (i + 1, Lazy_db.snapshot db) :: !pinned)
            ops;
          (* Every held snapshot still fingerprints as its own epoch. *)
          List.iter
            (fun (e, snap) ->
              let expected = Crash_harness.fingerprint (replay ~engine e ops) in
              let got = Crash_harness.fingerprint snap in
              if got <> expected then
                Alcotest.failf
                  "seed %d %s: snapshot at epoch %d diverges from replay\n\
                  \  expected %S\n\
                  \  got      %S\n\
                  \  replay: seed=%d prefix=[%s]"
                  seed ename e expected got seed
                  (Crash_harness.ops_to_string (List.filteri (fun i _ -> i < e) ops)))
            !pinned;
          (* with_snapshot at the final epoch = the live state. *)
          Lazy_db.with_snapshot db (fun s ->
              check_bool (Printf.sprintf "seed %d %s final" seed ename) true
                (Crash_harness.fingerprint s = Crash_harness.fingerprint (replay ~engine n ops))))
        [ (Lazy_db.LD, "LD"); (Lazy_db.LS, "LS") ];
      true)

(* --- satellite: reader pinned across pack_subtree + checkpoint ------- *)

let test_pinned_across_pack_and_checkpoint () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_test_mvcc_wal_%d" (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let t = Shared_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      Shared_db.insert t ~gp:0 "<a><b/><b/></a>";
      Shared_db.insert t ~gp:3 "<c><b/></c>";
      let segs_before = Shared_db.read t Lazy_db.segment_count in
      let s = Shared_db.begin_snapshot t in
      let fp0 = Crash_harness.fingerprint (Shared_db.snapshot_db s) in
      let e0 = Shared_db.snapshot_epoch s in
      (* The whole document is packed into one segment, and the WAL is
         checkpointed away — the pinned reader must still see its
         original epoch (pre-PR the epoch invalidation handed it
         post-pack state). *)
      Shared_db.write t (fun db ->
          Lazy_db.pack_subtree db ~gp:0 ~len:(Lazy_db.doc_length db));
      Shared_db.checkpoint t;
      check_int "pack collapsed segments" 1 (Shared_db.read t Lazy_db.segment_count);
      check_bool "pack changed segmentation" true (segs_before > 1);
      check_int "pinned epoch unmoved" e0 (Shared_db.snapshot_epoch s);
      Alcotest.(check string)
        "pinned bytes unmoved" fp0
        (Crash_harness.fingerprint (Shared_db.snapshot_db s));
      (* The pinned snapshot still shows the pre-pack segmentation. *)
      check_int "pinned segments" segs_before (Lazy_db.segment_count (Shared_db.snapshot_db s));
      Shared_db.end_snapshot s;
      (* And once unpinned, nothing is retained or leaked. *)
      (match Shared_db.mvcc_stats t with
      | Some m ->
        check_int "one version at quiescence" 1 m.Shared_db.versions;
        check_int "no pins" 0 m.Shared_db.pinned
      | None -> Alcotest.fail "lazy engine has mvcc stats");
      Shared_db.close t)

(* --- Shared_db MVCC mechanics ---------------------------------------- *)

let test_version_lifecycle () =
  let t = Shared_db.create ~index_attributes:true () in
  Shared_db.insert t ~gp:0 "<a><b/><b/></a>";
  ignore (Shared_db.count t ~anc:"a" ~desc:"b" ());
  check_int "epoch after insert" 1 (Shared_db.current_epoch t);
  let s = Shared_db.begin_snapshot t in
  Shared_db.remove t ~gp:3 ~len:4;
  check_int "epoch after remove" 2 (Shared_db.current_epoch t);
  (match Shared_db.mvcc_stats t with
  | Some m ->
    check_int "pinned version retained" 2 m.Shared_db.versions;
    check_int "one pin" 1 m.Shared_db.pinned
  | None -> Alcotest.fail "mvcc stats");
  (* The pin reads pre-remove state — through the cache's retired
     version — while the live side reads post-remove state. *)
  check_int "pinned count" 2 (Lazy_db.count (Shared_db.snapshot_db s) ~anc:"a" ~desc:"b" ());
  check_int "live count" 1 (Shared_db.count t ~anc:"a" ~desc:"b" ());
  (match Shared_db.read t Lazy_db.cache_stats with
  | Some cs -> check_bool "retired versions held for the pin" true (cs.Seg_cache.retired_entries > 0)
  | None -> Alcotest.fail "cache stats");
  Shared_db.end_snapshot s;
  Shared_db.end_snapshot s (* idempotent *);
  (match Shared_db.mvcc_stats t with
  | Some m ->
    check_int "superseded version reclaimed" 1 m.Shared_db.versions;
    check_int "no pins" 0 m.Shared_db.pinned;
    check_int "floor caught up" 2 m.Shared_db.floor
  | None -> Alcotest.fail "mvcc stats");
  match Shared_db.read t Lazy_db.cache_stats with
  | Some cs -> check_int "retired versions swept" 0 cs.Seg_cache.retired_entries
  | None -> Alcotest.fail "cache stats"

let test_snapshot_is_read_only () =
  let t = Shared_db.create () in
  Shared_db.insert t ~gp:0 "<a/>";
  Shared_db.read t (fun db ->
      check_bool "read sees a frozen snapshot" true (Lazy_db.is_snapshot db);
      List.iter
        (fun (name, f) ->
          match f () with
          | () -> Alcotest.failf "%s accepted on a snapshot" name
          | exception Invalid_argument _ -> ())
        [
          ("insert", fun () -> Lazy_db.insert db ~gp:0 "<b/>");
          ("insert_many", fun () -> Lazy_db.insert_many db [ (0, "<b/>") ]);
          ("remove", fun () -> Lazy_db.remove db ~gp:0 ~len:4);
          ("rebuild", fun () -> Lazy_db.rebuild db);
          ("pack_subtree", fun () -> Lazy_db.pack_subtree db ~gp:0 ~len:4);
        ])

let test_std_keeps_locked_path () =
  let t = Shared_db.create ~engine:Lazy_db.STD () in
  Shared_db.insert t ~gp:0 "<a><b/></a>";
  check_int "std count" 1 (Shared_db.count t ~anc:"a" ~desc:"b" ());
  check_int "std epoch" 0 (Shared_db.current_epoch t);
  check_bool "no mvcc stats" true (Shared_db.mvcc_stats t = None);
  Alcotest.check_raises "begin_snapshot raises"
    (Invalid_argument "Shared_db.begin_snapshot: the STD engine keeps no versioned state")
    (fun () -> ignore (Shared_db.begin_snapshot t))

let test_std_snapshot_rejected () =
  let db = Lazy_db.create ~engine:Lazy_db.STD () in
  Alcotest.check_raises "snapshot raises"
    (Invalid_argument "Lazy_db.snapshot: the STD engine keeps no versioned state (use LD or LS)")
    (fun () -> ignore (Lazy_db.snapshot db))

(* --- quick slice of the isolation harness (full matrix under @slow) -- *)

let test_harness_quick () =
  List.iter
    (fun domains -> ignore (Mvcc_harness.run_one ~seed:1 ~target_ops:15 ~domains ()))
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "version lifecycle + reclamation" `Quick test_version_lifecycle;
    Alcotest.test_case "snapshots are read-only" `Quick test_snapshot_is_read_only;
    Alcotest.test_case "STD keeps the locked path" `Quick test_std_keeps_locked_path;
    Alcotest.test_case "STD snapshot rejected" `Quick test_std_snapshot_rejected;
    Alcotest.test_case "pinned across pack + checkpoint" `Quick
      test_pinned_across_pack_and_checkpoint;
    Alcotest.test_case "isolation harness quick slice" `Quick test_harness_quick;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_snapshot_replay ]
