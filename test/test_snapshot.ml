(* Snapshot persistence: a loaded database must behave byte-identically
   to the saved one — text, labels, queries, and subsequent updates. *)

open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("lazyxml_test_" ^ name)

let build_sample () =
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 "<lib></lib>";
  Lazy_db.insert db ~gp:5 "<book id=\"b1\"><title>t&amp;t</title></book>";
  Lazy_db.insert db ~gp:5 "<book id=\"b2\"><author>a</author></book>";
  (* A deletion, so tombstones are exercised by the snapshot. *)
  Lazy_db.remove db ~gp:19 ~len:18;
  db

let test_roundtrip_state () =
  let db = build_sample () in
  let path = tmp "roundtrip" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  Lazy_db.check db';
  check_string "text" (Lazy_db.text db) (Lazy_db.text db');
  check_int "segments" (Lazy_db.segment_count db) (Lazy_db.segment_count db');
  check_int "elements" (Lazy_db.element_count db) (Lazy_db.element_count db');
  check_bool "engine" true (Lazy_db.engine db' = Lazy_db.LD)

let test_labels_survive () =
  (* Local labels must be preserved exactly — not reassigned by a
     reparse.  Compare raw join pairs on (sid, start) identity. *)
  let db = build_sample () in
  let log = Option.get (Lazy_db.log db) in
  let pairs, _ = Lxu_join.Lazy_join.run log ~anc:"book" ~desc:"title" () in
  let path = tmp "labels" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  let log' = Option.get (Lazy_db.log db') in
  let pairs', _ = Lxu_join.Lazy_join.run log' ~anc:"book" ~desc:"title" () in
  check_bool "identical (sid, start) pairs" true (pairs = pairs')

let test_queries_after_load () =
  let db = build_sample () in
  let path = tmp "queries" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  List.iter
    (fun (anc, desc) ->
      check_int
        (anc ^ "//" ^ desc)
        (Lazy_db.count db ~anc ~desc ())
        (Lazy_db.count db' ~anc ~desc ()))
    [ ("lib", "book"); ("book", "title"); ("book", "@id"); ("lib", "author") ]

let test_updates_after_load () =
  let db = build_sample () in
  let path = tmp "updates" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  (* Apply the same edit to both; they must stay in lockstep. *)
  let at = 5 in
  let frag = "<book id=\"b3\"/>" in
  Lazy_db.insert db ~gp:at frag;
  Lazy_db.insert db' ~gp:at frag;
  check_string "same text" (Lazy_db.text db) (Lazy_db.text db');
  check_int "same count" (Lazy_db.count db ~anc:"lib" ~desc:"book" ())
    (Lazy_db.count db' ~anc:"lib" ~desc:"book" ());
  Lazy_db.check db'

let test_ls_mode_roundtrip () =
  let db = Lazy_db.create ~engine:Lazy_db.LS () in
  Lazy_db.insert db ~gp:0 "<a><b/></a>";
  Lazy_db.insert db ~gp:3 "<b/>";
  let path = tmp "ls" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  check_bool "mode preserved" true (Lazy_db.engine db' = Lazy_db.LS);
  check_int "query works" 2 (Lazy_db.count db' ~anc:"a" ~desc:"b" ())

let test_std_cannot_save () =
  let db = Lazy_db.create ~engine:Lazy_db.STD () in
  Alcotest.check_raises "std"
    (Invalid_argument "Lazy_db.save: the STD engine keeps no reconstructible state")
    (fun () -> Lazy_db.save db (tmp "std"))

let test_malformed_snapshot () =
  let path = tmp "malformed" in
  let oc = open_out path in
  output_string oc "not a snapshot\n";
  close_out oc;
  check_bool "rejected" true
    (match Lazy_db.load path with exception Failure _ -> true | _ -> false);
  Sys.remove path

(* Every way a snapshot file can be damaged must surface as [Failure]
   (with the path and byte offset) — never a crash with some other
   exception, and never a silently wrong database. *)
let test_malformed_snapshot_sweep () =
  let db = build_sample () in
  let reference = Lazy_db.text db in
  let path = tmp "sweep" in
  Lazy_db.save db path;
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let attempt ~what s =
    write s;
    match Lazy_db.load path with
    | exception Failure msg ->
      let contains ~needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check_bool
        (Printf.sprintf "%s: %S names the file" what msg)
        true
        (contains ~needle:path msg)
    | exception e ->
      Alcotest.failf "%s: raised %s, not Failure" what (Printexc.to_string e)
    | db' ->
      (* Accepting damaged input is only allowed if the damage was
         invisible (e.g. a cut inside trailing padding). *)
      check_string (what ^ ": loaded state intact") reference (Lazy_db.text db')
  in
  (* Truncations: every strict prefix, including mid-header and
     mid-segment-body cuts. *)
  for len = 0 to String.length bytes - 1 do
    attempt ~what:(Printf.sprintf "prefix %d" len) (String.sub bytes 0 len)
  done;
  (* Bad magic / corrupted header line. *)
  attempt ~what:"bad magic" ("X" ^ String.sub bytes 1 (String.length bytes - 1));
  attempt ~what:"garbage header" "LXUSNAP1 garbage\n";
  Sys.remove path

let test_empty_db_roundtrip () =
  let db = Lazy_db.create () in
  let path = tmp "empty" in
  Lazy_db.save db path;
  let db' = Lazy_db.load path in
  Sys.remove path;
  check_int "no segments" 0 (Lazy_db.segment_count db');
  check_string "empty text" "" (Lazy_db.text db')

let suite =
  [
    Alcotest.test_case "roundtrip state" `Quick test_roundtrip_state;
    Alcotest.test_case "labels survive" `Quick test_labels_survive;
    Alcotest.test_case "queries after load" `Quick test_queries_after_load;
    Alcotest.test_case "updates after load" `Quick test_updates_after_load;
    Alcotest.test_case "LS mode roundtrip" `Quick test_ls_mode_roundtrip;
    Alcotest.test_case "std cannot save" `Quick test_std_cannot_save;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_snapshot;
    Alcotest.test_case "malformed sweep" `Quick test_malformed_snapshot_sweep;
    Alcotest.test_case "empty roundtrip" `Quick test_empty_db_roundtrip;
  ]

(* Random edit schedules survive a save/load round trip: text, checks
   and query answers all preserved. *)
let prop_snapshot_roundtrip =
  let fragments =
    [| "<a/>"; "<b>text</b>"; "<c><a/><b/></c>"; "<d k=\"v\"><b/></d>" |]
  in
  let string_insert s ~gp frag =
    String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 10) (pair (int_bound 1000) (int_bound 3))) in
  QCheck2.Test.make ~name:"snapshot roundtrip on random schedules" ~count:40 gen
    (fun picks ->
      let db = Lazy_db.create ~index_attributes:true () in
      let text = ref "" in
      List.iter
        (fun (pick, fi) ->
          let frag = fragments.(fi) in
          let points = ref [] in
          for gp = 0 to String.length !text do
            if Lxu_xml.Parser.is_well_formed_fragment (string_insert !text ~gp frag) then
              points := gp :: !points
          done;
          match !points with
          | [] -> ()
          | ps ->
            let gp = List.nth ps (pick mod List.length ps) in
            Lazy_db.insert db ~gp frag;
            text := string_insert !text ~gp frag)
        picks;
      let path = tmp "prop" in
      Lazy_db.save db path;
      let db' = Lazy_db.load path in
      Sys.remove path;
      Lazy_db.check db';
      Lazy_db.text db' = !text
      && List.for_all
           (fun (anc, desc) ->
             Lazy_db.count db ~anc ~desc () = Lazy_db.count db' ~anc ~desc ())
           [ ("c", "a"); ("c", "b"); ("d", "b"); ("d", "@k") ])

(* The stronger roundtrip property: schedules with removes, packs and
   rebuilds, and equality over the {e full} all-pairs join output of
   the vocabulary (via the crash harness fingerprint), not just a few
   counts. *)
let prop_roundtrip_all_pairs =
  let module H = Lxu_crash_harness.Crash_harness in
  let gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 20)) in
  QCheck2.Test.make ~name:"save/load preserves all-pairs join output" ~count:30 gen
    (fun (seed, target_ops) ->
      let db = Lazy_db.create ~index_attributes:true () in
      List.iter (H.apply db) (H.gen_ops ~seed ~target_ops);
      let path = tmp "prop_all_pairs" in
      Lazy_db.save db path;
      let db' = Lazy_db.load path in
      Sys.remove path;
      Lazy_db.check db';
      Lazy_db.element_count db = Lazy_db.element_count db'
      && H.fingerprint db = H.fingerprint db')

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip_all_pairs;
    ]
