(* Autonomous self-maintenance: fragmentation statistics, the
   maintainer's job selection and crash safety, point-in-time restore
   at every group-commit boundary, pinned snapshots across auto-packs,
   and write-back (page-cache) durability ordering. *)

open Lazy_xml
module Crash_harness = Lxu_crash_harness.Crash_harness
module Maint_harness = Lxu_crash_harness.Maint_harness
module Update_log = Lxu_seglog.Update_log
module Tag_list = Lxu_seglog.Tag_list
module Sim_file = Lxu_storage.Sim_file
module Wal = Lxu_storage.Wal
module Recovery = Lxu_storage.Recovery

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The crash-harness fingerprint includes the physical segment count,
   which packing legitimately changes: state comparisons across a
   pack must drop that one token. *)
let logical_fp db =
  Crash_harness.fingerprint db
  |> String.split_on_char '|'
  |> List.filter (fun tok -> not (String.length tok >= 5 && String.sub tok 0 5 = "segs="))
  |> String.concat "|"

let check_logical ~ctx expected db =
  let got = logical_fp db in
  if got <> expected then
    Alcotest.failf "%s: state diverges\n  expected %S\n  got      %S" ctx expected got

(* "<a><b>x</b></a><c>y</c>" plus [n] fragments nested one inside the
   other under <a> — a deep ER chain, the pack target shape. *)
let fragment_chain db n =
  Lazy_db.insert db ~gp:0 "<a><b>x</b></a><c>y</c>";
  for i = 0 to n - 1 do
    Lazy_db.insert db ~gp:(3 + (3 * i)) "<d><b>z</b></d>"
  done

(* --- fragmentation statistics ---------------------------------------- *)

let test_frag_stats () =
  let db = Lazy_db.create ~engine:Lazy_db.LD ~index_attributes:true () in
  (match Lazy_db.log db with
  | None -> Alcotest.fail "LD db has a log"
  | Some log ->
    let fs = Update_log.frag_stats log in
    check_int "empty: segments" 0 fs.Update_log.live_segments;
    check_int "empty: depth" 0 fs.Update_log.er_depth);
  fragment_chain db 6;
  match Lazy_db.log db with
  | None -> Alcotest.fail "LD db has a log"
  | Some log ->
    let fs = Update_log.frag_stats log in
    check_int "segments" 7 fs.Update_log.live_segments;
    check_int "er depth" 7 fs.Update_log.er_depth;
    check_int "doc bytes" (String.length (Lazy_db.text db)) fs.Update_log.doc_bytes;
    (match Update_log.fragmented_subtrees log with
    | [] -> Alcotest.fail "expected a fragmented subtree"
    | s :: _ ->
      check_int "subtree holds every segment" 7 s.Update_log.segments;
      check_bool "subtree depth" true (s.Update_log.depth >= 6);
      (* the reported extent is a valid pack target *)
      let fp = logical_fp db in
      Lazy_db.pack_subtree db ~gp:s.Update_log.gp ~len:s.Update_log.len;
      check_logical ~ctx:"pack of reported extent" fp db;
      check_int "packed to one segment" 1
        (Update_log.frag_stats log).Update_log.live_segments);
    (* fragmented_subtrees re-anchors the er_depth high-water mark *)
    ignore (Update_log.fragmented_subtrees log);
    check_int "depth re-anchored after pack" 1 (Update_log.frag_stats log).Update_log.er_depth

let test_dirty_count () =
  let db = Lazy_db.create ~engine:Lazy_db.LS ~index_attributes:false () in
  Lazy_db.insert db ~gp:0 "<a><b>x</b></a>";
  match Lazy_db.log db with
  | None -> Alcotest.fail "LS db has a log"
  | Some log ->
    check_bool "inserts dirty tag lists" true (Tag_list.dirty_count (Update_log.tag_list log) > 0);
    Update_log.prepare_for_query log;
    check_int "merge cleans them" 0 (Tag_list.dirty_count (Update_log.tag_list log))

(* --- maintainer job selection (direct mode) --------------------------- *)

let quiet_config =
  (* thresholds that keep every job out of the way unless a test
     lowers one deliberately *)
  {
    Maintainer.default_config with
    pack_min_segments = 999;
    pack_min_depth = 999;
    checkpoint_wal_bytes = max_int;
    merge_dirty_tags = 0;
  }

let test_pack_until_idle () =
  let dir = Crash_harness.fresh_dir "maintpack" in
  Fun.protect
    ~finally:(fun () -> Crash_harness.rm_rf dir)
    (fun () ->
      let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      fragment_chain db 6;
      let fp = logical_fp db in
      let m =
        Maintainer.of_db ~config:{ quiet_config with pack_min_segments = 2; pack_min_depth = 3 } db
      in
      let jobs = Maintainer.run_until_idle m in
      check_bool "ran jobs" true (jobs >= 1);
      check_bool "packed" true ((Maintainer.stats m).Maintainer.packs >= 1);
      check_logical ~ctx:"auto-pack preserves state" fp db;
      check_int "fully packed" 1 (Lazy_db.segment_count db);
      let fp_packed = Crash_harness.fingerprint db in
      (match Maintainer.tick m with
      | Maintainer.Idle -> ()
      | o -> Alcotest.failf "expected idle, got %s" (Maintainer.outcome_to_string o));
      (* packs are WAL-logged: recovery replays them *)
      Lazy_db.close db;
      let rdb, _ = Lazy_db.recover dir in
      Crash_harness.check ~ctx:"recovery after auto-pack" fp_packed rdb;
      Lazy_db.close rdb)

let test_checkpoint_job () =
  let dir = Crash_harness.fresh_dir "maintckpt" in
  Fun.protect
    ~finally:(fun () -> Crash_harness.rm_rf dir)
    (fun () ->
      let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      fragment_chain db 3;
      let before = Option.get (Lazy_db.wal_bytes db) in
      let fp = Crash_harness.fingerprint db in
      let m = Maintainer.of_db ~config:{ quiet_config with checkpoint_wal_bytes = 1 } db in
      (match Maintainer.tick m with
      | Maintainer.Ran (Maintainer.Checkpoint b) -> check_int "trigger size" before b
      | o -> Alcotest.failf "expected checkpoint, got %s" (Maintainer.outcome_to_string o));
      check_bool "wal truncated" true (Option.get (Lazy_db.wal_bytes db) < before);
      Lazy_db.close db;
      let rdb, report = Lazy_db.recover dir in
      check_int "nothing left to replay" 0 report.Recovery.records_applied;
      Crash_harness.check ~ctx:"recovery from rolled checkpoint" fp rdb;
      Lazy_db.close rdb)

let test_merge_job () =
  let db = Lazy_db.create ~engine:Lazy_db.LS ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 "<a><b>x</b></a>";
  let log = Option.get (Lazy_db.log db) in
  let dirty = Tag_list.dirty_count (Update_log.tag_list log) in
  check_bool "starts dirty" true (dirty > 0);
  let m = Maintainer.of_db ~config:{ quiet_config with merge_dirty_tags = 1 } db in
  (match Maintainer.tick m with
  | Maintainer.Ran (Maintainer.Merge_tag_runs n) -> check_int "merged count" dirty n
  | o -> Alcotest.failf "expected merge, got %s" (Maintainer.outcome_to_string o));
  check_int "clean after merge" 0 (Tag_list.dirty_count (Update_log.tag_list log));
  match Maintainer.tick m with
  | Maintainer.Idle -> ()
  | o -> Alcotest.failf "expected idle, got %s" (Maintainer.outcome_to_string o)

let test_backup_cadence () =
  let dir = Crash_harness.fresh_dir "maintlive" in
  let bdir = Crash_harness.fresh_dir "maintship" in
  Fun.protect
    ~finally:(fun () ->
      Crash_harness.rm_rf dir;
      Crash_harness.rm_rf bdir)
    (fun () ->
      let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      fragment_chain db 2;
      let fp = Crash_harness.fingerprint db in
      let m =
        Maintainer.of_db
          ~config:{ quiet_config with backup_every = 2; backup_dir = Some bdir }
          db
      in
      (match Maintainer.tick m with
      | Maintainer.Idle -> ()
      | o -> Alcotest.failf "tick 1: expected idle, got %s" (Maintainer.outcome_to_string o));
      (match Maintainer.tick m with
      | Maintainer.Ran (Maintainer.Backup { dir = d; lsn }) ->
        check_bool "ships to the configured dir" true (d = bdir);
        check_int "through every committed record" 3 lsn
      | o -> Alcotest.failf "tick 2: expected backup, got %s" (Maintainer.outcome_to_string o));
      (match Maintainer.tick m with
      | Maintainer.Idle -> ()
      | o -> Alcotest.failf "tick 3: expected idle, got %s" (Maintainer.outcome_to_string o));
      (* the shipped backup is a restorable line of history *)
      let rdb, _ = Lazy_db.restore_to ~lsn:3 bdir in
      Crash_harness.check ~ctx:"restore from shipped backup" fp rdb;
      Lazy_db.close db)

let test_config_validation () =
  let db = Lazy_db.create () in
  Alcotest.check_raises "pack_min_segments < 1"
    (Invalid_argument "Maintainer: pack_min_segments < 1") (fun () ->
      ignore (Maintainer.of_db ~config:{ quiet_config with pack_min_segments = 0 } db));
  Alcotest.check_raises "pack_tag_skew < 0"
    (Invalid_argument "Maintainer: pack_tag_skew < 0") (fun () ->
      ignore (Maintainer.of_db ~config:{ quiet_config with pack_tag_skew = -1 } db))

(* --- tag-skew pack trigger -------------------------------------------- *)

let test_tag_skew_pack () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  (* Tag b lands in every fragment: max_tag_segments grows with the
     chain even though overall thresholds (999) never fire. *)
  fragment_chain db 6;
  (match Lazy_db.log db with
  | None -> Alcotest.fail "LD db has a log"
  | Some log ->
    check_bool "skewed tag spans the chain" true
      ((Update_log.frag_stats log).Update_log.max_tag_segments >= 6));
  let quiet = Maintainer.of_db ~config:quiet_config db in
  check_int "no trigger while disabled" 0 (Maintainer.run_until_idle quiet);
  let fp = logical_fp db in
  let m = Maintainer.of_db ~config:{ quiet_config with pack_tag_skew = 6 } db in
  check_bool "skew triggers packs" true (Maintainer.run_until_idle m >= 1);
  check_bool "packed" true ((Maintainer.stats m).Maintainer.packs >= 1);
  check_logical ~ctx:"skew-triggered pack preserves state" fp db;
  match Lazy_db.log db with
  | None -> Alcotest.fail "LD db has a log"
  | Some log ->
    check_bool "skew defragmented" true
      ((Update_log.frag_stats log).Update_log.max_tag_segments < 6)

(* --- governed mode: shed-first under load ----------------------------- *)

let test_governed_busy () =
  let gov = Governor.create ~engine:Lazy_db.LD ~index_attributes:true () in
  (match Governor.insert gov ~gp:0 "<a><b>x</b></a>" with
  | Ok () -> ()
  | Error r -> Alcotest.fail (Governor.rejection_to_string r));
  let m = Maintainer.of_governor ~config:quiet_config gov in
  check_int "idle gauges" 0 (snd (Governor.in_flight gov));
  (* park a foreground writer inside the write lock *)
  let entered = Atomic.make false and release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Governor.write gov (fun _ _db ->
               Atomic.set entered true;
               while not (Atomic.get release) do
                 Domain.cpu_relax ()
               done)))
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  (match Maintainer.tick m with
  | Maintainer.Busy -> ()
  | o -> Alcotest.failf "expected busy, got %s" (Maintainer.outcome_to_string o));
  Atomic.set release true;
  Domain.join d;
  (* quiet again: admitted, nothing to do *)
  match Maintainer.tick m with
  | Maintainer.Idle | Maintainer.Ran Maintainer.Cache_sweep -> ()
  | o -> Alcotest.failf "expected idle after release, got %s" (Maintainer.outcome_to_string o)

let test_background_loop () =
  let gov = Governor.create ~engine:Lazy_db.LD ~index_attributes:true () in
  let m = Maintainer.of_governor ~config:quiet_config gov in
  check_bool "not running" false (Maintainer.running m);
  Maintainer.start ~period_s:0.005 m;
  check_bool "running" true (Maintainer.running m);
  Alcotest.check_raises "double start" (Invalid_argument "Maintainer.start: already running")
    (fun () -> Maintainer.start m);
  (match Governor.insert gov ~gp:0 "<a/>" with
  | Ok () -> ()
  | Error r -> Alcotest.fail (Governor.rejection_to_string r));
  Unix.sleepf 0.05;
  Maintainer.stop m;
  check_bool "stopped" false (Maintainer.running m);
  let st = Maintainer.stats m in
  check_bool "loop ticked" true (st.Maintainer.ticks > 0);
  check_int "no job failed" 0 st.Maintainer.failed;
  Maintainer.stop m (* idempotent *)

(* --- satellite: pinned snapshot across an auto-pack -------------------- *)

let test_pinned_snapshot_across_pack () =
  let gov = Governor.create ~engine:Lazy_db.LD ~index_attributes:true () in
  let ok = function
    | Ok () -> ()
    | Error r -> Alcotest.fail (Governor.rejection_to_string r)
  in
  ok (Governor.insert gov ~gp:0 "<a><b>x</b></a><c>y</c>");
  for i = 0 to 5 do
    ok (Governor.insert gov ~gp:(3 + (3 * i)) "<d><b>z</b></d>")
  done;
  let sdb = Governor.shared gov in
  let snap = Shared_db.begin_snapshot sdb in
  let fp = Crash_harness.fingerprint (Shared_db.snapshot_db snap) in
  let lfp = logical_fp (Shared_db.snapshot_db snap) in
  let m =
    Maintainer.of_governor
      ~config:{ quiet_config with pack_min_segments = 2; pack_min_depth = 3 }
      gov
  in
  ignore (Maintainer.run_until_idle m);
  check_bool "auto-pack ran" true ((Maintainer.stats m).Maintainer.packs >= 1);
  (* the reader pinned before the pack must be completely undisturbed *)
  Crash_harness.check ~ctx:"pinned snapshot across auto-pack" fp (Shared_db.snapshot_db snap);
  (* and the pack changed nothing query-visible on the live side either *)
  (match Governor.read gov (fun _ db -> logical_fp db) with
  | Ok got -> check_bool "live state preserved" true (got = lfp)
  | Error r -> Alcotest.fail (Governor.rejection_to_string r));
  Shared_db.end_snapshot snap;
  (* dropping the pin reclaims the retired version on its own; the
     schedulable sweep is the belt-and-braces path and must be a safe
     no-op on an already-clean store *)
  Shared_db.sweep sdb;
  match Shared_db.mvcc_stats sdb with
  | Some ms ->
    check_int "retired versions reclaimed once unpinned" 1 ms.Shared_db.versions;
    check_int "no pins left" 0 ms.Shared_db.pinned
  | None -> Alcotest.fail "LD governor is MVCC"

(* --- satellite: restore_to at every group-commit boundary -------------- *)

let rec batches_of k = function
  | [] -> []
  | ops ->
    let rec take n = function
      | x :: tl when n > 0 ->
        let h, t = take (n - 1) tl in
        (x :: h, t)
      | rest -> ([], rest)
    in
    let h, t = take k ops in
    h :: batches_of k t

let prop_restore_group_commit =
  QCheck2.Test.make ~name:"restore_to lsn = replay of first k batches" ~count:6
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let ops = Crash_harness.gen_ops ~seed ~target_ops:18 in
      let batches = batches_of 3 ops in
      let dir = Crash_harness.fresh_dir "pitrprop" in
      Fun.protect
        ~finally:(fun () -> Crash_harness.rm_rf dir)
        (fun () ->
          let db = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
          List.iter
            (fun batch -> Lazy_db.batch db (fun () -> List.iter (Crash_harness.apply db) batch))
            batches;
          Lazy_db.close db;
          (* every group-commit boundary is a restorable point in time *)
          ignore
            (List.fold_left
               (fun lsn batch ->
                 let lsn = lsn + List.length batch in
                 let restored, report = Lazy_db.restore_to ~lsn dir in
                 check_int "replayed exactly to the boundary" lsn report.Recovery.last_lsn;
                 let oracle = Lazy_db.create ~index_attributes:true () in
                 List.iteri (fun i op -> if i < lsn then Crash_harness.apply oracle op) ops;
                 Crash_harness.check
                   ~ctx:(Printf.sprintf "seed %d restore boundary lsn %d" seed lsn)
                   (Crash_harness.fingerprint oracle) restored;
                 lsn)
               0 batches);
          true))

(* --- write-back durability ordering (page-cache model) ----------------- *)

let wal_header = { Wal.mode = Update_log.Lazy_dynamic; index_attributes = true }

let test_write_back_ordering () =
  let dev = Sim_file.in_memory ~write_back:true () in
  check_bool "write-back mode" true (Sim_file.is_write_back dev);
  let wal = Wal.create ~device:dev wal_header in
  Sim_file.sync dev (* header made durable *);
  ignore (Wal.append wal (Wal.Insert { gp = 0; text = "<a/>" }));
  Wal.commit wal (* group commit without fsync: page cache only *);
  check_int "commit buffered, not durable" 1 (Sim_file.pending_writes dev);
  let scan = Wal.scan (Sim_file.durable_contents dev) in
  check_int "recovery before sync sees no records" 0 (List.length scan.Wal.records);
  check_int "the process itself sees the record" 1
    (List.length (Wal.scan (Sim_file.contents dev)).Wal.records);
  ignore (Wal.append wal (Wal.Insert { gp = 0; text = "<b/>" }));
  Wal.commit wal;
  (* power loss with a lucky one-write prefix flushed by the kernel *)
  Sim_file.crash ~keep:1 dev;
  let scan = Wal.scan (Sim_file.durable_contents dev) in
  check_int "crash keeps the flushed prefix only" 1 (List.length scan.Wal.records);
  (match scan.Wal.records with
  | [ r ] -> check_int "and it is the first commit" 1 r.Wal.lsn
  | _ -> Alcotest.fail "expected exactly the first record");
  (* a synced commit is durable immediately *)
  ignore (Wal.append wal (Wal.Insert { gp = 0; text = "<c/>" }));
  Wal.commit ~sync:true wal;
  check_int "sync drains the buffer" 0 (Sim_file.pending_writes dev);
  check_int "synced commit durable" 2
    (List.length (Wal.scan (Sim_file.durable_contents dev)).Wal.records)

(* --- harness smoke (full matrices live in the @slow tier) -------------- *)

let test_churn_crash_smoke () =
  let recoveries = Maint_harness.run_churn_crash ~seed:1 ~target_ops:24 () in
  check_bool "performed recoveries" true (recoveries > 0)

let test_restore_sweep_smoke () =
  let states = Maint_harness.run_restore_sweep ~seed:2 ~target_ops:14 () in
  check_bool "checked prefix states" true (states > 10)

let test_churn_perf_smoke () =
  let auto, text, gov = Maint_harness.run_churn_perf ~seed:3 ~epochs:5 ~maintain:(`Auto 4) () in
  check_bool "queries measured" true (auto.Maint_harness.queries > 0);
  check_bool "maintenance ran" true (auto.Maint_harness.jobs_run > 0);
  check_bool "latencies finite" true
    (Array.for_all (fun l -> Float.is_finite l && l >= 0.) auto.Maint_harness.latencies_ms);
  let manual, _, _ = Maint_harness.run_churn_perf ~seed:3 ~epochs:5 ~maintain:`Manual () in
  check_int "same schedule" manual.Maint_harness.queries auto.Maint_harness.queries;
  check_bool "manual-only store is more fragmented" true
    (manual.Maint_harness.segments_end >= auto.Maint_harness.segments_end);
  let fresh = Maint_harness.fresh_baseline ~seed:3 ~queries:8 text in
  check_int "baseline sample" 8 (Array.length fresh);
  (* interleaved steady-state measurement returns one array per store *)
  match
    Maint_harness.measure_interleaved ~rounds:4
      [
        (fun () ->
          match Governor.read gov (fun _ db -> Maint_harness.sweep db) with
          | Ok () -> ()
          | Error r -> Alcotest.fail (Governor.rejection_to_string r));
        (fun () -> Maint_harness.sweep (Maint_harness.fresh_store text));
      ]
  with
  | [ a; f ] ->
    check_int "auto samples" 4 (Array.length a);
    check_int "fresh samples" 4 (Array.length f)
  | _ -> Alcotest.fail "one latency array per store"

let suite =
  [
    Alcotest.test_case "frag stats + fragmented_subtrees" `Quick test_frag_stats;
    Alcotest.test_case "tag_list dirty_count" `Quick test_dirty_count;
    Alcotest.test_case "auto-pack until idle (direct, durable)" `Quick test_pack_until_idle;
    Alcotest.test_case "rolling checkpoint job" `Quick test_checkpoint_job;
    Alcotest.test_case "tag-run merge job (LS)" `Quick test_merge_job;
    Alcotest.test_case "backup cadence + restore" `Quick test_backup_cadence;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "tag-skew pack trigger" `Quick test_tag_skew_pack;
    Alcotest.test_case "governed: busy defers to foreground writers" `Quick test_governed_busy;
    Alcotest.test_case "background loop start/stop" `Quick test_background_loop;
    Alcotest.test_case "pinned snapshot across auto-pack" `Quick test_pinned_snapshot_across_pack;
    Alcotest.test_case "write-back durability ordering" `Quick test_write_back_ordering;
    Alcotest.test_case "churn crash harness (smoke)" `Quick test_churn_crash_smoke;
    Alcotest.test_case "restore sweep harness (smoke)" `Quick test_restore_sweep_smoke;
    Alcotest.test_case "churn perf harness (smoke)" `Quick test_churn_perf_smoke;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_restore_group_commit ]
