(* Concurrency wrapper: queries from several domains racing a stream
   of updates must always observe consistent states. *)

open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_sequential_semantics () =
  let t = Shared_db.create () in
  Shared_db.insert t ~gp:0 "<a></a>";
  Shared_db.insert t ~gp:3 "<b/>";
  check_int "count" 1 (Shared_db.count t ~anc:"a" ~desc:"b" ());
  check_int "path" 1 (Shared_db.path_count t "//a/b");
  Shared_db.remove t ~gp:3 ~len:4;
  check_int "after remove" 0 (Shared_db.count t ~anc:"a" ~desc:"b" ());
  let reads, writes = Shared_db.stats t in
  check_bool "reads counted" true (reads >= 2);
  check_int "writes counted" 3 writes

let test_ls_rejected () =
  Alcotest.check_raises "ls"
    (Invalid_argument "Shared_db.create: LS queries mutate the log; use LD") (fun () ->
      ignore (Shared_db.create ~engine:Lazy_db.LS ()))

let test_concurrent_readers_and_writer () =
  let t = Shared_db.create () in
  Shared_db.insert t ~gp:0 "<a></a>";
  let rounds = 60 in
  (* The writer appends one <b/> per round, inside <a>. *)
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          Shared_db.insert t ~gp:3 "<b/>"
        done)
  in
  (* Readers poll the count; every observation must be a value some
     prefix of the update stream produces (0..rounds), and must never
     decrease (counts only grow here). *)
  let reader () =
    Domain.spawn (fun () ->
        let ok = ref true in
        let last = ref 0 in
        for _ = 1 to 200 do
          let c = Shared_db.count t ~anc:"a" ~desc:"b" () in
          if c < !last || c > rounds then ok := false;
          last := c
        done;
        !ok)
  in
  let readers = List.init 3 (fun _ -> reader ()) in
  Domain.join writer;
  List.iter (fun d -> check_bool "consistent observations" true (Domain.join d)) readers;
  check_int "final count" rounds (Shared_db.count t ~anc:"a" ~desc:"b" ());
  Shared_db.read t Lazy_db.check

let test_concurrent_mixed_updates () =
  let t = Shared_db.create () in
  Shared_db.insert t ~gp:0 "<r></r>";
  (* Two writers: one inserts pairs, one removes what it inserted (its
     own fragments at a fixed position, so ranges stay valid). *)
  let w1 =
    Domain.spawn (fun () ->
        for _ = 1 to 40 do
          Shared_db.insert t ~gp:3 "<x/>"
        done)
  in
  let w2 =
    Domain.spawn (fun () ->
        for _ = 1 to 40 do
          Shared_db.insert t ~gp:3 "<y/>";
          (* The just-inserted <y/> is at position 3. *)
          Shared_db.write t (fun db ->
              let text = Lazy_db.text db in
              if String.length text >= 7 && String.sub text 3 4 = "<y/>" then
                Lazy_db.remove db ~gp:3 ~len:4)
        done)
  in
  Domain.join w1;
  Domain.join w2;
  Shared_db.read t Lazy_db.check;
  check_int "x survived" 40 (Shared_db.count t ~anc:"r" ~desc:"x" ())

let test_interleaving_never_torn () =
  (* Each write transaction inserts three <b/> at once, and readers —
     with LXU_DOMAINS=4 so queries themselves fan out over domains —
     must only ever observe multiples of three: a count that is not
     [= 0 mod 3] would mean a read interleaved inside a write. *)
  let saved = Sys.getenv_opt "LXU_DOMAINS" in
  Unix.putenv "LXU_DOMAINS" "4";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "LXU_DOMAINS" (Option.value saved ~default:""))
    (fun () ->
      let t = Shared_db.create () in
      Shared_db.insert t ~gp:0 "<a></a>";
      let txns = 50 in
      let writer =
        Domain.spawn (fun () ->
            for _ = 1 to txns do
              Shared_db.write t (fun db ->
                  Lazy_db.insert db ~gp:3 "<b/>";
                  Lazy_db.insert db ~gp:3 "<b/>";
                  Lazy_db.insert db ~gp:3 "<b/>")
            done)
      in
      let reader () =
        Domain.spawn (fun () ->
            let ok = ref true in
            let last = ref 0 in
            for _ = 1 to 150 do
              let c = Shared_db.count t ~anc:"a" ~desc:"b" () in
              if c mod 3 <> 0 || c < !last || c > 3 * txns then ok := false;
              last := c
            done;
            !ok)
      in
      let readers = List.init 3 (fun _ -> reader ()) in
      Domain.join writer;
      List.iter (fun d -> check_bool "only pre/post-txn counts" true (Domain.join d)) readers;
      check_int "final count" (3 * txns) (Shared_db.count t ~anc:"a" ~desc:"b" ());
      Shared_db.read t Lazy_db.check)

let test_durable_writers () =
  (* Racing durable writers: the WAL serializes under the write lock,
     so recovery reproduces exactly the final state. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_test_shared_wal_%d" (Unix.getpid ()))
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let t = Shared_db.create ~durability:(`Wal dir) () in
      Shared_db.insert t ~gp:0 "<r></r>";
      let writers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 25 do
                  Shared_db.insert t ~gp:3 "<x/>"
                done))
      in
      List.iter Domain.join writers;
      let final = Shared_db.read t Lazy_db.text in
      Shared_db.close t;
      let t', report = Shared_db.recover dir in
      check_bool "clean wal" true (report.Lxu_storage.Recovery.corruption = None);
      Alcotest.(check string) "recovered text" final (Shared_db.read t' Lazy_db.text);
      check_int "recovered count" 50 (Shared_db.count t' ~anc:"r" ~desc:"x" ());
      Shared_db.close t')

let suite =
  [
    Alcotest.test_case "sequential semantics" `Quick test_sequential_semantics;
    Alcotest.test_case "ls rejected" `Quick test_ls_rejected;
    Alcotest.test_case "readers race writer" `Quick test_concurrent_readers_and_writer;
    Alcotest.test_case "mixed updates" `Quick test_concurrent_mixed_updates;
    Alcotest.test_case "write txns never torn" `Quick test_interleaving_never_torn;
    Alcotest.test_case "durable writers recover" `Quick test_durable_writers;
  ]
