(* Differential tests for the cost-based twig planner: planned
   evaluation (auto or any forced seed) must be result-identical to the
   naive left-to-right order — across engines LD/LS, 1 and 4 domains,
   random documents, random twigs (with and without predicates),
   synopsis staleness from removes and packs, and frozen snapshots.
   Plus sanity checks on plan selection and the explain rendering. *)

open Lazy_xml
open Lxu_workload

let pair_list = Alcotest.(list (pair int int))
let check_bool = Alcotest.(check bool)

let step axis tag predicates = { Path_query.axis; tag; predicates }

(* Random linear path with occasional one-step predicates, over a tag
   pool that mostly exists in the document (one sometimes-absent tag
   exercises empty sets). *)
let random_twig st pool =
  let pick () = pool.(Random.State.int st (Array.length pool)) in
  let axis () = if Random.State.bool st then Path_query.Desc else Path_query.Child in
  let len = 2 + Random.State.int st 3 in
  List.init len (fun _ ->
      let predicates =
        if Random.State.int st 100 < 25 then [ [ step (axis ()) (pick ()) [] ] ] else []
      in
      step (axis ()) (pick ()) predicates)

let build_db ~engine ~domains ~seed =
  let db = Lazy_db.create ~engine ~domains () in
  let edits =
    if seed mod 2 = 0 then
      let text = Xmark.generate_text ~persons:(10 + (seed mod 15)) ~seed () in
      Chopper.chop ~text ~segments:(6 + (seed mod 14))
        (if seed mod 4 = 0 then Chopper.Nested else Chopper.Balanced)
    else
      let params =
        { Generator.default_params with tags = [| "a"; "b"; "c"; "d" |]; text_chance_pct = 10 }
      in
      let text = Generator.generate_text ~params ~seed ~target_elements:(50 + (seed mod 80)) () in
      Chopper.chop ~text ~segments:(5 + (seed mod 10))
        (if seed mod 3 = 0 then Chopper.Nested else Chopper.Balanced)
  in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits;
  db

let pool_for ~seed =
  if seed mod 2 = 0 then [| "person"; "profile"; "interest"; "watches"; "watch"; "zzz" |]
  else [| "a"; "b"; "c"; "d"; "zzz" |]

let mutate st db =
  (* A couple of whole-element removes, sometimes a pack: the planner
     must stay exact on the post-edit synopsis. *)
  for _ = 1 to 2 do
    let nodes = Lxu_xml.Parser.parse_fragment (Lazy_db.text db) in
    let extents = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
        if e.Lxu_xml.Tree.e_start >= 0 then
          extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
    match !extents with
    | [] -> ()
    | l ->
      let arr = Array.of_list l in
      let s, e_ = arr.(Random.State.int st (Array.length arr)) in
      Lazy_db.remove db ~gp:s ~len:(e_ - s)
  done;
  if Random.State.bool st && Lazy_db.doc_length db > 0 then
    Lazy_db.pack_subtree db ~gp:0 ~len:(Lazy_db.doc_length db)

let check_planned_equals_naive ~ctx db twig =
  let naive = Path_query.eval ~plan:`Naive db twig in
  let auto = Path_query.eval ~plan:`Auto db twig in
  Alcotest.check pair_list (ctx ^ " auto = naive") naive auto;
  let n = List.length twig in
  for k = 0 to n - 1 do
    let forced = Path_query.eval ~plan:(`Seed k) db twig in
    Alcotest.check pair_list (Printf.sprintf "%s seed %d = naive" ctx k) naive forced
  done

let prop_planned_equals_naive =
  QCheck2.Test.make ~name:"planned = naive (random docs, random twigs)" ~count:40
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let engine = if seed mod 4 < 2 then Lazy_db.LD else Lazy_db.LS in
      let domains = if seed mod 8 < 4 then 1 else 4 in
      let db = build_db ~engine ~domains ~seed in
      let pool = pool_for ~seed in
      let ctx = Printf.sprintf "seed=%d" seed in
      for _ = 1 to 3 do
        check_planned_equals_naive ~ctx db (random_twig st pool)
      done;
      mutate st db;
      for _ = 1 to 3 do
        check_planned_equals_naive ~ctx:(ctx ^ " post-edit") db (random_twig st pool)
      done;
      (* Frozen snapshot: planned queries over the clone, while the
         live database keeps moving underneath it. *)
      Lazy_db.with_snapshot db (fun snap ->
          Lazy_db.insert db ~gp:(Lazy_db.doc_length db) "<a><d/></a>";
          for _ = 1 to 2 do
            check_planned_equals_naive ~ctx:(ctx ^ " snapshot") snap (random_twig st pool)
          done);
      true)

(* --- deterministic corners -------------------------------------------- *)

let test_std_fallback () =
  let db = Lazy_db.create ~engine:Lazy_db.STD () in
  Lazy_db.insert db ~gp:0 "<r><a><b/></a><a><b/><b/></a></r>";
  let twig = [ step Path_query.Desc "a" []; step Path_query.Desc "b" [] ] in
  Alcotest.check pair_list "plan ignored on STD"
    (Path_query.eval ~plan:`Naive db twig)
    (Path_query.eval ~plan:`Auto db twig)

let test_env_escape_hatch () =
  (* LXU_PLAN=naive forces the left-to-right order; the explain string
     says so.  (Set/unset around the calls — the suite is single
     threaded.) *)
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Chopper.chop ~text:(Xmark.generate_text ~persons:8 ~seed:3 ()) ~segments:6 Chopper.Balanced)
  ;
  let twig = Path_query.parse_exn "//person//interest" in
  let naive = Path_query.eval ~plan:`Naive db twig in
  Unix.putenv "LXU_PLAN" "naive";
  let forced = Path_query.eval ~plan:`Auto db twig in
  let explained, matches = Path_query.explain db twig in
  Unix.putenv "LXU_PLAN" "";
  Alcotest.check pair_list "escape hatch = naive" naive forced;
  Alcotest.check pair_list "explain matches under escape hatch" naive matches;
  check_bool "explain mentions the escape hatch" true
    (String.length explained >= 5 && String.sub explained 0 5 = "plan:")

let test_choose_sanity () =
  (* Many <a><b/></a> groups and a single rare <q><a><b><z/></b></a></q>:
     for //a//b//z the cheapest anchor is the rare tail, and the
     planner must see a tiny estimate for it. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 200 do
    Buffer.add_string buf "<a><b/><b/></a>"
  done;
  Buffer.add_string buf "<q><a><b><z/></b></a></q></r>";
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Chopper.chop ~text:(Buffer.contents buf) ~segments:16 Chopper.Balanced);
  let log = Option.get (Lazy_db.log db) in
  let chain =
    {
      Lxu_plan.Plan.tags = [| "a"; "b"; "z" |];
      axes = [| Lxu_plan.Plan.Desc; Lxu_plan.Plan.Desc; Lxu_plan.Plan.Desc |];
      has_preds = false;
    }
  in
  (match Lxu_plan.Plan.choose ~log chain with
  | Lxu_plan.Plan.Ordered o ->
    Alcotest.(check int) "anchors at the rare tail" 2 o.Lxu_plan.Plan.seed;
    Alcotest.(check int) "exact tail estimate" 1 o.Lxu_plan.Plan.est_step.(2);
    check_bool "estimated cheaper than naive" true
      (o.Lxu_plan.Plan.est_cost < o.Lxu_plan.Plan.naive_cost)
  | Lxu_plan.Plan.Naive -> Alcotest.fail "expected an ordered plan, got naive"
  | Lxu_plan.Plan.Holistic _ -> Alcotest.fail "expected an ordered plan, got holistic");
  (* The executed explain agrees with eval and renders actuals. *)
  let twig = Path_query.parse_exn "//a//b//z" in
  let explained, matches = Path_query.explain db twig in
  Alcotest.check pair_list "explain results = eval" (Path_query.eval db twig) matches;
  check_bool "explain shows the seed" true
    (let needle = "seed step 2" in
     let n = String.length needle and h = String.length explained in
     let rec find i = i + n <= h && (String.sub explained i n = needle || find (i + 1)) in
     find 0)

let test_provably_empty () =
  (* z never appears under c: the synopsis proves the result empty and
     the executor returns without running a join. *)
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Chopper.chop ~text:"<r><c><d/><d/></c><a><z/></a><c><d/></c></r>" ~segments:3
       Chopper.Balanced);
  let twig = Path_query.parse_exn "//c//z" in
  Alcotest.check pair_list "provably empty" [] (Path_query.eval ~plan:`Auto db twig);
  Alcotest.check pair_list "naive agrees" [] (Path_query.eval ~plan:`Naive db twig)

let suite =
  [
    Alcotest.test_case "STD ignores plan" `Quick test_std_fallback;
    Alcotest.test_case "LXU_PLAN=naive escape hatch" `Quick test_env_escape_hatch;
    Alcotest.test_case "choose anchors at the rare tail" `Quick test_choose_sanity;
    Alcotest.test_case "synopsis-proven empty result" `Quick test_provably_empty;
    QCheck_alcotest.to_alcotest prop_planned_equals_naive;
  ]
