(* Unit and property tests for the generic B+-tree. *)

open Lxu_btree

module IT = Bptree.Make (Int)
module IMap = Map.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(branching = 8) pairs =
  let t = IT.create ~branching () in
  List.iter (fun (k, v) -> IT.insert t k v) pairs;
  t

let test_empty () =
  let t = IT.create () in
  check_bool "is_empty" true (IT.is_empty t);
  check_int "length" 0 (IT.length t);
  check_bool "find" true (IT.find t 5 = None);
  check_bool "min" true (IT.min_binding t = None);
  check_bool "max" true (IT.max_binding t = None);
  check_int "height" 1 (IT.height t);
  IT.check_invariants t

let test_insert_find () =
  let t = build (List.init 100 (fun i -> (i * 7 mod 100, i))) in
  check_int "length" 100 (IT.length t);
  check_bool "find 0" true (IT.find t 0 <> None);
  check_bool "find 99" true (IT.find t 99 <> None);
  check_bool "find missing" true (IT.find t 100 = None);
  IT.check_invariants t

let test_replace () =
  let t = build [ (1, "a") ] in
  IT.insert t 1 "b";
  check_int "length" 1 (IT.length t);
  check_bool "value" true (IT.find t 1 = Some "b")

let test_ordered_iteration () =
  let t = build (List.init 500 (fun i -> ((i * 37) mod 500, i))) in
  let keys = List.map fst (IT.to_list t) in
  Alcotest.(check (list int)) "sorted" (List.init 500 Fun.id) keys

let test_min_max () =
  let t = build [ (5, ()); (1, ()); (9, ()); (3, ()) ] in
  check_bool "min" true (IT.min_binding t = Some (1, ()));
  check_bool "max" true (IT.max_binding t = Some (9, ()))

let test_iter_from () =
  let t = build (List.init 100 (fun i -> (i * 2, i))) in
  (* Keys are 0,2,...,198; scanning from 51 yields 52,54,... *)
  let seen = ref [] in
  IT.iter_from t 51 (fun k _ ->
      seen := k :: !seen;
      List.length !seen < 3);
  Alcotest.(check (list int)) "window" [ 52; 54; 56 ] (List.rev !seen)

let test_iter_from_past_end () =
  let t = build (List.init 10 (fun i -> (i, i))) in
  let n = ref 0 in
  IT.iter_from t 100 (fun _ _ ->
      incr n;
      true);
  check_int "nothing" 0 !n

let test_remove_simple () =
  let t = build (List.init 50 (fun i -> (i, i))) in
  check_bool "present" true (IT.remove t 25);
  check_bool "absent now" true (IT.find t 25 = None);
  check_bool "remove again" false (IT.remove t 25);
  check_int "length" 49 (IT.length t);
  IT.check_invariants t

let test_remove_all_ascending () =
  let n = 300 in
  let t = build (List.init n (fun i -> (i, i))) in
  for i = 0 to n - 1 do
    check_bool "removed" true (IT.remove t i);
    IT.check_invariants t
  done;
  check_bool "empty" true (IT.is_empty t)

let test_remove_all_descending () =
  let n = 300 in
  let t = build (List.init n (fun i -> (i, i))) in
  for i = n - 1 downto 0 do
    check_bool "removed" true (IT.remove t i);
    IT.check_invariants t
  done;
  check_bool "empty" true (IT.is_empty t)

let test_height_grows_logarithmically () =
  let t = build ~branching:8 (List.init 4000 (fun i -> (i, i))) in
  check_bool "height sane" true (IT.height t <= 6);
  let internal, leaves = IT.node_counts t in
  check_bool "has internals" true (internal > 0);
  check_bool "leaves bound" true (leaves >= 4000 / 8)

let test_small_branching_rejected () =
  Alcotest.check_raises "branching" (Invalid_argument "Bptree.create: branching < 4")
    (fun () -> ignore (IT.create ~branching:3 ()))

let test_tuple_keys () =
  (* The element index uses 5-tuple keys; verify lexicographic order
     through a tuple key module. *)
  let module K = struct
    type t = int * int * int

    let compare = Stdlib.compare
  end in
  let module T = Bptree.Make (K) in
  let t = T.create ~branching:4 () in
  List.iter
    (fun k -> T.insert t k ())
    [ (1, 2, 3); (0, 9, 9); (1, 0, 0); (1, 2, 2); (2, 0, 0) ];
  let keys = List.map fst (T.to_list t) in
  check_bool "lexicographic" true
    (keys = [ (0, 9, 9); (1, 0, 0); (1, 2, 2); (1, 2, 3); (2, 0, 0) ]);
  (* Prefix scan: all keys with first component 1. *)
  let seen = ref [] in
  T.iter_from t (1, min_int, min_int) (fun ((a, _, _) as k) () ->
      if a = 1 then begin
        seen := k :: !seen;
        true
      end
      else false);
  check_int "prefix count" 3 (List.length !seen);
  T.check_invariants t

(* --- bulk construction --------------------------------------------- *)

let sorted_pairs n = Array.init n (fun i -> (i * 3, i))

let test_of_sorted_sizes () =
  (* Sweep sizes around the leaf and group boundaries for several
     branchings: every tree must satisfy the full invariant check and
     reproduce the input exactly. *)
  List.iter
    (fun branching ->
      List.iter
        (fun n ->
          let pairs = sorted_pairs n in
          let t = IT.of_sorted ~branching pairs in
          IT.check_invariants t;
          check_int (Printf.sprintf "length b=%d n=%d" branching n) n (IT.length t);
          check_bool "contents" true (IT.to_list t = Array.to_list pairs);
          Array.iter
            (fun (k, v) -> check_bool "find" true (IT.find t k = Some v))
            pairs;
          check_bool "absent key" true (IT.find t (-1) = None))
        [ 0; 1; 5; 32; 33; 1000 ])
    [ 4; 7; 32 ]

let test_of_sorted_matches_incremental () =
  (* Bulk load and one-at-a-time insertion agree on every observable. *)
  let pairs = Array.init 777 (fun i -> (i * 2, i)) in
  let bulk = IT.of_sorted ~branching:8 pairs in
  let incr = build ~branching:8 (Array.to_list pairs) in
  check_bool "same contents" true (IT.to_list bulk = IT.to_list incr);
  check_bool "same min" true (IT.min_binding bulk = IT.min_binding incr);
  check_bool "same max" true (IT.max_binding bulk = IT.max_binding incr)

let test_of_sorted_rejects_unsorted () =
  Alcotest.check_raises "descending"
    (Invalid_argument "Bptree.of_sorted: keys not strictly increasing")
    (fun () -> ignore (IT.of_sorted [| (2, ()); (1, ()) |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Bptree.of_sorted: keys not strictly increasing")
    (fun () -> ignore (IT.of_sorted [| (1, ()); (1, ()) |]))

let test_load_sorted () =
  let t = IT.create ~branching:4 () in
  IT.load_sorted t (sorted_pairs 100);
  IT.check_invariants t;
  check_int "loaded" 100 (IT.length t);
  Alcotest.check_raises "non-empty target"
    (Invalid_argument "Bptree.load_sorted: tree not empty")
    (fun () -> IT.load_sorted t (sorted_pairs 3))

let test_insert_sorted_batch_basic () =
  (* Interleave: evens pre-existing, odds batched in. *)
  let t = build ~branching:4 (List.init 50 (fun i -> (i * 2, -i))) in
  IT.insert_sorted_batch t (Array.init 50 (fun i -> ((i * 2) + 1, i)));
  IT.check_invariants t;
  check_int "merged length" 100 (IT.length t);
  check_bool "sorted" true (List.map fst (IT.to_list t) = List.init 100 Fun.id)

let test_insert_sorted_batch_replaces () =
  let t = build ~branching:4 [ (1, "old"); (5, "keep"); (9, "old") ] in
  IT.insert_sorted_batch t [| (1, "new"); (7, "add"); (9, "new") |];
  IT.check_invariants t;
  check_int "no duplicates" 4 (IT.length t);
  check_bool "replaced 1" true (IT.find t 1 = Some "new");
  check_bool "kept 5" true (IT.find t 5 = Some "keep");
  check_bool "replaced 9" true (IT.find t 9 = Some "new")

let test_insert_sorted_batch_edges () =
  let t = IT.create ~branching:4 () in
  IT.insert_sorted_batch t [||];
  check_bool "empty batch, empty tree" true (IT.is_empty t);
  IT.insert_sorted_batch t [| (42, "x") |];
  IT.check_invariants t;
  check_bool "singleton into empty" true (IT.to_list t = [ (42, "x") ]);
  IT.insert_sorted_batch t [||];
  check_int "empty batch is a no-op" 1 (IT.length t);
  Alcotest.check_raises "duplicate keys within the batch"
    (Invalid_argument "Bptree.insert_sorted_batch: keys not strictly increasing")
    (fun () -> IT.insert_sorted_batch t [| (1, "a"); (1, "b") |])

(* --- properties ---------------------------------------------------- *)

type op = Insert of int * int | Remove of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k v -> Insert (k mod 200, v)) (int_bound 1000) (int_bound 1000);
        map (fun k -> Remove (k mod 200)) (int_bound 1000);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 400) op_gen)

let apply_ops branching ops =
  let t = IT.create ~branching () in
  let reference = ref IMap.empty in
  List.iter
    (fun op ->
      match op with
      | Insert (k, v) ->
        IT.insert t k v;
        reference := IMap.add k v !reference
      | Remove k ->
        let removed = IT.remove t k in
        let was_there = IMap.mem k !reference in
        if removed <> was_there then failwith "remove result disagrees with Map";
        reference := IMap.remove k !reference)
    ops;
  (t, !reference)

let prop_matches_map branching =
  QCheck2.Test.make
    ~name:(Printf.sprintf "btree = Map under random ops (branching %d)" branching)
    ~count:300 ops_gen (fun ops ->
      let t, reference = apply_ops branching ops in
      IT.check_invariants t;
      IT.to_list t = IMap.bindings reference)

let prop_iter_from_matches_map =
  QCheck2.Test.make ~name:"iter_from = Map slice" ~count:300
    QCheck2.Gen.(pair ops_gen (int_bound 220))
    (fun (ops, lo) ->
      let t, reference = apply_ops 6 ops in
      let scanned = ref [] in
      IT.iter_from t lo (fun k v ->
          scanned := (k, v) :: !scanned;
          true);
      let expected =
        IMap.bindings (IMap.filter (fun k _ -> k >= lo) reference)
      in
      List.rev !scanned = expected)

(* Both sides of the small-batch/rebuild crossover against Map. *)
let prop_insert_sorted_batch_matches_map =
  let gen =
    QCheck2.Gen.(
      triple ops_gen
        (list_size (int_range 0 300) (pair (int_bound 400) (int_bound 1000)))
        (oneofl [ 4; 7; 32 ]))
  in
  QCheck2.Test.make ~name:"insert_sorted_batch = Map adds" ~count:300 gen
    (fun (ops, batch, branching) ->
      let t, reference = apply_ops branching ops in
      (* Dedup and sort the batch the way callers must. *)
      let batch =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) batch |> Array.of_list
      in
      IT.insert_sorted_batch t batch;
      IT.check_invariants t;
      let expected =
        Array.fold_left (fun m (k, v) -> IMap.add k v m) reference batch
      in
      IT.to_list t = IMap.bindings expected)

let prop_of_sorted_matches_map =
  QCheck2.Test.make ~name:"of_sorted = Map of_list" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 0 600) (pair int (int_bound 1000))) (oneofl [ 4; 7; 32 ]))
    (fun (pairs, branching) ->
      let pairs =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) pairs |> Array.of_list
      in
      let t = IT.of_sorted ~branching pairs in
      IT.check_invariants t;
      IT.to_list t = Array.to_list pairs)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matches_map 4;
      prop_matches_map 7;
      prop_matches_map 32;
      prop_iter_from_matches_map;
      prop_insert_sorted_batch_matches_map;
      prop_of_sorted_matches_map;
    ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert/find" `Quick test_insert_find;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "ordered iteration" `Quick test_ordered_iteration;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "iter_from window" `Quick test_iter_from;
    Alcotest.test_case "iter_from past end" `Quick test_iter_from_past_end;
    Alcotest.test_case "remove simple" `Quick test_remove_simple;
    Alcotest.test_case "remove all ascending" `Quick test_remove_all_ascending;
    Alcotest.test_case "remove all descending" `Quick test_remove_all_descending;
    Alcotest.test_case "height logarithmic" `Quick test_height_grows_logarithmically;
    Alcotest.test_case "branching < 4 rejected" `Quick test_small_branching_rejected;
    Alcotest.test_case "tuple keys + prefix scan" `Quick test_tuple_keys;
    Alcotest.test_case "of_sorted size sweep" `Quick test_of_sorted_sizes;
    Alcotest.test_case "of_sorted = incremental" `Quick test_of_sorted_matches_incremental;
    Alcotest.test_case "of_sorted rejects unsorted" `Quick test_of_sorted_rejects_unsorted;
    Alcotest.test_case "load_sorted" `Quick test_load_sorted;
    Alcotest.test_case "insert_sorted_batch interleave" `Quick test_insert_sorted_batch_basic;
    Alcotest.test_case "insert_sorted_batch replaces" `Quick test_insert_sorted_batch_replaces;
    Alcotest.test_case "insert_sorted_batch edges" `Quick test_insert_sorted_batch_edges;
  ]
  @ props
