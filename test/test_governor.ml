(* Resource governance: admission bounds, typed shedding, deadlines,
   cancellation, retry backoff — plus quick runs of the overload chaos
   harness.  Every concurrent scenario synchronizes on explicit
   latches, never on sleeps, so nothing here is timing-sensitive. *)

open Lazy_xml
module Deadline = Lxu_util.Deadline
module Rng = Lxu_workload.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_config =
  { Governor.max_readers = 1; max_writer_queue = 1; default_deadline_s = None }

let seeded_db gov =
  List.iter
    (fun op -> Shared_db.write (Governor.shared gov) (fun db -> Lxu_crash_harness.Crash_harness.apply db op))
    (Lxu_crash_harness.Crash_harness.gen_ops ~seed:11 ~target_ops:20)

let spin_until flag = while not (Atomic.get flag) do Domain.cpu_relax () done

(* --- admission bounds ------------------------------------------------- *)

let test_read_shed_at_bound () =
  let gov = Governor.create ~config:small_config () in
  let entered = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Governor.read gov (fun _guard _db ->
            Atomic.set entered true;
            spin_until release))
  in
  spin_until entered;
  (* The single read slot is held: the next read sheds immediately,
     typed with the observed occupancy. *)
  (match Governor.read gov (fun _ _ -> ()) with
  | Error (Governor.Overloaded { op = `Read; in_flight = 1; limit = 1 }) -> ()
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok () -> Alcotest.fail "read admitted past max_readers");
  Atomic.set release true;
  (match Domain.join holder with
  | Ok () -> ()
  | Error r -> Alcotest.fail ("holder rejected: " ^ Governor.rejection_to_string r));
  (* Slot released: admission works again. *)
  (match Governor.read gov (fun _ _ -> 42) with
  | Ok n -> check_int "admitted after release" 42 n
  | Error r -> Alcotest.fail ("still shed: " ^ Governor.rejection_to_string r));
  let s = Governor.stats gov in
  check_int "admitted" 2 s.Governor.admitted_reads;
  check_int "completed" 2 s.Governor.completed_reads;
  check_int "shed overload" 1 s.Governor.rejected_overload

let test_writer_queue_bound () =
  let gov = Governor.create ~config:small_config () in
  let entered = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Governor.write gov (fun _guard _db ->
            Atomic.set entered true;
            spin_until release))
  in
  spin_until entered;
  (match Governor.insert gov ~gp:0 "<a/>" with
  | Error (Governor.Overloaded { op = `Write; in_flight = 1; limit = 1 }) -> ()
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok () -> Alcotest.fail "write admitted past max_writer_queue");
  Atomic.set release true;
  ignore (Domain.join holder);
  (match Governor.insert gov ~gp:0 "<a/>" with
  | Ok () -> ()
  | Error r -> Alcotest.fail ("insert shed after release: " ^ Governor.rejection_to_string r));
  check_int "one element inserted" 1
    (Shared_db.read (Governor.shared gov) Lazy_db.element_count)

(* --- cancellation ----------------------------------------------------- *)

let test_pre_cancelled_skips_lock () =
  (* A fired token must reject before the read lock is requested: the
     write lock is held for the whole test, so a count that tried to
     acquire the read lock would block forever. *)
  let gov = Governor.create ~config:small_config () in
  seeded_db gov;
  let entered = Atomic.make false and release = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        Shared_db.write (Governor.shared gov) (fun _db ->
            Atomic.set entered true;
            spin_until release))
  in
  spin_until entered;
  let tok = Deadline.Cancel.create () in
  Deadline.Cancel.cancel ~reason:"gone" tok;
  (match Governor.count gov ~cancel:tok ~anc:"a" ~desc:"b" () with
  | Error (Governor.Cancelled "gone") -> ()
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok _ -> Alcotest.fail "cancelled count returned a result");
  (match Governor.path_count gov ~cancel:tok "//a//b" with
  | Error (Governor.Cancelled "gone") -> ()
  | _ -> Alcotest.fail "cancelled path_count not rejected");
  Atomic.set release true;
  ignore (Domain.join writer);
  let s = Governor.stats gov in
  check_int "nothing admitted" 0 s.Governor.admitted_reads;
  check_int "both rejections typed" 2 s.Governor.rejected_cancel

let test_cancel_mid_read () =
  let gov = Governor.create ~config:small_config () in
  let tok = Deadline.Cancel.create () in
  let entered = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        Governor.read gov ~cancel:tok (fun guard _db ->
            Atomic.set entered true;
            while true do
              Deadline.check_opt guard
            done))
  in
  spin_until entered;
  Deadline.Cancel.cancel ~reason:"enough" tok;
  (match Domain.join reader with
  | Error (Governor.Cancelled "enough") -> ()
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok () -> Alcotest.fail "spinning read returned Ok");
  let s = Governor.stats gov in
  check_int "admitted then cancelled" 1 s.Governor.admitted_reads;
  check_int "not completed" 0 s.Governor.completed_reads;
  check_int "typed as cancel" 1 s.Governor.rejected_cancel

let test_failed_callback_releases_slot () =
  (* A callback that escapes with a foreign exception must re-raise,
     count in the [failed] bucket, and still release its admission
     slot — with max_readers = 1, a leaked slot would shed every
     subsequent read forever. *)
  let gov = Governor.create ~config:small_config () in
  seeded_db gov;
  (match Governor.read gov (fun _ _ -> invalid_arg "boom") with
  | exception Invalid_argument _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "raising callback did not propagate");
  (* A malformed path through the convenience wrapper takes the same
     escape path (Path_query.parse_exn raises Invalid_argument). *)
  (match Governor.path_count gov "not //a path" with
  | exception Invalid_argument _ -> ()
  | Ok _ -> Alcotest.fail "malformed path produced a count"
  | Error r -> Alcotest.fail ("malformed path typed-rejected: " ^ Governor.rejection_to_string r));
  (match Governor.read gov (fun _ _ -> 7) with
  | Ok n -> check_int "slot released after failures" 7 n
  | Error r -> Alcotest.fail ("admission slot leaked: " ^ Governor.rejection_to_string r));
  let s = Governor.stats gov in
  check_int "admitted" 3 s.Governor.admitted_reads;
  check_int "completed" 1 s.Governor.completed_reads;
  check_int "failed" 2 s.Governor.failed;
  check_int "nothing shed" 0 s.Governor.rejected_overload

(* --- deadlines -------------------------------------------------------- *)

let test_deadline_pre_admission () =
  let gov = Governor.create ~config:small_config () in
  seeded_db gov;
  match Governor.count gov ~deadline_s:(-1.) ~anc:"a" ~desc:"b" () with
  | Error (Governor.Timed_out { after_s }) ->
    check_bool "rejected at admission" true (after_s = 0.)
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok _ -> Alcotest.fail "expired deadline admitted"

let test_deadline_mid_read () =
  let gov = Governor.create ~config:small_config () in
  match
    Governor.read gov ~deadline_s:0.002 (fun guard _db ->
        while true do
          Deadline.check_opt guard
        done)
  with
  | Error (Governor.Timed_out { after_s }) ->
    check_bool "measured duration" true (after_s > 0.)
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok () -> Alcotest.fail "spinning read outlived its deadline"

let test_default_deadline_from_config () =
  let gov =
    Governor.create
      ~config:{ small_config with Governor.default_deadline_s = Some 0.002 }
      ()
  in
  match
    Governor.read gov (fun guard _db ->
        while true do
          Deadline.check_opt guard
        done)
  with
  | Error (Governor.Timed_out _) -> ()
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Governor.rejection_to_string r)
  | Ok () -> Alcotest.fail "config default deadline not applied"

(* --- retry ------------------------------------------------------------ *)

let overloaded = Error (Governor.Overloaded { op = `Read; in_flight = 1; limit = 1 })

let test_retry_schedule () =
  let sleeps = ref [] in
  let sleep ms = sleeps := ms :: !sleeps in
  let calls = ref 0 in
  let rng = Rng.create 7 in
  (match
     Governor.retry ~attempts:4 ~base_ms:1. ~factor:2. ~max_ms:3. ~sleep ~rng (fun () ->
         incr calls;
         if !calls < 4 then overloaded else Ok !calls)
   with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "retry did not reach the succeeding attempt");
  let sleeps = List.rev !sleeps in
  check_int "one sleep per failed attempt" 3 (List.length sleeps);
  (* The exact schedule replays from the same seed: delay k is
     u * min(max_ms, base_ms * factor^(k-1)), u in [0.5, 1.0). *)
  let rng' = Rng.create 7 in
  List.iteri
    (fun i ms ->
      let cap = Float.min 3. (2. ** float_of_int i) in
      let u = 0.5 +. (float_of_int (Rng.int rng' 1_048_576) /. 2_097_152.) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "delay %d" (i + 1)) (cap *. u) ms;
      check_bool "within [cap/2, cap)" true (ms >= cap /. 2. && ms < cap))
    sleeps

let test_retry_gives_up_and_passes_through () =
  let sleeps = ref 0 in
  let sleep _ = incr sleeps in
  let calls = ref 0 in
  (* Persistent overload: attempts exhausted, final error returned. *)
  (match
     Governor.retry ~attempts:3 ~sleep ~rng:(Rng.create 1) (fun () ->
         incr calls;
         overloaded)
   with
  | Error (Governor.Overloaded _) -> ()
  | _ -> Alcotest.fail "expected the final Overloaded");
  check_int "three attempts" 3 !calls;
  check_int "two backoffs" 2 !sleeps;
  (* Timed_out and Cancelled are never retried. *)
  let calls = ref 0 in
  (match
     Governor.retry ~attempts:5 ~sleep ~rng:(Rng.create 1) (fun () ->
         incr calls;
         (Error (Governor.Timed_out { after_s = 0. }) : (unit, Governor.rejection) result))
   with
  | Error (Governor.Timed_out _) -> ()
  | _ -> Alcotest.fail "expected Timed_out");
  check_int "no retry on Timed_out" 1 !calls

(* --- property: the gauge never exceeds the bound ---------------------- *)

let test_admission_bound_under_race () =
  (* 8 domains hammer a 3-slot governor; a high-water mark taken
     inside the callbacks must never exceed the bound. *)
  let config = { Governor.max_readers = 3; max_writer_queue = 1; default_deadline_s = None } in
  let gov = Governor.create ~config () in
  let inside = Atomic.make 0 and high = Atomic.make 0 in
  let rec bump_high () =
    let h = Atomic.get high and v = Atomic.get inside in
    if v > h && not (Atomic.compare_and_set high h v) then bump_high ()
  in
  let domains =
    Array.init 8 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              ignore
                (Governor.read gov (fun _ _ ->
                     Atomic.incr inside;
                     bump_high ();
                     Atomic.decr inside))
            done))
  in
  Array.iter Domain.join domains;
  check_bool
    (Printf.sprintf "high-water %d <= bound 3" (Atomic.get high))
    true
    (Atomic.get high <= 3);
  let s = Governor.stats gov in
  check_int "every attempt accounted" (8 * 200)
    (s.Governor.completed_reads + s.Governor.rejected_overload)

(* --- write coalescing ------------------------------------------------- *)

let wide_config =
  { Governor.max_readers = 1; max_writer_queue = 8; default_deadline_s = None }

let test_concurrent_inserts_coalesce_exactly () =
  (* 4 domains hammer [insert] concurrently.  Whatever grouping the
     leader/follower protocol settles on, accounting must stay exact:
     every insert admitted, completed, and visible in the document —
     a lost follower result or a double-applied group member would
     show up in one of these counts. *)
  let gov = Governor.create ~config:wide_config () in
  let per_domain = 25 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              match Governor.insert gov ~gp:0 "<a/>" with
              | Ok () -> ()
              | Error r -> Alcotest.fail ("insert shed: " ^ Governor.rejection_to_string r)
            done))
  in
  Array.iter Domain.join domains;
  let n = 4 * per_domain in
  let s = Governor.stats gov in
  check_int "admitted" n s.Governor.admitted_writes;
  check_int "completed" n s.Governor.completed_writes;
  check_int "failed" 0 s.Governor.failed;
  (* Parked followers hold their admission slot, so at most one slot
     per domain is ever occupied: nothing sheds under an 8-slot bound. *)
  check_int "no overload" 0 s.Governor.rejected_overload;
  Shared_db.read (Governor.shared gov) (fun db ->
      check_int "every element landed" n (Lazy_db.element_count db);
      Lazy_db.check db)

let test_group_error_isolation () =
  (* One doomed insert (gp far past the end) races three good ones
     while a direct writer holds the lock, so the four pile up behind
     it — typically one leader plus parked followers.  Only the doomed
     caller may see the exception; the group fallback must land the
     other three. *)
  let gov = Governor.create ~config:wide_config () in
  let entered = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Shared_db.write (Governor.shared gov) (fun _db ->
            Atomic.set entered true;
            spin_until release))
  in
  spin_until entered;
  let good =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> Governor.insert gov ~gp:0 "<a/>"))
  in
  let bad =
    Domain.spawn (fun () ->
        match Governor.insert gov ~gp:1_000_000 "<b/>" with
        | exception Invalid_argument _ -> `Raised
        | Ok () -> `Applied
        | Error r -> `Rejected r)
  in
  (* All four admitted (counters are atomics, safe to poll) before the
     lock frees: they are parked or blocked, none has run yet. *)
  while (Governor.stats gov).Governor.admitted_writes < 4 do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  ignore (Domain.join holder);
  Array.iter
    (fun d ->
      match Domain.join d with
      | Ok () -> ()
      | Error r -> Alcotest.fail ("good insert lost: " ^ Governor.rejection_to_string r))
    good;
  (match Domain.join bad with
  | `Raised -> ()
  | `Applied -> Alcotest.fail "out-of-range gp applied"
  | `Rejected r -> Alcotest.fail ("typed rejection instead of raise: " ^ Governor.rejection_to_string r));
  let s = Governor.stats gov in
  check_int "admitted" 4 s.Governor.admitted_writes;
  check_int "three completed" 3 s.Governor.completed_writes;
  check_int "one failed" 1 s.Governor.failed;
  Shared_db.read (Governor.shared gov) (fun db ->
      check_int "good elements only" 3 (Lazy_db.element_count db);
      Lazy_db.check db)

let test_insert_many () =
  (* The governed batch entry point: one admission, one write, all
     edits applied under sequential-application gp semantics. *)
  let gov = Governor.create ~config:wide_config () in
  (match Governor.insert_many gov [ (0, "<a/>"); (4, "<b/>") ] with
  | Ok () -> ()
  | Error r -> Alcotest.fail ("batch shed: " ^ Governor.rejection_to_string r));
  let s = Governor.stats gov in
  check_int "one admission for the batch" 1 s.Governor.admitted_writes;
  check_int "completed" 1 s.Governor.completed_writes;
  Shared_db.read (Governor.shared gov) (fun db ->
      check_int "both edits applied" 2 (Lazy_db.element_count db);
      Lazy_db.check db)

(* --- the chaos harness, quick slice ----------------------------------- *)

let chaos engine domains seed () =
  let r = Lxu_crash_harness.Overload_harness.run_one ~engine ~domains ~seed () in
  check_bool "deadline pressure observed" true (r.Lxu_crash_harness.Overload_harness.timed_out > 0);
  check_bool "cancellations observed" true (r.Lxu_crash_harness.Overload_harness.cancelled >= 2)

let suite =
  [
    Alcotest.test_case "reads shed at the bound" `Quick test_read_shed_at_bound;
    Alcotest.test_case "writer queue bounded" `Quick test_writer_queue_bound;
    Alcotest.test_case "pre-cancelled op skips the lock" `Quick test_pre_cancelled_skips_lock;
    Alcotest.test_case "cancel lands mid-read" `Quick test_cancel_mid_read;
    Alcotest.test_case "raising callback releases its slot" `Quick
      test_failed_callback_releases_slot;
    Alcotest.test_case "expired deadline rejected at admission" `Quick test_deadline_pre_admission;
    Alcotest.test_case "deadline lands mid-read" `Quick test_deadline_mid_read;
    Alcotest.test_case "config default deadline" `Quick test_default_deadline_from_config;
    Alcotest.test_case "retry schedule is seeded jittered backoff" `Quick test_retry_schedule;
    Alcotest.test_case "retry scope" `Quick test_retry_gives_up_and_passes_through;
    Alcotest.test_case "admission bound holds under race" `Quick test_admission_bound_under_race;
    Alcotest.test_case "concurrent inserts coalesce exactly" `Quick
      test_concurrent_inserts_coalesce_exactly;
    Alcotest.test_case "group error isolation" `Quick test_group_error_isolation;
    Alcotest.test_case "insert_many" `Quick test_insert_many;
    Alcotest.test_case "chaos LD sequential" `Quick (chaos Lazy_db.LD 1 1);
    Alcotest.test_case "chaos LD parallel" `Quick (chaos Lazy_db.LD 4 2);
    Alcotest.test_case "chaos STD" `Quick (chaos Lazy_db.STD 1 3);
  ]
