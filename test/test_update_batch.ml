(* Differential tests for the batched write path: insert_batch /
   Lazy_db.insert_many must be query-indistinguishable from the same
   edits applied one at a time, all-or-nothing on invalid input, and
   crash-safe as one WAL record group that recovers a prefix. *)

open Lazy_xml
open Lxu_seglog
module H = Lxu_crash_harness.Crash_harness

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Query-visible state plus the raw element index: document text,
   counts, every (tid, sid, start, stop, level) key in index order,
   and the full all-pairs join output over [tags] on both axes.
   Equality of two fingerprints means the two databases cannot be told
   apart by any supported query. *)
let fingerprint ~tags db =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Lazy_db.text db);
  Printf.bprintf b "|elems=%d|segs=%d" (Lazy_db.element_count db) (Lazy_db.segment_count db);
  (match Lazy_db.log db with
  | Some log ->
    Element_index.iter_all (Update_log.element_index log) (fun k ->
        Printf.bprintf b "|%d,%d,%d,%d,%d" k.Element_index.tid k.Element_index.sid
          k.Element_index.start k.Element_index.stop k.Element_index.level)
  | None -> ());
  List.iter
    (fun anc ->
      List.iter
        (fun desc ->
          List.iter
            (fun axis ->
              let pairs, _ = Lazy_db.query db ~axis ~anc ~desc () in
              List.iter (fun (a, d) -> Printf.bprintf b "|%d>%d" a d) pairs)
            [ Lazy_db.Descendant; Lazy_db.Child ])
        tags)
    tags;
  Digest.to_hex (Digest.string (Buffer.contents b))

let xmark_tags = [ "person"; "phone"; "profile"; "interest"; "watches"; "watch" ]

let chunks k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let xmark_edits shape =
  let text = Lxu_workload.Xmark.generate_text ~persons:30 ~seed:7 () in
  Lxu_workload.Chopper.chop ~text ~segments:60 shape

(* --- batched = sequential ------------------------------------------- *)

let test_batch_equals_sequential () =
  let run ~engine ~domains ~batch ~shape =
    let edits = xmark_edits shape in
    let seq_db = Lazy_db.create ~engine ~domains () in
    List.iter (fun (gp, frag) -> Lazy_db.insert seq_db ~gp frag) edits;
    let batch_db = Lazy_db.create ~engine ~domains () in
    List.iter (Lazy_db.insert_many batch_db) (chunks batch edits);
    Lazy_db.check batch_db;
    let ctx =
      Printf.sprintf "%s domains=%d batch=%d %s"
        (match engine with Lazy_db.LD -> "LD" | Lazy_db.LS -> "LS" | Lazy_db.STD -> "STD")
        domains batch
        (match shape with Lxu_workload.Chopper.Balanced -> "balanced" | Nested -> "nested")
    in
    check_string ctx (fingerprint ~tags:xmark_tags seq_db) (fingerprint ~tags:xmark_tags batch_db)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun domains ->
          List.iter
            (fun batch -> run ~engine ~domains ~batch ~shape:Lxu_workload.Chopper.Balanced)
            [ 2; 7; 64 ])
        [ 1; 4 ];
      (* The chain-shaped worst-case ER-tree, once per engine. *)
      run ~engine ~domains:1 ~batch:7 ~shape:Lxu_workload.Chopper.Nested)
    [ Lazy_db.LD; Lazy_db.LS ]

(* One-element batch and whole-schedule batch behave too. *)
let test_batch_extremes () =
  let edits = xmark_edits Lxu_workload.Chopper.Balanced in
  let seq_db = Lazy_db.create () in
  List.iter (fun (gp, frag) -> Lazy_db.insert seq_db ~gp frag) edits;
  let one_shot = Lazy_db.create () in
  Lazy_db.insert_many one_shot edits;
  Lazy_db.check one_shot;
  check_string "whole schedule in one batch"
    (fingerprint ~tags:xmark_tags seq_db)
    (fingerprint ~tags:xmark_tags one_shot);
  let empty = Lazy_db.create () in
  Lazy_db.insert_many empty [];
  check_int "empty batch inserts nothing" 0 (Lazy_db.segment_count empty)

(* --- all-or-nothing -------------------------------------------------- *)

let test_all_or_nothing () =
  let tags = [ "r"; "a"; "b"; "x" ] in
  List.iter
    (fun engine ->
      let db = Lazy_db.create ~engine () in
      Lazy_db.insert db ~gp:0 "<r><a/><b/></r>";
      let fp0 = fingerprint ~tags db in
      let segs0 = Lazy_db.segment_count db in
      (* Last edit's gp is out of bounds even after the first two grow
         the document. *)
      (match Lazy_db.insert_many db [ (3, "<x/>"); (3, "<x/>"); (10_000, "<x/>") ] with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "out-of-bounds batch applied");
      check_string "bad gp leaves the log unchanged" fp0 (fingerprint ~tags db);
      check_int "no segments added" segs0 (Lazy_db.segment_count db);
      (match Lazy_db.insert_many db [ (3, "<x/>"); (3, "<oops>") ] with
      | exception Lxu_xml.Parser.Parse_error _ -> ()
      | () -> Alcotest.fail "ill-formed batch applied");
      check_string "parse error leaves the log unchanged" fp0 (fingerprint ~tags db);
      (match Lazy_db.insert_many db [ (3, "<x/>"); (4, "") ] with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "empty-text batch applied");
      check_string "empty text leaves the log unchanged" fp0 (fingerprint ~tags db);
      Lazy_db.check db)
    [ Lazy_db.LD; Lazy_db.LS ]

(* --- live segment counter -------------------------------------------- *)

let test_segment_counter_matches_walk () =
  let log = Update_log.create () in
  let sids =
    Update_log.insert_batch log
      [ (0, "<r><a/><b/><c/></r>"); (3, "<x><y/></x>"); (3, "<z/>") ]
  in
  check_int "three sids" 3 (List.length sids);
  check_int "counter = walk after batch" (Update_log.segment_count_walk log)
    (Update_log.segment_count log);
  check_int "counter" 3 (Update_log.segment_count log);
  (* Remove a range covering the <z/> segment: counter must follow. *)
  Update_log.remove log ~gp:3 ~len:4;
  check_int "counter = walk after remove" (Update_log.segment_count_walk log)
    (Update_log.segment_count log);
  Update_log.check log

(* --- WAL group commit and crash replay ------------------------------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_test_batch_%d_%d" (Unix.getpid ()) !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One insert_many group becomes one run of WAL records committed with
   a single flush; a crash at any record boundary must recover exactly
   the state after that prefix of the batch. *)
let test_wal_group_crash_replay () =
  let tags = [ "r"; "a"; "b"; "x"; "y"; "z" ] in
  let first = (0, "<r><a/><b/></r>") in
  let batch = [ (3, "<x><a/></x>"); (14, "<y/>"); (18, "<z><b/></z>") ] in
  let ops = first :: batch in
  let n = List.length ops in
  (* Reference fingerprints per op prefix, from a never-crashed
     database applying the edits one at a time. *)
  let fps = Array.make (n + 1) "" in
  let reference = Lazy_db.create () in
  fps.(0) <- fingerprint ~tags reference;
  List.iteri
    (fun i (gp, text) ->
      Lazy_db.insert reference ~gp text;
      fps.(i + 1) <- fingerprint ~tags reference)
    ops;
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let db = Lazy_db.create ~durability:(`Wal dir) () in
      let gp0, t0 = first in
      Lazy_db.insert db ~gp:gp0 t0;
      Lazy_db.insert_many db batch;
      check_string "durable db state" fps.(n) (fingerprint ~tags db);
      Lazy_db.close db;
      let wal_bytes = read_file (Lxu_storage.Wal_store.wal_path dir) in
      let scan = Lxu_storage.Wal.scan wal_bytes in
      check_bool "clean WAL" true (scan.Lxu_storage.Wal.corruption = None);
      let records = Array.of_list scan.Lxu_storage.Wal.records in
      check_int "one record per edit of the group" n (Array.length records);
      let boundary_off j =
        if j = 0 then Lxu_storage.Wal.header_bytes else records.(j - 1).Lxu_storage.Wal.end_off
      in
      for j = 0 to n do
        let prefix = String.sub wal_bytes 0 (boundary_off j) in
        let log, report = Lxu_storage.Recovery.recover_bytes prefix in
        check_int
          (Printf.sprintf "boundary %d: records applied" j)
          j report.Lxu_storage.Recovery.records_applied;
        check_string
          (Printf.sprintf "boundary %d: prefix state" j)
          fps.(j)
          (fingerprint ~tags (Lazy_db.of_log log))
      done)

(* The group is logged only once it applied: a failing batch leaves
   the WAL without any record of the group. *)
let test_wal_failed_batch_logs_nothing () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let db = Lazy_db.create ~durability:(`Wal dir) () in
      Lazy_db.insert db ~gp:0 "<r><a/></r>";
      (match Lazy_db.insert_many db [ (3, "<x/>"); (99_999, "<x/>") ] with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "bad batch applied");
      Lazy_db.close db;
      let scan = Lxu_storage.Wal.scan (read_file (Lxu_storage.Wal_store.wal_path dir)) in
      check_int "only the first insert is logged" 1
        (List.length scan.Lxu_storage.Wal.records))

(* --- qcheck: random schedules, random chunkings ---------------------- *)

(* Random insert-only schedules over the crash-harness fragment pool:
   positions are drawn from the legal split points of the evolving
   document, then the whole schedule is applied sequentially vs
   batched under a random chunking. *)
let schedule_gen =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* n = int_range 1 40 in
    let* batch = int_range 1 10 in
    return (seed, n, batch))

let build_schedule seed n =
  let rng = Lxu_workload.Rng.create seed in
  let doc = Buffer.create 256 in
  let edits = ref [] in
  for _ = 1 to n do
    let frag = H.fragments.(Lxu_workload.Rng.int rng (Array.length H.fragments)) in
    let text = Buffer.contents doc in
    let points =
      (* Legal insertion points: start/end of any element, or the
         document edges. *)
      0 :: String.length text
      :: List.concat_map (fun (s, e) -> [ s; e ]) (H.element_extents text)
      |> List.sort_uniq compare
    in
    let gp = List.nth points (Lxu_workload.Rng.int rng (List.length points)) in
    edits := (gp, frag) :: !edits;
    Buffer.clear doc;
    Buffer.add_string doc
      (String.sub text 0 gp ^ frag ^ String.sub text gp (String.length text - gp))
  done;
  List.rev !edits

let prop_random_schedules =
  QCheck2.Test.make ~name:"insert_many = sequential inserts (random schedules)" ~count:60
    schedule_gen (fun (seed, n, batch) ->
      let edits = build_schedule seed n in
      let tags = Array.to_list H.vocabulary in
      List.for_all
        (fun engine ->
          let seq_db = Lazy_db.create ~engine ~index_attributes:true () in
          List.iter (fun (gp, frag) -> Lazy_db.insert seq_db ~gp frag) edits;
          let batch_db = Lazy_db.create ~engine ~index_attributes:true () in
          List.iter (Lazy_db.insert_many batch_db) (chunks batch edits);
          Lazy_db.check batch_db;
          fingerprint ~tags seq_db = fingerprint ~tags batch_db)
        [ Lazy_db.LD; Lazy_db.LS ])

let suite =
  [
    Alcotest.test_case "batched = sequential (engines x domains x sizes)" `Quick
      test_batch_equals_sequential;
    Alcotest.test_case "batch extremes" `Quick test_batch_extremes;
    Alcotest.test_case "all-or-nothing" `Quick test_all_or_nothing;
    Alcotest.test_case "segment counter = walk" `Quick test_segment_counter_matches_walk;
    Alcotest.test_case "WAL group crash replay" `Quick test_wal_group_crash_replay;
    Alcotest.test_case "failed batch logs nothing" `Quick test_wal_failed_batch_logs_nothing;
    QCheck_alcotest.to_alcotest prop_random_schedules;
  ]
