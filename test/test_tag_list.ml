(* Tests for the tag-list: sorted insertion, LS-style deferred sorting,
   count bookkeeping on deletion. *)

open Lxu_seglog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry sid path count = { Tag_list.sid; path = Array.of_list path; count }

(* A fixed gp assignment for sorting tests. *)
let gp_of = function 1 -> 100 | 2 -> 50 | 3 -> 75 | 4 -> 10 | _ -> 0

let sids t tid = Array.to_list (Array.map (fun e -> e.Tag_list.sid) (Tag_list.entries t ~tid))

let test_add_sorted () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:7 (entry 1 [ 0; 1 ] 3) ~gp_of;
  Tag_list.add_sorted t ~tid:7 (entry 2 [ 0; 2 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:7 (entry 3 [ 0; 2; 3 ] 2) ~gp_of;
  Alcotest.(check (list int)) "gp order" [ 2; 3; 1 ] (sids t 7);
  check_bool "not dirty" false (Tag_list.is_dirty t)

let test_append_and_sort () =
  let t = Tag_list.create () in
  Tag_list.append t ~tid:7 (entry 1 [ 0; 1 ] 1);
  Tag_list.append t ~tid:7 (entry 4 [ 0; 4 ] 1);
  Tag_list.append t ~tid:7 (entry 2 [ 0; 2 ] 1);
  check_bool "dirty" true (Tag_list.is_dirty t);
  check_bool "entries refuses dirty reads" true
    (match Tag_list.entries t ~tid:7 with
    | exception Tag_list.Dirty_tag_list 7 -> true
    | _ -> false);
  (* Dirtiness is per tag: a clean tag stays readable while tag 7 is
     dirty, and a soiled one raises with its own tid. *)
  Tag_list.add_sorted t ~tid:9 (entry 1 [ 0; 1 ] 1) ~gp_of;
  check_int "clean tag readable beside a dirty one" 1
    (Array.length (Tag_list.entries t ~tid:9));
  Tag_list.append t ~tid:9 (entry 2 [ 0; 2 ] 1);
  check_bool "exception names the requested tag" true
    (match Tag_list.entries t ~tid:9 with
    | exception Tag_list.Dirty_tag_list 9 -> true
    | _ -> false);
  Tag_list.sort_all t ~gp_of;
  Alcotest.(check (list int)) "sorted" [ 4; 2; 1 ] (sids t 7);
  check_bool "clean" false (Tag_list.is_dirty t)

let test_mark_dirty () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.mark_dirty t;
  check_bool "dirty again" true (Tag_list.is_dirty t);
  Tag_list.sort_all t ~gp_of;
  check_int "still there" 1 (List.length (sids t 1))

let test_decrement () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 3) ~gp_of;
  Tag_list.decrement t ~tid:1 ~sid:1 ~by:2;
  check_int "count lowered" 1 (Tag_list.entries t ~tid:1).(0).Tag_list.count;
  Tag_list.decrement t ~tid:1 ~sid:1 ~by:1;
  check_int "entry dropped at zero" 0 (Array.length (Tag_list.entries t ~tid:1));
  (* Unknown pairs are ignored. *)
  Tag_list.decrement t ~tid:1 ~sid:99 ~by:1;
  Tag_list.decrement t ~tid:42 ~sid:1 ~by:1

let test_remove_segment () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:2 (entry 1 [ 0; 1 ] 4) ~gp_of;
  Tag_list.add_sorted t ~tid:2 (entry 2 [ 0; 2 ] 1) ~gp_of;
  Tag_list.remove_segment t ~sid:1;
  check_int "tid1 empty" 0 (Array.length (Tag_list.entries t ~tid:1));
  Alcotest.(check (list int)) "tid2 keeps sid2" [ 2 ] (sids t 2)

(* O(1) cardinalities must agree with summing the entries — across
   sorted adds, appends (including while dirty, when [entries] itself
   refuses to answer), decrements and segment removals. *)
let test_cardinalities () =
  let t = Tag_list.create () in
  check_int "empty tag segments" 0 (Tag_list.tag_segments t ~tid:1);
  check_int "empty tag elements" 0 (Tag_list.tag_elements t ~tid:1);
  check_int "empty max" 0 (Tag_list.max_segments t);
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 3) ~gp_of;
  Tag_list.add_sorted t ~tid:1 (entry 2 [ 0; 2 ] 2) ~gp_of;
  Tag_list.add_sorted t ~tid:2 (entry 1 [ 0; 1 ] 5) ~gp_of;
  check_int "segments" 2 (Tag_list.tag_segments t ~tid:1);
  check_int "elements" 5 (Tag_list.tag_elements t ~tid:1);
  check_int "max over tags" 2 (Tag_list.max_segments t);
  (* Pending appends count while the list is dirty. *)
  Tag_list.append t ~tid:1 (entry 3 [ 0; 3 ] 4);
  check_bool "dirty" true (Tag_list.is_dirty t);
  check_int "segments incl. pending" 3 (Tag_list.tag_segments t ~tid:1);
  check_int "elements incl. pending" 9 (Tag_list.tag_elements t ~tid:1);
  Tag_list.sort_all t ~gp_of;
  check_int "segments after sort" 3 (Tag_list.tag_segments t ~tid:1);
  check_int "elements after sort" 9 (Tag_list.tag_elements t ~tid:1);
  Tag_list.decrement t ~tid:1 ~sid:2 ~by:2;
  check_int "decrement drops the entry" 2 (Tag_list.tag_segments t ~tid:1);
  check_int "elements after decrement" 7 (Tag_list.tag_elements t ~tid:1);
  Tag_list.remove_segment t ~sid:1;
  check_int "segments after removal" 1 (Tag_list.tag_segments t ~tid:1);
  check_int "elements after removal" 4 (Tag_list.tag_elements t ~tid:1);
  check_int "tid2 emptied" 0 (Tag_list.tag_elements t ~tid:2);
  check_int "max after removal" 1 (Tag_list.max_segments t)

let test_tids_and_sizes () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:5 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:3 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Alcotest.(check (list int)) "tids sorted" [ 3; 5 ] (Tag_list.tids t);
  check_bool "size" true (Tag_list.size_bytes t > 0);
  check_bool "ops counted" true (Tag_list.path_ops t >= 2)

(* Differential: the run-merge sort path (default) against the legacy
   full re-sort (LXU_TAGSORT=resort), on an op schedule with gp
   collisions, mid-stream sorts, decrements and segment removals.  The
   two must agree entry-for-entry — including the order of equal-gp
   entries, which is where a naive unstable sort would diverge. *)
let test_merge_matches_resort () =
  (* Plenty of collisions: five distinct gps over ~40 sids. *)
  let gp_of sid = sid mod 5 * 10 in
  let ops rng =
    List.init 400 (fun i ->
        let tid = 1 + Lxu_workload.Rng.int rng 6 in
        let sid = 1 + Lxu_workload.Rng.int rng 40 in
        match Lxu_workload.Rng.int rng 10 with
        | 0 -> `Sort
        | 1 -> `Decrement (tid, sid)
        | 2 when i > 50 -> `Remove_segment sid
        | 3 | 4 -> `Add_sorted (tid, entry sid [ 0; sid ] (1 + (i mod 3)))
        | _ -> `Append (tid, entry sid [ 0; sid ] (1 + (i mod 3))))
  in
  let apply mode ops =
    Unix.putenv "LXU_TAGSORT" mode;
    let t = Tag_list.create () in
    List.iter
      (function
        | `Sort -> Tag_list.sort_all t ~gp_of
        | `Decrement (tid, sid) -> Tag_list.decrement t ~tid ~sid ~by:1
        | `Remove_segment sid -> Tag_list.remove_segment t ~sid
        | `Add_sorted (tid, e) -> Tag_list.add_sorted t ~tid e ~gp_of
        | `Append (tid, e) -> Tag_list.append t ~tid e)
      ops;
    Tag_list.sort_all t ~gp_of;
    Unix.putenv "LXU_TAGSORT" "";
    t
  in
  List.iter
    (fun seed ->
      (* The same schedule twice: entries must be fresh per run
         (counts are mutable), so regenerate from the same seed. *)
      let merged = apply "merge" (ops (Lxu_workload.Rng.create seed)) in
      let resorted = apply "resort" (ops (Lxu_workload.Rng.create seed)) in
      Alcotest.(check (list int)) "same tags" (Tag_list.tids merged) (Tag_list.tids resorted);
      List.iter
        (fun tid ->
          let dump t =
            Tag_list.entries t ~tid |> Array.to_list
            |> List.map (fun e -> (e.Tag_list.sid, Array.to_list e.Tag_list.path, e.Tag_list.count))
          in
          check_bool
            (Printf.sprintf "seed %d tid %d identical" seed tid)
            true
            (dump merged = dump resorted))
        (Tag_list.tids merged))
    [ 1; 2; 3; 42 ]

let suite =
  [
    Alcotest.test_case "add_sorted keeps gp order" `Quick test_add_sorted;
    Alcotest.test_case "append then sort_all" `Quick test_append_and_sort;
    Alcotest.test_case "mark_dirty" `Quick test_mark_dirty;
    Alcotest.test_case "decrement" `Quick test_decrement;
    Alcotest.test_case "remove_segment" `Quick test_remove_segment;
    Alcotest.test_case "O(1) cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "tids and sizes" `Quick test_tids_and_sizes;
    Alcotest.test_case "merge sort path = full re-sort" `Quick test_merge_matches_resort;
  ]
