(* Tests for the path-summary synopsis: incremental maintenance under
   inserts, batches, removes and packs must agree with a from-scratch
   rebuild; frozen clones are isolated from later writes; save/load
   reconstructs; cardinalities and the Proposition-3 ancestor evidence
   are consistent with the document. *)

open Lazy_xml
open Lxu_seglog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let agrees ctx log =
  check_bool ctx true
    (Path_synopsis.equal (Update_log.synopsis log) (Update_log.synopsis_rebuilt log))

let log_of db = Option.get (Lazy_db.log db)

let xmark_edits ?(persons = 25) ?(segments = 40) ?(seed = 11) shape =
  let text = Lxu_workload.Xmark.generate_text ~persons ~seed () in
  Lxu_workload.Chopper.chop ~text ~segments shape

(* --- incremental = rebuilt ------------------------------------------- *)

let test_inserts () =
  List.iter
    (fun engine ->
      List.iter
        (fun shape ->
          let db = Lazy_db.create ~engine () in
          List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits shape);
          let log = log_of db in
          agrees "after inserts" log;
          let syn = Update_log.synopsis log in
          check_int "element totals" (Lazy_db.element_count db) (Path_synopsis.elements syn);
          check_bool "has paths" true (Path_synopsis.distinct_paths syn > 0))
        [ Lxu_workload.Chopper.Balanced; Lxu_workload.Chopper.Nested ])
    [ Lazy_db.LD; Lazy_db.LS ]

let test_batches () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  Lazy_db.insert_many db (xmark_edits Lxu_workload.Chopper.Balanced);
  agrees "after insert_many" (log_of db)

let test_removes () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits Lxu_workload.Chopper.Balanced);
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 12 do
    let text = Lazy_db.text db in
    let nodes = Lxu_xml.Parser.parse_fragment text in
    let extents = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
        if e.Lxu_xml.Tree.e_start >= 0 then
          extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
    match !extents with
    | [] -> ()
    | l ->
      let arr = Array.of_list l in
      let s, e_ = arr.(Random.State.int st (Array.length arr)) in
      Lazy_db.remove db ~gp:s ~len:(e_ - s);
      agrees "after each remove" (log_of db)
  done;
  Lazy_db.check db

let test_pack () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits Lxu_workload.Chopper.Nested);
  Lazy_db.pack_subtree db ~gp:0 ~len:(Lazy_db.doc_length db);
  agrees "after whole-document pack" (log_of db);
  Lazy_db.check db

(* --- frozen snapshots are isolated ----------------------------------- *)

let test_snapshot_isolation () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits Lxu_workload.Chopper.Balanced);
  Lazy_db.with_snapshot db (fun snap ->
      let before = Path_synopsis.distinct_paths (Update_log.synopsis (log_of snap)) in
      (* Mutate the live database; the snapshot's synopsis must not move. *)
      Lazy_db.insert db ~gp:(Lazy_db.doc_length db) "<zzz><yyy/></zzz>";
      Lazy_db.remove db ~gp:(Lazy_db.doc_length db - 17) ~len:17;
      agrees "live log after writes" (log_of db);
      agrees "snapshot after live writes" (log_of snap);
      check_int "snapshot path count unchanged" before
        (Path_synopsis.distinct_paths (Update_log.synopsis (log_of snap))))

(* --- save / load ------------------------------------------------------ *)

let test_save_load () =
  let dir = Filename.temp_file "lxu_syn" "" in
  Sys.remove dir;
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits Lxu_workload.Chopper.Balanced);
  Lazy_db.save db dir;
  let db2 = Lazy_db.load dir in
  agrees "after load" (log_of db2);
  check_bool "same synopsis as the saved db" true
    (Path_synopsis.equal (Update_log.synopsis (log_of db)) (Update_log.synopsis (log_of db2)))

(* --- cardinalities and Proposition-3 evidence ------------------------- *)

let test_tag_total () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) (xmark_edits Lxu_workload.Chopper.Balanced);
  let log = log_of db in
  let syn = Update_log.synopsis log in
  let reg = Update_log.registry log in
  List.iter
    (fun tag ->
      let expected = List.length (Path_query.eval_string db ("//" ^ tag)) in
      let got =
        match Tag_registry.find reg tag with
        | Some tid -> Path_synopsis.tag_total syn ~tid
        | None -> 0
      in
      check_int ("tag_total " ^ tag) expected got)
    [ "person"; "profile"; "interest"; "watch"; "nosuchtag" ]

let test_may_have_ancestor () =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  (* Two sibling subtrees in their own segments under a shared root:
     <r><a><b/></a><c><d/></c></r>.  The segment holding d has c and r
     above it but never a. *)
  Lazy_db.insert db ~gp:0 "<r></r>";
  Lazy_db.insert db ~gp:3 "<a><b/></a>";
  Lazy_db.insert db ~gp:14 "<c><d/></c>";
  let log = log_of db in
  let syn = Update_log.synopsis log in
  let reg = Update_log.registry log in
  let tid tag = Option.get (Tag_registry.find reg tag) in
  let sid_of tag =
    (Tag_list.entries (Update_log.tag_list log) ~tid:(tid tag)).(0).Tag_list.sid
  in
  let d_sid = sid_of "d" in
  check_bool "d segment may have c ancestor" true
    (Path_synopsis.may_have_ancestor syn ~sid:d_sid ~tid:(tid "c"));
  check_bool "d segment may have r ancestor" true
    (Path_synopsis.may_have_ancestor syn ~sid:d_sid ~tid:(tid "r"));
  check_bool "d segment provably has no a ancestor" false
    (Path_synopsis.may_have_ancestor syn ~sid:d_sid ~tid:(tid "a"));
  (* Unknown segments must stay conservative. *)
  check_bool "unknown sid is conservative" true
    (Path_synopsis.may_have_ancestor syn ~sid:99999 ~tid:(tid "a"));
  agrees "small doc" log

(* --- qcheck: random edit scripts -------------------------------------- *)

let prop_random_scripts =
  QCheck2.Test.make ~name:"synopsis incremental = rebuilt (random scripts)" ~count:30
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let engine = if seed mod 2 = 0 then Lazy_db.LD else Lazy_db.LS in
      let db = Lazy_db.create ~engine () in
      let text =
        Lxu_workload.Generator.generate_text ~seed
          ~target_elements:(40 + (seed mod 60))
          ()
      in
      let shape =
        if seed mod 3 = 0 then Lxu_workload.Chopper.Nested else Lxu_workload.Chopper.Balanced
      in
      let edits = Lxu_workload.Chopper.chop ~text ~segments:(4 + (seed mod 10)) shape in
      List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits;
      (* A few random whole-element removes, then a pack. *)
      for _ = 1 to 3 do
        let nodes = Lxu_xml.Parser.parse_fragment (Lazy_db.text db) in
        let extents = ref [] in
        Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
            if e.Lxu_xml.Tree.e_start >= 0 then
              extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
        match !extents with
        | [] -> ()
        | l ->
          let arr = Array.of_list l in
          let s, e_ = arr.(Random.State.int st (Array.length arr)) in
          Lazy_db.remove db ~gp:s ~len:(e_ - s)
      done;
      let log = log_of db in
      let ok1 =
        Path_synopsis.equal (Update_log.synopsis log) (Update_log.synopsis_rebuilt log)
      in
      if Lazy_db.doc_length db > 0 then
        Lazy_db.pack_subtree db ~gp:0 ~len:(Lazy_db.doc_length db);
      let ok2 =
        Path_synopsis.equal (Update_log.synopsis log) (Update_log.synopsis_rebuilt log)
      in
      ok1 && ok2)

let suite =
  [
    Alcotest.test_case "incremental = rebuilt after inserts" `Quick test_inserts;
    Alcotest.test_case "incremental = rebuilt after insert_many" `Quick test_batches;
    Alcotest.test_case "incremental = rebuilt across removes" `Quick test_removes;
    Alcotest.test_case "incremental = rebuilt after pack" `Quick test_pack;
    Alcotest.test_case "frozen snapshots are isolated" `Quick test_snapshot_isolation;
    Alcotest.test_case "save/load reconstructs" `Quick test_save_load;
    Alcotest.test_case "tag_total matches query counts" `Quick test_tag_total;
    Alcotest.test_case "Proposition-3 ancestor evidence" `Quick test_may_have_ancestor;
    QCheck_alcotest.to_alcotest prop_random_scripts;
  ]
