(* Tests for the columnar segment-element cache: LRU eviction
   accounting, epoch invalidation through the update log, and a
   randomized differential property — a database with the cache
   enabled must return byte-identical pairs and statistics to a twin
   with it disabled, across LD/LS, both axes, sequential and
   domain-parallel execution, and through removes and packs. *)

open Lazy_xml
open Lxu_seglog
open Lxu_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_cols n =
  {
    Seg_cache.starts = Array.init n (fun i -> 2 * i);
    stops = Array.init n (fun i -> (2 * i) + 1);
    levels = Array.make n 0;
  }

(* --- unit: LRU eviction and counter accounting --------------------- *)

let test_lru_eviction () =
  let per = Seg_cache.entry_bytes 10 in
  let cache = Seg_cache.create ~max_bytes:(3 * per) () in
  for sid = 1 to 5 do
    Seg_cache.add cache ~tid:0 ~sid (mk_cols 10)
  done;
  let s = Seg_cache.stats cache in
  check_int "entries capped" 3 s.Seg_cache.entries;
  check_int "evictions counted" 2 s.Seg_cache.evictions;
  check_int "bytes accounted" (3 * per) s.Seg_cache.bytes;
  check_bool "bytes within budget" true (s.Seg_cache.bytes <= s.Seg_cache.max_bytes);
  (* Cold end went first: 1 and 2 are out, 3..5 are in. *)
  check_bool "oldest evicted" true (Seg_cache.find cache ~tid:0 ~sid:1 = None);
  check_bool "newest kept" true (Seg_cache.find cache ~tid:0 ~sid:5 <> None);
  (* A lookup touch moves its entry to the hot end, changing who is
     evicted next. *)
  check_bool "touch 3" true (Seg_cache.find cache ~tid:0 ~sid:3 <> None);
  Seg_cache.add cache ~tid:0 ~sid:6 (mk_cols 10);
  check_bool "touched entry survives" true (Seg_cache.find cache ~tid:0 ~sid:3 <> None);
  check_bool "cold entry evicted" true (Seg_cache.find cache ~tid:0 ~sid:4 = None);
  let s = Seg_cache.stats cache in
  check_int "hits + misses = lookups" s.Seg_cache.lookups
    (s.Seg_cache.hits + s.Seg_cache.misses);
  check_bool "still within budget" true (s.Seg_cache.bytes <= s.Seg_cache.max_bytes)

let test_oversize_not_cached () =
  let cache = Seg_cache.create ~max_bytes:(Seg_cache.entry_bytes 4) () in
  Seg_cache.add cache ~tid:0 ~sid:1 (mk_cols 100);
  let s = Seg_cache.stats cache in
  check_int "oversize skipped" 0 s.Seg_cache.entries;
  check_int "nothing evicted for it" 0 s.Seg_cache.evictions;
  check_int "no bytes held" 0 s.Seg_cache.bytes

let test_replace_same_key () =
  let cache = Seg_cache.create ~max_bytes:(10 * Seg_cache.entry_bytes 8) () in
  Seg_cache.add cache ~tid:0 ~sid:1 (mk_cols 8);
  Seg_cache.add cache ~tid:0 ~sid:1 (mk_cols 3);
  let s = Seg_cache.stats cache in
  check_int "one entry" 1 s.Seg_cache.entries;
  check_int "bytes are the replacement's" (Seg_cache.entry_bytes 3) s.Seg_cache.bytes;
  match Seg_cache.find cache ~tid:0 ~sid:1 with
  | Some c -> check_int "replacement visible" 3 (Seg_cache.cols_length c)
  | None -> Alcotest.fail "replaced entry missing"

let test_disabled () =
  let cache = Seg_cache.create ~max_bytes:0 () in
  check_bool "disabled" false (Seg_cache.enabled cache);
  Seg_cache.add cache ~tid:0 ~sid:1 (mk_cols 3);
  check_bool "find always misses" true (Seg_cache.find cache ~tid:0 ~sid:1 = None);
  Seg_cache.invalidate_segment cache ~sid:1;
  let s = Seg_cache.stats cache in
  check_int "no lookups counted" 0 s.Seg_cache.lookups;
  check_int "no invalidations counted" 0 s.Seg_cache.invalidations;
  check_int "no entries" 0 s.Seg_cache.entries

(* --- unit: epoch invalidation through the update log --------------- *)

let tid_of log tag =
  match Tag_registry.find (Update_log.registry log) tag with
  | Some t -> t
  | None -> Alcotest.fail ("unknown tag " ^ tag)

let test_epoch_invalidation () =
  let log = Update_log.create () in
  let sid = Update_log.insert log ~gp:0 "<a><b/><b/></a>" in
  let tid = tid_of log "b" in
  let c1 = Update_log.elements_cols log ~tid ~sid in
  check_int "two b elements" 2 (Seg_cache.cols_length c1);
  let c2 = Update_log.elements_cols log ~tid ~sid in
  check_bool "second fetch hits the cached snapshot" true (c1 == c2);
  check_int "one hit" 1 (Seg_cache.stats (Update_log.cache log)).Seg_cache.hits;
  (* An insert elsewhere creates a new segment and leaves sid's cached
     snapshot valid. *)
  let sid2 = Update_log.insert log ~gp:0 "<c/>" in
  check_bool "other inserts don't flush" true
    (Update_log.elements_cols log ~tid ~sid == c1);
  ignore sid2;
  (* Removing one <b/> bumps sid's epoch: the snapshot is stale and
     dropped on the next lookup. *)
  Update_log.remove log ~gp:7 ~len:4;
  let c3 = Update_log.elements_cols log ~tid ~sid in
  check_int "one b left" 1 (Seg_cache.cols_length c3);
  let s = Seg_cache.stats (Update_log.cache log) in
  check_int "stale drop recorded" 1 s.Seg_cache.stale_drops;
  check_bool "invalidations recorded" true (s.Seg_cache.invalidations > 0);
  check_int "hits + misses = lookups" s.Seg_cache.lookups
    (s.Seg_cache.hits + s.Seg_cache.misses);
  (* The fresh snapshot is cached again under the new epoch. *)
  check_bool "refilled" true (Update_log.elements_cols log ~tid ~sid == c3);
  Update_log.check log

let test_clear_is_cold () =
  let log = Update_log.create () in
  let sid = Update_log.insert log ~gp:0 "<a><b/></a>" in
  let tid = tid_of log "b" in
  ignore (Update_log.elements_cols log ~tid ~sid);
  Seg_cache.clear (Update_log.cache log);
  check_int "no entries after clear" 0
    (Seg_cache.stats (Update_log.cache log)).Seg_cache.entries;
  let misses_before = (Seg_cache.stats (Update_log.cache log)).Seg_cache.misses in
  check_int "re-materializes correctly" 1
    (Seg_cache.cols_length (Update_log.elements_cols log ~tid ~sid));
  check_int "cold lookup missed"
    (misses_before + 1)
    (Seg_cache.stats (Update_log.cache log)).Seg_cache.misses

(* --- differential property ----------------------------------------- *)

(* One workload: an insert schedule plus the tag pair to query (same
   shape as test_parallel_join's). *)
let build_edits seed =
  if seed mod 2 = 0 then begin
    let spec =
      {
        Joinmix.segments = 6 + (seed mod 16);
        pairs_per_segment = 1 + (seed mod 4);
        cross_percent = seed * 13 mod 101;
        shape = (if seed mod 4 = 0 then Joinmix.Nested else Joinmix.Balanced);
      }
    in
    let sch = Joinmix.generate spec in
    (sch.Joinmix.edits, sch.Joinmix.anc_tag, sch.Joinmix.desc_tag)
  end
  else begin
    let params =
      { Generator.default_params with tags = [| "a"; "b"; "d" |]; text_chance_pct = 15 }
    in
    let text =
      Generator.generate_text ~params ~seed ~target_elements:(50 + (7 * (seed mod 8))) ()
    in
    let shape = if seed mod 3 = 0 then Chopper.Nested else Chopper.Balanced in
    let edits = Chopper.chop ~text ~segments:(6 + (seed mod 10)) shape in
    (edits, "a", "d")
  end

(* Removes a randomly chosen whole element from every database in
   [dbs] (they hold identical documents, so one extent fits all). *)
let apply_random_removes st dbs n =
  for _ = 1 to n do
    let text = Lazy_db.text (List.hd dbs) in
    if String.length text > 0 then begin
      let nodes = Lxu_xml.Parser.parse_fragment text in
      let extents = ref [] in
      Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
          if e.Lxu_xml.Tree.e_start >= 0 then
            extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
      match !extents with
      | [] -> ()
      | l ->
        let arr = Array.of_list l in
        let s, e_ = arr.(Random.State.int st (Array.length arr)) in
        List.iter (fun db -> Lazy_db.remove db ~gp:s ~len:(e_ - s)) dbs
    end
  done

(* Cached and uncached runs must agree on everything observable:
   global pairs, query stats, raw local-label pairs (emission order
   included) and raw join stats. *)
let compare_dbs ~ctx ~anc ~desc off on =
  List.iter
    (fun (axis, axis_name) ->
      let ctx = Printf.sprintf "%s %s" ctx axis_name in
      let sp, ss = Lazy_db.query off ~axis ~anc ~desc () in
      let pp, ps = Lazy_db.query on ~axis ~anc ~desc () in
      if sp <> pp then Alcotest.failf "%s: global pairs differ" ctx;
      if ss <> ps then Alcotest.failf "%s: query stats differ" ctx)
    [ (Lazy_db.Descendant, "desc"); (Lazy_db.Child, "child") ];
  match (Lazy_db.log off, Lazy_db.log on) with
  | Some l_off, Some l_on ->
    let sp, ss = Lxu_join.Lazy_join.run l_off ~anc ~desc () in
    let pp, ps = Lxu_join.Lazy_join.run l_on ~anc ~desc () in
    if sp <> pp then Alcotest.failf "%s: raw pairs differ" ctx;
    if ss <> ps then Alcotest.failf "%s: raw join stats differ" ctx
  | _ -> ()

let prop_differential =
  QCheck2.Test.make ~name:"cache on/off differential (LD/LS, domains 1/4)" ~count:12
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let edits, anc, desc = build_edits seed in
      List.iter
        (fun (engine, ename) ->
          List.iter
            (fun domains ->
              let ctx = Printf.sprintf "seed %d %s d%d" seed ename domains in
              let st = Random.State.make [| 0xcace; seed; domains |] in
              let off = Lazy_db.create ~engine ~domains ~cache_bytes:0 () in
              let on = Lazy_db.create ~engine ~domains () in
              List.iter
                (fun (gp, frag) ->
                  Lazy_db.insert off ~gp frag;
                  Lazy_db.insert on ~gp frag)
                edits;
              compare_dbs ~ctx ~anc ~desc off on;
              (* Interleave removes with repeated (cache-warm) queries. *)
              apply_random_removes st [ off; on ] (1 + (seed mod 2));
              compare_dbs ~ctx:(ctx ^ " after removes") ~anc ~desc off on;
              compare_dbs ~ctx:(ctx ^ " warm") ~anc ~desc off on;
              (* The disabled twin never counts a lookup; the enabled
                 one must have hit on the repeats. *)
              (match Lazy_db.cache_stats off with
              | Some s when s.Seg_cache.lookups > 0 ->
                Alcotest.failf "%s: disabled cache counted lookups" ctx
              | _ -> ());
              (match Lazy_db.cache_stats on with
              | Some s when s.Seg_cache.lookups > 0 && s.Seg_cache.hits = 0 ->
                Alcotest.failf "%s: no hits after warm repeats" ctx
              | _ -> ());
              (* Packing re-segments the document in place — epochs must
                 keep the cache honest. *)
              let len = Lazy_db.doc_length off in
              if len > 0 then begin
                Lazy_db.pack_subtree off ~gp:0 ~len;
                Lazy_db.pack_subtree on ~gp:0 ~len;
                compare_dbs ~ctx:(ctx ^ " packed") ~anc ~desc off on
              end)
            [ 1; 4 ])
        [ (Lazy_db.LD, "LD"); (Lazy_db.LS, "LS") ];
      true)

(* A tiny budget forces constant eviction churn mid-query; results
   must still be exact. *)
let test_tiny_budget_differential () =
  let edits, anc, desc = build_edits 7 in
  let off = Lazy_db.create ~cache_bytes:0 () in
  let on = Lazy_db.create ~cache_bytes:(2 * Seg_cache.entry_bytes 4) () in
  List.iter
    (fun (gp, frag) ->
      Lazy_db.insert off ~gp frag;
      Lazy_db.insert on ~gp frag)
    edits;
  compare_dbs ~ctx:"tiny budget" ~anc ~desc off on;
  compare_dbs ~ctx:"tiny budget warm" ~anc ~desc off on;
  match Lazy_db.cache_stats on with
  | Some s -> check_bool "budget respected" true (s.Seg_cache.bytes <= s.Seg_cache.max_bytes)
  | None -> Alcotest.fail "lazy engine has a cache"

(* A scratch recycles output chunks between runs, never results:
   scratch-carrying repeats must match a scratch-free run exactly,
   including after an update invalidates cached snapshots mid-stream. *)
let test_scratch_reuse () =
  let edits, anc, desc = build_edits 11 in
  let db = Lazy_db.create () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits;
  match Lazy_db.log db with
  | None -> Alcotest.fail "lazy engine has a log"
  | Some log ->
    let scratch = Lxu_join.Lazy_join.scratch () in
    let check ctx =
      let p0, s0 = Lxu_join.Lazy_join.run log ~anc ~desc () in
      for i = 1 to 3 do
        let p, s = Lxu_join.Lazy_join.run ~scratch log ~anc ~desc () in
        if p <> p0 then Alcotest.failf "%s: scratch run %d pairs differ" ctx i;
        if s <> s0 then Alcotest.failf "%s: scratch run %d stats differ" ctx i
      done
    in
    check "initial";
    Lazy_db.insert db ~gp:0 "<a><d/></a>";
    check "after insert"

let suite =
  [
    Alcotest.test_case "LRU eviction accounting" `Quick test_lru_eviction;
    Alcotest.test_case "scratch reuse is invisible" `Quick test_scratch_reuse;
    Alcotest.test_case "oversize snapshot skipped" `Quick test_oversize_not_cached;
    Alcotest.test_case "replace same key" `Quick test_replace_same_key;
    Alcotest.test_case "disabled cache is free" `Quick test_disabled;
    Alcotest.test_case "epoch invalidation via log" `Quick test_epoch_invalidation;
    Alcotest.test_case "clear starts cold" `Quick test_clear_is_cold;
    Alcotest.test_case "tiny budget still exact" `Quick test_tiny_budget_differential;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_differential ]
