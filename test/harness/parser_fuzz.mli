(** Mutation fuzzing for the XML parser.

    Starts from valid documents (generator output, deep chains, an
    attribute/CDATA/entity-rich hand-built one), applies random byte
    edits, and requires the parser to stay {e total}: every mutant
    must come back [Ok] or [Error (Parse_error …)] — any other
    exception, including [Stack_overflow], is a parser bug.  All
    randomness is seeded, so failures replay. *)

val base_doc : int -> string
(** The [i]-th base document (deterministic; any [i >= 0]). *)

val mutate : Lxu_workload.Rng.t -> string -> string
(** 1–8 random byte edits: overwrites, insertions, deletions, slice
    duplications, and injections of XML metacharacters. *)

val check_batch : seed:int -> rounds:int -> (unit, string) result
(** Runs [rounds] mutate-and-parse rounds from [seed]; [Error msg]
    carries the escaping exception and the offending mutant. *)

val run_corpus : seeds:int list -> rounds:int -> unit
(** {!check_batch} per seed with a progress line each.
    @raise Failure on the first non-total behaviour. *)
