(** The week-in-an-hour maintenance chaos harness.

    Three drivers around {!Lazy_xml.Maintainer}:

    {ul
    {- {!run_churn_crash} interleaves a generated churn schedule with
       maintenance ticks and kills the store (byte-level crash images
       plus injected torn/bit-flipped tails) at {e every}
       maintenance-step boundary — including all three
       checkpoint-truncation windows — asserting each recovery is
       fingerprint-identical to a never-crashed reference at the LSN
       the surviving WAL prefix promises, and that every shipped
       backup restores to exactly the state it was taken at.}
    {- {!run_restore_sweep} proves point-in-time restore complete:
       with checkpoint truncation disabled, {e every} committed prefix
       state is reconstructed with {!Lazy_xml.Lazy_db.restore_to} and
       checked; a final checkpoint then proves the documented bound
       (pre-checkpoint LSNs fail).}
    {- {!run_churn_perf} compresses a week of churn into seconds:
       governed insert/remove bursts with measured count queries,
       either with auto-maintenance after each epoch or manual-only —
       the degradation baseline the bench compares against a freshly
       rebuilt store.}}

    Failures raise [Failure] with the seed and the generated schedule,
    so any report replays exactly. *)

val run_churn_crash : ?maint_every:int -> seed:int -> target_ops:int -> unit -> int
(** Churn + crash-at-every-maintenance-boundary differential; ticks
    the maintainer every [maint_every] (default 3) operations.
    Returns the number of recoveries performed.
    @raise Failure on any divergence. *)

val run_restore_sweep : seed:int -> target_ops:int -> unit -> int
(** Point-in-time restore completeness sweep.  Returns the number of
    prefix states checked.
    @raise Failure on any divergence. *)

type churn_perf = {
  latencies_ms : float array;  (** per-query, in schedule order *)
  queries : int;
  segments_end : int;  (** live segments at end of run *)
  er_depth_end : int;  (** deepest ER chain at end of run *)
  jobs_run : int;  (** maintenance jobs executed *)
  shed : int;  (** maintenance ticks shed by admission *)
}

val p99 : float array -> float
(** 99th percentile (nearest-rank) of a latency sample. *)

val sweep : Lazy_xml.Lazy_db.t -> unit
(** One measured request: the full tag-pair count sweep, long enough
    that a sample is dominated by join work. *)

val run_churn_perf :
  seed:int ->
  epochs:int ->
  maintain:[ `Auto of int | `Manual ] ->
  unit ->
  churn_perf * string * Lazy_xml.Governor.t
(** Runs the compressed churn week against a governed [LD] store and
    returns the in-churn measurements, the final document text (the
    input to {!fresh_store}), and the still-live governor for
    steady-state measurement.  [`Auto k] runs up to [k] maintenance
    jobs through the same governor in each epoch's idle gap;
    [`Manual] never maintains.  Both modes execute the identical
    schedule. *)

val fresh_store : string -> Lazy_xml.Lazy_db.t
(** A freshly rebuilt single-segment store over the final text,
    warmed — the "day one" baseline both churn modes are measured
    against. *)

val fresh_baseline : seed:int -> queries:int -> string -> float array
(** Back-to-back sweep latencies against {!fresh_store}; prefer
    {!measure_interleaved} for cross-store comparisons. *)

val measure_interleaved : rounds:int -> (unit -> unit) list -> float array list
(** Round-robin steady-state measurement: each round times one
    request per thunk, so host weather lands on every store in
    proportion instead of deciding one store's tail.  Returns one
    latency array (ms) per thunk, in order. *)

val run_matrix : seeds:int list -> target_ops:int -> unit
(** {!run_churn_crash} + {!run_restore_sweep} per seed with one
    progress line each — the [@slow] tier entry.
    @raise Failure on the first diverging seed. *)
