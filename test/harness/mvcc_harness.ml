open Lazy_xml
module Rng = Lxu_workload.Rng

type report = {
  reads_checked : int;
  epochs_published : int;
  retired_reclaimed : int;
  elapsed_s : float;
}

let n_readers = 3

(* The oracle: fingerprints of a single-threaded replay after every
   operation prefix.  fps.(k) is the query-visible state a reader
   pinned at epoch k must observe, byte for byte. *)
let oracle ops =
  let reference = Lazy_db.create ~index_attributes:true () in
  let fps = Array.make (List.length ops + 1) "" in
  fps.(0) <- Crash_harness.fingerprint reference;
  List.iteri
    (fun i op ->
      Crash_harness.apply reference op;
      fps.(i + 1) <- Crash_harness.fingerprint reference)
    ops;
  fps

let run_one ~seed ~target_ops ~domains () =
  let started = Lxu_util.Deadline.now () in
  let ops = Crash_harness.gen_ops ~seed ~target_ops in
  let n = List.length ops in
  let fail ~epoch fmt =
    Printf.ksprintf
      (fun msg ->
        failwith
          (Printf.sprintf
             "mvcc seed %d domains %d epoch %d: %s\n  replay: seed=%d target_ops=%d prefix=[%s]"
             seed domains epoch msg seed target_ops
             (Crash_harness.ops_to_string
                (List.filteri (fun i _ -> i < epoch) ops))))
      fmt
  in
  let fps = oracle ops in
  let t = Shared_db.create ~index_attributes:true ~domains () in
  let reads_checked = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader_errors = Array.make n_readers None in
  (* Readers race the mutator: each iteration pins the newest
     published snapshot and proves it byte-identical to the replay
     frozen at that epoch — no torn reads (a mid-transaction state
     would fingerprint as a different prefix), no time-travel (epochs
     must be monotone per reader), and repeatable reads (a pin held
     across two fingerprints sees the same bytes even while the
     mutator streams on). *)
  let reader r =
    Domain.spawn (fun () ->
        try
          let rng = Rng.create ((seed * 97) + r) in
          let last_epoch = ref (-1) in
          let iteration () =
            let s = Shared_db.begin_snapshot t in
            Fun.protect
              ~finally:(fun () -> Shared_db.end_snapshot s)
              (fun () ->
                let e = Shared_db.snapshot_epoch s in
                let db = Shared_db.snapshot_db s in
                if e < !last_epoch then
                  fail ~epoch:e "time-travel: reader %d pinned %d after %d" r e !last_epoch;
                last_epoch := e;
                if e < 0 || e > n then fail ~epoch:e "pinned epoch outside schedule (0..%d)" n;
                if not (Lazy_db.is_snapshot db) then fail ~epoch:e "pinned database not frozen";
                let fp = Crash_harness.fingerprint db in
                if fp <> fps.(e) then
                  fail ~epoch:e "isolation violated\n  expected %S\n  got      %S" fps.(e) fp;
                (* Repeatable read under the same pin. *)
                if Rng.int rng 4 = 0 then begin
                  let fp' = Crash_harness.fingerprint db in
                  if fp' <> fp then
                    fail ~epoch:e "pinned snapshot changed under a held pin\n  first %S\n  then  %S"
                      fp fp'
                end;
                (* Snapshots are read-only. *)
                if Rng.int rng 8 = 0 then begin
                  match Lazy_db.insert db ~gp:0 "<a/>" with
                  | () -> fail ~epoch:e "snapshot accepted an insert"
                  | exception Invalid_argument _ -> ()
                end;
                Atomic.incr reads_checked)
          in
          while not (Atomic.get stop) do
            iteration ()
          done;
          (* One more look after the mutator finished, so every reader
             also verifies the final epoch. *)
          iteration ()
        with exn -> reader_errors.(r) <- Some exn)
  in
  let readers = Array.init n_readers reader in
  (* The mutator (this domain) is writer and packer in one seeded
     schedule: [gen_ops] mixes inserts, removes, subtree packs and
     rebuilds.  Ops are committed in groups of 1–3 under one
     [Shared_db.write] hold, so readers must never pin the epochs
     inside a group — only its boundary. *)
  let rng = Rng.create ((seed * 31) + domains) in
  let remaining = ref ops in
  let applied = ref 0 in
  while !remaining <> [] do
    let g = 1 + Rng.int rng 3 in
    let group, rest =
      let rec take k = function
        | x :: tl when k > 0 ->
          let taken, rest = take (k - 1) tl in
          (x :: taken, rest)
        | l -> ([], l)
      in
      take g !remaining
    in
    remaining := rest;
    Shared_db.write t (fun db -> List.iter (Crash_harness.apply db) group);
    applied := !applied + List.length group;
    let e = Shared_db.current_epoch t in
    if e <> !applied then
      fail ~epoch:!applied "published epoch %d after %d committed ops" e !applied;
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  Array.iter (function Some exn -> raise exn | None -> ()) reader_errors;
  (* Quiescence: with every pin dropped, exactly the current version
     remains, and the shared cache holds no retired column snapshots
     (the reclamation floor has passed them all) within its budget. *)
  (match Shared_db.mvcc_stats t with
  | None -> fail ~epoch:n "no mvcc stats for a lazy engine"
  | Some s ->
    if s.Shared_db.pinned <> 0 then fail ~epoch:n "%d pins leaked" s.Shared_db.pinned;
    if s.Shared_db.versions <> 1 then
      fail ~epoch:n "%d versions retained at quiescence" s.Shared_db.versions;
    if s.Shared_db.published_epoch <> n then
      fail ~epoch:n "final published epoch %d, expected %d" s.Shared_db.published_epoch n);
  let cs =
    match Shared_db.read t Lazy_db.cache_stats with
    | Some cs -> cs
    | None -> fail ~epoch:n "no cache stats for a lazy engine"
  in
  if cs.Lxu_seglog.Seg_cache.retired_entries <> 0 then
    fail ~epoch:n "%d retired cache versions leaked past the floor"
      cs.Lxu_seglog.Seg_cache.retired_entries;
  if cs.Lxu_seglog.Seg_cache.bytes > cs.Lxu_seglog.Seg_cache.max_bytes then
    fail ~epoch:n "cache holds %d bytes over its %d budget" cs.Lxu_seglog.Seg_cache.bytes
      cs.Lxu_seglog.Seg_cache.max_bytes;
  let final = Shared_db.read t (fun db -> Crash_harness.fingerprint db) in
  if final <> fps.(n) then
    fail ~epoch:n "final state diverges from the full replay\n  expected %S\n  got      %S" fps.(n)
      final;
  Shared_db.read t Lazy_db.check;
  {
    reads_checked = Atomic.get reads_checked;
    epochs_published = n;
    retired_reclaimed = cs.Lxu_seglog.Seg_cache.reclaimed;
    elapsed_s = Lxu_util.Deadline.now () -. started;
  }

let run_matrix ~seeds ~target_ops ~domains =
  List.iter
    (fun d ->
      List.iter
        (fun seed ->
          let r = run_one ~seed ~target_ops ~domains:d () in
          Printf.printf
            "mvcc domains=%d seed %d: %d reads checked over %d epochs (%d retired reclaimed) in \
             %.2fs\n\
             %!"
            d seed r.reads_checked r.epochs_published r.retired_reclaimed r.elapsed_s)
        seeds)
    domains
