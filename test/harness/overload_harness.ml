open Lazy_xml
module Rng = Lxu_workload.Rng
module Wal = Lxu_storage.Wal
module Deadline = Lxu_util.Deadline

type report = {
  ok : int;
  overloaded : int;
  timed_out : int;
  cancelled : int;
  max_cancel_latency_s : float;
  elapsed_s : float;
}

(* Per-client attempt tallies.  Each client owns its record (one
   domain each), so plain mutation is race-free; the coordinator reads
   them only after joining. *)
type tally = {
  mutable t_ok : int;
  mutable t_overl : int;
  mutable t_timeo : int;
  mutable t_canc : int;
}

let tally () = { t_ok = 0; t_overl = 0; t_timeo = 0; t_canc = 0 }

let note t = function
  | Ok _ -> t.t_ok <- t.t_ok + 1
  | Error (Governor.Overloaded _) -> t.t_overl <- t.t_overl + 1
  | Error (Governor.Timed_out _) -> t.t_timeo <- t.t_timeo + 1
  | Error (Governor.Cancelled _) -> t.t_canc <- t.t_canc + 1

(* Query-visible state, STD-safe: the STD engine keeps labels only
   (no text), so its fingerprint is counts plus the all-pairs output
   of every vocabulary join — the same equality the crash harness
   uses, minus the materialized text. *)
let fingerprint ~engine db =
  let buf = Buffer.create 512 in
  (match engine with
  | Lazy_db.STD -> Buffer.add_string buf (Printf.sprintf "len=%d" (Lazy_db.doc_length db))
  | Lazy_db.LD | Lazy_db.LS -> Buffer.add_string buf (Lazy_db.text db));
  Buffer.add_string buf (Printf.sprintf "|elems=%d" (Lazy_db.element_count db));
  let descs = Array.to_list Crash_harness.vocabulary @ [ "@k" ] in
  Array.iter
    (fun anc ->
      List.iter
        (fun desc ->
          List.iter
            (fun axis ->
              let pairs, _ = Lazy_db.query db ~axis ~anc ~desc () in
              Buffer.add_string buf (Printf.sprintf "|%s/%s:" anc desc);
              List.iter (fun (a, d) -> Buffer.add_string buf (Printf.sprintf "%d-%d," a d)) pairs)
            [ Lazy_db.Descendant; Lazy_db.Child ])
        descs)
    Crash_harness.vocabulary;
  Buffer.contents buf

let n_victims = 2
let n_readers = 3
let n_writers = 3
let reader_iters = 24
let writer_iters = 16

let run_one ~engine ~domains ~seed () =
  let setup = Crash_harness.gen_ops ~seed ~target_ops:30 in
  (* Updates that actually applied, appended under the writer lock —
     so list order is the writers' serialization order. *)
  let applied = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        failwith
          (Printf.sprintf "overload seed %d engine %s domains %d: %s\n  replay: schedule=[%s]"
             seed
             (match engine with Lazy_db.LD -> "LD" | Lazy_db.LS -> "LS" | Lazy_db.STD -> "STD")
             domains msg
             (Crash_harness.ops_to_string (setup @ List.rev !applied))))
      fmt
  in
  let started = Deadline.now () in
  (* Tight bounds on purpose: the harness must provoke shedding, not
     avoid it. *)
  let config =
    { Governor.max_readers = n_victims + 1; max_writer_queue = 2; default_deadline_s = None }
  in
  let gov = Governor.create ~config ~engine ~index_attributes:true ~domains () in
  (* Preload through the raw Shared_db, outside governor accounting. *)
  List.iter (fun op -> Shared_db.write (Governor.shared gov) (fun db -> Crash_harness.apply db op))
    setup;
  (* --- parked readers: admitted, then spin on the guard until the
     coordinator fires their token ------------------------------------ *)
  let tokens = Array.init n_victims (fun _ -> Deadline.Cancel.create ()) in
  let parked = Atomic.make 0 in
  let victim_tallies = Array.init n_victims (fun _ -> tally ()) in
  let victim_results = Array.make n_victims None in
  let victims =
    Array.init n_victims (fun i ->
        Domain.spawn (fun () ->
            let t = victim_tallies.(i) in
            (* Retry admission (tallying each shed attempt) so the
               parked phase survives transient slot contention. *)
            let rec admit () =
              let r =
                Governor.read gov ~cancel:tokens.(i) (fun guard _db ->
                    Atomic.incr parked;
                    while true do
                      Deadline.check_opt guard
                    done)
              in
              note t r;
              match r with
              | Error (Governor.Overloaded _) ->
                Unix.sleepf 0.001;
                admit ()
              | other -> other
            in
            victim_results.(i) <- Some (admit (), Deadline.now ())))
  in
  let wait_deadline = Deadline.after 30. in
  while Atomic.get parked < n_victims && not (Deadline.expired wait_deadline) do
    Domain.cpu_relax ()
  done;
  if Atomic.get parked < n_victims then fail "parked readers failed to start within 30s";
  (* --- pressure clients --------------------------------------------- *)
  let reader_tallies = Array.init n_readers (fun _ -> tally ()) in
  let readers =
    Array.init n_readers (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create ((seed * 31) + i) in
            let t = reader_tallies.(i) in
            for _ = 1 to reader_iters do
              let anc = Rng.pick rng Crash_harness.vocabulary in
              let desc = Rng.pick rng Crash_harness.vocabulary in
              match Rng.int rng 3 with
              | 0 ->
                (* A read that would run forever: only its 2ms
                   deadline (or the 250ms backstop, if guards ever
                   regressed) stops it. *)
                note t
                  (Governor.read gov ~deadline_s:0.002 (fun guard db ->
                       let backstop = Deadline.now () +. 0.25 in
                       let rec spin () =
                         Deadline.check_opt guard;
                         ignore (Lazy_db.count db ~anc ~desc ());
                         if Deadline.now () < backstop then spin ()
                       in
                       spin ()))
              | 1 -> note t (Governor.count gov ~deadline_s:0.5 ~anc ~desc ())
              | _ ->
                note t (Governor.path_count gov ~deadline_s:0.5 (Printf.sprintf "//%s//%s" anc desc))
            done))
  in
  let writer_tallies = Array.init n_writers (fun _ -> tally ()) in
  let writers =
    Array.init n_writers (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create ((seed * 173) + i) in
            let t = writer_tallies.(i) in
            for _ = 1 to writer_iters do
              (* The op is generated under the write lock, against the
                 state it will apply to — every op valid by
                 construction even under concurrent writers. *)
              let attempt () =
                let r =
                  Governor.write gov (fun _guard db ->
                      let roll = Rng.int rng 100 in
                      let op =
                        if engine <> Lazy_db.STD && roll < 30 && Lazy_db.doc_length db > 0 then begin
                          match Crash_harness.element_extents (Lazy_db.text db) with
                          | [] -> Wal.Insert { gp = 0; text = Rng.pick rng Crash_harness.fragments }
                          | extents ->
                            let s, e = List.nth extents (Rng.int rng (List.length extents)) in
                            Wal.Remove { gp = s; len = e - s }
                        end
                        else
                          let gp = if Rng.bool rng then 0 else Lazy_db.doc_length db in
                          Wal.Insert { gp; text = Rng.pick rng Crash_harness.fragments }
                      in
                      Crash_harness.apply db op;
                      applied := op :: !applied)
                in
                note t r;
                r
              in
              if Rng.bool rng then
                ignore (Governor.retry ~attempts:4 ~base_ms:0.2 ~max_ms:2. ~rng attempt)
              else ignore (attempt ())
            done))
  in
  (* Let the pressure run against the parked readers, then fire the
     tokens mid-flight. *)
  Unix.sleepf 0.03;
  let fired = Array.map (fun tok -> let t = Deadline.now () in Deadline.Cancel.cancel ~reason:"chaos" tok; t) tokens in
  Array.iter Domain.join victims;
  Array.iter Domain.join readers;
  Array.iter Domain.join writers;
  (* --- mixed read/write phase ---------------------------------------- *)
  (* One writer streams [insert_many] batches while readers keep
     querying and — under the lazy engines — parked pins hold their
     epochs across the whole stream.  Readers must never observe a
     [Dirty_tag_list]: every snapshot they pin is query-ready by
     construction. *)
  let shared = Governor.shared gov in
  let pins =
    if engine = Lazy_db.STD then [||]
    else
      Array.init 2 (fun _ ->
          let s = Shared_db.begin_snapshot shared in
          (s, Shared_db.snapshot_epoch s, fingerprint ~engine (Shared_db.snapshot_db s)))
  in
  let mixed_writer_tally = tally () in
  let mixed_reader_tallies = Array.init n_readers (fun _ -> tally ()) in
  let dirty_seen = Atomic.make 0 in
  let mixed_stop = Atomic.make false in
  let mixed_readers =
    Array.init n_readers (fun i ->
        Domain.spawn (fun () ->
            let rng = Rng.create ((seed * 613) + i) in
            let t = mixed_reader_tallies.(i) in
            while not (Atomic.get mixed_stop) do
              let anc = Rng.pick rng Crash_harness.vocabulary in
              let desc = Rng.pick rng Crash_harness.vocabulary in
              (try
                 if Rng.bool rng then note t (Governor.count gov ~deadline_s:0.5 ~anc ~desc ())
                 else
                   note t
                     (Governor.path_count gov ~deadline_s:0.5
                        (Printf.sprintf "//%s//%s" anc desc))
               with Lxu_seglog.Tag_list.Dirty_tag_list _ -> Atomic.incr dirty_seen)
            done))
  in
  let mixed_batches = 6 in
  let mixed_batch_len = 8 in
  let mixed_rng = Rng.create (seed * 1201) in
  for _ = 1 to mixed_batches do
    (* All-at-gp-0 batches are valid by construction no matter what
       already applied. *)
    let batch =
      List.init mixed_batch_len (fun _ -> (0, Rng.pick mixed_rng Crash_harness.fragments))
    in
    let attempt () =
      let r = Governor.insert_many gov batch in
      note mixed_writer_tally r;
      (match r with
      | Ok () ->
        List.iter (fun (gp, text) -> applied := Wal.Insert { gp; text } :: !applied) batch
      | Error _ -> ());
      r
    in
    ignore (Governor.retry ~attempts:4 ~base_ms:0.2 ~max_ms:2. ~rng:mixed_rng attempt)
  done;
  Atomic.set mixed_stop true;
  Array.iter Domain.join mixed_readers;
  if Atomic.get dirty_seen > 0 then
    fail "%d reads observed Dirty_tag_list during the insert_many stream" (Atomic.get dirty_seen);
  (* The parked pins held their epoch — and their bytes — across the
     whole write stream. *)
  Array.iter
    (fun (s, epoch0, fp0) ->
      if Shared_db.snapshot_epoch s <> epoch0 then
        fail "parked pin moved from epoch %d to %d" epoch0 (Shared_db.snapshot_epoch s);
      let fp = fingerprint ~engine (Shared_db.snapshot_db s) in
      if fp <> fp0 then
        fail "parked pin at epoch %d changed under the insert_many stream\n  was %S\n  now %S"
          epoch0 fp0 fp;
      Shared_db.end_snapshot s)
    pins;
  (* --- assertions ---------------------------------------------------- *)
  let max_cancel_latency_s = ref 0. in
  Array.iteri
    (fun i result ->
      match result with
      | None -> fail "parked reader %d never returned a result" i
      | Some (Error (Governor.Cancelled "chaos"), returned) ->
        max_cancel_latency_s := Float.max !max_cancel_latency_s (returned -. fired.(i))
      | Some (Error r, _) ->
        fail "parked reader %d: expected Cancelled \"chaos\", got %s" i
          (Governor.rejection_to_string r)
      | Some (Ok (), _) -> fail "parked reader %d returned Ok despite the fired token" i)
    victim_results;
  if !max_cancel_latency_s > 5. then
    fail "cancellation took %.3fs to be observed" !max_cancel_latency_s;
  let tallies =
    Array.concat
      [ victim_tallies; reader_tallies; writer_tallies; [| mixed_writer_tally |];
        mixed_reader_tallies ]
    |> Array.fold_left
         (fun (ok, ov, ti, ca) t -> (ok + t.t_ok, ov + t.t_overl, ti + t.t_timeo, ca + t.t_canc))
         (0, 0, 0, 0)
  in
  let ok, overloaded, timed_out, cancelled = tallies in
  let s = Governor.stats gov in
  if s.Governor.completed_reads + s.Governor.completed_writes <> ok then
    fail "governor completed %d ops, clients saw %d Ok"
      (s.Governor.completed_reads + s.Governor.completed_writes)
      ok;
  if s.Governor.rejected_overload <> overloaded then
    fail "governor shed %d Overloaded, clients saw %d" s.Governor.rejected_overload overloaded;
  if s.Governor.rejected_timeout <> timed_out then
    fail "governor shed %d Timed_out, clients saw %d" s.Governor.rejected_timeout timed_out;
  if s.Governor.rejected_cancel <> cancelled then
    fail "governor shed %d Cancelled, clients saw %d" s.Governor.rejected_cancel cancelled;
  if timed_out = 0 then fail "deadline pressure produced no Timed_out rejection";
  if cancelled < n_victims then fail "only %d Cancelled rejections for %d victims" cancelled n_victims;
  (* Torn-state differential: replay exactly the updates that
     reported success onto an unpressured database. *)
  let final = Shared_db.read (Governor.shared gov) (fun db -> fingerprint ~engine db) in
  let reference = Lazy_db.create ~engine ~index_attributes:true () in
  List.iter (Crash_harness.apply reference) setup;
  List.iter (Crash_harness.apply reference) (List.rev !applied);
  let expected = fingerprint ~engine reference in
  if final <> expected then
    fail "post-pressure state diverges from the unpressured replay\n  expected %S\n  got      %S"
      expected final;
  {
    ok;
    overloaded;
    timed_out;
    cancelled;
    max_cancel_latency_s = !max_cancel_latency_s;
    elapsed_s = Deadline.now () -. started;
  }

let run_matrix ~engines ~domains ~seeds =
  List.iter
    (fun engine ->
      List.iter
        (fun d ->
          List.iter
            (fun seed ->
              let r = run_one ~engine ~domains:d ~seed () in
              Printf.printf
                "overload %s domains=%d seed %d: ok=%d shed(overload=%d timeout=%d cancel=%d) \
                 cancel_latency=%.4fs in %.2fs\n\
                 %!"
                (match engine with Lazy_db.LD -> "LD" | Lazy_db.LS -> "LS" | Lazy_db.STD -> "STD")
                d seed r.ok r.overloaded r.timed_out r.cancelled r.max_cancel_latency_s r.elapsed_s)
            seeds)
        domains)
    engines
