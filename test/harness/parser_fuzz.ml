module Rng = Lxu_workload.Rng
module Generator = Lxu_workload.Generator
module Parser = Lxu_xml.Parser

(* Feature-rich by hand: attributes with both quote styles, every
   entity form, CDATA, comments, PIs — branches random generation
   rarely composes. *)
let handmade =
  "<?xml-ish pi?><!--c--><a id=\"1\" q='&quot;x&quot;'><b>&amp;&#65;&#x41;</b>\
   <![CDATA[<raw>&]]><c/>tail</a>"

let base_doc i =
  match i mod 4 with
  | 0 -> Generator.generate_text ~seed:(i + 1) ~target_elements:120 ()
  | 1 -> Generator.deep_chain ~tags:[| "a"; "b"; "c" |] ~depth:400 ~payload:"x"
  | 2 -> handmade
  | _ -> Generator.generate_with_spine_text ~seed:(i + 1) ~target_elements:150 ~spine_depth:60 ()

let metachars = [| "<"; ">"; "/>"; "</"; "&"; "&#"; "]]>"; "<!--"; "\""; "'"; "=" |]

let mutate rng doc =
  let buf = Buffer.create (String.length doc + 16) in
  Buffer.add_string buf doc;
  let edits = 1 + Rng.int rng 8 in
  for _ = 1 to edits do
    let s = Buffer.contents buf in
    let n = String.length s in
    if n = 0 then Buffer.add_string buf (Rng.pick rng metachars)
    else begin
      Buffer.clear buf;
      let at = Rng.int rng (n + 1) in
      match Rng.int rng 5 with
      | 0 when at < n ->
        (* overwrite one byte with arbitrary noise *)
        Buffer.add_string buf (String.sub s 0 at);
        Buffer.add_char buf (Char.chr (Rng.int rng 256));
        Buffer.add_string buf (String.sub s (at + 1) (n - at - 1))
      | 1 ->
        Buffer.add_string buf (String.sub s 0 at);
        Buffer.add_char buf (Char.chr (Rng.int rng 256));
        Buffer.add_string buf (String.sub s at (n - at))
      | 2 when at < n ->
        (* delete *)
        Buffer.add_string buf (String.sub s 0 at);
        Buffer.add_string buf (String.sub s (at + 1) (n - at - 1))
      | 3 ->
        (* duplicate a slice: breeds unbalanced tags and split tokens *)
        let len = Rng.int rng (min 32 (n - at + 1)) in
        Buffer.add_string buf (String.sub s 0 at);
        Buffer.add_string buf (String.sub s at (min len (n - at)));
        Buffer.add_string buf (String.sub s at (n - at))
      | _ ->
        Buffer.add_string buf (String.sub s 0 at);
        Buffer.add_string buf (Rng.pick rng metachars);
        Buffer.add_string buf (String.sub s at (n - at))
    end
  done;
  Buffer.contents buf

let preview s =
  let s = if String.length s <= 120 then s else String.sub s 0 120 ^ "..." in
  String.escaped s

let check_batch ~seed ~rounds =
  let rng = Rng.create seed in
  let result = ref (Ok ()) in
  (try
     for round = 1 to rounds do
       let doc = base_doc (Rng.int rng 16) in
       let mutant = mutate rng doc in
       match Parser.parse_fragment_result mutant with
       | Ok _ | Error _ -> ()
       | exception e ->
         result :=
           Error
             (Printf.sprintf "seed %d round %d: parser raised %s on %S" seed round
                (Printexc.to_string e) (preview mutant));
         raise Exit
     done
   with Exit -> ());
  !result

let run_corpus ~seeds ~rounds =
  List.iter
    (fun seed ->
      match check_batch ~seed ~rounds with
      | Ok () -> Printf.printf "parser fuzz seed %d: %d mutants total\n%!" seed rounds
      | Error msg -> failwith ("parser fuzz: " ^ msg))
    seeds
