open Lazy_xml
module Rng = Lxu_workload.Rng
module Wal = Lxu_storage.Wal
module Sim_file = Lxu_storage.Sim_file
module Recovery = Lxu_storage.Recovery

let vocabulary = [| "a"; "b"; "c"; "d" |]

let fragments =
  [|
    "<a/>";
    "<b>t</b>";
    "<c><a/><b/></c>";
    "<d k=\"v\"><b/></d>";
    "<a><d k=\"w\">x</d></a>";
  |]

let string_insert s ~gp frag =
  String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)

let element_extents text =
  if text = "" then []
  else begin
    let nodes = Lxu_xml.Parser.parse_fragment text in
    let extents = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
        if e.Lxu_xml.Tree.e_start >= 0 then
          extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
    List.rev !extents
  end

(* Operations are generated against a text mirror so every one is
   valid by construction: the recovery differential must test crash
   handling, not update validation. *)
let gen_ops ~seed ~target_ops =
  let rng = Rng.create seed in
  let text = ref "" in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  for _ = 1 to target_ops do
    let roll = Rng.int rng 100 in
    if !text = "" || roll < 55 then begin
      let frag = Rng.pick rng fragments in
      let points = ref [] in
      for gp = 0 to String.length !text do
        if Lxu_xml.Parser.is_well_formed_fragment (string_insert !text ~gp frag) then
          points := gp :: !points
      done;
      match !points with
      | [] -> ()
      | ps ->
        let gp = List.nth ps (Rng.int rng (List.length ps)) in
        emit (Wal.Insert { gp; text = frag });
        text := string_insert !text ~gp frag
    end
    else begin
      match element_extents !text with
      | [] -> ()
      | extents ->
        let s, e = List.nth extents (Rng.int rng (List.length extents)) in
        if roll < 80 then begin
          emit (Wal.Remove { gp = s; len = e - s });
          text := String.sub !text 0 s ^ String.sub !text e (String.length !text - e)
        end
        else if roll < 93 then emit (Wal.Pack { gp = s; len = e - s })
        else emit Wal.Rebuild
    end
  done;
  List.rev !ops

let apply db = function
  | Wal.Insert { gp; text } -> Lazy_db.insert db ~gp text
  | Wal.Remove { gp; len } -> Lazy_db.remove db ~gp ~len
  | Wal.Pack { gp; len } -> Lazy_db.pack_subtree db ~gp ~len
  | Wal.Rebuild -> Lazy_db.rebuild db

let op_to_string = function
  | Wal.Insert { gp; text } -> Printf.sprintf "insert gp=%d %S" gp text
  | Wal.Remove { gp; len } -> Printf.sprintf "remove gp=%d len=%d" gp len
  | Wal.Pack { gp; len } -> Printf.sprintf "pack gp=%d len=%d" gp len
  | Wal.Rebuild -> "rebuild"

let ops_to_string ops = String.concat "; " (List.map op_to_string ops)

let fingerprint db =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Lazy_db.text db);
  Buffer.add_string buf (Printf.sprintf "|elems=%d|segs=%d" (Lazy_db.element_count db)
                           (Lazy_db.segment_count db));
  let descs = Array.to_list vocabulary @ [ "@k"; "@w" ] in
  Array.iter
    (fun anc ->
      List.iter
        (fun desc ->
          List.iter
            (fun axis ->
              let pairs, _ = Lazy_db.query db ~axis ~anc ~desc () in
              Buffer.add_string buf (Printf.sprintf "|%s/%s:" anc desc);
              List.iter (fun (a, d) -> Buffer.add_string buf (Printf.sprintf "%d-%d," a d)) pairs)
            [ Lazy_db.Descendant; Lazy_db.Child ])
        descs)
    vocabulary;
  Buffer.contents buf

(* --- filesystem helpers ---------------------------------------------- *)

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lazyxml_crash_%d_%s_%d" (Unix.getpid ()) tag !counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let copy_file src dst = write_file dst (read_file src)

(* --- the differential ------------------------------------------------- *)

let check ~ctx expected db =
  let got = fingerprint db in
  if got <> expected then
    failwith
      (Printf.sprintf "%s: recovered state diverges\n  expected %S\n  got      %S" ctx expected got)

(* Recovers the crashed image [wal_prefix] (with [snapshot] when the
   workload checkpointed) through the real directory path, and
   returns the database plus report. *)
let recover_image ~tag ~snapshot ~wal_prefix =
  let dir = fresh_dir tag in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (match snapshot with
      | Some src -> copy_file src (Lxu_storage.Wal_store.snapshot_path dir)
      | None -> ());
      write_file (Lxu_storage.Wal_store.wal_path dir) wal_prefix;
      let db, report = Lazy_db.recover dir in
      Lazy_db.close db;
      (db, report))

let run_one_inner ?checkpoint_at ~seed ~ops () =
  let n = List.length ops in
  let checkpoint_at =
    match checkpoint_at with Some k when k >= n -> None | other -> other
  in
  let dir = fresh_dir "wal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let durable = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      let reference = Lazy_db.create ~index_attributes:true () in
      (* fps.(i) = fingerprint after the first i operations. *)
      let fps = Array.make (n + 1) "" in
      fps.(0) <- fingerprint reference;
      List.iteri
        (fun i op ->
          apply durable op;
          (match checkpoint_at with
          | Some k when k = i + 1 -> Lazy_db.checkpoint durable
          | _ -> ());
          apply reference op;
          fps.(i + 1) <- fingerprint reference)
        ops;
      Lazy_db.close durable;
      let wal_bytes = read_file (Lxu_storage.Wal_store.wal_path dir) in
      let snapshot =
        match checkpoint_at with
        | Some _ -> Some (Lxu_storage.Wal_store.snapshot_path dir)
        | None -> None
      in
      let base = match checkpoint_at with Some k -> k | None -> 0 in
      let scan = Wal.scan wal_bytes in
      (match scan.Wal.corruption with
      | Some why -> failwith (Printf.sprintf "seed %d: clean WAL scans dirty: %s" seed why)
      | None -> ());
      let records = Array.of_list scan.Wal.records in
      if Array.length records <> n - base then
        failwith
          (Printf.sprintf "seed %d: %d WAL records for %d post-checkpoint ops" seed
             (Array.length records) (n - base));
      let recoveries = ref 0 in
      let boundary_off j = if j = 0 then Wal.header_bytes else records.(j - 1).Wal.end_off in
      (* Crash at every record boundary: after the header, and after
         each record. *)
      for j = 0 to Array.length records do
        let prefix = String.sub wal_bytes 0 (boundary_off j) in
        let ctx = Printf.sprintf "seed %d boundary %d/%d" seed j (Array.length records) in
        incr recoveries;
        match snapshot with
        | None ->
          let log, report = Recovery.recover_bytes prefix in
          if report.Recovery.corruption <> None then
            failwith (ctx ^ ": clean prefix reported corrupt");
          if report.Recovery.records_applied <> j then
            failwith
              (Printf.sprintf "%s: applied %d of %d records" ctx report.Recovery.records_applied j);
          check ~ctx fps.(base + j) (Lazy_db.of_log log)
        | Some _ ->
          let db, report = recover_image ~tag:"boundary" ~snapshot ~wal_prefix:prefix in
          if report.Recovery.records_applied <> j then
            failwith
              (Printf.sprintf "%s: applied %d of %d records" ctx report.Recovery.records_applied j);
          check ~ctx fps.(base + j) db
      done;
      (* Torn / corrupt / duplicated tails: the damaged last record
         must cost exactly itself. *)
      if Array.length records > 0 then begin
        let last = Array.length records - 1 in
        let tail_start = boundary_off last in
        let head = String.sub wal_bytes 0 tail_start in
        let tail = String.sub wal_bytes tail_start (String.length wal_bytes - tail_start) in
        let rng = Rng.create (seed * 7919) in
        for t = 1 to 3 do
          let fault = Sim_file.random_fault rng ~len:(String.length tail) in
          let corrupted = head ^ Sim_file.apply_fault tail fault in
          let expect_applied =
            match fault with Sim_file.Duplicate_tail _ -> last + 1 | _ -> last
          in
          let ctx = Printf.sprintf "seed %d fault %d" seed t in
          incr recoveries;
          let applied =
            match snapshot with
            | None ->
              let log, report = Recovery.recover_bytes corrupted in
              check ~ctx fps.(base + report.Recovery.records_applied) (Lazy_db.of_log log);
              report.Recovery.records_applied
            | Some _ ->
              let db, report = recover_image ~tag:"fault" ~snapshot ~wal_prefix:corrupted in
              check ~ctx fps.(base + report.Recovery.records_applied) db;
              report.Recovery.records_applied
          in
          if applied <> expect_applied then
            failwith
              (Printf.sprintf "%s: recovered to record %d, expected %d (fault %s)" ctx applied
                 expect_applied
                 (match fault with
                 | Sim_file.Truncate_tail k -> Printf.sprintf "truncate %d" k
                 | Sim_file.Bit_flip k -> Printf.sprintf "bitflip %d" k
                 | Sim_file.Duplicate_tail k -> Printf.sprintf "dup %d" k))
        done
      end;
      !recoveries)

let run_one ?checkpoint_at ~seed ~target_ops () =
  let ops = gen_ops ~seed ~target_ops in
  (* Any divergence reports the exact schedule: the seed regenerates
     it, and the printed prefix replays even without the generator. *)
  try run_one_inner ?checkpoint_at ~seed ~ops ()
  with Failure msg ->
    failwith
      (Printf.sprintf "%s\n  replay: seed=%d target_ops=%d schedule=[%s]" msg seed target_ops
         (ops_to_string ops))

let run_matrix ~seeds ~target_ops =
  List.iter
    (fun seed ->
      let checkpoint_at = if seed mod 3 = 0 then Some (target_ops / 2) else None in
      let recoveries = run_one ?checkpoint_at ~seed ~target_ops () in
      Printf.printf "crash matrix seed %d: %d recoveries ok%s\n%!" seed recoveries
        (match checkpoint_at with Some k -> Printf.sprintf " (checkpoint at %d)" k | None -> ""))
    seeds
