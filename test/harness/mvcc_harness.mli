(** The snapshot-isolation differential harness.

    A seeded schedule of valid updates (the crash harness's generator:
    inserts, removes, subtree packs, rebuilds) is first replayed
    single-threaded to record the oracle — the full query fingerprint
    after {e every} operation prefix.  Then one mutator domain streams
    the schedule into a {!Lazy_xml.Shared_db} in write groups of 1–3
    operations while reader domains race it: each read pins the newest
    published snapshot and must observe {e exactly} the oracle
    fingerprint of its pinned epoch.

    What that proves, per read:
    {ul
    {- {b isolation}: the fingerprint equals the single-threaded
       replay frozen at the pinned epoch — a torn read would
       fingerprint as no prefix at all, a half-published group as an
       interior epoch readers must never pin;}
    {- {b no time-travel}: pinned epochs are monotone per reader;}
    {- {b repeatable reads}: a pin held across two fingerprints sees
       identical bytes while the mutator streams on;}
    {- {b read-only snapshots}: updates on a pinned snapshot raise.}}

    And at quiescence: exactly one retained version, zero pins, zero
    retired cache versions past the reclamation floor, cache bytes
    within budget, and the live state byte-identical to the full
    replay.

    Failures raise [Failure] with the seed, domain count, pinned
    epoch, and the schedule prefix up to that epoch — enough to replay
    the divergence deterministically. *)

type report = {
  reads_checked : int;  (** reader iterations that verified a pinned epoch *)
  epochs_published : int;  (** total committed operations *)
  retired_reclaimed : int;  (** retired cache versions swept during the run *)
  elapsed_s : float;
}

val run_one : seed:int -> target_ops:int -> domains:int -> unit -> report
(** One schedule against 3 racing reader domains; [domains] is the
    query parallelism inside each pinned read ({!Lazy_xml.Lazy_db}'s
    domain fan-out), giving the 1/4 matrix axis.
    @raise Failure on any isolation violation. *)

val run_matrix : seeds:int list -> target_ops:int -> domains:int list -> unit
(** {!run_one} over the full [domains × seeds] grid, one progress line
    each. @raise Failure on the first violation. *)
