(** The crash–recover differential harness.

    A workload is a random schedule of valid update operations
    (inserts of well-formed fragments at legal split points, removes
    and packs of whole elements, occasional rebuilds), deterministic
    in its seed.  {!run_one} applies it to a durable database, then
    simulates a crash at {e every} WAL record boundary: each prefix
    is recovered and its query-visible state (document text, element
    and segment counts, and the full all-pairs output of every
    vocabulary join) must be byte-identical to a never-crashed
    reference database that applied the same operation prefix.  On
    top of the boundary sweep it injects torn, bit-flipped and
    duplicated tails and checks recovery lands exactly on the last
    valid LSN instead of erroring out.

    Failures raise [Failure] with the seed, the boundary, and the
    generated schedule prefix ({!ops_to_string}), so any reported
    failure replays exactly — with or without the generator. *)

val vocabulary : string array
(** Element tags the generated fragments draw from. *)

val fragments : string array
(** Well-formed fragments the schedules insert. *)

val element_extents : string -> (int * int) list
(** [(start, stop)] byte extents of every element in a well-formed
    forest — the legal removal targets. *)

val gen_ops : seed:int -> target_ops:int -> Lxu_storage.Wal.op list
(** A valid random schedule of about [target_ops] operations. *)

val apply : Lazy_xml.Lazy_db.t -> Lxu_storage.Wal.op -> unit

val op_to_string : Lxu_storage.Wal.op -> string
(** Human-readable single operation, for replayable failure reports. *)

val ops_to_string : Lxu_storage.Wal.op list -> string
(** ["; "]-joined {!op_to_string} — the schedule prefix every harness
    prints on an assertion failure so the run replays without the
    generator. *)

val fingerprint : Lazy_xml.Lazy_db.t -> string
(** Text, element/segment counts, and all-pairs join output over the
    vocabulary (both axes) — equality means query-indistinguishable. *)

(** {2 Shared plumbing}

    The filesystem and differential helpers the other crash-style
    harnesses (notably [Maint_harness]) build their own schedules
    on. *)

val fresh_dir : string -> string
(** A unique per-process temp-directory path (not created). *)

val rm_rf : string -> unit
(** Removes a flat directory and its files; no-op if absent. *)

val read_file : string -> string

val write_file : string -> string -> unit

val check : ctx:string -> string -> Lazy_xml.Lazy_db.t -> unit
(** [check ~ctx expected db] compares {!fingerprint}[ db] against
    [expected].
    @raise Failure with [ctx] and both fingerprints on divergence. *)

val run_one : ?checkpoint_at:int -> seed:int -> target_ops:int -> unit -> int
(** One workload: boundary sweep plus fault injection; with
    [checkpoint_at = k] the database checkpoints after operation [k]
    and every recovery goes through [snapshot + WAL suffix] on disk.
    Returns the number of recoveries performed.
    @raise Failure on any divergence. *)

val run_matrix : seeds:int list -> target_ops:int -> unit
(** {!run_one} for every seed (every third one checkpointing
    mid-workload), printing one progress line per seed.
    @raise Failure on the first diverging seed. *)
