(** The overload chaos harness.

    A governed database is preloaded with a seeded workload, then hit
    from concurrent client domains with an adversarial mix: slow
    readers that spin until their deadline trips, queries under tight
    and generous deadlines, reads parked on cancellation tokens that
    the coordinator fires mid-flight, and bursty writers (some behind
    {!Lazy_xml.Governor.retry}).  Per-client schedules are seeded, so
    a failing seed replays the same decisions.

    What {!run_one} asserts:
    {ul
    {- {b no hang} — every client runs a bounded schedule, the parked
       readers are cancelled from outside, and the run only returns
       once every domain joined;}
    {- {b every rejection is typed} — clients tally each attempt's
       {!Lazy_xml.Governor.rejection} and the tallies must equal the
       governor's shed counters bucket for bucket (an untyped escape
       shows up as an exception or a mismatch);}
    {- {b cancellation is observed} — every parked reader comes back
       [Cancelled] with the fired reason, within a wall-clock bound;}
    {- {b no torn state} — writers record each update they actually
       applied (under the write lock, so in serialization order), and
       the post-pressure fingerprint must be byte-identical to an
       unpressured reference database replaying exactly those
       updates: shed or killed operations left no trace.}}

    After the pressure phase a {b mixed read/write phase} runs: one
    writer streams {!Lazy_xml.Governor.insert_many} batches while
    reader domains keep querying and — under the lazy engines — two
    parked snapshot pins hold their epochs across the whole stream.
    Asserted: no read ever observes
    [Lxu_seglog.Tag_list.Dirty_tag_list], the parked pins keep their
    epoch {e and} their bytes, and the phase's attempts fold into the
    same bucket-exact shed accounting as the pressure phase.

    Failures raise [Failure] with the seed, engine, domain count and
    the full applied schedule ({!Crash_harness.ops_to_string}), so any
    report replays deterministically. *)

type report = {
  ok : int;  (** attempts that completed *)
  overloaded : int;
  timed_out : int;
  cancelled : int;  (** rejection tallies across every client attempt *)
  max_cancel_latency_s : float;
      (** worst fire-to-return latency over the parked readers *)
  elapsed_s : float;
}

val run_one :
  engine:Lazy_xml.Lazy_db.engine -> domains:int -> seed:int -> unit -> report
(** One chaos run against a fresh governed database.
    @raise Failure (with the seed and engine in the message) on any
    violated assertion. *)

val run_matrix :
  engines:Lazy_xml.Lazy_db.engine list -> domains:int list -> seeds:int list -> unit
(** {!run_one} over the full cross product, one progress line each.
    @raise Failure on the first violation. *)
