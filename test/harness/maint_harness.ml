open Lazy_xml
module Rng = Lxu_workload.Rng
module Wal = Lxu_storage.Wal
module Wal_store = Lxu_storage.Wal_store
module Sim_file = Lxu_storage.Sim_file
module Recovery = Lxu_storage.Recovery

(* Thresholds low enough that every job class actually fires inside a
   short schedule: packs after a handful of segments, a rolling
   checkpoint every few hundred WAL bytes, a backup shipment every few
   ticks. *)
let harness_config ~backup_dir =
  {
    Maintainer.default_config with
    pack_min_segments = 4;
    pack_min_depth = 3;
    checkpoint_wal_bytes = 512;
    backup_every = (match backup_dir with Some _ -> 3 | None -> 0);
    backup_dir;
  }

(* Recovers a captured crash image (byte-for-byte copies of the WAL
   and optional snapshot, taken at a maintenance-step boundary)
   through the real directory path. *)
let recover_image ~tag ?snapshot_bytes ~wal_bytes () =
  let dir = Crash_harness.fresh_dir tag in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> Crash_harness.rm_rf dir)
    (fun () ->
      (match snapshot_bytes with
      | Some s -> Crash_harness.write_file (Wal_store.snapshot_path dir) s
      | None -> ());
      Crash_harness.write_file (Wal_store.wal_path dir) wal_bytes;
      let db, report = Lazy_db.recover dir in
      Lazy_db.close db;
      (db, report))

(* --- crash churn: kill the store at every maintenance boundary ------- *)

(* The churn schedule interleaves the generated update stream with a
   maintenance tick every [maint_every] ops.  Every op and every
   WAL-logged maintenance job is mirrored onto an in-memory reference,
   and the reference fingerprint is recorded per committed LSN — so a
   recovery from {e any} crash image can be checked against the exact
   state its surviving WAL prefix promises. *)
let run_churn_crash_inner ~maint_every ~seed ~ops () =
  let dir = Crash_harness.fresh_dir "maintwal" in
  let bdir = Crash_harness.fresh_dir "maintbak" in
  Fun.protect
    ~finally:(fun () ->
      Crash_harness.rm_rf dir;
      Crash_harness.rm_rf bdir)
    (fun () ->
      let durable = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      let reference = Lazy_db.create ~index_attributes:true () in
      let m = Maintainer.of_db ~config:(harness_config ~backup_dir:(Some bdir)) durable in
      (* fingerprint of the reference after each committed LSN *)
      let fps = Hashtbl.create 64 in
      let lsn = ref 0 in
      let record_fp () = Hashtbl.replace fps !lsn (Crash_harness.fingerprint reference) in
      record_fp ();
      let recoveries = ref 0 in
      let capture () =
        let wal = Crash_harness.read_file (Wal_store.wal_path dir) in
        let sp = Wal_store.snapshot_path dir in
        let snap = if Sys.file_exists sp then Some (Crash_harness.read_file sp) else None in
        (snap, wal)
      in
      let expect_now ~ctx ?snapshot_bytes ~wal_bytes () =
        incr recoveries;
        let db, _ = recover_image ~tag:"maint" ?snapshot_bytes ~wal_bytes () in
        Crash_harness.check ~ctx (Hashtbl.find fps !lsn) db
      in
      let rng = Rng.create ((seed * 104729) + 1) in
      List.iteri
        (fun i op ->
          Crash_harness.apply durable op;
          Crash_harness.apply reference op;
          incr lsn;
          record_fp ();
          if (i + 1) mod maint_every = 0 then begin
            let snap_pre, wal_pre = capture () in
            match Maintainer.tick m with
            | Maintainer.Idle | Maintainer.Busy | Maintainer.Shed _ -> ()
            | Maintainer.Ran job ->
              (* Mirror the WAL-logged jobs onto the reference; the
                 others (checkpoint, backup, merge) change no
                 query-visible state. *)
              (match job with
              | Maintainer.Pack { gp; len; _ } ->
                Lazy_db.pack_subtree reference ~gp ~len;
                incr lsn;
                record_fp ()
              | _ -> ());
              let ctx0 =
                Printf.sprintf "seed %d op %d job [%s]" seed (i + 1)
                  (Maintainer.job_to_string job)
              in
              let snap_post, wal_post = capture () in
              (* Crash exactly at the step boundary. *)
              expect_now ~ctx:(ctx0 ^ " post") ?snapshot_bytes:snap_post ~wal_bytes:wal_post ();
              (match job with
              | Maintainer.Checkpoint _ ->
                (* The three checkpoint-truncation windows: before the
                   snapshot rename landed, after it but before the WAL
                   rotation (a resurrected pre-rotation log), and after
                   both (= the post image above).  All must recover to
                   the same state — a checkpoint changes nothing
                   query-visible. *)
                expect_now ~ctx:(ctx0 ^ " pre-rename") ?snapshot_bytes:snap_pre
                  ~wal_bytes:wal_pre ();
                expect_now ~ctx:(ctx0 ^ " resurrected-log") ?snapshot_bytes:snap_post
                  ~wal_bytes:wal_pre ()
              | Maintainer.Backup { dir = b; lsn = blsn } ->
                (* The shipped backup restores to exactly the state it
                   was taken at. *)
                incr recoveries;
                let log, _ = Wal_store.restore_to ~dir:b ~lsn:blsn in
                Crash_harness.check ~ctx:(ctx0 ^ " backup-restore") (Hashtbl.find fps blsn)
                  (Lazy_db.of_log log)
              | _ -> ());
              (* Torn / bit-flipped tails on the crash image: recovery
                 lands on some committed LSN and must reproduce exactly
                 that state.  (Duplicated tails are the plain crash
                 harness's department.) *)
              if String.length wal_post > Wal.header_bytes then begin
                let body_len = String.length wal_post - Wal.header_bytes in
                for _t = 1 to 2 do
                  match Sim_file.random_fault rng ~len:body_len with
                  | Sim_file.Duplicate_tail _ -> ()
                  | fault ->
                    incr recoveries;
                    let head = String.sub wal_post 0 Wal.header_bytes in
                    let body = String.sub wal_post Wal.header_bytes body_len in
                    let image = head ^ Sim_file.apply_fault body fault in
                    let db, report =
                      recover_image ~tag:"maintfault" ?snapshot_bytes:snap_post
                        ~wal_bytes:image ()
                    in
                    let ctx = ctx0 ^ " fault" in
                    (match Hashtbl.find_opt fps report.Recovery.last_lsn with
                    | Some fp -> Crash_harness.check ~ctx fp db
                    | None ->
                      failwith
                        (Printf.sprintf "%s: recovered to unrecorded lsn %d" ctx
                           report.Recovery.last_lsn))
                done
              end
          end)
        ops;
      Lazy_db.close durable;
      let snap, wal = capture () in
      expect_now ~ctx:(Printf.sprintf "seed %d final" seed) ?snapshot_bytes:snap ~wal_bytes:wal
        ();
      !recoveries)

let run_churn_crash ?(maint_every = 3) ~seed ~target_ops () =
  let ops = Crash_harness.gen_ops ~seed ~target_ops in
  try run_churn_crash_inner ~maint_every ~seed ~ops ()
  with Failure msg ->
    failwith
      (Printf.sprintf "%s\n  replay: seed=%d target_ops=%d maint_every=%d schedule=[%s]" msg seed
         target_ops maint_every
         (Crash_harness.ops_to_string ops))

(* --- point-in-time restore sweep ------------------------------------- *)

(* With checkpoint truncation disabled the live directory retains the
   full history, so {e every} committed prefix state must be
   reconstructible with [restore_to]; a final checkpoint then proves
   the documented bound (earlier states need a pre-checkpoint
   backup). *)
let run_restore_sweep_inner ~seed ~ops () =
  let dir = Crash_harness.fresh_dir "pitr" in
  Fun.protect
    ~finally:(fun () -> Crash_harness.rm_rf dir)
    (fun () ->
      let durable = Lazy_db.create ~index_attributes:true ~durability:(`Wal dir) () in
      let reference = Lazy_db.create ~index_attributes:true () in
      let cfg =
        {
          Maintainer.default_config with
          pack_min_segments = 4;
          pack_min_depth = 3;
          checkpoint_wal_bytes = max_int;
        }
      in
      let m = Maintainer.of_db ~config:cfg durable in
      let lsn = ref 0 in
      let fps = ref [ (0, Crash_harness.fingerprint reference) ] in
      let record_fp () = fps := (!lsn, Crash_harness.fingerprint reference) :: !fps in
      List.iteri
        (fun i op ->
          Crash_harness.apply durable op;
          Crash_harness.apply reference op;
          incr lsn;
          record_fp ();
          if (i + 1) mod 4 = 0 then
            match Maintainer.tick m with
            | Maintainer.Ran (Maintainer.Pack { gp; len; _ }) ->
              Lazy_db.pack_subtree reference ~gp ~len;
              incr lsn;
              record_fp ()
            | _ -> ())
        ops;
      Lazy_db.close durable;
      List.iter
        (fun (l, fp) ->
          let ctx = Printf.sprintf "seed %d restore lsn %d" seed l in
          let db, report = Lazy_db.restore_to ~lsn:l dir in
          if report.Recovery.last_lsn <> l then
            failwith
              (Printf.sprintf "%s: replay stopped at lsn %d" ctx report.Recovery.last_lsn);
          Crash_harness.check ~ctx fp db)
        !fps;
      (* Checkpointing bounds PITR exactly as documented. *)
      let db, _ = Lazy_db.recover dir in
      Lazy_db.checkpoint db;
      Lazy_db.close db;
      let db, _ = Lazy_db.restore_to ~lsn:!lsn dir in
      Crash_harness.check
        ~ctx:(Printf.sprintf "seed %d post-checkpoint restore" seed)
        (List.assoc !lsn !fps) db;
      if !lsn > 0 then (
        match Lazy_db.restore_to ~lsn:(!lsn - 1) dir with
        | exception Failure _ -> ()
        | _ ->
          failwith
            (Printf.sprintf "seed %d: restore below the checkpoint unexpectedly succeeded" seed));
      List.length !fps)

let run_restore_sweep ~seed ~target_ops () =
  let ops = Crash_harness.gen_ops ~seed ~target_ops in
  try run_restore_sweep_inner ~seed ~ops ()
  with Failure msg ->
    failwith
      (Printf.sprintf "%s\n  replay: seed=%d target_ops=%d schedule=[%s]" msg seed target_ops
         (Crash_harness.ops_to_string ops))

(* --- churn performance: auto-maintenance vs. manual-only ------------- *)

type churn_perf = {
  latencies_ms : float array;  (** per-query, in schedule order *)
  queries : int;
  segments_end : int;
  er_depth_end : int;
  jobs_run : int;
  shed : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))

let p99 latencies =
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  percentile sorted 99.

let churn_fragments =
  [|
    "<a><b>t</b></a>";
    "<c><d/><e>u</e></c>";
    "<f g=\"v\"><h/></f>";
    "<b><c><d/></c></b>";
  |]

let churn_tags = [| "a"; "b"; "c"; "d"; "e"; "f"; "h" |]

(* One measured request: the full tag-pair count sweep, so each sample
   is dominated by join work rather than admission overhead. *)
let sweep db =
  Array.iter
    (fun anc -> Array.iter (fun desc -> ignore (Lazy_db.count db ~anc ~desc ())) churn_tags)
    churn_tags

(* A compressed week of FLUX-style churn: [epochs] rounds of governed
   inserts (at element boundaries of a text mirror, so every edit is
   valid by construction), occasional removes, then measured governed
   sweep requests.  [maintain = `Auto k] runs up to [k] maintenance
   jobs through the same governor in the idle gap between an epoch's
   churn and its queries; [`Manual] never maintains — the degradation
   baseline.  The schedule (text, edits, query mix) is identical for
   both modes: maintenance changes no query-visible state and draws
   nothing from the generator. *)
let run_churn_perf ~seed ~epochs ~maintain () =
  let rng = Rng.create seed in
  let gov = Governor.create ~engine:Lazy_db.LD () in
  (* The perf run gives the maintainer the strictest mandate — any
     subtree that drifts from single-segment is pack-eligible — so the
     steady state it defends is the day-one layout itself; the cost of
     that mandate is maintenance work in the (unmeasured) idle gap,
     which is exactly the trade the bench exists to show. *)
  let m =
    Maintainer.of_governor
      ~config:
        { Maintainer.default_config with pack_min_segments = 1; pack_min_depth = 2 }
      gov
  in
  let text = ref (Lxu_workload.Generator.generate_text ~seed ~target_elements:400 ()) in
  (match
     Governor.insert_many gov
       (Lxu_workload.Chopper.chop ~text:!text ~segments:24 Lxu_workload.Chopper.Balanced)
   with
  | Ok () -> ()
  | Error r -> failwith (Governor.rejection_to_string r));
  let lats = ref [] and queries = ref 0 and jobs = ref 0 in
  let string_insert s ~gp frag =
    String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)
  in
  for _e = 1 to epochs do
    (* a burst of small inserts at random element boundaries *)
    for _k = 1 to 6 do
      match Crash_harness.element_extents !text with
      | [] -> ()
      | extents ->
        let s, _ = List.nth extents (Rng.int rng (List.length extents)) in
        let frag = Rng.pick rng churn_fragments in
        (match Governor.insert gov ~gp:s frag with
        | Ok () -> text := string_insert !text ~gp:s frag
        | Error r -> failwith (Governor.rejection_to_string r))
    done;
    (* an occasional remove *)
    if Rng.int rng 100 < 40 then (
      match Crash_harness.element_extents !text with
      | [] -> ()
      | extents ->
        let s, e = List.nth extents (Rng.int rng (List.length extents)) in
        (match Governor.remove gov ~gp:s ~len:(e - s) () with
        | Ok () -> text := String.sub !text 0 s ^ String.sub !text e (String.length !text - e)
        | Error r -> failwith (Governor.rejection_to_string r)));
    (* the idle gap: background maintenance runs before traffic
       returns *)
    (match maintain with
    | `Manual -> ()
    | `Auto k -> jobs := !jobs + Maintainer.run_until_idle ~max_steps:k m);
    (* measured governed sweep requests *)
    for _q = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      (match Governor.read gov (fun _ db -> sweep db) with
      | Ok () -> ()
      | Error r -> failwith (Governor.rejection_to_string r));
      lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !lats;
      incr queries
    done
  done;
  let segments_end, er_depth_end =
    match Governor.read gov (fun _ db -> Option.map Lxu_seglog.Update_log.frag_stats (Lazy_db.log db)) with
    | Ok (Some fs) ->
      (fs.Lxu_seglog.Update_log.live_segments, fs.Lxu_seglog.Update_log.er_depth)
    | _ -> (0, 0)
  in
  let st = Maintainer.stats m in
  ( {
      latencies_ms = Array.of_list (List.rev !lats);
      queries = !queries;
      segments_end;
      er_depth_end;
      jobs_run = !jobs;
      shed = st.Maintainer.shed;
    },
    !text,
    gov )

(* A freshly rebuilt single-segment store over [text], warmed so its
   one-time lazy relabeling is build cost, not measured latency — the
   "day one" baseline both churn modes are compared to. *)
let fresh_store text =
  let db = Lazy_db.create ~engine:Lazy_db.LD () in
  if text <> "" then Lazy_db.insert db ~gp:0 text;
  sweep db;
  db

let fresh_baseline ~seed:_ ~queries text =
  let db = fresh_store text in
  Array.init queries (fun _ ->
      let t0 = Unix.gettimeofday () in
      sweep db;
      (Unix.gettimeofday () -. t0) *. 1000.)

(* Round-robin steady-state measurement: each round times one sweep
   request per store, so host weather (hypervisor steal, clock jitter)
   lands on every store in proportion instead of deciding one store's
   tail.  The major GC is settled before every sample: OCaml's
   incremental collector charges slices against {e subsequent}
   allocations, so without the barrier a heavy neighbour's sweep
   taxes the next store's tail with its own collection debt.  Returns
   one latency array per request thunk, in order. *)
let measure_interleaved ~rounds requests =
  let n = List.length requests in
  let out = Array.init n (fun _ -> Array.make rounds 0.) in
  for r = 0 to rounds - 1 do
    List.iteri
      (fun i req ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        req ();
        out.(i).(r) <- (Unix.gettimeofday () -. t0) *. 1000.)
      requests
  done;
  Array.to_list out

(* --- matrix entry point (the @slow tier) ----------------------------- *)

let run_matrix ~seeds ~target_ops =
  List.iter
    (fun seed ->
      let recoveries = run_churn_crash ~seed ~target_ops () in
      let swept = run_restore_sweep ~seed ~target_ops:(target_ops / 2) () in
      Printf.printf "maint matrix seed %d: %d crash recoveries ok, %d pitr states ok\n%!" seed
        recoveries swept)
    seeds
