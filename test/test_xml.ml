(* Unit and property tests for the offset-tracking XML parser and
   serializer. *)

open Lxu_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse = Parser.parse_fragment

let root_element s =
  match parse s with
  | [ Tree.Element e ] -> e
  | _ -> Alcotest.fail "expected a single root element"

let test_single_element () =
  let e = root_element "<a/>" in
  check_string "tag" "a" e.Tree.tag;
  check_int "start" 0 e.Tree.e_start;
  check_int "end" 4 e.Tree.e_end

let test_nested_offsets () =
  (*        0123456789012345678 *)
  let s = "<a><b>hi</b><c/></a>" in
  let a = root_element s in
  check_int "a start" 0 a.Tree.e_start;
  check_int "a end" (String.length s) a.Tree.e_end;
  match a.Tree.children with
  | [ Tree.Element b; Tree.Element c ] ->
    check_int "b start" 3 b.Tree.e_start;
    check_int "b end" 12 b.Tree.e_end;
    check_int "c start" 12 c.Tree.e_start;
    check_int "c end" 16 c.Tree.e_end
  | _ -> Alcotest.fail "expected children b, c"

let test_text_decoding () =
  let a = root_element "<a>x &amp; y &lt;z&gt; &#65;</a>" in
  match a.Tree.children with
  | [ Tree.Text t ] -> check_string "decoded" "x & y <z> A" t.Tree.content
  | _ -> Alcotest.fail "expected one text child"

let test_attributes () =
  let a = root_element "<a x=\"1\" y='two' z=\"a&amp;b\"/>" in
  let attr n =
    (List.find (fun at -> at.Tree.attr_name = n) a.Tree.attrs).Tree.attr_value
  in
  check_string "x" "1" (attr "x");
  check_string "y" "two" (attr "y");
  check_string "z" "a&b" (attr "z")

let test_comment_pi_cdata () =
  let nodes = parse "<!--note--><?pi target?><a><![CDATA[<raw>&]]></a>" in
  match nodes with
  | [ Tree.Comment c; Tree.Pi p; Tree.Element a ] -> begin
    check_string "comment" "note" c.Tree.content;
    check_string "pi" "pi target" p.Tree.content;
    match a.Tree.children with
    | [ Tree.Cdata d ] -> check_string "cdata" "<raw>&" d.Tree.content
    | _ -> Alcotest.fail "expected cdata child"
  end
  | _ -> Alcotest.fail "expected comment, pi, element"

let test_fragment_with_multiple_roots () =
  let nodes = parse "<a/><b/><c/>" in
  check_int "three roots" 3 (List.length nodes)

let expect_error s =
  match Parser.parse_fragment_result s with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" s)
  | Error _ -> ()

let test_malformed () =
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "</a>";
  expect_error "<a attr></a>";
  expect_error "<a x=1/>";
  expect_error "<a>&unknown;</a>";
  expect_error "<a>&amp</a>";
  expect_error "<!DOCTYPE foo><a/>";
  expect_error "<a><!--unterminated</a>";
  expect_error "<a x=\"<\"/>"

let test_parse_document () =
  let e = Parser.parse_document "  <!--hd--> <root><x/></root>\n" in
  check_string "root tag" "root" e.Tree.tag;
  Alcotest.check_raises "two roots"
    (Parser.Parse_error { pos = 0; msg = "multiple root elements" })
    (fun () -> ignore (Parser.parse_document "<a/><b/>"));
  Alcotest.check_raises "stray text"
    (Parser.Parse_error { pos = 0; msg = "stray character data outside the root element" })
    (fun () -> ignore (Parser.parse_document "hi<a/>"))

let test_iter_elements_levels () =
  let nodes = parse "<a><b><c/></b><d/></a>" in
  let seen = ref [] in
  Tree.iter_elements ~base_level:3 nodes (fun e ~level ->
      seen := (e.Tree.tag, level) :: !seen);
  Alcotest.(check (list (pair string int)))
    "pre-order with levels"
    [ ("a", 3); ("b", 4); ("c", 5); ("d", 4) ]
    (List.rev !seen)

let test_stats () =
  let nodes = parse "<a><b/><b/><c><b/></c></a>" in
  check_int "count" 5 (Tree.element_count nodes);
  Alcotest.(check (list string)) "tags" [ "a"; "b"; "c" ] (Tree.distinct_tags nodes);
  check_int "depth" 3 (Tree.max_depth nodes);
  check_int "find_all b" 3 (List.length (Tree.find_all nodes ~tag:"b"))

let test_render_roundtrip () =
  let t =
    Tree.el "person"
      ~attrs:[ ("id", "p&1") ]
      [
        Tree.el "name" [ Tree.txt "A <B>" ];
        Tree.comment "note";
        Tree.el "empty" [];
      ]
  in
  let s = Printer.render [ t ] in
  let reparsed = parse s in
  check_bool "structurally equal" true (Tree.equal_structure [ t ] reparsed)

let test_render_escaping () =
  check_string "text" "a&amp;b&lt;c&gt;" (Printer.escape_text "a&b<c>");
  check_string "attr" "&quot;x&quot;" (Printer.escape_attr "\"x\"")

let test_render_indented_reparses () =
  let nodes = parse "<a><b><c/><c/></b>text</a>" in
  let pretty = Printer.render_indented nodes in
  check_bool "well-formed" true (Parser.is_well_formed_fragment pretty)

let test_offsets_slice_back () =
  (* Every element's offsets must slice the input to a reparsable
     fragment equal to that element. *)
  let s = "<a att=\"v\"><b>t&amp;t</b><c><d/></c></a>" in
  let nodes = parse s in
  Tree.iter_elements nodes (fun e ~level:_ ->
      let slice = String.sub s e.Tree.e_start (e.Tree.e_end - e.Tree.e_start) in
      match parse slice with
      | [ Tree.Element e' ] -> check_string "same tag" e.Tree.tag e'.Tree.tag
      | _ -> Alcotest.fail "slice did not reparse to the element")

(* --- property: random tree -> render -> parse -> equal ------------- *)

let tag_gen = QCheck2.Gen.(map (fun i -> Printf.sprintf "t%d" (i mod 7)) (int_bound 100))

let text_gen =
  QCheck2.Gen.(
    map
      (fun s ->
        (* Arbitrary printable strings incl. the characters needing escapes. *)
        String.concat "" (List.map (fun c -> String.make 1 c) s))
      (* Non-empty: an element whose only child is an empty text node
         renders as <t></t> but reparses childless, i.e. as <t/>. *)
      (list_size (int_range 1 8)
         (oneofl [ 'a'; 'b'; ' '; '&'; '<'; '>'; '"'; '\''; '\n' ])))

let rec node_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then map Tree.txt text_gen
  else
    frequency
      [
        (2, map Tree.txt text_gen);
        ( 3,
          map3
            (fun tag attrs children -> Tree.el tag ~attrs children)
            tag_gen
            (list_size (int_range 0 2) (pair (map (fun t -> "a" ^ t) tag_gen) text_gen))
            (list_size (int_range 0 3) (node_gen (depth - 1))) );
      ]

let forest_gen = QCheck2.Gen.(list_size (int_range 0 4) (node_gen 3))

let prop_render_parse_roundtrip =
  QCheck2.Test.make ~name:"render/parse roundtrip" ~count:300 forest_gen
    (fun forest ->
      let s = Printer.render forest in
      match Parser.parse_fragment_result s with
      | Error _ -> false
      | Ok reparsed ->
        (* Rendering merges nothing, but adjacent generated text nodes
           merge on reparse; compare via a second render. *)
        Printer.render reparsed = s)

let prop_offsets_within_bounds =
  QCheck2.Test.make ~name:"parsed offsets are sane" ~count:300 forest_gen
    (fun forest ->
      let s = Printer.render forest in
      match Parser.parse_fragment_result s with
      | Error _ -> false
      | Ok reparsed ->
        let ok = ref true in
        Tree.iter_elements reparsed (fun e ~level:_ ->
            if not (0 <= e.Tree.e_start && e.Tree.e_start < e.Tree.e_end && e.Tree.e_end <= String.length s)
            then ok := false;
            if s.[e.Tree.e_start] <> '<' then ok := false;
            if s.[e.Tree.e_end - 1] <> '>' then ok := false);
        !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_render_parse_roundtrip; prop_offsets_within_bounds ]

let suite =
  [
    Alcotest.test_case "single element offsets" `Quick test_single_element;
    Alcotest.test_case "nested offsets" `Quick test_nested_offsets;
    Alcotest.test_case "text decoding" `Quick test_text_decoding;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "comment/pi/cdata" `Quick test_comment_pi_cdata;
    Alcotest.test_case "fragment with multiple roots" `Quick test_fragment_with_multiple_roots;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed;
    Alcotest.test_case "parse_document" `Quick test_parse_document;
    Alcotest.test_case "iter_elements levels" `Quick test_iter_elements_levels;
    Alcotest.test_case "tree stats" `Quick test_stats;
    Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
    Alcotest.test_case "render escaping" `Quick test_render_escaping;
    Alcotest.test_case "render_indented reparses" `Quick test_render_indented_reparses;
    Alcotest.test_case "offsets slice back" `Quick test_offsets_slice_back;
  ]
  @ props

(* --- robustness: the parser never crashes, it reports errors --------- *)

let prop_parser_total =
  let gen = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 1 127)) (int_range 0 60)) in
  QCheck2.Test.make ~name:"parser is total on arbitrary input" ~count:500 gen
    (fun s ->
      match Parser.parse_fragment_result s with Ok _ | Error _ -> true)

let prop_parser_total_xmlish =
  (* Random strings over an XML-flavoured alphabet hit far more parser
     branches than uniform noise. *)
  let gen =
    QCheck2.Gen.(
      map (String.concat "")
        (list_size (int_range 0 25)
           (oneofl [ "<"; ">"; "/"; "a"; "b"; "="; "\""; "'"; "&"; "amp;"; "!"; "-"; "["; "]"; "?"; " " ])))
  in
  QCheck2.Test.make ~name:"parser is total on xml-ish noise" ~count:500 gen
    (fun s ->
      match Parser.parse_fragment_result s with Ok _ | Error _ -> true)

let test_entity_edge_cases () =
  let one s =
    match parse s with
    | [ Tree.Element { children = [ Tree.Text t ]; _ } ] -> t.Tree.content
    | _ -> Alcotest.fail "parse"
  in
  check_string "hex upper" "A" (one "<a>&#x41;</a>");
  check_string "hex lower" "A" (one "<a>&#X41;</a>");
  check_string "two-byte utf8" "\xc3\xa9" (one "<a>&#233;</a>");
  check_string "three-byte utf8" "\xe2\x82\xac" (one "<a>&#8364;</a>");
  expect_error "<a>&#xZZ;</a>";
  expect_error "<a>&;</a>"

let test_whitespace_in_tags () =
  let e = root_element "<a   x = \"1\"   ></a>" in
  check_int "attrs parsed" 1 (List.length e.Tree.attrs);
  let e2 = root_element "<a\n/>" in
  check_string "newline before slash" "a" e2.Tree.tag

let test_crlf_text_preserved () =
  match parse "<a>line1\r\nline2</a>" with
  | [ Tree.Element { children = [ Tree.Text t ]; _ } ] ->
    check_string "crlf kept" "line1\r\nline2" t.Tree.content
  | _ -> Alcotest.fail "parse"

let test_deep_nesting () =
  let depth = 2000 in
  let text =
    String.concat "" (List.init depth (fun _ -> "<a>"))
    ^ String.concat "" (List.init depth (fun _ -> "</a>"))
  in
  let nodes = parse text in
  check_int "deep doc parses" depth (Tree.element_count nodes)

(* --- positions and resource limits ---------------------------------- *)

let test_line_col () =
  let s = "ab\ncde\n\nf" in
  Alcotest.(check (pair int int)) "start" (1, 1) (Parser.line_col s 0);
  Alcotest.(check (pair int int)) "before newline" (1, 3) (Parser.line_col s 2);
  Alcotest.(check (pair int int)) "after newline" (2, 1) (Parser.line_col s 3);
  Alcotest.(check (pair int int)) "line 2" (2, 3) (Parser.line_col s 5);
  Alcotest.(check (pair int int)) "empty line" (3, 1) (Parser.line_col s 7);
  Alcotest.(check (pair int int)) "end of input" (4, 2) (Parser.line_col s 9);
  Alcotest.(check (pair int int)) "clamped" (4, 2) (Parser.line_col s 999)

let test_error_reports_line_col () =
  match Parser.parse_fragment_result "<a>\n  <b>\n</a>" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    check_bool
      (Printf.sprintf "message %S locates the error" msg)
      true
      (String.starts_with ~prefix:"parse error at line 3, column " msg)

let test_depth_limit () =
  let deep n =
    String.concat "" (List.init n (fun _ -> "<a>"))
    ^ String.concat "" (List.init n (fun _ -> "</a>"))
  in
  let limits = { Parser.default_limits with Parser.max_depth = 4 } in
  check_int "at the limit" 4 (Tree.element_count (Parser.parse_fragment ~limits (deep 4)));
  (match Parser.parse_fragment_result ~limits (deep 5) with
  | Ok _ -> Alcotest.fail "depth 5 accepted under max_depth 4"
  | Error _ -> ());
  (* Sibling depth does not accumulate: only nesting counts. *)
  check_int "siblings unaffected" 8
    (Tree.element_count (Parser.parse_fragment ~limits (deep 4 ^ deep 4)))

let test_attr_limit () =
  let with_attrs n =
    "<a "
    ^ String.concat " " (List.init n (fun i -> Printf.sprintf "k%d=\"v\"" i))
    ^ "/>"
  in
  let limits = { Parser.default_limits with Parser.max_attrs = 3 } in
  check_int "at the limit" 1 (List.length (Parser.parse_fragment ~limits (with_attrs 3)));
  match Parser.parse_fragment_result ~limits (with_attrs 4) with
  | Ok _ -> Alcotest.fail "4 attributes accepted under max_attrs 3"
  | Error _ -> ()

let test_input_size_limit () =
  let limits = { Parser.default_limits with Parser.max_input_bytes = 8 } in
  check_int "small input fine" 1 (List.length (Parser.parse_fragment ~limits "<a/>"));
  match Parser.parse_fragment_result ~limits "<aaaa/><b/>" with
  | Ok _ -> Alcotest.fail "oversized input accepted"
  | Error _ -> ()

let test_default_depth_is_stack_safe () =
  (* 100k nesting levels must hit the depth limit as a Parse_error,
     never blow the stack. *)
  let text =
    Lxu_workload.Generator.deep_chain ~tags:[| "a"; "b" |] ~depth:100_000 ~payload:""
  in
  match Parser.parse_fragment_result text with
  | Ok _ -> Alcotest.fail "100k nesting accepted under default limits"
  | Error msg -> check_bool "limit named in message" true
    (String.length msg > 0 && String.contains msg 'd')

(* --- mutation fuzz: valid documents under random byte edits ---------- *)

let prop_mutation_fuzz =
  QCheck2.Test.make ~name:"mutation fuzz keeps the parser total (quick slice)" ~count:25
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      match Lxu_crash_harness.Parser_fuzz.check_batch ~seed ~rounds:15 with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_parser_total;
      QCheck_alcotest.to_alcotest prop_parser_total_xmlish;
      Alcotest.test_case "entity edge cases" `Quick test_entity_edge_cases;
      Alcotest.test_case "whitespace in tags" `Quick test_whitespace_in_tags;
      Alcotest.test_case "crlf preserved" `Quick test_crlf_text_preserved;
      Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
      Alcotest.test_case "line/col positions" `Quick test_line_col;
      Alcotest.test_case "errors report line and column" `Quick test_error_reports_line_col;
      Alcotest.test_case "depth limit" `Quick test_depth_limit;
      Alcotest.test_case "attribute limit" `Quick test_attr_limit;
      Alcotest.test_case "input size limit" `Quick test_input_size_limit;
      Alcotest.test_case "default depth limit is stack-safe" `Quick
        test_default_depth_is_stack_safe;
      QCheck_alcotest.to_alcotest prop_mutation_fuzz;
    ]
