(* Unit tests for the storage layer: CRC32 vectors, WAL encode/scan
   roundtrips, corruption detection (torn, bit-flipped and duplicated
   tails), the group-commit buffer, and fault-injection semantics of
   Sim_file.  Whole-database crash recovery lives in test_recovery.ml
   and the @slow matrix. *)

module Crc32 = Lxu_storage.Crc32
module Sim_file = Lxu_storage.Sim_file
module Wal = Lxu_storage.Wal

let header = { Wal.mode = Lxu_seglog.Update_log.Lazy_dynamic; index_attributes = false }

let sample_ops =
  [
    Wal.Insert { gp = 0; text = "<a><b/></a>" };
    Wal.Insert { gp = 3; text = "<c>t</c>" };
    Wal.Remove { gp = 3; len = 8 };
    Wal.Pack { gp = 0; len = 11 };
    Wal.Rebuild;
  ]

(* WAL bytes holding [sample_ops], plus the device they were written
   through (so tests can also look at write counts). *)
let sample_wal () =
  let device = Sim_file.in_memory () in
  let w = Wal.create ~device header in
  List.iter (fun op -> ignore (Wal.append w op)) sample_ops;
  Wal.commit w;
  (Sim_file.contents device, device)

(* --- crc32 ------------------------------------------------------------ *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int)
    "sub = string on slice" (Crc32.string "234567")
    (Crc32.sub "123456789" ~pos:1 ~len:6);
  Alcotest.(check bool) "one bit changes the sum" true
    (Crc32.string "123456789" <> Crc32.string "123456799")

(* --- wal encode / scan ------------------------------------------------ *)

let test_wal_roundtrip () =
  let bytes, _ = sample_wal () in
  let r = Wal.scan bytes in
  Alcotest.(check bool) "clean" true (r.Wal.corruption = None);
  Alcotest.(check int) "all bytes valid" (String.length bytes) r.Wal.valid_bytes;
  Alcotest.(check int) "record count" (List.length sample_ops) (List.length r.Wal.records);
  Alcotest.(check (list int)) "lsns from 1"
    (List.init (List.length sample_ops) (fun i -> i + 1))
    (List.map (fun rec_ -> rec_.Wal.lsn) r.Wal.records);
  Alcotest.(check bool) "ops roundtrip" true
    (List.map (fun rec_ -> rec_.Wal.op) r.Wal.records = sample_ops);
  Alcotest.(check bool) "header roundtrips" true (r.Wal.header = header);
  let last = List.nth r.Wal.records (List.length r.Wal.records - 1) in
  Alcotest.(check int) "last end_off = file size" (String.length bytes) last.Wal.end_off

let test_wal_modes () =
  List.iter
    (fun h ->
      let device = Sim_file.in_memory () in
      let w = Wal.create ~device h in
      ignore (Wal.append w Wal.Rebuild);
      Wal.commit w;
      let r = Wal.scan (Sim_file.contents device) in
      Alcotest.(check bool) "header roundtrips" true (r.Wal.header = h))
    [
      { Wal.mode = Lxu_seglog.Update_log.Lazy_dynamic; index_attributes = true };
      { Wal.mode = Lxu_seglog.Update_log.Lazy_static; index_attributes = false };
    ]

let boundary bytes r j =
  if j = 0 then Wal.header_bytes else (List.nth r.Wal.records (j - 1)).Wal.end_off |> min (String.length bytes)

let test_torn_tail () =
  let bytes, _ = sample_wal () in
  let clean = Wal.scan bytes in
  let n = List.length clean.Wal.records in
  (* Tear the last record anywhere: every earlier record survives and
     valid_bytes points at the previous boundary. *)
  let prev = boundary bytes clean (n - 1) in
  List.iter
    (fun cut ->
      let r = Wal.scan (String.sub bytes 0 cut) in
      Alcotest.(check int) (Printf.sprintf "records at cut %d" cut) (n - 1)
        (List.length r.Wal.records);
      Alcotest.(check int) "valid prefix" prev r.Wal.valid_bytes;
      Alcotest.(check bool) "flagged" true (r.Wal.corruption <> None))
    [ prev + 1; prev + 8; String.length bytes - 1 ]

let test_bit_flip_detected () =
  let bytes, _ = sample_wal () in
  let clean = Wal.scan bytes in
  (* Flip one bit inside record 3's payload region: records 1-2
     survive, everything from record 3 on is rejected. *)
  let start2 = boundary bytes clean 2 in
  let flipped =
    Sim_file.apply_fault bytes (Sim_file.Bit_flip ((start2 + 10) * 8))
  in
  let r = Wal.scan flipped in
  Alcotest.(check int) "stops at the flipped record" 2 (List.length r.Wal.records);
  Alcotest.(check int) "valid prefix" start2 r.Wal.valid_bytes;
  Alcotest.(check bool) "flagged" true (r.Wal.corruption <> None)

let test_duplicate_tail_detected () =
  let bytes, _ = sample_wal () in
  let clean = Wal.scan bytes in
  let n = List.length clean.Wal.records in
  let tail_len = String.length bytes - boundary bytes clean (n - 1) in
  (* A re-issued final write: the duplicated record re-parses but its
     LSN is no longer increasing, so the copy is rejected. *)
  let dup = Sim_file.apply_fault bytes (Sim_file.Duplicate_tail tail_len) in
  let r = Wal.scan dup in
  Alcotest.(check int) "original records survive" n (List.length r.Wal.records);
  Alcotest.(check int) "copy is truncated" (String.length bytes) r.Wal.valid_bytes;
  Alcotest.(check bool) "flagged" true (r.Wal.corruption <> None)

let test_unknown_kind_detected () =
  let bytes, _ = sample_wal () in
  let clean = Wal.scan bytes in
  (* Corrupt record 2's kind byte and re-seal the checksum: a wrong
     CRC is not what should catch this, the kind check is. *)
  let start1 = boundary bytes clean 1 in
  let end2 = boundary bytes clean 2 in
  let b = Bytes.of_string bytes in
  Bytes.set b (start1 + 8) 'X';
  let crc = Crc32.sub (Bytes.to_string b) ~pos:start1 ~len:(end2 - start1 - 4) in
  Bytes.set_int32_le b (end2 - 4) (Int32.of_int crc);
  let r = Wal.scan (Bytes.to_string b) in
  Alcotest.(check int) "stops at the bad kind" 1 (List.length r.Wal.records);
  Alcotest.(check bool) "flagged" true (r.Wal.corruption <> None)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_bad_header_raises () =
  List.iter
    (fun bad ->
      match Wal.scan ~path:"some/wal" bad with
      | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "message %S names the path" msg)
          true
          (contains ~needle:"some/wal" msg)
      | _ -> Alcotest.fail "bad header accepted")
    [ ""; "LXUWAL1 D"; "NOTAWAL1 D0\n"; "LXUWAL1 X0\n"; "LXUWAL1 D2\n" ]

(* --- group commit ----------------------------------------------------- *)

let test_group_commit () =
  let device = Sim_file.in_memory () in
  let w = Wal.create ~device header in
  Alcotest.(check int) "header is write 0" 1 (Sim_file.writes device);
  let lsns = List.map (fun op -> Wal.append w op) sample_ops in
  Alcotest.(check (list int)) "lsns assigned at append"
    (List.init (List.length sample_ops) (fun i -> i + 1))
    lsns;
  Alcotest.(check int) "buffered" (List.length sample_ops) (Wal.buffered w);
  Alcotest.(check int) "nothing on device yet" Wal.header_bytes (Sim_file.size device);
  Wal.commit w;
  Alcotest.(check int) "one write for the whole group" 2 (Sim_file.writes device);
  Alcotest.(check int) "buffer drained" 0 (Wal.buffered w);
  Wal.commit w;
  Alcotest.(check int) "empty commit is free" 2 (Sim_file.writes device);
  let r = Wal.scan (Sim_file.contents device) in
  Alcotest.(check int) "all records present" (List.length sample_ops)
    (List.length r.Wal.records)

(* --- sim_file --------------------------------------------------------- *)

let test_apply_fault () =
  let data = "abcdefgh" in
  Alcotest.(check string) "truncate" "abcde" (Sim_file.apply_fault data (Truncate_tail 3));
  Alcotest.(check string) "truncate clamps" "" (Sim_file.apply_fault data (Truncate_tail 99));
  Alcotest.(check string) "dup" "abcdefghfgh" (Sim_file.apply_fault data (Duplicate_tail 3));
  let flipped = Sim_file.apply_fault data (Bit_flip 16) in
  Alcotest.(check int) "flip keeps length" (String.length data) (String.length flipped);
  Alcotest.(check bool) "flip changes byte 2 only" true
    (flipped.[2] <> data.[2]
    && String.sub flipped 0 2 = String.sub data 0 2
    && String.sub flipped 3 5 = String.sub data 3 5);
  Alcotest.(check string) "empty write stays empty" ""
    (Sim_file.apply_fault "" (Bit_flip 5))

let test_injection () =
  let device = Sim_file.in_memory () in
  Sim_file.inject device ~nth_write:1 (Truncate_tail 2);
  Sim_file.write device "aaaa";
  Sim_file.write device "bbbb";
  Sim_file.write device "cccc";
  Alcotest.(check string) "only write 1 torn" "aaaabbcccc" (Sim_file.contents device);
  Alcotest.(check int) "writes counted" 3 (Sim_file.writes device)

let test_file_backed () =
  let path = Filename.temp_file "lxu_simfile" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let device = Sim_file.open_path path in
      Sim_file.write device "hello ";
      Sim_file.write device "world";
      Sim_file.sync device;
      Alcotest.(check string) "contents" "hello world" (Sim_file.contents device);
      Sim_file.truncate_to device 5;
      Alcotest.(check int) "truncated" 5 (Sim_file.size device);
      Sim_file.write device "!";
      Sim_file.close device;
      let device = Sim_file.open_path ~append:true path in
      Alcotest.(check string) "survives reopen" "hello!" (Sim_file.contents device);
      Sim_file.write device "?";
      Sim_file.close device;
      let ic = open_in_bin path in
      let on_disk = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "append mode appends" "hello!?" on_disk)

let test_random_fault_deterministic () =
  let faults seed =
    let rng = Lxu_workload.Rng.create seed in
    List.init 20 (fun _ -> Sim_file.random_fault rng ~len:64)
  in
  Alcotest.(check bool) "same seed, same schedule" true (faults 42 = faults 42);
  Alcotest.(check bool) "some variety across seeds" true (faults 42 <> faults 43)

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc_vectors;
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal header modes" `Quick test_wal_modes;
    Alcotest.test_case "torn tail truncates" `Quick test_torn_tail;
    Alcotest.test_case "bit flip detected" `Quick test_bit_flip_detected;
    Alcotest.test_case "duplicate tail detected" `Quick test_duplicate_tail_detected;
    Alcotest.test_case "unknown kind detected" `Quick test_unknown_kind_detected;
    Alcotest.test_case "bad header raises with path" `Quick test_bad_header_raises;
    Alcotest.test_case "group commit buffers" `Quick test_group_commit;
    Alcotest.test_case "apply_fault semantics" `Quick test_apply_fault;
    Alcotest.test_case "scheduled injection" `Quick test_injection;
    Alcotest.test_case "file-backed device" `Quick test_file_backed;
    Alcotest.test_case "random faults deterministic" `Quick test_random_fault_deterministic;
  ]
