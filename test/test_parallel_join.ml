(* Randomized differential test for the segment-parallel Lazy-Join:
   for ~50 generated workloads (mixed inserts and removes), a database
   queried with a domain pool must return byte-identical results and
   stats to a sequentially queried twin — across engines LD/LS, both
   axes, and after [rebuild] and [pack_subtree].  The suite runs twice
   from test/main.ml: once with 1 domain (the sequential-fallback
   wiring) and once with 4 (true multi-domain execution). *)

open Lazy_xml
open Lxu_workload

let pair_list = Alcotest.(list (pair int int))
let check_int = Alcotest.(check int)

(* One workload: an insert schedule plus the tag pair to query.  Even
   seeds use the join-mix generator (controlled cross-segment
   percentages), odd seeds chop a random document. *)
let build_edits seed =
  if seed mod 2 = 0 then begin
    let spec =
      {
        Joinmix.segments = 6 + (seed mod 20);
        pairs_per_segment = 1 + (seed mod 4);
        cross_percent = seed * 13 mod 101;
        shape = (if seed mod 4 = 0 then Joinmix.Nested else Joinmix.Balanced);
      }
    in
    let sch = Joinmix.generate spec in
    (sch.Joinmix.edits, sch.Joinmix.anc_tag, sch.Joinmix.desc_tag)
  end
  else begin
    let params =
      { Generator.default_params with tags = [| "a"; "b"; "d" |]; text_chance_pct = 15 }
    in
    let text = Generator.generate_text ~params ~seed ~target_elements:(60 + (7 * (seed mod 9))) () in
    let shape = if seed mod 3 = 0 then Chopper.Nested else Chopper.Balanced in
    let edits = Chopper.chop ~text ~segments:(8 + (seed mod 12)) shape in
    (edits, "a", "d")
  end

(* Removes a randomly chosen whole element from every database in
   [dbs] (they hold identical documents, so one extent fits all). *)
let apply_random_removes st dbs n =
  for _ = 1 to n do
    let text = Lazy_db.text (List.hd dbs) in
    if String.length text > 0 then begin
      let nodes = Lxu_xml.Parser.parse_fragment text in
      let extents = ref [] in
      Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
          if e.Lxu_xml.Tree.e_start >= 0 then
            extents := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !extents);
      match !extents with
      | [] -> ()
      | l ->
        let arr = Array.of_list l in
        let s, e_ = arr.(Random.State.int st (Array.length arr)) in
        List.iter (fun db -> Lazy_db.remove db ~gp:s ~len:(e_ - s)) dbs
    end
  done

let compare_queries ~ctx seq par ~anc ~desc =
  List.iter
    (fun (axis, axis_name) ->
      let ctx = Printf.sprintf "%s %s" ctx axis_name in
      let sp, ss = Lazy_db.query seq ~axis ~anc ~desc () in
      let pp, ps = Lazy_db.query par ~axis ~anc ~desc () in
      Alcotest.check pair_list (ctx ^ " pairs") sp pp;
      check_int (ctx ^ " pair_count") ss.Lazy_db.pair_count ps.Lazy_db.pair_count;
      check_int (ctx ^ " cross_pairs") ss.Lazy_db.cross_pairs ps.Lazy_db.cross_pairs;
      check_int (ctx ^ " in_pairs") ss.Lazy_db.in_pairs ps.Lazy_db.in_pairs;
      check_int (ctx ^ " segments_skipped") ss.Lazy_db.segments_skipped
        ps.Lazy_db.segments_skipped;
      check_int (ctx ^ " elements_scanned") ss.Lazy_db.elements_scanned
        ps.Lazy_db.elements_scanned)
    [ (Lazy_db.Descendant, "desc"); (Lazy_db.Child, "child") ]

(* The raw join must agree pair-for-pair too (local labels, emission
   order), not just after the global translation and sort. *)
let compare_raw ~ctx db pool ~anc ~desc =
  match Lazy_db.log db with
  | None -> ()
  | Some log ->
    let sp, ss = Lxu_join.Lazy_join.run log ~anc ~desc () in
    let pp, ps = Lxu_join.Lazy_join.run ~pool log ~anc ~desc () in
    Alcotest.(check bool) (ctx ^ " raw pairs byte-identical") true (sp = pp);
    Alcotest.(check bool) (ctx ^ " raw stats identical") true (ss = ps)

let differential ~domains () =
  let pool = Lxu_util.Domain_pool.shared ~size:domains in
  for seed = 1 to 50 do
    let edits, anc, desc = build_edits seed in
    let st = Random.State.make [| 0xbeef; seed; domains |] in
    List.iter
      (fun (engine, ename) ->
        let ctx = Printf.sprintf "seed %d %s d%d" seed ename domains in
        let seq = Lazy_db.create ~engine ~domains:1 () in
        let par = Lazy_db.create ~engine ~domains () in
        List.iter (fun (gp, frag) -> Lazy_db.insert seq ~gp frag; Lazy_db.insert par ~gp frag) edits;
        apply_random_removes st [ seq; par ] (1 + (seed mod 3));
        compare_queries ~ctx seq par ~anc ~desc;
        compare_raw ~ctx:(ctx ^ " raw") seq pool ~anc ~desc;
        (* Packing a subtree re-segments the document; results must
           still agree. *)
        let len = Lazy_db.doc_length seq in
        if len > 0 then begin
          Lazy_db.pack_subtree seq ~gp:0 ~len;
          Lazy_db.pack_subtree par ~gp:0 ~len;
          compare_queries ~ctx:(ctx ^ " packed") seq par ~anc ~desc
        end;
        (* Rebuild collapses to a single segment: the parallel path
           must degrade to the same single in-segment join. *)
        Lazy_db.rebuild seq;
        Lazy_db.rebuild par;
        compare_queries ~ctx:(ctx ^ " rebuilt") seq par ~anc ~desc)
      [ (Lazy_db.LD, "LD"); (Lazy_db.LS, "LS") ]
  done

let test_missing_tags () =
  let db = Lazy_db.create ~domains:4 () in
  Lazy_db.insert db ~gp:0 "<a><b/></a>";
  check_int "absent desc" 0 (Lazy_db.count db ~anc:"a" ~desc:"zz" ());
  check_int "absent anc" 0 (Lazy_db.count db ~anc:"zz" ~desc:"b" ())

let test_pool_basics () =
  let pool = Lxu_util.Domain_pool.create ~size:4 () in
  let sq = Lxu_util.Domain_pool.map pool 1000 (fun i -> i * i) in
  Alcotest.(check int) "map length" 1000 (Array.length sq);
  Array.iteri (fun i v -> check_int "map slot" (i * i) v) sq;
  (* Exceptions propagate to await. *)
  Alcotest.check_raises "task exception surfaces" Exit (fun () ->
      ignore (Lxu_util.Domain_pool.map pool 64 (fun i -> if i = 13 then raise Exit else i)));
  (* The pool survives a failed task set. *)
  let again = Lxu_util.Domain_pool.map pool 10 (fun i -> i + 1) in
  check_int "pool reusable after failure" 10 again.(9);
  Lxu_util.Domain_pool.shutdown pool;
  Lxu_util.Domain_pool.shutdown pool (* idempotent *)

let suite =
  [
    Alcotest.test_case "domain pool map/await/shutdown" `Quick test_pool_basics;
    Alcotest.test_case "differential LXU_DOMAINS=1" `Slow (fun () -> differential ~domains:1 ());
    Alcotest.test_case "differential LXU_DOMAINS=4" `Slow (fun () -> differential ~domains:4 ());
    Alcotest.test_case "parallel query on missing tags" `Quick test_missing_tags;
  ]
