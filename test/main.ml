let () =
  Alcotest.run "lazy_xml"
    [
      ("bignum", Test_bignum.suite);
      ("btree", Test_btree.suite);
      ("xml", Test_xml.suite);
      ("vec", Test_vec.suite);
      ("labeling", Test_labeling.suite);
      ("seglog", Test_seglog.suite);
      ("er_node", Test_er_node.suite);
      ("element_index", Test_element_index.suite);
      ("tag_list", Test_tag_list.suite);
      ("synopsis", Test_synopsis.suite);
      ("plan", Test_plan.suite);
      ("join", Test_join.suite);
      ("join2", Test_join2.suite);
      ("path_query", Test_path_query.suite);
      ("attributes", Test_attributes.suite);
      ("snapshot", Test_snapshot.suite);
      ("shared_db", Test_shared_db.suite);
      ("boxes", Test_boxes.suite);
      ("core", Test_core.suite);
      ("workload", Test_workload.suite);
      ("parallel_join", Test_parallel_join.suite);
      ("seg_cache", Test_seg_cache.suite);
      ("storage", Test_storage.suite);
      ("paged", Test_paged.suite);
      ("recovery", Test_recovery.suite);
      ("governor", Test_governor.suite);
      ("update_batch", Test_update_batch.suite);
      ("mvcc", Test_mvcc.suite);
      ("maint", Test_maint.suite);
    ]
