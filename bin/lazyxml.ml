(* lazyxml — command-line front end to the lazy XML database.

   The CLI operates on XML document files.  For each command it loads
   the document into the chosen engine (optionally chopped into
   segments to exercise the lazy machinery), performs the operation,
   and for edits writes the document back.

     lazyxml generate --kind xmark --out doc.xml
     lazyxml stats doc.xml --segments 50
     lazyxml query doc.xml --anc person --desc phone --engine ld
     lazyxml insert doc.xml --at 123 --fragment '<x/>'
     lazyxml remove doc.xml --at 123 --len 4
     lazyxml chop doc.xml --segments 20 --shape nested *)

open Cmdliner
open Lazy_xml

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let engine_of_string = function
  | "ld" -> Lazy_db.LD
  | "ls" -> Lazy_db.LS
  | "std" -> Lazy_db.STD
  | s -> failwith (Printf.sprintf "unknown engine %S (expected ld, ls or std)" s)

let shape_of_string = function
  | "balanced" -> Lxu_workload.Chopper.Balanced
  | "nested" -> Lxu_workload.Chopper.Nested
  | s -> failwith (Printf.sprintf "unknown shape %S (expected balanced or nested)" s)

let load ?(index_attributes = false) ~engine ~segments ~shape path =
  let text = read_file path in
  let db = Lazy_db.create ~engine ~index_attributes () in
  if segments <= 1 then Lazy_db.insert db ~gp:0 text
  else
    List.iter
      (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
      (Lxu_workload.Chopper.chop ~text ~segments shape);
  (db, text)

(* --- common arguments ------------------------------------------------ *)

let doc_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file.")

let engine_arg =
  Arg.(value & opt string "ld" & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Index engine: ld (lazy dynamic), ls (lazy static) or std (traditional relabeling).")

let segments_arg =
  Arg.(value & opt int 1 & info [ "segments" ] ~docv:"N"
         ~doc:"Chop the document into up to $(docv) segments when loading.")

let shape_arg =
  Arg.(value & opt string "balanced" & info [ "shape" ] ~docv:"SHAPE"
         ~doc:"Chopping shape: balanced or nested.")

let storage_arg =
  Arg.(value & opt (some string) None & info [ "storage" ] ~docv:"KIND"
         ~doc:"Index storage backend: mem (OCaml heap) or paged (page-backed B+-trees, \
               buffer pool bounded by LXU_POOL_BYTES).  Defaults to the LXU_STORAGE \
               environment variable, or mem.")

let storage_of_string = function
  | None -> None
  | Some "mem" -> Some `Mem
  | Some "paged" -> Some `Paged
  | Some s -> failwith (Printf.sprintf "unknown storage %S (expected mem or paged)" s)

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Abandon the evaluation after $(docv) milliseconds; exits with \
               status 124 when the deadline trips.")

(* Runs [f] under an optional deadline guard (cooperatively checked by
   the join loops): a trip prints the timeout and exits like
   timeout(1) does. *)
let with_deadline deadline_ms f =
  let guard =
    Option.map
      (fun ms -> Lxu_util.Deadline.guard ~deadline:(Lxu_util.Deadline.after (ms /. 1000.)) ())
      deadline_ms
    |> Option.join
  in
  try f guard
  with Lxu_util.Deadline.Cancel.Cancelled _ ->
    Printf.eprintf "timed out after %.1f ms\n" (Option.get deadline_ms);
    exit 124

(* --- query ------------------------------------------------------------ *)

let query_cmd =
  let anc = Arg.(required & opt (some string) None & info [ "anc" ] ~doc:"Ancestor tag.") in
  let desc = Arg.(required & opt (some string) None & info [ "desc" ] ~doc:"Descendant tag (use @name for attributes with --attributes).") in
  let child = Arg.(value & flag & info [ "child" ] ~doc:"Parent/child axis instead of ancestor//descendant.") in
  let show = Arg.(value & flag & info [ "pairs" ] ~doc:"Print every result pair.") in
  let attrs = Arg.(value & flag & info [ "attributes" ] ~doc:"Index attributes as @name subelements.") in
  let run doc engine segments shape anc desc child show attrs deadline_ms =
    let db, _ =
      load ~engine:(engine_of_string engine) ~index_attributes:attrs ~segments
        ~shape:(shape_of_string shape) doc
    in
    let axis = if child then Lazy_db.Child else Lazy_db.Descendant in
    let t0 = Unix.gettimeofday () in
    let pairs, stats =
      with_deadline deadline_ms (fun guard -> Lazy_db.query db ~axis ?guard ~anc ~desc ())
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Printf.printf "%s%s%s: %d pairs in %.2f ms (%d cross-segment, %d in-segment, %d segments skipped)\n"
      anc (if child then "/" else "//") desc stats.Lazy_db.pair_count ms
      stats.Lazy_db.cross_pairs stats.Lazy_db.in_pairs stats.Lazy_db.segments_skipped;
    if show then List.iter (fun (a, d) -> Printf.printf "  %d -> %d\n" a d) pairs
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a structural join over a document.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ anc $ desc $ child $ show $ attrs $ deadline_arg)

(* --- stats ------------------------------------------------------------- *)

let stats_cmd =
  let run doc engine segments shape =
    let db, text = load ~engine:(engine_of_string engine) ~segments ~shape:(shape_of_string shape) doc in
    Printf.printf "document bytes : %d\n" (String.length text);
    Printf.printf "elements       : %d\n" (Lazy_db.element_count db);
    Printf.printf "segments       : %d\n" (Lazy_db.segment_count db);
    Printf.printf "index bytes    : %d\n" (Lazy_db.size_bytes db);
    match Lazy_db.log db with
    | None -> ()
    | Some log ->
      Printf.printf "  sb-tree      : %d bytes\n" (Lxu_seglog.Update_log.sb_size_bytes log);
      Printf.printf "  tag-list     : %d bytes\n" (Lxu_seglog.Update_log.tag_list_size_bytes log)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print index statistics for a document.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg)

(* --- insert / remove ---------------------------------------------------- *)

(* Parses a batch file: one edit per line, [gp<TAB>path] where [path]
   names a file holding the XML fragment to insert at [gp].  Blank
   lines and [#] comments are skipped. *)
let read_batch_file path =
  let ic = open_in path in
  let edits = ref [] in
  let lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then
             match String.index_opt line '\t' with
             | None ->
               failwith
                 (Printf.sprintf "%s:%d: expected gp<TAB>fragment-file" path !lineno)
             | Some tab ->
               let gp =
                 match int_of_string_opt (String.trim (String.sub line 0 tab)) with
                 | Some gp -> gp
                 | None ->
                   failwith (Printf.sprintf "%s:%d: malformed byte position" path !lineno)
               in
               let frag_path =
                 String.trim (String.sub line (tab + 1) (String.length line - tab - 1))
               in
               edits := (gp, read_file frag_path) :: !edits
         done
       with End_of_file -> ());
      List.rev !edits)

let insert_cmd =
  let at = Arg.(value & opt (some int) None & info [ "at" ] ~docv:"POS" ~doc:"Byte position.") in
  let frag = Arg.(value & opt (some string) None & info [ "fragment" ] ~doc:"XML fragment to insert.") in
  let batch = Arg.(value & opt (some file) None & info [ "batch" ] ~docv:"FILE"
                     ~doc:"Apply a batch of inserts through the group-committed write path: \
                           one edit per line in $(docv), formatted as gp<TAB>fragment-file, \
                           positions interpreted after the preceding edits of the batch.") in
  let run doc engine segments shape at frag batch =
    let edits =
      match (batch, at, frag) with
      | Some path, None, None -> read_batch_file path
      | None, Some at, Some frag -> [ (at, frag) ]
      | Some _, _, _ -> failwith "--batch excludes --at/--fragment"
      | None, _, _ -> failwith "need either --batch or both --at and --fragment"
    in
    let db, _ = load ~engine:(engine_of_string engine) ~segments ~shape:(shape_of_string shape) doc in
    let t0 = Unix.gettimeofday () in
    Lazy_db.insert_many db edits;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let bytes = List.fold_left (fun acc (_, f) -> acc + String.length f) 0 edits in
    (match edits with
    | [ (at, frag) ] ->
      Printf.printf "inserted %d bytes at %d in %.3f ms (%d segments, index %d bytes)\n"
        (String.length frag) at ms (Lazy_db.segment_count db) (Lazy_db.size_bytes db)
    | _ ->
      Printf.printf "inserted %d edits (%d bytes) in %.3f ms (%d segments, index %d bytes)\n"
        (List.length edits) bytes ms (Lazy_db.segment_count db) (Lazy_db.size_bytes db));
    match Lazy_db.log db with
    | Some _ -> write_file doc (Lazy_db.text db)
    | None ->
      (* STD keeps no text; reapply the edits to the file directly. *)
      let text =
        List.fold_left
          (fun text (at, frag) ->
            String.sub text 0 at ^ frag ^ String.sub text at (String.length text - at))
          (read_file doc) edits
      in
      write_file doc text
  in
  Cmd.v (Cmd.info "insert" ~doc:"Insert one fragment — or a batch of them — and write the document back.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ at $ frag $ batch)

let remove_cmd =
  let at = Arg.(required & opt (some int) None & info [ "at" ] ~docv:"POS" ~doc:"Byte position.") in
  let len = Arg.(required & opt (some int) None & info [ "len" ] ~docv:"LEN" ~doc:"Byte count.") in
  let run doc engine segments shape at len =
    let db, text = load ~engine:(engine_of_string engine) ~segments ~shape:(shape_of_string shape) doc in
    let t0 = Unix.gettimeofday () in
    Lazy_db.remove db ~gp:at ~len;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Printf.printf "removed %d bytes at %d in %.3f ms (%d segments remain)\n" len at ms
      (Lazy_db.segment_count db);
    match Lazy_db.log db with
    | Some _ -> write_file doc (Lazy_db.text db)
    | None -> write_file doc (String.sub text 0 at ^ String.sub text (at + len) (String.length text - at - len))
  in
  Cmd.v (Cmd.info "remove" ~doc:"Remove a byte range and write the document back.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ at $ len)

(* --- generate ------------------------------------------------------------ *)

let generate_cmd =
  let kind = Arg.(value & opt string "xmark" & info [ "kind" ] ~docv:"KIND"
                    ~doc:"Document kind: xmark, synthetic or chain.") in
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let size = Arg.(value & opt int 1000 & info [ "size" ] ~docv:"N"
                    ~doc:"Persons (xmark), elements (synthetic) or depth (chain).") in
  let run kind out seed size =
    let text =
      match kind with
      | "xmark" -> Lxu_workload.Xmark.generate_text ~persons:size ~seed ()
      | "synthetic" -> Lxu_workload.Generator.generate_text ~seed ~target_elements:size ()
      | "chain" ->
        Lxu_workload.Generator.deep_chain ~tags:[| "a"; "b"; "c" |] ~depth:size ~payload:"x"
      | s -> failwith (Printf.sprintf "unknown kind %S" s)
    in
    write_file out text;
    Printf.printf "wrote %d bytes to %s\n" (String.length text) out
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a test document.")
    Term.(const run $ kind $ out $ seed $ size)

(* --- path ----------------------------------------------------------------- *)

let path_cmd =
  let expr = Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH"
                    ~doc:"Path expression, e.g. //person/profile//interest or //person/@id.") in
  let attrs = Arg.(value & flag & info [ "attributes" ] ~doc:"Index attributes as @name subelements.") in
  let holistic = Arg.(value & flag & info [ "holistic" ] ~doc:"Use the PathStack strategy.") in
  let run doc engine segments shape expr attrs holistic deadline_ms =
    let text = read_file doc in
    let db = Lazy_db.create ~engine:(engine_of_string engine) ~index_attributes:attrs () in
    if segments <= 1 then Lazy_db.insert db ~gp:0 text
    else
      List.iter
        (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
        (Lxu_workload.Chopper.chop ~text ~segments (shape_of_string shape));
    let strategy = if holistic then Path_query.Holistic else Path_query.Pairwise in
    let t0 = Unix.gettimeofday () in
    let matches =
      with_deadline deadline_ms (fun guard -> Path_query.eval_string ~strategy ?guard db expr)
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Printf.printf "%s: %d matches in %.2f ms
" expr (List.length matches) ms;
    List.iter (fun (s, e) -> Printf.printf "  [%d, %d)
" s e) matches
  in
  Cmd.v (Cmd.info "path" ~doc:"Evaluate a path expression over a document.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ expr $ attrs $ holistic $ deadline_arg)

(* --- explain --------------------------------------------------------------- *)

let explain_cmd =
  let expr = Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH"
                    ~doc:"Path expression, e.g. //person/profile//interest.") in
  let attrs = Arg.(value & flag & info [ "attributes" ] ~doc:"Index attributes as @name subelements.") in
  let run doc engine segments shape expr attrs deadline_ms =
    let text = read_file doc in
    let db = Lazy_db.create ~engine:(engine_of_string engine) ~index_attributes:attrs () in
    if segments <= 1 then Lazy_db.insert db ~gp:0 text
    else
      List.iter
        (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
        (Lxu_workload.Chopper.chop ~text ~segments (shape_of_string shape));
    let steps = Path_query.parse_exn expr in
    let t0 = Unix.gettimeofday () in
    let plan, matches =
      with_deadline deadline_ms (fun guard -> Path_query.explain ?guard db steps)
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    print_string plan;
    if plan <> "" && plan.[String.length plan - 1] <> '\n' then print_newline ();
    Printf.printf "%s: %d matches in %.2f ms\n" expr (List.length matches) ms
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the cost-based plan chosen for a path expression — join order, engine \
             per join, estimated vs actual cardinalities — then run it.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ expr $ attrs $ deadline_arg)

(* --- snapshots -------------------------------------------------------------- *)

let save_cmd =
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Snapshot file.") in
  let run doc engine segments shape out =
    let db, _ = load ~engine:(engine_of_string engine) ~segments ~shape:(shape_of_string shape) doc in
    Lazy_db.save db out;
    Printf.printf "saved %d segments (%d elements) to %s
"
      (Lazy_db.segment_count db) (Lazy_db.element_count db) out
  in
  Cmd.v (Cmd.info "save" ~doc:"Load a document and write an index snapshot.")
    Term.(const run $ doc_arg $ engine_arg $ segments_arg $ shape_arg $ out)

let restore_cmd =
  let snap = Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAPSHOT"
                    ~doc:"Snapshot file, or a WAL durability directory for point-in-time restore.") in
  let lsn = Arg.(value & opt (some int) None & info [ "lsn" ] ~docv:"N"
                   ~doc:"Point-in-time bound: rebuild the state as of committed LSN $(docv) \
                         (requires a WAL directory; default: everything committed).") in
  let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
                   ~doc:"Also write the restored document text to $(docv).") in
  let run snap lsn out =
    let db =
      if Sys.is_directory snap then begin
        let lsn = Option.value lsn ~default:max_int in
        let db, report = Lazy_db.restore_to ~lsn snap in
        Printf.printf "restored %s as of lsn %d: %d wal record(s) replayed, %d skipped\n" snap
          report.Lxu_storage.Recovery.last_lsn report.Lxu_storage.Recovery.records_applied
          report.Lxu_storage.Recovery.records_skipped;
        db
      end
      else begin
        (match lsn with
        | Some _ -> failwith "--lsn needs a WAL directory, not an index snapshot file"
        | None -> ());
        Lazy_db.load snap
      end
    in
    Printf.printf "restored %d segments, %d elements, %d bytes of document\n"
      (Lazy_db.segment_count db) (Lazy_db.element_count db) (Lazy_db.doc_length db);
    match out with
    | None -> ()
    | Some path ->
      write_file path (Lazy_db.text db);
      Printf.printf "wrote %d bytes to %s\n" (Lazy_db.doc_length db) path
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:"Restore an index snapshot, or a WAL directory as of a chosen LSN (--lsn).")
    Term.(const run $ snap $ lsn $ out)

(* --- durability: checkpoint / recover ------------------------------------ *)

let print_report dir (r : Lxu_storage.Recovery.report) =
  Printf.printf "recovered %s: snapshot lsn %d, %d wal record(s) replayed, %d skipped\n" dir
    r.Lxu_storage.Recovery.snapshot_lsn r.Lxu_storage.Recovery.records_applied
    r.Lxu_storage.Recovery.records_skipped;
  match r.Lxu_storage.Recovery.corruption with
  | None -> ()
  | Some why ->
    Printf.printf "  truncated %d corrupt byte(s): %s\n"
      (r.Lxu_storage.Recovery.total_bytes - r.Lxu_storage.Recovery.valid_bytes) why

let checkpoint_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
                   ~doc:"WAL durability directory.") in
  let from = Arg.(value & opt (some file) None & info [ "from" ] ~docv:"DOC"
                    ~doc:"Initialise $(i,DIR) fresh from this XML document before checkpointing \
                          (otherwise $(i,DIR) is recovered first).") in
  let run dir engine segments shape from storage =
    let storage = storage_of_string storage in
    let db =
      match from with
      | Some doc ->
        let text = read_file doc in
        let db =
          Lazy_db.create ~engine:(engine_of_string engine) ~durability:(`Wal dir) ?storage ()
        in
        if segments <= 1 then Lazy_db.insert db ~gp:0 text
        else
          List.iter
            (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
            (Lxu_workload.Chopper.chop ~text ~segments (shape_of_string shape));
        db
      | None ->
        let db, report = Lazy_db.recover ?storage dir in
        print_report dir report;
        db
    in
    Lazy_db.checkpoint db;
    Lazy_db.close db;
    Printf.printf "checkpointed %d segment(s), %d element(s), %d byte(s) into %s\n"
      (Lazy_db.segment_count db) (Lazy_db.element_count db) (Lazy_db.doc_length db) dir
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Snapshot a WAL directory's database and rotate its log to empty.")
    Term.(const run $ dir $ engine_arg $ segments_arg $ shape_arg $ from $ storage_arg)

let recover_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
                   ~doc:"WAL durability directory.") in
  let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
                   ~doc:"Also write the recovered document text to $(docv).") in
  let run dir out storage =
    let db, report = Lazy_db.recover ?storage:(storage_of_string storage) dir in
    print_report dir report;
    Printf.printf "state: %d segment(s), %d element(s), %d byte(s) of document\n"
      (Lazy_db.segment_count db) (Lazy_db.element_count db) (Lazy_db.doc_length db);
    (match out with
    | None -> ()
    | Some path ->
      write_file path (Lazy_db.text db);
      Printf.printf "wrote %d bytes to %s\n" (Lazy_db.doc_length db) path);
    Lazy_db.close db
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a database from snapshot + WAL, repairing a torn or corrupt tail.")
    Term.(const run $ dir $ out $ storage_arg)

(* --- info ------------------------------------------------------------------ *)

let info_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
                   ~doc:"WAL durability directory.") in
  let paths = Arg.(value & opt int 0 & info [ "paths" ] ~docv:"N"
                     ~doc:"Also list the $(docv) heaviest root-to-element paths of the \
                           synopsis.") in
  let run dir storage paths =
    let db, report = Lazy_db.recover ?storage:(storage_of_string storage) dir in
    print_report dir report;
    Printf.printf "document bytes  : %d\n" (Lazy_db.doc_length db);
    Printf.printf "elements        : %d\n" (Lazy_db.element_count db);
    Printf.printf "segments        : %d\n" (Lazy_db.segment_count db);
    Printf.printf "index bytes     : %d\n" (Lazy_db.size_bytes db);
    (match Lazy_db.wal_bytes db with
    | Some b -> Printf.printf "wal bytes       : %d\n" b
    | None -> ());
    Printf.printf "storage         : %s\n"
      (match Lazy_db.storage_kind db with `Mem -> "mem" | `Paged -> "paged");
    (match Lazy_db.page_stats db with
    | None -> ()
    | Some s ->
      let p = s.Lxu_storage.Page_store.pool in
      Printf.printf "page store      : %d pages x %d bytes (gen %d, checkpoint lsn %d)\n"
        s.Lxu_storage.Page_store.pages s.Lxu_storage.Page_store.page_size
        s.Lxu_storage.Page_store.generation s.Lxu_storage.Page_store.ckpt_lsn;
      Printf.printf "  free lists    : %d reusable, %d pending, %d fresh this epoch\n"
        s.Lxu_storage.Page_store.reusable_pages s.Lxu_storage.Page_store.pending_pages
        s.Lxu_storage.Page_store.fresh_pages;
      Printf.printf "  page traffic  : %d alloc(s), %d free(s), %d cow(s)\n"
        s.Lxu_storage.Page_store.allocs s.Lxu_storage.Page_store.frees
        s.Lxu_storage.Page_store.cows;
      Printf.printf "  buffer pool   : %d/%d bytes, %d frame(s) (%d dirty, %d pinned)\n"
        p.Lxu_storage.Buffer_pool.bytes p.Lxu_storage.Buffer_pool.max_bytes
        p.Lxu_storage.Buffer_pool.frames p.Lxu_storage.Buffer_pool.dirty_frames
        p.Lxu_storage.Buffer_pool.pinned_frames;
      Printf.printf "  pool traffic  : %d lookup(s), %d hit(s), %d miss(es), %d eviction(s), \
                     %d writeback(s)\n"
        p.Lxu_storage.Buffer_pool.lookups p.Lxu_storage.Buffer_pool.hits
        p.Lxu_storage.Buffer_pool.misses p.Lxu_storage.Buffer_pool.evictions
        p.Lxu_storage.Buffer_pool.writebacks);
    (match Lazy_db.log db with
    | None -> ()
    | Some log ->
      let f = Lxu_seglog.Update_log.frag_stats log in
      Printf.printf "fragmentation   : %d live / %d dead segment(s), er depth %d, %d dirty \
                     tag(s), widest tag %d segment(s)\n"
        f.Lxu_seglog.Update_log.live_segments f.Lxu_seglog.Update_log.dead_segments
        f.Lxu_seglog.Update_log.er_depth f.Lxu_seglog.Update_log.dirty_tags
        f.Lxu_seglog.Update_log.max_tag_segments;
      let syn = Lxu_seglog.Update_log.synopsis log in
      Printf.printf "synopsis        : %d distinct path(s), %d element(s), %d bytes\n"
        (Lxu_seglog.Path_synopsis.distinct_paths syn)
        (Lxu_seglog.Path_synopsis.elements syn)
        (Lxu_seglog.Path_synopsis.size_bytes syn);
      if paths > 0 then begin
        let reg = Lxu_seglog.Update_log.registry log in
        let all = Lxu_seglog.Path_synopsis.to_sorted_list syn in
        let heaviest = List.sort (fun (_, a) (_, b) -> compare b a) all in
        List.iteri
          (fun i (path, n) ->
            if i < paths then
              Printf.printf "  %8d  /%s\n" n
                (String.concat "/"
                   (List.map (Lxu_seglog.Tag_registry.name reg) path)))
          heaviest
      end);
    Lazy_db.close db
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Print store statistics for a WAL directory: pages, buffer pool, WAL size, \
             fragmentation and path-synopsis summary.")
    Term.(const run $ dir $ storage_arg $ paths)

(* --- maintenance: compact / backup ---------------------------------------- *)

let compact_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
                   ~doc:"WAL durability directory.") in
  let pack_segments = Arg.(value & opt int 8 & info [ "pack-segments" ] ~docv:"N"
                             ~doc:"Pack subtrees holding more than $(docv) live segments.") in
  let pack_depth = Arg.(value & opt int 4 & info [ "pack-depth" ] ~docv:"N"
                          ~doc:"Pack subtrees with ER chains at least $(docv) deep.") in
  let run dir pack_segments pack_depth =
    let db, report = Lazy_db.recover dir in
    print_report dir report;
    let before = Lazy_db.segment_count db in
    let cfg =
      { Maintainer.default_config with
        pack_min_segments = pack_segments; pack_min_depth = pack_depth }
    in
    let m = Maintainer.of_db ~config:cfg db in
    let jobs = Maintainer.run_until_idle m in
    (* Truncate the WAL regardless of size: a compacted store should
       restart from its snapshot, not replay history. *)
    Lazy_db.checkpoint db;
    Lazy_db.close db;
    Printf.printf "compacted %s: %d maintenance job(s), %d -> %d segment(s), wal truncated\n"
      dir jobs before (Lazy_db.segment_count db)
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Pay down a WAL directory's maintenance debt: pack fragmented subtrees, merge \
             tag lists, checkpoint and truncate the log.")
    Term.(const run $ dir $ pack_segments $ pack_depth)

let backup_cmd =
  let src = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
                   ~doc:"Live WAL durability directory.") in
  let dst = Arg.(required & pos 1 (some string) None & info [] ~docv:"DEST"
                   ~doc:"Backup target directory (created if missing).") in
  let run src dst =
    let db, report = Lazy_db.recover src in
    print_report src report;
    let lsn = Lazy_db.backup db ~dir:dst in
    Lazy_db.close db;
    Printf.printf "backed up %s through lsn %d into %s (restore any committed prefix with \
                   'lazyxml restore %s --lsn N')\n"
      src lsn dst dst
  in
  Cmd.v
    (Cmd.info "backup"
       ~doc:"Ship a WAL directory's snapshot + log to a backup directory, atomically.")
    Term.(const run $ src $ dst)

(* --- chop ----------------------------------------------------------------- *)

let chop_cmd =
  let run doc segments shape =
    let text = read_file doc in
    let edits = Lxu_workload.Chopper.chop ~text ~segments (shape_of_string shape) in
    Printf.printf "%d segments:\n" (List.length edits);
    List.iter
      (fun (gp, frag) -> Printf.printf "  insert %6d bytes at %d\n" (String.length frag) gp)
      edits
  in
  Cmd.v (Cmd.info "chop" ~doc:"Show the segment insertion schedule for a document.")
    Term.(const run $ doc_arg $ segments_arg $ shape_arg)

let () =
  let info =
    Cmd.info "lazyxml" ~version:"1.0.0"
      ~doc:"Lazy XML updates and segment-aware structural joins (SIGMOD 2005 reproduction)."
  in
  (* [Failure] is the commands' user-error channel (bad --lsn bound,
     malformed batch file, ...): report it as a message, not a crash. *)
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [ query_cmd; stats_cmd; insert_cmd; remove_cmd; generate_cmd; chop_cmd; path_cmd;
           explain_cmd; save_cmd; restore_cmd; checkpoint_cmd; recover_cmd; info_cmd;
           compact_cmd; backup_cmd ])
  with
  | code -> exit code
  | exception Failure msg ->
    Printf.eprintf "lazyxml: %s\n" msg;
    exit 1
