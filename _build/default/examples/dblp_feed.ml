(* The paper's DBLP motivation (§1): a bibliography database receiving
   daily batches of new publication records.  Updating after every
   single element would be hopeless; instead each day's batch arrives
   as one XML segment appended to the database, and the update log
   absorbs it without touching any existing label.

   Run with:  dune exec examples/dblp_feed.exe *)

open Lazy_xml
open Lxu_workload

let venues = [| "sigmod"; "vldb"; "icde"; "edbt" |]

(* One day's worth of publications as a well-formed segment. *)
let daily_batch rng day =
  let paper i =
    let authors =
      List.init
        (1 + Rng.int rng 3)
        (fun a -> Printf.sprintf "<author>author-%d-%d-%d</author>" day i a)
    in
    Printf.sprintf
      "<inproceedings key=\"conf/%s/%d-%d\"><title>Paper %d of day %d</title>%s<year>2026</year></inproceedings>"
      (Rng.pick rng venues) day i i day
      (String.concat "" authors)
  in
  String.concat "" (List.init (3 + Rng.int rng 5) paper)

let () =
  let rng = Rng.create 2026 in
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<dblp></dblp>";
  let append_point () = Lazy_db.doc_length db - String.length "</dblp>" in

  (* Thirty days of feeds. *)
  for day = 1 to 30 do
    Lazy_db.insert db ~gp:(append_point ()) (daily_batch rng day)
  done;

  Printf.printf "after 30 daily batches:\n";
  Printf.printf "  document bytes : %d\n" (Lazy_db.doc_length db);
  Printf.printf "  elements       : %d\n" (Lazy_db.element_count db);
  Printf.printf "  segments       : %d (one per batch + the skeleton)\n"
    (Lazy_db.segment_count db);
  Printf.printf "  update-log size: %d bytes (stays tiny: per-segment, not per-element)\n\n"
    (Lazy_db.size_bytes db);

  (* Bibliographic queries are structural joins. *)
  List.iter
    (fun (anc, desc) ->
      let n = Lazy_db.count db ~anc ~desc () in
      Printf.printf "  %s//%s -> %d pairs\n" anc desc n)
    [ ("dblp", "inproceedings"); ("inproceedings", "author"); ("inproceedings", "title") ];

  (* A retraction: remove the first paper of the newest batch. *)
  let text = Lazy_db.text db in
  let find needle =
    let n = String.length needle in
    let rec go i = if String.sub text i n = needle then i else go (i + 1) in
    go 0
  in
  let s = find "<inproceedings key=\"conf/" in
  (* The record ends at the matching close tag. *)
  let e = find "</inproceedings>" + String.length "</inproceedings>" in
  Lazy_db.remove db ~gp:s ~len:(e - s);
  Printf.printf "\nafter one retraction: inproceedings//author -> %d pairs\n"
    (Lazy_db.count db ~anc:"inproceedings" ~desc:"author" ());

  (* Maintenance hours: collapse the log. *)
  Lazy_db.rebuild db;
  Printf.printf "after nightly rebuild: %d segment, queries unchanged: %d pairs\n"
    (Lazy_db.segment_count db)
    (Lazy_db.count db ~anc:"inproceedings" ~desc:"author" ())
