(* A news portal: concurrent readers querying while the editorial feed
   keeps publishing — exercising the three capabilities beyond single
   joins: path expressions with twig predicates, the reader-writer
   wrapper (the paper's §6 concurrency direction), and snapshots.

   Run with:  dune exec examples/news_portal.exe *)

open Lazy_xml
open Lxu_workload

let sections = [| "world"; "tech"; "sport" |]

let article rng id =
  Printf.sprintf
    "<article id=\"a%d\"><headline>story %d</headline><body><p>%s</p><p>%s</p></body>%s</article>"
    id id
    (String.concat " " (List.init 6 (fun _ -> "word")))
    (String.concat " " (List.init 4 (fun _ -> "word")))
    (if Rng.bool rng then "<media><image/><caption>c</caption></media>" else "")

let () =
  let rng = Rng.create 11 in
  let db = Shared_db.create ~index_attributes:true () in
  Shared_db.insert db ~gp:0
    "<portal><world></world><tech></tech><sport></sport></portal>";

  (* Editorial feed: 120 articles published into random sections, one
     segment each, from a writer domain. *)
  let publisher =
    Domain.spawn (fun () ->
        for id = 1 to 120 do
          let section = Rng.pick rng sections in
          Shared_db.write db (fun inner ->
              let text = Lazy_db.text inner in
              let marker = "<" ^ section ^ ">" in
              let m = String.length marker in
              let rec find i = if String.sub text i m = marker then i + m else find (i + 1) in
              Lazy_db.insert inner ~gp:(find 0) (article rng id))
        done)
  in

  (* Readers keep asking twig questions while publishing runs. *)
  let reader name path =
    Domain.spawn (fun () ->
        (* Keep polling until the feed is complete. *)
        let last = ref 0 in
        while Shared_db.path_count db "//article" < 120 do
          last := Shared_db.path_count db path
        done;
        last := Shared_db.path_count db path;
        (name, path, !last))
  in
  let readers =
    [
      reader "illustrated" "//article[media]/headline";
      reader "tech stories" "//tech//article";
      reader "captioned images" "//media[image][caption]";
    ]
  in
  Domain.join publisher;
  List.iter
    (fun d ->
      let name, path, last = Domain.join d in
      Printf.printf "reader %-18s %-32s last saw %d matches\n" name path last)
    readers;

  (* Final consistent answers. *)
  Printf.printf "\nfinal state: %d articles published\n"
    (Shared_db.path_count db "//article");
  List.iter
    (fun path -> Printf.printf "  %-40s -> %d\n" path (Shared_db.path_count db path))
    [
      "//article[media]/headline";
      "//article/@id";
      "/portal/tech/article";
      "//media[image][caption]";
      "//article[media[caption]]//p";
    ];
  let reads, writes = Shared_db.stats db in
  Printf.printf "lock traffic: %d shared reads, %d exclusive writes\n" reads writes;

  (* Nightly snapshot: immutable local labels survive a save/load
     round trip byte for byte. *)
  let snap = Filename.temp_file "portal" ".snap" in
  Shared_db.read db (fun inner -> Lazy_db.save inner snap);
  let restored = Lazy_db.load snap in
  Sys.remove snap;
  Printf.printf "\nsnapshot restored: %d segments, answers intact: %b\n"
    (Lazy_db.segment_count restored)
    (Path_query.count restored "//article[media]/headline"
    = Shared_db.path_count db "//article[media]/headline")
