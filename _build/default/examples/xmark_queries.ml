(* The paper's Figure 14/15 setting, interactively: generate an
   XMark-like auction document, chop it into segments, load it into
   all three engines and compare the five queries.

   Run with:  dune exec examples/xmark_queries.exe *)

open Lazy_xml
open Lxu_workload

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let persons = try int_of_string Sys.argv.(1) with _ -> 400 in
  Printf.printf "generating XMark-like document (%d persons)...\n%!" persons;
  let text = Xmark.generate_text ~persons ~seed:42 () in
  let edits = Chopper.chop ~text ~segments:100 Chopper.Balanced in
  Printf.printf "document: %d bytes, %d segments\n%!" (String.length text)
    (Chopper.segment_count edits);

  let load engine =
    let db = Lazy_db.create ~engine () in
    let (), ms = time (fun () -> List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits) in
    (db, ms)
  in
  let ld, ld_ms = load Lazy_db.LD in
  let ls, ls_ms = load Lazy_db.LS in
  let std, std_ms = load Lazy_db.STD in
  Printf.printf "load time: LD %.1f ms | LS %.1f ms | STD %.1f ms\n\n%!" ld_ms ls_ms std_ms;

  Printf.printf "%-4s %-20s %10s %12s %12s %12s\n" "id" "query" "pairs" "LD ms" "LS ms" "STD ms";
  List.iter
    (fun (name, anc, desc) ->
      let run db = time (fun () -> Lazy_db.count db ~anc ~desc ()) in
      let n_ld, t_ld = run ld in
      let n_ls, t_ls = run ls in
      let n_std, t_std = run std in
      assert (n_ld = n_ls && n_ls = n_std);
      Printf.printf "%-4s %-20s %10d %12.2f %12.2f %12.2f\n" name
        (anc ^ "//" ^ desc) n_ld t_ld t_ls t_std)
    Xmark.queries;

  Printf.printf "\nall three engines returned identical cardinalities.\n"
