(* Quickstart: the lazy XML database in five minutes.

   Run with:  dune exec examples/quickstart.exe

   The database is one "super document" edited by inserting and
   removing well-formed XML fragments at byte positions.  Element
   labels never change on update — that is the paper's lazy trick —
   yet structural joins (anc//desc) stay fast. *)

open Lazy_xml

let show db title =
  Printf.printf "%-28s %s\n" (title ^ ":") (Lazy_db.text db)

let () =
  let db = Lazy_db.create () in

  (* 1. Start with a catalog skeleton. *)
  Lazy_db.insert db ~gp:0 "<catalog></catalog>";
  show db "empty catalog";

  (* 2. Insert a product segment inside <catalog> (position 9 is just
        after the opening tag). *)
  Lazy_db.insert db ~gp:9 "<product><name>anvil</name><price>12</price></product>";
  show db "one product";

  (* 3. Batch-insert another segment at the same spot: segments are
        cheap, nothing gets relabelled. *)
  Lazy_db.insert db ~gp:9 "<product><name>rocket</name><price>99</price></product>";
  show db "two products";

  (* 4. Query: a structural join. *)
  let pairs, stats = Lazy_db.query db ~anc:"product" ~desc:"price" () in
  Printf.printf "\nproduct//price -> %d pairs (%d cross-segment, %d in-segment)\n"
    stats.Lazy_db.pair_count stats.Lazy_db.cross_pairs stats.Lazy_db.in_pairs;
  List.iter (fun (a, d) -> Printf.printf "  product@%d contains price@%d\n" a d) pairs;

  (* 5. Remove the rocket (its byte range) and query again. *)
  let text = Lazy_db.text db in
  let needle = "<product><name>rocket</name><price>99</price></product>" in
  let rec find i =
    if String.sub text i (String.length needle) = needle then i else find (i + 1)
  in
  let at = find 0 in
  Lazy_db.remove db ~gp:at ~len:(String.length needle);
  show db "\nafter removal";
  Printf.printf "product//price -> %d pairs\n" (Lazy_db.count db ~anc:"product" ~desc:"price" ());

  (* 6. Peek at the machinery. *)
  Printf.printf "\nsegments: %d   elements: %d   index bytes: %d\n"
    (Lazy_db.segment_count db) (Lazy_db.element_count db) (Lazy_db.size_bytes db);

  (* 7. Maintenance-hours rebuild: collapse everything to one segment. *)
  Lazy_db.rebuild db;
  Printf.printf "after rebuild: %d segment(s), same text: %b\n"
    (Lazy_db.segment_count db)
    (Lazy_db.text db <> "")
