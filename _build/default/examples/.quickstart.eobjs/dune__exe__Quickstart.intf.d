examples/quickstart.mli:
