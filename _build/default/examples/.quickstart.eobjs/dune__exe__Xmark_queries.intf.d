examples/xmark_queries.mli:
