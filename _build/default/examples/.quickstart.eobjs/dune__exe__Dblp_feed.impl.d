examples/dblp_feed.ml: Lazy_db Lazy_xml List Lxu_workload Printf Rng String
