examples/registration_system.ml: Hashtbl Lazy_db Lazy_xml List Lxu_workload Printf Rng String
