examples/news_portal.mli:
