examples/registration_system.mli:
