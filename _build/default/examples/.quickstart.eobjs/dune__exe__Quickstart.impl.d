examples/quickstart.ml: Lazy_db Lazy_xml List Printf String
