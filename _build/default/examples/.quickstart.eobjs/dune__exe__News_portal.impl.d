examples/news_portal.ml: Domain Filename Lazy_db Lazy_xml List Lxu_workload Path_query Printf Rng Shared_db String Sys
