examples/dblp_feed.mli:
