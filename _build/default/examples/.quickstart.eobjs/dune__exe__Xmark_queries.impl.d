examples/xmark_queries.ml: Array Chopper Lazy_db Lazy_xml List Lxu_workload Printf String Sys Unix Xmark
