(* The paper's second motivating scenario (§1): an on-line registration
   system.  Every submitted form becomes an auto-generated XML segment
   of 20-30 elements inserted into the database; cancellations remove a
   whole segment.  Labels of already-registered users never change.

   Run with:  dune exec examples/registration_system.exe *)

open Lazy_xml
open Lxu_workload

let occupations = [| "engineer"; "librarian"; "pilot"; "chef"; "analyst" |]

let registration rng id =
  Printf.sprintf
    "<registration id=\"r%d\"><user><name>user-%d</name><email>u%d@example.org</email></user><occupation>%s</occupation><address><city>city-%d</city><zip>%05d</zip></address><preferences><newsletter>%b</newsletter><language>en</language></preferences></registration>"
    id id id (Rng.pick rng occupations) (Rng.int rng 100) (Rng.int rng 100000)
    (Rng.bool rng)

let () =
  let rng = Rng.create 7 in
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<registry></registry>";
  let append_point () = Lazy_db.doc_length db - String.length "</registry>" in

  (* 200 submissions arrive. *)
  let ranges = Hashtbl.create 64 in
  for id = 1 to 200 do
    let seg = registration rng id in
    let gp = append_point () in
    Lazy_db.insert db ~gp seg;
    Hashtbl.add ranges id (String.length seg)
  done;
  Printf.printf "200 registrations: %d elements in %d segments, log %d bytes\n"
    (Lazy_db.element_count db) (Lazy_db.segment_count db) (Lazy_db.size_bytes db);

  (* Some users cancel: remove their whole segment by byte range.  We
     locate it in the current text by its id attribute. *)
  let cancel id =
    let text = Lazy_db.text db in
    let needle = Printf.sprintf "<registration id=\"r%d\">" id in
    let n = String.length needle in
    let rec find i = if String.sub text i n = needle then i else find (i + 1) in
    let s = find 0 in
    let len = Hashtbl.find ranges id in
    Lazy_db.remove db ~gp:s ~len
  in
  List.iter cancel [ 3; 77; 150 ];
  Printf.printf "after 3 cancellations: %d registrations remain\n"
    (Lazy_db.count db ~anc:"registry" ~desc:"registration" ());

  (* Structural queries over the registry. *)
  List.iter
    (fun (anc, desc) ->
      Printf.printf "  %s//%s -> %d\n" anc desc (Lazy_db.count db ~anc ~desc ()))
    [
      ("registration", "email");
      ("registration", "newsletter");
      ("user", "name");
      ("registration", "zip");
    ];

  (* Parent-child axis: direct children only. *)
  Printf.printf "  registration/occupation (child axis) -> %d\n"
    (Lazy_db.count db ~axis:Lazy_db.Child ~anc:"registration" ~desc:"occupation" ());
  Printf.printf "  registration/name (child axis, none expected) -> %d\n"
    (Lazy_db.count db ~axis:Lazy_db.Child ~anc:"registration" ~desc:"name" ())
