(* Tests for the workload generators: determinism, shape guarantees,
   and — crucially — that the join-mix generator delivers exactly the
   promised in-/cross-segment pair counts when run through the real
   database. *)

open Lxu_workload
open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  check_bool "different streams" true (Rng.next a <> Rng.next b)

(* --- generator ------------------------------------------------------- *)

let test_generator_deterministic () =
  let t1 = Generator.generate_text ~seed:5 ~target_elements:200 () in
  let t2 = Generator.generate_text ~seed:5 ~target_elements:200 () in
  check_string "same doc" t1 t2;
  let t3 = Generator.generate_text ~seed:6 ~target_elements:200 () in
  check_bool "different seed differs" true (t1 <> t3)

let test_generator_element_count () =
  let nodes = Generator.generate ~seed:1 ~target_elements:500 () in
  check_bool "at least target" true (Lxu_xml.Tree.element_count nodes >= 500)

let test_generator_well_formed () =
  let text = Generator.generate_text ~seed:9 ~target_elements:300 () in
  check_bool "well-formed" true (Lxu_xml.Parser.is_well_formed_fragment text)

let test_deep_chain () =
  let text = Generator.deep_chain ~tags:[| "a"; "b" |] ~depth:50 ~payload:"x" in
  check_bool "well-formed" true (Lxu_xml.Parser.is_well_formed_fragment text);
  let nodes = Lxu_xml.Parser.parse_fragment text in
  check_int "depth" 50 (Lxu_xml.Tree.max_depth nodes);
  check_int "elements" 50 (Lxu_xml.Tree.element_count nodes)

(* --- joinmix --------------------------------------------------------- *)

let run_joinmix spec =
  let schedule = Joinmix.generate spec in
  let db = Lazy_db.create () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) schedule.Joinmix.edits;
  Lazy_db.check db;
  let _, stats =
    Lazy_db.query db ~anc:schedule.Joinmix.anc_tag ~desc:schedule.Joinmix.desc_tag ()
  in
  (schedule, db, stats)

let test_joinmix_counts () =
  List.iter
    (fun (shape, cross_percent) ->
      let spec = { Joinmix.segments = 20; pairs_per_segment = 3; cross_percent; shape } in
      let schedule, db, stats = run_joinmix spec in
      let name = Printf.sprintf "cross=%d" cross_percent in
      check_int (name ^ " segments") 20 (Lazy_db.segment_count db);
      check_int (name ^ " in pairs") schedule.Joinmix.expected_in_pairs stats.Lazy_db.in_pairs;
      check_int (name ^ " cross pairs") schedule.Joinmix.expected_cross_pairs
        stats.Lazy_db.cross_pairs;
      check_int (name ^ " total") (20 * 3) stats.Lazy_db.pair_count)
    [
      (Joinmix.Balanced, 0);
      (Joinmix.Balanced, 20);
      (Joinmix.Balanced, 60);
      (Joinmix.Balanced, 90);
      (Joinmix.Nested, 0);
      (Joinmix.Nested, 20);
      (Joinmix.Nested, 60);
      (Joinmix.Nested, 90);
    ]

let test_joinmix_matches_std () =
  List.iter
    (fun shape ->
      let spec = { Joinmix.segments = 12; pairs_per_segment = 2; cross_percent = 50; shape } in
      let schedule = Joinmix.generate spec in
      let lazy_db = Lazy_db.create ~engine:Lazy_db.LD () in
      let std_db = Lazy_db.create ~engine:Lazy_db.STD () in
      List.iter
        (fun (gp, frag) ->
          Lazy_db.insert lazy_db ~gp frag;
          Lazy_db.insert std_db ~gp frag)
        schedule.Joinmix.edits;
      let p1 = fst (Lazy_db.query lazy_db ~anc:"A" ~desc:"D" ()) in
      let p2 = fst (Lazy_db.query std_db ~anc:"A" ~desc:"D" ()) in
      check_bool "identical results" true (p1 = p2))
    [ Joinmix.Balanced; Joinmix.Nested ]

let test_joinmix_nested_shape () =
  let spec =
    { Joinmix.segments = 10; pairs_per_segment = 1; cross_percent = 0; shape = Joinmix.Nested }
  in
  let _, db, _ = run_joinmix spec in
  (* A nested schedule chains segments: the ER-tree depth equals the
     segment count. *)
  let log = Option.get (Lazy_db.log db) in
  let depth = ref 0 in
  let rec go n d =
    if d > !depth then depth := d;
    Lxu_util.Vec.iter (fun c -> go c (d + 1)) n.Lxu_seglog.Er_node.children
  in
  go (Lxu_seglog.Update_log.root log) 0;
  check_int "chain depth" 10 !depth

let test_joinmix_invalid () =
  Alcotest.check_raises "too few" (Invalid_argument "Joinmix.generate: need at least 2 segments")
    (fun () ->
      ignore
        (Joinmix.generate
           { Joinmix.segments = 1; pairs_per_segment = 1; cross_percent = 0; shape = Joinmix.Balanced }))

(* --- chopper ---------------------------------------------------------- *)

let string_insert s ~gp frag = String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)

let reconstructs text edits =
  List.fold_left (fun acc (gp, frag) -> string_insert acc ~gp frag) "" edits = text

let test_chopper_balanced_reconstructs () =
  let text = Generator.generate_text ~seed:3 ~target_elements:400 () in
  let edits = Chopper.chop ~text ~segments:20 Chopper.Balanced in
  check_bool "reconstructs" true (reconstructs text edits);
  check_bool "multiple segments" true (Chopper.segment_count edits > 5);
  check_bool "at most requested" true (Chopper.segment_count edits <= 20)

let test_chopper_nested_reconstructs () =
  let text = Generator.deep_chain ~tags:[| "a"; "b"; "c" |] ~depth:60 ~payload:"xy" in
  let edits = Chopper.chop ~text ~segments:15 Chopper.Nested in
  check_bool "reconstructs" true (reconstructs text edits);
  check_bool "got full count" true (Chopper.segment_count edits >= 14)

let test_chopper_via_db () =
  let text = Generator.generate_text ~seed:11 ~target_elements:300 () in
  List.iter
    (fun shape ->
      let edits = Chopper.chop ~text ~segments:12 shape in
      let db = Lazy_db.create () in
      List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits;
      Lazy_db.check db;
      check_string "db text equals original" text (Lazy_db.text db))
    [ Chopper.Balanced; Chopper.Nested ]

let test_chopper_nested_shape_is_chain () =
  let text = Generator.deep_chain ~tags:[| "a"; "b" |] ~depth:40 ~payload:"" in
  let edits = Chopper.chop ~text ~segments:8 Chopper.Nested in
  let db = Lazy_db.create () in
  List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) edits;
  let log = Option.get (Lazy_db.log db) in
  (* Every non-root node has at most one child: a pure chain. *)
  let ok = ref true in
  Lxu_seglog.Er_node.iter_subtree (Lxu_seglog.Update_log.root log) (fun n ->
      if Lxu_util.Vec.length n.Lxu_seglog.Er_node.children > 1 then ok := false);
  check_bool "chain" true !ok

let test_chopper_single_segment () =
  let edits = Chopper.chop ~text:"<a><b/></a>" ~segments:1 Chopper.Balanced in
  check_int "one edit" 1 (Chopper.segment_count edits);
  check_bool "reconstructs" true (reconstructs "<a><b/></a>" edits)

(* --- xmark ------------------------------------------------------------ *)

let test_xmark_deterministic () =
  let a = Xmark.generate_text ~seed:1 () in
  let b = Xmark.generate_text ~seed:1 () in
  check_string "same" a b

let test_xmark_well_formed_and_rich () =
  let text = Xmark.generate_text ~persons:50 ~seed:2 () in
  check_bool "well-formed" true (Lxu_xml.Parser.is_well_formed_fragment text);
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let count tag = List.length (Lxu_xml.Tree.find_all nodes ~tag) in
  check_int "persons" 50 (count "person");
  check_bool "phones present" true (count "phone" > 20);
  check_bool "interests present" true (count "interest" > 10);
  check_bool "watches present" true (count "watch" > 10)

let test_xmark_queries_nonempty () =
  let text = Xmark.generate_text ~persons:60 ~seed:3 () in
  let db = Lazy_db.create () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Chopper.chop ~text ~segments:10 Chopper.Balanced);
  List.iter
    (fun (name, anc, desc) ->
      check_bool (name ^ " nonempty") true (Lazy_db.count db ~anc ~desc () > 0))
    Xmark.queries

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator element count" `Quick test_generator_element_count;
    Alcotest.test_case "generator well-formed" `Quick test_generator_well_formed;
    Alcotest.test_case "deep chain" `Quick test_deep_chain;
    Alcotest.test_case "joinmix exact pair counts" `Quick test_joinmix_counts;
    Alcotest.test_case "joinmix lazy = std" `Quick test_joinmix_matches_std;
    Alcotest.test_case "joinmix nested shape" `Quick test_joinmix_nested_shape;
    Alcotest.test_case "joinmix invalid spec" `Quick test_joinmix_invalid;
    Alcotest.test_case "chopper balanced reconstructs" `Quick test_chopper_balanced_reconstructs;
    Alcotest.test_case "chopper nested reconstructs" `Quick test_chopper_nested_reconstructs;
    Alcotest.test_case "chopper via db" `Quick test_chopper_via_db;
    Alcotest.test_case "chopper nested is chain" `Quick test_chopper_nested_shape_is_chain;
    Alcotest.test_case "chopper single segment" `Quick test_chopper_single_segment;
    Alcotest.test_case "xmark deterministic" `Quick test_xmark_deterministic;
    Alcotest.test_case "xmark well-formed and rich" `Quick test_xmark_well_formed_and_rich;
    Alcotest.test_case "xmark queries nonempty" `Quick test_xmark_queries_nonempty;
  ]

(* Property: joinmix delivers its promised pair counts for any spec. *)
let prop_joinmix_exact =
  let gen =
    QCheck2.Gen.(
      map3
        (fun segments pairs (cross, nested) ->
          {
            Joinmix.segments = 2 + (segments mod 30);
            pairs_per_segment = 1 + (pairs mod 5);
            cross_percent = cross mod 101;
            shape = (if nested then Joinmix.Nested else Joinmix.Balanced);
          })
        (int_bound 1000) (int_bound 1000)
        (pair (int_bound 1000) bool))
  in
  QCheck2.Test.make ~name:"joinmix counts exact for any spec" ~count:60 gen
    (fun spec ->
      let schedule = Joinmix.generate spec in
      let db = Lazy_db.create () in
      List.iter (fun (gp, frag) -> Lazy_db.insert db ~gp frag) schedule.Joinmix.edits;
      let _, stats = Lazy_db.query db ~anc:"A" ~desc:"D" () in
      stats.Lazy_db.in_pairs = schedule.Joinmix.expected_in_pairs
      && stats.Lazy_db.cross_pairs = schedule.Joinmix.expected_cross_pairs
      && Lazy_db.segment_count db = spec.Joinmix.segments)

(* Property: chopping any generated document reconstructs it. *)
let prop_chopper_reconstructs =
  let gen = QCheck2.Gen.(pair (int_range 1 10_000) (int_range 1 30)) in
  QCheck2.Test.make ~name:"chopper reconstructs generated docs" ~count:40 gen
    (fun (seed, segments) ->
      let text = Generator.generate_text ~seed ~target_elements:150 () in
      List.for_all
        (fun shape -> reconstructs text (Chopper.chop ~text ~segments shape))
        [ Chopper.Balanced; Chopper.Nested ])

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_joinmix_exact;
      QCheck_alcotest.to_alcotest prop_chopper_reconstructs;
    ]
