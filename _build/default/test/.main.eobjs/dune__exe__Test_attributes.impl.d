test/test_attributes.ml: Alcotest Lazy_db Lazy_xml List Lxu_seglog Lxu_xml Option Path_query String
