test/test_bignum.ml: Alcotest Bignum Crt List Lxu_bignum Option Prime_gen Printf QCheck2 QCheck_alcotest
