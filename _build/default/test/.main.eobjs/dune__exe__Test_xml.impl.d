test/test_xml.ml: Alcotest Char List Lxu_xml Parser Printer Printf QCheck2 QCheck_alcotest String Tree
