test/test_workload.ml: Alcotest Chopper Generator Joinmix Lazy_db Lazy_xml List Lxu_seglog Lxu_util Lxu_workload Lxu_xml Option Printf QCheck2 QCheck_alcotest Rng String Xmark
