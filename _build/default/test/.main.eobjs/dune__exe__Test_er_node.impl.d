test/test_er_node.ml: Alcotest Er_node List Lxu_seglog Lxu_util QCheck2 QCheck_alcotest String Vec
