test/test_snapshot.ml: Alcotest Array Filename Lazy_db Lazy_xml List Lxu_join Lxu_xml Option QCheck2 QCheck_alcotest String Sys
