test/test_boxes.ml: Alcotest Array Bbox_store Box_store Hashtbl List Lxu_labeling Lxu_workload Option Order_label Printf QCheck2 QCheck_alcotest Rank_order
