test/test_vec.ml: Alcotest Int List Lxu_util QCheck2 QCheck_alcotest Vec
