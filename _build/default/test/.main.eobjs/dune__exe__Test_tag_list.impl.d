test/test_tag_list.ml: Alcotest Array List Lxu_seglog Tag_list
