test/test_seglog.ml: Alcotest Array Element_index Er_node Hashtbl List Lxu_seglog Lxu_xml Option Printf QCheck2 QCheck_alcotest String Tag_list Tag_registry Update_log
