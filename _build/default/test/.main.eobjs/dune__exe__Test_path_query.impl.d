test/test_path_query.ml: Alcotest Array Lazy_db Lazy_xml List Lxu_workload Lxu_xml Path_query QCheck2 QCheck_alcotest String
