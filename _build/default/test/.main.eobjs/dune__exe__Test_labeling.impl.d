test/test_labeling.ml: Alcotest Array Binary_label Dewey_label Interval Interval_store List Lxu_labeling Lxu_xml Prime_label QCheck2 QCheck_alcotest String
