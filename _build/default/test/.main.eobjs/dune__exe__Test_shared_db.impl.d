test/test_shared_db.ml: Alcotest Domain Lazy_db Lazy_xml List Shared_db String
