test/test_btree.ml: Alcotest Bptree Fun Int List Lxu_btree Map Printf QCheck2 QCheck_alcotest Stdlib
