test/test_join2.ml: Alcotest Array Buffer Interval List Lxu_join Lxu_labeling Lxu_xml Mpmgjn Path_stack Printf Random Stack_tree_anc Stack_tree_desc Twig_stack Xr_index Xr_join
