test/test_core.ml: Alcotest Lazy_db Lazy_xml List
