test/test_element_index.ml: Alcotest Array Element_index List Lxu_seglog
