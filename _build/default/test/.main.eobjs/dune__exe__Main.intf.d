test/main.mli:
