(* Tests for the tag-list: sorted insertion, LS-style deferred sorting,
   count bookkeeping on deletion. *)

open Lxu_seglog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry sid path count = { Tag_list.sid; path = Array.of_list path; count }

(* A fixed gp assignment for sorting tests. *)
let gp_of = function 1 -> 100 | 2 -> 50 | 3 -> 75 | 4 -> 10 | _ -> 0

let sids t tid = Array.to_list (Array.map (fun e -> e.Tag_list.sid) (Tag_list.entries t ~tid))

let test_add_sorted () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:7 (entry 1 [ 0; 1 ] 3) ~gp_of;
  Tag_list.add_sorted t ~tid:7 (entry 2 [ 0; 2 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:7 (entry 3 [ 0; 2; 3 ] 2) ~gp_of;
  Alcotest.(check (list int)) "gp order" [ 2; 3; 1 ] (sids t 7);
  check_bool "not dirty" false (Tag_list.is_dirty t)

let test_append_and_sort () =
  let t = Tag_list.create () in
  Tag_list.append t ~tid:7 (entry 1 [ 0; 1 ] 1);
  Tag_list.append t ~tid:7 (entry 4 [ 0; 4 ] 1);
  Tag_list.append t ~tid:7 (entry 2 [ 0; 2 ] 1);
  check_bool "dirty" true (Tag_list.is_dirty t);
  check_bool "entries refuses dirty reads" true
    (match Tag_list.entries t ~tid:7 with exception Failure _ -> true | _ -> false);
  Tag_list.sort_all t ~gp_of;
  Alcotest.(check (list int)) "sorted" [ 4; 2; 1 ] (sids t 7);
  check_bool "clean" false (Tag_list.is_dirty t)

let test_mark_dirty () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.mark_dirty t;
  check_bool "dirty again" true (Tag_list.is_dirty t);
  Tag_list.sort_all t ~gp_of;
  check_int "still there" 1 (List.length (sids t 1))

let test_decrement () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 3) ~gp_of;
  Tag_list.decrement t ~tid:1 ~sid:1 ~by:2;
  check_int "count lowered" 1 (Tag_list.entries t ~tid:1).(0).Tag_list.count;
  Tag_list.decrement t ~tid:1 ~sid:1 ~by:1;
  check_int "entry dropped at zero" 0 (Array.length (Tag_list.entries t ~tid:1));
  (* Unknown pairs are ignored. *)
  Tag_list.decrement t ~tid:1 ~sid:99 ~by:1;
  Tag_list.decrement t ~tid:42 ~sid:1 ~by:1

let test_remove_segment () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:1 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:2 (entry 1 [ 0; 1 ] 4) ~gp_of;
  Tag_list.add_sorted t ~tid:2 (entry 2 [ 0; 2 ] 1) ~gp_of;
  Tag_list.remove_segment t ~sid:1;
  check_int "tid1 empty" 0 (Array.length (Tag_list.entries t ~tid:1));
  Alcotest.(check (list int)) "tid2 keeps sid2" [ 2 ] (sids t 2)

let test_tids_and_sizes () =
  let t = Tag_list.create () in
  Tag_list.add_sorted t ~tid:5 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Tag_list.add_sorted t ~tid:3 (entry 1 [ 0; 1 ] 1) ~gp_of;
  Alcotest.(check (list int)) "tids sorted" [ 3; 5 ] (Tag_list.tids t);
  check_bool "size" true (Tag_list.size_bytes t > 0);
  check_bool "ops counted" true (Tag_list.path_ops t >= 2)

let suite =
  [
    Alcotest.test_case "add_sorted keeps gp order" `Quick test_add_sorted;
    Alcotest.test_case "append then sort_all" `Quick test_append_and_sort;
    Alcotest.test_case "mark_dirty" `Quick test_mark_dirty;
    Alcotest.test_case "decrement" `Quick test_decrement;
    Alcotest.test_case "remove_segment" `Quick test_remove_segment;
    Alcotest.test_case "tids and sizes" `Quick test_tids_and_sizes;
  ]
