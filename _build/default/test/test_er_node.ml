(* Direct tests of the ER-node coordinate machinery: tombstones,
   virtual/physical conversion, depth computation and global extents.
   (The update-log suite exercises these end-to-end; here the edge
   cases get pinned down in isolation.) *)

open Lxu_seglog
open Lxu_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(sid = 1) ?(gp = 0) ?(lp = 0) ?(base_level = 0) text elems =
  Er_node.make ~sid ~gp ~lp ~base_level ~text
    ~elems:(List.map (fun (start, stop, level, tid) -> { Er_node.start; stop; level; tid }) elems)

let test_make_root () =
  let r = Er_node.make_root () in
  check_bool "is_root" true (Er_node.is_root r);
  check_int "gp" 0 r.Er_node.gp;
  check_int "len" 0 r.Er_node.len;
  check_int "own_len" 0 (Er_node.own_len r);
  check_bool "path" true (Er_node.path r = [| 0 |])

let test_tombstone_accounting () =
  let n = mk "0123456789" [] in
  Er_node.add_tombstone n 2 4;
  check_int "own_len" 8 (Er_node.own_len n);
  check_int "before 1" 0 (Er_node.tombstoned_before n 1);
  check_int "before 3 (partial)" 1 (Er_node.tombstoned_before n 3);
  check_int "before 4" 2 (Er_node.tombstoned_before n 4);
  check_int "before 9" 2 (Er_node.tombstoned_before n 9)

let test_tombstone_merge () =
  let n = mk "0123456789" [] in
  Er_node.add_tombstone n 2 4;
  Er_node.add_tombstone n 6 8;
  check_int "two tombstones" 2 (Vec.length n.Er_node.tombstones);
  (* Bridging range merges all three into one. *)
  Er_node.add_tombstone n 4 6;
  check_int "merged" 1 (Vec.length n.Er_node.tombstones);
  check_bool "extent" true (Vec.get n.Er_node.tombstones 0 = (2, 8));
  check_int "own_len" 4 (Er_node.own_len n)

let test_tombstone_adjacent_merge () =
  let n = mk "0123456789" [] in
  Er_node.add_tombstone n 2 4;
  Er_node.add_tombstone n 4 6;
  check_int "touching ranges merge" 1 (Vec.length n.Er_node.tombstones)

let test_tombstone_invalid () =
  let n = mk "0123" [] in
  Alcotest.check_raises "empty range" (Invalid_argument "Er_node.add_tombstone: bad range")
    (fun () -> Er_node.add_tombstone n 2 2);
  Alcotest.check_raises "past end" (Invalid_argument "Er_node.add_tombstone: bad range")
    (fun () -> Er_node.add_tombstone n 2 9)

let test_virt_conversion () =
  let n = mk "0123456789" [] in
  Er_node.add_tombstone n 2 6;
  (* Physical text is "016789": phys 2 maps to virtual 2 (before the
     gap) or 6 (after). *)
  check_int "after-gap bias" 6 (Er_node.virt_of_own_phys n 2);
  check_int "before-gap bias" 2 (Er_node.virt_of_own_phys_before n 2);
  check_int "middle live" 7 (Er_node.virt_of_own_phys n 3);
  check_int "identity before gap" 1 (Er_node.virt_of_own_phys n 1)

let test_virt_conversion_two_gaps () =
  let n = mk "0123456789" [] in
  Er_node.add_tombstone n 1 3;
  Er_node.add_tombstone n 5 7;
  (* Live virtual positions: 0,3,4,7,8,9 at phys 0..5. *)
  check_int "phys 1" 3 (Er_node.virt_of_own_phys n 1);
  check_int "phys 2" 4 (Er_node.virt_of_own_phys n 2);
  check_int "phys 3" 7 (Er_node.virt_of_own_phys n 3);
  check_int "phys 5" 9 (Er_node.virt_of_own_phys n 5)

let test_depth_at () =
  (*         0123456789012345678 *)
  let text = "<a><b>xx</b>yy</a>" in
  let n = mk text [ (0, 18, 0, 0); (3, 12, 1, 1) ] in
  check_int "outside" 0 (Er_node.depth_at n 0);
  check_int "inside a" 1 (Er_node.depth_at n 3);
  check_int "inside b" 2 (Er_node.depth_at n 7);
  check_int "between b and /a" 1 (Er_node.depth_at n 13);
  check_int "at end" 0 (Er_node.depth_at n 18)

let test_depth_at_with_base () =
  let n = mk ~base_level:5 "<a>x</a>" [ (0, 8, 5, 0) ] in
  check_int "base plus nesting" 6 (Er_node.depth_at n 4)

let test_global_extent_with_child () =
  (* Segment at gp 100 with element [0,10) and a child segment of
     length 7 hanging at lp 4 (inside the element). *)
  let parent = mk ~gp:100 "<a>bcdef</a>" [ (0, 12, 0, 0) ] in
  let child = mk ~sid:2 ~gp:104 ~lp:4 "<c>zzz</c>" [] in
  child.Er_node.parent <- Some parent;
  Vec.push parent.Er_node.children child;
  parent.Er_node.len <- parent.Er_node.len + 10;
  let gstart, gstop = Er_node.global_extent parent { Er_node.start = 0; stop = 12; level = 0; tid = 0 } in
  check_int "gstart" 100 gstart;
  check_int "gstop includes child" 122 gstop

let test_global_extent_child_at_boundary () =
  (* A child exactly at the element's start pushes it right; a child
     exactly at its stop does not extend it. *)
  let parent = mk ~gp:0 "<a>b</a><d/>" [ (0, 8, 0, 0); (8, 12, 0, 1) ] in
  let child = mk ~sid:2 ~gp:0 ~lp:0 "<c/>" [] in
  child.Er_node.parent <- Some parent;
  Vec.push parent.Er_node.children child;
  parent.Er_node.len <- parent.Er_node.len + 4;
  let a_start, a_stop = Er_node.global_extent parent { Er_node.start = 0; stop = 8; level = 0; tid = 0 } in
  check_int "a pushed right" 4 a_start;
  check_int "a stop" 12 a_stop;
  (* The second element sits after both. *)
  let d_start, _ = Er_node.global_extent parent { Er_node.start = 8; stop = 12; level = 0; tid = 1 } in
  check_int "d start" 12 d_start

let test_path_chain () =
  let a = mk ~sid:1 "<a/>" [] in
  let b = mk ~sid:2 "<b/>" [] in
  let c = mk ~sid:3 "<c/>" [] in
  b.Er_node.parent <- Some a;
  c.Er_node.parent <- Some b;
  check_bool "path" true (Er_node.path c = [| 1; 2; 3 |])

let test_child_index_for_gp () =
  let p = mk "0123456789" [] in
  let add gp =
    let c = mk ~sid:gp ~gp ~lp:gp "<x/>" [] in
    c.Er_node.parent <- Some p;
    Vec.insert_at p.Er_node.children (Er_node.child_index_for_gp p gp) c
  in
  add 8;
  add 2;
  add 5;
  let gps = List.map (fun (c : Er_node.t) -> c.Er_node.gp) (Vec.to_list p.Er_node.children) in
  check_bool "sorted" true (gps = [ 2; 5; 8 ]);
  check_int "before all" 0 (Er_node.child_index_for_gp p 1);
  check_int "after equal" 1 (Er_node.child_index_for_gp p 2);
  check_int "past all" 3 (Er_node.child_index_for_gp p 9)

let test_check_detects_bad_length () =
  let n = mk "<a/>" [] in
  n.Er_node.len <- 7;
  check_bool "detected" true
    (match Er_node.check n with exception Failure _ -> true | () -> false)

let test_check_detects_overlapping_elems () =
  (* Crossing extents [0,6) and [3,9) are not a tree. *)
  let n = mk "<a>bc</a>" [ (0, 6, 0, 0); (3, 9, 1, 1) ] in
  check_bool "detected" true
    (match Er_node.check n with exception Failure _ -> true | () -> false)

let suite =
  [
    Alcotest.test_case "make_root" `Quick test_make_root;
    Alcotest.test_case "tombstone accounting" `Quick test_tombstone_accounting;
    Alcotest.test_case "tombstone merge" `Quick test_tombstone_merge;
    Alcotest.test_case "tombstone adjacent merge" `Quick test_tombstone_adjacent_merge;
    Alcotest.test_case "tombstone invalid" `Quick test_tombstone_invalid;
    Alcotest.test_case "virt conversion" `Quick test_virt_conversion;
    Alcotest.test_case "virt conversion, two gaps" `Quick test_virt_conversion_two_gaps;
    Alcotest.test_case "depth_at" `Quick test_depth_at;
    Alcotest.test_case "depth_at with base" `Quick test_depth_at_with_base;
    Alcotest.test_case "global extent with child" `Quick test_global_extent_with_child;
    Alcotest.test_case "global extent at boundaries" `Quick test_global_extent_child_at_boundary;
    Alcotest.test_case "path chain" `Quick test_path_chain;
    Alcotest.test_case "child_index_for_gp" `Quick test_child_index_for_gp;
    Alcotest.test_case "check: bad length" `Quick test_check_detects_bad_length;
    Alcotest.test_case "check: overlapping elements" `Quick test_check_detects_overlapping_elems;
  ]

(* Coordinate inverses under random tombstone sets: converting a live
   physical offset to virtual (either bias) and back must be the
   identity, and conversions must be monotone. *)
let prop_virt_phys_inverse =
  let gen = QCheck2.Gen.(list_size (int_range 0 6) (pair (int_bound 90) (int_range 1 8))) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"virt/phys conversions invert" ~count:150 gen (fun ranges ->
         let n = mk (String.make 100 'x') [] in
         List.iter
           (fun (a, w) ->
             let b = min 100 (a + w) in
             if a < b then Er_node.add_tombstone n a b)
           ranges;
         let live = Er_node.own_len n in
         let ok = ref true in
         for p = 0 to live do
           let v_after = Er_node.virt_of_own_phys n p in
           let v_before = Er_node.virt_of_own_phys_before n p in
           (* Both map back to the same physical position. *)
           let back v = v - Er_node.tombstoned_before n v in
           if back v_after <> p || back v_before <> p then ok := false;
           if v_before > v_after then ok := false;
           if p > 0 && Er_node.virt_of_own_phys n (p - 1) >= v_after then ok := false
         done;
         !ok))

let suite = suite @ [ prop_virt_phys_inverse ]
