(* Attributes as subelements (§1 of the paper): offset capture in the
   parser, indexing behind the [index_attributes] flag, and querying
   via joins and path expressions. *)

open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_parser_attr_offsets () =
  (*         0         1         2    *)
  (*         0123456789012345678901234 *)
  let s = "<a id=\"x\" lang='en'><b/></a>" in
  let e =
    match Lxu_xml.Parser.parse_fragment s with
    | [ Lxu_xml.Tree.Element e ] -> e
    | _ -> Alcotest.fail "parse"
  in
  match e.Lxu_xml.Tree.attrs with
  | [ id; lang ] ->
    check_int "id start" 3 id.Lxu_xml.Tree.a_start;
    check_int "id end" 9 id.Lxu_xml.Tree.a_end;
    check_string "id slice" "id=\"x\"" (String.sub s 3 6);
    check_int "lang start" 10 lang.Lxu_xml.Tree.a_start;
    check_int "lang end" 19 lang.Lxu_xml.Tree.a_end;
    check_string "lang slice" "lang='en'" (String.sub s 10 9)
  | _ -> Alcotest.fail "expected two attributes"

let test_iter_labels () =
  let nodes = Lxu_xml.Parser.parse_fragment "<a id=\"1\"><b k=\"v\"/></a>" in
  let seen = ref [] in
  Lxu_xml.Tree.iter_labels ~attributes:true nodes (fun ~name ~start:_ ~stop:_ ~level ->
      seen := (name, level) :: !seen);
  Alcotest.(check (list (pair string int)))
    "labels with attributes"
    [ ("a", 0); ("@id", 1); ("b", 1); ("@k", 2) ]
    (List.rev !seen);
  (* Default: elements only. *)
  let plain = ref 0 in
  Lxu_xml.Tree.iter_labels nodes (fun ~name:_ ~start:_ ~stop:_ ~level:_ -> incr plain);
  check_int "elements only" 2 !plain

let doc = "<people><person id=\"p1\"><name first=\"A\"/></person><person id=\"p2\"/></people>"

let test_query_attributes () =
  List.iter
    (fun engine ->
      let db = Lazy_db.create ~engine ~index_attributes:true () in
      Lazy_db.insert db ~gp:0 doc;
      check_int "person//@id not nested under person... direct" 2
        (Lazy_db.count db ~anc:"person" ~desc:"@id" ());
      check_int "people//@first" 1 (Lazy_db.count db ~anc:"people" ~desc:"@first" ());
      (* The attribute is a direct child of its element. *)
      check_int "person/@id (child axis)" 2
        (Lazy_db.count db ~axis:Lazy_db.Child ~anc:"person" ~desc:"@id" ());
      check_int "people/@id is not a child" 0
        (Lazy_db.count db ~axis:Lazy_db.Child ~anc:"people" ~desc:"@id" ()))
    [ Lazy_db.LD; Lazy_db.LS; Lazy_db.STD ]

let test_attributes_off_by_default () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 doc;
  check_int "no attribute records" 0 (Lazy_db.count db ~anc:"person" ~desc:"@id" ())

let test_path_query_attributes () =
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 doc;
  check_int "//person/@id" 2 (Path_query.count db "//person/@id");
  check_int "//people//@first" 1 (Path_query.count db "//people//@first");
  check_int "holistic agrees" 2
    (Path_query.count ~strategy:Path_query.Holistic db "//person/@id")

let test_attributes_across_segments () =
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 "<people></people>";
  Lazy_db.insert db ~gp:8 "<person id=\"p9\"/>";
  check_int "cross-segment attribute join" 1 (Lazy_db.count db ~anc:"people" ~desc:"@id" ());
  Lazy_db.check db;
  (* Removal of the segment removes its attribute records too. *)
  Lazy_db.remove db ~gp:8 ~len:17;
  check_int "gone" 0 (Lazy_db.count db ~anc:"people" ~desc:"@id" ());
  Lazy_db.check db

let test_rebuild_preserves_flag () =
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 doc;
  Lazy_db.rebuild db;
  check_int "still queryable" 2 (Lazy_db.count db ~anc:"person" ~desc:"@id" ());
  check_bool "flag survives" true
    (Lxu_seglog.Update_log.indexes_attributes (Option.get (Lazy_db.log db)))

let suite =
  [
    Alcotest.test_case "parser attr offsets" `Quick test_parser_attr_offsets;
    Alcotest.test_case "iter_labels" `Quick test_iter_labels;
    Alcotest.test_case "query attributes (all engines)" `Quick test_query_attributes;
    Alcotest.test_case "off by default" `Quick test_attributes_off_by_default;
    Alcotest.test_case "path queries on attributes" `Quick test_path_query_attributes;
    Alcotest.test_case "attributes across segments" `Quick test_attributes_across_segments;
    Alcotest.test_case "rebuild preserves flag" `Quick test_rebuild_preserves_flag;
  ]

let test_attribute_in_predicate () =
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 doc;
  check_int "person[@id]" 2 (Path_query.count db "//person[@id]");
  check_int "person[name[@first]]" 1 (Path_query.count db "//person[name[@first]]");
  check_int "person[@nosuch]" 0 (Path_query.count db "//person[@nosuch]");
  check_int "holistic agrees" 2
    (Path_query.count ~strategy:Path_query.Holistic db "//person[@id]")

let test_attribute_tombstoned () =
  (* Deleting an element removes its attribute records too (they lie
     inside its extent). *)
  let db = Lazy_db.create ~index_attributes:true () in
  Lazy_db.insert db ~gp:0 doc;
  let before = Lazy_db.count db ~anc:"people" ~desc:"@id" () in
  (* Remove the second person: "<person id=\"p2\"/>" = 17 bytes before
     "</people>". *)
  let text = Lazy_db.text db in
  let needle = "<person id=\"p2\"/>" in
  let n = String.length needle in
  let rec find i = if String.sub text i n = needle then i else find (i + 1) in
  Lazy_db.remove db ~gp:(find 0) ~len:n;
  check_int "one fewer @id" (before - 1) (Lazy_db.count db ~anc:"people" ~desc:"@id" ());
  Lazy_db.check db

let suite =
  suite
  @ [
      Alcotest.test_case "attribute in predicate" `Quick test_attribute_in_predicate;
      Alcotest.test_case "attribute tombstoned" `Quick test_attribute_tombstoned;
    ]
