(* Tests for the structural join algorithms.  The oracle chain:
   Naive O(n^2) = Stack-Tree-Desc on fresh global labels = Lazy-Join
   (LD and LS) on the update log, for both the // and / axes. *)

open Lxu_seglog
open Lxu_join
open Lxu_labeling

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pair_list = Alcotest.(list (pair int int))

(* Global labels of [tag] from a fresh parse. *)
let fresh_labels text ~tag =
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let acc = ref [] in
  Lxu_xml.Tree.iter_elements nodes (fun e ~level ->
      if e.Lxu_xml.Tree.tag = tag then
        acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end, level) :: !acc);
  List.sort compare !acc

let intervals_of labels =
  Array.of_list
    (List.map (fun (s, e, l) -> Interval.make ~start:s ~stop:e ~level:l) labels)

let std_pairs ?axis text ~anc ~desc =
  let a = fresh_labels text ~tag:anc and d = fresh_labels text ~tag:desc in
  let pairs, _ = Stack_tree_desc.join ?axis ~anc:(intervals_of a) ~desc:(intervals_of d) () in
  List.map
    (fun ((a : Interval.t), (d : Interval.t)) -> (a.Interval.start, d.Interval.start))
    pairs
  |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))

let naive_pairs ?axis text ~anc ~desc =
  Naive_join.join ?axis ~anc:(fresh_labels text ~tag:anc) ~desc:(fresh_labels text ~tag:desc) ()

(* --- Stack-Tree-Desc ------------------------------------------------ *)

let test_std_simple () =
  let text = "<a><b/><a><b/></a></a><b/>" in
  (* a elements: [0,22) lvl0, [7,18) lvl1; b: [3,7) lvl1, [10,14) lvl2, [22,26) lvl0 *)
  let got = std_pairs text ~anc:"a" ~desc:"b" in
  Alcotest.check pair_list "pairs" [ (0, 3); (0, 10); (7, 10) ] got

let test_std_child_axis () =
  let text = "<a><b/><a><b/></a></a><b/>" in
  let got = std_pairs ~axis:Stack_tree_desc.Child text ~anc:"a" ~desc:"b" in
  Alcotest.check pair_list "pairs" [ (0, 3); (7, 10) ] got;
  (* a/a: nested direct *)
  let got = std_pairs ~axis:Stack_tree_desc.Child text ~anc:"a" ~desc:"a" in
  Alcotest.check pair_list "self tag" [ (0, 7) ] got

let test_std_empty_inputs () =
  let pairs, stats = Stack_tree_desc.join ~anc:[||] ~desc:[||] () in
  check_int "no pairs" 0 (List.length pairs);
  check_int "no scans" 0 (stats.Stack_tree_desc.a_scanned + stats.Stack_tree_desc.d_scanned)

let test_std_adjacent_not_contained () =
  (* <a/><b/>: a.stop = b.start — must not join. *)
  let got = std_pairs "<a/><b/>" ~anc:"a" ~desc:"b" in
  Alcotest.check pair_list "no pair" [] got

let test_std_matches_naive_random () =
  (* Deterministic pseudo-random documents. *)
  let mk_doc seed =
    let st = Random.State.make [| seed |] in
    let buf = Buffer.create 128 in
    let rec gen depth budget =
      if !budget <= 0 || depth > 5 then ()
      else begin
        let tag = [| "a"; "d"; "x" |].(Random.State.int st 3) in
        decr budget;
        Buffer.add_string buf (Printf.sprintf "<%s>" tag);
        let kids = Random.State.int st 3 in
        for _ = 1 to kids do
          gen (depth + 1) budget
        done;
        Buffer.add_string buf (Printf.sprintf "</%s>" tag)
      end
    in
    let budget = ref 30 in
    while !budget > 0 do
      gen 0 budget
    done;
    Buffer.contents buf
  in
  for seed = 1 to 25 do
    let text = mk_doc seed in
    List.iter
      (fun axis ->
        let expected = naive_pairs ~axis text ~anc:"a" ~desc:"d" in
        let got = std_pairs ~axis text ~anc:"a" ~desc:"d" in
        Alcotest.check pair_list (Printf.sprintf "seed %d" seed) expected got)
      [ Stack_tree_desc.Descendant; Stack_tree_desc.Child ]
  done

(* --- Lazy-Join ------------------------------------------------------- *)

let lazy_pairs ?(axis = Lazy_join.Descendant) log ~anc ~desc =
  let pairs, stats = Lazy_join.run ~axis log ~anc ~desc () in
  (Lazy_join.global_pairs log pairs, stats)

let test_lazy_single_segment () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><a><b/></a></a>");
  let got, stats = lazy_pairs log ~anc:"a" ~desc:"b" in
  Alcotest.check pair_list "pairs" [ (0, 3); (0, 10); (7, 10) ] got;
  check_int "one in-segment join" 1 stats.Lazy_join.in_segment_joins;
  check_int "no cross pairs" 0 stats.Lazy_join.cross_pairs

let test_lazy_cross_segment () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  ignore (Update_log.insert log ~gp:3 "<b/>");
  (* doc: <a><b/></a>; a and b live in different segments. *)
  let got, stats = lazy_pairs log ~anc:"a" ~desc:"b" in
  Alcotest.check pair_list "pairs" [ (0, 3) ] got;
  check_int "cross pair" 1 stats.Lazy_join.cross_pairs;
  check_int "no in-segment" 0 stats.Lazy_join.in_pairs

let test_lazy_example1 () =
  (* Example 1 / Figure 8 of the paper, rebuilt with three segments:
     segment 1 has A-elements, segment 2 sits inside one of them with
     more A-elements, segment 3 inside segment 2 holds the B element. *)
  let log = Update_log.create () in
  (* S1: A4 contains the insertion point of S2; A1, A5 do not. *)
  ignore (Update_log.insert log ~gp:0 "<A/><A><x></x></A><A/>");
  (* S2 inside A4's <x>: has A2 containing S3's point, A3 not. *)
  ignore (Update_log.insert log ~gp:10 "<A><A><y></y></A></A>");
  (* S3 inside the <y>: a B element. *)
  ignore (Update_log.insert log ~gp:19 "<B/>");
  let text = Update_log.materialize log in
  let expected = naive_pairs text ~anc:"A" ~desc:"B" in
  let got, stats = lazy_pairs log ~anc:"A" ~desc:"B" in
  Alcotest.check pair_list "all A//B pairs" expected got;
  check_int "all pairs are cross-segment" (List.length expected) stats.Lazy_join.cross_pairs;
  check_int "no in-segment pairs" 0 stats.Lazy_join.in_pairs;
  check_bool "at least three ancestors" true (List.length expected >= 3)

let test_lazy_skips_disjoint_segments () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<r></r>");
  (* Several sibling segments with A elements that contain no child
     segments, then one with the B. *)
  ignore (Update_log.insert log ~gp:3 "<A>x</A>");
  ignore (Update_log.insert log ~gp:11 "<A>y</A>");
  ignore (Update_log.insert log ~gp:19 "<A><B/></A>");
  let got, stats = lazy_pairs log ~anc:"A" ~desc:"B" in
  Alcotest.check pair_list "one pair" [ (19, 22) ] got;
  (* The two childless A segments are skipped without a push. *)
  check_int "skipped" 2 stats.Lazy_join.segments_skipped

let test_lazy_child_axis () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<A><x></x></A>");
  ignore (Update_log.insert log ~gp:6 "<B/>");
  ignore (Update_log.insert log ~gp:6 "<A><B/></A>");
  let text = Update_log.materialize log in
  List.iter
    (fun (axis, std_axis, name) ->
      let expected = naive_pairs ~axis:std_axis text ~anc:"A" ~desc:"B" in
      let got, _ = lazy_pairs ~axis log ~anc:"A" ~desc:"B" in
      Alcotest.check pair_list name expected got)
    [
      (Lazy_join.Descendant, Stack_tree_desc.Descendant, "descendant");
      (Lazy_join.Child, Stack_tree_desc.Child, "child");
    ]

let test_lazy_missing_tags () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a/>");
  let got, _ = lazy_pairs log ~anc:"a" ~desc:"nope" in
  Alcotest.check pair_list "empty" [] got;
  let got, _ = lazy_pairs log ~anc:"nope" ~desc:"a" in
  Alcotest.check pair_list "empty" [] got

let test_lazy_after_removal () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<A><B/><B/></A>");
  (* Remove the first <B/>. *)
  Update_log.remove log ~gp:3 ~len:4;
  let text = Update_log.materialize log in
  let expected = naive_pairs text ~anc:"A" ~desc:"B" in
  let got, _ = lazy_pairs log ~anc:"A" ~desc:"B" in
  Alcotest.check pair_list "post-removal pairs" expected got

(* --- randomized equivalence over segmented documents ----------------- *)

let fragments =
  [|
    "<A/>";
    "<D/>";
    "<A><D/></A>";
    "<A><A><D/></A><D/></A>";
    "<x><A/><D/></x>";
    "<D><A/></D>";
    "<A>t</A><D/>";
  |]

let string_insert s ~gp frag = String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)
let string_remove s ~gp ~len = String.sub s 0 gp ^ String.sub s (gp + len) (String.length s - gp - len)

let valid_insert_points text frag =
  let ok = ref [] in
  for gp = 0 to String.length text do
    if Lxu_xml.Parser.is_well_formed_fragment (string_insert text ~gp frag) then ok := gp :: !ok
  done;
  List.rev !ok

let element_extents text =
  match Lxu_xml.Parser.parse_fragment_result text with
  | Error _ -> []
  | Ok nodes ->
    let acc = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
        acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !acc);
    List.rev !acc

type edit = Ins of int * int | Del of int

let edit_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map2 (fun a b -> Ins (a, b)) (int_bound 10_000) (int_bound (Array.length fragments - 1)));
        (1, map (fun a -> Del a) (int_bound 10_000));
      ])

let run_equivalence mode edits =
  let log = Update_log.create ~mode () in
  let text = ref "" in
  List.iter
    (fun edit ->
      match edit with
      | Ins (pick, fi) ->
        let frag = fragments.(fi) in
        let points = valid_insert_points !text frag in
        if points <> [] then begin
          let gp = List.nth points (pick mod List.length points) in
          ignore (Update_log.insert log ~gp frag);
          text := string_insert !text ~gp frag
        end
      | Del pick ->
        let extents = element_extents !text in
        if extents <> [] then begin
          let s, e = List.nth extents (pick mod List.length extents) in
          Update_log.remove log ~gp:s ~len:(e - s);
          text := string_remove !text ~gp:s ~len:(e - s)
        end)
    edits;
  List.for_all
    (fun (axis, std_axis) ->
      let expected = naive_pairs ~axis:std_axis !text ~anc:"A" ~desc:"D" in
      let std = std_pairs ~axis:std_axis !text ~anc:"A" ~desc:"D" in
      let lzy, _ = lazy_pairs ~axis log ~anc:"A" ~desc:"D" in
      let base =
        let pairs, _ = Std_baseline.run ~axis:std_axis log ~anc:"A" ~desc:"D" () in
        List.map
          (fun ((a : Interval.t), (d : Interval.t)) -> (a.Interval.start, d.Interval.start))
          pairs
        |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))
      in
      expected = std && expected = lzy && expected = base)
    [ (Lazy_join.Descendant, Stack_tree_desc.Descendant); (Lazy_join.Child, Stack_tree_desc.Child) ]

let prop_equivalence mode name =
  QCheck2.Test.make ~name ~count:120
    QCheck2.Gen.(list_size (int_range 1 15) edit_gen)
    (fun edits -> run_equivalence mode edits)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_equivalence Update_log.Lazy_dynamic "lazy-join(LD) = STD = naive on random docs";
      prop_equivalence Update_log.Lazy_static "lazy-join(LS) = STD = naive on random docs";
    ]

let suite =
  [
    Alcotest.test_case "std simple" `Quick test_std_simple;
    Alcotest.test_case "std child axis" `Quick test_std_child_axis;
    Alcotest.test_case "std empty inputs" `Quick test_std_empty_inputs;
    Alcotest.test_case "std adjacent not contained" `Quick test_std_adjacent_not_contained;
    Alcotest.test_case "std = naive (random)" `Quick test_std_matches_naive_random;
    Alcotest.test_case "lazy single segment" `Quick test_lazy_single_segment;
    Alcotest.test_case "lazy cross segment" `Quick test_lazy_cross_segment;
    Alcotest.test_case "lazy example 1" `Quick test_lazy_example1;
    Alcotest.test_case "lazy skips disjoint segments" `Quick test_lazy_skips_disjoint_segments;
    Alcotest.test_case "lazy child axis" `Quick test_lazy_child_axis;
    Alcotest.test_case "lazy missing tags" `Quick test_lazy_missing_tags;
    Alcotest.test_case "lazy after removal" `Quick test_lazy_after_removal;
  ]
  @ props
