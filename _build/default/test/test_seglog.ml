(* Tests for the update log: segment insertion/removal (Figures 5 and
   7), coordinates, tag-list and element-index maintenance.  The gold
   oracle is materialization: the log must reconstruct exactly the text
   that naive string editing produces, and its derived global element
   labels must match a fresh parse of that text. *)

open Lxu_seglog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Naive reference: apply the same edit to a plain string. *)
let string_insert s ~gp frag = String.sub s 0 gp ^ frag ^ String.sub s gp (String.length s - gp)
let string_remove s ~gp ~len = String.sub s 0 gp ^ String.sub s (gp + len) (String.length s - gp - len)

(* Global labels from a fresh parse of [text] (start, stop, level) per
   tag — the ground truth for [global_elements]. *)
let fresh_labels text ~tag =
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let acc = ref [] in
  Lxu_xml.Tree.iter_elements nodes (fun e ~level ->
      if e.Lxu_xml.Tree.tag = tag then
        acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end, level) :: !acc);
  List.sort compare !acc

let log_agrees_with_text log text =
  Update_log.check log;
  let materialized = Update_log.materialize log in
  if materialized <> text then
    Alcotest.failf "materialize mismatch:\n  log : %s\n  text: %s" materialized text;
  check_int "doc_length" (String.length text) (Update_log.doc_length log);
  let tags =
    match Lxu_xml.Parser.parse_fragment_result text with
    | Ok nodes -> Lxu_xml.Tree.distinct_tags nodes
    | Error _ -> Alcotest.fail "reference text is ill-formed"
  in
  List.iter
    (fun tag ->
      let expected = fresh_labels text ~tag in
      let got = Update_log.global_elements log ~tag in
      if got <> expected then
        Alcotest.failf "global labels of <%s> differ:\n  log : %s\n  text: %s" tag
          (String.concat "; " (List.map (fun (a, b, l) -> Printf.sprintf "(%d,%d,%d)" a b l) got))
          (String.concat "; " (List.map (fun (a, b, l) -> Printf.sprintf "(%d,%d,%d)" a b l) expected)))
    tags

(* --- basic insertion ------------------------------------------------ *)

let test_empty () =
  let log = Update_log.create () in
  check_int "doc length" 0 (Update_log.doc_length log);
  check_int "segments" 0 (Update_log.segment_count log);
  check_int "elements" 0 (Update_log.element_count log);
  check_string "materialize" "" (Update_log.materialize log);
  Update_log.check log

let test_single_segment () =
  let log = Update_log.create () in
  let sid = Update_log.insert log ~gp:0 "<a><b/></a>" in
  check_int "sid" 1 sid;
  check_int "segments" 1 (Update_log.segment_count log);
  check_int "elements" 2 (Update_log.element_count log);
  log_agrees_with_text log "<a><b/></a>";
  let n = Update_log.node_of_sid log sid in
  check_int "gp" 0 n.Er_node.gp;
  check_int "len" 11 n.Er_node.len;
  check_int "lp" 0 n.Er_node.lp;
  check_int "base level" 0 n.Er_node.base_level

let test_nested_insertion () =
  let log = Update_log.create () in
  let s1 = Update_log.insert log ~gp:0 "<a><b></b></a>" in
  (* Insert inside <b>: position 6 (after "<a><b>"). *)
  let s2 = Update_log.insert log ~gp:6 "<c>x</c>" in
  log_agrees_with_text log "<a><b><c>x</c></b></a>";
  let n1 = Update_log.node_of_sid log s1 in
  let n2 = Update_log.node_of_sid log s2 in
  check_int "s1 len grew" 22 n1.Er_node.len;
  check_int "s2 gp" 6 n2.Er_node.gp;
  check_int "s2 lp" 6 n2.Er_node.lp;
  check_int "s2 base level" 2 n2.Er_node.base_level;
  check_bool "s2 child of s1" true
    (match n2.Er_node.parent with Some p -> p.Er_node.sid = s1 | None -> false);
  (* The <c> element must report absolute level 2. *)
  (match Update_log.global_elements log ~tag:"c" with
  | [ (6, 14, 2) ] -> ()
  | other ->
    Alcotest.failf "unexpected c labels: %s"
      (String.concat ";" (List.map (fun (a, b, l) -> Printf.sprintf "(%d,%d,%d)" a b l) other)))

let test_sibling_insertion_shifts () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  (* Two siblings inserted at the same point inside <a>; the second
     lands before the first. *)
  let sx = Update_log.insert log ~gp:3 "<x/>" in
  let sy = Update_log.insert log ~gp:3 "<y/>" in
  log_agrees_with_text log "<a><y/><x/></a>";
  let nx = Update_log.node_of_sid log sx in
  let ny = Update_log.node_of_sid log sy in
  check_int "y gp" 3 ny.Er_node.gp;
  check_int "x shifted" 7 nx.Er_node.gp;
  (* Local positions never change: both were inserted at local 3. *)
  check_int "x lp" 3 nx.Er_node.lp;
  check_int "y lp" 3 ny.Er_node.lp

let test_local_position_after_left_sibling () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a>0123456789</a>");
  let s1 = Update_log.insert log ~gp:5 "<b/>" in
  (* Insert after <b/> in the text: global 9+4=... choose position 12
     (global), which is local 8 of the <a> segment. *)
  let s2 = Update_log.insert log ~gp:12 "<c/>" in
  log_agrees_with_text log "<a>01<b/>234<c/>56789</a>";
  let n1 = Update_log.node_of_sid log s1 in
  let n2 = Update_log.node_of_sid log s2 in
  check_int "b lp" 5 n1.Er_node.lp;
  (* Definition 2: lp = gp - parent.gp - sum of left sibling lengths. *)
  check_int "c lp" 8 n2.Er_node.lp

let test_insert_into_empty_doc_multiple_roots () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a/>");
  ignore (Update_log.insert log ~gp:4 "<b/>");
  ignore (Update_log.insert log ~gp:0 "<c/>");
  log_agrees_with_text log "<c/><a/><b/>"

let test_insert_errors () =
  let log = Update_log.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Update_log.insert: empty segment")
    (fun () -> ignore (Update_log.insert log ~gp:0 ""));
  Alcotest.check_raises "oob" (Invalid_argument "Update_log.insert: gp out of bounds")
    (fun () -> ignore (Update_log.insert log ~gp:1 "<a/>"));
  check_bool "ill-formed rejected" true
    (match Update_log.insert log ~gp:0 "<a>" with
    | exception Lxu_xml.Parser.Parse_error _ -> true
    | _ -> false);
  (* A failed parse must not corrupt the log. *)
  Update_log.check log;
  check_int "still empty" 0 (Update_log.segment_count log)

(* --- tag-list and element index ------------------------------------- *)

let test_tag_list_paths () =
  let log = Update_log.create () in
  let s1 = Update_log.insert log ~gp:0 "<a><b/></a>" in
  let s2 = Update_log.insert log ~gp:3 "<a><b/><b/></a>" in
  let entries = Update_log.segments_for_tag log ~tag:"b" in
  check_int "two segments hold b" 2 (Array.length entries);
  (* Sorted by gp: s2 (gp 3) is inside s1 (gp 0). *)
  check_int "first is s1" s1 entries.(0).Tag_list.sid;
  check_int "second is s2" s2 entries.(1).Tag_list.sid;
  check_bool "path of s2" true (entries.(1).Tag_list.path = [| 0; s1; s2 |]);
  check_int "count of b in s2" 2 entries.(1).Tag_list.count;
  let tid = Option.get (Tag_registry.find (Update_log.registry log) "b") in
  let elems = Update_log.elements_of log ~tid ~sid:s2 in
  check_int "b records in s2" 2 (Array.length elems)

let test_unknown_tag () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a/>");
  check_int "no entries" 0 (Array.length (Update_log.segments_for_tag log ~tag:"zz"))

(* --- removal --------------------------------------------------------- *)

let test_remove_own_text () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><c/></a>");
  (* Remove "<b/>" = [3, 7): inside the only segment. *)
  Update_log.remove log ~gp:3 ~len:4;
  log_agrees_with_text log "<a><c/></a>";
  check_int "segments" 1 (Update_log.segment_count log);
  check_int "elements" 2 (Update_log.element_count log)

let test_remove_whole_segment () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  let s2 = Update_log.insert log ~gp:3 "<b>xx</b>" in
  Update_log.remove log ~gp:3 ~len:9;
  log_agrees_with_text log "<a></a>";
  check_int "segments" 1 (Update_log.segment_count log);
  check_bool "s2 gone" true
    (match Update_log.node_of_sid log s2 with exception Not_found -> true | _ -> false);
  check_int "b entries gone" 0 (Array.length (Update_log.segments_for_tag log ~tag:"b"))

let test_remove_with_descendants () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  ignore (Update_log.insert log ~gp:3 "<b></b>");
  ignore (Update_log.insert log ~gp:6 "<c/>");
  (* doc: <a><b><c/></b></a>; removing <b>...</b> kills c too. *)
  Update_log.remove log ~gp:3 ~len:11;
  log_agrees_with_text log "<a></a>";
  check_int "segments" 1 (Update_log.segment_count log)

let test_remove_left_intersection () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><c/></a>");
  let s2 = Update_log.insert log ~gp:7 "<d/><e/>" in
  (* doc: <a><b/><d/><e/><c/></a>.  Remove "<e/><c/>" = [11, 19):
     left-intersects segment s2 (loses its tail <e/>) and removes own
     text of s1. *)
  Update_log.remove log ~gp:11 ~len:8;
  log_agrees_with_text log "<a><b/><d/></a>";
  let n2 = Update_log.node_of_sid log s2 in
  check_int "s2 shrank" 4 n2.Er_node.len;
  check_int "s2 kept gp" 7 n2.Er_node.gp

let test_remove_right_intersection () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><c/></a>");
  let s2 = Update_log.insert log ~gp:7 "<d/><e/>" in
  (* doc: <a><b/><d/><e/><c/></a>.  Remove "<b/><d/>" = [3, 11):
     right-intersects s2 (loses its head <d/>). *)
  Update_log.remove log ~gp:3 ~len:8;
  log_agrees_with_text log "<a><e/><c/></a>";
  let n2 = Update_log.node_of_sid log s2 in
  check_int "s2 shrank" 4 n2.Er_node.len;
  check_int "s2 gp moved to removal start" 3 n2.Er_node.gp;
  (* The surviving <e/> keeps its virtual label [4,8) inside s2. *)
  let tid = Option.get (Tag_registry.find (Update_log.registry log) "e") in
  (match Update_log.elements_of log ~tid ~sid:s2 with
  | [| e |] ->
    check_int "e virtual start unchanged" 4 e.Element_index.start;
    check_int "e virtual stop unchanged" 8 e.Element_index.stop
  | _ -> Alcotest.fail "expected exactly one e record")

let test_remove_figure6_combination () =
  (* Mirrors Figure 6: one removal that is contained in a segment,
     fully covers others, and left/right-intersects more. *)
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<r></r>");
  ignore (Update_log.insert log ~gp:3 "<s><t/><u/></s>");
  ignore (Update_log.insert log ~gp:6 "<v/>");
  ignore (Update_log.insert log ~gp:22 "<w><x/></w>");
  let text = "<r><s><v/><t/><u/></s><w><x/></w></r>" in
  log_agrees_with_text log text;
  (* Remove "<t/><u/></s><w><x/>" — ill-formed; instead remove
     "<t/><u/>" = [10, 18): contained in s, after v. *)
  Update_log.remove log ~gp:10 ~len:8;
  log_agrees_with_text log "<r><s><v/></s><w><x/></w></r>";
  (* Now remove the whole of s and w: "<s><v/></s><w><x/></w>" =
     [3, 25). *)
  Update_log.remove log ~gp:3 ~len:22;
  log_agrees_with_text log "<r></r>"

let test_remove_errors () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/></a>");
  Alcotest.check_raises "oob" (Invalid_argument "Update_log.remove: range out of bounds")
    (fun () -> Update_log.remove log ~gp:5 ~len:100);
  Alcotest.check_raises "zero len" (Invalid_argument "Update_log.remove: non-positive length")
    (fun () -> Update_log.remove log ~gp:0 ~len:0);
  Alcotest.check_raises "splits element"
    (Invalid_argument "Update_log.remove: range splits an element (not a well-formed fragment)")
    (fun () -> Update_log.remove log ~gp:3 ~len:2);
  (* Removal is atomic: the rejected edit left the log untouched. *)
  log_agrees_with_text log "<a><b/></a>";
  (* A rejection nested below a child segment, too. *)
  ignore (Update_log.insert log ~gp:3 "<c><d/>x</c>");
  Alcotest.check_raises "nested split"
    (Invalid_argument "Update_log.remove: range splits an element (not a well-formed fragment)")
    (fun () -> Update_log.remove log ~gp:7 ~len:5);
  log_agrees_with_text log "<a><c><d/>x</c><b/></a>"

let test_remove_reinsert_into_gap () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><c/></a>");
  Update_log.remove log ~gp:3 ~len:4;
  (* Gap where <b/> was; insert a new segment right there. *)
  ignore (Update_log.insert log ~gp:3 "<d/>");
  log_agrees_with_text log "<a><d/><c/></a>"

(* --- modes ----------------------------------------------------------- *)

let test_lazy_static_mode () =
  let log = Update_log.create ~mode:Update_log.Lazy_static () in
  ignore (Update_log.insert log ~gp:0 "<a><b/></a>");
  ignore (Update_log.insert log ~gp:3 "<b>x</b>");
  (* Tag list is dirty before preparation. *)
  check_bool "dirty" true (Tag_list.is_dirty (Update_log.tag_list log));
  Update_log.prepare_for_query log;
  check_bool "clean" false (Tag_list.is_dirty (Update_log.tag_list log));
  let entries = Update_log.segments_for_tag log ~tag:"b" in
  check_int "both segments" 2 (Array.length entries);
  log_agrees_with_text log "<a><b>x</b><b/></a>"

let test_metrics () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  ignore (Update_log.insert log ~gp:3 "<b/>");
  ignore (Update_log.insert log ~gp:3 "<c/>");
  let m = Update_log.metrics log in
  check_int "inserts" 3 m.Update_log.segments_inserted;
  check_bool "shifts counted" true (m.Update_log.gp_shifts > 0)

(* --- size accounting -------------------------------------------------- *)

let test_sizes_grow () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  let s1 = Update_log.size_bytes log in
  for i = 0 to 9 do
    ignore (Update_log.insert log ~gp:(3 + (4 * i)) "<b/>")
  done;
  let s2 = Update_log.size_bytes log in
  check_bool "log grew" true (s2 > s1);
  check_bool "sb part" true (Update_log.sb_size_bytes log > 0);
  check_bool "tag-list part" true (Update_log.tag_list_size_bytes log > 0)

(* --- the oracle property --------------------------------------------- *)

(* Random edit schedules over a growing document, mirrored on a plain
   string.  Insertions pick any split point that keeps the fragment
   well-formed; removals pick the extent of a random element (always a
   well-formed range). *)

let fragments =
  [|
    "<a/>";
    "<b>text</b>";
    "<c><a/><b/></c>";
    "<d k=\"v\">mixed<a/>tail</d>";
    "<e><e><e/></e></e>";
    "<f/><g/>";
  |]

let valid_insert_points text frag =
  let n = String.length text in
  let ok = ref [] in
  for gp = 0 to n do
    let candidate = string_insert text ~gp frag in
    if Lxu_xml.Parser.is_well_formed_fragment candidate then ok := gp :: !ok
  done;
  List.rev !ok

let element_extents text =
  match Lxu_xml.Parser.parse_fragment_result text with
  | Error _ -> []
  | Ok nodes ->
    let acc = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level:_ ->
        acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end) :: !acc);
    List.rev !acc

type edit = Ins of int * int | Del of int

let edit_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a b -> Ins (a, b)) (int_bound 10_000) (int_bound (Array.length fragments - 1));
        map (fun a -> Del a) (int_bound 10_000);
      ])

let run_schedule mode edits =
  let log = Update_log.create ~mode () in
  let text = ref "" in
  List.iter
    (fun edit ->
      match edit with
      | Ins (pick, fi) ->
        let frag = fragments.(fi) in
        let points = valid_insert_points !text frag in
        if points <> [] then begin
          let gp = List.nth points (pick mod List.length points) in
          ignore (Update_log.insert log ~gp frag);
          text := string_insert !text ~gp frag
        end
      | Del pick ->
        let extents = element_extents !text in
        if extents <> [] then begin
          let s, e = List.nth extents (pick mod List.length extents) in
          Update_log.remove log ~gp:s ~len:(e - s);
          text := string_remove !text ~gp:s ~len:(e - s)
        end)
    edits;
  Update_log.prepare_for_query log;
  log_agrees_with_text log !text;
  true

let prop_oracle mode name =
  QCheck2.Test.make ~name ~count:120
    QCheck2.Gen.(list_size (int_range 1 14) edit_gen)
    (fun edits -> run_schedule mode edits)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_oracle Update_log.Lazy_dynamic "oracle: LD random edits = text editing";
      prop_oracle Update_log.Lazy_static "oracle: LS random edits = text editing";
    ]

let suite =
  [
    Alcotest.test_case "empty log" `Quick test_empty;
    Alcotest.test_case "single segment" `Quick test_single_segment;
    Alcotest.test_case "nested insertion" `Quick test_nested_insertion;
    Alcotest.test_case "sibling insertion shifts" `Quick test_sibling_insertion_shifts;
    Alcotest.test_case "lp after left sibling" `Quick test_local_position_after_left_sibling;
    Alcotest.test_case "multiple roots" `Quick test_insert_into_empty_doc_multiple_roots;
    Alcotest.test_case "insert errors" `Quick test_insert_errors;
    Alcotest.test_case "tag-list paths" `Quick test_tag_list_paths;
    Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
    Alcotest.test_case "remove own text" `Quick test_remove_own_text;
    Alcotest.test_case "remove whole segment" `Quick test_remove_whole_segment;
    Alcotest.test_case "remove with descendants" `Quick test_remove_with_descendants;
    Alcotest.test_case "remove left intersection" `Quick test_remove_left_intersection;
    Alcotest.test_case "remove right intersection" `Quick test_remove_right_intersection;
    Alcotest.test_case "remove figure-6 combination" `Quick test_remove_figure6_combination;
    Alcotest.test_case "remove errors" `Quick test_remove_errors;
    Alcotest.test_case "reinsert into gap" `Quick test_remove_reinsert_into_gap;
    Alcotest.test_case "lazy static mode" `Quick test_lazy_static_mode;
    Alcotest.test_case "metrics" `Quick test_metrics;
    Alcotest.test_case "sizes grow" `Quick test_sizes_grow;
  ]
  @ props

let test_metrics_counting () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  ignore (Update_log.insert log ~gp:3 "<b/>");
  Update_log.remove log ~gp:3 ~len:4;
  let m = Update_log.metrics log in
  check_int "segments removed" 1 m.Update_log.segments_removed;
  check_int "elements removed" 1 m.Update_log.elements_removed;
  check_bool "nodes visited" true (m.Update_log.nodes_visited > 0)

let test_doc_length_tracks_edits () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  check_int "after insert" 7 (Update_log.doc_length log);
  ignore (Update_log.insert log ~gp:3 "<b>xy</b>");
  check_int "after second" 16 (Update_log.doc_length log);
  Update_log.remove log ~gp:3 ~len:9;
  check_int "after remove" 7 (Update_log.doc_length log)

let test_remove_whole_document () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/></a>");
  Update_log.remove log ~gp:0 ~len:11;
  check_int "empty" 0 (Update_log.doc_length log);
  check_int "no segments" 0 (Update_log.segment_count log);
  check_string "materializes empty" "" (Update_log.materialize log);
  (* And the log remains usable. *)
  ignore (Update_log.insert log ~gp:0 "<c/>");
  log_agrees_with_text log "<c/>"

let test_multiple_tombstones_one_segment () =
  let log = Update_log.create () in
  ignore (Update_log.insert log ~gp:0 "<a><b/><c/><d/><e/></a>");
  (* Remove <c/> = [7, 11), then <b/> = [3, 7) creating two gaps
     merged into one tombstone, then <e/>. *)
  Update_log.remove log ~gp:7 ~len:4;
  log_agrees_with_text log "<a><b/><d/><e/></a>";
  Update_log.remove log ~gp:3 ~len:4;
  log_agrees_with_text log "<a><d/><e/></a>";
  Update_log.remove log ~gp:7 ~len:4;
  log_agrees_with_text log "<a><d/></a>";
  (* Reinsert into the merged gap region. *)
  ignore (Update_log.insert log ~gp:3 "<x/>");
  log_agrees_with_text log "<a><x/><d/></a>"

let suite =
  suite
  @ [
      Alcotest.test_case "metrics counting" `Quick test_metrics_counting;
      Alcotest.test_case "doc length tracks edits" `Quick test_doc_length_tracks_edits;
      Alcotest.test_case "remove whole document" `Quick test_remove_whole_document;
      Alcotest.test_case "multiple tombstones" `Quick test_multiple_tombstones_one_segment;
    ]

(* Arbitrary (often invalid) removal ranges: either the removal is
   rejected and the log is byte-identical to before, or it succeeds and
   materialization equals plain string deletion; when the result text
   happens to be well-formed, derived labels must also match a fresh
   parse. *)
let prop_arbitrary_removal_ranges =
  let gen =
    QCheck2.Gen.(pair (list_size (int_range 1 6) (pair (int_bound 500) (int_bound 5)))
                   (list_size (int_range 1 8) (pair (int_bound 1000) (int_bound 1000))))
  in
  QCheck2.Test.make ~name:"removal is atomic on arbitrary ranges" ~count:100 gen
    (fun (inserts, removals) ->
      let log = Update_log.create () in
      let text = ref "" in
      List.iter
        (fun (pick, fi) ->
          let frag = fragments.(fi) in
          let points = valid_insert_points !text frag in
          if points <> [] then begin
            let gp = List.nth points (pick mod List.length points) in
            ignore (Update_log.insert log ~gp frag);
            text := string_insert !text ~gp frag
          end)
        inserts;
      List.for_all
        (fun (p1, p2) ->
          let n = String.length !text in
          if n = 0 then true
          else begin
            let gp = p1 mod n in
            let len = 1 + (p2 mod (n - gp)) in
            match Update_log.remove log ~gp ~len with
            | () ->
              text := string_remove !text ~gp ~len;
              Update_log.materialize log = !text
            | exception Invalid_argument _ -> Update_log.materialize log = !text
          end)
        removals)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_arbitrary_removal_ranges ]

let test_lazy_static_removal () =
  (* LS removals must also keep derived structures consistent once the
     log is prepared. *)
  let log = Update_log.create ~mode:Update_log.Lazy_static () in
  ignore (Update_log.insert log ~gp:0 "<a></a>");
  ignore (Update_log.insert log ~gp:3 "<b/>");
  ignore (Update_log.insert log ~gp:3 "<b/>");
  Update_log.remove log ~gp:3 ~len:4;
  Update_log.prepare_for_query log;
  log_agrees_with_text log "<a><b/></a>";
  check_int "one b entry" 1 (Array.length (Update_log.segments_for_tag log ~tag:"b"))

let test_small_branching_log () =
  (* A tiny B+-tree branching factor forces splits and merges in the
     SB-tree and element index during ordinary use. *)
  let log = Update_log.create ~branching:4 () in
  ignore (Update_log.insert log ~gp:0 "<r></r>");
  for _ = 1 to 40 do
    ignore (Update_log.insert log ~gp:3 "<x><y/></x>")
  done;
  for _ = 1 to 30 do
    Update_log.remove log ~gp:3 ~len:11
  done;
  Update_log.check log;
  check_int "ten left" 10 (Array.length (Update_log.segments_for_tag log ~tag:"x"))

let suite =
  suite
  @ [
      Alcotest.test_case "lazy static removal" `Quick test_lazy_static_removal;
      Alcotest.test_case "small branching log" `Quick test_small_branching_log;
    ]

(* Oracle with attribute indexing on: attribute records must track the
   fresh parse exactly like element records do. *)
let prop_oracle_with_attributes =
  let frags =
    [| "<a k=\"1\"/>"; "<b k=\"2\" m=\"x\">t</b>"; "<c><a k=\"3\"/></c>"; "<d>t</d>" |]
  in
  QCheck2.Test.make ~name:"oracle: attribute records track fresh parse" ~count:80
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_bound 1000) (int_bound 3)))
    (fun picks ->
      let log = Update_log.create ~index_attributes:true () in
      let text = ref "" in
      List.iter
        (fun (pick, fi) ->
          let frag = frags.(fi) in
          let points = valid_insert_points !text frag in
          if points <> [] then begin
            let gp = List.nth points (pick mod List.length points) in
            ignore (Update_log.insert log ~gp frag);
            text := string_insert !text ~gp frag
          end)
        picks;
      Update_log.check log;
      (* Fresh attribute labels per @name. *)
      let fresh = Hashtbl.create 8 in
      Lxu_xml.Tree.iter_labels ~attributes:true
        (Lxu_xml.Parser.parse_fragment !text)
        (fun ~name ~start ~stop ~level ->
          if name.[0] = '@' then
            Hashtbl.replace fresh name
              ((start, stop, level)
              :: Option.value ~default:[] (Hashtbl.find_opt fresh name)));
      Hashtbl.fold
        (fun name labels ok ->
          ok && Update_log.global_elements log ~tag:name = List.sort compare labels)
        fresh true)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_oracle_with_attributes ]
