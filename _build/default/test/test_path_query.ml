(* Tests for the XPath-subset layer: parsing, evaluation strategies,
   engine equivalence, and a naive oracle. *)

open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- parsing --------------------------------------------------------- *)

let test_parse_forms () =
  let show s = Path_query.to_string (Path_query.parse_exn s) in
  check_string "bare tag" "//a" (show "a");
  check_string "leading //" "//a//b" (show "//a//b");
  check_string "leading /" "/a/b" (show "/a/b");
  check_string "mixed" "//a/b//c" (show "a/b//c")

let test_parse_errors () =
  let bad s =
    match Path_query.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "empty" true (bad "");
  check_bool "just slash" true (bad "/");
  check_bool "triple slash" true (bad "///a");
  check_bool "trailing slash" true (bad "a/");
  check_bool "space" true (bad "a b")

(* --- naive oracle ----------------------------------------------------- *)

(* Final-step matches by brute force over a fresh parse. *)
let naive_eval text path =
  let steps = Path_query.parse_exn path in
  let labels tag =
    let nodes = Lxu_xml.Parser.parse_fragment text in
    let acc = ref [] in
    Lxu_xml.Tree.iter_elements nodes (fun e ~level ->
        if e.Lxu_xml.Tree.tag = tag then
          acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end, level) :: !acc);
    !acc
  in
  match steps with
  | [] -> []
  | first :: rest ->
    let initial =
      List.filter
        (fun (_, _, l) -> first.Path_query.axis = Path_query.Desc || l = 0)
        (labels first.Path_query.tag)
    in
    let final =
      List.fold_left
        (fun survivors step ->
          List.filter
            (fun (s, e, l) ->
              List.exists
                (fun (ps, pe, pl) ->
                  ps < s && pe > e
                  && (step.Path_query.axis = Path_query.Desc || l = pl + 1))
                survivors)
            (labels step.Path_query.tag))
        initial rest
    in
    List.sort compare (List.map (fun (s, e, _) -> (s, e)) final)

let doc =
  "<site><people><person><profile><interest/><interest/></profile>"
  ^ "<watches><watch/></watches></person><person><profile/></person></people>"
  ^ "<interest/></site>"

let load engine segments =
  let db = Lazy_db.create ~engine () in
  if segments <= 1 then Lazy_db.insert db ~gp:0 doc
  else
    List.iter
      (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
      (Lxu_workload.Chopper.chop ~text:doc ~segments Lxu_workload.Chopper.Balanced);
  db

let paths =
  [
    "//person//interest";
    "//person/profile/interest";
    "/site//interest";
    "/site/people/person";
    "//people//profile";
    "//person/interest";
    "//nosuch//interest";
    "//person//nosuch";
  ]

let test_matches_naive () =
  let db = load Lazy_db.LD 6 in
  List.iter
    (fun path ->
      let expected = naive_eval doc path in
      Alcotest.(check (list (pair int int))) path expected (Path_query.eval_string db path))
    paths

let test_strategies_and_engines_agree () =
  let dbs =
    [
      ("LD", load Lazy_db.LD 6, Path_query.Pairwise);
      ("LD-holistic", load Lazy_db.LD 6, Path_query.Holistic);
      ("LS", load Lazy_db.LS 6, Path_query.Pairwise);
      ("LS-holistic", load Lazy_db.LS 6, Path_query.Holistic);
      ("STD", load Lazy_db.STD 1, Path_query.Pairwise);
      ("one-segment", load Lazy_db.LD 1, Path_query.Pairwise);
    ]
  in
  List.iter
    (fun path ->
      let expected = naive_eval doc path in
      List.iter
        (fun (name, db, strategy) ->
          Alcotest.(check (list (pair int int)))
            (path ^ " on " ^ name)
            expected
            (Path_query.eval_string ~strategy db path))
        dbs)
    paths

let test_count () =
  let db = load Lazy_db.LD 4 in
  check_int "interests under persons" 2 (Path_query.count db "//person//interest");
  check_int "all interests" 3 (Path_query.count db "//interest");
  check_int "rooted" 3 (Path_query.count db "/site//interest")

let test_eval_after_update () =
  let db = load Lazy_db.LD 4 in
  let before = Path_query.count db "//person//interest" in
  (* Add an interest inside the second person's profile. *)
  let text = Lazy_db.text db in
  let needle = "<profile/>" in
  let n = String.length needle in
  let rec find i = if String.sub text i n = needle then i else find (i + 1) in
  let at = find 0 + String.length "<profile" in
  (* Replace the self-closing profile by inserting... instead insert a
     whole new watches sibling before it. *)
  ignore at;
  let pos = find 0 in
  Lazy_db.insert db ~gp:pos "<profile><interest/></profile>";
  check_int "one more" (before + 1) (Path_query.count db "//person//interest");
  check_bool "oracle agrees" true
    (Path_query.eval_string db "//person//interest"
    = naive_eval (Lazy_db.text db) "//person//interest")

let prop_random_docs =
  let fragments =
    [| "<a/>"; "<b><c/></b>"; "<a><b><c/></b></a>"; "<c><a/></c>"; "<b/><c/>" |]
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 10) (pair (int_bound 1000) (int_bound 4))) in
  QCheck2.Test.make ~name:"path query = naive on random docs" ~count:60 gen
    (fun picks ->
      let db = Lazy_db.create () in
      let text = ref "" in
      List.iter
        (fun (pick, fi) ->
          let frag = fragments.(fi) in
          let points = ref [] in
          for gp = 0 to String.length !text do
            let cand =
              String.sub !text 0 gp ^ frag ^ String.sub !text gp (String.length !text - gp)
            in
            if Lxu_xml.Parser.is_well_formed_fragment cand then points := gp :: !points
          done;
          match !points with
          | [] -> ()
          | ps ->
            let gp = List.nth ps (pick mod List.length ps) in
            Lazy_db.insert db ~gp frag;
            text :=
              String.sub !text 0 gp ^ frag ^ String.sub !text gp (String.length !text - gp))
        picks;
      List.for_all
        (fun path ->
          naive_eval !text path = Path_query.eval_string db path
          && naive_eval !text path = Path_query.eval_string ~strategy:Path_query.Holistic db path)
        [ "//a//c"; "//a/b/c"; "/a//c"; "//b/c"; "//a//b//c" ])

let suite =
  [
    Alcotest.test_case "parse forms" `Quick test_parse_forms;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "matches naive oracle" `Quick test_matches_naive;
    Alcotest.test_case "strategies and engines agree" `Quick test_strategies_and_engines_agree;
    Alcotest.test_case "count" `Quick test_count;
    Alcotest.test_case "eval after update" `Quick test_eval_after_update;
    QCheck_alcotest.to_alcotest prop_random_docs;
  ]

(* --- twig predicates ---------------------------------------------------- *)

(* An independent oracle evaluated directly on the parsed tree. *)
let naive_twig text path =
  let steps = Path_query.parse_exn path in
  let forest = Lxu_xml.Parser.parse_fragment text in
  let child_elems e =
    List.filter_map
      (function Lxu_xml.Tree.Element c -> Some c | _ -> None)
      e.Lxu_xml.Tree.children
  in
  let rec descendants e =
    List.concat_map (fun c -> c :: descendants c) (child_elems e)
  in
  let roots = List.filter_map (function Lxu_xml.Tree.Element e -> Some e | _ -> None) forest in
  let all_elements = List.concat_map (fun r -> r :: descendants r) roots in
  (* Elements reachable from [anchor] (None = virtual root) via the
     relative path [steps]; predicates checked existentially. *)
  let rec reach anchor steps =
    match steps with
    | [] -> (match anchor with Some e -> [ e ] | None -> [])
    | s :: rest ->
      let pool =
        match (anchor, s.Path_query.axis) with
        | None, Path_query.Desc -> all_elements
        | None, Path_query.Child -> roots
        | Some e, Path_query.Desc -> descendants e
        | Some e, Path_query.Child -> child_elems e
      in
      let here =
        List.filter
          (fun e ->
            e.Lxu_xml.Tree.tag = s.Path_query.tag
            && List.for_all (fun p -> reach (Some e) p <> []) s.Path_query.predicates)
          pool
      in
      List.concat_map (fun e -> reach (Some e) rest) here
  in
  reach None steps
  |> List.map (fun e -> (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end))
  |> List.sort_uniq compare

let twig_doc =
  "<site><person><profile><interest/></profile><name>a</name></person>"
  ^ "<person><name>b</name></person>"
  ^ "<person><profile/><watches><watch/></watches><name>c</name></person></site>"

let twig_paths =
  [
    "//person[profile]/name";
    "//person[profile/interest]/name";
    "//person[profile][watches]/name";
    "//person[watches/watch]//name";
    "//site[person[profile/interest]]//watch";
    "//person[nosuch]/name";
    "/site/person[profile]";
    "//person[profile[interest]]";
  ]

let test_twig_predicates () =
  List.iter
    (fun engine ->
      let db = Lazy_db.create ~engine () in
      Lazy_db.insert db ~gp:0 twig_doc;
      List.iter
        (fun path ->
          let expected = naive_twig twig_doc path in
          Alcotest.(check (list (pair int int)))
            (path ^ " / " ^ (match engine with Lazy_db.LD -> "LD" | Lazy_db.LS -> "LS" | Lazy_db.STD -> "STD"))
            expected
            (Path_query.eval_string db path))
        twig_paths)
    [ Lazy_db.LD; Lazy_db.LS; Lazy_db.STD ]

let test_twig_holistic_strategy () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 twig_doc;
  List.iter
    (fun path ->
      Alcotest.(check (list (pair int int)))
        (path ^ " holistic")
        (naive_twig twig_doc path)
        (Path_query.eval_string ~strategy:Path_query.Holistic db path))
    twig_paths

let test_twig_segmented () =
  let db = Lazy_db.create () in
  List.iter
    (fun (gp, frag) -> Lazy_db.insert db ~gp frag)
    (Lxu_workload.Chopper.chop ~text:twig_doc ~segments:6 Lxu_workload.Chopper.Balanced);
  List.iter
    (fun path ->
      Alcotest.(check (list (pair int int)))
        path (naive_twig twig_doc path) (Path_query.eval_string db path))
    twig_paths

let test_twig_parse_roundtrip () =
  List.iter
    (fun path ->
      let t = Path_query.parse_exn path in
      let printed = Path_query.to_string t in
      check_bool (path ^ " reparses") true (Path_query.parse_exn printed = t))
    twig_paths

let test_twig_parse_errors () =
  let bad s = match Path_query.parse s with Ok _ -> false | Error _ -> true in
  check_bool "unclosed" true (bad "//a[b");
  check_bool "empty pred" true (bad "//a[]");
  check_bool "stray bracket" true (bad "//a]b")

let prop_twig_random =
  let fragments =
    [| "<a/>"; "<b><c/></b>"; "<a><b><c/></b></a>"; "<c><a/></c>"; "<b/><c/>" |]
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 8) (pair (int_bound 1000) (int_bound 4))) in
  QCheck2.Test.make ~name:"twig predicates = tree oracle on random docs" ~count:50 gen
    (fun picks ->
      let db = Lazy_db.create () in
      let text = ref "" in
      List.iter
        (fun (pick, fi) ->
          let frag = fragments.(fi) in
          let points = ref [] in
          for gp = 0 to String.length !text do
            let cand =
              String.sub !text 0 gp ^ frag ^ String.sub !text gp (String.length !text - gp)
            in
            if Lxu_xml.Parser.is_well_formed_fragment cand then points := gp :: !points
          done;
          match !points with
          | [] -> ()
          | ps ->
            let gp = List.nth ps (pick mod List.length ps) in
            Lazy_db.insert db ~gp frag;
            text :=
              String.sub !text 0 gp ^ frag ^ String.sub !text gp (String.length !text - gp))
        picks;
      List.for_all
        (fun path ->
          naive_twig !text path = Path_query.eval_string db path
          && naive_twig !text path
             = Path_query.eval_string ~strategy:Path_query.Holistic db path)
        [ "//a[b]"; "//a[b/c]"; "//b[c]//c"; "//a[b][c]"; "/a[b//c]"; "//c[a]" ])

let suite =
  suite
  @ [
      Alcotest.test_case "twig predicates (all engines)" `Quick test_twig_predicates;
      Alcotest.test_case "twig over segments" `Quick test_twig_segmented;
      Alcotest.test_case "twig holistic strategy" `Quick test_twig_holistic_strategy;
      Alcotest.test_case "twig parse roundtrip" `Quick test_twig_parse_roundtrip;
      Alcotest.test_case "twig parse errors" `Quick test_twig_parse_errors;
      QCheck_alcotest.to_alcotest prop_twig_random;
    ]
