(* Tests for the order-maintenance list labeling and the W-BOX-style
   element store built on it. *)

open Lxu_labeling

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Order_label ------------------------------------------------------ *)

let test_order_basics () =
  let t = Order_label.create () in
  let a = Order_label.insert_first t in
  let c = Order_label.insert_after t a in
  let b = Order_label.insert_after t a in
  check_bool "a < b" true (Order_label.compare a b < 0);
  check_bool "b < c" true (Order_label.compare b c < 0);
  check_int "size" 3 (Order_label.size t);
  Order_label.check t

let test_order_before () =
  let t = Order_label.create () in
  let b = Order_label.insert_first t in
  let a = Order_label.insert_before t b in
  check_bool "a < b" true (Order_label.compare a b < 0);
  Order_label.check t

let test_order_remove () =
  let t = Order_label.create () in
  let a = Order_label.insert_first t in
  let b = Order_label.insert_after t a in
  Order_label.remove t a;
  check_int "size" 1 (Order_label.size t);
  Order_label.check t;
  Alcotest.check_raises "compare removed" (Invalid_argument "Order_label: removed item")
    (fun () -> ignore (Order_label.compare a b))

let test_order_insert_first_nonempty () =
  let t = Order_label.create () in
  ignore (Order_label.insert_first t);
  Alcotest.check_raises "nonempty" (Invalid_argument "Order_label.insert_first: list not empty")
    (fun () -> ignore (Order_label.insert_first t))

(* The adversary: keep inserting between the same two neighbours.
   Correct order must survive and relabels must stay subquadratic. *)
let test_order_bisection_adversary () =
  let t = Order_label.create () in
  let left = Order_label.insert_first t in
  let right = Order_label.insert_after t left in
  let prev = ref left in
  let n = 2000 in
  for i = 1 to n do
    let m =
      if i land 1 = 0 then Order_label.insert_after t !prev
      else Order_label.insert_before t right
    in
    check_bool "ordered" true
      (Order_label.compare !prev m < 0 || Order_label.compare m right < 0);
    prev := m
  done;
  Order_label.check t;
  let r = Order_label.relabels t in
  check_bool "subquadratic relabels" true (r < n * 64);
  check_bool "some relabels happened" true (r > 0)

let prop_order_random_ops =
  let gen = QCheck2.Gen.(list_size (int_range 1 300) (pair (int_bound 10_000) bool)) in
  QCheck2.Test.make ~name:"order list stays sorted under random ops" ~count:60 gen
    (fun ops ->
      let t = Order_label.create () in
      let items = ref [| Order_label.insert_first t |] in
      List.iter
        (fun (pick, before) ->
          let arr = !items in
          let target = arr.(pick mod Array.length arr) in
          let fresh =
            if before then Order_label.insert_before t target
            else Order_label.insert_after t target
          in
          items := Array.append arr [| fresh |])
        ops;
      Order_label.check t;
      true)

(* --- Box_store -------------------------------------------------------- *)

let test_box_tree () =
  let t = Box_store.create () in
  let r = Box_store.insert_last_child t ~parent:None in
  let c1 = Box_store.insert_last_child t ~parent:(Some r) in
  let c2 = Box_store.insert_last_child t ~parent:(Some r) in
  let g = Box_store.insert_first_child t ~parent:(Some c2) in
  check_int "count" 4 (Box_store.element_count t);
  check_bool "r anc c1" true (Box_store.is_ancestor t r c1);
  check_bool "r anc g" true (Box_store.is_ancestor t r g);
  check_bool "c2 anc g" true (Box_store.is_ancestor t c2 g);
  check_bool "c1 not anc g" false (Box_store.is_ancestor t c1 g);
  check_bool "not reflexive" false (Box_store.is_ancestor t r r);
  check_bool "r parent c1" true (Box_store.is_parent t r c1);
  check_bool "r not parent g" false (Box_store.is_parent t r g);
  check_int "levels" 2 (Box_store.level g);
  check_bool "doc order" true (Box_store.document_compare t c1 c2 < 0);
  Box_store.check t

let test_box_siblings_and_roots () =
  let t = Box_store.create () in
  let r1 = Box_store.insert_last_child t ~parent:None in
  let r2 = Box_store.insert_after t r1 in
  let r0 = Box_store.insert_first_child t ~parent:None in
  check_bool "r0 first" true (Box_store.document_compare t r0 r1 < 0);
  check_bool "r1 before r2" true (Box_store.document_compare t r1 r2 < 0);
  check_bool "roots unrelated" false (Box_store.is_ancestor t r1 r2);
  Box_store.check t

let test_box_remove () =
  let t = Box_store.create () in
  let r = Box_store.insert_last_child t ~parent:None in
  let c = Box_store.insert_last_child t ~parent:(Some r) in
  Alcotest.check_raises "non-leaf" (Invalid_argument "Marker_store.remove: element has children")
    (fun () -> Box_store.remove t r);
  Box_store.remove t c;
  check_int "count" 1 (Box_store.element_count t);
  Box_store.remove t r;
  check_int "empty" 0 (Box_store.element_count t);
  Box_store.check t

let test_box_matches_reference_tree () =
  (* Build the same random tree in Box_store and as a plain structure;
     is_ancestor must agree everywhere. *)
  let rng = Lxu_workload.Rng.create 99 in
  let t = Box_store.create () in
  let nodes = ref [||] in
  let parents = Hashtbl.create 64 in
  for i = 0 to 150 do
    let parent_idx =
      if i = 0 then None else Some (Lxu_workload.Rng.int rng (Array.length !nodes))
    in
    let parent = Option.map (fun j -> (!nodes).(j)) parent_idx in
    let e = Box_store.insert_last_child t ~parent in
    Hashtbl.add parents i parent_idx;
    nodes := Array.append !nodes [| e |]
  done;
  let rec reference_anc i j =
    (* is node i an ancestor of node j in the recorded parent table? *)
    match Hashtbl.find parents j with
    | None -> false
    | Some p -> p = i || reference_anc i p
  in
  let arr = !nodes in
  for i = 0 to Array.length arr - 1 do
    for j = 0 to Array.length arr - 1 do
      if i <> j then
        check_bool
          (Printf.sprintf "anc %d %d" i j)
          (reference_anc i j)
          (Box_store.is_ancestor t arr.(i) arr.(j))
    done
  done;
  Box_store.check t

let test_box_relabels_logarithmic_vs_store () =
  (* Repeated first-child insertion: the traditional store shifts O(n)
     labels per insert; the box store relabels a few markers. *)
  let t = Box_store.create () in
  let r = Box_store.insert_last_child t ~parent:None in
  let n = 1500 in
  for _ = 1 to n do
    ignore (Box_store.insert_first_child t ~parent:(Some r))
  done;
  let per_insert = float_of_int (Box_store.relabels t) /. float_of_int n in
  check_bool "few relabels per insert" true (per_insert < 64.0);
  Box_store.check t

let suite =
  [
    Alcotest.test_case "order basics" `Quick test_order_basics;
    Alcotest.test_case "order insert_before" `Quick test_order_before;
    Alcotest.test_case "order remove" `Quick test_order_remove;
    Alcotest.test_case "order insert_first nonempty" `Quick test_order_insert_first_nonempty;
    Alcotest.test_case "order bisection adversary" `Quick test_order_bisection_adversary;
    QCheck_alcotest.to_alcotest prop_order_random_ops;
    Alcotest.test_case "box tree" `Quick test_box_tree;
    Alcotest.test_case "box siblings and roots" `Quick test_box_siblings_and_roots;
    Alcotest.test_case "box remove" `Quick test_box_remove;
    Alcotest.test_case "box = reference tree" `Quick test_box_matches_reference_tree;
    Alcotest.test_case "box relabels stay small" `Quick test_box_relabels_logarithmic_vs_store;
  ]

(* --- Rank_order / Bbox_store (B-BOX) ----------------------------------- *)

let test_rank_basics () =
  let t = Rank_order.create () in
  let a = Rank_order.insert_first t in
  let c = Rank_order.insert_after t a in
  let b = Rank_order.insert_after t a in
  check_int "rank a" 0 (Rank_order.rank t a);
  check_int "rank b" 1 (Rank_order.rank t b);
  check_int "rank c" 2 (Rank_order.rank t c);
  check_bool "a < b" true (Rank_order.compare t a b < 0);
  check_int "size" 3 (Rank_order.size t);
  check_bool "lookups counted" true (Rank_order.lookups t > 0);
  Rank_order.check t

let test_rank_before_and_remove () =
  let t = Rank_order.create () in
  let b = Rank_order.insert_first t in
  let a = Rank_order.insert_before t b in
  let c = Rank_order.insert_after t b in
  check_int "rank a" 0 (Rank_order.rank t a);
  Rank_order.remove t b;
  check_int "size" 2 (Rank_order.size t);
  check_int "rank c after removal" 1 (Rank_order.rank t c);
  Rank_order.check t;
  Alcotest.check_raises "removed" (Invalid_argument "Rank_order: removed item") (fun () ->
      ignore (Rank_order.rank t b))

let prop_rank_order_random_ops =
  let gen = QCheck2.Gen.(list_size (int_range 1 250) (pair (int_bound 10_000) (int_bound 2))) in
  QCheck2.Test.make ~name:"rank order consistent under random ops" ~count:60 gen
    (fun ops ->
      let t = Rank_order.create () in
      let items = ref [ Rank_order.insert_first t ] in
      List.iter
        (fun (pick, kind) ->
          let arr = Array.of_list !items in
          let target = arr.(pick mod Array.length arr) in
          match kind with
          | 0 -> items := Rank_order.insert_before t target :: !items
          | 1 -> items := Rank_order.insert_after t target :: !items
          | _ ->
            if List.length !items > 1 then begin
              Rank_order.remove t target;
              items := List.filter (fun i -> i != target) !items
            end)
        ops;
      Rank_order.check t;
      true)

let test_rank_no_relabeling_hotspot () =
  (* The B-BOX selling point: a hot-spot insertion pattern needs no
     relabeling at all (nothing is stored), only O(log n) tree work. *)
  let t = Rank_order.create () in
  let first = Rank_order.insert_first t in
  for _ = 1 to 3000 do
    ignore (Rank_order.insert_after t first)
  done;
  Rank_order.check t;
  check_int "size" 3001 (Rank_order.size t);
  check_int "rank of hot spot" 0 (Rank_order.rank t first)

let test_bbox_tree_matches_wbox () =
  (* The two BOX instantiations must answer identically on the same
     random tree. *)
  let rng = Lxu_workload.Rng.create 7 in
  let w = Box_store.create () and b = Bbox_store.create () in
  let ws = ref [||] and bs = ref [||] in
  for i = 0 to 120 do
    let pick = if i = 0 then None else Some (Lxu_workload.Rng.int rng i) in
    let wp = Option.map (fun j -> (!ws).(j)) pick in
    let bp = Option.map (fun j -> (!bs).(j)) pick in
    (match Lxu_workload.Rng.int rng 3 with
    | 0 ->
      ws := Array.append !ws [| Box_store.insert_first_child w ~parent:wp |];
      bs := Array.append !bs [| Bbox_store.insert_first_child b ~parent:bp |]
    | _ ->
      ws := Array.append !ws [| Box_store.insert_last_child w ~parent:wp |];
      bs := Array.append !bs [| Bbox_store.insert_last_child b ~parent:bp |])
  done;
  let wa = !ws and ba = !bs in
  for i = 0 to Array.length wa - 1 do
    for j = 0 to Array.length wa - 1 do
      if i <> j then begin
        check_bool "same ancestry" (Box_store.is_ancestor w wa.(i) wa.(j))
          (Bbox_store.is_ancestor b ba.(i) ba.(j));
        check_bool "same order"
          (Box_store.document_compare w wa.(i) wa.(j) < 0)
          (Bbox_store.document_compare b ba.(i) ba.(j) < 0)
      end
    done
  done;
  Box_store.check w;
  Bbox_store.check b;
  check_bool "bbox counted lookups" true (Bbox_store.lookups b > 0)

let test_bbox_remove () =
  let t = Bbox_store.create () in
  let r = Bbox_store.insert_last_child t ~parent:None in
  let c = Bbox_store.insert_last_child t ~parent:(Some r) in
  Alcotest.check_raises "non-leaf" (Invalid_argument "Marker_store.remove: element has children")
    (fun () -> Bbox_store.remove t r);
  Bbox_store.remove t c;
  Bbox_store.remove t r;
  check_int "empty" 0 (Bbox_store.element_count t);
  Bbox_store.check t

let suite =
  suite
  @ [
      Alcotest.test_case "rank order basics" `Quick test_rank_basics;
      Alcotest.test_case "rank order before/remove" `Quick test_rank_before_and_remove;
      QCheck_alcotest.to_alcotest prop_rank_order_random_ops;
      Alcotest.test_case "rank order hot spot" `Quick test_rank_no_relabeling_hotspot;
      Alcotest.test_case "bbox = wbox answers" `Quick test_bbox_tree_matches_wbox;
      Alcotest.test_case "bbox remove" `Quick test_bbox_remove;
    ]
