(* Tests for the Lazy_db facade: engine equivalence, maintenance
   operations, and statistics. *)

open Lazy_xml

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pair_list = Alcotest.(list (pair int int))

let engines = [ (Lazy_db.LD, "LD"); (Lazy_db.LS, "LS"); (Lazy_db.STD, "STD") ]

let apply_edits db edits =
  List.iter
    (fun edit ->
      match edit with
      | `Ins (gp, frag) -> Lazy_db.insert db ~gp frag
      | `Del (gp, len) -> Lazy_db.remove db ~gp ~len)
    edits

let sample_edits =
  [
    `Ins (0, "<lib></lib>");
    `Ins (5, "<book><title>t</title><author>a</author></book>");
    `Ins (5, "<book><author>b</author></book>");
    `Ins (11, "<author>c</author>");
    `Del (11, 18);
  ]

let test_engines_agree () =
  let results =
    List.map
      (fun (engine, name) ->
        let db = Lazy_db.create ~engine () in
        apply_edits db sample_edits;
        Lazy_db.check db;
        let pairs, _ = Lazy_db.query db ~anc:"book" ~desc:"author" () in
        (name, pairs))
      engines
  in
  match results with
  | (_, first) :: rest ->
    check_bool "some results" true (first <> []);
    List.iter (fun (name, pairs) -> Alcotest.check pair_list name first pairs) rest
  | [] -> assert false

let test_both_axes () =
  List.iter
    (fun (engine, name) ->
      let db = Lazy_db.create ~engine () in
      Lazy_db.insert db ~gp:0 "<a><a><b/></a></a>";
      let desc = Lazy_db.count db ~anc:"a" ~desc:"b" () in
      let child = Lazy_db.count db ~axis:Lazy_db.Child ~anc:"a" ~desc:"b" () in
      check_int (name ^ " desc") 2 desc;
      check_int (name ^ " child") 1 child)
    engines

let test_counts_and_lengths () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<a><b/></a>";
  Lazy_db.insert db ~gp:3 "<c/>";
  check_int "doc length" 15 (Lazy_db.doc_length db);
  check_int "elements" 3 (Lazy_db.element_count db);
  check_int "segments" 2 (Lazy_db.segment_count db);
  check_bool "size accounted" true (Lazy_db.size_bytes db > 0);
  Alcotest.(check string) "text" "<a><c/><b/></a>" (Lazy_db.text db)

let test_rebuild () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<a></a>";
  Lazy_db.insert db ~gp:3 "<b/>";
  Lazy_db.insert db ~gp:3 "<b/>";
  check_int "three segments" 3 (Lazy_db.segment_count db);
  let before = Lazy_db.query db ~anc:"a" ~desc:"b" () |> fst in
  let text_before = Lazy_db.text db in
  Lazy_db.rebuild db;
  check_int "one segment" 1 (Lazy_db.segment_count db);
  Alcotest.(check string) "same text" text_before (Lazy_db.text db);
  Alcotest.check pair_list "same answers" before (fst (Lazy_db.query db ~anc:"a" ~desc:"b" ()));
  Lazy_db.check db

let test_pack_subtree () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<r></r>";
  Lazy_db.insert db ~gp:3 "<a></a>";
  Lazy_db.insert db ~gp:6 "<b/>";
  Lazy_db.insert db ~gp:6 "<b/>";
  check_int "four segments" 4 (Lazy_db.segment_count db);
  let text_before = Lazy_db.text db in
  (* Pack the <a> subtree: "<a><b/><b/></a>" at [3, 18). *)
  Lazy_db.pack_subtree db ~gp:3 ~len:15;
  check_int "packed to two" 2 (Lazy_db.segment_count db);
  Alcotest.(check string) "same text" text_before (Lazy_db.text db);
  check_int "join intact" 2 (Lazy_db.count db ~anc:"a" ~desc:"b" ());
  Lazy_db.check db

let test_rebuild_empty () =
  let db = Lazy_db.create () in
  Lazy_db.rebuild db;
  check_int "still empty" 0 (Lazy_db.segment_count db)

let test_std_has_no_log () =
  let db = Lazy_db.create ~engine:Lazy_db.STD () in
  check_bool "no log" true (Lazy_db.log db = None);
  check_bool "has store" true (Lazy_db.store db <> None);
  Lazy_db.insert db ~gp:0 "<a/>";
  Alcotest.check_raises "text unavailable"
    (Invalid_argument "Lazy_db.text: the STD engine keeps labels only, not the document text")
    (fun () -> ignore (Lazy_db.text db))

let test_query_stats () =
  let db = Lazy_db.create () in
  Lazy_db.insert db ~gp:0 "<a></a>";
  Lazy_db.insert db ~gp:3 "<b/>";
  let _, stats = Lazy_db.query db ~anc:"a" ~desc:"b" () in
  check_int "one pair" 1 stats.Lazy_db.pair_count;
  check_int "cross" 1 stats.Lazy_db.cross_pairs;
  check_int "none in-segment" 0 stats.Lazy_db.in_pairs

let suite =
  [
    Alcotest.test_case "engines agree" `Quick test_engines_agree;
    Alcotest.test_case "both axes" `Quick test_both_axes;
    Alcotest.test_case "counts and lengths" `Quick test_counts_and_lengths;
    Alcotest.test_case "rebuild" `Quick test_rebuild;
    Alcotest.test_case "pack subtree" `Quick test_pack_subtree;
    Alcotest.test_case "rebuild empty" `Quick test_rebuild_empty;
    Alcotest.test_case "std has no log" `Quick test_std_has_no_log;
    Alcotest.test_case "query stats" `Quick test_query_stats;
  ]

let test_auto_pack () =
  let db = Lazy_db.create ~pack_threshold:5 () in
  Lazy_db.insert db ~gp:0 "<r></r>";
  for _ = 1 to 4 do
    Lazy_db.insert db ~gp:3 "<x/>"
  done;
  check_int "below threshold: untouched" 5 (Lazy_db.segment_count db);
  Lazy_db.insert db ~gp:3 "<x/>";
  check_int "packed to one" 1 (Lazy_db.segment_count db);
  check_int "answers intact" 5 (Lazy_db.count db ~anc:"r" ~desc:"x" ());
  Lazy_db.check db;
  (* Removals trigger the check too (segment count only shrinks, so
     this just documents the hook). *)
  Lazy_db.remove db ~gp:3 ~len:4;
  check_int "after removal" 4 (Lazy_db.count db ~anc:"r" ~desc:"x" ())

let test_auto_pack_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Lazy_db.create: pack_threshold < 1")
    (fun () -> ignore (Lazy_db.create ~pack_threshold:0 ()))

let suite =
  suite
  @ [
      Alcotest.test_case "auto pack" `Quick test_auto_pack;
      Alcotest.test_case "auto pack invalid" `Quick test_auto_pack_invalid;
    ]
