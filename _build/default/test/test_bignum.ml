(* Unit and property tests for the big-natural arithmetic backing the
   PRIME labeling baseline. *)

open Lxu_bignum

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let bn = Bignum.of_int

let test_of_to_int () =
  check_int "zero" 0 (Option.get (Bignum.to_int_opt Bignum.zero));
  check_int "one" 1 (Option.get (Bignum.to_int_opt Bignum.one));
  check_int "roundtrip" 123456789 (Option.get (Bignum.to_int_opt (bn 123456789)));
  check_int "max_int" max_int (Option.get (Bignum.to_int_opt (bn max_int)))

let test_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.of_int: negative")
    (fun () -> ignore (bn (-1)))

let test_compare () =
  check_int "eq" 0 (Bignum.compare (bn 42) (bn 42));
  check_bool "lt" true (Bignum.compare (bn 41) (bn 42) < 0);
  check_bool "gt" true (Bignum.compare (bn 43) (bn 42) > 0);
  check_bool "different lengths" true
    (Bignum.compare (bn max_int) (bn 1) > 0)

let test_add_carry_chain () =
  (* (2^62 - 1) + 1 = 2^62 crosses two limb boundaries. *)
  let a = bn max_int and b = Bignum.one in
  check_string "max_int+1" "4611686018427387904" Bignum.(to_string (add a b))

let test_sub () =
  check_string "simple" "1" Bignum.(to_string (sub (bn 43) (bn 42)));
  check_string "borrow" (string_of_int (max_int - 1))
    Bignum.(to_string (sub (bn max_int) Bignum.one));
  check_bool "self" true (Bignum.is_zero (Bignum.sub (bn 7) (bn 7)));
  Alcotest.check_raises "underflow" Bignum.Underflow (fun () ->
      ignore (Bignum.sub (bn 1) (bn 2)))

let test_mul_known () =
  check_string "big square"
    "21267647932558653957237540927630737409"
    Bignum.(to_string (mul (bn max_int) (bn max_int)))

let test_mul_small () =
  let a = bn 1_000_000_007 in
  check_string "by 3" "3000000021" Bignum.(to_string (mul_small a 3));
  check_bool "by 0" true (Bignum.is_zero (Bignum.mul_small a 0))

let test_divmod () =
  let a = Bignum.of_string "123456789012345678901234567890" in
  let b = Bignum.of_string "9876543210987654321" in
  let q, r = Bignum.divmod a b in
  check_string "quotient" "12499999886" (Bignum.to_string q);
  check_string "remainder" "925925941327160484" (Bignum.to_string r);
  (* Verify a = q*b + r. *)
  check_string "recompose" (Bignum.to_string a)
    Bignum.(to_string (add (mul q b) r))

let test_divmod_small () =
  let a = Bignum.of_string "1000000000000000000000" in
  let q, r = Bignum.divmod_small a 7 in
  check_string "quotient" "142857142857142857142" (Bignum.to_string q);
  check_int "remainder" 6 r

let test_divisible () =
  let a = Bignum.mul (bn 6700417) (bn 998244353) in
  check_bool "factor" true (Bignum.divisible a ~by:(bn 6700417));
  check_bool "non-factor" false (Bignum.divisible a ~by:(bn 11))

let test_string_roundtrip () =
  let cases = [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890" ] in
  List.iter (fun s -> check_string s s Bignum.(to_string (of_string s))) cases

let test_of_string_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_string: empty")
    (fun () -> ignore (Bignum.of_string ""));
  Alcotest.check_raises "alpha" (Invalid_argument "Bignum.of_string: not a digit")
    (fun () -> ignore (Bignum.of_string "12a"))

let test_bit_length () =
  check_int "zero" 0 (Bignum.bit_length Bignum.zero);
  check_int "one" 1 (Bignum.bit_length Bignum.one);
  check_int "255" 8 (Bignum.bit_length (bn 255));
  check_int "256" 9 (Bignum.bit_length (bn 256))

(* --- primes ------------------------------------------------------- *)

let test_prime_stream () =
  let g = Prime_gen.create () in
  let first = List.init 10 (fun i -> Prime_gen.nth g i) in
  Alcotest.(check (list int)) "first ten" [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ] first;
  check_int "nth big" 541 (Prime_gen.nth g 99);
  check_int "count" 100 (Prime_gen.count g)

let test_prime_next () =
  let g = Prime_gen.create () in
  check_int "first" 2 (Prime_gen.next g);
  check_int "second" 3 (Prime_gen.next g);
  check_int "third" 5 (Prime_gen.next g)

let test_is_prime () =
  check_bool "2" true (Prime_gen.is_prime 2);
  check_bool "1" false (Prime_gen.is_prime 1);
  check_bool "9" false (Prime_gen.is_prime 9);
  check_bool "7919" true (Prime_gen.is_prime 7919)

(* --- CRT ---------------------------------------------------------- *)

let test_crt_simple () =
  (* x = 2 mod 3, x = 3 mod 5, x = 2 mod 7 -> x = 23 mod 105 *)
  let v, m = Crt.solve [ (2, 3); (3, 5); (2, 7) ] in
  check_string "value" "23" (Bignum.to_string v);
  check_string "modulus" "105" (Bignum.to_string m)

let test_crt_residues () =
  let pairs = [ (1, 2); (2, 3); (4, 5); (6, 7); (10, 11); (12, 13) ] in
  let v, _ = Crt.solve pairs in
  List.iter
    (fun (r, p) -> check_int (Printf.sprintf "mod %d" p) r (Crt.residue v p))
    pairs

let test_inverse_mod () =
  check_int "3 mod 7" 5 (Crt.inverse_mod 3 7);
  check_int "10 mod 17" 12 (Crt.inverse_mod 10 17);
  Alcotest.check_raises "not coprime"
    (Invalid_argument "Crt.inverse_mod: not coprime") (fun () ->
      ignore (Crt.inverse_mod 6 9))

(* --- properties ---------------------------------------------------- *)

let nat_gen = QCheck2.Gen.(map abs int)
let nat_pair = QCheck2.Gen.(pair nat_gen nat_gen)

let prop_add_commutes =
  QCheck2.Test.make ~name:"bignum add commutes" ~count:500 nat_pair (fun (a, b) ->
      Bignum.(equal (add (bn a) (bn b)) (add (bn b) (bn a))))

let prop_addsub_roundtrip =
  QCheck2.Test.make ~name:"bignum (a+b)-b = a" ~count:500 nat_pair (fun (a, b) ->
      Bignum.(equal (sub (add (bn a) (bn b)) (bn b)) (bn a)))

let prop_mul_matches_int =
  let small = QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000)) in
  QCheck2.Test.make ~name:"bignum mul matches native" ~count:500 small
    (fun (a, b) -> Bignum.(equal (mul (bn a) (bn b)) (bn (a * b))))

let prop_divmod_recompose =
  let gen = QCheck2.Gen.(pair nat_gen (map (fun n -> 1 + abs n) int)) in
  QCheck2.Test.make ~name:"bignum divmod recomposes" ~count:500 gen
    (fun (a, b) ->
      let q, r = Bignum.divmod (bn a) (bn b) in
      Bignum.(equal (add (mul q (bn b)) r) (bn a)) && Bignum.compare r (bn b) < 0)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bignum decimal roundtrip" ~count:500 nat_gen (fun a ->
      Bignum.(equal (of_string (to_string (bn a))) (bn a)))

let prop_crt_recovers_orders =
  (* Random residues against the first k primes: CRT must recover them. *)
  let gen =
    QCheck2.Gen.(int_range 1 12 >>= fun k -> list_size (return k) (int_bound 1000))
  in
  QCheck2.Test.make ~name:"crt recovers all residues" ~count:200 gen (fun rs ->
      let g = Prime_gen.create () in
      let pairs = List.mapi (fun i r -> (r mod Prime_gen.nth g i, Prime_gen.nth g i)) rs in
      let v, _ = Crt.solve pairs in
      List.for_all (fun (r, p) -> Crt.residue v p = r) pairs)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_add_commutes;
      prop_addsub_roundtrip;
      prop_mul_matches_int;
      prop_divmod_recompose;
      prop_string_roundtrip;
      prop_crt_recovers_orders;
    ]

let suite =
  [
    Alcotest.test_case "of/to int" `Quick test_of_to_int;
    Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "add carry chain" `Quick test_add_carry_chain;
    Alcotest.test_case "sub" `Quick test_sub;
    Alcotest.test_case "mul known value" `Quick test_mul_known;
    Alcotest.test_case "mul_small" `Quick test_mul_small;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "divmod_small" `Quick test_divmod_small;
    Alcotest.test_case "divisible" `Quick test_divisible;
    Alcotest.test_case "decimal roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
    Alcotest.test_case "bit_length" `Quick test_bit_length;
    Alcotest.test_case "prime stream" `Quick test_prime_stream;
    Alcotest.test_case "prime next" `Quick test_prime_next;
    Alcotest.test_case "is_prime" `Quick test_is_prime;
    Alcotest.test_case "crt simple" `Quick test_crt_simple;
    Alcotest.test_case "crt residues" `Quick test_crt_residues;
    Alcotest.test_case "inverse_mod" `Quick test_inverse_mod;
  ]
  @ props

let test_divmod_edges () =
  let a = Bignum.of_string "987654321987654321" in
  let q, r = Bignum.divmod a Bignum.one in
  check_bool "div by one" true (Bignum.equal q a && Bignum.is_zero r);
  let q, r = Bignum.divmod a a in
  check_bool "self division" true (Bignum.equal q Bignum.one && Bignum.is_zero r);
  let q, r = Bignum.divmod Bignum.one a in
  check_bool "smaller dividend" true (Bignum.is_zero q && Bignum.equal r Bignum.one);
  Alcotest.check_raises "by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod a Bignum.zero))

let test_mul_identities () =
  let a = bn 123456 in
  check_bool "by one" true (Bignum.equal (Bignum.mul a Bignum.one) a);
  check_bool "by zero" true (Bignum.is_zero (Bignum.mul a Bignum.zero));
  check_bool "mul_small bound" true
    (match Bignum.mul_small a (1 lsl 31) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_byte_size_grows () =
  check_bool "grows" true
    (Bignum.byte_size (Bignum.of_string "123456789012345678901234567890")
    > Bignum.byte_size (bn 7))

let suite =
  suite
  @ [
      Alcotest.test_case "divmod edges" `Quick test_divmod_edges;
      Alcotest.test_case "mul identities" `Quick test_mul_identities;
      Alcotest.test_case "byte_size" `Quick test_byte_size_grows;
    ]
