(* Tests for the labeling schemes: interval store (traditional
   baseline), PRIME, ORDPATH-style Dewey and CKM binary labels. *)

open Lxu_labeling

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Interval ------------------------------------------------------ *)

let test_interval_predicates () =
  let a = Interval.make ~start:0 ~stop:100 ~level:0 in
  let b = Interval.make ~start:10 ~stop:20 ~level:1 in
  let c = Interval.make ~start:12 ~stop:18 ~level:2 in
  let d = Interval.make ~start:30 ~stop:40 ~level:3 in
  check_bool "a contains b" true (Interval.contains a b);
  check_bool "b not contains a" false (Interval.contains b a);
  check_bool "b not contains d" false (Interval.contains b d);
  check_bool "a parent of b" true (Interval.is_parent a b);
  check_bool "a not parent of c" false (Interval.is_parent a c);
  check_bool "self" false (Interval.contains a a)

let test_interval_shift () =
  let l = Interval.make ~start:10 ~stop:20 ~level:1 in
  let s = Interval.shift l ~by:5 ~from:15 in
  check_int "start untouched" 10 s.Interval.start;
  check_int "stop shifted" 25 s.Interval.stop;
  let s2 = Interval.shift l ~by:5 ~from:5 in
  check_int "both shifted" 15 s2.Interval.start

let test_interval_invalid () =
  Alcotest.check_raises "start >= stop" (Invalid_argument "Interval.make: start >= stop")
    (fun () -> ignore (Interval.make ~start:5 ~stop:5 ~level:0))

(* --- Interval_store ------------------------------------------------ *)

let test_store_build () =
  let s = Interval_store.create () in
  Interval_store.insert s ~gp:0 "<a><b>x</b><b>y</b></a>";
  check_int "doc length" 23 (Interval_store.doc_length s);
  check_int "elements" 3 (Interval_store.element_count s);
  Alcotest.(check (list string)) "tags" [ "a"; "b" ] (Interval_store.tags s);
  let bs = Interval_store.elements s ~tag:"b" in
  check_int "two b" 2 (Array.length bs);
  check_int "b level" 1 bs.(0).Interval.level;
  Interval_store.check s

let test_store_insert_shifts () =
  let s = Interval_store.create () in
  Interval_store.insert s ~gp:0 "<a><b/></a>";
  (* "<a><b/></a>" : a=[0,11), b=[3,7) *)
  Interval_store.insert s ~gp:3 "<c/>";
  let a = (Interval_store.elements s ~tag:"a").(0) in
  let b = (Interval_store.elements s ~tag:"b").(0) in
  let c = (Interval_store.elements s ~tag:"c").(0) in
  check_int "a start" 0 a.Interval.start;
  check_int "a stop grew" 15 a.Interval.stop;
  check_int "b shifted" 7 b.Interval.start;
  check_int "c at insertion point" 3 c.Interval.start;
  check_int "c level" 1 c.Interval.level;
  check_int "relabel count" 2 (Interval_store.last_relabel_count s);
  Interval_store.check s

let test_store_nested_level () =
  let s = Interval_store.create () in
  Interval_store.insert s ~gp:0 "<a><b></b></a>";
  (* Insert inside b: depth 2. *)
  Interval_store.insert s ~gp:6 "<c/>";
  let c = (Interval_store.elements s ~tag:"c").(0) in
  check_int "c level" 2 c.Interval.level

let test_store_remove () =
  let s = Interval_store.create () in
  Interval_store.insert s ~gp:0 "<a><b>x</b><c/></a>";
  (* Remove "<b>x</b>" = [3, 11). *)
  Interval_store.remove s ~gp:3 ~len:8;
  check_int "elements" 2 (Interval_store.element_count s);
  check_int "doc length" 11 (Interval_store.doc_length s);
  let c = (Interval_store.elements s ~tag:"c").(0) in
  check_int "c shifted" 3 c.Interval.start;
  check_int "b gone" 0 (Array.length (Interval_store.elements s ~tag:"b"));
  Interval_store.check s

let test_store_out_of_bounds () =
  let s = Interval_store.create () in
  Alcotest.check_raises "insert"
    (Invalid_argument "Interval_store.insert: gp out of bounds") (fun () ->
      Interval_store.insert s ~gp:5 "<a/>");
  Alcotest.check_raises "remove"
    (Invalid_argument "Interval_store.remove: range out of bounds") (fun () ->
      Interval_store.remove s ~gp:0 ~len:1)

(* The store after any insertion sequence must equal a store built by
   one-shot parsing of the final text. *)
let store_matches_fresh_parse edits =
  let s = Interval_store.create () in
  let text = ref "" in
  List.iter
    (fun (gp, frag) ->
      let gp = if String.length !text = 0 then 0 else gp mod (String.length !text + 1) in
      (* Only apply edits at valid split points: between nodes. *)
      match Lxu_xml.Parser.parse_fragment_result !text with
      | Error _ -> ()
      | Ok _ ->
        let candidate =
          String.sub !text 0 gp ^ frag ^ String.sub !text gp (String.length !text - gp)
        in
        if Lxu_xml.Parser.is_well_formed_fragment candidate then begin
          Interval_store.insert s ~gp frag;
          text := candidate
        end)
    edits;
  let fresh = Interval_store.create () in
  if !text <> "" then Interval_store.insert fresh ~gp:0 !text;
  List.for_all
    (fun tag ->
      Interval_store.elements s ~tag = Interval_store.elements fresh ~tag)
    (Interval_store.tags fresh)
  && Interval_store.tags s = Interval_store.tags fresh

let prop_store_incremental_equals_batch =
  let frag_gen =
    QCheck2.Gen.(
      oneofl
        [ "<a/>"; "<b>t</b>"; "<c><a/></c>"; "<d at=\"1\"><b/><b/></d>"; "<e>x<a/>y</e>" ])
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 12) (pair (int_bound 500) frag_gen)) in
  QCheck2.Test.make ~name:"interval store: incremental = batch" ~count:200 gen
    store_matches_fresh_parse

(* --- PRIME --------------------------------------------------------- *)

let test_prime_chain () =
  let t = Prime_label.create ~k:3 ~capacity:100 () in
  let r = Prime_label.append t ~parent:None in
  let c1 = Prime_label.append t ~parent:(Some r) in
  let c2 = Prime_label.append t ~parent:(Some r) in
  let g = Prime_label.append t ~parent:(Some c1) in
  check_bool "root anc c1" true (Prime_label.is_ancestor r c1);
  check_bool "root anc g" true (Prime_label.is_ancestor r g);
  check_bool "c1 anc g" true (Prime_label.is_ancestor c1 g);
  check_bool "c2 not anc g" false (Prime_label.is_ancestor c2 g);
  check_bool "not self" false (Prime_label.is_ancestor c1 c1);
  check_bool "not reversed" false (Prime_label.is_ancestor g r);
  Prime_label.check t

let test_prime_orders () =
  let t = Prime_label.create ~k:4 ~capacity:100 () in
  let r = Prime_label.append t ~parent:None in
  let kids = List.init 10 (fun _ -> Prime_label.append t ~parent:(Some r)) in
  List.iteri (fun i n -> check_int "order" (i + 1) (Prime_label.order_of t n)) kids;
  Prime_label.check t

let test_prime_middle_insert_recomputes () =
  let t = Prime_label.create ~k:2 ~capacity:100 () in
  let r = Prime_label.append t ~parent:None in
  for _ = 1 to 9 do
    ignore (Prime_label.append t ~parent:(Some r))
  done;
  let before = Prime_label.sc_recomputations t in
  (* Insert at the very beginning of the children: all 5+ groups shift. *)
  ignore (Prime_label.insert t ~parent:(Some r) ~order_pos:1);
  let delta = Prime_label.sc_recomputations t - before in
  check_bool "all groups recomputed" true (delta >= 5);
  Prime_label.check t

let test_prime_capacity () =
  let t = Prime_label.create ~k:2 ~capacity:3 () in
  let r = Prime_label.append t ~parent:None in
  ignore (Prime_label.append t ~parent:(Some r));
  ignore (Prime_label.append t ~parent:(Some r));
  Alcotest.check_raises "full" (Invalid_argument "Prime_label.insert: capacity exceeded")
    (fun () -> ignore (Prime_label.append t ~parent:(Some r)))

let prop_prime_random_inserts =
  let gen = QCheck2.Gen.(list_size (int_range 1 40) (int_bound 1000)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"prime orders survive random middle inserts" ~count:50 gen
       (fun picks ->
         let t = Prime_label.create ~k:3 ~capacity:200 () in
         let r = Prime_label.append t ~parent:None in
         List.iter
           (fun p ->
             let pos = 1 + (p mod Prime_label.size t) in
             ignore (Prime_label.insert t ~parent:(Some r) ~order_pos:pos))
           picks;
         Prime_label.check t;
         true))

(* --- Dewey --------------------------------------------------------- *)

let test_dewey_static () =
  let r = Dewey_label.root in
  let c0 = Dewey_label.nth_child r 0 in
  let c1 = Dewey_label.nth_child r 1 in
  let g = Dewey_label.nth_child c1 0 in
  check_bool "root anc c0" true (Dewey_label.is_ancestor r c0);
  check_bool "c1 anc g" true (Dewey_label.is_ancestor c1 g);
  check_bool "c0 not anc g" false (Dewey_label.is_ancestor c0 g);
  check_bool "order" true (Dewey_label.compare c0 c1 < 0);
  check_bool "anc before desc" true (Dewey_label.compare c1 g < 0);
  check_int "level root" 0 (Dewey_label.level r);
  check_int "level g" 2 (Dewey_label.level g);
  check_bool "parent of g" true
    (match Dewey_label.parent g with Some p -> Dewey_label.equal p c1 | None -> false);
  check_bool "parent of root" true (Dewey_label.parent r = None)

let test_dewey_between_adjacent () =
  let r = Dewey_label.root in
  let c0 = Dewey_label.nth_child r 0 in
  let c1 = Dewey_label.nth_child r 1 in
  let m = Dewey_label.child_between ~parent:r ~left:(Some c0) ~right:(Some c1) in
  check_bool "ordered" true (Dewey_label.compare c0 m < 0 && Dewey_label.compare m c1 < 0);
  check_bool "is child" true (Dewey_label.is_ancestor r m);
  check_int "level" 1 (Dewey_label.level m)

let test_dewey_extremes () =
  let r = Dewey_label.root in
  let c = Dewey_label.child_between ~parent:r ~left:None ~right:None in
  let before = Dewey_label.child_between ~parent:r ~left:None ~right:(Some c) in
  let after = Dewey_label.child_between ~parent:r ~left:(Some c) ~right:None in
  check_bool "before < c" true (Dewey_label.compare before c < 0);
  check_bool "c < after" true (Dewey_label.compare c after < 0)

let test_dewey_rejects_non_child () =
  let r = Dewey_label.root in
  let c = Dewey_label.nth_child r 0 in
  let g = Dewey_label.nth_child c 0 in
  Alcotest.check_raises "grandchild as sibling"
    (Invalid_argument "Dewey_label.child_between: left is not a child") (fun () ->
      ignore (Dewey_label.child_between ~parent:r ~left:(Some g) ~right:None))

(* Repeated splitting between the same two siblings must keep producing
   fresh, strictly ordered, prefix-sound labels. *)
let prop_dewey_repeated_splits =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"dewey: repeated between stays sound" ~count:100
       QCheck2.Gen.(list_size (int_range 1 60) bool)
       (fun sides ->
         let r = Dewey_label.root in
         let left = ref (Dewey_label.nth_child r 0) in
         let right = ref (Dewey_label.nth_child r 1) in
         List.for_all
           (fun go_left ->
             let m = Dewey_label.child_between ~parent:r ~left:(Some !left) ~right:(Some !right) in
             let ok =
               Dewey_label.compare !left m < 0
               && Dewey_label.compare m !right < 0
               && Dewey_label.is_ancestor r m
               && (not (Dewey_label.is_ancestor !left m))
               && not (Dewey_label.is_ancestor m !right)
             in
             if go_left then right := m else left := m;
             ok)
           sides))

(* --- Binary (CKM) --------------------------------------------------- *)

let test_binary_code_sequence () =
  let codes = ref [ Binary_label.first_code ] in
  for _ = 1 to 5 do
    codes := Binary_label.next_code (List.hd !codes) :: !codes
  done;
  Alcotest.(check (list string))
    "paper's doubling sequence"
    [ "0"; "10"; "1100"; "1101"; "1110"; "11110000" ]
    (List.rev !codes)

let test_binary_prefix_free_codes () =
  let rec take n c = if n = 0 then [] else c :: take (n - 1) (Binary_label.next_code c) in
  let codes = take 40 Binary_label.first_code in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            check_bool "prefix-free" false
              (String.length a <= String.length b && String.sub b 0 (String.length a) = a))
        codes)
    codes

let test_binary_ancestry () =
  let r = Binary_label.root in
  let c0 = Binary_label.extend r Binary_label.first_code in
  let c1 = Binary_label.extend r (Binary_label.next_code Binary_label.first_code) in
  let g = Binary_label.extend c1 Binary_label.first_code in
  check_bool "root anc c0" true (Binary_label.is_ancestor r c0);
  check_bool "c1 anc g" true (Binary_label.is_ancestor c1 g);
  check_bool "c0 not anc g" false (Binary_label.is_ancestor c0 g);
  check_bool "sibling order" true (Binary_label.compare c0 c1 < 0)

let test_binary_growth () =
  (* Code length roughly doubles the optimal log2(i) bits — the
     storage critique of §2.  After 130 increments the length group is
     16 bits (groups hold 2^(L/2) - 1 codes: 1, 1, 3, 15, 255, ...). *)
  let code = ref Binary_label.first_code in
  for _ = 1 to 130 do
    code := Binary_label.next_code !code
  done;
  check_int "length group" 16 (String.length !code);
  (* Concatenation along a deep path accumulates linearly. *)
  let lbl = ref Binary_label.root in
  for _ = 1 to 10 do
    lbl := Binary_label.extend !lbl "1110"
  done;
  check_int "deep label bits" 40 (Binary_label.bits !lbl)

let suite =
  [
    Alcotest.test_case "interval predicates" `Quick test_interval_predicates;
    Alcotest.test_case "interval shift" `Quick test_interval_shift;
    Alcotest.test_case "interval invalid" `Quick test_interval_invalid;
    Alcotest.test_case "store build" `Quick test_store_build;
    Alcotest.test_case "store insert shifts" `Quick test_store_insert_shifts;
    Alcotest.test_case "store nested level" `Quick test_store_nested_level;
    Alcotest.test_case "store remove" `Quick test_store_remove;
    Alcotest.test_case "store out of bounds" `Quick test_store_out_of_bounds;
    QCheck_alcotest.to_alcotest prop_store_incremental_equals_batch;
    Alcotest.test_case "prime ancestry chain" `Quick test_prime_chain;
    Alcotest.test_case "prime orders" `Quick test_prime_orders;
    Alcotest.test_case "prime middle insert recomputes" `Quick
      test_prime_middle_insert_recomputes;
    Alcotest.test_case "prime capacity" `Quick test_prime_capacity;
    prop_prime_random_inserts;
    Alcotest.test_case "dewey static" `Quick test_dewey_static;
    Alcotest.test_case "dewey between adjacent" `Quick test_dewey_between_adjacent;
    Alcotest.test_case "dewey extremes" `Quick test_dewey_extremes;
    Alcotest.test_case "dewey rejects non-child" `Quick test_dewey_rejects_non_child;
    prop_dewey_repeated_splits;
    Alcotest.test_case "binary code sequence" `Quick test_binary_code_sequence;
    Alcotest.test_case "binary codes prefix-free" `Quick test_binary_prefix_free_codes;
    Alcotest.test_case "binary ancestry" `Quick test_binary_ancestry;
    Alcotest.test_case "binary growth" `Quick test_binary_growth;
  ]
