(* Tests for the additional join algorithms: Stack-Tree-Anc, MPMGJN and
   PathStack.  Oracle: Stack-Tree-Desc / naive join re-sorted as
   needed. *)

open Lxu_join
open Lxu_labeling

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pair_list = Alcotest.(list (pair int int))

let fresh_labels text ~tag =
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let acc = ref [] in
  Lxu_xml.Tree.iter_elements nodes (fun e ~level ->
      if e.Lxu_xml.Tree.tag = tag then
        acc := (e.Lxu_xml.Tree.e_start, e.Lxu_xml.Tree.e_end, level) :: !acc);
  List.sort compare !acc

let intervals text ~tag =
  Array.of_list
    (List.map (fun (s, e, l) -> Interval.make ~start:s ~stop:e ~level:l) (fresh_labels text ~tag))

let starts pairs =
  List.map (fun ((a : Interval.t), (d : Interval.t)) -> (a.Interval.start, d.Interval.start)) pairs

(* Deterministic random documents shared by the equivalence tests. *)
let mk_doc seed =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create 128 in
  let budget = ref 40 in
  let rec gen depth =
    if !budget > 0 && depth <= 6 then begin
      let tag = [| "a"; "d"; "x" |].(Random.State.int st 3) in
      decr budget;
      Buffer.add_string buf (Printf.sprintf "<%s>" tag);
      for _ = 1 to Random.State.int st 3 do
        gen (depth + 1)
      done;
      Buffer.add_string buf (Printf.sprintf "</%s>" tag)
    end
  in
  while !budget > 0 do
    gen 0
  done;
  Buffer.contents buf

(* --- Stack-Tree-Anc --------------------------------------------------- *)

let test_sta_order () =
  let text = "<a><b/><a><b/></a></a><b/>" in
  let pairs, _ = Stack_tree_anc.join ~anc:(intervals text ~tag:"a") ~desc:(intervals text ~tag:"b") () in
  (* Sorted by (ancestor, descendant). *)
  Alcotest.check pair_list "anc order" [ (0, 3); (0, 10); (7, 10) ] (starts pairs)

let test_sta_equals_std_as_sets () =
  for seed = 1 to 30 do
    let text = mk_doc seed in
    let anc = intervals text ~tag:"a" and desc = intervals text ~tag:"d" in
    List.iter
      (fun axis ->
        let d_pairs, _ = Stack_tree_desc.join ~axis ~anc ~desc () in
        let a_pairs, _ = Stack_tree_anc.join ~axis ~anc ~desc () in
        let expected = List.sort compare (starts d_pairs) in
        Alcotest.check pair_list
          (Printf.sprintf "seed %d same set" seed)
          expected
          (List.sort compare (starts a_pairs));
        (* And the emitted order is ancestor-major. *)
        check_bool "sorted by anc" true
          (starts a_pairs = List.sort (fun (a1, d1) (a2, d2) -> compare (a1, d1) (a2, d2)) (starts a_pairs)))
      [ Stack_tree_desc.Descendant; Stack_tree_desc.Child ]
  done

let test_sta_empty () =
  let pairs, _ = Stack_tree_anc.join ~anc:[||] ~desc:[||] () in
  check_int "empty" 0 (List.length pairs)

(* --- MPMGJN ------------------------------------------------------------ *)

let test_mpmgjn_equals_std () =
  for seed = 1 to 30 do
    let text = mk_doc (100 + seed) in
    let anc = intervals text ~tag:"a" and desc = intervals text ~tag:"d" in
    List.iter
      (fun axis ->
        let d_pairs, _ = Stack_tree_desc.join ~axis ~anc ~desc () in
        let m_pairs, _ = Mpmgjn.join ~axis ~anc ~desc () in
        Alcotest.check pair_list
          (Printf.sprintf "seed %d" seed)
          (List.sort compare (starts d_pairs))
          (List.sort compare (starts m_pairs)))
      [ Stack_tree_desc.Descendant; Stack_tree_desc.Child ]
  done

let test_mpmgjn_rescans () =
  (* Nested ancestors force re-scans: d_scanned exceeds the
     descendant-list length. *)
  let text = "<a><a><a><d/><d/><d/></a></a></a>" in
  let _, stats = Mpmgjn.join ~anc:(intervals text ~tag:"a") ~desc:(intervals text ~tag:"d") () in
  check_bool "rescans counted" true (stats.Stack_tree_desc.d_scanned > 3);
  (* Stack-Tree-Desc reads each descendant once. *)
  let _, std_stats =
    Stack_tree_desc.join ~anc:(intervals text ~tag:"a") ~desc:(intervals text ~tag:"d") ()
  in
  check_int "std reads each d once" 3 std_stats.Stack_tree_desc.d_scanned

(* --- PathStack ---------------------------------------------------------- *)

(* Naive path-match count: all chains e1 ⊃ e2 ⊃ ... ⊃ en with the
   requested edge kinds. *)
let naive_path_count text tags edges =
  let labels = List.map (fun tag -> fresh_labels text ~tag) tags in
  let rec chains prev rest edge_idx =
    match rest with
    | [] -> 1
    | cur :: rest' ->
      List.fold_left
        (fun acc (s, e, l) ->
          let ps, pe, pl = prev in
          let contains = ps < s && pe > e in
          let edge_ok =
            match List.nth edges edge_idx with
            | Path_stack.Desc -> true
            | Path_stack.Child -> l = pl + 1
          in
          if contains && edge_ok then acc + chains (s, e, l) rest' (edge_idx + 1) else acc)
        0 cur
  in
  match labels with
  | [] -> 0
  | first :: rest -> List.fold_left (fun acc e -> acc + chains e rest 0) 0 first

let test_pathstack_single_node () =
  let text = "<a><a/></a>" in
  let streams = [| intervals text ~tag:"a" |] in
  check_int "all elements" 2 (Path_stack.count ~streams ~edges:[||]);
  check_int "matches" 2 (List.length (Path_stack.matches ~streams ~edges:[||]))

let test_pathstack_linear () =
  let text = "<a><b><c/><c/></b><b/></a><b><c/></b>" in
  let streams = [| intervals text ~tag:"a"; intervals text ~tag:"b"; intervals text ~tag:"c" |] in
  let edges = [| Path_stack.Desc; Path_stack.Desc |] in
  check_int "a//b//c" 2 (Path_stack.count ~streams ~edges);
  let ms = Path_stack.matches ~streams ~edges in
  check_int "tuples" 2 (List.length ms);
  List.iter (fun m -> check_int "width" 3 (Array.length m)) ms;
  check_int "distinct leaves" 2 (List.length (Path_stack.leaves ~streams ~edges))

let test_pathstack_child_edges () =
  let text = "<a><b><c/></b><c/></a>" in
  let streams = [| intervals text ~tag:"a"; intervals text ~tag:"c" |] in
  check_int "a//c" 2 (Path_stack.count ~streams ~edges:[| Path_stack.Desc |]);
  check_int "a/c" 1 (Path_stack.count ~streams ~edges:[| Path_stack.Child |])

let test_pathstack_equals_naive () =
  for seed = 1 to 25 do
    let text = mk_doc (200 + seed) in
    List.iter
      (fun edges_l ->
        let tags = [ "a"; "d"; "x" ] in
        let expected = naive_path_count text tags edges_l in
        let streams = Array.of_list (List.map (fun tag -> intervals text ~tag) tags) in
        let got = Path_stack.count ~streams ~edges:(Array.of_list edges_l) in
        check_int (Printf.sprintf "seed %d" seed) expected got)
      [
        [ Path_stack.Desc; Path_stack.Desc ];
        [ Path_stack.Desc; Path_stack.Child ];
        [ Path_stack.Child; Path_stack.Desc ];
        [ Path_stack.Child; Path_stack.Child ];
      ]
  done

let test_pathstack_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Path_stack: empty pattern") (fun () ->
      ignore (Path_stack.count ~streams:[||] ~edges:[||]));
  Alcotest.check_raises "mismatch" (Invalid_argument "Path_stack: edges/streams mismatch")
    (fun () -> ignore (Path_stack.count ~streams:[| [||] |] ~edges:[| Path_stack.Desc |]))

let suite =
  [
    Alcotest.test_case "stack-tree-anc order" `Quick test_sta_order;
    Alcotest.test_case "stack-tree-anc = std (sets)" `Quick test_sta_equals_std_as_sets;
    Alcotest.test_case "stack-tree-anc empty" `Quick test_sta_empty;
    Alcotest.test_case "mpmgjn = std" `Quick test_mpmgjn_equals_std;
    Alcotest.test_case "mpmgjn rescans counted" `Quick test_mpmgjn_rescans;
    Alcotest.test_case "pathstack single node" `Quick test_pathstack_single_node;
    Alcotest.test_case "pathstack linear" `Quick test_pathstack_linear;
    Alcotest.test_case "pathstack child edges" `Quick test_pathstack_child_edges;
    Alcotest.test_case "pathstack = naive" `Quick test_pathstack_equals_naive;
    Alcotest.test_case "pathstack validation" `Quick test_pathstack_validation;
  ]

(* --- XR-tree index and join --------------------------------------------- *)

let test_xr_index_probes () =
  let text = "<a><a><d/></a><d/></a><d/>" in
  let anc = Xr_index.build (intervals text ~tag:"a") in
  check_int "length" 2 (Xr_index.length anc);
  check_int "first_from 0" 0 (Xr_index.first_from anc 0);
  check_int "first_from 1" 1 (Xr_index.first_from anc 1);
  check_int "first_from 4" 2 (Xr_index.first_from anc 4);
  check_int "first_from 99" 2 (Xr_index.first_from anc 99);
  (* Position 7 (inside the inner d) is contained in both a's. *)
  Alcotest.(check (list int)) "stab inner" [ 0; 1 ] (Xr_index.stab anc 7);
  Alcotest.(check (list int)) "stab outer only" [ 0 ] (Xr_index.stab anc 15);
  Alcotest.(check (list int)) "stab outside" [] (Xr_index.stab anc 23);
  check_bool "probes counted" true (Xr_index.probes anc > 0)

let test_xr_index_rejects_unsorted () =
  let i1 = Interval.make ~start:10 ~stop:20 ~level:0 in
  let i2 = Interval.make ~start:0 ~stop:5 ~level:0 in
  Alcotest.check_raises "unsorted" (Invalid_argument "Xr_index.build: not sorted by start")
    (fun () -> ignore (Xr_index.build [| i1; i2 |]))

let test_xr_join_equals_std () =
  for seed = 1 to 30 do
    let text = mk_doc (300 + seed) in
    let anc = intervals text ~tag:"a" and desc = intervals text ~tag:"d" in
    List.iter
      (fun axis ->
        let d_pairs, _ = Stack_tree_desc.join ~axis ~anc ~desc () in
        let x_pairs, _ =
          Xr_join.join ~axis ~anc:(Xr_index.build anc) ~desc:(Xr_index.build desc) ()
        in
        Alcotest.check pair_list
          (Printf.sprintf "seed %d" seed)
          (List.sort compare (starts d_pairs))
          (List.sort compare (starts x_pairs)))
      [ Stack_tree_desc.Descendant; Stack_tree_desc.Child ]
  done

let test_xr_join_skips () =
  (* One tiny A-list against a long D-list mostly outside the A's:
     the ancestor-driven strategy must not touch the useless Ds. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<a><d/><d/></a>";
  for _ = 1 to 200 do
    Buffer.add_string buf "<x><d/></x>"
  done;
  let text = Buffer.contents buf in
  let anc = Xr_index.build (intervals text ~tag:"a") in
  let desc = Xr_index.build (intervals text ~tag:"d") in
  let pairs, stats = Xr_join.join ~anc ~desc () in
  check_int "pairs" 2 (List.length pairs);
  check_int "d touched" 2 stats.Stack_tree_desc.d_scanned;
  check_bool "skipped the rest" true (stats.Stack_tree_desc.d_scanned < 10)

let test_xr_join_stab_side () =
  (* Long A-list, short D-list: the descendant-driven strategy stabs
     instead of scanning ancestors. *)
  let buf = Buffer.create 256 in
  for _ = 1 to 100 do
    Buffer.add_string buf "<a>t</a>"
  done;
  Buffer.add_string buf "<a><a><d/></a></a>";
  let text = Buffer.contents buf in
  let anc = Xr_index.build (intervals text ~tag:"a") in
  let desc = Xr_index.build (intervals text ~tag:"d") in
  let pairs, stats = Xr_join.join ~anc ~desc () in
  check_int "pairs" 2 (List.length pairs);
  check_bool "ancestors fetched, not scanned" true (stats.Stack_tree_desc.a_scanned <= 4)

let suite =
  suite
  @ [
      Alcotest.test_case "xr index probes" `Quick test_xr_index_probes;
      Alcotest.test_case "xr index rejects unsorted" `Quick test_xr_index_rejects_unsorted;
      Alcotest.test_case "xr join = std" `Quick test_xr_join_equals_std;
      Alcotest.test_case "xr join skips descendants" `Quick test_xr_join_skips;
      Alcotest.test_case "xr join stabs ancestors" `Quick test_xr_join_stab_side;
    ]

(* --- TwigStack ------------------------------------------------------------ *)

(* Twig patterns for the tests: tag, edge-to-parent, children. *)
type tw = Tw of string * Twig_stack.edge * tw list

(* Naive twig-match counter over the parsed tree: number of complete
   assignments of elements to query nodes respecting tags and edges. *)
let naive_twig_count text pattern =
  let forest = Lxu_xml.Parser.parse_fragment text in
  let child_elems e =
    List.filter_map (function Lxu_xml.Tree.Element c -> Some c | _ -> None) e.Lxu_xml.Tree.children
  in
  let rec descendants e = List.concat_map (fun c -> c :: descendants c) (child_elems e) in
  let roots = List.filter_map (function Lxu_xml.Tree.Element e -> Some e | _ -> None) forest in
  let all = List.concat_map (fun r -> r :: descendants r) roots in
  let rec assignments anchor (Tw (tag, edge, kids)) =
    let pool =
      match (anchor, edge) with
      | None, _ -> all
      | Some e, Twig_stack.Desc -> descendants e
      | Some e, Twig_stack.Child -> child_elems e
    in
    List.fold_left
      (fun acc e ->
        if e.Lxu_xml.Tree.tag = tag then
          acc + List.fold_left (fun p k -> p * assignments (Some e) k) 1 kids
        else acc)
      0 pool
  in
  assignments None pattern

(* Builds a Twig_stack.query from the same pattern over fresh labels. *)
let twig_query text pattern =
  let next_id = ref 0 in
  let rec build (Tw (tag, edge, kids)) =
    let qid = !next_id in
    incr next_id;
    let children = List.map build kids in
    { Twig_stack.qid; stream = intervals text ~tag; edge; children }
  in
  build pattern

let test_twig_linear_equals_pathstack () =
  let text = "<a><b><c/><c/></b><b/></a><b><c/></b>" in
  let pattern = Tw ("a", Twig_stack.Desc, [ Tw ("b", Twig_stack.Desc, [ Tw ("c", Twig_stack.Desc, []) ]) ]) in
  check_int "count" (naive_twig_count text pattern)
    (Twig_stack.count (twig_query text pattern))

let test_twig_branching () =
  let text = "<a><b/><c/></a><a><b/></a><a><c/></a>" in
  let pattern =
    Tw ("a", Twig_stack.Desc, [ Tw ("b", Twig_stack.Desc, []); Tw ("c", Twig_stack.Desc, []) ])
  in
  check_int "only the first a matches" 1 (Twig_stack.count (twig_query text pattern));
  let roots = Twig_stack.root_matches (twig_query text pattern) in
  check_int "one root" 1 (List.length roots);
  check_int "it is the first a" 0 (List.hd roots).Interval.start

let test_twig_shared_branch_consistency () =
  (* r//a[b][c]: the SAME a must have both; separate a's don't count. *)
  let text = "<r><a><b/></a><a><c/></a></r><r><a><b/><c/></a></r>" in
  let pattern =
    Tw
      ( "r",
        Twig_stack.Desc,
        [ Tw ("a", Twig_stack.Desc, [ Tw ("b", Twig_stack.Desc, []); Tw ("c", Twig_stack.Desc, []) ]) ] )
  in
  check_int "count" (naive_twig_count text pattern)
    (Twig_stack.count (twig_query text pattern));
  check_int "one root only" 1 (List.length (Twig_stack.root_matches (twig_query text pattern)))

let test_twig_child_edges () =
  let text = "<a><b><c/></b><c/></a>" in
  let p_desc = Tw ("a", Twig_stack.Desc, [ Tw ("c", Twig_stack.Desc, []) ]) in
  let p_child = Tw ("a", Twig_stack.Desc, [ Tw ("c", Twig_stack.Child, []) ]) in
  check_int "a//c" 2 (Twig_stack.count (twig_query text p_desc));
  check_int "a/c" 1 (Twig_stack.count (twig_query text p_child))

let test_twig_single_node () =
  let text = "<a><a/></a>" in
  check_int "all" 2 (Twig_stack.count (twig_query text (Tw ("a", Twig_stack.Desc, []))))

let test_twig_equals_naive_random () =
  let patterns =
    [
      Tw ("a", Twig_stack.Desc, [ Tw ("d", Twig_stack.Desc, []) ]);
      Tw ("a", Twig_stack.Desc, [ Tw ("d", Twig_stack.Desc, []); Tw ("x", Twig_stack.Desc, []) ]);
      Tw
        ( "a",
          Twig_stack.Desc,
          [ Tw ("d", Twig_stack.Child, []); Tw ("x", Twig_stack.Desc, [ Tw ("d", Twig_stack.Desc, []) ]) ] );
      Tw ("x", Twig_stack.Desc, [ Tw ("a", Twig_stack.Desc, [ Tw ("d", Twig_stack.Desc, []) ]) ]);
    ]
  in
  for seed = 1 to 25 do
    let text = mk_doc (400 + seed) in
    List.iter
      (fun pattern ->
        check_int
          (Printf.sprintf "seed %d" seed)
          (naive_twig_count text pattern)
          (Twig_stack.count (twig_query text pattern)))
      patterns
  done

let test_twig_bad_qids () =
  let q = { Twig_stack.qid = 3; stream = [||]; edge = Twig_stack.Desc; children = [] } in
  Alcotest.check_raises "bad ids" (Invalid_argument "Twig_stack: qids must be exactly 0..n-1")
    (fun () -> ignore (Twig_stack.count q))

let suite =
  suite
  @ [
      Alcotest.test_case "twig linear" `Quick test_twig_linear_equals_pathstack;
      Alcotest.test_case "twig branching" `Quick test_twig_branching;
      Alcotest.test_case "twig shared-branch consistency" `Quick test_twig_shared_branch_consistency;
      Alcotest.test_case "twig child edges" `Quick test_twig_child_edges;
      Alcotest.test_case "twig single node" `Quick test_twig_single_node;
      Alcotest.test_case "twig = naive (random)" `Quick test_twig_equals_naive_random;
      Alcotest.test_case "twig bad qids" `Quick test_twig_bad_qids;
    ]
