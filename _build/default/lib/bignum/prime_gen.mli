(** A growable stream of prime numbers.

    The PRIME labeling scheme assigns a distinct prime self-label to
    every XML node in insertion order; this generator produces that
    stream incrementally with trial division against the primes already
    found. *)

type t

val create : unit -> t
(** A fresh stream positioned before 2. *)

val nth : t -> int -> int
(** [nth t i] is the [i]-th prime (0-based: [nth t 0 = 2]), extending
    the internal table as needed. *)

val next : t -> int
(** Produces the next unseen prime and advances the stream. *)

val count : t -> int
(** Number of primes generated so far. *)

val is_prime : int -> bool
(** Standalone primality test by trial division (test helper). *)
