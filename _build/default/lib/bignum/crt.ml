(* Chinese-remainder solver over word-sized pairwise-coprime moduli.

   The PRIME scheme maintains document order as a "simultaneous
   congruence" value SC per group of K nodes: SC mod p_i = order_i for
   each self-label prime p_i in the group.  Inserting a node in the
   middle of the order forces the SC of its group (and of all following
   groups, whose orders shift) to be recomputed — this recomputation is
   exactly the cost the paper's Figure 17 measures against the lazy
   approach. *)

(* Extended gcd on native ints: egcd a b = (g, x, y) with ax + by = g. *)
let rec egcd a b = if b = 0 then (a, 1, 0) else begin
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b) * y)
end

let inverse_mod a m =
  let a = ((a mod m) + m) mod m in
  let g, x, _ = egcd a m in
  if g <> 1 then invalid_arg "Crt.inverse_mod: not coprime";
  ((x mod m) + m) mod m

let solve pairs =
  match pairs with
  | [] -> invalid_arg "Crt.solve: empty system"
  | _ ->
    let modulus =
      List.fold_left (fun acc (_, p) -> Bignum.mul_small acc p) Bignum.one pairs
    in
    let value =
      List.fold_left
        (fun acc (r, p) ->
          if r < 0 || r >= p then invalid_arg "Crt.solve: residue out of range";
          (* term = (M/p) * ((M/p)^-1 mod p) * r *)
          let m_over_p, z = Bignum.divmod_small modulus p in
          assert (z = 0);
          let inv = inverse_mod (Bignum.mod_small m_over_p p) p in
          let term = Bignum.mul_small (Bignum.mul_small m_over_p inv) r in
          Bignum.rem (Bignum.add acc term) modulus)
        Bignum.zero pairs
    in
    (value, modulus)

let residue value p = Bignum.mod_small value p
