(** Chinese-remainder-theorem solver used by the PRIME labeling
    baseline's simultaneous-congruence order table. *)

val inverse_mod : int -> int -> int
(** [inverse_mod a m] is the multiplicative inverse of [a] modulo [m].
    @raise Invalid_argument when [gcd a m <> 1]. *)

val solve : (int * int) list -> Bignum.t * Bignum.t
(** [solve [(r1, p1); …; (rk, pk)]] returns [(v, m)] with
    [m = p1 * … * pk] and [v mod pi = ri] for every [i].  The moduli
    must be pairwise coprime and each residue must satisfy
    [0 <= ri < pi].
    @raise Invalid_argument on an empty system or out-of-range residue. *)

val residue : Bignum.t -> int -> int
(** [residue v p] recovers the order number stored for prime [p]. *)
