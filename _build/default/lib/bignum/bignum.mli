(** Arbitrary-precision natural numbers.

    The PRIME labeling scheme of Wu, Lee and Hsu (ICDE 2004) assigns to
    every node the product of the prime self-labels on its root path and
    maintains document order through simultaneous-congruence values
    modulo the product of up to [K] primes.  Both quantities overflow
    native integers almost immediately, so this module provides the
    minimal big-natural arithmetic the scheme needs: addition,
    subtraction, multiplication, full and small division, remainders and
    decimal conversion.

    Values are immutable.  Negative results are a programming error and
    raise [Underflow]. *)

type t
(** A non-negative arbitrary-precision integer. *)

exception Underflow
(** Raised by {!sub} when the result would be negative. *)

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt t] is [Some n] when [t] fits in a native integer. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]. @raise Underflow if [b > a]. *)

val mul : t -> t -> t

val mul_small : t -> int -> t
(** [mul_small a k] multiplies by a native integer [0 <= k < 2{^31}]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].
    @raise Division_by_zero if [b] is zero. *)

val rem : t -> t -> t
(** [rem a b] is [a mod b]. *)

val divisible : t -> by:t -> bool
(** [divisible a ~by:b] is [true] iff [b] divides [a].  This is the
    PRIME ancestor test: [X] is an ancestor of [Y] iff
    [divisible (label y) ~by:(label x)]. *)

val divmod_small : t -> int -> t * int
(** [divmod_small a k] divides by a native integer [1 <= k < 2{^31}]. *)

val mod_small : t -> int -> int
(** [mod_small a k] is [a mod k] for a native integer modulus. *)

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val byte_size : t -> int
(** Approximate in-memory footprint in bytes (for space accounting). *)

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses a decimal string. @raise Invalid_argument on bad input. *)

val pp : Format.formatter -> t -> unit
