(* Little-endian limbs in base 2^31.  The invariant is that the highest
   limb is non-zero; zero is the empty array.  Base 2^31 keeps every
   intermediate product [limb * limb + carry] below 2^63 on a 64-bit
   OCaml int. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

exception Underflow

let zero : t = [||]
let one : t = [| 1 |]

let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        a.(i) <- n land limb_mask;
        fill (i + 1) (n lsr limb_bits)
      end
    in
    fill 0 n;
    a
  end

let to_int_opt a =
  (* A native int holds at most 62 significant bits: two full limbs. *)
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | _ -> None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = max la lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lmax) <- !carry;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if lb > la then raise Underflow;
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then raise Underflow;
  normalize r

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can itself overflow one limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_small a k =
  if k < 0 || k >= base then invalid_arg "Bignum.mul_small: out of range";
  if k = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * k) + !carry in
      r.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let divmod_small a k =
  if k <= 0 || k >= base then invalid_arg "Bignum.divmod_small: out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / k;
    r := cur mod k
  done;
  (normalize q, !r)

let mod_small a k = snd (divmod_small a k)

let bit_length a =
  match Array.length a with
  | 0 -> 0
  | n ->
    let top = a.(n - 1) in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top

let shift_left_bits a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

(* Binary long division: simple, clearly correct, and fast enough for
   the PRIME benchmarks where full division only runs ancestor tests. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = Array.make (shift / limb_bits + 1) 0 in
    let rem = ref a in
    for i = shift downto 0 do
      let d = shift_left_bits b i in
      if compare !rem d >= 0 then begin
        rem := sub !rem d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !rem)
  end

let rem a b = snd (divmod a b)
let divisible a ~by = is_zero (rem a by)

let byte_size a = 8 * (Array.length a + 2)

(* Decimal conversion goes through base-10^9 chunks to limit the number
   of small divisions. *)
let chunk = 1_000_000_000

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc a =
      if is_zero a then acc
      else begin
        let q, r = divmod_small a chunk in
        chunks (r :: acc) q
      end
    in
    match chunks [] a with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Bignum.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignum.of_string: not a digit";
      acc := add (mul_small !acc 10) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)
