(* Incremental prime generation for the PRIME labeling scheme: each XML
   node consumes one fresh prime as its self-label, so we need a stream
   of primes that can grow without a pre-declared bound. *)

type t = {
  mutable primes : int array;  (* primes found so far, ascending *)
  mutable count : int;         (* number of valid entries in [primes] *)
  mutable next_candidate : int;
}

let create () = { primes = Array.make 64 0; count = 0; next_candidate = 2 }

let is_prime_against primes count n =
  let rec go i =
    if i >= count then true
    else begin
      let p = primes.(i) in
      if p * p > n then true
      else if n mod p = 0 then false
      else go (i + 1)
    end
  in
  go 0

let grow t =
  let n = ref t.next_candidate in
  while not (is_prime_against t.primes t.count !n) do
    incr n
  done;
  if t.count = Array.length t.primes then begin
    let bigger = Array.make (2 * t.count) 0 in
    Array.blit t.primes 0 bigger 0 t.count;
    t.primes <- bigger
  end;
  t.primes.(t.count) <- !n;
  t.count <- t.count + 1;
  t.next_candidate <- !n + 1

let nth t i =
  if i < 0 then invalid_arg "Prime_gen.nth: negative index";
  while t.count <= i do
    grow t
  done;
  t.primes.(i)

let next t =
  let i = t.count in
  nth t i

let count t = t.count

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end
