lib/bignum/crt.ml: Bignum List
