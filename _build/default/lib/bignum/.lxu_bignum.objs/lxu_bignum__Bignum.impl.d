lib/bignum/bignum.ml: Array Buffer Char Format List Printf Stdlib String
