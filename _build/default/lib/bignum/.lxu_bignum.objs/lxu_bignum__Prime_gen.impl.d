lib/bignum/prime_gen.ml: Array
