lib/bignum/bignum.mli: Format
