lib/bignum/prime_gen.mli:
