lib/bignum/crt.mli: Bignum
