(** Structural join over {!Xr_index}: skipping on both sides, per the
    XR-tree paper [5].

    Two strategies, chosen by list sizes:
    {ul
    {- ancestor-driven: for each ancestor, probe the descendant index
       for its first possible descendant and scan only the contained
       run — descendants outside every ancestor are never touched;}
    {- descendant-driven: for each descendant, stab the ancestor index
       — ancestors are fetched, never scanned.}}

    Output pairs are sorted by descendant position in both cases. *)

val join :
  ?axis:Stack_tree_desc.axis ->
  anc:Xr_index.t ->
  desc:Xr_index.t ->
  unit ->
  (Lxu_labeling.Interval.t * Lxu_labeling.Interval.t) list * Stack_tree_desc.stats
(** [a_scanned]/[d_scanned] count elements actually touched — the
    skipping benefit shows as counts far below the list lengths. *)
