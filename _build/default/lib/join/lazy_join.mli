(** Lazy-Join (§4.2, Figure 9): the segment-aware structural join.

    Merges the two tag-list segment lists ([SL_A], [SL_D]) by global
    position with a stack of ancestor segments.  Cross-segment joins
    use Proposition 3: an A-element joins every D-element of a
    descendant segment iff it strictly contains the local position of
    the stack segment's child on the path to that segment — so whole
    segments (and whole element sets) are skipped or bulk-emitted
    without per-element comparisons.  In-segment joins fall back to
    Stack-Tree-Desc on the segment's immutable virtual labels.

    Both Figure 9 optimizations are applied: only A-elements containing
    at least one child segment are pushed, and on each push the top
    frame drops elements that end before the pushed segment starts.

    Under a [Lazy_static] log the pre-query sorting cost is incurred
    here (the run calls {!Lxu_seglog.Update_log.prepare_for_query}),
    matching the paper's LS accounting. *)

type axis = Descendant | Child

type elem_ref = { sid : int; start : int; stop : int; level : int }
(** An element as (segment, virtual extent, absolute level). *)

type pair = { anc : elem_ref; desc : elem_ref }

type stats = {
  mutable a_segments : int;  (** SL_A entries consumed *)
  mutable d_segments : int;  (** SL_D entries consumed *)
  mutable segments_pushed : int;
  mutable segments_skipped : int;
      (** SL_A segments discarded without element access *)
  mutable in_segment_joins : int;  (** segment pairs joined in-segment *)
  mutable cross_pairs : int;
  mutable in_pairs : int;
  mutable elements_fetched : int;  (** element-index records read *)
}

val run :
  ?axis:axis ->
  ?push_filter:bool ->
  ?trim_top:bool ->
  Lxu_seglog.Update_log.t ->
  anc:string ->
  desc:string ->
  unit ->
  pair list * stats
(** [run log ~anc ~desc ()] evaluates the path expression
    [anc//desc] (or [anc/desc] with [~axis:Child]), returning pairs
    ordered by descendant segment.

    [push_filter] (default on) is Figure 9's optimization (i): push
    only A-elements containing at least one child segment.  [trim_top]
    (default on) is optimization (ii): on each push, drop from the top
    frame the elements ending before the pushed segment.  Both flags
    exist for the ablation benchmark; disabling them changes cost, not
    results. *)

val global_pairs : Lxu_seglog.Update_log.t -> pair list -> (int * int) list
(** Translates pairs to [(anc_gstart, desc_gstart)] global positions,
    sorted by [(desc, anc)] — the canonical form for comparing against
    the classical algorithms. *)
