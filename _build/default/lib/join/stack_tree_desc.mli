(** Stack-Tree-Desc (Al-Khalifa et al., ICDE 2002): the classical
    stack-based structural join the paper uses both as its baseline
    (STD) and as the in-segment subroutine of Lazy-Join.

    Joins two lists of interval labels drawn from the same document
    (so elements properly nest), producing ancestor/descendant or
    parent/child pairs sorted by descendant position.  Runs in
    O(|anc| + |desc| + output). *)

type stats = {
  mutable a_scanned : int;  (** ancestor-list entries consumed *)
  mutable d_scanned : int;  (** descendant-list entries consumed *)
  mutable pairs : int;
}

type axis = Descendant | Child

val join :
  ?axis:axis ->
  anc:Lxu_labeling.Interval.t array ->
  desc:Lxu_labeling.Interval.t array ->
  unit ->
  (Lxu_labeling.Interval.t * Lxu_labeling.Interval.t) list * stats
(** [join ~axis ~anc ~desc ()] with both inputs sorted by start
    position.  The default axis is [Descendant].  A label appearing in
    both lists never joins with itself. *)
