open Lxu_labeling

type t = {
  elems : Interval.t array;
  parent : int array;  (* nearest enclosing element in the same list, or -1 *)
  mutable probes : int;
}

let build elems =
  let n = Array.length elems in
  let parent = Array.make n (-1) in
  let stack = ref [] in
  Array.iteri
    (fun i (e : Interval.t) ->
      if i > 0 && elems.(i - 1).Interval.start >= e.Interval.start then
        invalid_arg "Xr_index.build: not sorted by start";
      while
        match !stack with
        | j :: _ -> elems.(j).Interval.stop <= e.Interval.start
        | [] -> false
      do
        stack := List.tl !stack
      done;
      (match !stack with j :: _ -> parent.(i) <- j | [] -> ());
      stack := i :: !stack)
    elems;
  { elems; parent; probes = 0 }

let length t = Array.length t.elems
let get t i = t.elems.(i)
let probes t = t.probes

let first_from t pos =
  t.probes <- t.probes + 1;
  let lo = ref 0 and hi = ref (Array.length t.elems) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.elems.(mid).Interval.start < pos then lo := mid + 1 else hi := mid
  done;
  !lo

(* Ancestors of [pos]: start from the predecessor by start; if it does
   not contain [pos], hop to its nearest enclosing element — the chain
   of hops is bounded by the nesting depth. *)
let stab t pos =
  t.probes <- t.probes + 1;
  let i = first_from t pos - 1 in
  let rec up j acc =
    if j < 0 then acc
    else begin
      let e = t.elems.(j) in
      if e.Interval.start < pos && e.Interval.stop > pos then up t.parent.(j) (j :: acc)
      else up t.parent.(j) acc
    end
  in
  up i []
