let join ?(axis = Stack_tree_desc.Descendant) ~anc ~desc () =
  let pairs = ref [] in
  List.iter
    (fun (as_, ae, al) ->
      List.iter
        (fun (ds, de, dl) ->
          let contains = as_ < ds && ae > de in
          let level_ok =
            match axis with
            | Stack_tree_desc.Descendant -> true
            | Stack_tree_desc.Child -> dl = al + 1
          in
          if contains && level_ok then pairs := (as_, ds) :: !pairs)
        desc)
    anc;
  List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2)) !pairs
