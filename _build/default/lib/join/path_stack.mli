(** PathStack (Bruno, Koudas, Srivastava — SIGMOD 2002): holistic
    evaluation of a linear path pattern [q1 // q2 // … // qn] over
    interval-labelled element lists, without materializing the
    intermediate binary-join results (§2's [2]).

    One sorted stream and one stack per query node; a stream element is
    pushed only when its parent stack is non-empty, and stacks encode
    all partial solutions compactly.  Parent-child edges are verified
    with the level test during expansion. *)

type edge = Desc | Child

val matches :
  streams:Lxu_labeling.Interval.t array array ->
  edges:edge array ->
  Lxu_labeling.Interval.t array list
(** [matches ~streams ~edges] where [streams.(i)] is the sorted element
    list of query node [i] and [edges.(i)] relates node [i] to node
    [i+1] ([Array.length edges = Array.length streams - 1]).  Returns
    every root-to-leaf match as an array of one element per query node,
    in leaf document order.
    @raise Invalid_argument on mismatched lengths or empty patterns. *)

val count : streams:Lxu_labeling.Interval.t array array -> edges:edge array -> int
(** Number of matches (no tuple materialization). *)

val leaves :
  streams:Lxu_labeling.Interval.t array array ->
  edges:edge array ->
  Lxu_labeling.Interval.t list
(** Distinct leaf elements participating in at least one match, in
    document order. *)
