(** TwigStack (Bruno, Koudas, Srivastava — SIGMOD 2002): holistic
    matching of branching twig patterns, the state-of-the-art join the
    paper cites as [2].

    A twig is a tree of query nodes, each with a sorted element stream
    and an edge kind toward its parent.  Phase one coordinates all
    streams with [getNext] — an element is pushed only while its head
    can still participate in a full match under descendant edges — and
    emits compact root-to-leaf path solutions; phase two joins the path
    solutions on their shared prefixes into full twig tuples.  As in
    the original, optimality holds for descendant-only twigs;
    parent-child edges are enforced exactly (during path expansion) but
    may admit interim pushes. *)

type edge = Path_stack.edge = Desc | Child

type query = {
  qid : int;  (** unique per query node, 0 .. node count - 1 *)
  stream : Lxu_labeling.Interval.t array;  (** sorted by start *)
  edge : edge;  (** relation to the parent (ignored on the root) *)
  children : query list;
}

val node_count : query -> int

val matches : query -> Lxu_labeling.Interval.t array list
(** Every full twig match as an array indexed by [qid], in no
    particular order.
    @raise Invalid_argument if [qid]s are not exactly 0..n-1. *)

val count : query -> int

val root_matches : query -> Lxu_labeling.Interval.t list
(** Distinct root elements participating in at least one full match,
    in document order. *)
