open Lxu_seglog
open Lxu_labeling

type stats = {
  mutable elements_read : int;
  mutable pairs : int;
}

let global_list_counted log ~tag stats =
  let reg = Update_log.registry log in
  match Tag_registry.find reg tag with
  | None -> [||]
  | Some tid ->
    let acc = ref [] in
    Array.iter
      (fun (entry : Tag_list.entry) ->
        let node = Update_log.node_of_sid log entry.Tag_list.sid in
        Array.iter
          (fun (k : Element_index.key) ->
            (match stats with
            | Some s -> s.elements_read <- s.elements_read + 1
            | None -> ());
            let e =
              {
                Er_node.start = k.Element_index.start;
                stop = k.Element_index.stop;
                level = k.Element_index.level;
                tid = k.Element_index.tid;
              }
            in
            let gstart, gstop = Er_node.global_extent node e in
            acc := Interval.make ~start:gstart ~stop:gstop ~level:k.Element_index.level :: !acc)
          (Update_log.elements_of log ~tid ~sid:entry.Tag_list.sid))
      (Update_log.segments_for_tag log ~tag);
    let a = Array.of_list !acc in
    Array.sort Interval.compare_start a;
    a

let global_list log ~tag =
  Update_log.prepare_for_query log;
  global_list_counted log ~tag None

let run ?axis log ~anc ~desc () =
  let stats = { elements_read = 0; pairs = 0 } in
  Update_log.prepare_for_query log;
  let a = global_list_counted log ~tag:anc (Some stats) in
  let d = global_list_counted log ~tag:desc (Some stats) in
  let pairs, jstats = Stack_tree_desc.join ?axis ~anc:a ~desc:d () in
  stats.pairs <- jstats.Stack_tree_desc.pairs;
  (pairs, stats)
