(** XR-tree-style element index (Jiang, Lu, Wang, Ooi — ICDE 2003,
    the paper's reference [5]).

    The XR-tree augments a B{^+}-tree over element start positions
    with stab information so a structural join can {e skip}: jump to
    the first possible descendant of an ancestor, or fetch exactly the
    ancestors stabbing a descendant's position, both in logarithmic
    time.  This implementation indexes one tag's sorted, properly
    nested element list with binary search plus nearest-enclosing
    parent pointers — the same two probe operations with the same
    bounds, in memory. *)

type t

val build : Lxu_labeling.Interval.t array -> t
(** [build elems] over a list sorted by start whose intervals properly
    nest (one tag of one document).
    @raise Invalid_argument if unsorted. *)

val length : t -> int
val get : t -> int -> Lxu_labeling.Interval.t

val first_from : t -> int -> int
(** [first_from t pos] is the index of the first element whose start
    is [>= pos] ([length t] when none) — the descendant-skipping
    probe. *)

val stab : t -> int -> int list
(** [stab t pos] — indices of the elements strictly containing
    position [pos], outermost first: the ancestor-skipping probe.
    O(log n + answer). *)

val probes : t -> int
(** Cumulative probe count (cost metric). *)
