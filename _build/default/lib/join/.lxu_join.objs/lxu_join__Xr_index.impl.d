lib/join/xr_index.ml: Array Interval List Lxu_labeling
