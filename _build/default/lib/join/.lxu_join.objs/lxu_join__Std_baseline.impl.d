lib/join/std_baseline.ml: Array Element_index Er_node Interval Lxu_labeling Lxu_seglog Stack_tree_desc Tag_list Tag_registry Update_log
