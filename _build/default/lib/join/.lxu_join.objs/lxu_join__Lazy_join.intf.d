lib/join/lazy_join.mli: Lxu_seglog
