lib/join/std_baseline.mli: Lxu_labeling Lxu_seglog Stack_tree_desc
