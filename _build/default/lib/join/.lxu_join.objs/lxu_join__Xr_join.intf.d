lib/join/xr_join.mli: Lxu_labeling Stack_tree_desc Xr_index
