lib/join/naive_join.mli: Stack_tree_desc
