lib/join/twig_stack.mli: Lxu_labeling Path_stack
