lib/join/mpmgjn.mli: Lxu_labeling Stack_tree_desc
