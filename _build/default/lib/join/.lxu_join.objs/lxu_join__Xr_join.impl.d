lib/join/xr_join.ml: Interval List Lxu_labeling Stack_tree_desc Xr_index
