lib/join/mpmgjn.ml: Array Interval List Lxu_labeling Stack_tree_desc
