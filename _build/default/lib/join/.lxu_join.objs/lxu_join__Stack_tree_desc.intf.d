lib/join/stack_tree_desc.mli: Lxu_labeling
