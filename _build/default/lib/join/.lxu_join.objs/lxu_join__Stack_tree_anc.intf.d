lib/join/stack_tree_anc.mli: Lxu_labeling Stack_tree_desc
