lib/join/lazy_join.ml: Array Element_index Er_node Lazy List Lxu_seglog Lxu_util Tag_list Tag_registry Update_log Vec
