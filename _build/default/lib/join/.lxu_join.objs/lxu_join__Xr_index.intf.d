lib/join/xr_index.mli: Lxu_labeling
