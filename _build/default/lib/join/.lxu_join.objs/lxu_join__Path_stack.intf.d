lib/join/path_stack.mli: Lxu_labeling
