lib/join/stack_tree_anc.ml: Array Interval List Lxu_labeling Stack_tree_desc
