lib/join/path_stack.ml: Array Interval List Lxu_labeling Lxu_util Vec
