lib/join/twig_stack.ml: Array Hashtbl Interval List Lxu_labeling Lxu_util Path_stack Vec
