lib/join/naive_join.ml: List Stack_tree_desc
