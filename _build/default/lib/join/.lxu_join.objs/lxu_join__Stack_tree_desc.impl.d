lib/join/stack_tree_desc.ml: Array Interval List Lxu_labeling
