open Lxu_util
open Lxu_labeling

type edge = Path_stack.edge = Desc | Child

type query = {
  qid : int;
  stream : Interval.t array;
  edge : edge;
  children : query list;
}

let rec node_count q = List.fold_left (fun acc c -> acc + node_count c) 1 q.children

type entry = { iv : Interval.t; ptr : int }

(* Flattened query structures, all indexed by qid. *)
type state = {
  n : int;
  nodes : query array;
  parent : int array;  (* -1 for the root *)
  cursors : int array;
  stacks : entry Vec.t array;
  (* Per leaf qid: the root-to-leaf qid list and collected path
     solutions (root-first element arrays). *)
  paths : (int, int list) Hashtbl.t;
  solutions : (int, Interval.t array list ref) Hashtbl.t;
}

let build_state root =
  let n = node_count root in
  let nodes = Array.make n root in
  let parent = Array.make n (-1) in
  let paths = Hashtbl.create 8 in
  let solutions = Hashtbl.create 8 in
  let seen = Array.make n false in
  let rec walk q up path =
    if q.qid < 0 || q.qid >= n || seen.(q.qid) then
      invalid_arg "Twig_stack: qids must be exactly 0..n-1";
    seen.(q.qid) <- true;
    nodes.(q.qid) <- q;
    parent.(q.qid) <- up;
    let path = q.qid :: path in
    if q.children = [] then begin
      Hashtbl.replace paths q.qid (List.rev path);
      Hashtbl.replace solutions q.qid (ref [])
    end
    else List.iter (fun c -> walk c q.qid path) q.children
  in
  walk root (-1) [];
  {
    n;
    nodes;
    parent;
    cursors = Array.make n 0;
    stacks = Array.init n (fun _ -> Vec.create ());
    paths;
    solutions;
  }

let next_l st q =
  let c = st.cursors.(q.qid) in
  if c < Array.length q.stream then q.stream.(c).Interval.start else max_int

let next_r st q =
  let c = st.cursors.(q.qid) in
  if c < Array.length q.stream then q.stream.(c).Interval.stop else max_int

(* getNext of the TwigStack paper: returns a query node whose head
   element is guaranteed not to need anything earlier from the other
   streams (under descendant edges). *)
let rec get_next st q =
  if q.children = [] then q
  else begin
    let rec first_divergent = function
      | [] -> None
      | c :: rest ->
        let nc = get_next st c in
        if nc.qid <> c.qid then Some nc else first_divergent rest
    in
    match first_divergent q.children with
    | Some nc -> nc
    | None ->
      let nmin =
        List.fold_left
          (fun best c -> if next_l st c < next_l st best then c else best)
          (List.hd q.children) (List.tl q.children)
      in
      let nmax =
        List.fold_left
          (fun best c -> if next_l st c > next_l st best then c else best)
          (List.hd q.children) (List.tl q.children)
      in
      while next_r st q < next_l st nmax do
        st.cursors.(q.qid) <- st.cursors.(q.qid) + 1
      done;
      if next_l st q < next_l st nmin then q else nmin
  end

let clean_stack stack pos =
  while Vec.length stack > 0 && (Vec.last stack).iv.Interval.stop <= pos do
    ignore (Vec.pop stack)
  done

(* Expands the path solutions ending at leaf entry [e]: walks the
   root-to-leaf stacks through the recorded pointers, checking
   parent-child edges by level. *)
let expand st leaf_qid (e : entry) =
  let path = Array.of_list (Hashtbl.find st.paths leaf_qid) in
  let depth = Array.length path in
  let sols = Hashtbl.find st.solutions leaf_qid in
  let chosen = Array.make depth e.iv in
  (* position d in the path; [ent] is the chosen entry at depth d. *)
  let rec up d (ent : entry) =
    if d = 0 then sols := Array.copy chosen :: !sols
    else begin
      let upper_stack = st.stacks.(path.(d - 1)) in
      let child_edge = st.nodes.(path.(d)).edge in
      for j = 0 to ent.ptr do
        let cand = Vec.get upper_stack j in
        let edge_ok =
          match child_edge with
          | Desc -> true
          | Child -> chosen.(d).Interval.level = cand.iv.Interval.level + 1
        in
        if edge_ok then begin
          chosen.(d - 1) <- cand.iv;
          up (d - 1) cand
        end
      done
    end
  in
  chosen.(depth - 1) <- e.iv;
  up (depth - 1) e

let phase_one root =
  let st = build_state root in
  let leaves = Hashtbl.fold (fun k _ acc -> k :: acc) st.paths [] in
  let live_leaf_min () =
    (* The non-exhausted leaf with the smallest head, if any. *)
    List.fold_left
      (fun best qid ->
        let q = st.nodes.(qid) in
        if next_l st q = max_int then best
        else begin
          match best with
          | Some b when next_l st b <= next_l st q -> best
          | _ -> Some q
        end)
      None leaves
  in
  let continue_ = ref true in
  while !continue_ do
    let q = get_next st root in
    (* Once any leaf stream is exhausted getNext may keep returning an
       exhausted node; no further internal pushes can matter then, but
       live leaves must still drain — their path solutions reference
       already-stacked ancestors and merge with the finished paths. *)
    let q = if next_l st q = max_int then live_leaf_min () else Some q in
    match q with
    | None -> continue_ := false
    | Some q ->
      let t = q.stream.(st.cursors.(q.qid)) in
      let pq = st.parent.(q.qid) in
      if pq >= 0 then clean_stack st.stacks.(pq) t.Interval.start;
      if pq < 0 || Vec.length st.stacks.(pq) > 0 then begin
        clean_stack st.stacks.(q.qid) t.Interval.start;
        let e = { iv = t; ptr = (if pq < 0 then -1 else Vec.length st.stacks.(pq) - 1) } in
        if q.children = [] then expand st q.qid e
        else Vec.push st.stacks.(q.qid) e
      end;
      st.cursors.(q.qid) <- st.cursors.(q.qid) + 1
  done;
  st

(* Phase two: join the per-path solutions on their shared prefixes.
   Rows are partial assignments (by qid); two root-to-leaf paths share
   exactly their common prefix, which is always already bound. *)
let merge st root =
  ignore root;
  let leaf_ids = Hashtbl.fold (fun k _ acc -> k :: acc) st.paths [] |> List.sort compare in
  let row_of path sol =
    let row = Array.make st.n None in
    List.iteri (fun d qid -> row.(qid) <- Some sol.(d)) path;
    row
  in
  let start_of = function
    | Some (iv : Interval.t) -> iv.Interval.start
    | None -> assert false
  in
  match leaf_ids with
  | [] -> []
  | first :: rest ->
    let first_path = Hashtbl.find st.paths first in
    let acc = ref (List.map (row_of first_path) !(Hashtbl.find st.solutions first)) in
    let bound = ref first_path in
    List.iter
      (fun leaf ->
        let path = Hashtbl.find st.paths leaf in
        let shared = List.filter (fun q -> List.mem q !bound) path in
        (* Index accumulated rows by their shared-column values. *)
        let table = Hashtbl.create 64 in
        List.iter
          (fun row ->
            let key = List.map (fun q -> start_of row.(q)) shared in
            Hashtbl.add table key row)
          !acc;
        let merged = ref [] in
        List.iter
          (fun sol ->
            let row2 = row_of path sol in
            let key = List.map (fun q -> start_of row2.(q)) shared in
            List.iter
              (fun row ->
                let combined = Array.copy row in
                List.iteri (fun d qid -> combined.(qid) <- Some sol.(d)) path;
                merged := combined :: !merged)
              (Hashtbl.find_all table key))
          !(Hashtbl.find st.solutions leaf);
        acc := !merged;
        bound := !bound @ List.filter (fun q -> not (List.mem q !bound)) path)
      rest;
    List.map (fun row -> Array.map (function Some iv -> iv | None -> assert false) row) !acc

let matches root =
  let st = phase_one root in
  merge st root

let count root = List.length (matches root)

let root_matches root =
  let st = phase_one root in
  let rows = merge st root in
  rows
  |> List.map (fun row -> row.(root.qid))
  |> List.sort_uniq (fun (a : Interval.t) b -> compare a.Interval.start b.Interval.start)
