open Lxu_util
open Lxu_labeling

type edge = Desc | Child

type entry = { iv : Interval.t; ptr : int }
(* [ptr] is the index of the top of the stack below at push time; every
   entry at or below [ptr] there contained this element when it was
   pushed, and index prefixes are stable (pops above a surviving entry
   never reach below it). *)

let validate ~streams ~edges =
  let n = Array.length streams in
  if n = 0 then invalid_arg "Path_stack: empty pattern";
  if Array.length edges <> n - 1 then invalid_arg "Path_stack: edges/streams mismatch"

(* Enumerates, bottom-up, the partial chains ending at [entry] of
   stack [i], calling [f] with the chosen elements for query nodes
   0..i (index 0 first). *)
let rec expand stacks edges i entry acc f =
  if i = 0 then f (entry.iv :: acc)
  else
    for j = 0 to entry.ptr do
      let parent = Vec.get stacks.(i - 1) j in
      let edge_ok =
        match edges.(i - 1) with
        | Desc -> true
        | Child -> entry.iv.Interval.level = parent.iv.Interval.level + 1
      in
      if edge_ok then expand stacks edges (i - 1) parent (entry.iv :: acc) f
    done

exception Found

let chain_exists stacks edges i entry =
  match expand stacks edges i entry [] (fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

let run ~streams ~edges ~on_leaf =
  validate ~streams ~edges;
  let n = Array.length streams in
  let stacks = Array.init n (fun _ -> Vec.create ()) in
  let cursors = Array.make n 0 in
  let exhausted i = cursors.(i) >= Array.length streams.(i) in
  let continue_ = ref true in
  while (not (exhausted (n - 1))) && !continue_ do
    (* The stream whose next element starts first. *)
    let qmin = ref (-1) in
    for i = 0 to n - 1 do
      if not (exhausted i) then begin
        let s = streams.(i).(cursors.(i)).Interval.start in
        if !qmin < 0 || s < streams.(!qmin).(cursors.(!qmin)).Interval.start then qmin := i
      end
    done;
    if !qmin < 0 then continue_ := false
    else begin
      let q = !qmin in
      let t = streams.(q).(cursors.(q)) in
      (* Clean: entries ending before [t] can contain neither it nor
         anything later. *)
      Array.iter
        (fun st ->
          while Vec.length st > 0 && (Vec.last st).iv.Interval.stop <= t.Interval.start do
            ignore (Vec.pop st)
          done)
        stacks;
      if q = 0 || Vec.length stacks.(q - 1) > 0 then begin
        let entry = { iv = t; ptr = (if q = 0 then -1 else Vec.length stacks.(q - 1) - 1) } in
        if q = n - 1 then on_leaf stacks entry
        else Vec.push stacks.(q) entry
      end;
      cursors.(q) <- cursors.(q) + 1
    end
  done;
  stacks

let matches ~streams ~edges =
  let acc = ref [] in
  let _ =
    run ~streams ~edges ~on_leaf:(fun stacks entry ->
        expand stacks edges (Array.length streams - 1) entry [] (fun chain ->
            acc := Array.of_list chain :: !acc))
  in
  List.rev !acc

let count ~streams ~edges =
  let n = ref 0 in
  let _ =
    run ~streams ~edges ~on_leaf:(fun stacks entry ->
        expand stacks edges (Array.length streams - 1) entry [] (fun _ -> incr n))
  in
  !n

let leaves ~streams ~edges =
  let acc = ref [] in
  let _ =
    run ~streams ~edges ~on_leaf:(fun stacks entry ->
        if chain_exists stacks edges (Array.length streams - 1) entry then
          acc := entry.iv :: !acc)
  in
  List.rev !acc
