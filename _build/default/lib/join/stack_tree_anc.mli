(** Stack-Tree-Anc (Al-Khalifa et al., ICDE 2002): the sibling of
    {!Stack_tree_desc} that emits join pairs sorted by {e ancestor}
    position.

    Descendants joining an ancestor still on the stack cannot be
    emitted immediately (deeper ancestors may still arrive), so each
    stack entry accumulates its pair list; a popped bottom element
    flushes its (complete) list to the output, and inner lists are
    appended to their parent's on pop.  Useful when the next operator
    in a query plan needs ancestor order — e.g. the pairwise plans of
    {!Twig_query}. *)

type axis = Stack_tree_desc.axis = Descendant | Child

val join :
  ?axis:axis ->
  anc:Lxu_labeling.Interval.t array ->
  desc:Lxu_labeling.Interval.t array ->
  unit ->
  (Lxu_labeling.Interval.t * Lxu_labeling.Interval.t) list * Stack_tree_desc.stats
(** Inputs sorted by start position; output sorted by
    (ancestor start, descendant start). *)
