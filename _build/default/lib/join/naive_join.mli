(** Quadratic reference join — the test oracle.

    Checks containment of every ancestor/descendant label pair by
    brute force.  Only for correctness testing of the real
    algorithms. *)

val join :
  ?axis:Stack_tree_desc.axis ->
  anc:(int * int * int) list ->
  desc:(int * int * int) list ->
  unit ->
  (int * int) list
(** [join ~axis ~anc ~desc ()] over [(start, stop, level)] global
    labels; returns [(anc_start, desc_start)] pairs sorted by
    [(desc_start, anc_start)]. *)
