open Lxu_labeling

type axis = Stack_tree_desc.axis = Descendant | Child

(* Completed pair runs are kept as a rope and flattened exactly once at
   the end: popping must not re-copy inherited lists, or deep ancestor
   chains turn the join quadratic in the output size. *)
type rope = Leaf of (Interval.t * Interval.t) list  (* in order *) | Cat of rope list

(* Each stack entry accumulates its own pairs ([self_rev], newest
   first) plus the completed chunks inherited from popped inner
   ancestors.  An inner ancestor starts later than everything below
   it, so its chunk belongs after every pair the node below will ever
   produce itself — hence self-then-inherit on flush. *)
type entry = {
  iv : Interval.t;
  mutable self_rev : (Interval.t * Interval.t) list;
  mutable inh_rev : rope list;
}

let chunk_of e = Cat (Leaf (List.rev e.self_rev) :: List.rev e.inh_rev)

(* In-order flatten; every leaf list is copied exactly once. *)
let flatten rope =
  let rec go rope acc =
    match rope with Leaf l -> l @ acc | Cat rs -> List.fold_right go rs acc
  in
  go rope []

let join ?(axis = Descendant) ~anc ~desc () =
  let stats = { Stack_tree_desc.a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let out_rev = ref [] in
  let stack = ref [] in
  let pop () =
    match !stack with
    | [] -> ()
    | top :: rest ->
      stack := rest;
      let chunk = chunk_of top in
      (match rest with
      | below :: _ -> below.inh_rev <- chunk :: below.inh_rev
      | [] -> out_rev := chunk :: !out_rev)
  in
  let n_a = Array.length anc and n_d = Array.length desc in
  let ia = ref 0 and id = ref 0 in
  while !id < n_d && (!ia < n_a || !stack <> []) do
    let d = desc.(!id) in
    let a_start = if !ia < n_a then anc.(!ia).Interval.start else max_int in
    if a_start < d.Interval.start then begin
      let a = anc.(!ia) in
      while (match !stack with top :: _ -> top.iv.Interval.stop <= a.Interval.start | [] -> false) do
        pop ()
      done;
      stack := { iv = a; self_rev = []; inh_rev = [] } :: !stack;
      incr ia;
      stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1
    end
    else begin
      while (match !stack with top :: _ -> top.iv.Interval.stop <= d.Interval.start | [] -> false) do
        pop ()
      done;
      List.iter
        (fun e ->
          let keep =
            match axis with
            | Descendant -> true
            | Child -> d.Interval.level = e.iv.Interval.level + 1
          in
          if keep then begin
            e.self_rev <- (e.iv, d) :: e.self_rev;
            stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
          end)
        !stack;
      incr id;
      stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1
    end
  done;
  while !stack <> [] do
    pop ()
  done;
  (flatten (Cat (List.rev !out_rev)), stats)
