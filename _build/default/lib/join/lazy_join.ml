open Lxu_util
open Lxu_seglog

type axis = Descendant | Child

type elem_ref = { sid : int; start : int; stop : int; level : int }
type pair = { anc : elem_ref; desc : elem_ref }

type stats = {
  mutable a_segments : int;
  mutable d_segments : int;
  mutable segments_pushed : int;
  mutable segments_skipped : int;
  mutable in_segment_joins : int;
  mutable cross_pairs : int;
  mutable in_pairs : int;
  mutable elements_fetched : int;
}

type frame = {
  node : Er_node.t;
  depth : int;  (* ER-tree depth: index of [node.sid] in any descendant's path *)
  mutable elems : elem_ref list;  (* candidate A-elements, by start *)
}

let contains_seg (a : Er_node.t) (d : Er_node.t) =
  a.Er_node.gp < d.Er_node.gp && a.Er_node.gp + a.Er_node.len > d.Er_node.gp + d.Er_node.len

let seg_depth (n : Er_node.t) =
  let rec up acc = function None -> acc | Some p -> up (acc + 1) p.Er_node.parent in
  up 0 n.Er_node.parent

(* Local position, within the frame's segment, of the child segment on
   the path to the segment whose tag-list [path] is given (P_T^S of
   §4.1).  Paths are root chains, so the frame's sid sits at index
   [frame.depth] of every descendant's path — an O(1) lookup the paper
   sketches as "computed after each push and stored". *)
let p_of_frame log fr (path : int array) =
  let i = fr.depth in
  if i + 1 >= Array.length path || path.(i) <> fr.node.Er_node.sid then raise Not_found
  else (Update_log.node_of_sid log path.(i + 1)).Er_node.lp

(* Stack-Tree-Desc specialized to elem_ref arrays of one segment
   (virtual local labels), emitting pairs through [emit].  Avoids any
   conversion to and from interval records on the hot output path. *)
let in_segment_join ~axis ~anc ~desc ~emit =
  let n_a = Array.length anc and n_d = Array.length desc in
  let stack = ref [] in
  let ia = ref 0 and id = ref 0 in
  while !id < n_d && (!ia < n_a || !stack <> []) do
    let d = desc.(!id) in
    let a_start = if !ia < n_a then anc.(!ia).start else max_int in
    if a_start < d.start then begin
      let a = anc.(!ia) in
      while (match !stack with top :: _ -> top.stop <= a.start | [] -> false) do
        stack := List.tl !stack
      done;
      stack := a :: !stack;
      incr ia
    end
    else begin
      while (match !stack with top :: _ -> top.stop <= d.start | [] -> false) do
        stack := List.tl !stack
      done;
      List.iter
        (fun a ->
          match axis with
          | Descendant -> emit a d
          | Child -> if d.level = a.level + 1 then emit a d)
        !stack;
      incr id
    end
  done

let run ?(axis = Descendant) ?(push_filter = true) ?(trim_top = true) log ~anc ~desc () =
  let stats =
    {
      a_segments = 0;
      d_segments = 0;
      segments_pushed = 0;
      segments_skipped = 0;
      in_segment_joins = 0;
      cross_pairs = 0;
      in_pairs = 0;
      elements_fetched = 0;
    }
  in
  Update_log.prepare_for_query log;
  let reg = Update_log.registry log in
  match (Tag_registry.find reg anc, Tag_registry.find reg desc) with
  | None, _ | _, None -> ([], stats)
  | Some tid_a, Some tid_d ->
    let sla = Update_log.segments_for_tag log ~tag:anc in
    let sld = Update_log.segments_for_tag log ~tag:desc in
    let out = ref [] in
    let stack = ref [] in
    let ia = ref 0 and id = ref 0 in
    (* Elements of one tag in one segment, converted to refs once; the
       refs are then shared by every emitted pair. *)
    let fetch tid sid =
      let keys = Update_log.elements_of log ~tid ~sid in
      stats.elements_fetched <- stats.elements_fetched + Array.length keys;
      Array.map
        (fun (k : Element_index.key) ->
          {
            sid = k.Element_index.sid;
            start = k.Element_index.start;
            stop = k.Element_index.stop;
            level = k.Element_index.level;
          })
        keys
    in
    while !id < Array.length sld && (!ia < Array.length sla || !stack <> []) do
      let sd_entry = sld.(!id) in
      let sd_node = Update_log.node_of_sid log sd_entry.Tag_list.sid in
      match !stack with
      | top :: rest
        when sd_node.Er_node.gp > top.node.Er_node.gp + top.node.Er_node.len ->
        (* Step 1: the top segment cannot contain sd nor any later
           segment of SL_D. *)
        stack := rest
      | _ ->
        let sa_node =
          if !ia < Array.length sla then
            Some (Update_log.node_of_sid log sla.(!ia).Tag_list.sid)
          else None
        in
        (match sa_node with
        | Some sa when sa.Er_node.gp < sd_node.Er_node.gp ->
          (* Step 2: push sa if it contains sd, else skip it forever
             (segments nest as a tree, so not containing means
             disjoint from everything at or after sd). *)
          stats.a_segments <- stats.a_segments + 1;
          if contains_seg sa sd_node then begin
            (* Optimization (i): keep only A-elements that contain at
               least one child-segment position. *)
            let keep (r : elem_ref) =
              (not push_filter)
              || Vec.exists
                   (fun (c : Er_node.t) -> r.start < c.Er_node.lp && c.Er_node.lp < r.stop)
                   sa.Er_node.children
            in
            let elems = Array.to_list (fetch tid_a sa.Er_node.sid) |> List.filter keep in
            (* Optimization (ii): drop from the current top the
               elements that end at or before the position of sa —
               they cannot contain sa or any later segment. *)
            (match !stack with
            | top :: _ when trim_top -> begin
              match p_of_frame log top (Er_node.path sa) with
              | p -> top.elems <- List.filter (fun (r : elem_ref) -> r.stop > p) top.elems
              | exception Not_found -> ()
            end
            | _ -> ());
            stack := { node = sa; depth = seg_depth sa; elems } :: !stack;
            stats.segments_pushed <- stats.segments_pushed + 1
          end
          else stats.segments_skipped <- stats.segments_skipped + 1;
          incr ia
        | _ ->
          (* Step 3: join generation for sd. *)
          let d_elems = lazy (fetch tid_d sd_node.Er_node.sid) in
          List.iter
            (fun fr ->
              (* Parent-child pairs across segments are decided by the
                 absolute-level check below: with multi-rooted
                 fragments an intermediate segment can contribute zero
                 element depth, so (unlike the single-rooted case of
                 §4.2) they are not confined to the direct parent
                 segment. *)
              match p_of_frame log fr sd_entry.Tag_list.path with
              | exception Not_found -> ()
              | p ->
                List.iter
                  (fun (a : elem_ref) ->
                    if a.start < p && a.stop > p then
                      Array.iter
                        (fun (d : elem_ref) ->
                          let level_ok =
                            match axis with
                            | Descendant -> true
                            | Child -> d.level = a.level + 1
                          in
                          if level_ok then begin
                            out := { anc = a; desc = d } :: !out;
                            stats.cross_pairs <- stats.cross_pairs + 1
                          end)
                        (Lazy.force d_elems))
                  fr.elems)
            !stack;
          (* In-segment joins when the same segment holds both tags. *)
          (match sa_node with
          | Some sa when sa.Er_node.sid = sd_node.Er_node.sid ->
            stats.in_segment_joins <- stats.in_segment_joins + 1;
            let a_elems = fetch tid_a sa.Er_node.sid in
            in_segment_join ~axis ~anc:a_elems ~desc:(Lazy.force d_elems)
              ~emit:(fun a d ->
                out := { anc = a; desc = d } :: !out;
                stats.in_pairs <- stats.in_pairs + 1)
          | _ -> ());
          stats.d_segments <- stats.d_segments + 1;
          incr id)
    done;
    (List.rev !out, stats)

let global_pairs log pairs =
  let gstart (r : elem_ref) =
    let node = Update_log.node_of_sid log r.sid in
    let e = { Er_node.start = r.start; stop = r.stop; level = r.level; tid = 0 } in
    fst (Er_node.global_extent node e)
  in
  pairs
  |> List.map (fun { anc; desc } -> (gstart anc, gstart desc))
  |> List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2))
