open Lxu_labeling

let keep axis (a : Interval.t) (d : Interval.t) =
  match axis with
  | Stack_tree_desc.Descendant -> true
  | Stack_tree_desc.Child -> d.Interval.level = a.Interval.level + 1

(* Descendant-driven: stab the ancestor index per descendant.  Output
   is naturally descendant-ordered. *)
let desc_driven axis anc desc stats =
  let out = ref [] in
  for j = 0 to Xr_index.length desc - 1 do
    let d = Xr_index.get desc j in
    stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1;
    List.iter
      (fun i ->
        let a = Xr_index.get anc i in
        stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1;
        if keep axis a d then begin
          out := (a, d) :: !out;
          stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
        end)
      (Xr_index.stab anc d.Interval.start)
  done;
  List.rev !out

(* Ancestor-driven: probe the descendant index for each ancestor's
   first possible descendant, scan the contained run, and collect
   pairs grouped per descendant so the output can be descendant-
   sorted.  Nested ancestors revisit their shared descendants (like
   the XR-tree join, the work is bounded by the output). *)
let anc_driven axis anc desc stats =
  let acc = ref [] in
  for i = 0 to Xr_index.length anc - 1 do
    let a = Xr_index.get anc i in
    stats.Stack_tree_desc.a_scanned <- stats.Stack_tree_desc.a_scanned + 1;
    let j = ref (Xr_index.first_from desc (a.Interval.start + 1)) in
    let continue_ = ref true in
    while !continue_ && !j < Xr_index.length desc do
      let d = Xr_index.get desc !j in
      if d.Interval.start >= a.Interval.stop then continue_ := false
      else begin
        stats.Stack_tree_desc.d_scanned <- stats.Stack_tree_desc.d_scanned + 1;
        if keep axis a d then begin
          acc := (a, d) :: !acc;
          stats.Stack_tree_desc.pairs <- stats.Stack_tree_desc.pairs + 1
        end;
        incr j
      end
    done
  done;
  List.sort
    (fun ((a1 : Interval.t), (d1 : Interval.t)) (a2, d2) ->
      compare (d1.Interval.start, a1.Interval.start) (d2.Interval.start, a2.Interval.start))
    !acc

let join ?(axis = Stack_tree_desc.Descendant) ~anc ~desc () =
  let stats = { Stack_tree_desc.a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let pairs =
    if Xr_index.length anc <= Xr_index.length desc then anc_driven axis anc desc stats
    else desc_driven axis anc desc stats
  in
  (pairs, stats)
