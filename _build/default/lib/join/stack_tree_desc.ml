open Lxu_labeling

type stats = {
  mutable a_scanned : int;
  mutable d_scanned : int;
  mutable pairs : int;
}

type axis = Descendant | Child

(* The stack invariant: elements form an ancestor chain, each
   containing the one above it.  Popping everything that stops at or
   before the next processed start keeps the invariant, because labels
   of one document properly nest. *)
let join ?(axis = Descendant) ~anc ~desc () =
  let stats = { a_scanned = 0; d_scanned = 0; pairs = 0 } in
  let out = ref [] in
  let stack = ref [] in
  let n_a = Array.length anc and n_d = Array.length desc in
  let ia = ref 0 and id = ref 0 in
  while !id < n_d && (!ia < n_a || !stack <> []) do
    let d = desc.(!id) in
    let a_start = if !ia < n_a then anc.(!ia).Interval.start else max_int in
    if a_start < d.Interval.start then begin
      let a = anc.(!ia) in
      while (match !stack with top :: _ -> top.Interval.stop <= a.Interval.start | [] -> false) do
        stack := List.tl !stack
      done;
      stack := a :: !stack;
      incr ia;
      stats.a_scanned <- stats.a_scanned + 1
    end
    else begin
      while (match !stack with top :: _ -> top.Interval.stop <= d.Interval.start | [] -> false) do
        stack := List.tl !stack
      done;
      (* Every remaining stack entry contains [d]. *)
      List.iter
        (fun a ->
          match axis with
          | Descendant ->
            out := (a, d) :: !out;
            stats.pairs <- stats.pairs + 1
          | Child ->
            if d.Interval.level = a.Interval.level + 1 then begin
              out := (a, d) :: !out;
              stats.pairs <- stats.pairs + 1
            end)
        !stack;
      incr id;
      stats.d_scanned <- stats.d_scanned + 1
    end
  done;
  (List.rev !out, stats)
