lib/core/lazy_db.mli: Lxu_labeling Lxu_seglog
