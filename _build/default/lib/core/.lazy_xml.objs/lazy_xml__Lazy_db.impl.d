lib/core/lazy_db.ml: Element_index Fun Interval Interval_store List Lxu_join Lxu_labeling Lxu_seglog String Update_log
