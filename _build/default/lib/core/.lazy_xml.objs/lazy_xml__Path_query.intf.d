lib/core/path_query.mli: Lazy_db
