lib/core/shared_db.ml: Condition Fun Lazy_db Mutex Path_query
