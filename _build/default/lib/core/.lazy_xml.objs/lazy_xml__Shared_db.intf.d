lib/core/shared_db.mli: Lazy_db
