lib/core/path_query.ml: Array Element_index Er_node Int Interval Interval_store Lazy_db List Lxu_join Lxu_labeling Lxu_seglog Option Printf Set String Tag_list Tag_registry Update_log
