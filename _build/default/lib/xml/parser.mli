(** A position-tracking XML parser.

    Segments arrive as plain text and elements are labelled by byte
    offsets, so the parser records, for every element, the offset of
    its ['<'] and the offset one past its closing ['>'].  The supported
    subset is what the paper's workloads need: elements, attributes,
    character data with the five predefined entities, CDATA sections,
    comments and processing instructions.  DTDs are not supported. *)

exception Parse_error of { pos : int; msg : string }

val parse_fragment : string -> Tree.node list
(** Parses a well-formed XML fragment: a sequence of elements, text and
    miscellaneous nodes.  Every returned node is annotated with its
    byte offsets in the input.
    @raise Parse_error on ill-formed input. *)

val parse_document : string -> Tree.element
(** Parses a document with exactly one root element (leading or
    trailing whitespace, comments and processing instructions are
    allowed around it).
    @raise Parse_error on ill-formed input or multiple roots. *)

val parse_fragment_result : string -> (Tree.node list, string) result
(** Exception-free variant; the error string includes the position. *)

val is_well_formed_fragment : string -> bool
