lib/xml/printer.ml: Buffer List String Tree
