lib/xml/tree.ml: Format List Set String
