(** XML node trees with byte offsets.

    The lazy update scheme labels every element by the byte offset of
    its start tag and the byte offset just past its end tag, inside the
    segment text it arrived in (§3.4 of the paper).  Trees produced by
    {!Parser} carry those offsets; trees built programmatically with
    the constructors below carry offset [-1] until they are rendered
    and re-parsed. *)

type attr = {
  attr_name : string;
  attr_value : string;
  a_start : int;  (** offset of the first byte of the name, or [-1] *)
  a_end : int;  (** offset one past the closing quote, or [-1] *)
}

type node =
  | Element of element
  | Text of text  (** character data, decoded *)
  | Cdata of text  (** CDATA section contents, verbatim *)
  | Comment of text  (** comment body without [<!--]/[-->] *)
  | Pi of text  (** processing instruction body without [<?]/[?>] *)

and element = {
  tag : string;
  attrs : attr list;
  mutable children : node list;
  e_start : int;  (** offset of the opening ['<'], or [-1] *)
  e_end : int;  (** offset one past the final ['>'], or [-1] *)
}

and text = { content : string; t_start : int; t_end : int }

val el : ?attrs:(string * string) list -> string -> node list -> node
(** Programmatic element constructor (offsets [-1]). *)

val txt : string -> node
(** Programmatic text constructor (offsets [-1]). *)

val comment : string -> node

val node_start : node -> int
val node_end : node -> int

val iter_elements : ?base_level:int -> node list -> (element -> level:int -> unit) -> unit
(** Pre-order traversal over all elements of a forest; [level] is the
    nesting depth starting at [base_level] (default 0) for roots. *)

val iter_labels :
  ?attributes:bool ->
  ?base_level:int ->
  node list ->
  (name:string -> start:int -> stop:int -> level:int -> unit) ->
  unit
(** Pre-order traversal over indexable items in ascending start order.
    Elements are reported under their tag; with [~attributes:true]
    (default false) each attribute is also reported as a subelement
    named ["@name"] spanning its [name="value"] bytes at the element's
    level plus one — the paper's treatment of attributes (§1). *)

val element_count : node list -> int
(** Total number of elements in a forest. *)

val distinct_tags : node list -> string list
(** Sorted list of distinct element tags in a forest. *)

val max_depth : node list -> int
(** Depth of the deepest element; an empty forest has depth 0. *)

val equal_structure : node list -> node list -> bool
(** Structural equality ignoring offsets: same tags, attributes, text
    contents and shape.  Adjacent text nodes are not merged. *)

val find_all : node list -> tag:string -> element list
(** All elements with the given tag, in document order. *)

val pp_node : Format.formatter -> node -> unit
(** Debugging printer (structure with offsets). *)
