type attr = { attr_name : string; attr_value : string; a_start : int; a_end : int }

type node =
  | Element of element
  | Text of text
  | Cdata of text
  | Comment of text
  | Pi of text

and element = {
  tag : string;
  attrs : attr list;
  mutable children : node list;
  e_start : int;
  e_end : int;
}

and text = { content : string; t_start : int; t_end : int }

let el ?(attrs = []) tag children =
  let attrs =
    List.map (fun (n, v) -> { attr_name = n; attr_value = v; a_start = -1; a_end = -1 }) attrs
  in
  Element { tag; attrs; children; e_start = -1; e_end = -1 }

let txt content = Text { content; t_start = -1; t_end = -1 }
let comment content = Comment { content; t_start = -1; t_end = -1 }

let node_start = function
  | Element e -> e.e_start
  | Text t | Cdata t | Comment t | Pi t -> t.t_start

let node_end = function
  | Element e -> e.e_end
  | Text t | Cdata t | Comment t | Pi t -> t.t_end

let iter_elements ?(base_level = 0) forest f =
  let rec go level = function
    | Element e ->
      f e ~level;
      List.iter (go (level + 1)) e.children
    | Text _ | Cdata _ | Comment _ | Pi _ -> ()
  in
  List.iter (go base_level) forest

let iter_labels ?(attributes = false) ?(base_level = 0) forest f =
  let rec go level = function
    | Element e ->
      f ~name:e.tag ~start:e.e_start ~stop:e.e_end ~level;
      if attributes then
        List.iter
          (fun a ->
            f ~name:("@" ^ a.attr_name) ~start:a.a_start ~stop:a.a_end ~level:(level + 1))
          e.attrs;
      List.iter (go (level + 1)) e.children
    | Text _ | Cdata _ | Comment _ | Pi _ -> ()
  in
  List.iter (go base_level) forest

let element_count forest =
  let n = ref 0 in
  iter_elements forest (fun _ ~level:_ -> incr n);
  !n

let distinct_tags forest =
  let module S = Set.Make (String) in
  let tags = ref S.empty in
  iter_elements forest (fun e ~level:_ -> tags := S.add e.tag !tags);
  S.elements !tags

let max_depth forest =
  let deepest = ref 0 in
  iter_elements forest (fun _ ~level -> if level + 1 > !deepest then deepest := level + 1);
  !deepest

let equal_attr a b = a.attr_name = b.attr_name && a.attr_value = b.attr_value

let rec equal_node a b =
  match (a, b) with
  | Element x, Element y ->
    x.tag = y.tag
    && List.length x.attrs = List.length y.attrs
    && List.for_all2 equal_attr x.attrs y.attrs
    && equal_structure x.children y.children
  | Text x, Text y | Cdata x, Cdata y | Comment x, Comment y | Pi x, Pi y ->
    x.content = y.content
  | _ -> false

and equal_structure a b =
  List.length a = List.length b && List.for_all2 equal_node a b

let find_all forest ~tag =
  let acc = ref [] in
  iter_elements forest (fun e ~level:_ -> if e.tag = tag then acc := e :: !acc);
  List.rev !acc

let rec pp_node fmt = function
  | Element e ->
    Format.fprintf fmt "@[<v 2>%s[%d,%d)" e.tag e.e_start e.e_end;
    List.iter (fun a -> Format.fprintf fmt "@ @%s=%S" a.attr_name a.attr_value) e.attrs;
    List.iter (fun c -> Format.fprintf fmt "@ %a" pp_node c) e.children;
    Format.fprintf fmt "@]"
  | Text t -> Format.fprintf fmt "text[%d,%d)%S" t.t_start t.t_end t.content
  | Cdata t -> Format.fprintf fmt "cdata[%d,%d)%S" t.t_start t.t_end t.content
  | Comment t -> Format.fprintf fmt "comment[%d,%d)%S" t.t_start t.t_end t.content
  | Pi t -> Format.fprintf fmt "pi[%d,%d)%S" t.t_start t.t_end t.content
