(** XML serialization.

    Renders node trees back to text with proper escaping.  Rendering a
    tree and re-parsing it yields a structurally equal tree whose
    offsets describe the rendered string — the workload generators rely
    on this to turn programmatic trees into insertable segment text. *)

val render : Tree.node list -> string
(** Compact rendering (no added whitespace). *)

val render_node : Tree.node -> string

val render_indented : ?indent:int -> Tree.node list -> string
(** Pretty rendering for humans; inserts newlines and indentation, so
    offsets of a re-parse will differ from {!render}. *)

val escape_text : string -> string
(** Escapes [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets and double quotes for
    double-quoted attribute values. *)
