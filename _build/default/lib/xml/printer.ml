let escape_into buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape_into buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape_into buf ~quot:true s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun { Tree.attr_name; attr_value; _ } ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf attr_name;
      Buffer.add_string buf "=\"";
      escape_into buf ~quot:true attr_value;
      Buffer.add_char buf '"')
    attrs

let rec add_node buf = function
  | Tree.Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    add_attrs buf e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_node buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
    end
  | Tree.Text t -> escape_into buf ~quot:false t.content
  | Tree.Cdata t ->
    Buffer.add_string buf "<![CDATA[";
    Buffer.add_string buf t.content;
    Buffer.add_string buf "]]>"
  | Tree.Comment t ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf t.content;
    Buffer.add_string buf "-->"
  | Tree.Pi t ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t.content;
    Buffer.add_string buf "?>"

let render nodes =
  let buf = Buffer.create 256 in
  List.iter (add_node buf) nodes;
  Buffer.contents buf

let render_node node = render [ node ]

let render_indented ?(indent = 2) nodes =
  let buf = Buffer.create 256 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level node =
    match node with
    | Tree.Element e when e.children <> [] && List.for_all is_structural e.children ->
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      Buffer.add_string buf ">\n";
      List.iter (go (level + 1)) e.children;
      pad level;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_string buf ">\n"
    | node ->
      pad level;
      add_node buf node;
      Buffer.add_char buf '\n'
  and is_structural = function
    | Tree.Element _ | Tree.Comment _ | Tree.Pi _ -> true
    | Tree.Text _ | Tree.Cdata _ -> false
  in
  List.iter (go 0) nodes;
  Buffer.contents buf
