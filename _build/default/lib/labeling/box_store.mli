(** W-BOX-style element labeling: {!Marker_store} over {!Order_label}
    (Silberstein et al., ICDE 2005 — the comparison the paper defers
    to future work, §6).

    Ancestry and document order are integer comparisons, like interval
    labels, but an insertion relabels only O(log² n) amortized markers
    instead of the traditional store's O(n). *)

type t
type elem

val create : unit -> t
val element_count : t -> int

val insert_first_child : t -> parent:elem option -> elem
(** New first child of [parent] ([None]: new first root). *)

val insert_last_child : t -> parent:elem option -> elem
(** New last child of [parent] ([None]: new last root). *)

val insert_after : t -> elem -> elem
(** New next sibling of an element. *)

val remove : t -> elem -> unit
(** Removes a {e leaf} element.
    @raise Invalid_argument if the element still has children. *)

val is_ancestor : t -> elem -> elem -> bool
val is_parent : t -> elem -> elem -> bool
val level : elem -> int
val document_compare : t -> elem -> elem -> int

val relabels : t -> int
(** Markers relabelled so far — the scheme's update-cost metric. *)

val check : t -> unit

val order : t -> Order_label.t
(** The underlying order-maintenance list. *)
