(** The binary dynamic labeling scheme of Cohen, Kaplan and Milo
    (PODS 2002), surveyed in §2 of the paper.

    Each child of a node gets a binary {e code}: the first child "0",
    and each next child the binary increment of the previous one — and
    whenever the increment is all ones, its length is doubled by
    appending zeros.  The code sequence is prefix-free, so
    concatenating codes along the root path yields labels where
    ancestry is a proper-prefix test.  Labels grow quickly with
    fan-out, which is the storage critique the paper makes; the
    {!bits} accessor feeds the label-size ablation benchmark.
    The scheme appends children at the end only and does not maintain
    sibling order under arbitrary insertion (also per the paper). *)

type t
(** A label: the concatenated code string. *)

type code = string
(** A child code: a string of ['0']/['1']. *)

val root : t
(** The root label (empty code string). *)

val first_code : code

val next_code : code -> code
(** The code following [c] in the child sequence. *)

val extend : t -> code -> t
(** [extend parent code] is the label of the child with [code]. *)

val is_ancestor : t -> t -> bool
(** Proper-prefix test. *)

val compare : t -> t -> int
(** Lexicographic; consistent with sibling creation order. *)

val bits : t -> int
(** Label length in bits. *)

val to_string : t -> string
