(** Order maintenance without stored labels — the B-BOX idea of
    Silberstein et al. (ICDE 2005): items live in a counted balanced
    tree, and an item's "label" is its in-order rank, {e reconstructed}
    on demand in O(log n).  Updates never relabel anything (constant
    bookkeeping per insertion, against W-BOX's O(log² n) amortized
    relabels); the price is a logarithmic comparison instead of
    W-BOX's O(1) integer test.

    Implemented as an order-statistic treap with parent pointers and
    subtree sizes. *)

type t
type item

val create : unit -> t
(** An empty order, seeded deterministically. *)

val size : t -> int

val insert_first : t -> item
(** Inserts into an empty list. @raise Invalid_argument otherwise. *)

val insert_after : t -> item -> item
val insert_before : t -> item -> item

val remove : t -> item -> unit
(** @raise Invalid_argument if already removed. *)

val rank : t -> item -> int
(** Current 0-based position — the reconstructed label; O(log n). *)

val compare : t -> item -> item -> int
(** Order comparison through two rank reconstructions. *)

val lookups : t -> int
(** Cumulative count of rank reconstructions (the scheme's query-side
    cost metric). *)

val check : t -> unit
(** Validates sizes, parent links, heap priorities and rank
    consistency. @raise Failure on violation. *)
