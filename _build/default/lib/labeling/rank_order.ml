(* Order-statistic treap: random heap priorities keep expected
   logarithmic depth; subtree sizes give ranks; parent pointers let
   rank queries start from the item itself. *)

type item = {
  prio : int;
  mutable left : item option;
  mutable right : item option;
  mutable parent : item option;
  mutable size : int;  (* subtree size; 0 marks a removed item *)
}

type t = {
  mutable root : item option;
  rng : Random.State.t;
  mutable lookups : int;
}

let create () = { root = None; rng = Random.State.make [| 0x5eed |]; lookups = 0 }

let size t = match t.root with Some r -> r.size | None -> 0
let lookups t = t.lookups

let alive it = if it.size = 0 then invalid_arg "Rank_order: removed item"

let size_of = function Some n -> n.size | None -> 0

let update it = it.size <- 1 + size_of it.left + size_of it.right

(* Rotation bringing [x] above its parent [p]; sizes and parent links
   maintained. *)
let is_left_child p x = match p.left with Some l -> l == x | None -> false

let rotate_up t x =
  match x.parent with
  | None -> ()
  | Some p ->
    let g = p.parent in
    if is_left_child p x then begin
      p.left <- x.right;
      (match x.right with Some r -> r.parent <- Some p | None -> ());
      x.right <- Some p
    end
    else begin
      p.right <- x.left;
      (match x.left with Some l -> l.parent <- Some p | None -> ());
      x.left <- Some p
    end;
    p.parent <- Some x;
    x.parent <- g;
    (match g with
    | None -> t.root <- Some x
    | Some g -> if is_left_child g p then g.left <- Some x else g.right <- Some x);
    update p;
    update x

let rec bubble_up t x =
  match x.parent with
  | Some p when p.prio > x.prio ->
    rotate_up t x;
    bubble_up t x
  | _ -> ()

let rec update_to_root = function
  | None -> ()
  | Some n ->
    update n;
    update_to_root n.parent

let fresh t =
  { prio = Random.State.bits t.rng; left = None; right = None; parent = None; size = 1 }

let insert_first t =
  if t.root <> None then invalid_arg "Rank_order.insert_first: list not empty";
  let it = fresh t in
  t.root <- Some it;
  it

let attach t it ~under ~side =
  (match side with
  | `Left -> under.left <- Some it
  | `Right -> under.right <- Some it);
  it.parent <- Some under;
  update_to_root (Some under);
  bubble_up t it;
  it

let insert_after t x =
  alive x;
  let it = fresh t in
  match x.right with
  | None -> attach t it ~under:x ~side:`Right
  | Some r ->
    let rec leftmost n = match n.left with Some l -> leftmost l | None -> n in
    attach t it ~under:(leftmost r) ~side:`Left

let insert_before t x =
  alive x;
  let it = fresh t in
  match x.left with
  | None -> attach t it ~under:x ~side:`Left
  | Some l ->
    let rec rightmost n = match n.right with Some r -> rightmost r | None -> n in
    attach t it ~under:(rightmost l) ~side:`Right

(* Rotate the item down to a leaf, then unlink. *)
let remove t x =
  alive x;
  let rec sink () =
    match (x.left, x.right) with
    | None, None -> ()
    | Some l, None ->
      rotate_up t l;
      sink ()
    | None, Some r ->
      rotate_up t r;
      sink ()
    | Some l, Some r ->
      rotate_up t (if l.prio <= r.prio then l else r);
      sink ()
  in
  sink ();
  (match x.parent with
  | None -> t.root <- None
  | Some p ->
    if is_left_child p x then p.left <- None else p.right <- None;
    update_to_root (Some p));
  x.parent <- None;
  x.size <- 0

let rank t x =
  alive x;
  t.lookups <- t.lookups + 1;
  let r = ref (size_of x.left) in
  let rec up child = function
    | None -> ()
    | Some p ->
      (match p.right with
      | Some rc when rc == child -> r := !r + size_of p.left + 1
      | _ -> ());
      up p p.parent
  in
  up x x.parent;
  !r

let compare t a b = Int.compare (rank t a) (rank t b)

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let count = ref 0 in
  let rec go node parent =
    match node with
    | None -> 0
    | Some n ->
      incr count;
      (match (n.parent, parent) with
      | None, None -> ()
      | Some p, Some p' when p == p' -> ()
      | _ -> fail "broken parent link");
      (match parent with
      | Some p when p.prio > n.prio -> fail "heap property violated"
      | _ -> ());
      let ls = go n.left node and rs = go n.right node in
      if n.size <> ls + rs + 1 then fail "size out of sync";
      n.size
  in
  ignore (go t.root None);
  (* Ranks enumerate 0..size-1 in order. *)
  let expected = ref 0 in
  let lk = t.lookups in
  let rec walk = function
    | None -> ()
    | Some n ->
      walk n.left;
      if rank t n <> !expected then fail "rank mismatch at %d" !expected;
      incr expected;
      walk n.right
  in
  walk t.root;
  t.lookups <- lk
