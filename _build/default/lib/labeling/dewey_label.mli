(** ORDPATH-style dynamic Dewey labels (O'Neil et al., SIGMOD 2004),
    one of the immutable prefix schemes the paper surveys in §2.

    A label is a sequence of integer components.  Each tree level
    contributes a {e pos-path}: zero or more even "caret" components
    followed by one odd component.  Pos-paths are prefix-free (a
    pos-path ends with an odd component while every non-final component
    is even), so a label is an ancestor's label iff it extends it
    component-wise.  Insertion between any two siblings always
    succeeds without relabeling, at the price of label growth — the
    storage blow-up the lazy approach avoids. *)

type t

val root : t
(** The label of the document root (pos-path [[1]]). *)

val components : t -> int array

val child_between : parent:t -> left:t option -> right:t option -> t
(** [child_between ~parent ~left ~right] produces a fresh child label
    of [parent] ordered strictly between [left] and [right] (existing
    children of [parent], or [None] for the corresponding extreme).
    @raise Invalid_argument if [left]/[right] are not children of
    [parent] or are not in order. *)

val nth_child : t -> int -> t
(** [nth_child parent i] is the static bulk-load label of child [i]
    (0-based): pos-path [[2i+1]]. *)

val is_ancestor : t -> t -> bool
(** Proper component-prefix test. *)

val parent : t -> t option
(** Strips the final pos-path; [None] for the root. *)

val compare : t -> t -> int
(** Document order: component-lexicographic with ancestors first. *)

val equal : t -> t -> bool

val level : t -> int
(** Number of pos-paths, minus one (the root has level 0). *)

val bit_size : t -> int
(** Storage estimate: sum over components of a variable-length
    encoding width. *)

val to_string : t -> string
(** Dotted form, e.g. ["1.3.4.1"]. *)

val pp : Format.formatter -> t -> unit
