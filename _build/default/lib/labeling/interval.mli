(** Interval (region) labels.

    The classical positional labeling: an element is identified by the
    byte offset of its start tag, the byte offset one past its end tag,
    and its depth.  Containment is plain integer comparison, which is
    what makes interval labels the fastest substrate for structural
    joins — and the most expensive to maintain under updates, since an
    insertion shifts every following label (the paper's Figure 16
    baseline). *)

type t = { start : int; stop : int; level : int }

val make : start:int -> stop:int -> level:int -> t
(** @raise Invalid_argument unless [start < stop] and [level >= 0]. *)

val contains : t -> t -> bool
(** [contains a d]: is [d] strictly inside [a]?  (ancestor test) *)

val is_parent : t -> t -> bool
(** [contains a d] and the levels differ by exactly one. *)

val compare_start : t -> t -> int
(** Document order (by [start]). *)

val shift : t -> by:int -> from:int -> t
(** [shift l ~by ~from] relabels after a text edit at offset [from]:
    [start] moves when [start >= from], [stop] when [stop > from], so
    an element ending exactly at the edit point is untouched while one
    starting there moves. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
