include Marker_store.Make (struct
  type t = Rank_order.t
  type item = Rank_order.item

  let create = Rank_order.create
  let insert_first = Rank_order.insert_first
  let insert_after = Rank_order.insert_after
  let insert_before = Rank_order.insert_before
  let remove = Rank_order.remove
  let compare = Rank_order.compare
  let size = Rank_order.size
  let check = Rank_order.check
end)

let lookups t = Rank_order.lookups (order t)
