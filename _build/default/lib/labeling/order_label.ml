(* Tags live in [0, 2^tag_bits).  Items form a doubly-linked list kept
   sorted by tag, so insertion and removal are local; only rebalancing
   touches neighbours, and how many it touches is exactly the cost this
   structure is designed to bound. *)

let tag_bits = 60
let tag_limit = 1 lsl tag_bits

type item = {
  mutable tg : int;
  mutable prev : item option;
  mutable next : item option;
  mutable live : bool;
}

type t = {
  mutable head : item option;
  mutable size : int;
  mutable relabels : int;
}

let create () = { head = None; size = 0; relabels = 0 }

let size t = t.size
let relabels t = t.relabels

let alive it = if not it.live then invalid_arg "Order_label: removed item"

let compare a b =
  alive a;
  alive b;
  Int.compare a.tg b.tg

let tag it =
  alive it;
  it.tg

(* Spreads the items whose tags fall in the aligned 2^l range around
   [anchor] evenly across that range.  Level acceptance uses the
   canonical geometric capacities (2/T)^l (Itai/Bender list labeling):
   lower levels tolerate almost nothing, the root almost everything,
   which is what yields O(log^2 n) amortized relabels per insertion —
   a uniform threshold degrades to a linear cost per insert under a
   hot-spot adversary. *)
let threshold_t = 1.4

let rebalance t anchor =
  let rec find_level l =
    if l > tag_bits then failwith "Order_label: tag space exhausted";
    let width = 1 lsl l in
    let base = anchor.tg land lnot (width - 1) in
    (* Occupants of [base, base+width): walk out from the anchor. *)
    let first = ref anchor and count = ref 1 in
    let rec back it =
      match it.prev with
      | Some p when p.tg >= base ->
        first := p;
        incr count;
        back p
      | _ -> ()
    in
    back anchor;
    let rec fwd it =
      match it.next with
      | Some nx when nx.tg < base + width ->
        incr count;
        fwd nx
      | _ -> ()
    in
    fwd anchor;
    let capacity = (2.0 /. threshold_t) ** float_of_int l in
    if float_of_int (!count + 2) <= capacity && !count + 1 <= width lsr 1 then
      (base, width, !first, !count)
    else find_level (l + 1)
  in
  let base, width, first, count = find_level 1 in
  let step = width / (count + 1) in
  let cursor = ref (Some first) in
  for k = 0 to count - 1 do
    match !cursor with
    | None -> assert false
    | Some it ->
      let fresh = base + (step * (k + 1)) in
      if it.tg <> fresh then begin
        it.tg <- fresh;
        t.relabels <- t.relabels + 1
      end;
      cursor := it.next
  done

let insert_first t =
  if t.head <> None then invalid_arg "Order_label.insert_first: list not empty";
  let it = { tg = tag_limit / 2; prev = None; next = None; live = true } in
  t.head <- Some it;
  t.size <- 1;
  it

(* Fresh item spliced between [before] and [after] (either may be
   absent at the list ends), rebalancing around [near] until an
   integer tag fits. *)
let rec splice t ~before ~after ~near =
  let prev_tag = match before with Some it -> it.tg | None -> -1 in
  let next_tag = match after with Some it -> it.tg | None -> tag_limit in
  if next_tag - prev_tag > 1 then begin
    let it =
      { tg = prev_tag + ((next_tag - prev_tag) / 2); prev = before; next = after; live = true }
    in
    (match before with Some b -> b.next <- Some it | None -> t.head <- Some it);
    (match after with Some a -> a.prev <- Some it | None -> ());
    t.size <- t.size + 1;
    it
  end
  else begin
    rebalance t near;
    splice t ~before ~after ~near
  end

let insert_after t it =
  alive it;
  splice t ~before:(Some it) ~after:it.next ~near:it

let insert_before t it =
  alive it;
  splice t ~before:it.prev ~after:(Some it) ~near:it

let remove t it =
  alive it;
  (match it.prev with Some p -> p.next <- it.next | None -> t.head <- it.next);
  (match it.next with Some n -> n.prev <- it.prev | None -> ());
  it.live <- false;
  t.size <- t.size - 1

let check t =
  let rec go prev_tag seen = function
    | None ->
      if seen <> t.size then failwith "Order_label: size out of sync"
    | Some it ->
      if not it.live then failwith "Order_label: dead item in list";
      if it.tg <= prev_tag then failwith "Order_label: tags not increasing";
      if it.tg < 0 || it.tg >= tag_limit then failwith "Order_label: tag out of range";
      (match it.next with
      | Some nx -> (
        match nx.prev with
        | Some p when p == it -> ()
        | _ -> failwith "Order_label: broken back link")
      | None -> ());
      go it.tg (seen + 1) it.next
  in
  go (-1) 0 t.head
