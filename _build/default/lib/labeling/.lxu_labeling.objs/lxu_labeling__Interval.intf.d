lib/labeling/interval.mli: Format
