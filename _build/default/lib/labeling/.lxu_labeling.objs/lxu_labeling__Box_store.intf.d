lib/labeling/box_store.mli: Order_label
