lib/labeling/interval_store.ml: Hashtbl Interval List Lxu_util Lxu_xml Printf String Vec
