lib/labeling/dewey_label.ml: Array Format Int Printf String
