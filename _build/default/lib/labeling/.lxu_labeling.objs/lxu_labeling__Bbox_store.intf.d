lib/labeling/bbox_store.mli: Rank_order
