lib/labeling/interval.ml: Format Int
