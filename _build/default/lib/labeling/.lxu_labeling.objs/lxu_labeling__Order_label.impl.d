lib/labeling/order_label.ml: Int
