lib/labeling/binary_label.mli:
