lib/labeling/prime_label.mli: Lxu_bignum
