lib/labeling/prime_label.ml: Bignum Crt List Lxu_bignum Lxu_util Prime_gen Printf Vec
