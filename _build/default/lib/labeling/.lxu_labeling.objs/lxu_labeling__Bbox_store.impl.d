lib/labeling/bbox_store.ml: Marker_store Rank_order
