lib/labeling/rank_order.ml: Int Printf Random
