lib/labeling/interval_store.mli: Interval
