lib/labeling/binary_label.ml: Bytes String
