lib/labeling/order_label.mli:
