lib/labeling/marker_store.ml: Option
