lib/labeling/dewey_label.mli: Format
