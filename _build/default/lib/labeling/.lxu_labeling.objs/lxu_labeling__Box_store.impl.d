lib/labeling/box_store.ml: Marker_store Order_label
