lib/labeling/rank_order.mli:
