open Lxu_util
open Lxu_bignum

type node = { self : int; label : Bignum.t }

type group = { mutable sc : Bignum.t; mutable modulus : Bignum.t }

type t = {
  k : int;
  capacity : int;
  primes : Prime_gen.t;
  mutable next_prime_index : int;
  order : node Vec.t;  (* nodes in document order *)
  groups : group Vec.t;  (* group g covers order[g*k .. g*k+k-1] *)
  mutable sc_recomputations : int;
}

let create ?(k = 10) ?(capacity = 20_000) () =
  if k < 1 then invalid_arg "Prime_label.create: k < 1";
  let primes = Prime_gen.create () in
  (* Skip primes <= capacity so every order number is a valid residue. *)
  let idx = ref 0 in
  while Prime_gen.nth primes !idx <= capacity do
    incr idx
  done;
  {
    k;
    capacity;
    primes;
    next_prime_index = !idx;
    order = Vec.create ();
    groups = Vec.create ();
    sc_recomputations = 0;
  }

let size t = Vec.length t.order
let group_count t = Vec.length t.groups
let sc_recomputations t = t.sc_recomputations
let self_label n = n.self
let label n = n.label

let is_ancestor a d =
  a.self <> d.self && Bignum.divisible d.label ~by:a.label

(* Recomputes the SC value of group [g] from the current order. *)
let recompute_group t g =
  let lo = g * t.k in
  let hi = min (Vec.length t.order) (lo + t.k) in
  let pairs = List.init (hi - lo) (fun i -> (lo + i, (Vec.get t.order (lo + i)).self)) in
  let sc, modulus = Crt.solve pairs in
  let grp = Vec.get t.groups g in
  grp.sc <- sc;
  grp.modulus <- modulus;
  t.sc_recomputations <- t.sc_recomputations + 1

let insert t ~parent ~order_pos =
  if size t >= t.capacity then invalid_arg "Prime_label.insert: capacity exceeded";
  if order_pos < 0 || order_pos > size t then
    invalid_arg "Prime_label.insert: order_pos out of range";
  let self = Prime_gen.nth t.primes t.next_prime_index in
  t.next_prime_index <- t.next_prime_index + 1;
  let label =
    match parent with
    | None -> Bignum.of_int self
    | Some p -> Bignum.mul_small p.label self
  in
  let node = { self; label } in
  Vec.insert_at t.order order_pos node;
  if (size t + t.k - 1) / t.k > Vec.length t.groups then
    Vec.push t.groups { sc = Bignum.zero; modulus = Bignum.one };
  (* Orders at and after the insertion point shifted: the insertion
     group and everything after it must be recomputed. *)
  for g = order_pos / t.k to Vec.length t.groups - 1 do
    recompute_group t g
  done;
  node

let append t ~parent = insert t ~parent ~order_pos:(size t)

let group_of t n =
  (* Self labels are unique, so scanning for the node's group by
     membership is unambiguous. *)
  let rec find g =
    if g >= Vec.length t.groups then failwith "Prime_label: node not found"
    else begin
      let lo = g * t.k in
      let hi = min (size t) (lo + t.k) in
      let rec member i = i < hi && ((Vec.get t.order i).self = n.self || member (i + 1)) in
      if member lo then g else find (g + 1)
    end
  in
  find 0

let order_of t n =
  let g = Vec.get t.groups (group_of t n) in
  Crt.residue g.sc n.self

let label_bits t =
  Vec.fold_left (fun acc n -> acc + Bignum.bit_length n.label) 0 t.order

let sc_bits t = Vec.fold_left (fun acc g -> acc + Bignum.bit_length g.sc) 0 t.groups

let check t =
  Vec.iteri
    (fun i n ->
      let o = order_of t n in
      if o <> i then
        failwith (Printf.sprintf "Prime_label: node at position %d recovers order %d" i o))
    t.order
