(** Order maintenance by amortized list labeling — the core of the
    W-BOX approach of Silberstein et al. (ICDE 2005), the mutable
    alternative the paper plans to compare against (§6).

    Items carry integer tags from a large tag space; order comparison
    is one integer comparison (as fast as interval labels).  Insertion
    between two items takes the tag midpoint; when no gap remains, the
    smallest sufficiently sparse enclosing power-of-two tag range is
    relabelled evenly — O(log n) amortized relabels per insertion
    instead of the traditional store's O(n).

    {!Box_store} builds element labels from one order list holding a
    start and an end marker per element. *)

type t
type item

val create : unit -> t
(** An empty list. *)

val size : t -> int

val insert_first : t -> item
(** Inserts into an empty list. @raise Invalid_argument otherwise. *)

val insert_after : t -> item -> item
(** A fresh item immediately after the given one. *)

val insert_before : t -> item -> item
(** A fresh item immediately before the given one. *)

val remove : t -> item -> unit
(** Removes an item.  @raise Invalid_argument if already removed. *)

val compare : item -> item -> int
(** Current order; a single integer comparison.
    @raise Invalid_argument on removed items. *)

val tag : item -> int
(** The current integer tag (changes on relabeling). *)

val relabels : t -> int
(** Cumulative count of items whose tag was rewritten — the update
    cost this scheme trades against the traditional store's O(n)
    shifts. *)

val check : t -> unit
(** Tags strictly increase along the list (test helper). *)
