open Lxu_util

type t = {
  index_attributes : bool;
  by_tag : (string, Interval.t Vec.t) Hashtbl.t;
  mutable doc_length : int;
  mutable element_count : int;
  mutable last_relabel_count : int;
}

let create ?(index_attributes = false) () =
  {
    index_attributes;
    by_tag = Hashtbl.create 64;
    doc_length = 0;
    element_count = 0;
    last_relabel_count = 0;
  }

let doc_length t = t.doc_length
let element_count t = t.element_count
let last_relabel_count t = t.last_relabel_count

let tag_vec t tag =
  match Hashtbl.find_opt t.by_tag tag with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Hashtbl.add t.by_tag tag v;
    v

let level_at t pos =
  let depth = ref 0 in
  Hashtbl.iter
    (fun _ v ->
      Vec.iter
        (fun (l : Interval.t) -> if l.start < pos && l.stop > pos then incr depth)
        v)
    t.by_tag;
  !depth

(* Shifts every label endpoint at or after [from] by [by], counting the
   touched labels. *)
let shift_all t ~by ~from =
  let touched = ref 0 in
  Hashtbl.iter
    (fun _ v ->
      Vec.iteri
        (fun i (l : Interval.t) ->
          if l.stop > from then begin
            incr touched;
            Vec.set v i (Interval.shift l ~by ~from)
          end)
        v)
    t.by_tag;
  !touched

let insert t ~gp text =
  if gp < 0 || gp > t.doc_length then invalid_arg "Interval_store.insert: gp out of bounds";
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let base_level = level_at t gp in
  let len = String.length text in
  t.last_relabel_count <- shift_all t ~by:len ~from:gp;
  Lxu_xml.Tree.iter_labels ~attributes:t.index_attributes ~base_level nodes
    (fun ~name ~start ~stop ~level ->
      let label = Interval.make ~start:(gp + start) ~stop:(gp + stop) ~level in
      let v = tag_vec t name in
      let i = Vec.lower_bound v ~compare:(fun l -> Interval.compare_start l label) in
      Vec.insert_at v i label;
      t.element_count <- t.element_count + 1);
  t.doc_length <- t.doc_length + len

let remove t ~gp ~len =
  if len < 0 || gp < 0 || gp + len > t.doc_length then
    invalid_arg "Interval_store.remove: range out of bounds";
  let stop = gp + len in
  let touched = ref 0 in
  Hashtbl.iter
    (fun _ v ->
      (* Drop labels fully inside the removed range, then shift. *)
      let kept = Vec.create () in
      Vec.iter
        (fun (l : Interval.t) ->
          if l.start >= gp && l.stop <= stop then begin
            incr touched;
            t.element_count <- t.element_count - 1
          end
          else begin
            if l.stop >= stop then incr touched;
            Vec.push kept (Interval.shift l ~by:(-len) ~from:stop)
          end)
        v;
      Vec.clear v;
      Vec.iter (Vec.push v) kept)
    t.by_tag;
  t.last_relabel_count <- !touched;
  t.doc_length <- t.doc_length - len

let elements t ~tag =
  match Hashtbl.find_opt t.by_tag tag with
  | None -> [||]
  | Some v -> Vec.to_array v

let tags t =
  Hashtbl.fold (fun tag v acc -> if Vec.is_empty v then acc else tag :: acc) t.by_tag []
  |> List.sort String.compare

let check t =
  let counted = ref 0 in
  Hashtbl.iter
    (fun tag v ->
      let prev = ref None in
      Vec.iter
        (fun (l : Interval.t) ->
          incr counted;
          if l.start < 0 || l.stop > t.doc_length then
            failwith (Printf.sprintf "label of %s out of document bounds" tag);
          (match !prev with
          | Some (p : Interval.t) when p.start >= l.start ->
            failwith (Printf.sprintf "labels of %s not sorted" tag)
          | _ -> ());
          prev := Some l)
        v)
    t.by_tag;
  if !counted <> t.element_count then failwith "element_count mismatch"
