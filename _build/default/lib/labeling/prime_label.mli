(** The prime-number labeling scheme of Wu, Lee and Hsu (ICDE 2004),
    the paper's immutable-labeling baseline (Figure 17, "PRIME").

    Every node receives a distinct prime [self] label; its full label
    is the product of the self labels on its root path, so ancestry is
    a divisibility test.  Document order is kept outside the labels, in
    a table of simultaneous-congruence (SC) values: nodes are grouped
    [k] at a time in document order and each group stores the CRT
    solution of [sc mod self_i = order_i].  Inserting a node in the
    middle of the document shifts every following order number, forcing
    the SC of the insertion group and of all following groups to be
    recomputed — the dominant update cost the paper measures.

    Order numbers must stay below every self prime for the residues to
    be well defined, so self primes are drawn starting strictly above
    [capacity]; the structure refuses to hold more than [capacity]
    nodes. *)

type t
type node

val create : ?k:int -> ?capacity:int -> unit -> t
(** [create ~k ~capacity ()]: [k] is the group size (default 10);
    [capacity] bounds the node count (default 20_000). *)

val size : t -> int

val insert : t -> parent:node option -> order_pos:int -> node
(** [insert t ~parent ~order_pos] adds a node as a child of [parent]
    ([None] for a root) occupying position [order_pos] in document
    order (existing nodes at or after that position shift by one).
    The caller is responsible for choosing an [order_pos] consistent
    with [parent]'s span, as in the original scheme where order comes
    from the document text.
    @raise Invalid_argument if full or [order_pos] is out of range. *)

val append : t -> parent:node option -> node
(** [insert] at the end of the document order. *)

val is_ancestor : node -> node -> bool
(** Divisibility test on label products; a node is not its own
    ancestor. *)

val order_of : t -> node -> int
(** Document-order position recovered from the SC table. *)

val self_label : node -> int
val label : node -> Lxu_bignum.Bignum.t

val sc_recomputations : t -> int
(** Cumulative count of group-SC recomputations (the Figure 17 cost
    metric, machine independent). *)

val group_count : t -> int

val label_bits : t -> int
(** Total bits across all stored label products (space metric). *)

val sc_bits : t -> int
(** Total bits across all stored SC values. *)

val check : t -> unit
(** Verifies that every node's recovered order matches its position
    (test helper). @raise Failure on violation. *)
