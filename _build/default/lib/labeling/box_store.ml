include Marker_store.Make (struct
  type t = Order_label.t
  type item = Order_label.item

  let create = Order_label.create
  let insert_first = Order_label.insert_first
  let insert_after = Order_label.insert_after
  let insert_before = Order_label.insert_before
  let remove = Order_label.remove
  let compare _ a b = Order_label.compare a b
  let size = Order_label.size
  let check = Order_label.check
end)

let relabels t = Order_label.relabels (order t)
