type t = string
type code = string

let root = ""
let first_code = "0"

let all_ones s = s <> "" && String.for_all (fun c -> c = '1') s

(* Binary increment; the caller guarantees the input is not all ones
   (all-ones values are doubled before being handed out). *)
let increment s =
  let b = Bytes.of_string s in
  let rec go i =
    if i < 0 then invalid_arg "Binary_label.increment: overflow"
    else if Bytes.get b i = '0' then Bytes.set b i '1'
    else begin
      Bytes.set b i '0';
      go (i - 1)
    end
  in
  go (Bytes.length b - 1);
  Bytes.to_string b

let next_code c =
  let inc = increment c in
  if all_ones inc then inc ^ String.make (String.length inc) '0' else inc

let extend parent code = parent ^ code

let is_ancestor a d =
  String.length a < String.length d && String.sub d 0 (String.length a) = a

let compare = String.compare
let bits t = String.length t
let to_string t = t
