(** The traditional relabeling approach (Figure 16 baseline).

    Elements of the whole super document are labelled by their global
    (start, stop, level) intervals and stored per tag in document
    order.  A structural update must shift every label positioned
    after the edit — the cost the lazy approach avoids.  This store is
    both the update baseline of Figure 16 and the source of the
    element lists consumed by the [Stack_tree_desc] baseline join. *)

type t

val create : ?index_attributes:bool -> unit -> t
(** An empty super document.  With [~index_attributes:true] every
    attribute is indexed as a subelement named ["@name"]. *)

val doc_length : t -> int
(** Current length of the super document text, in bytes. *)

val element_count : t -> int

val insert : t -> gp:int -> string -> unit
(** [insert t ~gp text] inserts a well-formed fragment at global byte
    offset [gp]: shifts all labels at or after [gp], parses [text] and
    indexes its elements at their global positions.
    @raise Invalid_argument if [gp] is out of bounds.
    @raise Lxu_xml.Parser.Parse_error if [text] is ill-formed. *)

val remove : t -> gp:int -> len:int -> unit
(** [remove t ~gp ~len] deletes the byte range [gp, gp+len): labels
    fully inside are dropped, enclosing labels shrink, following
    labels shift down.
    @raise Invalid_argument if the range is out of bounds. *)

val elements : t -> tag:string -> Interval.t array
(** All labels of elements named [tag], sorted by start position. *)

val tags : t -> string list
(** Distinct tags present, sorted. *)

val level_at : t -> int -> int
(** Nesting depth of byte offset [pos]: the number of elements whose
    interval strictly contains [pos]. *)

val last_relabel_count : t -> int
(** Number of labels shifted by the most recent {!insert} or
    {!remove} — the machine-independent cost metric of Figure 16. *)

val check : t -> unit
(** Validates per-tag ordering and interval sanity (test helper).
    @raise Failure on violation. *)
