(* The shared element-labeling layer of the two BOX structures [9]:
   one order-maintenance list holding a start and an end marker per
   element, a hidden virtual root bracketing everything, and levels
   tracked per element.  W-BOX plugs in tag-based order maintenance
   (O(1) compares, amortized relabeling); B-BOX plugs in rank-based
   order maintenance (no relabeling, O(log n) compares). *)

module type ORDER = sig
  type t
  type item

  val create : unit -> t
  val insert_first : t -> item
  val insert_after : t -> item -> item
  val insert_before : t -> item -> item
  val remove : t -> item -> unit
  val compare : t -> item -> item -> int
  val size : t -> int
  val check : t -> unit
end

module Make (O : ORDER) = struct
  type elem = {
    start_m : O.item;
    end_m : O.item;
    level : int;
    mutable children : int;
    parent : elem option;
  }

  type t = { order : O.t; hidden : elem; mutable count : int }

  let create () =
    let order = O.create () in
    let s = O.insert_first order in
    let e = O.insert_after order s in
    {
      order;
      hidden = { start_m = s; end_m = e; level = -1; children = 0; parent = None };
      count = 0;
    }

  let element_count t = t.count
  let order t = t.order

  let make t ~parent ~start_m ~end_m =
    parent.children <- parent.children + 1;
    t.count <- t.count + 1;
    { start_m; end_m; level = parent.level + 1; children = 0; parent = Some parent }

  let insert_last_child t ~parent =
    let p = Option.value ~default:t.hidden parent in
    let s = O.insert_before t.order p.end_m in
    let e = O.insert_after t.order s in
    make t ~parent:p ~start_m:s ~end_m:e

  let insert_first_child t ~parent =
    let p = Option.value ~default:t.hidden parent in
    let s = O.insert_after t.order p.start_m in
    let e = O.insert_after t.order s in
    make t ~parent:p ~start_m:s ~end_m:e

  let insert_after t sib =
    let p = Option.value ~default:t.hidden sib.parent in
    let s = O.insert_after t.order sib.end_m in
    let e = O.insert_after t.order s in
    make t ~parent:p ~start_m:s ~end_m:e

  let remove t el =
    if el.children > 0 then invalid_arg "Marker_store.remove: element has children";
    O.remove t.order el.start_m;
    O.remove t.order el.end_m;
    (match el.parent with Some p -> p.children <- p.children - 1 | None -> ());
    t.count <- t.count - 1

  let is_ancestor t a d =
    O.compare t.order a.start_m d.start_m < 0 && O.compare t.order d.end_m a.end_m < 0

  let level el = el.level
  let is_parent t a d = d.level = a.level + 1 && is_ancestor t a d
  let document_compare t a b = O.compare t.order a.start_m b.start_m

  let check t =
    O.check t.order;
    if O.size t.order <> (2 * t.count) + 2 then
      failwith "Marker_store: marker count out of sync"
end
