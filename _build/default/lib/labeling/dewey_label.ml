type t = int array

let root = [| 1 |]

let components = Array.copy

(* [land 1] is 1 for negative odds too, so one test covers all ints. *)
let odd v = v land 1 = 1

let level lbl = Array.fold_left (fun acc v -> if odd v then acc + 1 else acc) 0 lbl - 1

let is_prefix a b =
  Array.length a < Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let is_ancestor a b = is_prefix a b

let parent lbl =
  if Array.length lbl <= 1 then None
  else begin
    (* Strip the final odd component and the even carets before it. *)
    let i = ref (Array.length lbl - 1) in
    decr i;
    while !i >= 0 && not (odd lbl.(!i)) do
      decr i
    done;
    if !i < 0 then None else Some (Array.sub lbl 0 (!i + 1))
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let nth_child parent_lbl i =
  if i < 0 then invalid_arg "Dewey_label.nth_child: negative index";
  Array.append parent_lbl [| (2 * i) + 1 |]

(* A valid pos-path is even* odd. *)
let valid_pospath p =
  let n = Array.length p in
  n > 0
  && odd p.(n - 1)
  &&
  let rec go i = i >= n - 1 || ((not (odd p.(i))) && go (i + 1)) in
  go 0

let pospath_under ~parent:p lbl =
  if not (is_prefix p lbl) then None
  else begin
    let tail = Array.sub lbl (Array.length p) (Array.length lbl - Array.length p) in
    if valid_pospath tail then Some tail else None
  end

(* Pos-path strictly after [rest] at its first component. *)
let after rest = [| (if odd rest.(0) then rest.(0) + 2 else rest.(0) + 1) |]

(* Pos-path strictly before [rest] at its first component. *)
let before rest = [| (if odd rest.(0) then rest.(0) - 2 else rest.(0) - 1) |]

(* An odd integer strictly between av and bv, if one exists. *)
let odd_between av bv =
  if bv - av < 2 then None
  else begin
    let m = av + ((bv - av) / 2) in
    if odd m then Some m
    else if m + 1 < bv then Some (m + 1)
    else if m - 1 > av then Some (m - 1)
    else None
  end

let between a b =
  (* First differing index exists: pos-paths are prefix-free. *)
  let rec diff i =
    if i >= Array.length a || i >= Array.length b then
      invalid_arg "Dewey_label: bounds are not distinct pos-paths"
    else if a.(i) <> b.(i) then i
    else diff (i + 1)
  in
  let i = diff 0 in
  let av = a.(i) and bv = b.(i) in
  if av > bv then invalid_arg "Dewey_label: left bound not before right bound";
  let prefix = Array.sub a 0 i in
  match odd_between av bv with
  | Some m -> Array.append prefix [| m |]
  | None ->
    if bv - av = 2 then
      (* av odd, av+1 is the only gap value: caret then odd. *)
      Array.append prefix [| av + 1; 1 |]
    else if odd av then
      (* bv = av + 1; a's pos-path ends at i, b continues with carets. *)
      Array.append prefix
        (Array.append [| bv |] (before (Array.sub b (i + 1) (Array.length b - i - 1))))
    else
      (* bv = av + 1 with av even: a continues, b ends at i. *)
      Array.append prefix
        (Array.append [| av |] (after (Array.sub a (i + 1) (Array.length a - i - 1))))

let child_between ~parent:p ~left ~right =
  let extract side = function
    | None -> None
    | Some lbl -> begin
      match pospath_under ~parent:p lbl with
      | Some pp -> Some pp
      | None ->
        invalid_arg (Printf.sprintf "Dewey_label.child_between: %s is not a child" side)
    end
  in
  let l = extract "left" left and r = extract "right" right in
  let pospath =
    match (l, r) with
    | None, None -> [| 1 |]
    | Some l, None -> after l
    | None, Some r -> before r
    | Some l, Some r -> between l r
  in
  Array.append p pospath

(* Variable-length size estimate: a small length header plus the
   magnitude bits of each component, echoing ORDPATH's bit strings. *)
let bit_size lbl =
  Array.fold_left
    (fun acc v ->
      let v = abs v in
      let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
      acc + 4 + max 1 (width 0 v))
    0 lbl

let to_string lbl =
  String.concat "." (Array.to_list (Array.map string_of_int lbl))

let pp fmt lbl = Format.pp_print_string fmt (to_string lbl)
