(** B-BOX-style element labeling: {!Marker_store} over {!Rank_order}
    (the second structure of Silberstein et al., ICDE 2005).

    No labels are stored at all — ancestry and order reconstruct ranks
    from a counted tree on demand.  Updates never relabel (constant
    amortized bookkeeping); every containment test costs O(log n),
    the trade-off [9] describes against W-BOX. *)

type t
type elem

val create : unit -> t
val element_count : t -> int

val insert_first_child : t -> parent:elem option -> elem
val insert_last_child : t -> parent:elem option -> elem
val insert_after : t -> elem -> elem

val remove : t -> elem -> unit
(** Removes a {e leaf} element.
    @raise Invalid_argument if the element still has children. *)

val is_ancestor : t -> elem -> elem -> bool
val is_parent : t -> elem -> elem -> bool
val level : elem -> int
val document_compare : t -> elem -> elem -> int

val lookups : t -> int
(** Rank reconstructions so far — the scheme's query-cost metric. *)

val check : t -> unit

val order : t -> Rank_order.t
