type t = { start : int; stop : int; level : int }

let make ~start ~stop ~level =
  if start >= stop then invalid_arg "Interval.make: start >= stop";
  if level < 0 then invalid_arg "Interval.make: negative level";
  { start; stop; level }

let contains a d = a.start < d.start && a.stop > d.stop
let is_parent a d = contains a d && d.level = a.level + 1
let compare_start a b = Int.compare a.start b.start

(* An edit at offset [from] affects a start at exactly [from] (the
   element now lies after the inserted text) but not a stop at exactly
   [from] (the element ends before the insertion point). *)
let shift l ~by ~from =
  {
    start = (if l.start >= from then l.start + by else l.start);
    stop = (if l.stop > from then l.stop + by else l.stop);
    level = l.level;
  }

let equal a b = a.start = b.start && a.stop = b.stop && a.level = b.level

let pp fmt l = Format.fprintf fmt "[%d,%d)@%d" l.start l.stop l.level
