lib/util/vec.mli:
