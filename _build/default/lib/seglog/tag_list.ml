open Lxu_util

type entry = { sid : int; path : int array; mutable count : int }

type t = {
  lists : (int, entry Vec.t) Hashtbl.t;
  mutable dirty : bool;
  mutable path_ops : int;
}

let create () = { lists = Hashtbl.create 64; dirty = false; path_ops = 0 }

let list_for t tid =
  match Hashtbl.find_opt t.lists tid with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Hashtbl.add t.lists tid v;
    v

let add_sorted t ~tid entry ~gp_of =
  let v = list_for t tid in
  let gp = gp_of entry.sid in
  let i = Vec.lower_bound v ~compare:(fun e -> if gp_of e.sid <= gp then -1 else 0) in
  Vec.insert_at v i entry;
  t.path_ops <- t.path_ops + 1

let append t ~tid entry =
  Vec.push (list_for t tid) entry;
  t.dirty <- true;
  t.path_ops <- t.path_ops + 1

let sort_all t ~gp_of =
  if t.dirty then begin
    Hashtbl.iter (fun _ v -> Vec.sort (fun a b -> Int.compare (gp_of a.sid) (gp_of b.sid)) v)
      t.lists;
    t.dirty <- false
  end

let is_dirty t = t.dirty
let mark_dirty t = t.dirty <- true

let remove_where t v pred =
  let kept = Vec.create () in
  Vec.iter (fun e -> if pred e then t.path_ops <- t.path_ops + 1 else Vec.push kept e) v;
  if Vec.length kept <> Vec.length v then begin
    Vec.clear v;
    Vec.iter (Vec.push v) kept
  end

let decrement t ~tid ~sid ~by =
  match Hashtbl.find_opt t.lists tid with
  | None -> ()
  | Some v ->
    Vec.iter (fun e -> if e.sid = sid then e.count <- e.count - by) v;
    remove_where t v (fun e -> e.sid = sid && e.count <= 0)

let remove_segment t ~sid =
  Hashtbl.iter (fun _ v -> remove_where t v (fun e -> e.sid = sid)) t.lists

let entries t ~tid =
  if t.dirty then failwith "Tag_list.entries: dirty list, call sort_all first";
  match Hashtbl.find_opt t.lists tid with
  | None -> [||]
  | Some v -> Vec.to_array v

let tids t = Hashtbl.fold (fun tid _ acc -> tid :: acc) t.lists [] |> List.sort Int.compare

let path_ops t = t.path_ops

let size_bytes t =
  Hashtbl.fold
    (fun _ v acc ->
      acc + Vec.fold_left (fun a e -> a + (8 * (Array.length e.path + 3))) 0 v)
    t.lists 0
