lib/seglog/tag_list.ml: Array Hashtbl Int List Lxu_util Vec
