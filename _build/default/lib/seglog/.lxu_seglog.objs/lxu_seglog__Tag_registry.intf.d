lib/seglog/tag_registry.mli:
