lib/seglog/tag_list.mli:
