lib/seglog/tag_registry.ml: Hashtbl Lxu_util Vec
