lib/seglog/element_index.mli:
