lib/seglog/element_index.ml: Array Bptree Int List Lxu_btree
