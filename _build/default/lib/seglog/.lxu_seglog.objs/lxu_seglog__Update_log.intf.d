lib/seglog/update_log.mli: Element_index Er_node Tag_list Tag_registry
