lib/seglog/er_node.mli: Lxu_util
