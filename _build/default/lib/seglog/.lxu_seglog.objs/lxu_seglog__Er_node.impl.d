lib/seglog/er_node.ml: Array Int List Lxu_util Printf String Vec
