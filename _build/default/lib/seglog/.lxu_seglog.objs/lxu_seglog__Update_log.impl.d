lib/seglog/update_log.ml: Array Bptree Buffer Element_index Er_node Fun Hashtbl Int Lazy List Lxu_btree Lxu_util Lxu_xml Option Printf Scanf String Tag_list Tag_registry Vec
