open Lxu_btree

type key = { tid : int; sid : int; start : int; stop : int; level : int }

module K = struct
  type t = key

  let compare a b =
    let c = Int.compare a.tid b.tid in
    if c <> 0 then c
    else begin
      let c = Int.compare a.sid b.sid in
      if c <> 0 then c
      else begin
        let c = Int.compare a.start b.start in
        if c <> 0 then c
        else begin
          let c = Int.compare a.stop b.stop in
          if c <> 0 then c else Int.compare a.level b.level
        end
      end
    end
end

module T = Bptree.Make (K)

type t = { tree : unit T.t; mutable accesses : int }

let create ?(branching = 32) () = { tree = T.create ~branching (); accesses = 0 }

let size t = T.length t.tree

let add t k =
  t.accesses <- t.accesses + 1;
  T.insert t.tree k ()

let remove t k =
  t.accesses <- t.accesses + 1;
  T.remove t.tree k

let iter_segment t ~tid ~sid f =
  let lo = { tid; sid; start = min_int; stop = min_int; level = min_int } in
  T.iter_from t.tree lo (fun k () ->
      t.accesses <- t.accesses + 1;
      if k.tid = tid && k.sid = sid then f k else false)

let elements_of_segment t ~tid ~sid =
  let acc = ref [] in
  iter_segment t ~tid ~sid (fun k ->
      acc := k :: !acc;
      true);
  Array.of_list (List.rev !acc)

let iter_all t f = T.iter t.tree (fun k () -> f k)

let accesses t = t.accesses

let size_bytes t =
  (* 5 ints per key plus tree node overhead, roughly. *)
  let internal, leaves = T.node_counts t.tree in
  (T.length t.tree * 5 * 8) + ((internal + leaves) * 64)

let height t = T.height t.tree
