(** Deterministic pseudo-random numbers (splitmix64).

    Every workload generator takes an explicit seed so experiments are
    exactly reproducible run to run, independent of the global
    [Random] state. *)

type t

val create : int -> t
(** A generator seeded with the given integer. *)

val next : t -> int
(** A fresh non-negative 62-bit value. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** An independent generator derived from this one. *)
