type shape = Balanced | Nested

type spec = {
  segments : int;
  pairs_per_segment : int;
  cross_percent : int;
  shape : shape;
}

type schedule = {
  edits : (int * string) list;
  expected_in_pairs : int;
  expected_cross_pairs : int;
  anc_tag : string;
  desc_tag : string;
}

(* Normal segment: one A wrapping d D-elements and a cross-hook <c>,
   followed by a nesting hook <n> outside the A (so chaining through
   <n> creates no accidental cross joins). *)
let normal_fragment d =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "<A>";
  for _ = 1 to d do
    Buffer.add_string buf "<D/>"
  done;
  Buffer.add_string buf "<c></c></A><n></n>";
  Buffer.contents buf

(* Byte offsets of the hook interiors inside [normal_fragment d]. *)
let c_interior d = 3 + (4 * d) + 3
let n_interior d = String.length (normal_fragment d) - 4

(* Cross-carrier segment: d D-elements whose only A-ancestor in scope
   is the partner's A, plus one join-neutral A to keep the per-segment
   element counts identical to a normal segment's. *)
let cross_fragment d =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "<A>t</A>";
  for _ = 1 to d do
    Buffer.add_string buf "<D/>"
  done;
  Buffer.contents buf

let generate spec =
  if spec.segments < 2 then invalid_arg "Joinmix.generate: need at least 2 segments";
  if spec.pairs_per_segment < 1 then invalid_arg "Joinmix.generate: pairs_per_segment < 1";
  if spec.cross_percent < 0 || spec.cross_percent > 100 then
    invalid_arg "Joinmix.generate: cross_percent out of range";
  let d = spec.pairs_per_segment in
  let n_cross = spec.segments * spec.cross_percent / 100 in
  (* At least one normal segment must exist to host cross carriers. *)
  let n_cross = min n_cross (spec.segments - 1) in
  let n_norm = spec.segments - n_cross in
  let frag = normal_fragment d in
  let edits = ref [] in
  (* Phase 1: the A-carrying segments, shaped balanced or nested.
     Every insertion lands at or after all previously recorded
     positions, so recorded hook offsets stay valid. *)
  let c_points = Array.make n_norm 0 in
  let cursor = ref 0 in
  for i = 0 to n_norm - 1 do
    let gp = !cursor in
    edits := (gp, frag) :: !edits;
    c_points.(i) <- gp + c_interior d;
    cursor :=
      (match spec.shape with
      | Balanced -> gp + String.length frag  (* append as a sibling *)
      | Nested -> gp + n_interior d (* descend into this segment's <n> *))
  done;
  (* Phase 2: cross carriers, attached to partners' <c> hooks in
     decreasing position order so earlier hook offsets never shift. *)
  let cfrag = cross_fragment d in
  let attach =
    List.init n_cross (fun k -> c_points.(n_norm - 1 - (k mod n_norm)))
    |> List.sort (fun a b -> Int.compare b a)
  in
  {
    edits = List.rev !edits @ List.map (fun gp -> (gp, cfrag)) attach;
    expected_in_pairs = n_norm * d;
    expected_cross_pairs = n_cross * d;
    anc_tag = "A";
    desc_tag = "D";
  }
