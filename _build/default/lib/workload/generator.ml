open Lxu_xml

type params = {
  tags : string array;
  max_depth : int;
  max_fanout : int;
  text_chance_pct : int;
  text_len : int;
}

let default_params =
  {
    tags = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |];
    max_depth = 8;
    max_fanout = 5;
    text_chance_pct = 30;
    text_len = 12;
  }

let random_text rng len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let generate ?(params = default_params) ~seed ~target_elements () =
  let rng = Rng.create seed in
  let made = ref 0 in
  (* The budget is enforced during recursion, so the total element
     count stays close to the target instead of overshooting by whole
     subtrees. *)
  let rec element depth =
    incr made;
    let tag = Rng.pick rng params.tags in
    let kids =
      if depth >= params.max_depth then []
      else begin
        let n = Rng.int rng (params.max_fanout + 1) in
        List.filter_map
          (fun _ ->
            if Rng.int rng 100 < params.text_chance_pct then
              Some (Tree.txt (random_text rng params.text_len))
            else if !made < target_elements then Some (element (depth + 1))
            else None)
          (List.init n Fun.id)
      end
    in
    Tree.el tag kids
  in
  let roots = ref [] in
  while !made < target_elements do
    roots := element 0 :: !roots
  done;
  List.rev !roots

let generate_text ?params ~seed ~target_elements () =
  Printer.render (generate ?params ~seed ~target_elements ())

let generate_with_spine ?(params = default_params) ~seed ~target_elements ~spine_depth () =
  let rng = Rng.create seed in
  let made = ref 0 in
  (* Random filler subtree of bounded size. *)
  let rec filler depth budget =
    incr made;
    decr budget;
    let tag = Rng.pick rng params.tags in
    let kids =
      if depth >= params.max_depth || !budget <= 0 then []
      else
        List.filter_map
          (fun _ ->
            if Rng.int rng 100 < params.text_chance_pct then
              Some (Tree.txt (random_text rng params.text_len))
            else if !budget > 0 then Some (filler (depth + 1) budget)
            else None)
          (List.init (Rng.int rng (params.max_fanout + 1)) Fun.id)
    in
    Tree.el tag kids
  in
  let per_level = max 1 ((target_elements - spine_depth) / max 1 spine_depth) in
  let rec spine level =
    incr made;
    let content =
      List.init
        (1 + Rng.int rng 2)
        (fun _ -> filler 0 (ref per_level))
    in
    let deeper = if level >= spine_depth then [] else [ spine (level + 1) ] in
    Tree.el (Rng.pick rng params.tags) (content @ deeper)
  in
  [ spine 1 ]

let generate_with_spine_text ?params ~seed ~target_elements ~spine_depth () =
  Printer.render (generate_with_spine ?params ~seed ~target_elements ~spine_depth ())

let deep_chain ~tags ~depth ~payload =
  if depth < 1 then invalid_arg "Generator.deep_chain: depth < 1";
  let buf = Buffer.create (depth * 16) in
  for i = 0 to depth - 1 do
    Buffer.add_string buf (Printf.sprintf "<%s>%s" tags.(i mod Array.length tags) payload)
  done;
  for i = depth - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "</%s>" tags.(i mod Array.length tags))
  done;
  Buffer.contents buf
