open Lxu_xml

let queries =
  [
    ("Q1", "person", "phone");
    ("Q2", "profile", "interest");
    ("Q3", "watches", "watch");
    ("Q4", "person", "watch");
    ("Q5", "person", "interest");
  ]

let words =
  [|
    "auction"; "vintage"; "rare"; "lot"; "camera"; "guitar"; "atlas"; "silver";
    "estate"; "classic"; "mint"; "signed"; "limited"; "original"; "antique";
  |]

let word rng = Rng.pick rng words

let sentence rng n = String.concat " " (List.init n (fun _ -> word rng))

let digits rng n = String.init n (fun _ -> Char.chr (Char.code '0' + Rng.int rng 10))

let person rng i =
  let opt chance node = if Rng.int rng 100 < chance then [ node () ] else [] in
  let interests () =
    List.init (Rng.int rng 5) (fun _ ->
        Tree.el "interest" ~attrs:[ ("category", word rng) ] [])
  in
  let profile () =
    Tree.el "profile"
      ~attrs:[ ("income", digits rng 5) ]
      (interests ()
      @ opt 60 (fun () -> Tree.el "education" [ Tree.txt (word rng) ])
      @ opt 80 (fun () -> Tree.el "gender" [ Tree.txt (if Rng.bool rng then "male" else "female") ])
      @ [ Tree.el "business" [ Tree.txt (if Rng.bool rng then "Yes" else "No") ] ]
      @ opt 70 (fun () -> Tree.el "age" [ Tree.txt (digits rng 2) ]))
  in
  let watches () =
    Tree.el "watches"
      (List.init
         (1 + Rng.int rng 6)
         (fun _ -> Tree.el "watch" ~attrs:[ ("open_auction", "oa" ^ digits rng 3) ] []))
  in
  let address () =
    Tree.el "address"
      [
        Tree.el "street" [ Tree.txt (digits rng 2 ^ " " ^ word rng ^ " st") ];
        Tree.el "city" [ Tree.txt (word rng) ];
        Tree.el "country" [ Tree.txt "United States" ];
        Tree.el "zipcode" [ Tree.txt (digits rng 5) ];
      ]
  in
  Tree.el "person"
    ~attrs:[ ("id", Printf.sprintf "person%d" i) ]
    ([
       Tree.el "name" [ Tree.txt (word rng ^ " " ^ word rng) ];
       Tree.el "emailaddress" [ Tree.txt (Printf.sprintf "mailto:%s%d@example.com" (word rng) i) ];
     ]
    @ opt 85 (fun () -> Tree.el "phone" [ Tree.txt ("+1 (" ^ digits rng 3 ^ ") " ^ digits rng 7) ])
    @ opt 70 address
    @ opt 75 profile
    @ opt 60 watches
    @ opt 40 (fun () -> Tree.el "creditcard" [ Tree.txt (digits rng 16) ]))

let item rng i =
  Tree.el "item"
    ~attrs:[ ("id", Printf.sprintf "item%d" i) ]
    [
      Tree.el "location" [ Tree.txt (word rng) ];
      Tree.el "name" [ Tree.txt (sentence rng 2) ];
      Tree.el "description" [ Tree.el "text" [ Tree.txt (sentence rng 8) ] ];
      Tree.el "quantity" [ Tree.txt (digits rng 1) ];
      Tree.el "payment" [ Tree.txt "Creditcard" ];
    ]

let category rng i =
  Tree.el "category"
    ~attrs:[ ("id", Printf.sprintf "category%d" i) ]
    [
      Tree.el "name" [ Tree.txt (word rng) ];
      Tree.el "description" [ Tree.el "text" [ Tree.txt (sentence rng 5) ] ];
    ]

let open_auction rng i =
  Tree.el "open_auction"
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" i) ]
    ([
       Tree.el "initial" [ Tree.txt (digits rng 3) ];
     ]
    @ List.init (Rng.int rng 4) (fun _ ->
          Tree.el "bidder"
            [
              Tree.el "date" [ Tree.txt "07/07/2026" ];
              Tree.el "increase" [ Tree.txt (digits rng 2) ];
            ])
    @ [
        Tree.el "current" [ Tree.txt (digits rng 4) ];
        Tree.el "itemref" ~attrs:[ ("item", "item" ^ digits rng 2) ] [];
        Tree.el "seller" ~attrs:[ ("person", "person" ^ digits rng 2) ] [];
        Tree.el "quantity" [ Tree.txt "1" ];
      ])

let regions rng ~items =
  let continents = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |] in
  let buckets = Array.make (Array.length continents) [] in
  for i = items - 1 downto 0 do
    let c = Rng.int rng (Array.length continents) in
    buckets.(c) <- item rng i :: buckets.(c)
  done;
  Tree.el "regions"
    (Array.to_list (Array.mapi (fun c name -> Tree.el name buckets.(c)) continents))

let generate ?(persons = 100) ?(items = 60) ?(categories = 10) ~seed () =
  let rng = Rng.create seed in
  [
    Tree.el "site"
      [
        regions rng ~items;
        Tree.el "categories" (List.init categories (category rng));
        Tree.el "people" (List.init persons (person rng));
        Tree.el "open_auctions" (List.init (persons / 2) (open_auction rng));
      ];
  ]

let generate_text ?persons ?items ?categories ~seed () =
  Printer.render (generate ?persons ?items ?categories ~seed ())
