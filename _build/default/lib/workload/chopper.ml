open Lxu_xml

type shape = Balanced | Nested

(* All element extents in pre-order, with depth. *)
let extents text =
  let nodes = Parser.parse_fragment text in
  let acc = ref [] in
  Tree.iter_elements nodes (fun e ~level ->
      acc := (e.Tree.e_start, e.Tree.e_end, level) :: !acc);
  List.rev !acc

(* Disjoint subtrees of roughly [len/segments] bytes each. *)
let balanced_splits text segments =
  let len = String.length text in
  let budget = max 8 (len / segments) in
  let chosen = ref [] in
  let last_end = ref (-1) in
  List.iter
    (fun (s, e, _) ->
      if
        List.length !chosen < segments - 1
        && s >= !last_end
        && e - s <= 2 * budget
        && e - s < len
      then begin
        chosen := (s, e) :: !chosen;
        last_end := e
      end)
    (extents text);
  List.rev !chosen

(* A chain of nested elements along the deepest root-to-leaf path. *)
let nested_splits text segments =
  let all = extents text in
  let deepest =
    List.fold_left
      (fun best (s, e, d) ->
        match best with
        | Some (_, _, bd) when bd >= d -> best
        | _ -> Some (s, e, d))
      None all
  in
  match deepest with
  | None -> []
  | Some (ds, de, _) ->
    (* Ancestors of the deepest element, outermost first. *)
    let chain =
      List.filter (fun (s, e, _) -> s <= ds && e >= de) all
      |> List.map (fun (s, e, _) -> (s, e))
    in
    let n = List.length chain in
    let want = min (segments - 1) n in
    if want <= 0 then []
    else begin
      let chain = Array.of_list chain in
      (* Evenly spaced along the chain, keeping nesting order. *)
      List.init want (fun i -> chain.(i * n / want))
      |> List.sort_uniq compare
    end

(* Splices [text[s..e)] with the given sub-ranges removed. *)
let splice text s e removed =
  let buf = Buffer.create (e - s) in
  let cursor = ref s in
  List.iter
    (fun (rs, re) ->
      if rs > !cursor then Buffer.add_substring buf text !cursor (rs - !cursor);
      cursor := max !cursor re)
    (List.sort compare removed);
  if !cursor < e then Buffer.add_substring buf text !cursor (e - !cursor);
  Buffer.contents buf

let chop ~text ~segments shape =
  if segments < 1 then invalid_arg "Chopper.chop: segments < 1";
  if text = "" then invalid_arg "Chopper.chop: empty text";
  let splits =
    match shape with
    | Balanced -> balanced_splits text segments
    | Nested -> nested_splits text segments
  in
  let splits = List.sort compare splits in
  (* Direct split children of a range: maximal splits strictly inside. *)
  let direct_children (s, e) =
    let inside = List.filter (fun (cs, ce) -> s < cs && ce <= e && (cs, ce) <> (s, e)) splits in
    List.filter
      (fun (cs, ce) ->
        not
          (List.exists
             (fun (os, oe) -> (os, oe) <> (cs, ce) && os <= cs && ce <= oe)
             inside))
      inside
  in
  let top =
    List.filter
      (fun (s, e) ->
        not (List.exists (fun (os, oe) -> (os, oe) <> (s, e) && os <= s && e <= oe) splits))
      splits
  in
  let base = splice text 0 (String.length text) top in
  let edits =
    List.map (fun (s, e) -> (s, splice text s e (direct_children (s, e)))) splits
  in
  let edits = List.filter (fun (_, frag) -> frag <> "") edits in
  if base = "" then edits else (0, base) :: edits

let segment_count = List.length
