(** Synthetic XML document generator — the stand-in for the IBM XML
    Generator [15] the paper uses (§5.1).

    Generates random element trees controlled by the same knobs the
    experiments need: tag vocabulary size, fan-out, depth, and text
    payload length.  Deterministic in the seed. *)

type params = {
  tags : string array;  (** vocabulary; elements draw tags uniformly *)
  max_depth : int;
  max_fanout : int;
  text_chance_pct : int;  (** chance a child slot holds text, 0-100 *)
  text_len : int;
}

val default_params : params

val generate : ?params:params -> seed:int -> target_elements:int -> unit -> Lxu_xml.Tree.node list
(** Random forest with roughly [target_elements] elements (never
    fewer). *)

val generate_text : ?params:params -> seed:int -> target_elements:int -> unit -> string
(** Rendered form of {!generate}. *)

val generate_with_spine :
  ?params:params ->
  seed:int ->
  target_elements:int ->
  spine_depth:int ->
  unit ->
  Lxu_xml.Tree.node list
(** A document with a guaranteed nesting chain of [spine_depth]
    elements, each spine level carrying random filler subtrees so the
    total lands near [target_elements].  Deep chains are what the
    nested chopping shape needs; plain random trees rarely exceed a
    few dozen levels. *)

val generate_with_spine_text :
  ?params:params -> seed:int -> target_elements:int -> spine_depth:int -> unit -> string

val deep_chain : tags:string array -> depth:int -> payload:string -> string
(** A document of exactly [depth] nested elements cycling through
    [tags], each level carrying [payload] text — the highly nested
    worst case used to build nested ER-trees. *)
