(** XMark-like auction-site documents — the stand-in for the XMark
    benchmark [16] used in §5.3's third experiment group.

    Generates the schema subset the paper's five queries touch
    (people/person with phone, profile/interest, watches/watch, plus
    regions, items, categories and auctions for realistic bulk), with
    randomized optional parts so result cardinalities resemble XMark's
    distributions.  Deterministic in the seed; size scales linearly
    with [persons]. *)

val generate :
  ?persons:int ->
  ?items:int ->
  ?categories:int ->
  seed:int ->
  unit ->
  Lxu_xml.Tree.node list
(** Defaults: 100 persons, 60 items, 10 categories. *)

val generate_text :
  ?persons:int -> ?items:int -> ?categories:int -> seed:int -> unit -> string

val queries : (string * string * string) list
(** The paper's Figure 14 queries as [(name, anc, desc)]:
    Q1 person//phone, Q2 profile//interest, Q3 watches//watch,
    Q4 person//watch, Q5 person//interest. *)
