(* splitmix64, truncated to OCaml's 63-bit ints. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod n

let bool t = next t land 1 = 1

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let split t = { state = next64 t }
