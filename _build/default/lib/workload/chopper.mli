(** Document chopping: turning one XML document into a segment
    insertion schedule (§5.1: "we chopped the data sets into many
    small segments and inserted these segments into an initially dummy
    XML document").

    [Balanced] picks disjoint subtrees spread across the document, so
    the resulting ER-tree is flat and bushy; [Nested] picks a chain of
    nested elements, producing the paper's worst-case chain-shaped
    ER-tree.  Applying the returned edits in order to an empty super
    document reconstructs exactly the input text. *)

type shape = Balanced | Nested

val chop : text:string -> segments:int -> shape -> (int * string) list
(** [chop ~text ~segments shape] returns an insertion schedule of at
    most [segments] edits (fewer when the document doesn't offer
    enough split points, e.g. a shallow tree under [Nested]).
    @raise Lxu_xml.Parser.Parse_error if [text] is ill-formed.
    @raise Invalid_argument if [segments < 1] or [text] is empty. *)

val segment_count : (int * string) list -> int
(** Number of edits in a schedule. *)
