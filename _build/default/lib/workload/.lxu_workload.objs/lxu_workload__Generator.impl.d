lib/workload/generator.ml: Array Buffer Char Fun List Lxu_xml Printer Printf Rng String Tree
