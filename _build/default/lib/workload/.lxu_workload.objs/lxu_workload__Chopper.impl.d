lib/workload/chopper.ml: Array Buffer List Lxu_xml Parser String Tree
