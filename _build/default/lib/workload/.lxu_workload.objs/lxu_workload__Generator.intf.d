lib/workload/generator.mli: Lxu_xml
