lib/workload/xmark.ml: Array Char List Lxu_xml Printer Printf Rng String Tree
