lib/workload/chopper.mli:
