lib/workload/rng.mli:
