lib/workload/joinmix.ml: Array Buffer Int List String
