lib/workload/joinmix.mli:
