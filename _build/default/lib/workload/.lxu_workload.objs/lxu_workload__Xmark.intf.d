lib/workload/xmark.mli: Lxu_xml
