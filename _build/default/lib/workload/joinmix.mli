(** Join-mix workload: documents with a controlled percentage of
    cross-segment joins (the Figure 12 experiment).

    The generator emits an edit schedule — a list of [(gp, fragment)]
    insertions — that builds a super document of [segments] segments,
    each contributing exactly [pairs_per_segment] A//D join pairs.
    [cross_percent] of the segments carry their D-elements in a child
    segment attached {e inside} a partner segment's A-element, turning
    their pairs into cross-segment joins; the rest keep their
    D-elements under their own A (in-segment joins).  Total segments,
    elements and join pairs stay fixed as the percentage varies, which
    is exactly the controlled variable of the experiment.

    The ER-tree [shape] knob places the A-carrying segments either as
    siblings ([Balanced]) or as a chain, each inserted inside a hook
    element of the previous one, outside its A ([Nested]) — the
    paper's best and worst cases for segment-list processing. *)

type shape = Balanced | Nested

type spec = {
  segments : int;  (** total segments, at least 2 *)
  pairs_per_segment : int;  (** D-elements (= pairs) per segment *)
  cross_percent : int;  (** 0-100 *)
  shape : shape;
}

type schedule = {
  edits : (int * string) list;  (** apply in order with [insert ~gp] *)
  expected_in_pairs : int;
  expected_cross_pairs : int;
  anc_tag : string;  (** "A" *)
  desc_tag : string;  (** "D" *)
}

val generate : spec -> schedule
(** @raise Invalid_argument on a malformed spec. *)
