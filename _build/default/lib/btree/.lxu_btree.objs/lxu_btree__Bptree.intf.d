lib/btree/bptree.mli:
