lib/btree/bptree.ml: Array List Option Printf
