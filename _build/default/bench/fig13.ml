(* Figure 13: join time over the same document chopped into a varying
   number of segments, LD vs STD, nested and balanced ER-trees.  STD
   is insensitive to the chopping; LD pays segment-list overhead as
   segments multiply — the paper's observed crossover.  A packed
   series (the whole document re-indexed as one segment, the §6
   mitigation) is reported once for reference. *)

open Lxu_workload
open Lxu_seglog

let doc_elements = 14_000 * Bench_util.scale
let spine_depth = 400

let params =
  {
    Generator.tags = [| "a"; "b"; "c"; "d"; "e"; "f" |];
    max_depth = 10;
    max_fanout = 4;
    text_chance_pct = 25;
    text_len = 10;
  }

let run () =
  Bench_util.header "Figure 13: join time vs number of segments (same document)";
  let text =
    Generator.generate_with_spine_text ~params ~seed:13 ~target_elements:doc_elements
      ~spine_depth ()
  in
  Printf.printf "document: %d bytes, %d elements; query a//b\n" (String.length text)
    (Lxu_xml.Tree.element_count (Lxu_xml.Parser.parse_fragment text));
  let anc = "a" and desc = "b" in
  let whole = Bench_util.load_log Update_log.Lazy_dynamic [ (0, text) ] in
  let std_ms = Bench_util.time_std whole ~anc ~desc in
  let packed_ms = Bench_util.time_ld whole ~anc ~desc in
  Printf.printf "STD (chopping-independent): %s ms; packed single segment: %s ms\n\n"
    (Bench_util.fmt_ms std_ms) (Bench_util.fmt_ms packed_ms);
  List.iter
    (fun shape ->
      Printf.printf "-- %s chopping --\n"
        (match shape with Chopper.Nested -> "nested" | Chopper.Balanced -> "balanced");
      Bench_util.columns [ 10; 10; 10; 12; 12 ]
        [ "requested"; "actual"; "cross%"; "LD ms"; "STD ms" ];
      List.iter
        (fun n ->
          let edits = Chopper.chop ~text ~segments:n shape in
          let log = Bench_util.load_log Update_log.Lazy_dynamic edits in
          let _, stats = Lxu_join.Lazy_join.run log ~anc ~desc () in
          let total =
            stats.Lxu_join.Lazy_join.cross_pairs + stats.Lxu_join.Lazy_join.in_pairs
          in
          let crosspct =
            if total = 0 then 0 else 100 * stats.Lxu_join.Lazy_join.cross_pairs / total
          in
          let ld_ms = Bench_util.time_ld log ~anc ~desc in
          Bench_util.columns [ 10; 10; 10; 12; 12 ]
            [
              string_of_int n;
              string_of_int (Update_log.segment_count log);
              string_of_int crosspct;
              Bench_util.fmt_ms ld_ms;
              Bench_util.fmt_ms std_ms;
            ])
        [ 20; 60; 100; 180; 260; 340 ])
    [ Chopper.Balanced; Chopper.Nested ]
