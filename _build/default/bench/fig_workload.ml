(* Shared workload helpers for the bench harness. *)

open Lxu_seglog

(* A balanced segmented document of roughly [n] elements: 100 segments
   of [n/100] flat elements each, appended as siblings. *)
let balanced_doc n =
  let per_segment = max 1 (n / 100) in
  let buf = Buffer.create (per_segment * 5) in
  for i = 0 to per_segment - 1 do
    Buffer.add_string buf (Printf.sprintf "<t%d/>" (i mod 8))
  done;
  let frag = Buffer.contents buf in
  List.init (min 100 n) (fun i -> (i * String.length frag, frag))

(* A valid mid-document insertion point: the gp of the segment closest
   below the middle. *)
let segment_boundary log =
  let target = Update_log.doc_length log / 2 in
  let best = ref 0 in
  Er_node.iter_subtree (Update_log.root log) (fun nd ->
      if (not (Er_node.is_root nd)) && nd.Er_node.gp <= target && nd.Er_node.gp > !best then
        best := nd.Er_node.gp);
  !best
