(* Figure 12: elapsed structural-join time as the percentage of
   cross-segment joins varies, on nested (a,b) and balanced (c,d)
   ER-trees with 50 and 100 segments, comparing LS, LD and STD.  Total
   segments, elements and result pairs stay constant along each row. *)

open Lxu_workload
open Lxu_seglog

let run_one ~shape ~segments ~pairs_per_segment =
  Printf.printf "\n-- %s ER-tree, %d segments (%d result pairs per row) --\n"
    (match shape with Joinmix.Nested -> "nested" | Joinmix.Balanced -> "balanced")
    segments
    (segments * pairs_per_segment);
  Bench_util.columns [ 10; 10; 12; 12; 12 ] [ "cross%"; "pairs"; "LS ms"; "LD ms"; "STD ms" ];
  List.iter
    (fun cross_percent ->
      let spec = { Joinmix.segments; pairs_per_segment; cross_percent; shape } in
      let schedule = Joinmix.generate spec in
      let anc = schedule.Joinmix.anc_tag and desc = schedule.Joinmix.desc_tag in
      let ld = Bench_util.load_log Update_log.Lazy_dynamic schedule.Joinmix.edits in
      let ls = Bench_util.load_log Update_log.Lazy_static schedule.Joinmix.edits in
      let pairs =
        schedule.Joinmix.expected_in_pairs + schedule.Joinmix.expected_cross_pairs
      in
      Bench_util.columns [ 10; 10; 12; 12; 12 ]
        [
          string_of_int cross_percent;
          string_of_int pairs;
          Bench_util.fmt_ms (Bench_util.time_ls ls ~anc ~desc);
          Bench_util.fmt_ms (Bench_util.time_ld ld ~anc ~desc);
          Bench_util.fmt_ms (Bench_util.time_std ld ~anc ~desc);
        ])
    [ 0; 20; 40; 60; 80; 95 ]

let run () =
  Bench_util.header
    "Figure 12: join time vs cross-segment join percentage (LS / LD / STD)";
  List.iter
    (fun (shape, segments) -> run_one ~shape ~segments ~pairs_per_segment:(40 * Bench_util.scale))
    [
      (Joinmix.Nested, 50);
      (Joinmix.Nested, 100);
      (Joinmix.Balanced, 50);
      (Joinmix.Balanced, 100);
    ]
