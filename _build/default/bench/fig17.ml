(* Figure 17: per-element insertion cost of the lazy approach (LD and
   LS) against the PRIME immutable labeling baseline.
   (a) varying the number of elements in the inserted segment,
   (b) varying the number of distinct tag names in it,
   (c) LD cost vs the number of existing segments, balanced and
       nested ER-trees. *)

open Lxu_seglog

(* A flat segment of [elements] elements cycling [tags] tag names. *)
let fragment ~elements ~tags =
  let buf = Buffer.create (elements * 6) in
  for i = 0 to elements - 1 do
    Buffer.add_string buf (Printf.sprintf "<g%d/>" (i mod tags))
  done;
  Buffer.contents buf

(* Base document: [segments] segments shaped balanced or nested (the
   Figure 11 worst-case segments, which contain every tag). *)
let base_schedule shape segments = Fig11.schedule shape segments

let mid_insert_point log =
  (* Halfway through the document, snapped to a segment boundary so the
     point is always a valid split. *)
  let target = Update_log.doc_length log / 2 in
  let best = ref 0 in
  Er_node.iter_subtree (Update_log.root log) (fun n ->
      if (not (Er_node.is_root n)) && n.Er_node.gp <= target && n.Er_node.gp > !best then
        best := n.Er_node.gp);
  !best

(* Median per-element insertion time into a fresh log each round. *)
let lazy_per_element mode shape segments ~elements ~tags =
  let edits = base_schedule shape segments in
  let frag = fragment ~elements ~tags in
  let samples =
    List.init 9 (fun _ ->
        let log = Bench_util.load_log mode edits in
        let gp = mid_insert_point log in
        snd (Bench_util.time_ms (fun () -> ignore (Update_log.insert log ~gp frag))))
    |> List.sort compare
  in
  List.nth samples 4 /. float_of_int elements

(* Per-element PRIME insertion: [elements] middle insertions into an
   existing document order of [base] nodes. *)
let prime_per_element ~k ~base ~elements =
  let open Lxu_labeling in
  let t = Prime_label.create ~k ~capacity:(base + elements + 8) () in
  let root = Prime_label.append t ~parent:None in
  for _ = 1 to base - 1 do
    ignore (Prime_label.append t ~parent:(Some root))
  done;
  let _, ms =
    Bench_util.time_ms (fun () ->
        for _ = 1 to elements do
          ignore
            (Prime_label.insert t ~parent:(Some root)
               ~order_pos:(Prime_label.size t / 2))
        done)
  in
  ms /. float_of_int elements

let fmt us_ms = Printf.sprintf "%.4f" us_ms

let run_a () =
  Bench_util.header
    "Figure 17(a): per-element insert time (ms) vs elements per segment";
  Printf.printf "(100 balanced segments; 5 distinct tags; PRIME base: 2000 nodes)\n";
  Bench_util.columns [ 10; 12; 12; 14; 14 ]
    [ "elements"; "LS"; "LD"; "PRIME k=10"; "PRIME k=100" ];
  List.iter
    (fun elements ->
      Bench_util.columns [ 10; 12; 12; 14; 14 ]
        [
          string_of_int elements;
          fmt (lazy_per_element Update_log.Lazy_static `Balanced 100 ~elements ~tags:5);
          fmt (lazy_per_element Update_log.Lazy_dynamic `Balanced 100 ~elements ~tags:5);
          fmt (prime_per_element ~k:10 ~base:2000 ~elements);
          fmt (prime_per_element ~k:100 ~base:2000 ~elements);
        ])
    [ 5; 10; 20; 40; 80 ]

let run_b () =
  Bench_util.header
    "Figure 17(b): per-element insert time (ms) vs distinct tag names";
  Printf.printf "(100 balanced segments; 40 elements per segment)\n";
  Bench_util.columns [ 10; 12; 12; 14 ] [ "tags"; "LS"; "LD"; "PRIME k=10" ];
  List.iter
    (fun tags ->
      Bench_util.columns [ 10; 12; 12; 14 ]
        [
          string_of_int tags;
          fmt (lazy_per_element Update_log.Lazy_static `Balanced 100 ~elements:40 ~tags);
          fmt (lazy_per_element Update_log.Lazy_dynamic `Balanced 100 ~elements:40 ~tags);
          fmt (prime_per_element ~k:10 ~base:2000 ~elements:40);
        ])
    [ 1; 2; 4; 6; 8 ]

let run_c () =
  Bench_util.header
    "Figure 17(c): LD per-element insert time (ms) vs existing segments";
  Printf.printf "(20 elements, 5 tags per inserted segment)\n";
  Bench_util.columns [ 10; 14; 14 ] [ "segments"; "balanced"; "nested" ];
  List.iter
    (fun segments ->
      Bench_util.columns [ 10; 14; 14 ]
        [
          string_of_int segments;
          fmt (lazy_per_element Update_log.Lazy_dynamic `Balanced segments ~elements:20 ~tags:5);
          fmt (lazy_per_element Update_log.Lazy_dynamic `Nested segments ~elements:20 ~tags:5);
        ])
    [ 50; 100; 150; 200; 250; 300 ]
