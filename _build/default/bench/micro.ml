(* Bechamel micro-benchmarks: one Test.make per figure's core
   operation, measuring steady-state cost with OLS fits.  These
   complement the wall-clock tables with allocation-aware numbers. *)

open Bechamel
open Toolkit
open Lxu_seglog

let joinmix_log shape =
  let spec =
    { Lxu_workload.Joinmix.segments = 100; pairs_per_segment = 20; cross_percent = 40; shape }
  in
  let schedule = Lxu_workload.Joinmix.generate spec in
  Bench_util.load_log Update_log.Lazy_dynamic schedule.Lxu_workload.Joinmix.edits

let test_fig11_log_insert_remove =
  (* Insert + remove round trip keeps the structure stable across runs. *)
  let log = Bench_util.load_log Update_log.Lazy_dynamic (Fig11.schedule `Balanced 100) in
  let frag = "<t0><t1/></t0>" in
  let gp = Update_log.doc_length log / 2 / String.length Fig11.fragment * String.length Fig11.fragment in
  Test.make ~name:"fig11/16: update-log insert+remove"
    (Staged.stage (fun () ->
         ignore (Update_log.insert log ~gp frag);
         Update_log.remove log ~gp ~len:(String.length frag)))

let test_fig12_lazy_join =
  let log = joinmix_log Lxu_workload.Joinmix.Balanced in
  Update_log.prepare_for_query log;
  Test.make ~name:"fig12/13/15: lazy-join A//D"
    (Staged.stage (fun () -> ignore (Lxu_join.Lazy_join.run log ~anc:"A" ~desc:"D" ())))

let test_fig12_std_join =
  let spec =
    {
      Lxu_workload.Joinmix.segments = 100;
      pairs_per_segment = 20;
      cross_percent = 40;
      shape = Lxu_workload.Joinmix.Balanced;
    }
  in
  let schedule = Lxu_workload.Joinmix.generate spec in
  let store = Bench_util.load_store schedule.Lxu_workload.Joinmix.edits in
  let a = Lxu_labeling.Interval_store.elements store ~tag:"A" in
  let d = Lxu_labeling.Interval_store.elements store ~tag:"D" in
  Test.make ~name:"fig12/13/15: stack-tree-desc A//D"
    (Staged.stage (fun () -> ignore (Lxu_join.Stack_tree_desc.join ~anc:a ~desc:d ())))

let test_fig16_store_insert_remove =
  let text = Lxu_workload.Xmark.generate_text ~persons:300 ~seed:9 () in
  let store = Bench_util.load_store [ (0, text) ] in
  let frag = "<person id=\"pz\"><phone>1</phone></person>" in
  let gp =
    let needle = "<people>" in
    let n = String.length needle in
    let rec find i = if String.sub text i n = needle then i + n else find (i + 1) in
    find 0
  in
  Test.make ~name:"fig16: traditional relabel insert+remove"
    (Staged.stage (fun () ->
         Lxu_labeling.Interval_store.insert store ~gp frag;
         Lxu_labeling.Interval_store.remove store ~gp ~len:(String.length frag)))

let test_fig17_crt_solve =
  let primes = Lxu_bignum.Prime_gen.create () in
  let pairs = List.init 10 (fun i -> (i, Lxu_bignum.Prime_gen.nth primes (i + 2000))) in
  Test.make ~name:"fig17: CRT solve (one PRIME group, k=10)"
    (Staged.stage (fun () -> ignore (Lxu_bignum.Crt.solve pairs)))

let test_substrate_btree =
  let module T = Lxu_btree.Bptree.Make (Int) in
  let t = T.create () in
  for i = 0 to 9999 do
    T.insert t i i
  done;
  Test.make ~name:"substrate: b+tree insert+remove (10k keys)"
    (Staged.stage (fun () ->
         T.insert t 10_001 1;
         ignore (T.remove t 10_001)))

let test_substrate_parse =
  let text = Lxu_workload.Generator.generate_text ~seed:3 ~target_elements:500 () in
  Test.make ~name:"substrate: xml parse (500 elements)"
    (Staged.stage (fun () -> ignore (Lxu_xml.Parser.parse_fragment text)))

let tests =
  Test.make_grouped ~name:"micro"
    [
      test_fig11_log_insert_remove;
      test_fig12_lazy_join;
      test_fig12_std_join;
      test_fig16_store_insert_remove;
      test_fig17_crt_solve;
      test_substrate_btree;
      test_substrate_parse;
    ]

let run () =
  Bench_util.header "Bechamel micro-benchmarks (ns/run, OLS fit)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-48s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-48s (no estimate)\n" name)
    results
