bench/fig13.ml: Bench_util Chopper Generator List Lxu_join Lxu_seglog Lxu_workload Lxu_xml Printf String Update_log
