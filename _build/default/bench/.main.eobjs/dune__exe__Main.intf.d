bench/main.mli:
