bench/fig16.ml: Bench_util Chopper Interval_store List Lxu_labeling Lxu_seglog Lxu_workload String Update_log Xmark
