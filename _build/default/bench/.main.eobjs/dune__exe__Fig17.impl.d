bench/fig17.ml: Bench_util Buffer Er_node Fig11 List Lxu_labeling Lxu_seglog Prime_label Printf Update_log
