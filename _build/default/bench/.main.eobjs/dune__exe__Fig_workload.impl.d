bench/fig_workload.ml: Buffer Er_node List Lxu_seglog Printf String Update_log
