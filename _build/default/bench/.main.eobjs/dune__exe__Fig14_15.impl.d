bench/fig14_15.ml: Bench_util Chopper List Lxu_join Lxu_seglog Lxu_workload Printf String Update_log Xmark
