bench/bench_util.ml: Lazy_xml List Lxu_join Lxu_labeling Lxu_seglog Printf String Sys Unix
