bench/main.ml: Ablation Array Fig11 Fig12 Fig13 Fig14_15 Fig16 Fig17 Hashtbl List Micro Printf String Sys
