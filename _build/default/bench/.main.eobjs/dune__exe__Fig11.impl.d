bench/fig11.ml: Bench_util List Lxu_seglog String Update_log
