bench/ablation.ml: Array Bbox_store Bench_util Binary_label Box_store Buffer Dewey_label Fig_workload Int List Lxu_join Lxu_labeling Lxu_seglog Prime_label Printf String Update_log
