bench/fig12.ml: Bench_util Joinmix List Lxu_seglog Lxu_workload Printf Update_log
