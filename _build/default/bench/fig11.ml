(* Figure 11: update-log size (a) and building time (b) as the number
   of inserted segments grows, for nested and balanced ER-trees.  Every
   segment contains all element tags — the paper's worst case for the
   tag-list. *)

open Lxu_seglog

(* A segment holding one element of each of 8 tags, with the last tag
   usable as a nesting hook. *)
let fragment =
  "<t0><t1/><t2/><t3/><t4/><t5/><t6/><t7></t7></t0>"

let nested_offset =
  (* Just after "<t7>". *)
  let i = ref 0 in
  let sub = "</t7>" in
  while String.sub fragment !i (String.length sub) <> sub do
    incr i
  done;
  !i

let schedule shape n =
  let len = String.length fragment in
  let edits = ref [] in
  let cursor = ref 0 in
  for _ = 1 to n do
    edits := (!cursor, fragment) :: !edits;
    cursor :=
      (match shape with
      | `Balanced -> !cursor + len
      | `Nested -> !cursor + nested_offset)
  done;
  List.rev !edits

let sizes n =
  let result shape =
    let log = Bench_util.load_log Update_log.Lazy_dynamic (schedule shape n) in
    (Update_log.sb_size_bytes log, Update_log.tag_list_size_bytes log)
  in
  (result `Balanced, result `Nested)

let run_a () =
  Bench_util.header "Figure 11(a): update log size vs segments (bytes)";
  Bench_util.columns
    [ 10; 12; 12; 12; 12; 12; 12 ]
    [ "segments"; "bal.sb"; "bal.tags"; "bal.total"; "nst.sb"; "nst.tags"; "nst.total" ];
  List.iter
    (fun n ->
      let (bsb, btl), (nsb, ntl) = sizes n in
      Bench_util.columns
        [ 10; 12; 12; 12; 12; 12; 12 ]
        [
          string_of_int n;
          Bench_util.fmt_bytes bsb;
          Bench_util.fmt_bytes btl;
          Bench_util.fmt_bytes (bsb + btl);
          Bench_util.fmt_bytes nsb;
          Bench_util.fmt_bytes ntl;
          Bench_util.fmt_bytes (nsb + ntl);
        ])
    [ 50; 100; 150; 200; 250; 300 ]

let run_b () =
  Bench_util.header "Figure 11(b): update log building time vs segments (ms)";
  Bench_util.columns [ 10; 14; 14 ] [ "segments"; "balanced"; "nested" ];
  List.iter
    (fun n ->
      let t shape =
        let edits = schedule shape n in
        Bench_util.measure ~repeat:3 (fun () ->
            ignore (Bench_util.load_log Update_log.Lazy_dynamic edits))
      in
      Bench_util.columns [ 10; 14; 14 ]
        [ string_of_int n; Bench_util.fmt_ms (t `Balanced); Bench_util.fmt_ms (t `Nested) ])
    [ 50; 100; 150; 200; 250; 300 ]
