(* Shared helpers for the figure-reproduction harness. *)

(* Workload multiplier from LAZYXML_BENCH_SCALE (default 1): the key
   dataset sizes of figs 12-16 scale linearly with it, for runs closer
   to the paper's 100 MB datasets. *)
let scale =
  match Sys.getenv_opt "LAZYXML_BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Median wall-clock of [repeat] runs, in milliseconds. *)
let measure ?(repeat = 5) f =
  let samples =
    List.init repeat (fun _ ->
        let _, ms = time_ms f in
        ms)
    |> List.sort compare
  in
  List.nth samples (repeat / 2)

let header title =
  Printf.printf "\n=== %s ===\n" title

let columns widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s" w c) widths cells;
  print_newline ()

let fmt_ms ms = Printf.sprintf "%.3f" ms
let fmt_bytes b = Printf.sprintf "%d" b

let sep () = print_newline ()

(* Builds a Lazy_db from an edit schedule. *)
let load_db engine edits =
  let db = Lazy_xml.Lazy_db.create ~engine () in
  List.iter (fun (gp, frag) -> Lazy_xml.Lazy_db.insert db ~gp frag) edits;
  db

(* Builds an update log (LD or LS) from an edit schedule. *)
let load_log mode edits =
  let log = Lxu_seglog.Update_log.create ~mode () in
  List.iter (fun (gp, frag) -> ignore (Lxu_seglog.Update_log.insert log ~gp frag)) edits;
  log

(* Builds the traditional interval store from an edit schedule. *)
let load_store edits =
  let store = Lxu_labeling.Interval_store.create () in
  List.iter (fun (gp, frag) -> Lxu_labeling.Interval_store.insert store ~gp frag) edits;
  store

(* The three query timers used across figures; all measure the join
   itself, on label pairs, the way the paper does.  The LS timer
   includes the pre-query sort/rebuild that discipline defers. *)
let time_ld log ~anc ~desc =
  Lxu_seglog.Update_log.prepare_for_query log;
  measure (fun () -> ignore (Lxu_join.Lazy_join.run log ~anc ~desc ()))

let time_ls log ~anc ~desc =
  measure (fun () ->
      Lxu_seglog.Update_log.mark_stale log;
      ignore (Lxu_join.Lazy_join.run log ~anc ~desc ()))

(* STD as the paper runs it over the same store (§4): fetch every
   element of both tags from the element index, translate local labels
   to global intervals through the SB-tree, sort, then Stack-Tree-Desc.
   Reading and translating the full lists is part of the measured cost,
   exactly as reading the full element lists is for the paper's STD. *)
let time_std log ~anc ~desc =
  Lxu_seglog.Update_log.prepare_for_query log;
  measure (fun () -> ignore (Lxu_join.Std_baseline.run log ~anc ~desc ()))
