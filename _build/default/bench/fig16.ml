(* Figure 16: elapsed time of inserting one segment into documents of
   growing size — the lazy approach (LD) against the traditional
   relabeling approach.  The inserted segment lands mid-document so
   that roughly half the existing element labels must shift under the
   traditional scheme (the paper's average case); LD shifts only
   per-segment bookkeeping. *)

open Lxu_workload
open Lxu_seglog
open Lxu_labeling

let new_segment =
  "<person id=\"pnew\"><name>new arrival</name><emailaddress>x@example.com</emailaddress><phone>+1 (555) 0100000</phone></person>"

(* A valid mid-document insertion point: right after the opening tag of
   the <people> element (any person can be inserted there). *)
let insertion_point text =
  let needle = "<people>" in
  let n = String.length needle in
  let rec find i = if String.sub text i n = needle then i + n else find (i + 1) in
  find 0

let run () =
  Bench_util.header
    "Figure 16: time to insert one segment vs document size (LD vs traditional)";
  Bench_util.columns [ 12; 12; 10; 12; 14; 14 ]
    [ "doc bytes"; "elements"; "segs"; "LD ms"; "trad ms"; "relabelled" ];
  List.iter
    (fun persons ->
      let text = Xmark.generate_text ~persons ~items:(persons / 2) ~seed:16 () in
      let gp = insertion_point text in
      let edits = Chopper.chop ~text ~segments:100 Chopper.Balanced in
      (* LD: median over fresh logs (insert mutates, so rebuild between
         repetitions; building is outside the timed section). *)
      let ld_ms =
        let samples =
          List.init 3 (fun _ ->
              let log = Bench_util.load_log Update_log.Lazy_dynamic edits in
              snd (Bench_util.time_ms (fun () -> ignore (Update_log.insert log ~gp new_segment))))
          |> List.sort compare
        in
        List.nth samples 1
      in
      let store = Bench_util.load_store [ (0, text) ] in
      let trad_ms =
        snd (Bench_util.time_ms (fun () -> Interval_store.insert store ~gp new_segment))
      in
      let relabelled = Interval_store.last_relabel_count store in
      Bench_util.columns [ 12; 12; 10; 12; 14; 14 ]
        [
          string_of_int (String.length text);
          string_of_int (Interval_store.element_count store);
          "100";
          Bench_util.fmt_ms ld_ms;
          Bench_util.fmt_ms trad_ms;
          string_of_int relabelled;
        ])
    (List.map (fun n -> n * Bench_util.scale) [ 250; 500; 1000; 2000; 4000 ])
