#!/bin/sh
# Perf regression gate for the structural-join and update-ingestion
# paths.
#
#   scripts/bench_gate.sh           run the parallel-join and batched-
#                                   update benchmarks and fail if
#                                   either single-domain join
#                                   throughput or LD batch-64 update
#                                   throughput drops more than 10%
#                                   below its committed baseline
#                                   (BENCH_join.json / BENCH_update.json)
#   scripts/bench_gate.sh --smoke   no benchmark run: just check that
#                                   the committed baselines parse and
#                                   carry positive throughputs (wired
#                                   into `dune runtest` so a malformed
#                                   or stale baseline fails fast)
#
# The baselines are regenerated with:
#   dune exec bench/main.exe -- parallel
#   dune exec bench/main.exe -- update
# which rewrite BENCH_join.json / BENCH_update.json in place; commit
# them alongside any intentional perf change.
set -eu

root=$(dirname "$0")/..
join_baseline="$root/BENCH_join.json"
update_baseline="$root/BENCH_update.json"

# Pulls the domains=1 pairs_per_sec out of a BENCH_join.json.  The
# bench writer emits compact single-line JSON with a fixed key order
# inside each series entry, so stream-editing is enough — no jq here.
extract_join() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"domains":1,[^}]*' \
    | head -n 1 \
    | grep -o '"pairs_per_sec":[0-9.eE+-]*' \
    | cut -d: -f2
}

# Pulls the top-level ld_batch64_segs_per_sec out of a
# BENCH_update.json (the gate metric: LD engine, WAL off, batch 64).
extract_update() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"ld_batch64_segs_per_sec":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

[ -f "$join_baseline" ] || { echo "bench_gate: missing $join_baseline" >&2; exit 1; }
[ -f "$update_baseline" ] || { echo "bench_gate: missing $update_baseline" >&2; exit 1; }
join_base=$(extract_join "$join_baseline")
case "$join_base" in
  ''|0) echo "bench_gate: no domains=1 pairs_per_sec in $join_baseline" >&2; exit 1 ;;
esac
update_base=$(extract_update "$update_baseline")
case "$update_base" in
  ''|0) echo "bench_gate: no ld_batch64_segs_per_sec in $update_baseline" >&2; exit 1 ;;
esac

if [ "${1:-}" = "--smoke" ]; then
  echo "bench_gate: smoke OK (baselines ${join_base} pairs/s, ${update_base} segs/s)"
  exit 0
fi

fail=0

tmp=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp2=$(mktemp /tmp/bench_gate.XXXXXX.json)
trap 'rm -f "$tmp" "$tmp2"' EXIT

(cd "$root" && dune exec bench/main.exe -- parallel --json "$tmp" >/dev/null)
join_new=$(extract_join "$tmp")
case "$join_new" in
  ''|0) echo "bench_gate: benchmark produced no domains=1 pairs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$join_new" -v b="$join_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: join OK (${join_new} pairs/s vs baseline ${join_base}, floor 90%)"
else
  echo "bench_gate: join FAIL (${join_new} pairs/s is below 90% of baseline ${join_base})" >&2
  fail=1
fi

(cd "$root" && dune exec bench/main.exe -- update --json "$tmp2" >/dev/null)
update_new=$(extract_update "$tmp2")
case "$update_new" in
  ''|0) echo "bench_gate: benchmark produced no ld_batch64_segs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$update_new" -v b="$update_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: update OK (${update_new} segs/s vs baseline ${update_base}, floor 90%)"
else
  echo "bench_gate: update FAIL (${update_new} segs/s is below 90% of baseline ${update_base})" >&2
  fail=1
fi

exit $fail
