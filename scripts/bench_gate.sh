#!/bin/sh
# Perf regression gate for the structural-join path.
#
#   scripts/bench_gate.sh           run the parallel-join benchmark and
#                                   fail if single-domain throughput
#                                   drops more than 10% below the
#                                   committed BENCH_join.json baseline
#   scripts/bench_gate.sh --smoke   no benchmark run: just check that
#                                   the committed baseline parses and
#                                   carries a positive throughput (wired
#                                   into `dune runtest` so a malformed
#                                   or stale baseline fails fast)
#
# The baseline is regenerated with:
#   dune exec bench/main.exe -- parallel
# which rewrites BENCH_join.json in place; commit it alongside any
# intentional perf change.
set -eu

root=$(dirname "$0")/..
baseline="$root/BENCH_join.json"

# Pulls the domains=1 pairs_per_sec out of a BENCH_join.json.  The
# bench writer emits compact single-line JSON with a fixed key order
# inside each series entry, so stream-editing is enough — no jq here.
extract() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"domains":1,[^}]*' \
    | head -n 1 \
    | grep -o '"pairs_per_sec":[0-9.eE+-]*' \
    | cut -d: -f2
}

[ -f "$baseline" ] || { echo "bench_gate: missing $baseline" >&2; exit 1; }
base=$(extract "$baseline")
case "$base" in
  ''|0) echo "bench_gate: no domains=1 pairs_per_sec in $baseline" >&2; exit 1 ;;
esac

if [ "${1:-}" = "--smoke" ]; then
  echo "bench_gate: smoke OK (baseline ${base} pairs/s)"
  exit 0
fi

tmp=$(mktemp /tmp/bench_gate.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT
(cd "$root" && dune exec bench/main.exe -- parallel --json "$tmp" >/dev/null)
new=$(extract "$tmp")
case "$new" in
  ''|0) echo "bench_gate: benchmark produced no domains=1 pairs_per_sec" >&2; exit 1 ;;
esac

if awk -v n="$new" -v b="$base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: OK (${new} pairs/s vs baseline ${base}, floor 90%)"
else
  echo "bench_gate: FAIL (${new} pairs/s is below 90% of baseline ${base})" >&2
  exit 1
fi
