#!/bin/sh
# Perf regression gate for the structural-join, update-ingestion and
# concurrent-read paths.
#
#   scripts/bench_gate.sh           run the parallel-join, batched-
#                                   update and MVCC mixed read/write
#                                   benchmarks and fail if single-
#                                   domain join throughput or LD
#                                   batch-64 update throughput drops
#                                   more than 10% below its committed
#                                   baseline (BENCH_join.json /
#                                   BENCH_update.json), or if p99 read
#                                   latency under a streaming writer
#                                   leaves the acceptance envelope:
#                                   mixed p99 must stay within 1.25x
#                                   the same run's read-only p99, or
#                                   at worst within 10% of the
#                                   committed ratio (BENCH_mvcc.json)
#   scripts/bench_gate.sh --smoke   no benchmark run: just check that
#                                   the committed baselines parse,
#                                   carry positive throughputs, and
#                                   that the committed MVCC ratio is
#                                   inside its acceptance bound (wired
#                                   into `dune runtest` so a malformed
#                                   or stale baseline fails fast)
#
# The baselines are regenerated with:
#   dune exec bench/main.exe -- parallel
#   dune exec bench/main.exe -- update
#   dune exec bench/main.exe -- mvcc
# which rewrite BENCH_join.json / BENCH_update.json / BENCH_mvcc.json
# in place; commit them alongside any intentional perf change.
set -eu

root=$(dirname "$0")/..
join_baseline="$root/BENCH_join.json"
update_baseline="$root/BENCH_update.json"
mvcc_baseline="$root/BENCH_mvcc.json"

# Pulls the domains=1 pairs_per_sec out of a BENCH_join.json.  The
# bench writer emits compact single-line JSON with a fixed key order
# inside each series entry, so stream-editing is enough — no jq here.
extract_join() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"domains":1,[^}]*' \
    | head -n 1 \
    | grep -o '"pairs_per_sec":[0-9.eE+-]*' \
    | cut -d: -f2
}

# Pulls the top-level ld_batch64_segs_per_sec out of a
# BENCH_update.json (the gate metric: LD engine, WAL off, batch 64).
extract_update() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"ld_batch64_segs_per_sec":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

# Pulls the top-level p99_ratio (mixed-phase p99 read latency over the
# same run's read-only p99) out of a BENCH_mvcc.json.  The ratio is
# the gate metric because it is normalized against host weather: both
# phases run interleaved in one process on one machine.
extract_mvcc() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"p99_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

[ -f "$join_baseline" ] || { echo "bench_gate: missing $join_baseline" >&2; exit 1; }
[ -f "$update_baseline" ] || { echo "bench_gate: missing $update_baseline" >&2; exit 1; }
join_base=$(extract_join "$join_baseline")
case "$join_base" in
  ''|0) echo "bench_gate: no domains=1 pairs_per_sec in $join_baseline" >&2; exit 1 ;;
esac
update_base=$(extract_update "$update_baseline")
case "$update_base" in
  ''|0) echo "bench_gate: no ld_batch64_segs_per_sec in $update_baseline" >&2; exit 1 ;;
esac
[ -f "$mvcc_baseline" ] || { echo "bench_gate: missing $mvcc_baseline" >&2; exit 1; }
mvcc_base=$(extract_mvcc "$mvcc_baseline")
case "$mvcc_base" in
  ''|0) echo "bench_gate: no p99_ratio in $mvcc_baseline" >&2; exit 1 ;;
esac
if ! awk -v r="$mvcc_base" 'BEGIN { exit !(r + 0 <= 1.25) }'; then
  echo "bench_gate: committed MVCC p99 ratio ${mvcc_base} exceeds the 1.25x acceptance bound" >&2
  exit 1
fi

if [ "${1:-}" = "--smoke" ]; then
  echo "bench_gate: smoke OK (baselines ${join_base} pairs/s, ${update_base} segs/s, mvcc p99 ratio ${mvcc_base})"
  exit 0
fi

fail=0

tmp=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp2=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp3=$(mktemp /tmp/bench_gate.XXXXXX.json)
trap 'rm -f "$tmp" "$tmp2" "$tmp3"' EXIT

(cd "$root" && dune exec bench/main.exe -- parallel --json "$tmp" >/dev/null)
join_new=$(extract_join "$tmp")
case "$join_new" in
  ''|0) echo "bench_gate: benchmark produced no domains=1 pairs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$join_new" -v b="$join_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: join OK (${join_new} pairs/s vs baseline ${join_base}, floor 90%)"
else
  echo "bench_gate: join FAIL (${join_new} pairs/s is below 90% of baseline ${join_base})" >&2
  fail=1
fi

(cd "$root" && dune exec bench/main.exe -- update --json "$tmp2" >/dev/null)
update_new=$(extract_update "$tmp2")
case "$update_new" in
  ''|0) echo "bench_gate: benchmark produced no ld_batch64_segs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$update_new" -v b="$update_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: update OK (${update_new} segs/s vs baseline ${update_base}, floor 90%)"
else
  echo "bench_gate: update FAIL (${update_new} segs/s is below 90% of baseline ${update_base})" >&2
  fail=1
fi

# p99 read latency under a streaming writer: the fresh run's
# mixed/read-only p99 ratio must sit inside the 1.25x acceptance
# bound, or — so a committed ratio already near the bound still gets
# the same 10% grace the throughput gates have — within the committed
# ratio's 90% threshold (ratio is lower-is-better, hence base / 0.9).
(cd "$root" && dune exec bench/main.exe -- mvcc --json "$tmp3" >/dev/null)
mvcc_new=$(extract_mvcc "$tmp3")
case "$mvcc_new" in
  ''|0) echo "bench_gate: benchmark produced no p99_ratio" >&2; exit 1 ;;
esac
if awk -v n="$mvcc_new" -v b="$mvcc_base" 'BEGIN { exit !(n + 0 <= 1.25 || n + 0 <= b / 0.9) }'; then
  echo "bench_gate: mvcc OK (p99 ratio ${mvcc_new} vs baseline ${mvcc_base}, bound 1.25x)"
else
  echo "bench_gate: mvcc FAIL (p99 ratio ${mvcc_new} exceeds the 1.25x bound and baseline ${mvcc_base} + 10%)" >&2
  fail=1
fi

exit $fail
