#!/bin/sh
# Perf regression gate for the structural-join, update-ingestion,
# concurrent-read and autonomous-maintenance paths.
#
#   scripts/bench_gate.sh           run the parallel-join, batched-
#                                   update, MVCC mixed read/write and
#                                   maintenance-churn benchmarks and
#                                   fail if single-domain join
#                                   throughput or LD batch-64 update
#                                   throughput drops more than 10%
#                                   below its committed baseline
#                                   (BENCH_join.json /
#                                   BENCH_update.json), if p99 read
#                                   latency under a streaming writer
#                                   leaves the acceptance envelope:
#                                   mixed p99 must stay within 1.25x
#                                   the same run's read-only p99, or
#                                   at worst within 10% of the
#                                   committed ratio (BENCH_mvcc.json),
#                                   or if the churn week leaves the
#                                   maintenance envelope: auto-
#                                   maintained p99 within 1.15x a
#                                   freshly rebuilt store (same 10%
#                                   grace) while manual-only stays
#                                   measurably degraded above 4x
#                                   (BENCH_maint.json), or if the
#                                   cost-based twig planner stops
#                                   paying: planned results must equal
#                                   naive's, beat naive >= 3x on at
#                                   least half the reversed-
#                                   selectivity suite, and never run
#                                   a query > 1.1x slower
#                                   (BENCH_plan.json), or if the
#                                   paged storage backend leaves its
#                                   envelope: warm paged query
#                                   throughput >= 0.5x in-memory,
#                                   pool hit rate >= 0.9, the
#                                   document really beyond 2x the
#                                   pool budget, extents identical to
#                                   in-memory, and the in-memory path
#                                   itself within 0.95x of the
#                                   committed BENCH_join.json
#                                   domains=1 figure (so the storage-
#                                   backend indirection stays free)
#                                   (BENCH_paged.json)
#   scripts/bench_gate.sh --smoke   no benchmark run: just check that
#                                   the committed baselines parse,
#                                   carry positive throughputs, and
#                                   that the committed MVCC and
#                                   maintenance ratios are inside
#                                   their acceptance bounds (wired
#                                   into `dune runtest` so a malformed
#                                   or stale baseline fails fast)
#
# The baselines are regenerated with:
#   dune exec bench/main.exe -- parallel
#   dune exec bench/main.exe -- update
#   dune exec bench/main.exe -- mvcc
#   dune exec bench/main.exe -- maint
#   dune exec bench/main.exe -- plan
#   dune exec bench/main.exe -- paged
# which rewrite BENCH_join.json / BENCH_update.json / BENCH_mvcc.json
# / BENCH_maint.json / BENCH_plan.json / BENCH_paged.json in place;
# commit them alongside any intentional perf change.
set -eu

root=$(dirname "$0")/..
join_baseline="$root/BENCH_join.json"
update_baseline="$root/BENCH_update.json"
mvcc_baseline="$root/BENCH_mvcc.json"
maint_baseline="$root/BENCH_maint.json"
plan_baseline="$root/BENCH_plan.json"
paged_baseline="$root/BENCH_paged.json"

# Pulls the domains=1 pairs_per_sec out of a BENCH_join.json.  The
# bench writer emits compact single-line JSON with a fixed key order
# inside each series entry, so stream-editing is enough — no jq here.
extract_join() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"domains":1,[^}]*' \
    | head -n 1 \
    | grep -o '"pairs_per_sec":[0-9.eE+-]*' \
    | cut -d: -f2
}

# Pulls the top-level ld_batch64_segs_per_sec out of a
# BENCH_update.json (the gate metric: LD engine, WAL off, batch 64).
extract_update() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"ld_batch64_segs_per_sec":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

# Pulls the top-level p99_ratio (mixed-phase p99 read latency over the
# same run's read-only p99) out of a BENCH_mvcc.json.  The ratio is
# the gate metric because it is normalized against host weather: both
# phases run interleaved in one process on one machine.
extract_mvcc() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"p99_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

# Pulls auto_ratio / manual_ratio (steady-state sweep p99 over the
# freshly rebuilt store's p99, auto-maintained and manual-only churn
# stores) out of a BENCH_maint.json.  Ratios against the same-run
# fresh baseline, so host weather cancels.
extract_maint_auto() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"auto_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_maint_manual() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"manual_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

# Pulls frac_ge3 (fraction of the reversed-selectivity twig suite
# where planned evaluation is >= 3x naive), worst_ratio (max
# planned/naive time — the planner-overhead bound) and
# fingerprints_ok (all plans returned identical extents) out of a
# BENCH_plan.json.
extract_plan_frac() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"frac_ge3":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_plan_worst() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"worst_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_plan_fp() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"fingerprints_ok":[a-z]*' \
    | head -n 1 \
    | cut -d: -f2
}

# Paged-backend metrics out of a BENCH_paged.json: in-memory join
# throughput measured by the same run (compared against the committed
# BENCH_join.json domains=1 figure), the warm paged/mem throughput
# ratio, the buffer-pool hit rate, and the beyond_ram / results_ok
# booleans that make the other numbers meaningful.
extract_paged_mem() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"mem_pairs_per_sec":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_paged_warm() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"warm_ratio":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_paged_hit() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"hit_rate":[0-9.eE+-]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_paged_beyond() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"beyond_ram":[a-z]*' \
    | head -n 1 \
    | cut -d: -f2
}

extract_paged_ok() {
  tr -d ' \t\n' < "$1" \
    | grep -o '"results_ok":[a-z]*' \
    | head -n 1 \
    | cut -d: -f2
}

[ -f "$join_baseline" ] || { echo "bench_gate: missing $join_baseline" >&2; exit 1; }
[ -f "$update_baseline" ] || { echo "bench_gate: missing $update_baseline" >&2; exit 1; }
join_base=$(extract_join "$join_baseline")
case "$join_base" in
  ''|0) echo "bench_gate: no domains=1 pairs_per_sec in $join_baseline" >&2; exit 1 ;;
esac
update_base=$(extract_update "$update_baseline")
case "$update_base" in
  ''|0) echo "bench_gate: no ld_batch64_segs_per_sec in $update_baseline" >&2; exit 1 ;;
esac
[ -f "$mvcc_baseline" ] || { echo "bench_gate: missing $mvcc_baseline" >&2; exit 1; }
mvcc_base=$(extract_mvcc "$mvcc_baseline")
case "$mvcc_base" in
  ''|0) echo "bench_gate: no p99_ratio in $mvcc_baseline" >&2; exit 1 ;;
esac
if ! awk -v r="$mvcc_base" 'BEGIN { exit !(r + 0 <= 1.25) }'; then
  echo "bench_gate: committed MVCC p99 ratio ${mvcc_base} exceeds the 1.25x acceptance bound" >&2
  exit 1
fi
[ -f "$maint_baseline" ] || { echo "bench_gate: missing $maint_baseline" >&2; exit 1; }
maint_auto_base=$(extract_maint_auto "$maint_baseline")
case "$maint_auto_base" in
  ''|0) echo "bench_gate: no auto_ratio in $maint_baseline" >&2; exit 1 ;;
esac
maint_manual_base=$(extract_maint_manual "$maint_baseline")
case "$maint_manual_base" in
  ''|0) echo "bench_gate: no manual_ratio in $maint_baseline" >&2; exit 1 ;;
esac
if ! awk -v r="$maint_auto_base" 'BEGIN { exit !(r + 0 <= 1.15) }'; then
  echo "bench_gate: committed maint auto_ratio ${maint_auto_base} exceeds the 1.15x acceptance bound" >&2
  exit 1
fi
if ! awk -v r="$maint_manual_base" 'BEGIN { exit !(r + 0 >= 4.0) }'; then
  echo "bench_gate: committed maint manual_ratio ${maint_manual_base} is below 4x — the un-maintained store no longer degrades, so the comparison is vacuous" >&2
  exit 1
fi
[ -f "$plan_baseline" ] || { echo "bench_gate: missing $plan_baseline" >&2; exit 1; }
plan_frac_base=$(extract_plan_frac "$plan_baseline")
case "$plan_frac_base" in
  '') echo "bench_gate: no frac_ge3 in $plan_baseline" >&2; exit 1 ;;
esac
plan_worst_base=$(extract_plan_worst "$plan_baseline")
case "$plan_worst_base" in
  ''|0) echo "bench_gate: no worst_ratio in $plan_baseline" >&2; exit 1 ;;
esac
if [ "$(extract_plan_fp "$plan_baseline")" != "true" ]; then
  echo "bench_gate: committed plan baseline has fingerprints_ok != true — planned results diverged from naive" >&2
  exit 1
fi
if ! awk -v f="$plan_frac_base" 'BEGIN { exit !(f + 0 >= 0.5) }'; then
  echo "bench_gate: committed plan frac_ge3 ${plan_frac_base} is below the 0.5 floor — planning no longer pays for the twig suite" >&2
  exit 1
fi
if ! awk -v r="$plan_worst_base" 'BEGIN { exit !(r + 0 <= 1.1) }'; then
  echo "bench_gate: committed plan worst_ratio ${plan_worst_base} exceeds the 1.1x never-slower bound" >&2
  exit 1
fi
[ -f "$paged_baseline" ] || { echo "bench_gate: missing $paged_baseline" >&2; exit 1; }
paged_mem_base=$(extract_paged_mem "$paged_baseline")
case "$paged_mem_base" in
  ''|0) echo "bench_gate: no mem_pairs_per_sec in $paged_baseline" >&2; exit 1 ;;
esac
paged_warm_base=$(extract_paged_warm "$paged_baseline")
case "$paged_warm_base" in
  ''|0) echo "bench_gate: no warm_ratio in $paged_baseline" >&2; exit 1 ;;
esac
paged_hit_base=$(extract_paged_hit "$paged_baseline")
case "$paged_hit_base" in
  ''|0) echo "bench_gate: no hit_rate in $paged_baseline" >&2; exit 1 ;;
esac
if [ "$(extract_paged_beyond "$paged_baseline")" != "true" ]; then
  echo "bench_gate: committed paged baseline has beyond_ram != true — the document no longer exceeds 2x the pool budget, so the warm numbers prove nothing" >&2
  exit 1
fi
if [ "$(extract_paged_ok "$paged_baseline")" != "true" ]; then
  echo "bench_gate: committed paged baseline has results_ok != true — paged extents diverged from in-memory" >&2
  exit 1
fi
if ! awk -v r="$paged_warm_base" 'BEGIN { exit !(r + 0 >= 0.5) }'; then
  echo "bench_gate: committed paged warm_ratio ${paged_warm_base} is below the 0.5x floor" >&2
  exit 1
fi
if ! awk -v h="$paged_hit_base" 'BEGIN { exit !(h + 0 >= 0.9) }'; then
  echo "bench_gate: committed paged hit_rate ${paged_hit_base} is below the 0.9 floor" >&2
  exit 1
fi
if ! awk -v m="$paged_mem_base" -v j="$join_base" 'BEGIN { exit !(m + 0 >= 0.95 * j) }'; then
  echo "bench_gate: committed paged mem_pairs_per_sec ${paged_mem_base} is below 0.95x the committed join baseline ${join_base} — the storage-backend indirection is taxing the in-memory path" >&2
  exit 1
fi

if [ "${1:-}" = "--smoke" ]; then
  echo "bench_gate: smoke OK (baselines ${join_base} pairs/s, ${update_base} segs/s, mvcc p99 ratio ${mvcc_base}, maint ratios ${maint_auto_base}/${maint_manual_base}, plan ${plan_frac_base} >=3x / worst ${plan_worst_base}, paged warm ${paged_warm_base} / hit ${paged_hit_base})"
  exit 0
fi

fail=0

tmp=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp2=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp3=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp4=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp5=$(mktemp /tmp/bench_gate.XXXXXX.json)
tmp6=$(mktemp /tmp/bench_gate.XXXXXX.json)
trap 'rm -f "$tmp" "$tmp2" "$tmp3" "$tmp4" "$tmp5" "$tmp6"' EXIT

(cd "$root" && dune exec bench/main.exe -- parallel --json "$tmp" >/dev/null)
join_new=$(extract_join "$tmp")
case "$join_new" in
  ''|0) echo "bench_gate: benchmark produced no domains=1 pairs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$join_new" -v b="$join_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: join OK (${join_new} pairs/s vs baseline ${join_base}, floor 90%)"
else
  echo "bench_gate: join FAIL (${join_new} pairs/s is below 90% of baseline ${join_base})" >&2
  fail=1
fi

(cd "$root" && dune exec bench/main.exe -- update --json "$tmp2" >/dev/null)
update_new=$(extract_update "$tmp2")
case "$update_new" in
  ''|0) echo "bench_gate: benchmark produced no ld_batch64_segs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$update_new" -v b="$update_base" 'BEGIN { exit !(n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: update OK (${update_new} segs/s vs baseline ${update_base}, floor 90%)"
else
  echo "bench_gate: update FAIL (${update_new} segs/s is below 90% of baseline ${update_base})" >&2
  fail=1
fi

# p99 read latency under a streaming writer: the fresh run's
# mixed/read-only p99 ratio must sit inside the 1.25x acceptance
# bound, or — so a committed ratio already near the bound still gets
# the same 10% grace the throughput gates have — within the committed
# ratio's 90% threshold (ratio is lower-is-better, hence base / 0.9).
(cd "$root" && dune exec bench/main.exe -- mvcc --json "$tmp3" >/dev/null)
mvcc_new=$(extract_mvcc "$tmp3")
case "$mvcc_new" in
  ''|0) echo "bench_gate: benchmark produced no p99_ratio" >&2; exit 1 ;;
esac
if awk -v n="$mvcc_new" -v b="$mvcc_base" 'BEGIN { exit !(n + 0 <= 1.25 || n + 0 <= b / 0.9) }'; then
  echo "bench_gate: mvcc OK (p99 ratio ${mvcc_new} vs baseline ${mvcc_base}, bound 1.25x)"
else
  echo "bench_gate: mvcc FAIL (p99 ratio ${mvcc_new} exceeds the 1.25x bound and baseline ${mvcc_base} + 10%)" >&2
  fail=1
fi

# Autonomous maintenance under churn: the auto-maintained store's
# steady-state sweep p99 must sit within the 1.15x-of-fresh acceptance
# bound (or within 10% grace of the committed ratio, as above), and
# the manual-only store must remain measurably degraded — if it stops
# degrading, the churn schedule no longer creates debt and the auto
# result proves nothing.
(cd "$root" && dune exec bench/main.exe -- maint --json "$tmp4" >/dev/null)
maint_auto_new=$(extract_maint_auto "$tmp4")
case "$maint_auto_new" in
  ''|0) echo "bench_gate: benchmark produced no auto_ratio" >&2; exit 1 ;;
esac
maint_manual_new=$(extract_maint_manual "$tmp4")
case "$maint_manual_new" in
  ''|0) echo "bench_gate: benchmark produced no manual_ratio" >&2; exit 1 ;;
esac
if awk -v n="$maint_auto_new" -v b="$maint_auto_base" 'BEGIN { exit !(n + 0 <= 1.15 || n + 0 <= b / 0.9) }'; then
  echo "bench_gate: maint OK (auto p99 ratio ${maint_auto_new} vs baseline ${maint_auto_base}, bound 1.15x)"
else
  echo "bench_gate: maint FAIL (auto p99 ratio ${maint_auto_new} exceeds the 1.15x bound and baseline ${maint_auto_base} + 10%)" >&2
  fail=1
fi
if awk -v n="$maint_manual_new" 'BEGIN { exit !(n + 0 >= 4.0) }'; then
  echo "bench_gate: maint debt evidence OK (manual-only p99 ratio ${maint_manual_new}, floor 4x)"
else
  echo "bench_gate: maint FAIL (manual-only p99 ratio ${maint_manual_new} below the 4x degradation floor — comparison is vacuous)" >&2
  fail=1
fi

# Cost-based twig planning: planned evaluation must return extents
# identical to the naive order (hard fail otherwise), beat naive >= 3x
# on at least half the reversed-selectivity suite, and never run a
# query more than 1.1x slower than naive — with the same 10% grace
# against the committed worst_ratio the other gates have.
(cd "$root" && dune exec bench/main.exe -- plan --json "$tmp5" >/dev/null)
plan_fp_new=$(extract_plan_fp "$tmp5")
if [ "$plan_fp_new" != "true" ]; then
  echo "bench_gate: plan FAIL (planned results diverged from naive — fingerprints_ok=${plan_fp_new:-missing})" >&2
  fail=1
fi
plan_frac_new=$(extract_plan_frac "$tmp5")
case "$plan_frac_new" in
  '') echo "bench_gate: benchmark produced no frac_ge3" >&2; exit 1 ;;
esac
plan_worst_new=$(extract_plan_worst "$tmp5")
case "$plan_worst_new" in
  ''|0) echo "bench_gate: benchmark produced no worst_ratio" >&2; exit 1 ;;
esac
if awk -v f="$plan_frac_new" 'BEGIN { exit !(f + 0 >= 0.5) }'; then
  echo "bench_gate: plan speedup OK (frac >=3x ${plan_frac_new} vs baseline ${plan_frac_base}, floor 0.5)"
else
  echo "bench_gate: plan FAIL (frac >=3x ${plan_frac_new} is below the 0.5 floor)" >&2
  fail=1
fi
if awk -v n="$plan_worst_new" -v b="$plan_worst_base" 'BEGIN { exit !(n + 0 <= 1.1 || n + 0 <= b / 0.9) }'; then
  echo "bench_gate: plan overhead OK (worst planned/naive ${plan_worst_new} vs baseline ${plan_worst_base}, bound 1.1x)"
else
  echo "bench_gate: plan FAIL (worst planned/naive ${plan_worst_new} exceeds the 1.1x bound and baseline ${plan_worst_base} + 10%)" >&2
  fail=1
fi

# Paged storage backend: the beyond-RAM run must keep its answers
# identical to in-memory (hard fail), keep the warm paged/mem
# throughput ratio above the 0.5x floor (with the usual 10% grace
# against the committed ratio), keep the pool hit rate above 0.9, and
# keep the same run's in-memory throughput within 0.95x of the
# committed join baseline so the backend indirection stays free when
# nobody asked for pages.
(cd "$root" && dune exec bench/main.exe -- paged --json "$tmp6" >/dev/null)
if [ "$(extract_paged_ok "$tmp6")" != "true" ]; then
  echo "bench_gate: paged FAIL (paged extents diverged from in-memory — results_ok != true)" >&2
  fail=1
fi
if [ "$(extract_paged_beyond "$tmp6")" != "true" ]; then
  echo "bench_gate: paged FAIL (document no longer exceeds 2x the pool budget — beyond_ram != true)" >&2
  fail=1
fi
paged_warm_new=$(extract_paged_warm "$tmp6")
case "$paged_warm_new" in
  ''|0) echo "bench_gate: benchmark produced no warm_ratio" >&2; exit 1 ;;
esac
paged_hit_new=$(extract_paged_hit "$tmp6")
case "$paged_hit_new" in
  ''|0) echo "bench_gate: benchmark produced no hit_rate" >&2; exit 1 ;;
esac
paged_mem_new=$(extract_paged_mem "$tmp6")
case "$paged_mem_new" in
  ''|0) echo "bench_gate: benchmark produced no mem_pairs_per_sec" >&2; exit 1 ;;
esac
if awk -v n="$paged_warm_new" -v b="$paged_warm_base" 'BEGIN { exit !(n + 0 >= 0.5 || n + 0 >= 0.9 * b) }'; then
  echo "bench_gate: paged warm OK (warm ratio ${paged_warm_new} vs baseline ${paged_warm_base}, floor 0.5x)"
else
  echo "bench_gate: paged FAIL (warm ratio ${paged_warm_new} is below the 0.5x floor and baseline ${paged_warm_base} - 10%)" >&2
  fail=1
fi
if awk -v h="$paged_hit_new" 'BEGIN { exit !(h + 0 >= 0.9) }'; then
  echo "bench_gate: paged hit rate OK (${paged_hit_new}, floor 0.9)"
else
  echo "bench_gate: paged FAIL (pool hit rate ${paged_hit_new} is below the 0.9 floor)" >&2
  fail=1
fi
if awk -v m="$paged_mem_new" -v j="$join_base" 'BEGIN { exit !(m + 0 >= 0.95 * j) }'; then
  echo "bench_gate: paged mem path OK (${paged_mem_new} pairs/s vs join baseline ${join_base}, floor 95%)"
else
  echo "bench_gate: paged FAIL (in-memory path ${paged_mem_new} pairs/s is below 0.95x the committed join baseline ${join_base})" >&2
  fail=1
fi

exit $fail
