(** A position-tracking XML parser.

    Segments arrive as plain text and elements are labelled by byte
    offsets, so the parser records, for every element, the offset of
    its ['<'] and the offset one past its closing ['>'].  The supported
    subset is what the paper's workloads need: elements, attributes,
    character data with the five predefined entities, CDATA sections,
    comments and processing instructions.  DTDs are not supported.

    Every entry point takes resource {!limits} (defaulted generously)
    so a single hostile segment cannot exhaust the stack or memory:
    nesting beyond [max_depth], more than [max_attrs] attributes on
    one element, or input past [max_input_bytes] raise {!Parse_error}
    like any other malformed input — the parser is total and
    stack-safe for {e any} byte string under the default limits. *)

exception Parse_error of { pos : int; msg : string }

type limits = {
  max_depth : int;  (** maximum element nesting (the recursion bound) *)
  max_attrs : int;  (** maximum attributes on a single element *)
  max_input_bytes : int;  (** maximum input size accepted at all *)
}

val default_limits : limits
(** [{ max_depth = 4096; max_attrs = 512; max_input_bytes = 256 MiB }]
    — far above anything the workloads produce, low enough that the
    recursive-descent parser cannot overflow the stack. *)

val line_col : string -> int -> int * int
(** [line_col input pos] is the 1-based (line, column) of byte [pos];
    [pos] is clamped into [0, length].  Columns count bytes from the
    last ['\n']. *)

val error_message : input:string -> pos:int -> msg:string -> string
(** Renders a {!Parse_error} against its input as
    ["parse error at line L, column C (byte P): msg"]. *)

val parse_fragment : ?limits:limits -> string -> Tree.node list
(** Parses a well-formed XML fragment: a sequence of elements, text and
    miscellaneous nodes.  Every returned node is annotated with its
    byte offsets in the input.
    @raise Parse_error on ill-formed input or a limit violation. *)

val parse_document : ?limits:limits -> string -> Tree.element
(** Parses a document with exactly one root element (leading or
    trailing whitespace, comments and processing instructions are
    allowed around it).
    @raise Parse_error on ill-formed input or multiple roots. *)

val parse_fragment_result : ?limits:limits -> string -> (Tree.node list, string) result
(** Exception-free variant; the error string carries line, column and
    byte position (see {!error_message}). *)

val is_well_formed_fragment : ?limits:limits -> string -> bool
