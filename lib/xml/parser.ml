exception Parse_error of { pos : int; msg : string }

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Parse_error { pos; msg })) fmt

type limits = { max_depth : int; max_attrs : int; max_input_bytes : int }

let default_limits =
  { max_depth = 4096; max_attrs = 512; max_input_bytes = 256 * 1024 * 1024 }

let line_col input pos =
  let pos = max 0 (min pos (String.length input)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

let error_message ~input ~pos ~msg =
  let line, col = line_col input pos in
  Printf.sprintf "parse error at line %d, column %d (byte %d): %s" line col pos msg

type state = {
  input : string;
  len : int;
  mutable pos : int;
  limits : limits;
  mutable depth : int;  (* open elements; bounds the recursion *)
}

let peek st = if st.pos < st.len then Some st.input.[st.pos] else None
let eof st = st.pos >= st.len

let advance st = st.pos <- st.pos + 1

let expect_string st s =
  let n = String.length s in
  if st.pos + n > st.len || String.sub st.input st.pos n <> s then
    fail st.pos "expected %S" s;
  st.pos <- st.pos + n

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.input st.pos n = s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let skip_space st =
  while (not (eof st)) && is_space st.input.[st.pos] do
    advance st
  done

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> fail st.pos "expected a name");
  while (not (eof st)) && is_name_char st.input.[st.pos] do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decodes a character or entity reference positioned on '&'. *)
let parse_reference st buf =
  let start = st.pos in
  advance st;
  let semi =
    match String.index_from_opt st.input st.pos ';' with
    | Some i when i - start <= 12 -> i
    | _ -> fail start "unterminated entity reference"
  in
  let body = String.sub st.input st.pos (semi - st.pos) in
  st.pos <- semi + 1;
  match body with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with _ -> fail start "bad character reference &%s;" body
      in
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else begin
        (* Minimal UTF-8 encoder for the few non-ASCII references the
           synthetic workloads may produce. *)
        let add c = Buffer.add_char buf (Char.chr c) in
        if code < 0x800 then begin
          add (0xC0 lor (code lsr 6));
          add (0x80 lor (code land 0x3F))
        end
        else if code < 0x10000 then begin
          add (0xE0 lor (code lsr 12));
          add (0x80 lor ((code lsr 6) land 0x3F));
          add (0x80 lor (code land 0x3F))
        end
        else begin
          add (0xF0 lor (code lsr 18));
          add (0x80 lor ((code lsr 12) land 0x3F));
          add (0x80 lor ((code lsr 6) land 0x3F));
          add (0x80 lor (code land 0x3F))
        end
      end
    end
    else fail start "unknown entity &%s;" body

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
      advance st;
      q
    | _ -> fail st.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated attribute value"
    | Some c when c = quote ->
      advance st;
      Buffer.contents buf
    | Some '&' ->
      parse_reference st buf;
      go ()
    | Some '<' -> fail st.pos "'<' in attribute value"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ()

let parse_attrs st =
  let rec go n acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let a_start = st.pos in
      if n >= st.limits.max_attrs then
        fail a_start "more than %d attributes on one element" st.limits.max_attrs;
      let attr_name = parse_name st in
      skip_space st;
      expect_string st "=";
      skip_space st;
      let attr_value = parse_attr_value st in
      go (n + 1) ({ Tree.attr_name; attr_value; a_start; a_end = st.pos } :: acc)
    | _ -> List.rev acc
  in
  go 0 []

(* Scans until [delim] and returns the raw contents; [st.pos] must be
   just past the opening marker. *)
let raw_until st ~start_err delim =
  let start = st.pos in
  let rec find i =
    if i + String.length delim > st.len then fail start "unterminated %s" start_err
    else if String.sub st.input i (String.length delim) = delim then i
    else find (i + 1)
  in
  let stop = find st.pos in
  let body = String.sub st.input start (stop - start) in
  st.pos <- stop + String.length delim;
  body

let parse_text st =
  let start = st.pos in
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None | Some '<' -> ()
    | Some '&' ->
      parse_reference st buf;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  { Tree.content = Buffer.contents buf; t_start = start; t_end = st.pos }

let rec parse_element st =
  st.depth <- st.depth + 1;
  if st.depth > st.limits.max_depth then
    fail st.pos "element nesting exceeds the depth limit (%d)" st.limits.max_depth;
  let e = parse_element_body st in
  st.depth <- st.depth - 1;
  e

and parse_element_body st =
  let start = st.pos in
  expect_string st "<";
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  if looking_at st "/>" then begin
    st.pos <- st.pos + 2;
    { Tree.tag; attrs; children = []; e_start = start; e_end = st.pos }
  end
  else begin
    expect_string st ">";
    let children = parse_content st tag in
    (* parse_content consumed "</", the matching tag name and ">" *)
    { Tree.tag; attrs; children; e_start = start; e_end = st.pos }
  end

(* Parses child nodes of [tag] up to and including its end tag. *)
and parse_content st tag =
  let rec go acc =
    if eof st then fail st.pos "missing </%s>" tag
    else if looking_at st "</" then begin
      let close_pos = st.pos in
      st.pos <- st.pos + 2;
      let name = parse_name st in
      skip_space st;
      expect_string st ">";
      if name <> tag then fail close_pos "mismatched </%s>, expected </%s>" name tag;
      List.rev acc
    end
    else go (parse_node st :: acc)
  in
  go []

and parse_node st =
  if looking_at st "<!--" then begin
    let start = st.pos in
    st.pos <- st.pos + 4;
    let body = raw_until st ~start_err:"comment" "-->" in
    Tree.Comment { content = body; t_start = start; t_end = st.pos }
  end
  else if looking_at st "<![CDATA[" then begin
    let start = st.pos in
    st.pos <- st.pos + 9;
    let body = raw_until st ~start_err:"CDATA section" "]]>" in
    Tree.Cdata { content = body; t_start = start; t_end = st.pos }
  end
  else if looking_at st "<?" then begin
    let start = st.pos in
    st.pos <- st.pos + 2;
    let body = raw_until st ~start_err:"processing instruction" "?>" in
    Tree.Pi { content = body; t_start = start; t_end = st.pos }
  end
  else if looking_at st "<!" then fail st.pos "DTD declarations are not supported"
  else if looking_at st "<" then Tree.Element (parse_element st)
  else Tree.Text (parse_text st)

let parse_fragment ?(limits = default_limits) input =
  if String.length input > limits.max_input_bytes then
    fail limits.max_input_bytes "input of %d bytes exceeds the %d-byte limit"
      (String.length input) limits.max_input_bytes;
  let st = { input; len = String.length input; pos = 0; limits; depth = 0 } in
  let rec go acc =
    if eof st then List.rev acc
    else if looking_at st "</" then fail st.pos "unexpected end tag at top level"
    else go (parse_node st :: acc)
  in
  go []

let is_blank_text = function
  | Tree.Text t -> String.for_all is_space t.Tree.content
  | Tree.Comment _ | Tree.Pi _ -> true
  | Tree.Cdata _ | Tree.Element _ -> false

let parse_document ?limits input =
  let nodes = parse_fragment ?limits input in
  let roots =
    List.filter_map (function Tree.Element e -> Some e | _ -> None) nodes
  in
  let stray = List.exists (fun n -> not (is_blank_text n)) (List.filter (function Tree.Element _ -> false | _ -> true) nodes) in
  match roots with
  | [ root ] when not stray -> root
  | [ _ ] -> fail 0 "stray character data outside the root element"
  | [] -> fail 0 "no root element"
  | _ -> fail 0 "multiple root elements"

let parse_fragment_result ?limits input =
  match parse_fragment ?limits input with
  | nodes -> Ok nodes
  | exception Parse_error { pos; msg } -> Error (error_message ~input ~pos ~msg)

let is_well_formed_fragment ?limits input =
  match parse_fragment_result ?limits input with Ok _ -> true | Error _ -> false
