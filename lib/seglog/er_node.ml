open Lxu_util

type elem = { start : int; stop : int; level : int; tid : int }

type t = {
  sid : int;
  mutable gp : int;
  mutable len : int;
  lp : int;
  orig_len : int;
  base_level : int;
  text : string;
  mutable parent : t option;
  children : t Vec.t;
  tombstones : (int * int) Vec.t;
  mutable elems : elem Vec.t;
}

let make ~sid ~gp ~lp ~base_level ~text ~elems =
  {
    sid;
    gp;
    len = String.length text;
    lp;
    orig_len = String.length text;
    base_level;
    text;
    parent = None;
    children = Vec.create ();
    tombstones = Vec.create ();
    elems = Vec.of_list elems;
  }

let make_root () = make ~sid:0 ~gp:0 ~lp:0 ~base_level:0 ~text:"" ~elems:[]

let is_root t = t.sid = 0

let tombstoned_total t =
  Vec.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t.tombstones

let children_len t = Vec.fold_left (fun acc c -> acc + c.len) 0 t.children

let own_len t = t.orig_len - tombstoned_total t

let tombstoned_before t x =
  Vec.fold_left
    (fun acc (a, b) -> if b <= x then acc + (b - a) else if a < x then acc + (x - a) else acc)
    0 t.tombstones

let virt_of_own_phys t p =
  let v = ref p in
  (* Tombstones are sorted; each gap at or before the running virtual
     position pushes it further right. *)
  Vec.iter
    (fun (a, b) -> if a <= !v then v := !v + (b - a))
    t.tombstones;
  !v

let virt_of_own_phys_before t p =
  let v = ref p in
  (* Strict comparison: a physical offset on a gap boundary resolves to
     the smallest equivalent virtual position (before the gap). *)
  Vec.iter
    (fun (a, b) -> if a < !v then v := !v + (b - a))
    t.tombstones;
  !v

let add_tombstone t a b =
  if a < 0 || b > t.orig_len || a >= b then invalid_arg "Er_node.add_tombstone: bad range";
  (* Merge with every overlapping or adjacent existing tombstone. *)
  let merged_a = ref a and merged_b = ref b in
  let keep = Vec.create () in
  Vec.iter
    (fun (ta, tb) ->
      if tb < !merged_a || ta > !merged_b then Vec.push keep (ta, tb)
      else begin
        merged_a := min !merged_a ta;
        merged_b := max !merged_b tb
      end)
    t.tombstones;
  Vec.push keep (!merged_a, !merged_b);
  Vec.sort (fun (x, _) (y, _) -> Int.compare x y) keep;
  Vec.clear t.tombstones;
  Vec.iter (Vec.push t.tombstones) keep

let depth_at t x =
  let depth = ref t.base_level in
  let i = ref 0 in
  while !i < Vec.length t.elems && (Vec.get t.elems !i).start < x do
    let e = Vec.get t.elems !i in
    if e.stop > x then incr depth;
    incr i
  done;
  !depth

let path t =
  let rec up acc n = match n.parent with None -> n.sid :: acc | Some p -> up (n.sid :: acc) p in
  Array.of_list (up [] t)

let child_index_for_gp t gp =
  Vec.lower_bound t.children ~compare:(fun c -> if c.gp <= gp then -1 else 0)

let sum_children_upto t x ~incl_eq =
  Vec.fold_left
    (fun acc c -> if c.lp < x || (incl_eq && c.lp = x) then acc + c.len else acc)
    0 t.children

let phys_of_virt t x =
  t.gp + (x - tombstoned_before t x) + sum_children_upto t x ~incl_eq:true

let global_extent_span t ~start ~stop =
  let gstart = t.gp + (start - tombstoned_before t start) + sum_children_upto t start ~incl_eq:true in
  let gstop = t.gp + (stop - tombstoned_before t stop) + sum_children_upto t stop ~incl_eq:false in
  (gstart, gstop)

let global_extent t e = global_extent_span t ~start:e.start ~stop:e.stop

let rec iter_subtree t f =
  f t;
  Vec.iter (fun c -> iter_subtree c f) t.children

let rec clone n =
  (* [text] is immutable and [elems] is only ever replaced wholesale
     (never mutated in place), so both are shared; [tombstones] and
     [children] are mutated in place by updates and get fresh Vecs. *)
  let c =
    {
      sid = n.sid;
      gp = n.gp;
      len = n.len;
      lp = n.lp;
      orig_len = n.orig_len;
      base_level = n.base_level;
      text = n.text;
      parent = None;
      children = Vec.create ();
      tombstones = Vec.of_array (Vec.to_array n.tombstones);
      elems = n.elems;
    }
  in
  Vec.iter
    (fun k ->
      let kc = clone k in
      kc.parent <- Some c;
      Vec.push c.children kc)
    n.children;
  c

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec go n =
    if n.len <> own_len n + children_len n then
      fail "segment %d: len %d <> own %d + children %d" n.sid n.len (own_len n)
        (children_len n);
    if is_root n && n.gp <> 0 then fail "root gp moved to %d" n.gp;
    (* Tombstones: sorted, disjoint, within the original text. *)
    let prev_stop = ref (-1) in
    Vec.iter
      (fun (a, b) ->
        if a >= b || a < 0 || b > n.orig_len then fail "segment %d: bad tombstone" n.sid;
        if a <= !prev_stop then fail "segment %d: tombstones overlap or touch" n.sid;
        prev_stop := b)
      n.tombstones;
    (* Elements: strictly ordered starts, proper nesting, sane extents. *)
    let stack = ref [] in
    let prev_start = ref (-1) in
    Vec.iter
      (fun e ->
        if e.start >= e.stop || e.start < 0 || e.stop > n.orig_len then
          fail "segment %d: element extent [%d,%d) out of range" n.sid e.start e.stop;
        if e.start <= !prev_start then fail "segment %d: element starts not increasing" n.sid;
        prev_start := e.start;
        while (match !stack with top :: _ -> top.stop <= e.start | [] -> false) do
          stack := List.tl !stack
        done;
        (match !stack with
        | top :: _ when top.stop < e.stop -> fail "segment %d: elements overlap" n.sid
        | _ -> ());
        if e.level < n.base_level then fail "segment %d: element above base level" n.sid;
        stack := e :: !stack)
      n.elems;
    (* Children: inside the parent span, disjoint, gp- and lp-sorted. *)
    let cursor = ref n.gp in
    let prev_lp = ref min_int in
    Vec.iter
      (fun c ->
        (match c.parent with
        | Some p when p == n -> ()
        | _ -> fail "segment %d: child %d has wrong parent" n.sid c.sid);
        if c.gp < !cursor then fail "segment %d: children overlap at %d" n.sid c.sid;
        if c.gp + c.len > n.gp + n.len then fail "segment %d: child %d escapes" n.sid c.sid;
        if c.lp < !prev_lp then fail "segment %d: child lps out of order" n.sid;
        if c.lp < 0 || c.lp > n.orig_len then fail "segment %d: child %d lp out of range" n.sid c.sid;
        prev_lp := c.lp;
        cursor := c.gp + c.len;
        go c)
      n.children
  in
  go t
