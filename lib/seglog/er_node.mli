(** ER-tree nodes: one per XML segment (§3.2 of the paper).

    A node records the segment's mutable {e physical} global position
    [gp] and length [len], its immutable {e virtual} local position
    [lp] within its parent, its parent/children links (children sorted
    by [gp]) and the segment's element skeleton in virtual local
    coordinates.

    {b Coordinate model.}  Virtual coordinates are offsets into the
    segment's original text at insertion time; element labels and child
    [lp]s are virtual and never change.  Physical coordinates account
    for text later deleted from the segment, recorded as {e tombstone}
    ranges in virtual coordinates.  [len] is the physical length and
    additionally includes the lengths of all descendant segments, as
    maintained by the update algorithms of Figures 5 and 7. *)

type elem = { start : int; stop : int; level : int; tid : int }
(** An element of a segment: virtual local extent [start, stop) and
    absolute depth [level] in the super document. *)

type t = {
  sid : int;
  mutable gp : int;  (** physical global position of the first byte *)
  mutable len : int;  (** physical length, descendants included *)
  lp : int;  (** virtual local position within the parent; immutable *)
  orig_len : int;  (** length of the original segment text *)
  base_level : int;  (** depth of the insertion point *)
  text : string;  (** original segment text (materialization oracle) *)
  mutable parent : t option;
  children : t Lxu_util.Vec.t;  (** sorted by [gp] *)
  tombstones : (int * int) Lxu_util.Vec.t;
      (** deleted virtual ranges of own text; sorted, disjoint,
          non-adjacent *)
  mutable elems : elem Lxu_util.Vec.t;
      (** surviving elements, sorted by [start].  Replaced wholesale on
          element removal — never mutated in place — so frozen clones
          can share the Vec (see {!clone}). *)
}

val make_root : unit -> t
(** The dummy root: sid 0, empty text, spans the whole super
    document. *)

val make :
  sid:int -> gp:int -> lp:int -> base_level:int -> text:string -> elems:elem list -> t
(** A fresh segment node; [len] and [orig_len] are the text length,
    elements must be sorted by [start]. *)

val is_root : t -> bool

val own_len : t -> int
(** Physical length of the node's own text: original length minus
    tombstoned bytes (descendant segments excluded). *)

val tombstoned_before : t -> int -> int
(** Total tombstoned virtual bytes before virtual position [x]
    (portions of tombstones extending past [x] excluded). *)

val virt_of_own_phys : t -> int -> int
(** Converts a physical offset within the node's own text (children
    excluded) to a virtual offset, skipping past tombstones; an offset
    landing on a tombstone boundary resolves after the gap. *)

val virt_of_own_phys_before : t -> int -> int
(** Like {!virt_of_own_phys} but a boundary offset resolves before the
    gap — the smallest virtual position with the same physical
    location.  Any position in between is physically equivalent;
    insertion clamps within this interval to keep child local
    positions ordered. *)

val add_tombstone : t -> int -> int -> unit
(** [add_tombstone t a b] marks virtual range [a, b) deleted, merging
    with existing tombstones.  Ranges must cover only live bytes or
    whole existing tombstones. *)

val depth_at : t -> int -> int
(** Absolute depth of virtual position [x]: [base_level] plus the
    number of surviving elements strictly containing [x]. *)

val path : t -> int array
(** Sids from the dummy root down to this node (the tag-list path). *)

val child_index_for_gp : t -> int -> int
(** Index in [children] where a child with global position [gp] should
    be inserted to keep the vector sorted (after any child with equal
    [gp]). *)

val phys_of_virt : t -> int -> int
(** Global physical position of virtual offset [x] of this node's own
    text: [gp] plus live own bytes before [x] plus the lengths of
    children at positions [<= x] (a child inserted exactly at [x]
    precedes it).  This realizes Definition 2 in reverse. *)

val global_extent : t -> elem -> int * int
(** Current global [(start, stop)] of an element, accounting for
    tombstones and embedded child segments.  This is the local→global
    translation that lets classical join algorithms run on the lazy
    store (§4). *)

val global_extent_span : t -> start:int -> stop:int -> int * int
(** As {!global_extent}, but on a bare local [(start, stop)] span —
    the record-free form used by columnar consumers. *)

val iter_subtree : t -> (t -> unit) -> unit
(** Pre-order traversal of the node and its descendants. *)

val clone : t -> t
(** Deep structural copy of the subtree for frozen snapshots: fresh
    node records, children and tombstone Vecs (both mutated in place
    by updates); shares the immutable [text] and the replace-only
    [elems] Vec.  The clone's [parent] is [None]. *)

val check : t -> unit
(** Validates subtree invariants: children sorted and disjoint,
    lengths consistent, tombstones sorted/disjoint, elements sorted
    and properly nested (test helper).
    @raise Failure on violation. *)
