(** The in-memory update log (§3): SB-tree + ER-tree + tag-list +
    element index, with the segment insertion and removal algorithms of
    Figures 5 and 7.

    The super document starts empty (a dummy root).  [insert] adds a
    well-formed XML fragment at a global byte position; [remove]
    deletes a byte range that must itself be a well-formed fragment of
    the current document.  Existing element labels are never touched:
    elements are keyed by [(tid, sid, local start)] in the element
    index, and only the small per-segment bookkeeping (global
    positions, lengths) moves.

    Two maintenance disciplines mirror the paper's experiments:
    {ul
    {- [Lazy_dynamic] (LD): the SB B{^+}-tree and the tag-list are kept
       query-ready on every update.}
    {- [Lazy_static] (LS): updates only maintain the ER-tree; the
       SB-tree is rebuilt and tag lists sorted by
       {!prepare_for_query}.}} *)

type mode = Lazy_dynamic | Lazy_static

type metrics = {
  mutable gp_shifts : int;
      (** segment global positions updated by inserts/removes *)
  mutable nodes_visited : int;  (** ER-tree nodes examined *)
  mutable segments_inserted : int;
  mutable segments_removed : int;
  mutable elements_removed : int;
}

type t

val create :
  ?mode:mode -> ?index_attributes:bool -> ?branching:int -> ?cache_bytes:int ->
  ?backend:Lxu_btree.Storage_backend.spec -> unit -> t
(** An empty super document. [mode] defaults to [Lazy_dynamic];
    [index_attributes] (default false) additionally indexes every
    attribute as a subelement named ["@name"] (§1: "attributes can be
    considered as subelements"); [branching] is used for the SB-tree
    and element index; [cache_bytes] is the read-side {!Seg_cache}
    budget (default {!Seg_cache.default_max_bytes}, [<= 0] disables
    caching); [backend] (default in-memory) puts the element index and
    SB-tree on copy-on-write pages whose RAM residency is bounded by
    the page store's buffer pool — the beyond-RAM path. *)

val mode : t -> mode
val indexes_attributes : t -> bool
val doc_length : t -> int
val segment_count : t -> int
(** Live segments, dummy root excluded — an O(1) counter maintained by
    insert/remove, not a tree walk. *)

val segment_count_walk : t -> int
(** Reference implementation of {!segment_count} by full ER-tree walk;
    {!check} (and the tests) assert the two agree. *)

val element_count : t -> int
val root : t -> Er_node.t
val registry : t -> Tag_registry.t
val element_index : t -> Element_index.t
val metrics : t -> metrics

val insert : t -> gp:int -> string -> int
(** [insert t ~gp text] inserts segment [text] at global position
    [gp] and returns its fresh sid.  [gp] must be a valid split point
    of the current document (between nodes or inside text content —
    the paper's text-editing model guarantees this for real updates).
    @raise Invalid_argument if [gp] is out of bounds or [text] is empty.
    @raise Lxu_xml.Parser.Parse_error if [text] is not a well-formed
    fragment. *)

val insert_batch :
  ?pool:Lxu_util.Domain_pool.t -> t -> (int * string) list -> int list
(** [insert_batch t edits] applies the [(gp, text)] edits in order and
    returns their sids, producing a log byte-identical to inserting
    them one at a time with {!insert} — but with batched index
    maintenance: all fragments are parsed and labelled first (fanned
    out over [pool] when given — parsing is pure), then the ER-tree
    edits are applied serially, followed by {e one} element-index bulk
    merge, {e one} SB-tree batch insert and {e one} tag-list merge
    pass over a single gp table (under [Lazy_dynamic]; [Lazy_static]
    defers those to {!prepare_for_query} as usual).

    All-or-nothing: every edit is validated before anything is
    mutated.  [gp] bounds are checked against the document as it will
    be after the preceding edits of the batch.
    @raise Invalid_argument if any [gp] is out of bounds or any [text]
    is empty; the log is unchanged.
    @raise Lxu_xml.Parser.Parse_error if any fragment is ill-formed;
    the log is unchanged. *)

val remove : t -> gp:int -> len:int -> unit
(** [remove t ~gp ~len] deletes the byte range [gp, gp+len), updating
    segment bookkeeping per Figure 7: enclosing segments shrink,
    covered segments disappear, left/right-intersected segments lose
    their tail/head.
    @raise Invalid_argument if the range is out of bounds or would
    split an element; a rejected removal leaves the log unchanged.
    Detection works at element granularity: a range whose endpoints
    both fall inside one element's tags or inside comments/PIs (which
    are not indexed) is the caller's responsibility, as in the paper's
    text-editing model. *)

val mark_stale : t -> unit
(** Marks the SB-tree and tag lists stale so the next
    {!prepare_for_query} rebuilds and re-sorts them — a benchmark
    helper for measuring the LS pre-query cost repeatedly. *)

val prepare_for_query : t -> unit
(** Brings an [Lazy_static] log to a query-ready state: rebuilds the
    SB B{^+}-tree from the ER-tree and sorts the tag lists.  No-op
    under [Lazy_dynamic]. *)

val node_of_sid : t -> int -> Er_node.t
(** SB-tree lookup.  Under [Lazy_static], call {!prepare_for_query}
    first. @raise Not_found on unknown or removed sids. *)

val segments_for_tag : t -> tag:string -> Tag_list.entry array
(** Tag-list lookup: segments containing the tag, in global-position
    order (the [SL] input lists of Lazy-Join). *)

val elements_of : t -> tid:int -> sid:int -> Element_index.key array
(** Elements of one tag in one segment, in local order.  Always scans
    the element index directly (no caching) — the reference path. *)

val elements_cols : t -> tid:int -> sid:int -> Seg_cache.cols
(** Columnar variant of {!elements_of}, fetched through the log's
    {!Seg_cache}: a hit returns the cached struct-of-arrays snapshot;
    a miss scans the element index once and caches the result.
    Updates ([insert]/[remove]) bump the epochs of exactly the touched
    segments, so a returned snapshot always reflects the current log
    state.  Snapshots are immutable — callers must not mutate the
    arrays. *)

val cache : t -> Seg_cache.t
(** The log's read-side element cache (stats, clearing, budget). *)

val tag_list : t -> Tag_list.t

val synopsis : t -> Path_synopsis.t
(** The log's path-summary synopsis: exact per-root-to-element-path
    counts, maintained incrementally by {!insert}, {!insert_batch} and
    {!remove} (and therefore by packing, which is remove+insert).
    Frozen snapshots carry an independent clone.  The planner's input:
    cardinality estimation and Proposition-3 segment skipping read it
    without forcing a dirty tag-list sort. *)

val synopsis_rebuilt : t -> Path_synopsis.t
(** From-scratch synopsis rebuilt off the current segment skeletons —
    the incremental-maintenance oracle ({!check} asserts the two agree;
    exposed for the tests). *)

val materialize : t -> string
(** Reconstructs the full super-document text from the ER-tree — the
    correctness oracle: it must equal the text produced by applying
    the same edits to a plain string. *)

val global_elements : t -> tag:string -> (int * int * int) list
(** [(gstart, gstop, level)] of every live element of the tag, in
    global document order — the local→global translation feeding the
    classical-join baseline. *)

val sb_size_bytes : t -> int
val tag_list_size_bytes : t -> int
val size_bytes : t -> int
(** Total update-log footprint (Figure 11a). *)

val freeze : t -> epoch:int -> t
(** [freeze t ~epoch] returns an immutable snapshot of [t] pinned at
    cache epoch [epoch]: a clone of the ER-tree (sharing the immutable
    segment texts and element arrays), SB-tree, tag lists and registry,
    {e sharing} [t]'s {!Seg_cache} — its columnar lookups and fills go
    through {!Seg_cache.find_at} at the pinned epoch, so the snapshot
    keeps reading retired versions while the live log moves on.  The
    snapshot carries no element index; {!elements_of} and cache misses
    materialize from the cloned segment skeletons instead.  The clone
    is query-ready ([prepare_for_query] is run first, so an LS source
    log is brought current) and every update entry point raises
    [Invalid_argument] on it.  O(segments + tag-list entries); element
    arrays and texts are shared, not copied. *)

val is_frozen : t -> bool

val epoch : t -> int
(** The pinned cache epoch of a frozen snapshot, or
    {!Seg_cache.latest} on a live log. *)

val check : t -> unit
(** Full invariant check across the ER-tree, SB-tree, element index
    and tag-list (test helper). @raise Failure on violation. *)

val save : t -> out_channel -> unit
(** Serializes the complete log — segment tree with virtual
    coordinates, tombstones, element skeletons, tag registry — so a
    {!load} restores byte-identical behaviour, including local labels
    (a re-chop of the materialized text would assign new ones). *)

val load : ?backend:Lxu_btree.Storage_backend.spec -> in_channel -> t
(** Restores a log written by {!save}; derived structures (SB-tree,
    element index, tag lists) are rebuilt from the segment data.
    With [Paged { attach = true; _ }] the element index is {e not}
    rebuilt — the durable paged tree is reopened as-is, which is only
    sound when the page store's checkpoint LSN matches this snapshot
    (callers must verify; {!full_check} cross-validates afterwards).
    @raise Failure on a malformed or incompatible snapshot. *)

(** {1 Fragmentation statistics}

    The maintenance scheduler's inputs: how much update debt the lazy
    discipline has accumulated, maintained incrementally so reading
    them costs O(1). *)

type frag_stats = {
  live_segments : int;
  dead_segments : int;  (** cumulative segments removed over the log's life *)
  er_depth : int;
      (** deepest ER chain (edges below the dummy root) — an insert-side
          high-water mark, re-anchored to the exact value by every
          {!fragmented_subtrees} scan *)
  dirty_tags : int;  (** per-tag pending runs awaiting a sort/merge *)
  doc_bytes : int;
  max_tag_segments : int;
      (** the widest per-tag list, in segments — tag skew: a tag
          scattered over many segments makes every join touching it
          pay a long merge pass, so the scheduler can prioritize
          packing by it *)
}

val frag_stats : t -> frag_stats
(** Snapshot of the counters above.  All are O(1) reads except
    [max_tag_segments], which scans the distinct tags (no sort
    forced). *)

type subtree_frag = {
  sid : int;
  gp : int;  (** current global position of the subtree's extent *)
  len : int;  (** current byte length of the extent *)
  segments : int;  (** live segments in the subtree, its root included *)
  depth : int;  (** deepest chain in the subtree, measured from the dummy root *)
}

val fragmented_subtrees : t -> subtree_frag list
(** The top-level subtrees (children of the dummy root), most
    fragmented first (by segment count, then chain depth).  Each
    extent [gp, gp+len) is a well-formed fragment of the current
    document — a valid pack target.  O(live segments) walk; also
    re-anchors {!frag_stats}[.er_depth] to its exact current value. *)
