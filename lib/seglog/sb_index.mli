(** The SB-tree (§3.3): sid → skeleton node, behind the storage
    backend switch.

    In-memory it is the existing [Bptree.Make(Int)] mapping.  Paged,
    the tree holds [sid → slot] pairs on copy-on-write pages while the
    {!Er_node.t} values stay in a RAM vector — skeleton nodes are the
    small hot part of the store and are rebuilt by every loader, so
    only the ordered sid structure benefits from paging.  Slots of
    removed or replaced sids leak until the next {!load_sorted}
    rebuild (which every [prepare_for_query] / pack performs). *)

type t

val create : ?branching:int -> ?backend:Lxu_btree.Storage_backend.spec -> unit -> t
(** A fresh empty mapping.  A paged backend always starts empty (the
    sid → node mapping cannot be attached from disk because the nodes
    live in RAM); the loader repopulates it via {!load_sorted}. *)

val of_sorted_mem : ?branching:int -> (int * Er_node.t) array -> t
(** An in-memory mapping bulk-loaded from sorted distinct sids —
    what snapshot freezing builds regardless of the live backend. *)

val is_paged : t -> bool
val length : t -> int

val insert : t -> int -> Er_node.t -> unit
(** Replaces on duplicate sid. *)

val find : t -> int -> Er_node.t option
val remove : t -> int -> bool

val load_sorted : t -> (int * Er_node.t) array -> unit
(** Replaces the whole mapping from sorted distinct sids — the bulk
    rebuild path; also compacts the paged node vector. *)

val insert_sorted_batch : t -> (int * Er_node.t) array -> unit
(** Merge a sorted batch (replace semantics on duplicate sids). *)

val height : t -> int
val size_bytes : t -> int
