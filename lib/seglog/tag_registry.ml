open Lxu_util

type t = { ids : (string, int) Hashtbl.t; names : string Vec.t }

let create () = { ids = Hashtbl.create 64; names = Vec.create () }

let intern t tag =
  match Hashtbl.find_opt t.ids tag with
  | Some tid -> tid
  | None ->
    let tid = Vec.length t.names in
    Hashtbl.add t.ids tag tid;
    Vec.push t.names tag;
    tid

let clone t = { ids = Hashtbl.copy t.ids; names = Vec.of_array (Vec.to_array t.names) }

let find t tag = Hashtbl.find_opt t.ids tag

let name t tid =
  if tid < 0 || tid >= Vec.length t.names then
    invalid_arg "Tag_registry.name: unknown tid";
  Vec.get t.names tid

let count t = Vec.length t.names
