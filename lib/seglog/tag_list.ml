open Lxu_util

type entry = { sid : int; path : int array; mutable count : int }

exception Dirty_tag_list of int

(* One per-tag list with its own dirty bit: an LS-mode append soils
   only the tag it touches, so the pre-query sort processes exactly the
   updated tags instead of every list in the table.

   Each slot keeps two runs.  [entries] is the {e main run}, sorted by
   the segments' current global positions.  The run-merge invariant
   that keeps it sorted without re-sorting: every gp shift an update
   applies is monotone (all positions >= the edit point move by the
   same delta), so the relative order of existing entries never
   changes.  [pending] accumulates entries appended since the last
   sort, in arrival order; [sort_all] sorts only the pending run and
   merges the two, O(n + p·log p) instead of a full O((n+p)·log(n+p))
   re-sort.  Clean slots have an empty pending run. *)
type slot = {
  entries : entry Vec.t;
  pending : entry Vec.t;
  mutable dirty : bool;
  mutable elems : int;
      (* live elements across both runs, kept current by every
         add/decrement/removal so per-tag cardinality reads are O(1)
         even while the slot is dirty *)
}

type t = {
  lists : (int, slot) Hashtbl.t;
  mutable dirty_count : int;  (* number of dirty slots, for O(1) is_dirty *)
  mutable path_ops : int;
}

let create () = { lists = Hashtbl.create 64; dirty_count = 0; path_ops = 0 }

let slot_for t tid =
  match Hashtbl.find_opt t.lists tid with
  | Some s -> s
  | None ->
    let s = { entries = Vec.create (); pending = Vec.create (); dirty = false; elems = 0 } in
    Hashtbl.add t.lists tid s;
    s

let soil t s =
  if not s.dirty then begin
    s.dirty <- true;
    t.dirty_count <- t.dirty_count + 1
  end

let add_sorted t ~tid entry ~gp_of =
  let s = slot_for t tid in
  if s.dirty then Vec.push s.pending entry (* merged on the next sort_all anyway *)
  else begin
    let gp = gp_of entry.sid in
    let i =
      Vec.lower_bound s.entries ~compare:(fun e -> if gp_of e.sid <= gp then -1 else 0)
    in
    Vec.insert_at s.entries i entry
  end;
  s.elems <- s.elems + entry.count;
  t.path_ops <- t.path_ops + 1

let append t ~tid entry =
  let s = slot_for t tid in
  Vec.push s.pending entry;
  s.elems <- s.elems + entry.count;
  soil t s;
  t.path_ops <- t.path_ops + 1

(* Merge path: sort the pending run (stably, so same-gp arrivals keep
   their order), then merge it into the main run from the back, in
   place.  Equal gps keep main-run entries first — exactly where
   repeated [add_sorted] calls would have put the newcomers, which is
   what the batched/sequential differential suite relies on. *)
let merge_slot s ~gp_of =
  let np = Vec.length s.pending in
  if np > 0 then begin
    let pend =
      Array.init np (fun i ->
          let e = Vec.get s.pending i in
          (gp_of e.sid, e))
    in
    Array.stable_sort (fun (g1, _) (g2, _) -> Int.compare g1 g2) pend;
    let n = Vec.length s.entries in
    let mgp = Array.init n (fun i -> gp_of (Vec.get s.entries i).sid) in
    for k = 0 to np - 1 do
      Vec.push s.entries (snd pend.(k))
    done;
    (* Backward merge: position [w] receives the largest remaining
       element; reads of main-run slots happen before any write can
       reach them (writes stay strictly ahead while pending entries
       remain).  Once the pending run is exhausted the main prefix is
       already in place. *)
    let i = ref (n - 1) and j = ref (np - 1) in
    let w = ref (n + np - 1) in
    while !j >= 0 do
      if !i >= 0 && mgp.(!i) > fst pend.(!j) then begin
        Vec.set s.entries !w (Vec.get s.entries !i);
        decr i
      end
      else begin
        Vec.set s.entries !w (snd pend.(!j));
        decr j
      end;
      decr w
    done;
    Vec.truncate s.pending 0
  end;
  s.dirty <- false

(* Legacy path (LXU_TAGSORT=resort): concatenate and stable-sort the
   whole list.  Kept as the differential oracle for the merge path —
   stability makes the two agree byte-for-byte on equal gps. *)
let resort_slot s ~gp_of =
  let np = Vec.length s.pending in
  for k = 0 to np - 1 do
    Vec.push s.entries (Vec.get s.pending k)
  done;
  Vec.truncate s.pending 0;
  let n = Vec.length s.entries in
  let a =
    Array.init n (fun i ->
        let e = Vec.get s.entries i in
        (gp_of e.sid, e))
  in
  Array.stable_sort (fun (g1, _) (g2, _) -> Int.compare g1 g2) a;
  for i = 0 to n - 1 do
    Vec.set s.entries i (snd a.(i))
  done;
  s.dirty <- false

let sort_all t ~gp_of =
  if t.dirty_count > 0 then begin
    let resort =
      match Sys.getenv_opt "LXU_TAGSORT" with Some "resort" -> true | _ -> false
    in
    Hashtbl.iter
      (fun _ s ->
        if s.dirty then
          if resort then resort_slot s ~gp_of else merge_slot s ~gp_of)
      t.lists;
    t.dirty_count <- 0
  end

let is_dirty t = t.dirty_count > 0
let dirty_count t = t.dirty_count

let mark_dirty t =
  (* Conservative full invalidation (benchmark helper / external
     staleness signal): every list pays the next sort_all pass. *)
  Hashtbl.iter (fun _ s -> soil t s) t.lists

(* Compact in place with a write cursor: removing k of n entries costs
   one pass and zero allocation, instead of rebuilding the whole vector
   through a temporary copy.  Removed entries leave the slot's element
   counter with them. *)
let remove_where t s v pred =
  let n = Vec.length v in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let e = Vec.get v i in
    if pred e then begin
      s.elems <- s.elems - e.count;
      t.path_ops <- t.path_ops + 1
    end
    else begin
      if !w < i then Vec.set v !w e;
      incr w
    end
  done;
  if !w < n then Vec.truncate v !w

let decrement t ~tid ~sid ~by =
  match Hashtbl.find_opt t.lists tid with
  | None -> ()
  | Some s ->
    let touch v =
      Vec.iter
        (fun e ->
          if e.sid = sid then begin
            e.count <- e.count - by;
            s.elems <- s.elems - by
          end)
        v;
      remove_where t s v (fun e -> e.sid = sid && e.count <= 0)
    in
    touch s.entries;
    touch s.pending

let remove_segment t ~sid =
  Hashtbl.iter
    (fun _ s ->
      remove_where t s s.entries (fun e -> e.sid = sid);
      remove_where t s s.pending (fun e -> e.sid = sid))
    t.lists

let clone t =
  let lists = Hashtbl.create (max 16 (Hashtbl.length t.lists)) in
  (* Entry records have a mutable [count] (decremented by removes on
     the live side), so each gets a fresh record; the [path] arrays are
     write-once and shared. *)
  let copy_run v =
    Vec.of_array (Array.map (fun e -> { e with count = e.count }) (Vec.to_array v))
  in
  Hashtbl.iter
    (fun tid s ->
      Hashtbl.add lists tid
        {
          entries = copy_run s.entries;
          pending = copy_run s.pending;
          dirty = s.dirty;
          elems = s.elems;
        })
    t.lists;
  { lists; dirty_count = t.dirty_count; path_ops = t.path_ops }

let entries t ~tid =
  match Hashtbl.find_opt t.lists tid with
  | None -> [||]
  | Some s ->
    if s.dirty then raise (Dirty_tag_list tid);
    Vec.to_array s.entries

(* O(1) per-tag cardinality, readable while the slot is dirty: the two
   run lengths (and the maintained element counter) never depend on
   sortedness, unlike [entries]. *)
let tag_segments t ~tid =
  match Hashtbl.find_opt t.lists tid with
  | None -> 0
  | Some s -> Vec.length s.entries + Vec.length s.pending

let tag_elements t ~tid =
  match Hashtbl.find_opt t.lists tid with None -> 0 | Some s -> s.elems

(* Widest tag-list (in segments): the skew signal the maintenance
   scheduler prioritizes by.  O(distinct tags), no sort forced. *)
let max_segments t =
  Hashtbl.fold
    (fun _ s acc -> max acc (Vec.length s.entries + Vec.length s.pending))
    t.lists 0

let tids t = Hashtbl.fold (fun tid _ acc -> tid :: acc) t.lists [] |> List.sort Int.compare

let path_ops t = t.path_ops

let size_bytes t =
  let run v = Vec.fold_left (fun a e -> a + (8 * (Array.length e.path + 3))) 0 v in
  Hashtbl.fold (fun _ s acc -> acc + run s.entries + run s.pending) t.lists 0
