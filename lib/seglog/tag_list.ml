open Lxu_util

type entry = { sid : int; path : int array; mutable count : int }

(* One per-tag list with its own dirty bit: an LS-mode append soils
   only the tag it touches, so the pre-query sort re-sorts exactly the
   updated tags instead of every list in the table. *)
type slot = { entries : entry Vec.t; mutable dirty : bool }

type t = {
  lists : (int, slot) Hashtbl.t;
  mutable dirty_count : int;  (* number of dirty slots, for O(1) is_dirty *)
  mutable path_ops : int;
}

let create () = { lists = Hashtbl.create 64; dirty_count = 0; path_ops = 0 }

let slot_for t tid =
  match Hashtbl.find_opt t.lists tid with
  | Some s -> s
  | None ->
    let s = { entries = Vec.create (); dirty = false } in
    Hashtbl.add t.lists tid s;
    s

let soil t s =
  if not s.dirty then begin
    s.dirty <- true;
    t.dirty_count <- t.dirty_count + 1
  end

let add_sorted t ~tid entry ~gp_of =
  let s = slot_for t tid in
  if s.dirty then Vec.push s.entries entry (* sorted on the next sort_all anyway *)
  else begin
    let gp = gp_of entry.sid in
    let i =
      Vec.lower_bound s.entries ~compare:(fun e -> if gp_of e.sid <= gp then -1 else 0)
    in
    Vec.insert_at s.entries i entry
  end;
  t.path_ops <- t.path_ops + 1

let append t ~tid entry =
  let s = slot_for t tid in
  Vec.push s.entries entry;
  soil t s;
  t.path_ops <- t.path_ops + 1

let sort_all t ~gp_of =
  if t.dirty_count > 0 then begin
    Hashtbl.iter
      (fun _ s ->
        if s.dirty then begin
          Vec.sort (fun a b -> Int.compare (gp_of a.sid) (gp_of b.sid)) s.entries;
          s.dirty <- false
        end)
      t.lists;
    t.dirty_count <- 0
  end

let is_dirty t = t.dirty_count > 0

let mark_dirty t =
  (* Conservative full invalidation (benchmark helper / external
     staleness signal): every list pays the next sort. *)
  Hashtbl.iter (fun _ s -> soil t s) t.lists

(* Compact in place with a write cursor: removing k of n entries costs
   one pass and zero allocation, instead of rebuilding the whole vector
   through a temporary copy. *)
let remove_where t v pred =
  let n = Vec.length v in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let e = Vec.get v i in
    if pred e then t.path_ops <- t.path_ops + 1
    else begin
      if !w < i then Vec.set v !w e;
      incr w
    end
  done;
  if !w < n then Vec.truncate v !w

let decrement t ~tid ~sid ~by =
  match Hashtbl.find_opt t.lists tid with
  | None -> ()
  | Some s ->
    Vec.iter (fun e -> if e.sid = sid then e.count <- e.count - by) s.entries;
    remove_where t s.entries (fun e -> e.sid = sid && e.count <= 0)

let remove_segment t ~sid =
  Hashtbl.iter (fun _ s -> remove_where t s.entries (fun e -> e.sid = sid)) t.lists

let entries t ~tid =
  match Hashtbl.find_opt t.lists tid with
  | None -> [||]
  | Some s ->
    if s.dirty then failwith "Tag_list.entries: dirty list, call sort_all first";
    Vec.to_array s.entries

let tids t = Hashtbl.fold (fun tid _ acc -> tid :: acc) t.lists [] |> List.sort Int.compare

let path_ops t = t.path_ops

let size_bytes t =
  Hashtbl.fold
    (fun _ s acc ->
      acc + Vec.fold_left (fun a e -> a + (8 * (Array.length e.path + 3))) 0 s.entries)
    t.lists 0
