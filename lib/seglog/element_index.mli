(** The element index (§3.4): a B{^+}-tree over
    [(tid, sid, start, stop, level)] keys.

    [start]/[stop] are the element's immutable virtual local positions
    inside segment [sid], so index records never need updating when
    other segments are inserted or removed — the whole point of the
    lazy scheme.  [(sid, start)] identifies an element uniquely.

    The prefix scan {!iter_segment} enumerates the elements of one tag
    inside one segment in local document order, which is exactly what
    Lazy-Join pushes on its stack. *)

type key = { tid : int; sid : int; start : int; stop : int; level : int }

type t

val create : ?branching:int -> ?backend:Lxu_btree.Storage_backend.spec -> unit -> t
(** [backend] selects where the tree's nodes live (default in
    memory).  With [Paged { store; attach = true }] the index reopens
    the durable tree in the store's ["elem"] root slot — only valid
    when the store's checkpoint LSN matches the snapshot being
    loaded; with [attach = false] any previous paged tree is freed
    and the index starts empty.  [branching] applies to the in-memory
    backend only (paged fan-out follows the page size). *)

val is_paged : t -> bool
val size : t -> int

val add : t -> key -> unit
val remove : t -> key -> bool

val add_batch : t -> key array -> unit
(** Bulk insertion for batched ingestion: sorts [keys] in place and
    merges them into the tree in a single O(existing + batch) pass
    (see {!Lxu_btree.Bptree}), instead of one descent per key.
    The keys must be pairwise distinct — [(sid, start)] identifies an
    element, so distinct elements always are.
    @raise Invalid_argument on duplicate keys in the batch. *)

val iter_segment : t -> tid:int -> sid:int -> (key -> bool) -> unit
(** [iter_segment t ~tid ~sid f] applies [f] to the records of tag
    [tid] in segment [sid] in ascending [start] order, stopping early
    when [f] returns [false]. *)

val elements_of_segment : t -> tid:int -> sid:int -> key array

val cols_of_segment : t -> tid:int -> sid:int -> Seg_cache.cols
(** Columnar variant of {!elements_of_segment}: the same records as
    three unboxed [int array]s sorted by [start] — the cache-miss
    materialization path of {!Seg_cache}. *)

val iter_all : t -> (key -> unit) -> unit

val accesses : t -> int
(** Cumulative count of index operations (lookups, scans steps,
    insertions, deletions) — a machine-independent cost metric. *)

val size_bytes : t -> int
(** Approximate in-memory footprint. *)

val height : t -> int
