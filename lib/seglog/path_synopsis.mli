(** Path-summary synopsis: the set of distinct root-to-element tag
    paths in the super document, with a live element count per path —
    the structure of Arion et al.'s path summaries, maintained
    incrementally from the update log's segment edits.

    A {e tag path} of an element is the sequence of tag ids from the
    document root down to the element itself (the element's own tag
    last).  Because segments splice at a single point of their parent's
    virtual text, an element's ancestors decompose exactly into
    {ul
    {- the {e context chain} of its segment — the elements of ancestor
       segments strictly containing the segment's splice point, fixed
       at insertion time and immutable for the segment's lifetime (an
       enclosing element cannot be removed while the segment survives:
       its extent covers the whole segment, so removing it removes the
       segment too); and}
    {- the enclosing elements within the segment's own fragment, read
       off the segment's element skeleton with one stack scan.}}
    The synopsis therefore maintains exact per-path counts under
    [insert], [insert_batch], [remove] and packing without ever
    touching the element index, and without forcing a dirty tag-list
    sort.

    Costs: O(elements) per segment insert/remove (one stack scan, one
    hash update per element), O(distinct paths) space.  Counts are
    {e exact}, so a zero is proof of absence — the planner's license
    to skip whole joins and segments (selective Proposition 3). *)

type t

val create : unit -> t

val clone : t -> t
(** Copy-on-write snapshot for frozen clones, cheap enough for the
    MVCC publish path (which freezes after every committing write):
    the clone shares the path index and count arrays outright, and the
    live side copies a shared structure just before its first mutation
    after the freeze — one flat array copy per write, plus a
    bucket-level index copy only when a new distinct path appears.
    The clone itself must never be mutated concurrently with the
    original (frozen logs never are). *)

val elements : t -> int
(** Live elements across all paths. *)

val distinct_paths : t -> int

val tag_total : t -> tid:int -> int
(** Live elements of one tag, O(1). *)

val context : t -> sid:int -> int array
(** The segment's context chain: tag ids of the elements strictly
    containing its splice point, outermost first.  [[||]] for unknown
    sids (and for segments spliced at document level).  The returned
    array is shared — do not mutate. *)

val may_have_ancestor : t -> sid:int -> tid:int -> bool
(** Summary evidence for Proposition-3 skipping: [false] proves that
    no element of segment [sid] has an ancestor tagged [tid] — the tag
    appears neither in the segment's context chain nor among the tags
    of the segment's own fragment — so the segment can be skipped
    without touching the element index.  [true] is a may-answer (the
    own-fragment tag set is not shrunk by element removals).  Unknown
    sids answer [true]. *)

val add_segment : t -> sid:int -> ctx_tids:int array -> elems:Er_node.elem Lxu_util.Vec.t -> unit
(** Registers a fresh segment: records its context chain (the array is
    kept, not copied) and increments the path of every element of
    [elems] (which must be sorted by virtual start and properly
    nested, as segment skeletons are). *)

val remove_segment : t -> sid:int -> elems:Er_node.elem Lxu_util.Vec.t -> unit
(** Full segment deletion: decrements every element's path and forgets
    the segment's context record.  [elems] is the segment's skeleton
    as it was before the deletion. *)

val remove_matching :
  ?until:int ->
  t ->
  sid:int ->
  elems:Er_node.elem Lxu_util.Vec.t ->
  removed:(Er_node.elem -> bool) ->
  unit
(** Partial removal (tombstoning): decrements the paths of the
    elements of [elems] satisfying [removed].  [elems] must be the
    {e pre-removal} skeleton — surviving elements still enclose the
    removed ones during the scan, so paths come out exact.  [until]
    stops the scan at the first element starting at or past that
    virtual position: sound whenever [removed] rejects every element
    starting there or later, and it keeps range removals (packing's
    bread and butter) from walking the whole segment skeleton. *)

val iter : t -> (int array -> int -> unit) -> unit
(** [iter t f] calls [f path count] for every distinct live path.
    Paths are root-to-element tag-id arrays, shared — do not mutate.
    Iteration order is unspecified. *)

val to_sorted_list : t -> (int list * int) list
(** Deterministic dump for tests, sorted by path. *)

val equal : t -> t -> bool
(** Same path set with the same counts (context records and tag sets
    are ignored: the own-fragment tag set is a monotone superset, not
    state the counts depend on). *)

val size_bytes : t -> int
(** Approximate footprint of paths and context records. *)
