(** Columnar per-[(tid, sid)] element cache (read-side).

    The join hot path used to re-materialize every surviving segment's
    element set from the element-index B{^+}-tree on {e every} query —
    an [iter_from] scan into boxed key records, per segment, per query.
    In the spirit of the paper's laziness, this cache pays that
    materialization once and reuses it until an update actually soils
    the segment: each entry is an immutable struct-of-arrays snapshot
    ([starts]/[stops]/[levels] as unboxed [int array]s, sorted by
    start) of one tag's elements inside one segment.

    {b Epoch invalidation.}  The cache keeps a per-segment epoch
    counter.  {!invalidate_segment} bumps it; entries record the epoch
    they were filled under and are discarded lazily on their next
    lookup.  {!Update_log} bumps epochs from [insert] and [remove] for
    exactly the touched segments — no full flushes, mirroring
    [Tag_list]'s per-tag dirty bits.  A whole-log rebuild (pack,
    recovery) creates a fresh log and therefore a fresh, cold cache.

    {b Bounds.}  Entries live on an LRU list under a byte budget
    ([max_bytes], default {!default_max_bytes}, overridable with the
    [LXU_CACHE_BYTES] environment variable); inserting past the budget
    evicts from the cold end.  A budget of [0] (or negative) disables
    the cache entirely: lookups miss without locking or counting, adds
    are no-ops — the uncached path stays byte-identical to the
    pre-cache code, with zero overhead.

    {b Concurrency.}  All operations are serialized by an internal
    mutex, so concurrent [Shared_db] readers may fetch through the
    cache safely.  [cols] snapshots are immutable and may be shared
    read-only across domains; under the domain pool, [Lazy_join]
    materializes snapshots during its sequential merge pass and worker
    domains only ever read captured arrays — they never touch the
    cache itself. *)

type cols = { starts : int array; stops : int array; levels : int array }
(** One segment's elements of one tag in local document order:
    [starts.(i), stops.(i))] is element [i]'s immutable virtual
    extent, [levels.(i)] its absolute depth.  All three arrays have
    equal length. *)

val empty_cols : cols
val cols_length : cols -> int

type stats = {
  lookups : int;
  hits : int;
  misses : int;  (** includes stale drops; [hits + misses = lookups] *)
  evictions : int;  (** entries evicted by the byte budget *)
  invalidations : int;  (** epoch bumps ({!invalidate_segment} calls) *)
  stale_drops : int;  (** entries discarded on lookup after an epoch bump *)
  entries : int;  (** live entries right now *)
  bytes : int;  (** accounted bytes right now; [<= max_bytes] *)
  max_bytes : int;
}

type t

val default_max_bytes : unit -> int
(** [LXU_CACHE_BYTES] when set to a valid integer, else 64 MiB. *)

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] defaults to {!default_max_bytes}; [<= 0] disables the
    cache (see above). *)

val enabled : t -> bool
val max_bytes : t -> int

val entry_bytes : int -> int
(** Accounted footprint of an entry holding [n] elements (array
    payloads plus header/bookkeeping overhead) — exposed for eviction
    tests. *)

val find : t -> tid:int -> sid:int -> cols option
(** LRU-touching lookup.  Returns [None] (and drops the entry) when
    the segment's epoch has moved since the entry was filled. *)

val add : t -> tid:int -> sid:int -> cols -> unit
(** Inserts (or replaces) the snapshot for [(tid, sid)] at the hot end
    and evicts from the cold end until the budget holds.  A snapshot
    larger than the whole budget is not cached at all. *)

val invalidate_segment : t -> sid:int -> unit
(** Bumps segment [sid]'s epoch: every cached [(_, sid)] entry is dead
    and will be dropped on its next lookup (or by LRU pressure). *)

val clear : t -> unit
(** Drops every entry (counters are kept) — the benchmark's
    cold-cache reset. *)

val stats : t -> stats
