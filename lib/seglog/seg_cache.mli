(** Columnar per-[(tid, sid)] element cache — now a versioned snapshot
    table (read-side MVCC).

    The join hot path used to re-materialize every surviving segment's
    element set from the element-index B{^+}-tree on {e every} query —
    an [iter_from] scan into boxed key records, per segment, per query.
    In the spirit of the paper's laziness, this cache pays that
    materialization once and reuses it until an update actually soils
    the segment: each entry is an immutable struct-of-arrays snapshot
    ([starts]/[stops]/[levels] as unboxed [int array]s, sorted by
    start) of one tag's elements inside one segment.

    {b Versioning.}  Entries carry a validity interval
    [[born, retired)] over global {e epochs} (one epoch per committed
    write transaction, published by [Shared_db]).  A lookup at epoch
    [e] hits iff [born <= e < retired].  {!invalidate_segment} retires
    the segment's live entries at the {e next} publishable epoch, so
    readers pinned at or below the current epoch keep their snapshots
    while later epochs re-materialize.  Retired versions are kept for
    pinned readers and reclaimed once the {e floor} — the oldest epoch
    any reader still pins — passes them ({!reclaim}), or lazily on
    lookup.  Logs that never publish epochs (plain single-threaded
    [Update_log]s) keep the floor at {!latest}, which makes retirement
    degrade to exactly the old behavior: a retired entry is dropped on
    its next lookup and counted as a stale drop.

    {b Bounds.}  Entries live on an LRU list under a byte budget
    ([max_bytes], default {!default_max_bytes}, overridable with the
    [LXU_CACHE_BYTES] environment variable); inserting past the budget
    evicts from the cold end — retired versions included, which is
    safe: a pinned reader that misses simply re-materializes from its
    frozen skeleton.  A budget of [0] (or negative) disables the cache
    entirely: lookups miss without locking or counting, adds are
    no-ops — the uncached path stays byte-identical to the pre-cache
    code, with zero overhead.

    {b Concurrency.}  All operations are serialized by an internal
    mutex, so concurrent pinned readers and the single writer may use
    one cache safely.  [cols] snapshots are immutable and may be
    shared read-only across domains. *)

type cols = { starts : int array; stops : int array; levels : int array }
(** One segment's elements of one tag in local document order:
    [starts.(i), stops.(i))] is element [i]'s immutable virtual
    extent, [levels.(i)] its absolute depth.  All three arrays have
    equal length. *)

val empty_cols : cols
val cols_length : cols -> int

type stats = {
  lookups : int;
  hits : int;
  misses : int;  (** includes stale drops; [hits + misses = lookups] *)
  evictions : int;  (** entries evicted by the byte budget *)
  invalidations : int;  (** {!invalidate_segment} calls *)
  stale_drops : int;  (** retired entries discarded on lookup once below the floor *)
  stale_skips : int;  (** adds refused because the filler's epoch predates the
                          segment's last invalidation *)
  retired_entries : int;  (** retired versions currently held for pinned readers *)
  reclaimed : int;  (** retired versions dropped by {!reclaim} sweeps *)
  entries : int;  (** entries right now, live and retired *)
  bytes : int;  (** accounted bytes right now; [<= max_bytes] *)
  max_bytes : int;
  epoch : int;  (** latest published epoch *)
  floor : int;  (** oldest epoch a reader may still pin *)
}

type t

val latest : int
(** The epoch mutable (non-frozen) logs read and fill at: strictly
    above every publishable epoch, so a lookup at [latest] sees
    exactly the live entries.  The default for {!find} / {!add}. *)

val default_max_bytes : unit -> int
(** [LXU_CACHE_BYTES] when set to a valid integer, else 64 MiB. *)

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] defaults to {!default_max_bytes}; [<= 0] disables the
    cache (see above).  A fresh cache is at epoch 0 with the floor at
    {!latest} (no pinned readers). *)

val enabled : t -> bool
val max_bytes : t -> int

val entry_bytes : int -> int
(** Accounted footprint of an entry holding [n] elements (array
    payloads plus header/bookkeeping overhead) — exposed for eviction
    tests. *)

val find_at : t -> epoch:int -> tid:int -> sid:int -> cols option
(** LRU-touching lookup of the version valid at [epoch].  Versions
    retired at or below the floor are dropped on the way and counted
    as stale drops. *)

val find : t -> tid:int -> sid:int -> cols option
(** [find_at] at {!latest} — the live (non-pinned) lookup. *)

val add_at : t -> epoch:int -> tid:int -> sid:int -> cols -> unit
(** Inserts the snapshot for [(tid, sid)], replacing any live version,
    at the hot end; evicts from the cold end until the budget holds.
    The new version is valid from the segment's last invalidation
    epoch onward.  Skipped (counted as a stale skip) when [epoch]
    predates that invalidation — the filler's snapshot belongs to a
    version this cache can no longer place.  A snapshot larger than
    the whole budget is not cached at all. *)

val add : t -> tid:int -> sid:int -> cols -> unit
(** [add_at] at {!latest} — the live (non-frozen) fill. *)

val invalidate_segment : t -> sid:int -> unit
(** Retires segment [sid]'s live versions at the next publishable
    epoch (current epoch + 1): epochs at or below the current one keep
    them, later epochs re-materialize. *)

val publish : t -> epoch:int -> unit
(** Raises the cache's current epoch to [epoch] (monotonic max — a
    fresh cache installed by pack/rebuild starts at 0 while version
    numbers keep rising).  Call after the write's invalidations, so
    they retire exactly at the published epoch. *)

val reclaim : t -> floor:int -> unit
(** Sets the reclamation floor to [floor] (the oldest epoch any reader
    still pins) and sweeps out versions retired at or below it. *)

val current_epoch : t -> int

val clear : t -> unit
(** Drops every entry (counters, epoch and floor are kept) — the
    benchmark's cold-cache reset. *)

val stats : t -> stats
