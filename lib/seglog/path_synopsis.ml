open Lxu_util

(* Per-segment record: the context chain fixed at insertion time, and
   the (sorted, distinct) tags of the segment's own fragment.  Both are
   write-once, so frozen clones share them. *)
type seg_info = { ctx_tids : int array; tag_set : int array }

(* Counts live in a flat array indexed by an append-only path -> slot
   table, not in per-path ref cells, and [clone] is copy-on-write:
   MVCC publishes a frozen clone after every committing write, so the
   clone itself must be O(segments) at worst.  The frozen side shares
   [index], [counts] and [tag_counts] outright (it never mutates); the
   live side copies a shared structure right before its first mutation
   after a freeze — one flat [Array.copy] per write for the counts,
   and a bucket-level [Hashtbl.copy] of the index only when a {e new}
   distinct path appears, which steady-state traffic almost never
   does.  Slots whose count returns to zero are kept (the table only
   ever grows to the number of distinct paths ever seen). *)
type t = {
  mutable index : (int array, int) Hashtbl.t;
      (* root-to-element tag-id path -> slot.  Key arrays are
         write-once and shared with clones; slots are never removed. *)
  mutable index_shared : bool;
  mutable counts : int array;  (* slot -> live element count *)
  mutable tag_counts : int array;  (* tag id -> live element count *)
  mutable counts_shared : bool;  (* covers [counts] and [tag_counts] *)
  mutable n_slots : int;
  mutable live_paths : int;  (* slots with a non-zero count *)
  segs : (int, seg_info) Hashtbl.t;
  mutable elems : int;
}

let create () =
  {
    index = Hashtbl.create 256;
    index_shared = false;
    counts = Array.make 256 0;
    tag_counts = Array.make 64 0;
    counts_shared = false;
    n_slots = 0;
    live_paths = 0;
    segs = Hashtbl.create 64;
    elems = 0;
  }

let clone t =
  t.index_shared <- true;
  t.counts_shared <- true;
  { t with segs = Hashtbl.copy t.segs; index_shared = true; counts_shared = true }

(* Before the live side touches a count cell: take ownership of the
   flat arrays if a frozen clone still shares them. *)
let own_counts t =
  if t.counts_shared then begin
    t.counts <- Array.copy t.counts;
    t.tag_counts <- Array.copy t.tag_counts;
    t.counts_shared <- false
  end

let elements t = t.elems
let distinct_paths t = t.live_paths

let tag_total t ~tid =
  if tid >= 0 && tid < Array.length t.tag_counts then t.tag_counts.(tid) else 0

let context t ~sid =
  match Hashtbl.find_opt t.segs sid with Some s -> s.ctx_tids | None -> [||]

let mem_int a x =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

let may_have_ancestor t ~sid ~tid =
  match Hashtbl.find_opt t.segs sid with
  | None -> true
  | Some s -> mem_int s.ctx_tids tid || mem_int s.tag_set tid

let bump_total t tid d =
  if tid >= Array.length t.tag_counts then begin
    let na = Array.make (max (tid + 1) (2 * Array.length t.tag_counts)) 0 in
    Array.blit t.tag_counts 0 na 0 (Array.length t.tag_counts);
    t.tag_counts <- na
  end;
  t.tag_counts.(tid) <- t.tag_counts.(tid) + d

let slot_for t key =
  match Hashtbl.find_opt t.index key with
  | Some s -> s
  | None ->
    if t.index_shared then begin
      t.index <- Hashtbl.copy t.index;
      t.index_shared <- false
    end;
    let s = t.n_slots in
    if s >= Array.length t.counts then begin
      let na = Array.make (max 16 (2 * Array.length t.counts)) 0 in
      Array.blit t.counts 0 na 0 (Array.length t.counts);
      t.counts <- na;
      t.counts_shared <- false
    end;
    t.n_slots <- s + 1;
    Hashtbl.add t.index key s;
    s

(* Walks [elems] (sorted by virtual start, properly nested) with an
   ancestor stack and hands [f] each element's full root-to-element
   path in a scratch buffer: [ctx_tids], then the tags of the enclosing
   fragment elements, then the element's own tag.  The buffer is only
   valid for the duration of the call.  [until] stops the walk at the
   first element starting at or past that virtual position — sound
   whenever the caller only cares about elements starting before it. *)
let iter_element_paths ?(until = max_int) ~ctx_tids elems f =
  let nctx = Array.length ctx_tids in
  let buf = ref (Array.make (nctx + 16) 0) in
  Array.blit ctx_tids 0 !buf 0 nctx;
  let stops = ref (Array.make 16 0) in
  let depth = ref 0 in
  try
    Vec.iter
      (fun (e : Er_node.elem) ->
        if e.Er_node.start >= until then raise Exit;
        while !depth > 0 && !stops.(!depth - 1) <= e.Er_node.start do
          decr depth
        done;
        let len = nctx + !depth + 1 in
        if len > Array.length !buf then begin
          let nb = Array.make (2 * len) 0 in
          Array.blit !buf 0 nb 0 (Array.length !buf);
          buf := nb
        end;
        !buf.(len - 1) <- e.Er_node.tid;
        f !buf len e;
        (* Push after the call: the slot written above doubles as the
           stack entry for elements nested inside [e]. *)
        if !depth = Array.length !stops then begin
          let ns = Array.make (2 * !depth) 0 in
          Array.blit !stops 0 ns 0 !depth;
          stops := ns
        end;
        !stops.(!depth) <- e.Er_node.stop;
        incr depth)
      elems
  with Exit -> ()

let add_segment t ~sid ~ctx_tids ~elems =
  own_counts t;
  let tags = ref [] in
  Vec.iter
    (fun (e : Er_node.elem) ->
      if not (List.mem e.Er_node.tid !tags) then tags := e.Er_node.tid :: !tags)
    elems;
  let tag_set = Array.of_list (List.sort Int.compare !tags) in
  Hashtbl.replace t.segs sid { ctx_tids; tag_set };
  (* Sibling runs repeat the same path back to back, so memoize the
     last slot and skip the hash round-trip for repeats. *)
  let last_key = ref [||] in
  let last_slot = ref (-1) in
  iter_element_paths ~ctx_tids elems (fun buf len e ->
      bump_total t e.Er_node.tid 1;
      t.elems <- t.elems + 1;
      let lk = !last_key in
      let same =
        Array.length lk = len
        &&
        let rec eq i = i >= len || (lk.(i) = buf.(i) && eq (i + 1)) in
        eq 0
      in
      let s =
        if same then !last_slot
        else begin
          let key = Array.sub buf 0 len in
          let s = slot_for t key in
          last_key := key;
          last_slot := s;
          s
        end
      in
      if t.counts.(s) = 0 then t.live_paths <- t.live_paths + 1;
      t.counts.(s) <- t.counts.(s) + 1)

let remove_matching ?until t ~sid ~elems ~removed =
  own_counts t;
  let ctx_tids = context t ~sid in
  iter_element_paths ?until ~ctx_tids elems (fun buf len e ->
      if removed e then begin
        bump_total t e.Er_node.tid (-1);
        t.elems <- t.elems - 1;
        let key = Array.sub buf 0 len in
        match Hashtbl.find_opt t.index key with
        | Some s when t.counts.(s) > 0 ->
          t.counts.(s) <- t.counts.(s) - 1;
          if t.counts.(s) = 0 then t.live_paths <- t.live_paths - 1
        | Some _ | None -> ()
      end)

let remove_segment t ~sid ~elems =
  remove_matching t ~sid ~elems ~removed:(fun _ -> true);
  Hashtbl.remove t.segs sid

let iter t f =
  let counts = t.counts in
  Hashtbl.iter
    (fun k s ->
      let c = counts.(s) in
      if c > 0 then f k c)
    t.index

let to_sorted_list t =
  let counts = t.counts in
  Hashtbl.fold
    (fun k s acc ->
      let c = counts.(s) in
      if c > 0 then (Array.to_list k, c) :: acc else acc)
    t.index []
  |> List.sort compare

let equal a b =
  a.elems = b.elems
  && a.live_paths = b.live_paths
  && Hashtbl.fold
       (fun k s ok ->
         ok
         &&
         let c = a.counts.(s) in
         c = 0
         ||
         match Hashtbl.find_opt b.index k with
         | Some s' -> b.counts.(s') = c
         | None -> false)
       a.index true

let size_bytes t =
  let paths =
    Hashtbl.fold (fun k _ acc -> acc + (8 * (Array.length k + 3))) t.index 0
  in
  let segs =
    Hashtbl.fold
      (fun _ s acc ->
        acc + (8 * (Array.length s.ctx_tids + Array.length s.tag_set + 4)))
      t.segs 0
  in
  paths + segs + (8 * (Array.length t.counts + Array.length t.tag_counts))
