(** The tag-list (§3.2): an inverted list mapping each tag id to the
    segments containing at least one element of that tag.

    Each entry carries the segment's ER-tree {e path} (the sids of its
    ancestors plus its own) and the count of elements of that tag in
    the segment, which decides when to drop the entry on deletion
    (§3.3).  Per-tag lists are kept sorted by the segments' current
    global positions under the lazy-dynamic discipline; the
    lazy-static discipline appends unsorted and sorts on demand just
    before querying (§5.1). *)

type entry = { sid : int; path : int array; mutable count : int }

exception Dirty_tag_list of int
(** Raised by {!entries} when the requested tag's list is dirty; the
    payload is the tag id.  Call {!sort_all} first. *)

type t

val create : unit -> t

val add_sorted : t -> tid:int -> entry -> gp_of:(int -> int) -> unit
(** Inserts the entry at its global-position rank (the LD discipline).
    [gp_of] resolves a segment's current global position. *)

val append : t -> tid:int -> entry -> unit
(** Appends to the tag's {e pending run} and marks that tag's list
    dirty (the LS discipline).  Dirtiness is tracked per tag, so
    updating one tag never forces a re-sort of the others. *)

val sort_all : t -> gp_of:(int -> int) -> unit
(** Brings every dirty per-tag list back to global-position order —
    the LS pre-query step.  Clean lists (including all lists of tags
    no update touched) are left alone.

    The main run of a list stays sorted by {e current} gp across
    updates (gp shifts are monotone, so they never reorder existing
    entries), so only the pending run accumulated since the last sort
    needs sorting, followed by a single two-way merge: O(n + p·log p)
    for p pending entries in a list of n.  Entries with equal gps keep
    the main run first and pending arrivals in order, byte-identical
    to having inserted each entry with {!add_sorted}.  Set
    [LXU_TAGSORT=resort] to use the legacy full re-sort instead (the
    differential oracle in the test suite). *)

val is_dirty : t -> bool
(** Whether any per-tag list is dirty (O(1)). *)

val dirty_count : t -> int
(** Number of per-tag lists with a pending run awaiting {!sort_all} —
    a fragmentation signal for the maintenance scheduler (O(1)). *)

val mark_dirty : t -> unit
(** Marks every per-tag list dirty, forcing the next {!sort_all} to
    re-sort all of them (benchmark helper for re-measuring the full LS
    pre-query cost). *)

val decrement : t -> tid:int -> sid:int -> by:int -> unit
(** Lowers the element count of [(tid, sid)]; the entry is removed
    when the count reaches zero.  Unknown pairs are ignored (the
    segment may already have been dropped). *)

val remove_segment : t -> sid:int -> unit
(** Removes the segment's entries from every per-tag list (full
    segment deletion). *)

val clone : t -> t
(** Independent copy for frozen snapshots: fresh slot and entry
    records (entry counts are mutable), shared write-once [path]
    arrays.  Dirty bits and cost counters carry over. *)

val entries : t -> tid:int -> entry array
(** Entries for a tag in global-position order.
    @raise Dirty_tag_list if {e this tag's} list is dirty (call
    {!sort_all} first); other tags being dirty does not block the
    read. *)

val tag_segments : t -> tid:int -> int
(** Number of segments holding at least one element of the tag:
    main-run length plus pending-run length, O(1) and readable while
    the tag's list is dirty (cardinality never depends on order, so no
    sort is forced, unlike {!entries}). *)

val tag_elements : t -> tid:int -> int
(** Live elements of the tag across all segments, O(1) via a counter
    maintained by every add/decrement/removal; also readable while
    dirty. *)

val max_segments : t -> int
(** The widest per-tag list, in segments — the tag-skew signal
    surfaced through [Update_log.frag_stats] for the maintenance
    scheduler.  O(distinct tags), no sort forced. *)

val tids : t -> int list

val path_ops : t -> int
(** Cumulative count of path insertions/removals (cost metric). *)

val size_bytes : t -> int
(** Approximate footprint: the paper's O(T·N²) term. *)
