open Lxu_util
open Lxu_btree

type mode = Lazy_dynamic | Lazy_static

type metrics = {
  mutable gp_shifts : int;
  mutable nodes_visited : int;
  mutable segments_inserted : int;
  mutable segments_removed : int;
  mutable elements_removed : int;
}

type t = {
  mode : mode;
  index_attributes : bool;
  registry : Tag_registry.t;
  root : Er_node.t;
  mutable sb : Sb_index.t;
  mutable sb_dirty : bool;
  tag_list : Tag_list.t;
  element_index : Element_index.t;
  mutable synopsis : Path_synopsis.t;
  cache : Seg_cache.t;
  mutable next_sid : int;
  mutable live_segments : int;  (* segments alive, dummy root excluded *)
  mutable er_depth : int;
  (* Deepest ER chain (edges below the dummy root): a high-water mark
     bumped on insert and re-anchored to the exact value by every
     [fragmented_subtrees] scan (removes never lower it on their own). *)
  branching : int;
  metrics : metrics;
  frozen : bool;  (* immutable snapshot produced by [freeze] *)
  qepoch : int;  (* cache epoch for lookups/fills: the snapshot's pinned
                    epoch, or [Seg_cache.latest] on the mutable side *)
  frozen_elems : int;  (* element count captured at freeze time (the
                          snapshot carries no element index) *)
}

let create ?(mode = Lazy_dynamic) ?(index_attributes = false) ?(branching = 32) ?cache_bytes
    ?(backend = Storage_backend.Mem) () =
  let root = Er_node.make_root () in
  let sb = Sb_index.create ~branching ~backend () in
  Sb_index.insert sb 0 root;
  {
    mode;
    index_attributes;
    registry = Tag_registry.create ();
    root;
    sb;
    sb_dirty = false;
    tag_list = Tag_list.create ();
    element_index = Element_index.create ~branching ~backend ();
    synopsis = Path_synopsis.create ();
    cache = Seg_cache.create ?max_bytes:cache_bytes ();
    next_sid = 1;
    live_segments = 0;
    er_depth = 0;
    branching;
    metrics =
      {
        gp_shifts = 0;
        nodes_visited = 0;
        segments_inserted = 0;
        segments_removed = 0;
        elements_removed = 0;
      };
    frozen = false;
    qepoch = Seg_cache.latest;
    frozen_elems = 0;
  }

let mode t = t.mode
let indexes_attributes t = t.index_attributes
let doc_length t = t.root.Er_node.len

let segment_count t = t.live_segments

(* Reference implementation of {!segment_count}: the full ER-tree walk
   the live counter replaced.  [check] (and the tests) assert the two
   agree. *)
let segment_count_walk t =
  let n = ref 0 in
  Er_node.iter_subtree t.root (fun _ -> incr n);
  !n - 1

(* Exact deepest ER chain (edges below the dummy root), re-anchoring
   the incremental high-water in [t.er_depth]. *)
let refresh_er_depth t =
  let deepest = ref 0 in
  let rec walk d (n : Er_node.t) =
    if d > !deepest then deepest := d;
    Vec.iter (fun k -> walk (d + 1) k) n.Er_node.children
  in
  walk 0 t.root;
  t.er_depth <- !deepest;
  !deepest

let element_count t =
  if t.frozen then t.frozen_elems else Element_index.size t.element_index

let is_frozen t = t.frozen
let epoch t = t.qepoch
let root t = t.root
let registry t = t.registry
let element_index t = t.element_index
let metrics t = t.metrics
let tag_list t = t.tag_list
let cache t = t.cache
let synopsis t = t.synopsis

(* gp resolution used to keep tag lists sorted; walks the ER-tree
   structures already in memory, independent of SB-tree freshness. *)
let gp_table t =
  let table = Hashtbl.create 256 in
  Er_node.iter_subtree t.root (fun n -> Hashtbl.replace table n.Er_node.sid n.Er_node.gp);
  fun sid -> Hashtbl.find table sid

(* From-scratch path synopsis of an ER-tree: the incremental oracle
   (used by [load], [check] and the tests).  Context chains come from
   the current skeletons with the same strict-containment predicate
   insertion uses; pre-order traversal guarantees a parent's chain is
   recorded before its children need it. *)
let synopsis_of_tree (root : Er_node.t) =
  let open Er_node in
  let syn = Path_synopsis.create () in
  let ctxs = Hashtbl.create 64 in
  Hashtbl.add ctxs root.sid [||];
  Er_node.iter_subtree root (fun n ->
      if not (is_root n) then begin
        let parent = match n.parent with Some p -> p | None -> root in
        let pctx = try Hashtbl.find ctxs parent.sid with Not_found -> [||] in
        let own =
          Vec.fold_left
            (fun acc (e : elem) ->
              if e.start < n.lp && e.stop > n.lp then e.tid :: acc else acc)
            [] parent.elems
        in
        let ctx =
          match own with
          | [] -> pctx
          | _ -> Array.append pctx (Array.of_list (List.rev own))
        in
        Hashtbl.add ctxs n.sid ctx;
        Path_synopsis.add_segment syn ~sid:n.sid ~ctx_tids:ctx ~elems:n.elems
      end);
  syn

let synopsis_rebuilt t = synopsis_of_tree t.root

(* --- insertion (Figure 5) ------------------------------------------ *)

(* Steps 1-4 of Figure 5, shared by [insert] and [insert_batch]: shift
   global positions, descend to the covering parent, derive the local
   position and base level, then build and link the new node.
   [elems_for] receives the computed base level and produces the
   segment's element skeletons. *)
let link_new_segment t ~gp ~text ~elems_for =
  let open Er_node in
  let len = String.length text in
  (* Step 1: shift the global position of every segment at or after the
     insertion point (AddNewSegment_Start). *)
  Er_node.iter_subtree t.root (fun m ->
      if (not (is_root m)) && m.gp >= gp then begin
        m.gp <- m.gp + len;
        t.metrics.gp_shifts <- t.metrics.gp_shifts + 1
      end);
  (* Step 2: descend to the parent segment, growing lengths on the way
     (AddNewSegment).  A child still covers the insertion point iff
     [c.gp < gp < c.gp + c.len]: shifted children now start after [gp],
     and an unshifted child's length is not yet updated. *)
  let rec descend s =
    t.metrics.nodes_visited <- t.metrics.nodes_visited + 1;
    s.len <- s.len + len;
    let covering =
      (* Only the last child starting before [gp] can cover it. *)
      let i = child_index_for_gp s gp in
      if i = 0 then None
      else begin
        let c = Vec.get s.children (i - 1) in
        if c.gp < gp && gp < c.gp + c.len then Some c else None
      end
    in
    match covering with Some c -> descend c | None -> s
  in
  let parent = descend t.root in
  (* Step 3: local position (Definition 2), converted to the parent's
     virtual coordinates. *)
  let before_len =
    Vec.fold_left
      (fun acc (c : Er_node.t) -> if c.gp < gp then acc + c.len else acc)
      0 parent.children
  in
  let x_phys = gp - parent.gp - before_len in
  (* When [x_phys] sits on a tombstone boundary, every virtual position
     across the gap is physically equivalent; clamp against the left
     sibling's lp so child local positions stay ordered. *)
  let lp =
    let vlow = virt_of_own_phys_before parent x_phys in
    let prev_lp =
      let i = child_index_for_gp parent gp in
      if i = 0 then vlow else (Vec.get parent.children (i - 1)).lp
    in
    max vlow prev_lp
  in
  (* One early-exit prefix scan (the [depth_at] predicate) yields both
     the splice depth and the tids of the parent elements strictly
     containing the splice point — the segment's own slice of its
     context chain, collected here so the synopsis bookkeeping below
     never re-walks [parent.elems]. *)
  let base_level, own_ctx =
    let depth = ref parent.base_level in
    let own = ref [] in
    let i = ref 0 in
    let n = Vec.length parent.elems in
    while !i < n && (Vec.get parent.elems !i).start < lp do
      let e = Vec.get parent.elems !i in
      if e.stop > lp then begin
        incr depth;
        own := e.tid :: !own
      end;
      incr i
    done;
    (!depth, List.rev !own)
  in
  (* Step 4: build and link the node. *)
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let elems = elems_for ~base_level in
  let node = Er_node.make ~sid ~gp ~lp ~base_level ~text ~elems in
  node.parent <- Some parent;
  Vec.insert_at parent.children (child_index_for_gp parent gp) node;
  t.live_segments <- t.live_segments + 1;
  let rec chain d (n : Er_node.t) =
    match n.parent with None -> d | Some p -> chain (d + 1) p
  in
  let d = chain 0 node in
  if d > t.er_depth then t.er_depth <- d;
  (* Path synopsis: the segment's context chain is its parent's chain
     plus the containing elements collected above, so the chain length
     equals [base_level].  It is immutable for the segment's lifetime:
     an enclosing element's extent covers the whole segment, so
     removing it removes the segment too. *)
  let ctx_tids =
    let pctx =
      if is_root parent then [||] else Path_synopsis.context t.synopsis ~sid:parent.sid
    in
    match own_ctx with
    | [] -> pctx
    | own -> Array.append pctx (Array.of_list own)
  in
  Path_synopsis.add_segment t.synopsis ~sid ~ctx_tids ~elems:node.elems;
  node

(* Distinct-tag element counts of a segment, for tag-list entries. *)
let tag_counts (node : Er_node.t) =
  let counts = Hashtbl.create 8 in
  Vec.iter
    (fun (e : Er_node.elem) ->
      Hashtbl.replace counts e.Er_node.tid
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.Er_node.tid)))
    node.Er_node.elems;
  counts

let frozen_guard t who =
  if t.frozen then invalid_arg (who ^ ": frozen snapshot, updates go to the live log")

let insert t ~gp text =
  let open Er_node in
  frozen_guard t "Update_log.insert";
  if text = "" then invalid_arg "Update_log.insert: empty segment";
  if gp < 0 || gp > t.root.len then invalid_arg "Update_log.insert: gp out of bounds";
  let nodes = Lxu_xml.Parser.parse_fragment text in
  let node =
    link_new_segment t ~gp ~text ~elems_for:(fun ~base_level ->
        let elems = ref [] in
        Lxu_xml.Tree.iter_labels ~attributes:t.index_attributes ~base_level nodes
          (fun ~name ~start ~stop ~level ->
            elems :=
              { start; stop; level; tid = Tag_registry.intern t.registry name } :: !elems);
        List.rev !elems)
  in
  let sid = node.sid in
  (* Step 5: SB-tree (kept fresh only under LD). *)
  (match t.mode with
  | Lazy_dynamic -> Sb_index.insert t.sb sid node
  | Lazy_static -> t.sb_dirty <- true);
  (* Step 6: element index. *)
  Vec.iter
    (fun (e : elem) ->
      Element_index.add t.element_index
        { tid = e.tid; sid; start = e.start; stop = e.stop; level = e.level })
    node.elems;
  (* Step 7: tag-list, one path entry per distinct tag in the segment. *)
  let counts = tag_counts node in
  let path = Er_node.path node in
  let gp_of = lazy (gp_table t) in
  Hashtbl.iter
    (fun tid count ->
      let entry = { Tag_list.sid; path; count } in
      match t.mode with
      | Lazy_dynamic -> Tag_list.add_sorted t.tag_list ~tid entry ~gp_of:(Lazy.force gp_of)
      | Lazy_static -> Tag_list.append t.tag_list ~tid entry)
    counts;
  t.metrics.segments_inserted <- t.metrics.segments_inserted + 1;
  (* Read cache: only the new segment's epoch moves — element sets of
     every existing segment are untouched by an insert (local labels
     are immutable), so their cached snapshots stay valid. *)
  Seg_cache.invalidate_segment t.cache ~sid;
  sid

(* --- batched insertion --------------------------------------------- *)

let insert_batch ?pool t edits =
  let open Er_node in
  frozen_guard t "Update_log.insert_batch";
  match edits with
  | [] -> []
  | _ ->
    let edits = Array.of_list edits in
    let b = Array.length edits in
    (* All-or-nothing up-front validation: every failure mode of
       [insert] is decidable before anything is mutated.  Emptiness and
       well-formedness are per-fragment and pure; the gp bound of edit
       k is the document length after the k-1 edits before it — a
       running sum. *)
    let running = ref t.root.len in
    Array.iter
      (fun (gp, text) ->
        if text = "" then invalid_arg "Update_log.insert_batch: empty segment";
        if gp < 0 || gp > !running then
          invalid_arg "Update_log.insert_batch: gp out of bounds";
        running := !running + String.length text)
      edits;
    (* Parse and label every fragment first — parsing is pure, so this
       fans out over the domain pool.  Levels are extracted relative to
       the fragment root and rebased once the insertion point is known;
       tag interning (shared registry) stays on the applying thread. *)
    let label i =
      let _, text = edits.(i) in
      let nodes = Lxu_xml.Parser.parse_fragment text in
      let acc = ref [] in
      Lxu_xml.Tree.iter_labels ~attributes:t.index_attributes ~base_level:0 nodes
        (fun ~name ~start ~stop ~level -> acc := (name, start, stop, level) :: !acc);
      Array.of_list (List.rev !acc)
    in
    let labelled =
      match pool with
      | Some p when b > 1 -> Domain_pool.map p b label
      | _ -> Array.init b label
    in
    (* Serial ER-tree application.  Index maintenance is deferred:
       instead of B SB-tree descents, B element-index insert runs and B
       tag-list passes, the batch pays one bulk merge into each. *)
    let sb_pairs = ref [] in
    let ekeys = Vec.create () in
    let sids = ref [] in
    Array.iteri
      (fun k (gp, text) ->
        let node =
          link_new_segment t ~gp ~text ~elems_for:(fun ~base_level ->
              Array.to_list labelled.(k)
              |> List.map (fun (name, start, stop, level) ->
                     {
                       start;
                       stop;
                       level = base_level + level;
                       tid = Tag_registry.intern t.registry name;
                     }))
        in
        let sid = node.sid in
        (match t.mode with
        | Lazy_dynamic -> sb_pairs := (sid, node) :: !sb_pairs
        | Lazy_static -> t.sb_dirty <- true);
        Vec.iter
          (fun (e : elem) ->
            Vec.push ekeys
              {
                Element_index.tid = e.tid;
                sid;
                start = e.start;
                stop = e.stop;
                level = e.level;
              })
          node.elems;
        let path = Er_node.path node in
        Hashtbl.iter
          (fun tid count ->
            Tag_list.append t.tag_list ~tid { Tag_list.sid = sid; path; count })
          (tag_counts node);
        t.metrics.segments_inserted <- t.metrics.segments_inserted + 1;
        Seg_cache.invalidate_segment t.cache ~sid;
        sids := sid :: !sids)
      edits;
    (* One element-index bulk merge for the whole batch. *)
    Element_index.add_batch t.element_index (Vec.to_array ekeys);
    (match t.mode with
    | Lazy_dynamic ->
      (* One SB-tree batch insert — sids were assigned in ascending
         order, so the pairs are already sorted — and one tag-list
         merge over a single gp table, restoring the LD query-ready
         invariant with one pass instead of B. *)
      Sb_index.insert_sorted_batch t.sb (Array.of_list (List.rev !sb_pairs));
      Tag_list.sort_all t.tag_list ~gp_of:(gp_table t)
    | Lazy_static -> ());
    List.rev !sids

(* --- removal (Figure 7) -------------------------------------------- *)

(* Pure pre-check mirroring [remove]'s gap computation: raises if the
   range would split an element, before anything is mutated — a failed
   removal must leave the log untouched. *)
let validate_remove t ~gp ~len =
  let open Er_node in
  let rec walk (s : Er_node.t) x y =
    let snapshot = Vec.to_list s.children |> List.map (fun k -> (k, k.gp, k.gp + k.len)) in
    let own_gaps =
      let gaps = ref [] in
      let cursor = ref x in
      List.iter
        (fun (_, a, b) ->
          if b <= x || a >= y then ()
          else begin
            if a > !cursor then gaps := (!cursor, a) :: !gaps;
            cursor := max !cursor (min b y)
          end)
        snapshot;
      if !cursor < y then gaps := (!cursor, y) :: !gaps;
      List.rev !gaps
    in
    (match own_gaps with
    | [] -> ()
    | (u0, v0) :: _ ->
      let local u =
        let before_len =
          List.fold_left (fun acc (_, a, b) -> if b <= u then acc + (b - a) else acc) 0 snapshot
        in
        u - s.gp - before_len
      in
      let ulast, vlast = match List.rev own_gaps with last :: _ -> last | [] -> (u0, v0) in
      let vu = virt_of_own_phys s (local u0) in
      let vv = virt_of_own_phys s (local ulast + (vlast - ulast)) in
      Vec.iter
        (fun (e : elem) ->
          let crosses =
            (e.start >= vu && e.start < vv && e.stop > vv)
            || (e.start < vu && e.stop > vu && e.stop <= vv)
          in
          if crosses then
            invalid_arg
              "Update_log.remove: range splits an element (not a well-formed fragment)")
        s.elems);
    List.iter
      (fun (k, a, b) ->
        if b <= x || a >= y then ()
        else if x <= a && b <= y then ()
        else walk k (max a x) (min b y))
      snapshot
  in
  walk t.root gp (gp + len)

let remove t ~gp ~len =
  let open Er_node in
  frozen_guard t "Update_log.remove";
  if len <= 0 then invalid_arg "Update_log.remove: non-positive length";
  if gp < 0 || gp + len > t.root.len then invalid_arg "Update_log.remove: range out of bounds";
  validate_remove t ~gp ~len;
  let y_end = gp + len in
  let removed_sids = ref [] in
  (* (sid, tid, count) decrements for partially affected segments. *)
  let decrements = Hashtbl.create 8 in
  let note_removed_elem sid (e : elem) =
    let key = (sid, e.tid) in
    Hashtbl.replace decrements key (1 + Option.value ~default:0 (Hashtbl.find_opt decrements key));
    t.metrics.elements_removed <- t.metrics.elements_removed + 1;
    ignore (Element_index.remove t.element_index
              { tid = e.tid; sid; start = e.start; stop = e.stop; level = e.level })
  in
  let delete_subtree k =
    Er_node.iter_subtree k (fun n ->
        removed_sids := n.sid :: !removed_sids;
        Path_synopsis.remove_segment t.synopsis ~sid:n.sid ~elems:n.elems;
        Vec.iter
          (fun (e : elem) ->
            t.metrics.elements_removed <- t.metrics.elements_removed + 1;
            ignore (Element_index.remove t.element_index
                      { tid = e.tid; sid = n.sid; start = e.start; stop = e.stop; level = e.level }))
          n.elems;
        match t.mode with
        | Lazy_dynamic -> ignore (Sb_index.remove t.sb n.sid)
        | Lazy_static -> t.sb_dirty <- true)
  in
  (* Removes virtual range [vu, vv) of [s]'s own text: tombstone it and
     drop the elements it covered. *)
  let tombstone_own s vu vv =
    (* Synopsis decrements need the pre-removal skeleton (surviving
       elements still enclose the removed ones during the scan);
       [validate_remove] already rejected element-splitting ranges, so
       this runs only on edits that will complete. *)
    Path_synopsis.remove_matching ~until:vv t.synopsis ~sid:s.sid ~elems:s.elems
      ~removed:(fun (e : elem) -> e.start >= vu && e.stop <= vv);
    (* Collect covered elements first; reject element-splitting edits. *)
    let kept = Vec.create () in
    Vec.iter
      (fun (e : elem) ->
        let fully_inside = e.start >= vu && e.stop <= vv in
        let crosses =
          (e.start >= vu && e.start < vv && e.stop > vv)
          || (e.start < vu && e.stop > vu && e.stop <= vv)
        in
        if crosses then
          invalid_arg "Update_log.remove: range splits an element (not a well-formed fragment)";
        if fully_inside then note_removed_elem s.sid e else Vec.push kept e)
      s.elems;
    (* Replace the Vec wholesale instead of clearing in place: frozen
       snapshots share [elems] with the live tree. *)
    s.elems <- kept;
    add_tombstone s vu vv
  in
  (* Recursive removal in pre-removal global coordinates; [x, y) is
     contained in [s]'s span and [s] survives. *)
  let rec remove_range s x y =
    t.metrics.nodes_visited <- t.metrics.nodes_visited + 1;
    s.len <- s.len - (y - x);
    (* Pre-removal child extents. *)
    let snapshot =
      Vec.to_list s.children |> List.map (fun k -> (k, k.gp, k.gp + k.len))
    in
    (* Own-text bytes of [x, y): the parts not covered by children, in
       left-to-right order. *)
    let own_gaps =
      let gaps = ref [] in
      let cursor = ref x in
      List.iter
        (fun (_, a, b) ->
          if b <= x || a >= y then ()
          else begin
            if a > !cursor then gaps := (!cursor, a) :: !gaps;
            cursor := max !cursor (min b y)
          end)
        snapshot;
      if !cursor < y then gaps := (!cursor, y) :: !gaps;
      List.rev !gaps
    in
    (* The gaps form one contiguous virtual range: any child strictly
       between two gaps is fully covered by the removal, so it occupies
       zero virtual width.  Convert the extreme points to virtual
       coordinates and tombstone once — per-gap tombstones would
       wrongly report an element spanning a removed child as split. *)
    (match own_gaps with
    | [] -> ()
    | (u0, v0) :: _ ->
      let local u =
        let before_len =
          List.fold_left (fun acc (_, a, b) -> if b <= u then acc + (b - a) else acc) 0 snapshot
        in
        u - s.gp - before_len
      in
      let ulast, vlast =
        match List.rev own_gaps with last :: _ -> last | [] -> (u0, v0)
      in
      let vu = virt_of_own_phys s (local u0) in
      let vv = virt_of_own_phys s (local ulast + (vlast - ulast)) in
      tombstone_own s vu vv);
    (* Children cases of §3.3. *)
    List.iter
      (fun (k, a, b) ->
        if b <= x || a >= y then () (* untouched here; global shift follows *)
        else if x <= a && b <= y then begin
          (* Case 2: k is contained in the removed range. *)
          let idx = ref (-1) in
          Vec.iteri (fun i c -> if c == k then idx := i) s.children;
          ignore (Vec.remove_at s.children !idx);
          delete_subtree k
        end
        else begin
          (* Cases 1 and 3: recurse with the clipped range (the
             auxiliary segment of Figure 7). *)
          let sx = max a x and sy = min b y in
          remove_range k sx sy;
          (* Right intersection: the survivors of k start at the end of
             the removed range (pre-shift coordinates). *)
          if sx = a then k.gp <- sy
        end)
      snapshot
  in
  remove_range t.root gp y_end;
  (* Global shift (RemoveSegment_Start, applied once at the end so the
     recursion works in one coordinate system). *)
  Er_node.iter_subtree t.root (fun m ->
      if (not (is_root m)) && m.gp >= y_end then begin
        m.gp <- m.gp - len;
        t.metrics.gp_shifts <- t.metrics.gp_shifts + 1
      end);
  (* Tag-list maintenance. *)
  List.iter (fun sid -> Tag_list.remove_segment t.tag_list ~sid) !removed_sids;
  Hashtbl.iter
    (fun (sid, tid) count -> Tag_list.decrement t.tag_list ~tid ~sid ~by:count)
    decrements;
  (* Read cache: exactly the segments whose element sets changed —
     deleted subtrees and partially-tombstoned survivors. *)
  if Seg_cache.enabled t.cache then begin
    let soiled = Hashtbl.create 8 in
    List.iter (fun sid -> Hashtbl.replace soiled sid ()) !removed_sids;
    Hashtbl.iter (fun (sid, _) _ -> Hashtbl.replace soiled sid ()) decrements;
    Hashtbl.iter (fun sid () -> Seg_cache.invalidate_segment t.cache ~sid) soiled
  end;
  t.live_segments <- t.live_segments - List.length !removed_sids;
  t.metrics.segments_removed <- t.metrics.segments_removed + List.length !removed_sids

(* --- query-side accessors ------------------------------------------ *)

let mark_stale t =
  frozen_guard t "Update_log.mark_stale";
  t.sb_dirty <- true;
  Tag_list.mark_dirty t.tag_list

let prepare_for_query t =
  if t.sb_dirty then begin
    (* Bulk SB rebuild: collect (sid, node) pairs, sort by sid, and
       bottom-up load — one O(n log n) sort instead of n tree
       descents with splits. *)
    let pairs = Vec.create () in
    Er_node.iter_subtree t.root (fun n -> Vec.push pairs (n.Er_node.sid, n));
    let pairs = Vec.to_array pairs in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) pairs;
    Sb_index.load_sorted t.sb pairs;
    t.sb_dirty <- false
  end;
  if Tag_list.is_dirty t.tag_list then Tag_list.sort_all t.tag_list ~gp_of:(gp_table t)

let node_of_sid t sid =
  if t.sb_dirty then failwith "Update_log.node_of_sid: stale SB-tree, call prepare_for_query";
  match Sb_index.find t.sb sid with Some n -> n | None -> raise Not_found

let segments_for_tag t ~tag =
  match Tag_registry.find t.registry tag with
  | None -> [||]
  | Some tid -> Tag_list.entries t.tag_list ~tid

(* Frozen snapshots carry no element index; their per-segment element
   sets come straight from the cloned skeletons, whose [elems] Vecs are
   already in ascending-[start] order — the same order the index scan
   produces. *)
let cols_of_node (n : Er_node.t) ~tid =
  let count = ref 0 in
  Vec.iter (fun (e : Er_node.elem) -> if e.Er_node.tid = tid then incr count) n.Er_node.elems;
  let k = !count in
  let starts = Array.make k 0 and stops = Array.make k 0 and levels = Array.make k 0 in
  let i = ref 0 in
  Vec.iter
    (fun (e : Er_node.elem) ->
      if e.Er_node.tid = tid then begin
        starts.(!i) <- e.Er_node.start;
        stops.(!i) <- e.Er_node.stop;
        levels.(!i) <- e.Er_node.level;
        incr i
      end)
    n.Er_node.elems;
  { Seg_cache.starts; stops; levels }

let elements_of t ~tid ~sid =
  if t.frozen then begin
    let n = node_of_sid t sid in
    let acc = Vec.create () in
    Vec.iter
      (fun (e : Er_node.elem) ->
        if e.Er_node.tid = tid then
          Vec.push acc
            { Element_index.tid; sid; start = e.Er_node.start; stop = e.Er_node.stop;
              level = e.Er_node.level })
      n.Er_node.elems;
    Vec.to_array acc
  end
  else Element_index.elements_of_segment t.element_index ~tid ~sid

let elements_cols t ~tid ~sid =
  match Seg_cache.find_at t.cache ~epoch:t.qepoch ~tid ~sid with
  | Some c -> c
  | None ->
    let c =
      if t.frozen then cols_of_node (node_of_sid t sid) ~tid
      else Element_index.cols_of_segment t.element_index ~tid ~sid
    in
    Seg_cache.add_at t.cache ~epoch:t.qepoch ~tid ~sid c;
    c

(* --- materialization oracle ---------------------------------------- *)

let materialize t =
  let buf = Buffer.create (doc_length t + 16) in
  let rec emit (n : Er_node.t) =
    (* Emits live own text of virtual range [u, v). *)
    let emit_own u v =
      let cursor = ref u in
      Vec.iter
        (fun (a, b) ->
          if b > u && a < v then begin
            if a > !cursor then Buffer.add_substring buf n.text !cursor (a - !cursor);
            cursor := max !cursor (min b v)
          end)
        n.tombstones;
      if !cursor < v then Buffer.add_substring buf n.text !cursor (v - !cursor)
    in
    let cursor = ref 0 in
    Vec.iter
      (fun (c : Er_node.t) ->
        emit_own !cursor c.lp;
        emit c;
        cursor := c.lp)
      n.children;
    emit_own !cursor n.orig_len
  in
  emit t.root;
  Buffer.contents buf

let global_elements t ~tag =
  match Tag_registry.find t.registry tag with
  | None -> []
  | Some tid ->
    let acc = ref [] in
    Er_node.iter_subtree t.root (fun n ->
        Vec.iter
          (fun (e : Er_node.elem) ->
            if e.tid = tid then begin
              let gstart, gstop = Er_node.global_extent n e in
              acc := (gstart, gstop, e.level) :: !acc
            end)
          n.elems);
    List.sort compare !acc

(* --- sizes and checks ----------------------------------------------- *)

let sb_size_bytes t =
  let n = ref 0 in
  Er_node.iter_subtree t.root (fun node ->
      (* sid, gp, len, lp, parent pointer, child pointers, tombstones. *)
      n := !n + (8 * (8 + Vec.length node.Er_node.children + (2 * Vec.length node.Er_node.tombstones))));
  !n

let tag_list_size_bytes t = Tag_list.size_bytes t.tag_list

let size_bytes t = sb_size_bytes t + tag_list_size_bytes t

let check t =
  Er_node.check t.root;
  (* Element index agrees with the per-segment skeletons. *)
  let skeleton_count = ref 0 in
  Er_node.iter_subtree t.root (fun n ->
      Vec.iter
        (fun (e : Er_node.elem) ->
          incr skeleton_count;
          let key =
            {
              Element_index.tid = e.tid;
              sid = n.Er_node.sid;
              start = e.start;
              stop = e.stop;
              level = e.level;
            }
          in
          ignore key)
        n.Er_node.elems);
  (* Frozen snapshots carry no element index; their stored element
     count stands in for it. *)
  if t.frozen then begin
    if t.frozen_elems <> !skeleton_count then
      failwith
        (Printf.sprintf "frozen element count is %d, skeletons have %d" t.frozen_elems
           !skeleton_count)
  end
  else if Element_index.size t.element_index <> !skeleton_count then
    failwith
      (Printf.sprintf "element index has %d records, skeletons have %d"
         (Element_index.size t.element_index) !skeleton_count);
  (* Tag-list counts agree with the skeletons (sorting first: LS lists
     may be dirty, and sorting does not change their contents). *)
  Tag_list.sort_all t.tag_list ~gp_of:(gp_table t);
  let counts = Hashtbl.create 64 in
  Er_node.iter_subtree t.root (fun n ->
      Vec.iter
        (fun (e : Er_node.elem) ->
          let key = (e.Er_node.tid, n.Er_node.sid) in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        n.Er_node.elems);
  let listed = Hashtbl.create 64 in
  List.iter
    (fun tid ->
      Array.iter
        (fun (e : Tag_list.entry) -> Hashtbl.replace listed (tid, e.sid) e.count)
        (Tag_list.entries t.tag_list ~tid))
    (Tag_list.tids t.tag_list);
  Hashtbl.iter
    (fun key count ->
      match Hashtbl.find_opt listed key with
      | Some c when c = count -> ()
      | Some c ->
        failwith
          (Printf.sprintf "tag-list count for (tid %d, sid %d) is %d, skeleton says %d"
             (fst key) (snd key) c count)
      | None ->
        failwith (Printf.sprintf "tag-list misses (tid %d, sid %d)" (fst key) (snd key)))
    counts;
  Hashtbl.iter
    (fun key _ ->
      if not (Hashtbl.mem counts key) then
        failwith (Printf.sprintf "tag-list has stale entry (tid %d, sid %d)" (fst key) (snd key)))
    listed;
  (* SB-tree agrees with the ER-tree under LD. *)
  if t.mode = Lazy_dynamic && not t.sb_dirty then begin
    let live = ref 0 in
    Er_node.iter_subtree t.root (fun n ->
        incr live;
        match Sb_index.find t.sb n.Er_node.sid with
        | Some m when m == n -> ()
        | _ -> failwith (Printf.sprintf "SB-tree misses segment %d" n.Er_node.sid));
    if Sb_index.length t.sb <> !live then failwith "SB-tree holds stale segments"
  end;
  (* The live segment counter agrees with the ER-tree walk. *)
  if t.live_segments <> segment_count_walk t then
    failwith
      (Printf.sprintf "segment counter says %d, ER-tree walk says %d" t.live_segments
         (segment_count_walk t));
  (* The incrementally maintained path synopsis agrees with a
     from-scratch rebuild off the skeletons. *)
  if not (Path_synopsis.equal t.synopsis (synopsis_of_tree t.root)) then
    failwith "path synopsis disagrees with a from-scratch rebuild"

(* --- frozen snapshots (MVCC read side) ------------------------------- *)

let freeze t ~epoch =
  if t.frozen then invalid_arg "Update_log.freeze: already frozen";
  (* LS logs may be mid-laziness; bring derived structures current so
     the clone is query-ready without ever needing to mutate. *)
  prepare_for_query t;
  let root = Er_node.clone t.root in
  let pairs = Vec.create () in
  Er_node.iter_subtree root (fun n -> Vec.push pairs (n.Er_node.sid, n));
  let pairs = Vec.to_array pairs in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) pairs;
  let sb = Sb_index.of_sorted_mem ~branching:t.branching pairs in
  let elems = ref 0 in
  Er_node.iter_subtree root (fun n -> elems := !elems + Vec.length n.Er_node.elems);
  {
    mode = t.mode;
    index_attributes = t.index_attributes;
    registry = Tag_registry.clone t.registry;
    root;
    sb;
    sb_dirty = false;
    tag_list = Tag_list.clone t.tag_list;
    (* No element index: the snapshot serves element sets from the
       cloned skeletons, through the shared versioned cache. *)
    element_index = Element_index.create ~branching:t.branching ();
    synopsis = Path_synopsis.clone t.synopsis;
    cache = t.cache;
    next_sid = t.next_sid;
    live_segments = t.live_segments;
    er_depth = t.er_depth;
    branching = t.branching;
    metrics =
      {
        gp_shifts = t.metrics.gp_shifts;
        nodes_visited = t.metrics.nodes_visited;
        segments_inserted = t.metrics.segments_inserted;
        segments_removed = t.metrics.segments_removed;
        elements_removed = t.metrics.elements_removed;
      };
    frozen = true;
    qepoch = epoch;
    frozen_elems = !elems;
  }

(* --- snapshots ------------------------------------------------------- *)

(* A line-oriented format with length-prefixed raw text blocks.
   Everything needed to reproduce behaviour exactly is stored:
   segments in pre-order with their immutable virtual data (text, lp,
   base level, elements, tombstones) plus current gp/len; derived
   structures are rebuilt on load. *)

let snapshot_magic = "LAZYXML-SNAPSHOT-1"

let save t oc =
  let open Er_node in
  Printf.fprintf oc "%s\n" snapshot_magic;
  Printf.fprintf oc "mode %s\n"
    (match t.mode with Lazy_dynamic -> "LD" | Lazy_static -> "LS");
  Printf.fprintf oc "attrs %b\n" t.index_attributes;
  Printf.fprintf oc "next_sid %d\n" t.next_sid;
  Printf.fprintf oc "tags %d\n" (Tag_registry.count t.registry);
  for tid = 0 to Tag_registry.count t.registry - 1 do
    Printf.fprintf oc "%s\n" (Tag_registry.name t.registry tid)
  done;
  let count = ref 0 in
  iter_subtree t.root (fun _ -> incr count);
  Printf.fprintf oc "segments %d\n" (!count - 1);
  iter_subtree t.root (fun n ->
      if not (is_root n) then begin
        let parent_sid =
          match n.parent with Some p -> p.sid | None -> failwith "orphan segment"
        in
        Printf.fprintf oc "seg %d %d %d %d %d %d %d %d %d\n" n.sid parent_sid n.gp n.len
          n.lp n.base_level n.orig_len (Vec.length n.tombstones) (Vec.length n.elems);
        output_string oc n.text;
        output_char oc '\n';
        Vec.iter (fun (a, b) -> Printf.fprintf oc "t %d %d\n" a b) n.tombstones;
        Vec.iter
          (fun (e : elem) -> Printf.fprintf oc "e %d %d %d %d\n" e.start e.stop e.level e.tid)
          n.elems
      end)

let full_check = check

let load ?(backend = Storage_backend.Mem) ic =
  let open Er_node in
  (* Every refusal is a [Failure] naming the byte offset — callers
     (Lazy_db.load, Recovery.read_snapshot) prepend the file path.
     Nothing in here may escape as End_of_file or Invalid_argument:
     a truncated or hostile snapshot must never look like a crash. *)
  let fail fmt =
    Printf.ksprintf
      (fun msg -> failwith (Printf.sprintf "%s (snapshot byte %d)" msg (pos_in ic)))
      fmt
  in
  let line () = try input_line ic with End_of_file -> fail "snapshot truncated" in
  let scan fmt k =
    let l = line () in
    (* Scanf signals a line that ends mid-format with End_of_file. *)
    try Scanf.sscanf l fmt k
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad snapshot line: %s" l
  in
  let input_exactly n what =
    if n < 0 then fail "negative %s length %d" what n;
    try really_input_string ic n
    with End_of_file -> fail "snapshot truncated reading %d-byte %s" n what
  in
  if line () <> snapshot_magic then fail "not a lazy-xml snapshot";
  let mode =
    scan "mode %s" (function
      | "LD" -> Lazy_dynamic
      | "LS" -> Lazy_static
      | m -> fail "unknown mode %s" m)
  in
  let index_attributes = scan "attrs %B" Fun.id in
  let next_sid = scan "next_sid %d" Fun.id in
  let t = create ~mode ~index_attributes ~backend () in
  t.next_sid <- next_sid;
  let tag_count = scan "tags %d" Fun.id in
  for expected = 0 to tag_count - 1 do
    let tid = Tag_registry.intern t.registry (line ()) in
    if tid <> expected then fail "tag table out of order"
  done;
  let seg_count = scan "segments %d" Fun.id in
  if seg_count < 0 then fail "negative segment count %d" seg_count;
  let by_sid = Hashtbl.create (seg_count + 1) in
  Hashtbl.add by_sid 0 t.root;
  for _ = 1 to seg_count do
    let sid, parent_sid, gp, len, lp, base_level, orig_len, n_tomb, n_elems =
      scan "seg %d %d %d %d %d %d %d %d %d" (fun a b c d e f g h i ->
          (a, b, c, d, e, f, g, h, i))
    in
    if n_tomb < 0 || n_elems < 0 then fail "negative record count in segment %d" sid;
    let text = input_exactly orig_len "segment text" in
    (match input_char ic with
    | '\n' -> ()
    | _ -> fail "missing newline after segment text"
    | exception End_of_file -> fail "snapshot truncated");
    let node = Er_node.make ~sid ~gp ~lp ~base_level ~text ~elems:[] in
    node.len <- len;
    for _ = 1 to n_tomb do
      let a, b = scan "t %d %d" (fun a b -> (a, b)) in
      Vec.push node.tombstones (a, b)
    done;
    for _ = 1 to n_elems do
      let start, stop, level, tid =
        scan "e %d %d %d %d" (fun a b c d -> (a, b, c, d))
      in
      Vec.push node.elems { start; stop; level; tid }
    done;
    let parent =
      match Hashtbl.find_opt by_sid parent_sid with
      | Some p -> p
      | None -> fail "segment %d arrives before its parent %d" sid parent_sid
    in
    node.parent <- Some parent;
    Vec.push parent.children node;
    Hashtbl.add by_sid sid node
  done;
  (* Root length is the sum of its children (it has no own text). *)
  t.root.len <- Vec.fold_left (fun acc (c : Er_node.t) -> acc + c.len) 0 t.root.children;
  t.live_segments <- segment_count_walk t;
  (* Rebuild derived structures: element index and tag lists from the
     skeletons, SB-tree from the ER-tree.  When attaching to a paged
     store whose checkpoint matches this snapshot, the element index is
     already durable and the per-element inserts are skipped entirely —
     [full_check] below still cross-validates it against the skeletons.
     Otherwise the keys are collected and merged in one sorted batch
     (one bulk pass instead of a descent per element). *)
  let attached =
    match backend with
    | Storage_backend.Paged { attach = true; _ } -> true
    | _ -> false
  in
  let ekeys = Vec.create () in
  Er_node.iter_subtree t.root (fun n ->
      if not (is_root n) then begin
        let counts = Hashtbl.create 8 in
        Vec.iter
          (fun (e : elem) ->
            if not attached then
              Vec.push ekeys
                { Element_index.tid = e.tid; sid = n.sid; start = e.start; stop = e.stop;
                  level = e.level };
            Hashtbl.replace counts e.tid
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.tid)))
          n.elems;
        let path = Er_node.path n in
        Hashtbl.iter
          (fun tid count -> Tag_list.append t.tag_list ~tid { Tag_list.sid = n.sid; path; count })
          counts
      end);
  if not attached then Element_index.add_batch t.element_index (Vec.to_array ekeys);
  t.sb_dirty <- true;
  t.synopsis <- synopsis_of_tree t.root;
  ignore (refresh_er_depth t);
  prepare_for_query t;
  full_check t;
  t

(* --- fragmentation statistics (maintenance scheduler input) ---------- *)

type frag_stats = {
  live_segments : int;
  dead_segments : int;
  er_depth : int;
  dirty_tags : int;
  doc_bytes : int;
  max_tag_segments : int;
}

let frag_stats (t : t) =
  {
    live_segments = t.live_segments;
    dead_segments = t.metrics.segments_removed;
    er_depth = t.er_depth;
    dirty_tags = Tag_list.dirty_count t.tag_list;
    doc_bytes = t.root.Er_node.len;
    max_tag_segments = Tag_list.max_segments t.tag_list;
  }

type subtree_frag = { sid : int; gp : int; len : int; segments : int; depth : int }

let fragmented_subtrees (t : t) =
  let subtrees = ref [] in
  let deepest = ref 0 in
  Vec.iter
    (fun (c : Er_node.t) ->
      let segs = ref 0 and dmax = ref 0 in
      let rec walk d (n : Er_node.t) =
        incr segs;
        if d > !dmax then dmax := d;
        Vec.iter (fun k -> walk (d + 1) k) n.Er_node.children
      in
      walk 1 c;
      if !dmax > !deepest then deepest := !dmax;
      subtrees :=
        {
          sid = c.Er_node.sid;
          gp = c.Er_node.gp;
          len = c.Er_node.len;
          segments = !segs;
          depth = !dmax;
        }
        :: !subtrees)
    t.root.Er_node.children;
  (* The walk just measured every chain, so re-anchor the insert-side
     high-water (removes and packs never lower it on their own). *)
  t.er_depth <- !deepest;
  List.sort
    (fun a b ->
      match Int.compare b.segments a.segments with
      | 0 -> Int.compare b.depth a.depth
      | c -> c)
    !subtrees
