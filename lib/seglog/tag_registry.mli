(** Interning of element tag names.

    The update log and element index key everything by small integer
    tag ids ([tid]); this registry assigns them on first sight and
    resolves them both ways. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t tag] returns the tid of [tag], allocating one if new. *)

val clone : t -> t
(** Independent copy for frozen snapshots ({!intern} on the live side
    mutates the table). *)

val find : t -> string -> int option
(** The tid of [tag], if it has been seen. *)

val name : t -> int -> string
(** @raise Invalid_argument on an unknown tid. *)

val count : t -> int
(** Number of distinct tags seen (the paper's [T]). *)
