type cols = { starts : int array; stops : int array; levels : int array }

let empty_cols = { starts = [||]; stops = [||]; levels = [||] }
let cols_length c = Array.length c.starts

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  stale_drops : int;
  entries : int;
  bytes : int;
  max_bytes : int;
}

(* Intrusive doubly-linked LRU: [head] is the hot (MRU) end, [tail]
   the cold end.  Every mutation happens under [mu]. *)
type entry = {
  e_tid : int;
  e_sid : int;
  e_cols : cols;
  e_bytes : int;
  e_epoch : int;
  mutable prev : entry option;  (* toward head *)
  mutable next : entry option;  (* toward tail *)
}

type t = {
  limit : int;
  mu : Mutex.t;
  tbl : (int * int, entry) Hashtbl.t;
  epochs : (int, int) Hashtbl.t;  (* sid -> current epoch *)
  mutable head : entry option;
  mutable tail : entry option;
  mutable bytes : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable stale_drops : int;
}

let default_max_bytes () =
  match Sys.getenv_opt "LXU_CACHE_BYTES" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some b -> b | None -> 64 * 1024 * 1024)
  | None -> 64 * 1024 * 1024

let create ?max_bytes () =
  let limit = match max_bytes with Some b -> b | None -> default_max_bytes () in
  {
    limit;
    mu = Mutex.create ();
    tbl = Hashtbl.create 256;
    epochs = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    stale_drops = 0;
  }

let enabled t = t.limit > 0
let max_bytes t = t.limit

(* Three unboxed int arrays (header + payload) plus the entry record,
   hash slot and LRU links — close enough for a budget, and what the
   eviction tests assert against. *)
let entry_bytes n = (3 * ((n * 8) + 24)) + 96

let epoch_of t sid = Option.value ~default:0 (Hashtbl.find_opt t.epochs sid)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e =
  unlink t e;
  Hashtbl.remove t.tbl (e.e_tid, e.e_sid);
  t.bytes <- t.bytes - e.e_bytes

let find t ~tid ~sid =
  if t.limit <= 0 then None
  else begin
    Mutex.lock t.mu;
    t.lookups <- t.lookups + 1;
    let r =
      match Hashtbl.find_opt t.tbl (tid, sid) with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e when e.e_epoch <> epoch_of t sid ->
        drop t e;
        t.stale_drops <- t.stale_drops + 1;
        t.misses <- t.misses + 1;
        None
      | Some e ->
        t.hits <- t.hits + 1;
        if t.head != Some e then begin
          unlink t e;
          push_front t e
        end;
        Some e.e_cols
    in
    Mutex.unlock t.mu;
    r
  end

let add t ~tid ~sid cols =
  if t.limit > 0 then begin
    let b = entry_bytes (cols_length cols) in
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.tbl (tid, sid) with Some old -> drop t old | None -> ());
    (* An oversize snapshot would evict everything and still not fit:
       skip it rather than thrash the whole cache. *)
    if b <= t.limit then begin
      let e =
        { e_tid = tid; e_sid = sid; e_cols = cols; e_bytes = b; e_epoch = epoch_of t sid;
          prev = None; next = None }
      in
      Hashtbl.replace t.tbl (tid, sid) e;
      push_front t e;
      t.bytes <- t.bytes + b;
      while t.bytes > t.limit do
        match t.tail with
        | Some cold ->
          drop t cold;
          t.evictions <- t.evictions + 1
        | None -> assert false (* bytes > 0 implies a tail *)
      done
    end;
    Mutex.unlock t.mu
  end

let invalidate_segment t ~sid =
  if t.limit > 0 then begin
    Mutex.lock t.mu;
    Hashtbl.replace t.epochs sid (epoch_of t sid + 1);
    t.invalidations <- t.invalidations + 1;
    Mutex.unlock t.mu
  end

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      lookups = t.lookups;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      stale_drops = t.stale_drops;
      entries = Hashtbl.length t.tbl;
      bytes = t.bytes;
      max_bytes = t.limit;
    }
  in
  Mutex.unlock t.mu;
  s
