type cols = { starts : int array; stops : int array; levels : int array }

let empty_cols = { starts = [||]; stops = [||]; levels = [||] }
let cols_length c = Array.length c.starts

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  stale_drops : int;
  stale_skips : int;
  retired_entries : int;
  reclaimed : int;
  entries : int;
  bytes : int;
  max_bytes : int;
  epoch : int;
  floor : int;
}

(* The epoch every mutable (non-frozen) log reads and fills at: past
   any publishable epoch, so a lookup at [latest] sees exactly the
   live entries.  [max_int] itself is the "still live" retirement
   sentinel, so [latest] stays strictly below it. *)
let latest = max_int - 1

(* Intrusive doubly-linked LRU: [head] is the hot (MRU) end, [tail]
   the cold end.  Every mutation happens under [mu].

   Versioning: an entry is valid for the half-open epoch interval
   [e_born, e_retired).  Live entries have [e_retired = max_int];
   {!invalidate_segment} retires them at the next publishable epoch.
   Retired entries stay findable for readers pinned at older epochs
   until the reclamation floor passes them. *)
type entry = {
  e_tid : int;
  e_sid : int;
  e_cols : cols;
  e_bytes : int;
  e_born : int;
  mutable e_retired : int;  (* max_int while live *)
  mutable e_dead : bool;  (* dropped from the table (lazy [by_sid] cleanup) *)
  mutable prev : entry option;  (* toward head *)
  mutable next : entry option;  (* toward tail *)
}

type t = {
  limit : int;
  mu : Mutex.t;
  tbl : (int * int, entry list) Hashtbl.t;  (* (tid, sid) -> versions, newest first *)
  by_sid : (int, entry list) Hashtbl.t;  (* sid -> entries, for eager retirement *)
  last_inval : (int, int) Hashtbl.t;  (* sid -> epoch of its latest invalidation *)
  mutable epoch : int;  (* latest published epoch *)
  mutable floor : int;  (* oldest epoch any reader may still pin *)
  mutable head : entry option;
  mutable tail : entry option;
  mutable bytes : int;
  mutable retired : int;  (* retired entries currently held *)
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable stale_drops : int;
  mutable stale_skips : int;
  mutable reclaimed : int;
}

let default_max_bytes () =
  match Sys.getenv_opt "LXU_CACHE_BYTES" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some b -> b | None -> 64 * 1024 * 1024)
  | None -> 64 * 1024 * 1024

let create ?max_bytes () =
  let limit = match max_bytes with Some b -> b | None -> default_max_bytes () in
  {
    limit;
    mu = Mutex.create ();
    tbl = Hashtbl.create 256;
    by_sid = Hashtbl.create 64;
    last_inval = Hashtbl.create 64;
    epoch = 0;
    floor = latest;
    head = None;
    tail = None;
    bytes = 0;
    retired = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    stale_drops = 0;
    stale_skips = 0;
    reclaimed = 0;
  }

let enabled t = t.limit > 0
let max_bytes t = t.limit

(* Actual major-heap words charged per entry, so LXU_CACHE_BYTES and
   the page pool's LXU_POOL_BYTES budgets mean the same thing:
   three unboxed int arrays at (n+1) words each (payload + header),
   the entry record (9 fields + header = 10 words = 80 bytes), the
   cols record (3 fields + header = 32), the two list cons cells in
   the hash bucket and by-sid list (2 × 3 words = 48), and the
   (tid, sid) hash key tuple (3 words = 24). *)
let entry_bytes n = (3 * (n + 1) * 8) + 184

let last_inval_of t sid = Option.value ~default:0 (Hashtbl.find_opt t.last_inval sid)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e =
  unlink t e;
  e.e_dead <- true;
  let key = (e.e_tid, e.e_sid) in
  (match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some l -> (
    match List.filter (fun x -> x != e) l with
    | [] -> Hashtbl.remove t.tbl key
    | l' -> Hashtbl.replace t.tbl key l'));
  if e.e_retired <> max_int then t.retired <- t.retired - 1;
  t.bytes <- t.bytes - e.e_bytes

let find_at t ~epoch ~tid ~sid =
  if t.limit <= 0 then None
  else begin
    Mutex.lock t.mu;
    t.lookups <- t.lookups + 1;
    (* Scan the key's version list: drop versions no pinnable epoch
       can reach any more (retired at or below the floor), return the
       one whose validity interval covers [epoch]. *)
    let rec scan = function
      | [] -> None
      | e :: rest ->
        if e.e_retired <= t.floor then begin
          drop t e;
          t.stale_drops <- t.stale_drops + 1;
          scan rest
        end
        else if e.e_born <= epoch && epoch < e.e_retired then Some e
        else scan rest
    in
    let versions = Option.value ~default:[] (Hashtbl.find_opt t.tbl (tid, sid)) in
    let r =
      match scan versions with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some e ->
        t.hits <- t.hits + 1;
        if t.head != Some e then begin
          unlink t e;
          push_front t e
        end;
        Some e.e_cols
    in
    Mutex.unlock t.mu;
    r
  end

let add_at t ~epoch ~tid ~sid cols =
  if t.limit > 0 then begin
    Mutex.lock t.mu;
    let li = last_inval_of t sid in
    (* A filler whose pinned epoch predates the segment's latest
       invalidation cannot tell which of the intervening versions its
       snapshot belongs to — refusing the insert is always safe (the
       next lookup at that epoch just re-materializes). *)
    if epoch < li then t.stale_skips <- t.stale_skips + 1
    else begin
      let b = entry_bytes (cols_length cols) in
      (* At most one live version per key: since every live entry was
         filled after the segment's last invalidation, a replacement
         carries the same validity interval (and, from honest fillers,
         the same content). *)
      List.iter
        (fun e -> if e.e_retired = max_int then drop t e)
        (Option.value ~default:[] (Hashtbl.find_opt t.tbl (tid, sid)));
      (* An oversize snapshot would evict everything and still not fit:
         skip it rather than thrash the whole cache. *)
      if b <= t.limit then begin
        let e =
          { e_tid = tid; e_sid = sid; e_cols = cols; e_bytes = b; e_born = li;
            e_retired = max_int; e_dead = false; prev = None; next = None }
        in
        Hashtbl.replace t.tbl (tid, sid)
          (e :: Option.value ~default:[] (Hashtbl.find_opt t.tbl (tid, sid)));
        Hashtbl.replace t.by_sid sid
          (e :: Option.value ~default:[] (Hashtbl.find_opt t.by_sid sid));
        push_front t e;
        t.bytes <- t.bytes + b;
        while t.bytes > t.limit do
          match t.tail with
          | Some cold ->
            drop t cold;
            t.evictions <- t.evictions + 1
          | None -> assert false (* bytes > 0 implies a tail *)
        done
      end
    end;
    Mutex.unlock t.mu
  end

let find t ~tid ~sid = find_at t ~epoch:latest ~tid ~sid
let add t ~tid ~sid cols = add_at t ~epoch:latest ~tid ~sid cols

let invalidate_segment t ~sid =
  if t.limit > 0 then begin
    Mutex.lock t.mu;
    (* The invalidation takes effect at the next publishable epoch:
       readers pinned at or below [t.epoch] keep the retired versions,
       epochs from [r] on must re-materialize. *)
    let r = t.epoch + 1 in
    Hashtbl.replace t.last_inval sid r;
    (match Hashtbl.find_opt t.by_sid sid with
    | None -> ()
    | Some l ->
      let live = List.filter (fun e -> not e.e_dead) l in
      List.iter
        (fun e ->
          if e.e_retired = max_int then begin
            e.e_retired <- r;
            t.retired <- t.retired + 1
          end)
        live;
      (match live with
      | [] -> Hashtbl.remove t.by_sid sid
      | l' -> Hashtbl.replace t.by_sid sid l'));
    t.invalidations <- t.invalidations + 1;
    Mutex.unlock t.mu
  end

let publish t ~epoch =
  Mutex.lock t.mu;
  (* Monotonic max: a fresh cache installed mid-stream (pack, rebuild)
     starts at 0 while version numbers keep rising. *)
  if epoch > t.epoch then t.epoch <- epoch;
  Mutex.unlock t.mu

let reclaim t ~floor =
  Mutex.lock t.mu;
  t.floor <- floor;
  if t.retired > 0 then begin
    (* Sweep: collect then drop (dropping unlinks, so no walking while
       splicing). *)
    let doomed = ref [] in
    let rec walk = function
      | None -> ()
      | Some e ->
        if e.e_retired <= floor then doomed := e :: !doomed;
        walk e.next
    in
    walk t.head;
    List.iter
      (fun e ->
        drop t e;
        t.reclaimed <- t.reclaimed + 1)
      !doomed
  end;
  Mutex.unlock t.mu

let current_epoch t =
  Mutex.lock t.mu;
  let e = t.epoch in
  Mutex.unlock t.mu;
  e

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.by_sid;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0;
  t.retired <- 0;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      lookups = t.lookups;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      stale_drops = t.stale_drops;
      stale_skips = t.stale_skips;
      retired_entries = t.retired;
      reclaimed = t.reclaimed;
      entries = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.tbl 0;
      bytes = t.bytes;
      max_bytes = t.limit;
      epoch = t.epoch;
      floor = t.floor;
    }
  in
  Mutex.unlock t.mu;
  s
