open Lxu_util
open Lxu_btree

type key = { tid : int; sid : int; start : int; stop : int; level : int }

module K = struct
  type t = key

  let compare a b =
    let c = Int.compare a.tid b.tid in
    if c <> 0 then c
    else begin
      let c = Int.compare a.sid b.sid in
      if c <> 0 then c
      else begin
        let c = Int.compare a.start b.start in
        if c <> 0 then c
        else begin
          let c = Int.compare a.stop b.stop in
          if c <> 0 then c else Int.compare a.level b.level
        end
      end
    end
end

module T = Bptree.Make (K)

(* Paged keys are the same five ints in the same significance order,
   so the paged tree's lexicographic word compare realises exactly
   [K.compare]. *)
let kw = 5

let encode (buf : int array) k =
  buf.(0) <- k.tid;
  buf.(1) <- k.sid;
  buf.(2) <- k.start;
  buf.(3) <- k.stop;
  buf.(4) <- k.level

type repr =
  | Mem of unit T.t
  | Paged of Paged_bptree.t

(* [accesses] is atomic so that concurrent read-side scans (parallel
   Lazy-Join fetches element arrays from worker domains) stay race-free;
   the tree itself is only ever mutated between queries.  [kbuf] is
   writer-side scratch (single-writer discipline) so per-record paged
   operations do not allocate. *)
type t = { repr : repr; accesses : int Atomic.t; kbuf : int array }

let no_value : int array = [||]

let create ?(branching = 32) ?(backend = Storage_backend.Mem) () =
  let repr =
    match backend with
    | Storage_backend.Mem -> Mem (T.create ~branching ())
    | Storage_backend.Paged { store; attach } ->
      let tree = Paged_bptree.attach store ~slot:"elem" ~kw ~vw:0 in
      (* Starting fresh over a store that still holds a previous
         tree (checkpoint-LSN mismatch, or a pack/rebuild into the
         same store): release the old pages first. *)
      if not attach then Paged_bptree.clear tree;
      Paged tree
  in
  { repr; accesses = Atomic.make 0; kbuf = Array.make kw 0 }

let is_paged t = match t.repr with Mem _ -> false | Paged _ -> true

let size t = match t.repr with Mem tr -> T.length tr | Paged tr -> Paged_bptree.length tr

let add t k =
  Atomic.incr t.accesses;
  match t.repr with
  | Mem tr -> T.insert tr k ()
  | Paged tr ->
    encode t.kbuf k;
    Paged_bptree.insert tr t.kbuf no_value

let remove t k =
  Atomic.incr t.accesses;
  match t.repr with
  | Mem tr -> T.remove tr k
  | Paged tr ->
    encode t.kbuf k;
    Paged_bptree.remove tr t.kbuf

let add_batch t keys =
  let n = Array.length keys in
  if n > 0 then begin
    Array.sort K.compare keys;
    ignore (Atomic.fetch_and_add t.accesses n);
    match t.repr with
    | Mem tr -> T.insert_sorted_batch tr (Array.map (fun k -> (k, ())) keys)
    | Paged tr ->
      Paged_bptree.insert_sorted_batch tr ~n ~get:(fun i kbuf _vbuf -> encode kbuf keys.(i))
  end

let iter_segment t ~tid ~sid f =
  let touched = ref 0 in
  (* Only records of the requested (tid, sid) count as accesses: the
     first key past the segment merely terminates the scan and is not
     an element read. *)
  (match t.repr with
  | Mem tr ->
    let lo = { tid; sid; start = min_int; stop = min_int; level = min_int } in
    T.iter_from tr lo (fun k () ->
        if k.tid = tid && k.sid = sid then begin
          incr touched;
          f k
        end
        else false)
  | Paged tr ->
    let lo = [| tid; sid; min_int; min_int; min_int |] in
    Paged_bptree.iter_from tr lo (fun kb _ ->
        if kb.(0) = tid && kb.(1) = sid then begin
          incr touched;
          f { tid = kb.(0); sid = kb.(1); start = kb.(2); stop = kb.(3); level = kb.(4) }
        end
        else false));
  if !touched > 0 then ignore (Atomic.fetch_and_add t.accesses !touched)

let elements_of_segment t ~tid ~sid =
  let acc = Vec.create () in
  iter_segment t ~tid ~sid (fun k ->
      Vec.push acc k;
      true);
  Vec.to_array acc

let cols_of_segment t ~tid ~sid =
  let starts = Vec.create () and stops = Vec.create () and levels = Vec.create () in
  (match t.repr with
  | Mem _ ->
    iter_segment t ~tid ~sid (fun k ->
        Vec.push starts k.start;
        Vec.push stops k.stop;
        Vec.push levels k.level;
        true)
  | Paged tr ->
    (* Specialized scan: the key words go straight from the page
       scratch into the columns — no key records allocated, which is
       what keeps the cache-miss path cheap when the index lives on
       pages. *)
    let touched = ref 0 in
    let lo = [| tid; sid; min_int; min_int; min_int |] in
    Paged_bptree.iter_from tr lo (fun kb _ ->
        if kb.(0) = tid && kb.(1) = sid then begin
          incr touched;
          Vec.push starts kb.(2);
          Vec.push stops kb.(3);
          Vec.push levels kb.(4);
          true
        end
        else false);
    if !touched > 0 then ignore (Atomic.fetch_and_add t.accesses !touched));
  { Seg_cache.starts = Vec.to_array starts; stops = Vec.to_array stops;
    levels = Vec.to_array levels }

let iter_all t f =
  match t.repr with
  | Mem tr -> T.iter tr (fun k () -> f k)
  | Paged tr ->
    Paged_bptree.iter tr (fun kb _ ->
        f { tid = kb.(0); sid = kb.(1); start = kb.(2); stop = kb.(3); level = kb.(4) };
        true)

let accesses t = Atomic.get t.accesses

let size_bytes t =
  match t.repr with
  | Mem tr ->
    (* 5 ints per key plus tree node overhead, roughly. *)
    let internal, leaves = T.node_counts tr in
    (T.length tr * 5 * 8) + ((internal + leaves) * 64)
  | Paged tr -> Paged_bptree.approx_bytes tr

let height t = match t.repr with Mem tr -> T.height tr | Paged tr -> Paged_bptree.height tr
