open Lxu_util
open Lxu_btree

type key = { tid : int; sid : int; start : int; stop : int; level : int }

module K = struct
  type t = key

  let compare a b =
    let c = Int.compare a.tid b.tid in
    if c <> 0 then c
    else begin
      let c = Int.compare a.sid b.sid in
      if c <> 0 then c
      else begin
        let c = Int.compare a.start b.start in
        if c <> 0 then c
        else begin
          let c = Int.compare a.stop b.stop in
          if c <> 0 then c else Int.compare a.level b.level
        end
      end
    end
end

module T = Bptree.Make (K)

(* [accesses] is atomic so that concurrent read-side scans (parallel
   Lazy-Join fetches element arrays from worker domains) stay race-free;
   the tree itself is only ever mutated between queries. *)
type t = { tree : unit T.t; accesses : int Atomic.t }

let create ?(branching = 32) () = { tree = T.create ~branching (); accesses = Atomic.make 0 }

let size t = T.length t.tree

let add t k =
  Atomic.incr t.accesses;
  T.insert t.tree k ()

let remove t k =
  Atomic.incr t.accesses;
  T.remove t.tree k

let add_batch t keys =
  let n = Array.length keys in
  if n > 0 then begin
    Array.sort K.compare keys;
    ignore (Atomic.fetch_and_add t.accesses n);
    T.insert_sorted_batch t.tree (Array.map (fun k -> (k, ())) keys)
  end

let iter_segment t ~tid ~sid f =
  let lo = { tid; sid; start = min_int; stop = min_int; level = min_int } in
  let touched = ref 0 in
  (* Only records of the requested (tid, sid) count as accesses: the
     first key past the segment merely terminates the scan and is not
     an element read. *)
  T.iter_from t.tree lo (fun k () ->
      if k.tid = tid && k.sid = sid then begin
        incr touched;
        f k
      end
      else false);
  if !touched > 0 then ignore (Atomic.fetch_and_add t.accesses !touched)

let elements_of_segment t ~tid ~sid =
  let acc = Vec.create () in
  iter_segment t ~tid ~sid (fun k ->
      Vec.push acc k;
      true);
  Vec.to_array acc

let cols_of_segment t ~tid ~sid =
  let starts = Vec.create () and stops = Vec.create () and levels = Vec.create () in
  iter_segment t ~tid ~sid (fun k ->
      Vec.push starts k.start;
      Vec.push stops k.stop;
      Vec.push levels k.level;
      true);
  { Seg_cache.starts = Vec.to_array starts; stops = Vec.to_array stops;
    levels = Vec.to_array levels }

let iter_all t f = T.iter t.tree (fun k () -> f k)

let accesses t = Atomic.get t.accesses

let size_bytes t =
  (* 5 ints per key plus tree node overhead, roughly. *)
  let internal, leaves = T.node_counts t.tree in
  (T.length t.tree * 5 * 8) + ((internal + leaves) * 64)

let height t = T.height t.tree
