open Lxu_util
open Lxu_btree

module Sb = Bptree.Make (Int)

(* Paged repr: the tree maps sid -> slot into [nodes]; the skeleton
   nodes themselves always stay in memory (they are the small, hot
   part of the store — the element index is what outgrows RAM).  Slots
   of removed or re-inserted sids leak until the next [load_sorted]
   rebuild (prepare_for_query, pack), which compacts the vector. *)
type repr =
  | Mem of Er_node.t Sb.t
  | Paged of { tree : Paged_bptree.t; mutable nodes : Er_node.t Vec.t }

type t = { mutable repr : repr; branching : int }

let slot_name = "sb"

let create ?(branching = 32) ?(backend = Storage_backend.Mem) () =
  let repr =
    match backend with
    | Storage_backend.Mem -> Mem (Sb.create ~branching ())
    | Storage_backend.Paged { store; attach } ->
      let tree = Paged_bptree.attach store ~slot:slot_name ~kw:1 ~vw:1 in
      (* The node vector is volatile: even on attach the mapping must
         be rebuilt (sid -> node) by the loader, so an attached tree
         is cleared here and reloaded via [load_sorted]. *)
      ignore attach;
      Paged_bptree.clear tree;
      Paged { tree; nodes = Vec.create () }
  in
  { repr; branching }

let of_sorted_mem ?(branching = 32) pairs =
  { repr = Mem (Sb.of_sorted ~branching pairs); branching }

let is_paged t = match t.repr with Mem _ -> false | Paged _ -> true

let length t =
  match t.repr with Mem tr -> Sb.length tr | Paged p -> Paged_bptree.length p.tree

let insert t sid node =
  match t.repr with
  | Mem tr -> Sb.insert tr sid node
  | Paged p ->
    let slot = Vec.length p.nodes in
    Vec.push p.nodes node;
    Paged_bptree.insert p.tree [| sid |] [| slot |]

let find t sid =
  match t.repr with
  | Mem tr -> Sb.find tr sid
  | Paged p ->
    let v = [| 0 |] in
    if Paged_bptree.find p.tree [| sid |] ~value:v then Some (Vec.get p.nodes v.(0))
    else None

let remove t sid =
  match t.repr with
  | Mem tr -> Sb.remove tr sid
  | Paged p -> Paged_bptree.remove p.tree [| sid |]

let load_sorted t pairs =
  match t.repr with
  | Mem _ -> t.repr <- Mem (Sb.of_sorted ~branching:t.branching pairs)
  | Paged p ->
    let nodes = Vec.create () in
    Array.iter (fun (_, node) -> Vec.push nodes node) pairs;
    p.nodes <- nodes;
    Paged_bptree.load_sorted p.tree ~n:(Array.length pairs) ~get:(fun i kbuf vbuf ->
        kbuf.(0) <- fst pairs.(i);
        vbuf.(0) <- i)

let insert_sorted_batch t pairs =
  match t.repr with
  | Mem tr -> Sb.insert_sorted_batch tr pairs
  | Paged p ->
    let base = Vec.length p.nodes in
    Array.iter (fun (_, node) -> Vec.push p.nodes node) pairs;
    Paged_bptree.insert_sorted_batch p.tree ~n:(Array.length pairs) ~get:(fun i kbuf vbuf ->
        kbuf.(0) <- fst pairs.(i);
        vbuf.(0) <- base + i)

let height t =
  match t.repr with Mem tr -> Sb.height tr | Paged p -> Paged_bptree.height p.tree

let size_bytes t =
  match t.repr with
  | Mem tr ->
    let internal, leaves = Sb.node_counts tr in
    (Sb.length tr * 2 * 8) + ((internal + leaves) * 64)
  | Paged p -> Paged_bptree.approx_bytes p.tree
