(** Monotonic deadlines and cooperative cancellation for the query
    path.

    The paper's lazy scheme makes updates cheap but leaves query cost
    unbounded: a structural join over a hot tag list can run for as
    long as the data dictates.  This module supplies the two
    primitives the resource-governance layer threads through the join
    loops:

    {ul
    {- a {!t} — an absolute point on the system's monotonic clock
       ([CLOCK_MONOTONIC]), immune to wall-clock steps in either
       direction: a step can neither un-expire a deadline nor fire
       in-flight deadlines early;}
    {- a {!Cancel.t} — an atomic flag any domain can flip, carrying a
       reason, that running operations observe cooperatively.}}

    Both are consumed through a {!guard}: loops call {!check} at their
    boundaries (per segment entry, per join unit, per descendant
    scan), and the guard raises {!Cancel.Cancelled} once the deadline
    passed or the token fired.  The cancellation check is one atomic
    load; clock probes are amortized over {!probe_period} checks, so a
    guard adds no measurable cost to the hot loops — and a [None]
    guard adds exactly one branch, keeping the no-governor fast path
    byte-identical in results and stats. *)

val now : unit -> float
(** Seconds on the system monotonic clock ([CLOCK_MONOTONIC]) — not
    wall time; only differences are meaningful.  Successive calls
    never decrease, across domains. *)

type t
(** An absolute deadline on the {!now} clock. *)

val never : t
(** The deadline that never expires. *)

val after : float -> t
(** [after s] expires [s] seconds from now ([s <= 0.] is already
    expired). *)

val is_never : t -> bool

val expired : t -> bool

val remaining_s : t -> float
(** Seconds until expiry; negative once expired, [infinity] for
    {!never}. *)

(** Cooperative cancellation tokens. *)
module Cancel : sig
  type reason =
    | Timeout  (** a deadline expired *)
    | User of string  (** {!cancel} was called, with its reason *)

  exception Cancelled of reason
  (** Raised by {!val:check} from inside a governed operation; the
      governor layer catches it at the operation boundary and turns it
      into a typed rejection. *)

  type t

  val create : unit -> t

  val cancel : ?reason:string -> t -> unit
  (** Flips the flag (idempotent: the first reason wins).  Safe from
      any domain; running operations observe it at their next guard
      check. *)

  val reason : t -> reason option
  (** [Some _] once cancelled. *)

  val is_cancelled : t -> bool
end

type guard
(** A deadline and/or token bundled into one cheap check point. *)

val probe_period : int
(** Number of {!check} calls between clock probes. *)

val guard : ?deadline:t -> ?cancel:Cancel.t -> unit -> guard option
(** [None] when neither a (finite) deadline nor a token is given —
    callers thread [guard option] and pay a single branch on the
    ungoverned path. *)

val check : guard -> unit
(** @raise Cancel.Cancelled with [Timeout] once the deadline passed,
    or with the token's reason once it fired.  The token is read on
    every call; the clock only every {!probe_period} calls (shared
    guards may probe more often under parallel execution — the
    counter is racy by design, never the outcome). *)

val check_opt : guard option -> unit
(** {!check} through the option; [None] is a no-op. *)
