/* Monotonic clock for Deadline.now: CLOCK_MONOTONIC, which POSIX
   guarantees is system-wide non-decreasing and immune to wall-clock
   steps (NTP, suspend/resume) in either direction — so a deadline can
   neither un-expire nor fire spuriously early. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <time.h>

CAMLprim value lxu_deadline_monotonic_now(value unit)
{
  struct timespec ts;
  (void) unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    caml_failwith("Deadline.now: clock_gettime(CLOCK_MONOTONIC) failed");
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
