type job = {
  total : int;
  chunk : int;
  fn : int -> unit;
  mutable next : int;  (* first unclaimed index, under [mu] *)
  mutable in_flight : int;  (* claimed chunks still running, under [mu] *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;
  mu : Mutex.t;
  work : Condition.t;  (* workers: a new task set (or shutdown) arrived *)
  finished : Condition.t;  (* submitters: task set completed / slot freed *)
  mutable job : job option;
  mutable epoch : int;  (* bumped per submission so workers detect new sets *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

type ticket = { pool : t; tjob : job }

let env_domains () =
  match Sys.getenv_opt "LXU_DOMAINS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> Some d
    | _ -> None)

let default_size () =
  match env_domains () with
  | Some d -> min d 64
  | None -> max 1 (Domain.recommended_domain_count ())

let size t = t.size

let done_ j = j.next >= j.total && j.in_flight = 0

(* Claim + completion both happen under [mu]: a chunk is never visible
   as unclaimed while the set looks complete, so [await] cannot return
   early.  Chunks keep the critical section off the per-task path. *)
let participate t (j : job) =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mu;
    if j.next >= j.total then begin
      Mutex.unlock t.mu;
      continue_ := false
    end
    else begin
      let lo = j.next in
      let hi = min j.total (lo + j.chunk) in
      j.next <- hi;
      j.in_flight <- j.in_flight + 1;
      Mutex.unlock t.mu;
      (try
         for i = lo to hi - 1 do
           j.fn i
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mu;
         if j.failed = None then j.failed <- Some (e, bt);
         (* Abandon unclaimed tasks; claimed chunks drain normally. *)
         j.next <- j.total;
         Mutex.unlock t.mu);
      Mutex.lock t.mu;
      j.in_flight <- j.in_flight - 1;
      if done_ j then begin
        (match t.job with Some k when k == j -> t.job <- None | _ -> ());
        Condition.broadcast t.finished
      end;
      Mutex.unlock t.mu
    end
  done

let rec worker_loop t seen =
  Mutex.lock t.mu;
  while (not t.stop) && t.epoch = seen do
    Condition.wait t.work t.mu
  done;
  let stop = t.stop in
  let seen = t.epoch in
  let j = t.job in
  Mutex.unlock t.mu;
  if not stop then begin
    (match j with Some j -> participate t j | None -> ());
    worker_loop t seen
  end

let create ?size () =
  let size =
    match size with
    | None -> min 64 (default_size ())
    | Some s ->
      if s < 1 then invalid_arg "Domain_pool.create: size < 1";
      min s 64
  in
  let t =
    {
      size;
      mu = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let submit ?chunk t n fn =
  if n < 0 then invalid_arg "Domain_pool.submit: negative task count";
  let chunk =
    match chunk with
    | Some c -> max 1 c
    | None -> max 1 (n / (8 * t.size))
  in
  let j = { total = n; chunk; fn; next = 0; in_flight = 0; failed = None } in
  Mutex.lock t.mu;
  while t.job <> None && not t.stop do
    Condition.wait t.finished t.mu
  done;
  if t.stop then begin
    Mutex.unlock t.mu;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  if n > 0 then begin
    t.job <- Some j;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mu;
  { pool = t; tjob = j }

let await tk =
  let t = tk.pool and j = tk.tjob in
  participate t j;
  Mutex.lock t.mu;
  while not (done_ j) do
    Condition.wait t.finished t.mu
  done;
  Mutex.unlock t.mu;
  match j.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map ?chunk t n f =
  if n <= 0 then [||]
  else if t.size = 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let tk = submit ?chunk t n (fun i -> results.(i) <- Some (f i)) in
    await tk;
    Array.map
      (function Some v -> v | None -> failwith "Domain_pool.map: task abandoned")
      results
  end

let shutdown t =
  Mutex.lock t.mu;
  if t.stop then Mutex.unlock t.mu
  else begin
    while t.job <> None do
      Condition.wait t.finished t.mu
    done;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* --- shared pools ---------------------------------------------------- *)

let shared_mu = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let at_exit_registered = ref false

let shared ~size =
  Mutex.lock shared_mu;
  let pool =
    match Hashtbl.find_opt shared_pools size with
    | Some p -> p
    | None ->
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () ->
            Mutex.lock shared_mu;
            let pools = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
            Hashtbl.reset shared_pools;
            Mutex.unlock shared_mu;
            List.iter shutdown pools)
      end;
      let p = create ~size () in
      Hashtbl.add shared_pools size p;
      p
  in
  Mutex.unlock shared_mu;
  pool
