(** A reusable fixed-size pool of OCaml 5 domains with chunked
    self-scheduling ("work stealing from a shared counter"): callers
    submit an indexed task set [f 0 .. f (n-1)] and the pool's workers
    grab contiguous index chunks from a shared cursor until the set is
    exhausted.  Results are deterministic by construction — task [i]
    always produces slot [i] — regardless of which worker runs it.

    A pool of size 1 spawns no domains and degrades to a plain
    sequential loop, as does any pool when [LXU_DOMAINS=1] is set in
    the environment at pool-creation time (the override caps the
    default size; an explicit [~size] wins).  One task set runs at a
    time per pool; submissions from the owning thread queue up behind
    the in-flight set. *)

type t

type ticket
(** An in-flight task set, redeemed with {!await}. *)

val env_domains : unit -> int option
(** The [LXU_DOMAINS] override, when set to a valid positive integer. *)

val default_size : unit -> int
(** [LXU_DOMAINS] when set, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?size:int -> unit -> t
(** A pool of [size] domains total: [size - 1] spawned workers plus
    the submitting thread, which participates during {!await}.
    [size] defaults to {!default_size} and is clamped to [1, 64]
    (OCaml caps live domains at 128).
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val shared : size:int -> t
(** A process-wide pool of the given size, created on first use and
    cached; subsequent calls with the same size return the same pool.
    Shared pools are shut down automatically at exit.  Use this when
    many short-lived owners (e.g. databases) need a pool: spawning a
    pool per owner would exhaust the domain limit. *)

val submit : ?chunk:int -> t -> int -> (int -> unit) -> ticket
(** [submit pool n f] schedules tasks [f 0 .. f (n-1)] and returns
    without running them to completion (workers start immediately).
    [chunk] is the number of consecutive indices a worker claims at a
    time; it defaults to [max 1 (n / (8 * size))].  Blocks while a
    previous task set of this pool is still in flight.
    @raise Invalid_argument if [n < 0] or the pool is shut down. *)

val await : ticket -> unit
(** Runs tasks on the calling thread alongside the workers until the
    set is exhausted, then blocks until every claimed task finished.
    If any task raised, the first exception (by completion order) is
    re-raised here with its backtrace; remaining unclaimed tasks are
    abandoned. *)

val map : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [[| f 0; ...; f (n-1) |]], computed on the pool.
    Equivalent to sequential [Array.init n f] for any [f] whose tasks
    are independent; the result order never depends on the schedule. *)

val shutdown : t -> unit
(** Waits for the in-flight task set, then stops and joins every
    worker.  Idempotent.  Subsequent {!submit}s raise; {!map} over a
    shut-down pool of size 1 still works (it never leaves the caller's
    thread). *)
