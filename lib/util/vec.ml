type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let of_array a = { data = Array.copy a; len = Array.length a }
let of_list l = of_array (Array.of_list l)

let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) x in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end

let push v x =
  grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let last v = get v (v.len - 1)

let insert_at v i x =
  if i < 0 || i > v.len then invalid_arg "Vec.insert_at: index out of bounds";
  grow v x;
  Array.blit v.data i v.data (i + 1) (v.len - i);
  v.data.(i) <- x;
  v.len <- v.len + 1

let remove_at v i =
  check v i;
  let x = v.data.(i) in
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1;
  x

let remove_range v i n =
  if n < 0 || i < 0 || i + n > v.len then invalid_arg "Vec.remove_range";
  Array.blit v.data (i + n) v.data i (v.len - i - n);
  v.len <- v.len - n

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (get v)
let to_array v = Array.sub v.data 0 v.len

let lower_bound v ~compare =
  let lo = ref 0 and hi = ref v.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare v.data.(mid) < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
