(* The clock: CLOCK_MONOTONIC via a tiny C stub.  Wall-clock sources
   (gettimeofday) step in both directions — a backward step could
   un-expire a deadline, a forward step (NTP, suspend/resume) would
   instantly expire every in-flight one.  The monotonic clock is
   system-wide non-decreasing by POSIX, which also gives the
   cross-domain monotonicity the interface promises. *)
external now : unit -> float = "lxu_deadline_monotonic_now"

type t = float (* absolute seconds on the [now] clock; infinity = never *)

let never = infinity
let after s = now () +. s
let is_never d = d = infinity
let expired d = d < infinity && now () >= d
let remaining_s d = if d = infinity then infinity else d -. now ()

module Cancel = struct
  type reason = Timeout | User of string

  exception Cancelled of reason

  type t = reason option Atomic.t

  let create () = Atomic.make None

  let cancel ?(reason = "cancelled") t =
    ignore (Atomic.compare_and_set t None (Some (User reason)))

  let reason = Atomic.get
  let is_cancelled t = Atomic.get t <> None
end

type guard = {
  deadline : t;
  cancel : Cancel.t option;
  mutable countdown : int;
      (* checks until the next clock probe; races between domains
         sharing a guard only change probe frequency, never results *)
}

let probe_period = 64

let guard ?(deadline = never) ?cancel () =
  match (deadline, cancel) with
  | d, None when d = infinity -> None
  | _ -> Some { deadline; cancel; countdown = 0 }

let check g =
  (match g.cancel with
  | None -> ()
  | Some c -> (
    match Atomic.get c with None -> () | Some r -> raise (Cancel.Cancelled r)));
  if g.deadline < infinity then begin
    g.countdown <- g.countdown - 1;
    if g.countdown <= 0 then begin
      g.countdown <- probe_period;
      if now () >= g.deadline then raise (Cancel.Cancelled Cancel.Timeout)
    end
  end

let check_opt = function None -> () | Some g -> check g
