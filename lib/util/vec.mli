(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used wherever the paper's structures keep sorted in-memory lists:
    per-tag label arrays in the traditional store, child lists of
    ER-tree nodes, tag-list path lists.  Supports O(log n) binary
    search and O(n) mid-array insertion, which is exactly the cost
    model of the paper's in-memory child lists (§3.3). *)

type 'a t

val create : unit -> 'a t
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val insert_at : 'a t -> int -> 'a -> unit
(** [insert_at v i x] shifts elements [i..] right by one.  [i] may
    equal [length v] (append). *)

val remove_at : 'a t -> int -> 'a
(** Removes and returns element [i], shifting the tail left. *)

val remove_range : 'a t -> int -> int -> unit
(** [remove_range v i n] removes elements [i .. i+n-1]. *)

val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate v n] drops all elements at index [n] and beyond ([n]
    must be [<= length v]); the in-place counterpart of a filtering
    copy. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

val lower_bound : 'a t -> compare:('a -> int) -> int
(** [lower_bound v ~compare] is the first index [i] such that
    [compare (get v i) >= 0], assuming [compare] is monotone over the
    vector (negative for a prefix, then non-negative); returns
    [length v] when no such index exists. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
