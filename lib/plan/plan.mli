(** Cost-based twig planning over the path-summary synopsis.

    For a parsed spine (the chain of steps of a path query), the
    planner estimates per-step and per-join cardinalities from
    {!Lxu_seglog.Path_synopsis} and picks
    {ul
    {- a {e seed step} — the most selective step to anchor evaluation
       at, replacing strict left-to-right order with an up phase
       (seed towards the head) followed by a down phase (towards the
       tail);}
    {- an {e engine}: per-join Lazy-Join with push-optimization
       settings, or a holistic PathStack pass when streaming every tag
       once is provably cheaper than the best join order;}
    {- per-join {e restriction evidence}: each planned join carries
       segment filters (membership of the frontier set, synopsis
       ancestor-tag evidence) that Lazy-Join applies before touching
       the element index — selective Proposition 3.}}

    Cardinality estimates are {e exact} on the down side (no
    predicates): an element's ancestor chain is exactly the set of
    prefixes of its root-to-element tag path, so per-path dynamic
    programming over the synopsis counts spine matches and down-join
    pairs without touching the document — in particular the final
    step's count is the exact result cardinality, which is what the
    empty-result shortcut relies on.  Up-phase numbers are sound upper
    bounds, not exact: an up-frontier element's remaining chain lives
    in its subtree, and distinct-ancestor counts are not derivable
    from path counts.  Predicates are not modelled; they only shrink
    sets, so all estimates stay sound upper bounds and a zero still
    proves an empty result. *)

type axis = Desc | Child

type chain = {
  tags : string array;  (** spine tags, head first *)
  axes : axis array;
      (** [axes.(0)] is the leading axis ([Child] = document-level);
          [axes.(i)] relates step [i-1] to step [i] *)
  has_preds : bool;  (** any step carries predicates *)
}

type join_spec = {
  anc : int;  (** step index of the ancestor side *)
  desc : int;  (** step index of the descendant side, [anc + 1] *)
  dir : [ `Up | `Down ];
      (** [`Up]: executed right-to-left of the seed, restricting the
          descendant side; [`Down]: left-to-right, restricting the
          ancestor side *)
  push_filter : bool;
  trim_top : bool;  (** Lazy-Join Figure 9 optimization settings *)
  est_pairs : int;
  mutable actual_pairs : int;  (** [-1] until executed *)
}

type ordered = {
  seed : int;  (** 0-based seed step index *)
  joins : join_spec array;  (** execution order: up joins, then down *)
  est_step : int array;  (** estimated surviving elements per step *)
  actual_step : int array;  (** [-1] until executed *)
  est_cost : float;
  naive_cost : float;  (** estimated cost of left-to-right order *)
}

type t =
  | Naive  (** single-step chains and forced fallback: no plan *)
  | Holistic of { est_stream : int }
      (** stream all tags once through PathStack (predicate-free
          chains only) *)
  | Ordered of ordered

val choose :
  ?force_seed:int -> ?allow_holistic:bool -> log:Lxu_seglog.Update_log.t -> chain -> t
(** Enumerates seed positions, costing each as
    [tag_total(seed) + Σ restricted up-join pairs + Σ restricted
    down-join pairs], and returns the cheapest plan.  [force_seed]
    skips enumeration and orders around the given step (the bench's
    best-hand-ordered oracle); out-of-range values are clamped.
    [allow_holistic] (default true) permits the PathStack engine when
    its streaming estimate beats the best join order by a wide margin
    (conservative: joins win ties).  Chains shorter than two steps
    return {!Naive}. *)

val explain : chain -> t -> string
(** Multi-line rendering of the plan: join order, engine and push
    settings per join, estimated vs actual cardinalities (actuals show
    as [-] until the executor fills them in). *)
