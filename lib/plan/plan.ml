open Lxu_seglog

type axis = Desc | Child

type chain = { tags : string array; axes : axis array; has_preds : bool }

type join_spec = {
  anc : int;
  desc : int;
  dir : [ `Up | `Down ];
  push_filter : bool;
  trim_top : bool;
  est_pairs : int;
  mutable actual_pairs : int;
}

type ordered = {
  seed : int;
  joins : join_spec array;
  est_step : int array;
  actual_step : int array;
  est_cost : float;
  naive_cost : float;
}

type t = Naive | Holistic of { est_stream : int } | Ordered of ordered

(* An element's ancestors are exactly the proper prefixes of its
   root-to-element tag path, so every estimate below is one dynamic
   program per synopsis path:

   - m.(j).(q): path positions 0..q spell a match of spine steps 0..j
     ending at q (upward/prefix chains — what left-to-right evaluation
     accumulates).

   Summing path counts over the DP flags gives exact spine-match and
   down-join pair counts, and the final step's spine count is the
   exact result cardinality on a predicate-free chain — the zero-proof
   the executor's empty shortcut relies on.  Up-phase numbers cannot
   be exact: a frontier element's remaining chain lives in its
   {e subtree} (its descendants' paths), not on its own path, and
   distinct-ancestor counts are not derivable from path counts (one
   path with count 5 may hang under one ancestor or five).  Each up
   join is therefore estimated by the unfiltered tag-to-tag ancestor
   pair count — exact for the join adjacent to the seed (whose
   descendant side is the whole seed tag) and a sound upper bound
   deeper, where execution restricts the descendant side to the
   surviving frontier.  Predicates are not modelled, so with
   predicates everything is an upper bound (sound for skipping: zero
   still proves empty). *)
let choose ?force_seed ?(allow_holistic = true) ~log chain =
  let n = Array.length chain.tags in
  if n < 2 then Naive
  else begin
    let syn = Update_log.synopsis log in
    let reg = Update_log.registry log in
    let tids = Array.map (fun tag -> Tag_registry.find reg tag) chain.tags in
    let tmatch j v = match tids.(j) with Some t -> t = v | None -> false in
    let tag_total j =
      match tids.(j) with Some t -> Path_synopsis.tag_total syn ~tid:t | None -> 0
    in
    let s_est = Array.make n 0 in
    let b_head = Array.make n 0 in
    let full_pairs = Array.make n 0 in
    let up_pairs = Array.make n 0 in
    let down_pairs = Array.make n 0 in
    Path_synopsis.iter syn (fun p c ->
        let len = Array.length p in
        let last = len - 1 in
        let m = Array.make_matrix n len false in
        for q = 0 to last do
          m.(0).(q) <- tmatch 0 p.(q) && (chain.axes.(0) = Desc || q = 0)
        done;
        for j = 1 to n - 1 do
          match chain.axes.(j) with
          | Child ->
            for q = 1 to last do
              m.(j).(q) <- tmatch j p.(q) && m.(j - 1).(q - 1)
            done
          | Desc ->
            let any = ref false in
            for q = 0 to last do
              m.(j).(q) <- tmatch j p.(q) && !any;
              if m.(j - 1).(q) then any := true
            done
        done;
        for i = 0 to n - 1 do
          if m.(i).(last) then s_est.(i) <- s_est.(i) + c
        done;
        (* Ancestor occurrences along this path for one join, by axis:
           Child looks only at the parent position, Desc at every
           proper prefix. *)
        let occ_of axis pred =
          match axis with
          | Child -> if last >= 1 && pred (last - 1) then 1 else 0
          | Desc ->
            let k = ref 0 in
            for q = 0 to last - 1 do
              if pred q then incr k
            done;
            !k
        in
        for i = 1 to n - 1 do
          if tmatch i p.(last) then begin
            full_pairs.(i) <-
              full_pairs.(i) + (c * occ_of chain.axes.(i) (fun q -> tmatch (i - 1) p.(q)));
            down_pairs.(i) <-
              down_pairs.(i) + (c * occ_of chain.axes.(i) (fun q -> m.(i - 1).(q)))
          end
        done);
    (* Up join i pairs tag t_i against the frontier at i+1 — a subset of
       the whole t_(i+1) tag, so the unfiltered tag-to-tag pair count
       bounds it (and equals it for the join adjacent to the seed).
       The frontier itself is at most the smaller of the tag and the
       pairs that produced it. *)
    for i = 0 to n - 2 do
      up_pairs.(i) <- full_pairs.(i + 1);
      b_head.(i) <- min (tag_total i) up_pairs.(i)
    done;
    let sum a i j =
      let s = ref 0 in
      for k = i to j do
        s := !s + a.(k)
      done;
      !s
    in
    let naive_cost = float_of_int (tag_total 0 + sum full_pairs 1 (n - 1)) in
    let cost k =
      float_of_int (tag_total k + sum up_pairs 0 (k - 1) + sum down_pairs (k + 1) (n - 1))
    in
    let seed =
      match force_seed with
      | Some k -> max 0 (min (n - 1) k)
      | None ->
        (* On cost ties prefer the later seed: up-join estimates are
           upper bounds (execution restricts the descendant side to the
           surviving frontier), down-join estimates are near-exact, so
           a tied tail-seed plan can only run at or under its estimate. *)
        let best = ref 0 and best_cost = ref (cost 0) in
        for k = 1 to n - 1 do
          let ck = cost k in
          if ck <= !best_cost then begin
            best := k;
            best_cost := ck
          end
        done;
        !best
    in
    let est_cost = cost seed in
    let est_stream = sum (Array.init n (fun i -> tag_total i)) 0 (n - 1) in
    if
      allow_holistic && (not chain.has_preds) && force_seed = None
      && float_of_int (8 * est_stream) < est_cost
      && float_of_int (8 * est_stream) < naive_cost
    then Holistic { est_stream }
    else begin
      let push = Update_log.segment_count log > 1 in
      let joins = ref [] in
      (* Built back to front: downs prepended outermost-first so they
         end up innermost-first (execution order), then ups prepended
         in front of them, nearest the seed first (also execution
         order).  The executor matches joins by (dir, anc); the array
         order is what [explain] renders. *)
      for i = n - 1 downto seed + 1 do
        joins :=
          {
            anc = i - 1;
            desc = i;
            dir = `Down;
            push_filter = push;
            trim_top = push;
            est_pairs = down_pairs.(i);
            actual_pairs = -1;
          }
          :: !joins
      done;
      for i = 0 to seed - 1 do
        joins :=
          {
            anc = i;
            desc = i + 1;
            dir = `Up;
            push_filter = push;
            trim_top = push;
            est_pairs = up_pairs.(i);
            actual_pairs = -1;
          }
          :: !joins
      done;
      let est_step = Array.init n (fun i -> if i < seed then b_head.(i) else s_est.(i)) in
      Ordered
        {
          seed;
          joins = Array.of_list !joins;
          est_step;
          actual_step = Array.make n (-1);
          est_cost;
          naive_cost;
        }
    end
  end

let explain chain plan =
  let step_name i = chain.tags.(i) in
  let axis_str i = match chain.axes.(i) with Desc -> "//" | Child -> "/" in
  let card v = if v < 0 then "-" else string_of_int v in
  match plan with
  | Naive -> "plan: naive (left-to-right pairwise)"
  | Holistic { est_stream } ->
    Printf.sprintf "plan: holistic PathStack (est %d streamed elements)" est_stream
  | Ordered o ->
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "plan: ordered, seed step %d (%s); est cost %.0f vs naive %.0f\n"
         o.seed (step_name o.seed) o.est_cost o.naive_cost);
    Array.iteri
      (fun j js ->
        Buffer.add_string b
          (Printf.sprintf "  join %d (%s): %s%s%s  engine=lazy-join%s  est %d pairs, actual %s\n"
             (j + 1)
             (match js.dir with `Up -> "up" | `Down -> "down")
             (step_name js.anc) (axis_str js.desc) (step_name js.desc)
             (if js.push_filter || js.trim_top then
                Printf.sprintf "(%s)"
                  (String.concat ","
                     ((if js.push_filter then [ "push" ] else [])
                     @ if js.trim_top then [ "trim" ] else []))
              else "(plain)")
             js.est_pairs (card js.actual_pairs)))
      o.joins;
    Buffer.add_string b "  steps (est/actual): ";
    Array.iteri
      (fun i tag ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf "%s %d/%s" tag o.est_step.(i) (card o.actual_step.(i))))
      chain.tags;
    Buffer.contents b
