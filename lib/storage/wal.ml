open Lxu_storage_core
type op =
  | Insert of { gp : int; text : string }
  | Remove of { gp : int; len : int }
  | Pack of { gp : int; len : int }
  | Rebuild

type header = { mode : Lxu_seglog.Update_log.mode; index_attributes : bool }

let magic = "LXUWAL1 "
let header_bytes = String.length magic + 3

let encode_header h =
  Printf.sprintf "%s%c%c\n" magic
    (match h.mode with Lxu_seglog.Update_log.Lazy_dynamic -> 'D' | Lazy_static -> 'S')
    (if h.index_attributes then '1' else '0')

(* Fixed record part: 8-byte lsn + kind + 4-byte payload length. *)
let fixed_bytes = 13

let kind_of_op = function Insert _ -> 'I' | Remove _ -> 'R' | Pack _ -> 'P' | Rebuild -> 'B'

let encode_record buf ~lsn op =
  let start = Buffer.length buf in
  Buffer.add_int64_le buf (Int64.of_int lsn);
  Buffer.add_char buf (kind_of_op op);
  let payload = Buffer.create 24 in
  (match op with
  | Insert { gp; text } ->
    Buffer.add_int64_le payload (Int64.of_int gp);
    Buffer.add_string payload text
  | Remove { gp; len } | Pack { gp; len } ->
    Buffer.add_int64_le payload (Int64.of_int gp);
    Buffer.add_int64_le payload (Int64.of_int len)
  | Rebuild -> ());
  Buffer.add_int32_le buf (Int32.of_int (Buffer.length payload));
  Buffer.add_buffer buf payload;
  let body = Buffer.sub buf start (Buffer.length buf - start) in
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string body))

(* --- scanning -------------------------------------------------------- *)

type record = { lsn : int; op : op; end_off : int }

type scan_result = {
  header : header;
  records : record list;
  valid_bytes : int;
  total_bytes : int;
  corruption : string option;
}

let scan ?path bytes =
  let n = String.length bytes in
  let where off =
    match path with
    | Some p -> Printf.sprintf "%s: byte %d" p off
    | None -> Printf.sprintf "byte %d" off
  in
  let bad_header off msg =
    failwith (Printf.sprintf "not a lazyxml WAL: %s (%s)" msg (where off))
  in
  if n < header_bytes then bad_header n "truncated header";
  if String.sub bytes 0 (String.length magic) <> magic then bad_header 0 "bad magic";
  let mode =
    match bytes.[String.length magic] with
    | 'D' -> Lxu_seglog.Update_log.Lazy_dynamic
    | 'S' -> Lxu_seglog.Update_log.Lazy_static
    | c -> bad_header (String.length magic) (Printf.sprintf "unknown mode %C" c)
  in
  let index_attributes =
    match bytes.[String.length magic + 1] with
    | '1' -> true
    | '0' -> false
    | c -> bad_header (String.length magic + 1) (Printf.sprintf "bad attrs flag %C" c)
  in
  if bytes.[header_bytes - 1] <> '\n' then bad_header (header_bytes - 1) "bad header terminator";
  let header = { mode; index_attributes } in
  let records = ref [] in
  let rec loop off prev_lsn =
    if off = n then (off, None)
    else if n - off < fixed_bytes + 4 then (off, Some (Printf.sprintf "torn record header at %s" (where off)))
    else begin
      let lsn = Int64.to_int (String.get_int64_le bytes off) in
      let kind = bytes.[off + 8] in
      let plen = Int32.to_int (String.get_int32_le bytes (off + 9)) in
      if plen < 0 || off + fixed_bytes + plen + 4 > n then
        (off, Some (Printf.sprintf "torn record body at %s" (where off)))
      else begin
        let stored = Int32.to_int (String.get_int32_le bytes (off + fixed_bytes + plen)) land 0xFFFFFFFF in
        let computed = Crc32.sub bytes ~pos:off ~len:(fixed_bytes + plen) in
        if stored <> computed then
          (off, Some (Printf.sprintf "checksum mismatch at %s" (where off)))
        else if lsn <= prev_lsn then
          (off, Some (Printf.sprintf "non-monotonic lsn %d after %d at %s (duplicated tail?)" lsn prev_lsn (where off)))
        else begin
          let gp_at i = Int64.to_int (String.get_int64_le bytes i) in
          let op =
            match kind with
            | 'I' when plen >= 8 ->
              Some (Insert { gp = gp_at (off + fixed_bytes);
                             text = String.sub bytes (off + fixed_bytes + 8) (plen - 8) })
            | 'R' when plen = 16 ->
              Some (Remove { gp = gp_at (off + fixed_bytes); len = gp_at (off + fixed_bytes + 8) })
            | 'P' when plen = 16 ->
              Some (Pack { gp = gp_at (off + fixed_bytes); len = gp_at (off + fixed_bytes + 8) })
            | 'B' when plen = 0 -> Some Rebuild
            | _ -> None
          in
          match op with
          | None -> (off, Some (Printf.sprintf "malformed %C record at %s" kind (where off)))
          | Some op ->
            let end_off = off + fixed_bytes + plen + 4 in
            records := { lsn; op; end_off } :: !records;
            loop end_off lsn
        end
      end
    end
  in
  let valid_bytes, corruption = loop header_bytes 0 in
  { header; records = List.rev !records; valid_bytes; total_bytes = n; corruption }

(* --- writing --------------------------------------------------------- *)

type t = {
  device : Sim_file.t;
  buf : Buffer.t;
  mutable next : int;
  mutable pending : int;
}

let create ?(next_lsn = 1) ~device header =
  Sim_file.write device (encode_header header);
  { device; buf = Buffer.create 256; next = next_lsn; pending = 0 }

let attach ~device ~next_lsn = { device; buf = Buffer.create 256; next = next_lsn; pending = 0 }

let append t op =
  let lsn = t.next in
  encode_record t.buf ~lsn op;
  t.next <- lsn + 1;
  t.pending <- t.pending + 1;
  lsn

let next_lsn t = t.next
let buffered t = t.pending
let device t = t.device

let commit ?(sync = false) t =
  if t.pending > 0 then begin
    Sim_file.write t.device (Buffer.contents t.buf);
    Buffer.clear t.buf;
    t.pending <- 0
  end;
  if sync then Sim_file.sync t.device else Sim_file.flush t.device
