(** Fault-injectable append-only file — the I/O layer under the
    write-ahead log.

    Every byte the WAL persists goes through {!write}, so a scheduled
    fault deterministically corrupts exactly one write the way a
    crashing kernel or disk would: tearing it short, flipping a bit,
    or duplicating its tail (a re-issued write after a lost ack).
    Backed either by a real file or by an in-memory buffer (the crash
    harness runs thousands of recoveries; memory keeps that cheap).

    Faults are deterministic: the harness derives them from
    {!Lxu_workload.Rng}, so every failing schedule replays exactly. *)

type t

type fault =
  | Truncate_tail of int  (** drop the last [n] bytes of the write *)
  | Bit_flip of int  (** flip bit [i] of the write, 0 = MSB-side of byte 0 *)
  | Duplicate_tail of int  (** re-append the last [n] bytes of the write *)

val in_memory : unit -> t
(** A buffer-backed device; {!sync} is a no-op. *)

val open_path : ?append:bool -> string -> t
(** A file-backed device, created/truncated unless [append] (default
    false), which keeps existing contents and writes at the end.
    @raise Sys_error if the file cannot be opened. *)

val inject : t -> nth_write:int -> fault -> unit
(** Schedules [fault] for write number [nth_write] (0-based, counting
    every {!write} since the device was opened).  At most one fault
    per write; the last injection wins. *)

val apply_fault : string -> fault -> string
(** What a faulty write persists instead of [data] — the pure
    corruption function, also usable directly on captured WAL bytes.
    Out-of-range faults clamp to the data (an empty write stays
    empty). *)

val random_fault : Lxu_workload.Rng.t -> len:int -> fault
(** A uniformly chosen fault scaled to a write of [len] bytes —
    deterministic in the generator state, so crash schedules replay
    exactly. *)

val write : t -> string -> unit
(** Appends [data], after applying any fault scheduled for this write
    index. *)

val writes : t -> int
(** Writes issued so far. *)

val flush : t -> unit

val sync : t -> unit
(** [flush] plus [fsync] for file-backed devices; no-op in memory. *)

val size : t -> int
(** Bytes currently stored (faults included). *)

val contents : t -> string
(** The full stored bytes (flushes first). *)

val truncate_to : t -> int -> unit
(** Discards everything past byte [n] — how recovery repairs a torn
    tail in place. *)

val close : t -> unit
(** Flushes and closes; idempotent. *)
