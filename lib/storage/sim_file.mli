(** Fault-injectable file device — the I/O layer under the write-ahead
    log (append-only via {!write}) and the page file (positional via
    {!write_at}/{!read_at}).

    Every byte the WAL or page store persists goes through a write, so
    a scheduled fault deterministically corrupts exactly one write the
    way a crashing kernel or disk would: tearing it short, flipping a
    bit, or duplicating its tail (a re-issued write after a lost ack).
    Backed either by a real file or by an in-memory buffer (the crash
    harness runs thousands of recoveries; memory keeps that cheap).

    {b Write-back mode} ([~write_back:true]) models the OS page cache:
    writes are buffered in memory and reach the backing only on
    {!sync} — {!flush} does {e not} persist them, exactly as [fwrite]
    + [fflush] without [fsync] leaves data in the kernel's hands.  A
    {!crash} drops the unsynced suffix (optionally keeping a lucky
    prefix the kernel happened to write out), so delayed-write
    reordering bugs — e.g. truncating a log before its replacement
    snapshot is durable — become reachable by the harnesses:
    {!durable_contents} is exactly what a post-crash recovery would
    read.

    Faults are deterministic: the harness derives them from
    {!Lxu_workload.Rng}, so every failing schedule replays exactly. *)

type t

type fault =
  | Truncate_tail of int  (** drop the last [n] bytes of the write *)
  | Bit_flip of int  (** flip bit [i] of the write, 0 = MSB-side of byte 0 *)
  | Duplicate_tail of int  (** re-append the last [n] bytes of the write *)

val in_memory : ?write_back:bool -> unit -> t
(** A buffer-backed device; {!sync} is a no-op unless [write_back]
    (default false), where it drains the buffered writes. *)

val open_path : ?append:bool -> ?write_back:bool -> string -> t
(** A file-backed device, created/truncated unless [append] (default
    false), which keeps existing contents and writes at the end.
    [write_back] (default false) buffers writes until {!sync}.
    @raise Sys_error if the file cannot be opened. *)

val is_write_back : t -> bool

val inject : t -> nth_write:int -> fault -> unit
(** Schedules [fault] for write number [nth_write] (0-based, counting
    every {!write} since the device was opened).  At most one fault
    per write; the last injection wins. *)

val apply_fault : string -> fault -> string
(** What a faulty write persists instead of [data] — the pure
    corruption function, also usable directly on captured WAL bytes.
    Out-of-range faults clamp to the data (an empty write stays
    empty). *)

val random_fault : Lxu_workload.Rng.t -> len:int -> fault
(** A uniformly chosen fault scaled to a write of [len] bytes —
    deterministic in the generator state, so crash schedules replay
    exactly. *)

val write : t -> string -> unit
(** Appends [data], after applying any fault scheduled for this write
    index.  In write-back mode the data lands in the volatile buffer,
    not the backing. *)

val write_at : t -> off:int -> string -> unit
(** Positional write: [data] lands at byte offset [off], overwriting
    in place and extending the file (zero-filling any hole) when it
    reaches past the end — the page file's primitive.  Faults apply
    exactly as for {!write}: a [Truncate_tail] here is a torn page.
    In write-back mode the write is buffered like any other; a
    {!crash} that drops it models a dirty page that never reached the
    platter. *)

val read_at : t -> off:int -> bytes -> int
(** [read_at t ~off buf] fills [buf] from byte offset [off] of the
    device as the {e process} observes it — buffered write-back data
    included, like {!contents} — and returns how many bytes were
    available (short at end of file).  O(pending writes) in write-back
    mode, O(length of [buf]) otherwise. *)

val writes : t -> int
(** Writes issued so far. *)

val pending_writes : t -> int
(** Buffered writes not yet drained to the backing (0 outside
    write-back mode, and right after {!sync}). *)

val flush : t -> unit
(** Flushes the backing channel only.  Deliberately does {e not}
    drain write-back buffers: flushing user-space buffers gives no
    durability, and modelling that distinction is the point of
    write-back mode. *)

val sync : t -> unit
(** Drains buffered writes (write-back mode), then [flush] plus
    [fsync] for file-backed devices; no-op for an in-memory device
    outside write-back mode. *)

val crash : ?keep:int -> t -> unit
(** Simulated power loss for write-back devices: the oldest [keep]
    (default 0) buffered writes are persisted — the prefix the kernel
    happened to write out before dying — and the rest are dropped.
    The device stays usable (tests reuse it as the "rebooted"
    machine).  No-op outside write-back mode: everything already
    reached the backing. *)

val size : t -> int
(** Bytes the {e process} observes (backing plus buffered writes,
    faults included). *)

val contents : t -> string
(** The full stored bytes as the process observes them — buffered
    writes included, the way a read-after-write through the page
    cache would see them. *)

val durable_contents : t -> string
(** Only the bytes that survived to the backing — what recovery would
    find after a crash right now.  Equal to {!contents} outside
    write-back mode or right after {!sync}. *)

val truncate_to : t -> int -> unit
(** Discards everything past byte [n] — how recovery repairs a torn
    tail in place.  Drains buffered writes first (recovery owns the
    device; there is no concurrent crash to model mid-repair). *)

val close : t -> unit
(** Flushes the backing channel and closes; idempotent.  Buffered
    write-back data is {e dropped}, not persisted — closing a file
    never implied durability; call {!sync} first for a clean
    shutdown. *)

val fsync_dir : string -> unit
(** fsync on the directory itself, making renames/creates/unlinks
    inside it durable — the missing half of every atomic-rename
    protocol.  Errors from filesystems that reject directory fsync
    are swallowed (no durability is available there to enforce). *)
