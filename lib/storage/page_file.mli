(** Fixed-size checksummed pages over a {!Sim_file} device.

    Each page is one positional device write of [page_size] bytes:
    a CRC32 of the body, a pid echo (catching misdirected writes) and
    the payload.  Because a page is exactly one {!Sim_file.write_at},
    the existing fault-injection machinery covers torn page writes:
    a [Truncate_tail] scheduled on that write produces a page whose
    CRC fails on the next read, which is surfaced as {!Torn_page}. *)

exception Torn_page of { pid : int; reason : string }

type t

val min_page_size : int

val create : device:Sim_file.t -> page_size:int -> t
(** Wraps [device] in page geometry; no I/O happens here.
    @raise Invalid_argument if [page_size < min_page_size]. *)

val device : t -> Sim_file.t
val page_size : t -> int

val payload_bytes : t -> int
(** Usable bytes per page: [page_size] minus the CRC + pid header. *)

val write : t -> int -> bytes -> unit
(** [write t pid payload] persists [payload] (exactly
    {!payload_bytes} long) as page [pid], in one device write.
    @raise Invalid_argument on a wrong-sized payload or negative pid. *)

val read : t -> int -> bytes -> unit
(** [read t pid payload] fills [payload] with page [pid]'s bytes.
    @raise Torn_page on a short read, CRC mismatch, or pid-echo
    mismatch — a page that was never written, torn by a crash, or
    corrupted. *)
