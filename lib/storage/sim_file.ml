type fault =
  | Truncate_tail of int
  | Bit_flip of int
  | Duplicate_tail of int

type backing =
  | Memory of Buffer.t
  | File of { path : string; mutable oc : out_channel; mutable closed : bool }

type t = {
  backing : backing;
  faults : (int, fault) Hashtbl.t;
  mutable nwrites : int;
  write_back : bool;
  (* Writes buffered in the "page cache" (write-back mode only):
     oldest first.  They reach [backing] only on {!sync} — or the
     persisted prefix of a {!crash}. *)
  mutable pending : string list;  (* newest first *)
}

let in_memory ?(write_back = false) () =
  { backing = Memory (Buffer.create 256); faults = Hashtbl.create 4; nwrites = 0;
    write_back; pending = [] }

let open_path ?(append = false) ?(write_back = false) path =
  let flags =
    [ Open_wronly; Open_creat; Open_binary ] @ if append then [ Open_append ] else [ Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  { backing = File { path; oc; closed = false }; faults = Hashtbl.create 4; nwrites = 0;
    write_back; pending = [] }

let is_write_back t = t.write_back

let inject t ~nth_write fault = Hashtbl.replace t.faults nth_write fault

let apply_fault data = function
  | Truncate_tail n ->
    let keep = max 0 (String.length data - max 0 n) in
    String.sub data 0 keep
  | Duplicate_tail n ->
    let n = min (max 0 n) (String.length data) in
    data ^ String.sub data (String.length data - n) n
  | Bit_flip bit ->
    if String.length data = 0 then data
    else begin
      let bit = max 0 (min bit ((String.length data * 8) - 1)) in
      let b = Bytes.of_string data in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (0x80 lsr (bit mod 8))));
      Bytes.to_string b
    end

let random_fault rng ~len =
  let len = max 1 len in
  match Lxu_workload.Rng.int rng 3 with
  | 0 -> Truncate_tail (1 + Lxu_workload.Rng.int rng len)
  | 1 -> Bit_flip (Lxu_workload.Rng.int rng (len * 8))
  | _ -> Duplicate_tail (1 + Lxu_workload.Rng.int rng len)

let persist t data =
  match t.backing with
  | Memory buf -> Buffer.add_string buf data
  | File f ->
    if f.closed then invalid_arg "Sim_file.write: device is closed";
    output_string f.oc data

let write t data =
  let data =
    match Hashtbl.find_opt t.faults t.nwrites with
    | Some f -> apply_fault data f
    | None -> data
  in
  t.nwrites <- t.nwrites + 1;
  if t.write_back then begin
    (match t.backing with
    | File f when f.closed -> invalid_arg "Sim_file.write: device is closed"
    | _ -> ());
    t.pending <- data :: t.pending
  end
  else persist t data

let writes t = t.nwrites
let pending_writes t = List.length t.pending

(* Moves buffered writes into the backing (oldest first).  Does not
   fsync — the caller decides whether this is a [sync] or the lucky
   prefix of a [crash]. *)
let drain t =
  List.iter (persist t) (List.rev t.pending);
  t.pending <- []

let flush t = match t.backing with Memory _ -> () | File f -> if not f.closed then flush f.oc

let sync t =
  drain t;
  flush t;
  match t.backing with
  | Memory _ -> ()
  | File f -> if not f.closed then Unix.fsync (Unix.descr_of_out_channel f.oc)

let crash ?(keep = 0) t =
  let n = List.length t.pending in
  let kept = max 0 (min keep n) in
  (* [pending] is newest first: the oldest [kept] writes survive. *)
  let survivors = ref [] and dropped = ref 0 in
  List.iteri
    (fun i w -> if n - i <= kept then survivors := w :: !survivors else incr dropped)
    t.pending;
  List.iter (persist t) !survivors;
  t.pending <- [];
  flush t

let size t =
  flush t;
  let backed =
    match t.backing with
    | Memory buf -> Buffer.length buf
    | File f -> (Unix.stat f.path).Unix.st_size
  in
  backed + List.fold_left (fun acc w -> acc + String.length w) 0 t.pending

let durable_contents t =
  flush t;
  match t.backing with
  | Memory buf -> Buffer.contents buf
  | File f ->
    let ic = open_in_bin f.path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let contents t = durable_contents t ^ String.concat "" (List.rev t.pending)

let truncate_to t n =
  drain t;
  flush t;
  match t.backing with
  | Memory buf ->
    let keep = String.sub (Buffer.contents buf) 0 (min n (Buffer.length buf)) in
    Buffer.clear buf;
    Buffer.add_string buf keep
  | File f ->
    if not f.closed then close_out f.oc;
    Unix.truncate f.path (min n (Unix.stat f.path).Unix.st_size);
    f.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 f.path;
    f.closed <- false

let close t =
  match t.backing with
  | Memory _ -> ()
  | File f ->
    if not f.closed then begin
      close_out f.oc;
      f.closed <- true
    end

(* fsync on a directory makes renames/creates/unlinks inside it
   durable (POSIX leaves metadata ordering otherwise unspecified).
   Some filesystems reject fsync on directory fds; durability simply
   is not available there, so those errors are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
