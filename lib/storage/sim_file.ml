type fault =
  | Truncate_tail of int
  | Bit_flip of int
  | Duplicate_tail of int

(* Memory backing: a growable byte region supporting both appends (the
   WAL) and positional writes (the page file).  [len] is the logical
   file length; [data] may be longer. *)
type mem = { mutable data : Bytes.t; mutable len : int }

type file_backing = {
  path : string;
  mutable oc : out_channel;
  mutable closed : bool;
  (* Positional I/O descriptor, opened on first [write_at]/[read_at]
     and kept until [close].  The append channel [oc] is flushed
     before every positional operation so the two views agree. *)
  mutable fd : Unix.file_descr option;
}

type backing =
  | Memory of mem
  | File of file_backing

(* A buffered write: [at = None] appends, [at = Some off] lands at
   byte offset [off]. *)
type pending_write = { at : int option; data : string }

type t = {
  backing : backing;
  faults : (int, fault) Hashtbl.t;
  mutable nwrites : int;
  write_back : bool;
  (* Writes buffered in the "page cache" (write-back mode only):
     oldest first.  They reach [backing] only on {!sync} — or the
     persisted prefix of a {!crash}. *)
  mutable pending : pending_write list;  (* newest first *)
}

let in_memory ?(write_back = false) () =
  { backing = Memory { data = Bytes.create 256; len = 0 }; faults = Hashtbl.create 4;
    nwrites = 0; write_back; pending = [] }

let open_path ?(append = false) ?(write_back = false) path =
  let flags =
    [ Open_wronly; Open_creat; Open_binary ] @ if append then [ Open_append ] else [ Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  { backing = File { path; oc; closed = false; fd = None }; faults = Hashtbl.create 4;
    nwrites = 0; write_back; pending = [] }

let is_write_back t = t.write_back

let inject t ~nth_write fault = Hashtbl.replace t.faults nth_write fault

let apply_fault data = function
  | Truncate_tail n ->
    let keep = max 0 (String.length data - max 0 n) in
    String.sub data 0 keep
  | Duplicate_tail n ->
    let n = min (max 0 n) (String.length data) in
    data ^ String.sub data (String.length data - n) n
  | Bit_flip bit ->
    if String.length data = 0 then data
    else begin
      let bit = max 0 (min bit ((String.length data * 8) - 1)) in
      let b = Bytes.of_string data in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (0x80 lsr (bit mod 8))));
      Bytes.to_string b
    end

let random_fault rng ~len =
  let len = max 1 len in
  match Lxu_workload.Rng.int rng 3 with
  | 0 -> Truncate_tail (1 + Lxu_workload.Rng.int rng len)
  | 1 -> Bit_flip (Lxu_workload.Rng.int rng (len * 8))
  | _ -> Duplicate_tail (1 + Lxu_workload.Rng.int rng len)

let mem_reserve (m : mem) n =
  if n > Bytes.length m.data then begin
    let cap = ref (max 256 (Bytes.length m.data)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let grown = Bytes.make !cap '\000' in
    Bytes.blit m.data 0 grown 0 m.len;
    m.data <- grown
  end

let mem_write_at (m : mem) ~off data =
  let n = String.length data in
  mem_reserve m (off + n);
  (* A positional write past the end leaves a zero-filled hole, as a
     sparse file would. *)
  if off > m.len then Bytes.fill m.data m.len (off - m.len) '\000';
  Bytes.blit_string data 0 m.data off n;
  if off + n > m.len then m.len <- off + n

let file_fd f =
  if f.closed then invalid_arg "Sim_file: device is closed";
  match f.fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.openfile f.path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    f.fd <- Some fd;
    fd

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let persist_at t ~at data =
  match (t.backing, at) with
  | Memory m, None -> mem_write_at m ~off:m.len data
  | Memory m, Some off -> mem_write_at m ~off data
  | File f, None ->
    if f.closed then invalid_arg "Sim_file.write: device is closed";
    output_string f.oc data
  | File f, Some off ->
    (* Keep the append channel's buffered bytes ahead of the positional
       write so the file never reorders them. *)
    if not f.closed then flush f.oc;
    let fd = file_fd f in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    write_all fd (Bytes.unsafe_of_string data) 0 (String.length data)

let write_gen t ~at data =
  let data =
    match Hashtbl.find_opt t.faults t.nwrites with
    | Some f -> apply_fault data f
    | None -> data
  in
  t.nwrites <- t.nwrites + 1;
  if t.write_back then begin
    (match t.backing with
    | File f when f.closed -> invalid_arg "Sim_file.write: device is closed"
    | _ -> ());
    t.pending <- { at; data } :: t.pending
  end
  else persist_at t ~at data

let write t data = write_gen t ~at:None data
let write_at t ~off data = write_gen t ~at:(Some off) data

let writes t = t.nwrites
let pending_writes t = List.length t.pending

(* Moves buffered writes into the backing (oldest first).  Does not
   fsync — the caller decides whether this is a [sync] or the lucky
   prefix of a [crash]. *)
let drain t =
  List.iter (fun w -> persist_at t ~at:w.at w.data) (List.rev t.pending);
  t.pending <- []

let flush t = match t.backing with Memory _ -> () | File f -> if not f.closed then flush f.oc

let sync t =
  drain t;
  flush t;
  match t.backing with
  | Memory _ -> ()
  | File f -> if not f.closed then Unix.fsync (Unix.descr_of_out_channel f.oc)

let crash ?(keep = 0) t =
  let n = List.length t.pending in
  let kept = max 0 (min keep n) in
  (* [pending] is newest first: the oldest [kept] writes survive. *)
  let survivors = ref [] and dropped = ref 0 in
  List.iteri
    (fun i w -> if n - i <= kept then survivors := w :: !survivors else incr dropped)
    t.pending;
  List.iter (fun w -> persist_at t ~at:w.at w.data) !survivors;
  t.pending <- [];
  flush t

let backed_size t =
  flush t;
  match t.backing with
  | Memory m -> m.len
  | File f -> (Unix.stat f.path).Unix.st_size

let size t =
  let backed = backed_size t in
  (* Replay the buffered writes over the backed length: appends extend
     the end, positional writes extend it only when they reach past. *)
  List.fold_left
    (fun acc w ->
      match w.at with
      | None -> acc + String.length w.data
      | Some off -> max acc (off + String.length w.data))
    backed (List.rev t.pending)

let durable_contents t =
  flush t;
  match t.backing with
  | Memory m -> Bytes.sub_string m.data 0 m.len
  | File f ->
    let ic = open_in_bin f.path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let contents t =
  let base = durable_contents t in
  match t.pending with
  | [] -> base
  | pending ->
    let m = { data = Bytes.of_string base; len = String.length base } in
    List.iter
      (fun w ->
        match w.at with
        | None -> mem_write_at m ~off:m.len w.data
        | Some off -> mem_write_at m ~off w.data)
      (List.rev pending);
    Bytes.sub_string m.data 0 m.len

let read_at t ~off buf =
  if off < 0 then invalid_arg "Sim_file.read_at: negative offset";
  flush t;
  let want = Bytes.length buf in
  let got =
    match t.backing with
    | Memory m ->
      let n = max 0 (min want (m.len - off)) in
      Bytes.blit m.data off buf 0 n;
      n
    | File f ->
      let fd = file_fd f in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let rec loop pos =
        if pos >= want then pos
        else
          match Unix.read fd buf pos (want - pos) with
          | 0 -> pos
          | n -> loop (pos + n)
      in
      loop 0
  in
  (* Overlay the buffered (not yet durable) writes, oldest first: a
     read through the page cache sees them, exactly like [contents]. *)
  if t.pending = [] then got
  else begin
    let backed = backed_size t in
    let got = ref got in
    let cursor = ref backed in
    List.iter
      (fun w ->
        let woff = match w.at with None -> !cursor | Some o -> o in
        let wlen = String.length w.data in
        (match w.at with None -> cursor := !cursor + wlen | Some o -> cursor := max !cursor (o + wlen));
        (* Intersection of [woff, woff+wlen) with [off, off+want). *)
        let lo = max woff off and hi = min (woff + wlen) (off + want) in
        if hi > lo then begin
          Bytes.blit_string w.data (lo - woff) buf (lo - off) (hi - lo);
          if hi - off > !got then got := hi - off
        end)
      (List.rev t.pending);
    !got
  end

let truncate_to t n =
  drain t;
  flush t;
  match t.backing with
  | Memory m -> m.len <- min n m.len
  | File f ->
    if not f.closed then close_out f.oc;
    (match f.fd with
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      f.fd <- None
    | None -> ());
    Unix.truncate f.path (min n (Unix.stat f.path).Unix.st_size);
    f.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 f.path;
    f.closed <- false

let close t =
  match t.backing with
  | Memory _ -> ()
  | File f ->
    if not f.closed then begin
      close_out f.oc;
      (match f.fd with
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        f.fd <- None
      | None -> ());
      f.closed <- true
    end

(* fsync on a directory makes renames/creates/unlinks inside it
   durable (POSIX leaves metadata ordering otherwise unspecified).
   Some filesystems reject fsync on directory fds; durability simply
   is not available there, so those errors are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
