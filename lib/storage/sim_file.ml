type fault =
  | Truncate_tail of int
  | Bit_flip of int
  | Duplicate_tail of int

type backing =
  | Memory of Buffer.t
  | File of { path : string; mutable oc : out_channel; mutable closed : bool }

type t = {
  backing : backing;
  faults : (int, fault) Hashtbl.t;
  mutable nwrites : int;
}

let in_memory () = { backing = Memory (Buffer.create 256); faults = Hashtbl.create 4; nwrites = 0 }

let open_path ?(append = false) path =
  let flags =
    [ Open_wronly; Open_creat; Open_binary ] @ if append then [ Open_append ] else [ Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  { backing = File { path; oc; closed = false }; faults = Hashtbl.create 4; nwrites = 0 }

let inject t ~nth_write fault = Hashtbl.replace t.faults nth_write fault

let apply_fault data = function
  | Truncate_tail n ->
    let keep = max 0 (String.length data - max 0 n) in
    String.sub data 0 keep
  | Duplicate_tail n ->
    let n = min (max 0 n) (String.length data) in
    data ^ String.sub data (String.length data - n) n
  | Bit_flip bit ->
    if String.length data = 0 then data
    else begin
      let bit = max 0 (min bit ((String.length data * 8) - 1)) in
      let b = Bytes.of_string data in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (0x80 lsr (bit mod 8))));
      Bytes.to_string b
    end

let random_fault rng ~len =
  let len = max 1 len in
  match Lxu_workload.Rng.int rng 3 with
  | 0 -> Truncate_tail (1 + Lxu_workload.Rng.int rng len)
  | 1 -> Bit_flip (Lxu_workload.Rng.int rng (len * 8))
  | _ -> Duplicate_tail (1 + Lxu_workload.Rng.int rng len)

let write t data =
  let data =
    match Hashtbl.find_opt t.faults t.nwrites with
    | Some f -> apply_fault data f
    | None -> data
  in
  t.nwrites <- t.nwrites + 1;
  match t.backing with
  | Memory buf -> Buffer.add_string buf data
  | File f ->
    if f.closed then invalid_arg "Sim_file.write: device is closed";
    output_string f.oc data

let writes t = t.nwrites

let flush t = match t.backing with Memory _ -> () | File f -> if not f.closed then flush f.oc

let sync t =
  flush t;
  match t.backing with
  | Memory _ -> ()
  | File f -> if not f.closed then Unix.fsync (Unix.descr_of_out_channel f.oc)

let size t =
  flush t;
  match t.backing with
  | Memory buf -> Buffer.length buf
  | File f -> (Unix.stat f.path).Unix.st_size

let contents t =
  flush t;
  match t.backing with
  | Memory buf -> Buffer.contents buf
  | File f ->
    let ic = open_in_bin f.path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let truncate_to t n =
  flush t;
  match t.backing with
  | Memory buf ->
    let keep = String.sub (Buffer.contents buf) 0 (min n (Buffer.length buf)) in
    Buffer.clear buf;
    Buffer.add_string buf keep
  | File f ->
    if not f.closed then close_out f.oc;
    Unix.truncate f.path (min n (Unix.stat f.path).Unix.st_size);
    f.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 f.path;
    f.closed <- false

let close t =
  match t.backing with
  | Memory _ -> ()
  | File f ->
    if not f.closed then begin
      close_out f.oc;
      f.closed <- true
    end
