(** Shadow-paged store: copy-on-write pages, named roots, and
    checkpoint-published double-buffered meta over a {!Page_file} and
    {!Buffer_pool}.

    The contract that makes recovery trivial: {e pages referenced by
    the last durable meta are never overwritten}.  Mutators call
    {!cow} to relocate such a page to a fresh pid first; {!checkpoint}
    flushes dirty frames, serializes the free list, syncs, and only
    then publishes a new meta page (generation [g] goes to pid
    [1 + g mod 2]) before syncing again.  A crash at any point leaves
    at least one CRC-valid meta whose referenced pages are intact;
    {!open_existing} picks the newest valid one.

    Freed pages that the durable meta still references wait in a
    pending set until the next checkpoint; pages allocated and freed
    within one epoch are recycled immediately.

    Single writer; concurrent readers may use {!with_page} (the
    buffer pool is internally synchronized). *)

type t

type stats = {
  page_size : int;
  pages : int;  (** high-water mark, including header + meta pages *)
  reusable_pages : int;
  pending_pages : int;
  fresh_pages : int;
  generation : int;
  ckpt_lsn : int;
  allocs : int;
  frees : int;
  cows : int;
  pool : Buffer_pool.stats;
}

val default_page_size : int
(** 8 KiB. *)

val create :
  device:Sim_file.t -> ?page_size:int -> ?pool_bytes:int -> unit -> t
(** Initializes a fresh store on [device]: raw geometry header at
    byte 0, generation-0 meta, one sync.  [page_size] defaults to
    {!default_page_size}; [pool_bytes] defaults to the
    [LXU_POOL_BYTES] budget. *)

val open_existing : device:Sim_file.t -> ?pool_bytes:int -> unit -> t
(** Reads the geometry header, picks the newest CRC-valid meta page,
    and rebuilds the free list from its chain.
    @raise Failure if no valid header or meta survives. *)

val close : t -> unit
(** Closes the underlying device.  Does {e not} checkpoint: unflushed
    epoch work is deliberately lost, as a crash would lose it. *)

val page_size : t -> int

val payload_bytes : t -> int
(** Bytes usable per page (page size minus the page-file header). *)

val alloc : t -> int
(** A fresh pid — reused from the free list when possible, else
    extending the file.  The page's on-disk bytes are undefined until
    written ({!write_fresh}). *)

val free : t -> int -> unit
(** Releases [pid].  Immediately reusable if allocated this epoch;
    otherwise queued until the next checkpoint.  Drops any resident
    frame without write-back. *)

val is_fresh : t -> int -> bool
(** Was [pid] allocated this epoch (and hence mutable in place)? *)

val cow : t -> int -> int
(** [cow t pid] returns a pid whose page holds the same payload and
    may be mutated: [pid] itself when fresh, else a fresh copy ([pid]
    is freed).  Callers must rewrite parent pointers to the returned
    pid. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** Read access to the page payload, pinned for the callback's
    duration.  The callback must not retain the buffer.
    @raise Page_file.Torn_page if the page fails verification. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page} but marks the frame dirty.
    @raise Invalid_argument if [pid] is not fresh — mutating a
    checkpointed page would corrupt the durable tree. *)

val write_fresh : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page_mut} for a just-allocated page: the frame starts
    zeroed instead of being read from disk. *)

val set_root : t -> string -> pid:int -> size:int -> unit
(** Publishes a named root slot (≤ 16-byte name) into the next meta.
    [size] is an opaque payload for the owner (e.g. tree cardinality). *)

val root : t -> string -> (int * int) option
(** [(pid, size)] as of the last {!set_root} (or durable meta). *)

val checkpoint : t -> lsn:int -> unit
(** Makes the current state durable and labels it with [lsn] (the WAL
    position it corresponds to): flush dirty frames → serialize free
    list → sync → publish meta → sync → promote pending frees. *)

val checkpoint_lsn : t -> int
(** The [lsn] of the newest durable meta, [-1] if never
    checkpointed. *)

val stats : t -> stats
val device : t -> Sim_file.t
val pool : t -> Buffer_pool.t
