(* Shadow-paged store: copy-on-write pages under double-buffered meta.

   Pages referenced by the last durable meta are immutable this epoch;
   mutating one relocates it to a fresh pid ({!cow}).  A checkpoint
   flushes dirty frames, serializes the free list into fresh chain
   pages, syncs, then publishes a new meta page (generation g lands on
   pid [1 + g mod 2]) and syncs again — so at every instant one of the
   two meta pages is a valid, CRC-clean root for recovery, and every
   page it references (tree pages, chain pages) is exactly as it was
   when that meta was written.

   Free-list discipline:
     - [reusable]: free per the durable meta — allocatable now.
       Overwriting one is safe: the durable tree doesn't reference it.
     - [pending]: freed this epoch but referenced by the durable meta
       (a COW'd or deleted tree page).  Not allocatable until the next
       checkpoint publishes a meta that no longer references it.
     - freeing a page allocated this epoch ([fresh]) returns it to
       [reusable] immediately — no durable state ever referenced it.
     - chain pages are allocated from high water (never from
       [reusable], keeping the protocol easy to audit) and the old
       chain joins the free set in the same checkpoint: once the new
       meta is durable, nothing can read the old chain again. *)

let magic = "LXPGSTR1"
let version = 1
let header_len = 20 (* magic + version u32 + page_size u32 + crc u32 *)
let default_page_size = 8192

type root_info = { mutable r_pid : int; mutable r_size : int }

type stats = {
  page_size : int;
  pages : int;  (* high-water mark, includes header + meta pages *)
  reusable_pages : int;
  pending_pages : int;
  fresh_pages : int;
  generation : int;
  ckpt_lsn : int;
  allocs : int;
  frees : int;
  cows : int;
  pool : Buffer_pool.stats;
}

type t = {
  pf : Page_file.t;
  pool : Buffer_pool.t;
  mutable gen : int;
  mutable ckpt_lsn : int;  (* -1 until the first checkpoint *)
  mutable high_water : int;
  mutable reusable : int list;
  mutable pending : int list;
  mutable chain : int list;  (* pids holding the durable free list *)
  fresh : (int, unit) Hashtbl.t;
  roots : (string, root_info) Hashtbl.t;
  mutable allocs : int;
  mutable frees : int;
  mutable cows : int;
}

(* --- word access into page payloads (int64 LE; pids/sizes fit) --- *)

let get_w b i = Int64.to_int (Bytes.get_int64_le b (i * 8))
let set_w b i v = Bytes.set_int64_le b (i * 8) (Int64.of_int v)

let payload_bytes t = Page_file.payload_bytes t.pf
let payload_ints t = payload_bytes t / 8
let page_size t = Page_file.page_size t.pf

(* --- raw header at byte 0 (readable before geometry is known) --- *)

let put_u32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get_u32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let write_header device ~page_size =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 8;
  put_u32 b 8 version;
  put_u32 b 12 page_size;
  put_u32 b 16 (Crc32.bytes_sub b ~pos:0 ~len:16);
  Sim_file.write_at device ~off:0 (Bytes.to_string b)

let read_header device =
  let b = Bytes.create header_len in
  let got = Sim_file.read_at device ~off:0 b in
  if got < header_len then failwith "Page_store: short header";
  if Bytes.sub_string b 0 8 <> magic then failwith "Page_store: bad magic";
  if get_u32 b 16 <> Crc32.bytes_sub b ~pos:0 ~len:16 then
    failwith "Page_store: header crc mismatch";
  let v = get_u32 b 8 in
  if v <> version then failwith (Printf.sprintf "Page_store: version %d unsupported" v);
  get_u32 b 12

(* --- meta page (pid 1 + gen mod 2) ---
   words: 0 gen | 1 ckpt_lsn | 2 high_water | 3 chain head (-1) |
          4 free count | 5 root count; then per root 32 bytes:
          16-byte zero-padded name, pid word, size word. *)

let meta_fixed_bytes = 6 * 8
let root_entry_bytes = 32
let meta_pid ~gen = 1 + (gen land 1)

let write_meta t =
  let b = Bytes.make (payload_bytes t) '\000' in
  set_w b 0 t.gen;
  set_w b 1 t.ckpt_lsn;
  set_w b 2 t.high_water;
  (match t.chain with
  | [] -> set_w b 3 (-1)
  | head :: _ -> set_w b 3 head);
  set_w b 4 (List.length t.reusable);
  set_w b 5 (Hashtbl.length t.roots);
  let need = meta_fixed_bytes + (root_entry_bytes * Hashtbl.length t.roots) in
  if need > payload_bytes t then
    failwith (Printf.sprintf "Page_store: %d roots overflow a %d-byte meta page"
                (Hashtbl.length t.roots) (payload_bytes t));
  let off = ref meta_fixed_bytes in
  Hashtbl.iter
    (fun name r ->
      if String.length name > 16 then failwith "Page_store: root name longer than 16 bytes";
      Bytes.blit_string name 0 b !off (String.length name);
      set_w b ((!off / 8) + 2) r.r_pid;
      set_w b ((!off / 8) + 3) r.r_size;
      off := !off + root_entry_bytes)
    t.roots;
  Page_file.write t.pf (meta_pid ~gen:t.gen) b

let parse_meta b =
  let gen = get_w b 0 in
  let lsn = get_w b 1 in
  let hw = get_w b 2 in
  let chain_head = get_w b 3 in
  let nroots = get_w b 5 in
  let roots = Hashtbl.create 8 in
  for i = 0 to nroots - 1 do
    let off = meta_fixed_bytes + (i * root_entry_bytes) in
    let raw = Bytes.sub_string b off 16 in
    let name =
      match String.index_opt raw '\000' with
      | Some z -> String.sub raw 0 z
      | None -> raw
    in
    Hashtbl.replace roots name
      { r_pid = get_w b ((off / 8) + 2); r_size = get_w b ((off / 8) + 3) }
  done;
  (gen, lsn, hw, chain_head, roots)

(* --- free-list chain: [next_pid][count][pid...] per page --- *)

let chain_cap t = payload_ints t - 2

let write_chain t pids =
  (* Fresh chain pages come from high water so they can't collide with
     anything the durable meta references. *)
  let cap = chain_cap t in
  let rec go pids =
    match pids with
    | [] -> (-1, [])
    | _ ->
      let n = min cap (List.length pids) in
      let rec split i acc rest = if i = 0 then (List.rev acc, rest)
        else match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (i - 1) (x :: acc) tl
      in
      let here, rest = split n [] pids in
      let next_head, next_pages = go rest in
      let pid = t.high_water in
      t.high_water <- t.high_water + 1;
      let b = Bytes.make (payload_bytes t) '\000' in
      set_w b 0 next_head;
      set_w b 1 n;
      List.iteri (fun i p -> set_w b (2 + i) p) here;
      Page_file.write t.pf pid b;
      (pid, pid :: next_pages)
  in
  go pids

let read_chain t head =
  let b = Bytes.create (payload_bytes t) in
  let rec go pid pids pages =
    if pid < 0 then (pids, List.rev pages)
    else begin
      Page_file.read t.pf pid b;
      let next = get_w b 0 in
      let n = get_w b 1 in
      let pids = ref pids in
      for i = 0 to n - 1 do
        pids := get_w b (2 + i) :: !pids
      done;
      go next !pids (pid :: pages)
    end
  in
  go head [] []

(* --- lifecycle --- *)

let create ~device ?(page_size = default_page_size) ?pool_bytes () =
  if page_size < Page_file.min_page_size then
    invalid_arg "Page_store.create: page_size too small";
  let pf = Page_file.create ~device ~page_size in
  let pool = Buffer_pool.create ?max_bytes:pool_bytes pf in
  let t =
    { pf; pool; gen = 0; ckpt_lsn = -1; high_water = 3; reusable = []; pending = [];
      chain = []; fresh = Hashtbl.create 64; roots = Hashtbl.create 8; allocs = 0;
      frees = 0; cows = 0 }
  in
  write_header device ~page_size;
  write_meta t;
  Sim_file.sync device;
  t

let open_existing ~device ?pool_bytes () =
  let page_size = read_header device in
  let pf = Page_file.create ~device ~page_size in
  let pool = Buffer_pool.create ?max_bytes:pool_bytes pf in
  let read_meta pid =
    let b = Bytes.create (Page_file.payload_bytes pf) in
    match Page_file.read pf pid b with
    | () -> Some (parse_meta b)
    | exception Page_file.Torn_page _ -> None
  in
  let best =
    match (read_meta 1, read_meta 2) with
    | None, None -> failwith "Page_store: no valid meta page"
    | Some m, None | None, Some m -> m
    | Some ((g1, _, _, _, _) as m1), Some ((g2, _, _, _, _) as m2) ->
      if g1 >= g2 then m1 else m2
  in
  let gen, ckpt_lsn, high_water, chain_head, roots = best in
  let t =
    { pf; pool; gen; ckpt_lsn; high_water; reusable = []; pending = []; chain = [];
      fresh = Hashtbl.create 64; roots; allocs = 0; frees = 0; cows = 0 }
  in
  let pids, chain_pages = read_chain t chain_head in
  t.reusable <- pids;
  t.chain <- chain_pages;
  t

let close t =
  Sim_file.close (Page_file.device t.pf)

(* --- allocation / copy-on-write --- *)

let alloc t =
  t.allocs <- t.allocs + 1;
  let pid =
    match t.reusable with
    | pid :: rest ->
      t.reusable <- rest;
      pid
    | [] ->
      let pid = t.high_water in
      t.high_water <- t.high_water + 1;
      pid
  in
  Hashtbl.replace t.fresh pid ();
  pid

let is_fresh t pid = Hashtbl.mem t.fresh pid

let free t pid =
  t.frees <- t.frees + 1;
  Buffer_pool.drop t.pool pid;
  if Hashtbl.mem t.fresh pid then begin
    Hashtbl.remove t.fresh pid;
    t.reusable <- pid :: t.reusable
  end
  else t.pending <- pid :: t.pending

(* --- page access (pin/unpin bracketed) --- *)

let with_page t pid f =
  let frame = Buffer_pool.pin t.pool pid ~read:true in
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin t.pool frame)
    (fun () -> f frame.Buffer_pool.buf)

let with_page_mut t pid f =
  if not (Hashtbl.mem t.fresh pid) then
    invalid_arg "Page_store.with_page_mut: page is not fresh (cow it first)";
  let frame = Buffer_pool.pin t.pool pid ~read:true in
  Buffer_pool.mark_dirty t.pool frame;
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin t.pool frame)
    (fun () -> f frame.Buffer_pool.buf)

let write_fresh t pid f =
  if not (Hashtbl.mem t.fresh pid) then
    invalid_arg "Page_store.write_fresh: page is not fresh";
  let frame = Buffer_pool.pin t.pool pid ~read:false in
  Buffer_pool.mark_dirty t.pool frame;
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin t.pool frame)
    (fun () -> f frame.Buffer_pool.buf)

let cow t pid =
  if Hashtbl.mem t.fresh pid then pid
  else begin
    t.cows <- t.cows + 1;
    let fresh_pid = alloc t in
    let src = Buffer_pool.pin t.pool pid ~read:true in
    let copied =
      match
        let dst = Buffer_pool.pin t.pool fresh_pid ~read:false in
        Bytes.blit src.Buffer_pool.buf 0 dst.Buffer_pool.buf 0 (payload_bytes t);
        Buffer_pool.mark_dirty t.pool dst;
        Buffer_pool.unpin t.pool dst
      with
      | () -> Ok ()
      | exception e -> Error e
    in
    Buffer_pool.unpin t.pool src;
    (match copied with Ok () -> () | Error e -> raise e);
    free t pid;
    fresh_pid
  end

(* --- roots --- *)

let set_root t name ~pid ~size =
  if String.length name > 16 then invalid_arg "Page_store.set_root: name longer than 16 bytes";
  match Hashtbl.find_opt t.roots name with
  | Some r ->
    r.r_pid <- pid;
    r.r_size <- size
  | None -> Hashtbl.replace t.roots name { r_pid = pid; r_size = size }

let root t name =
  match Hashtbl.find_opt t.roots name with
  | Some r -> Some (r.r_pid, r.r_size)
  | None -> None

(* --- checkpoint --- *)

let checkpoint t ~lsn =
  (* Everything freeable once the new meta is durable: pages already
     allocatable, pages freed this epoch, and the old chain itself. *)
  let future_free = t.reusable @ t.pending @ t.chain in
  let chain_head, chain_pages = write_chain t future_free in
  ignore chain_head;
  Buffer_pool.flush_all t.pool;
  Sim_file.sync (Page_file.device t.pf);
  t.gen <- t.gen + 1;
  t.ckpt_lsn <- lsn;
  t.chain <- chain_pages;
  t.reusable <- future_free;
  t.pending <- [];
  write_meta t;
  Sim_file.sync (Page_file.device t.pf);
  Hashtbl.reset t.fresh

let checkpoint_lsn t = t.ckpt_lsn

let stats t =
  { page_size = page_size t; pages = t.high_water; reusable_pages = List.length t.reusable;
    pending_pages = List.length t.pending; fresh_pages = Hashtbl.length t.fresh;
    generation = t.gen; ckpt_lsn = t.ckpt_lsn; allocs = t.allocs; frees = t.frees;
    cows = t.cows; pool = Buffer_pool.stats t.pool }

let device t = Page_file.device t.pf
let pool t = t.pool
