(* Root module of the storage library.  The page layer lives in
   [Lxu_storage_core] (below the B+-tree library, which needs it);
   re-exporting it here keeps [Lxu_storage.Sim_file] etc. working for
   every existing caller. *)

module Crc32 = Lxu_storage_core.Crc32
module Sim_file = Lxu_storage_core.Sim_file
module Page_file = Lxu_storage_core.Page_file
module Buffer_pool = Lxu_storage_core.Buffer_pool
module Page_store = Lxu_storage_core.Page_store
module Wal = Wal
module Wal_store = Wal_store
module Recovery = Recovery
