(** Crash recovery: rebuild an update log from [snapshot + WAL
    suffix].

    The snapshot (a checkpoint) carries the LSN it was taken at;
    replay applies only WAL records {e past} that LSN and stops —
    without failing — at the first record the {!Wal.scan} validator or
    the replay itself rejects, so a torn or corrupt tail costs exactly
    the operations it contained and nothing before them.  Every error
    message names the file (when known) and the byte offset. *)

type report = {
  snapshot_lsn : int;  (** 0 when recovering without a snapshot *)
  records_total : int;  (** valid records seen in the WAL *)
  records_applied : int;
  records_skipped : int;  (** LSN at or below the snapshot's *)
  valid_bytes : int;  (** WAL prefix worth keeping, header included *)
  total_bytes : int;  (** WAL bytes on disk before repair *)
  corruption : string option;  (** why replay stopped early, if it did *)
  last_lsn : int;  (** state LSN after recovery; next record is [last_lsn + 1] *)
}

(** {1 Checkpoint snapshots} *)

val write_snapshot : path:string -> lsn:int -> Lxu_seglog.Update_log.t -> unit
(** Writes ["LXUCKPT1 lsn <n>"] followed by the
    {!Lxu_seglog.Update_log.save} payload, via the full atomic-rename
    protocol: temp file, file fsync, rename into place, directory
    fsync.  A crash at any point leaves either the previous snapshot
    or the new one, durably — never a torn file, and never a rename
    that a power cut can roll back after the WAL was truncated on its
    strength. *)

val read_snapshot :
  ?pstore:Lxu_storage_core.Page_store.t -> path:string -> unit -> int * Lxu_seglog.Update_log.t
(** With [pstore], the loaded log keeps its indexes on pages in that
    store: {e attached} as-is when the store's durable checkpoint LSN
    equals the snapshot's (the page checkpoint and the snapshot were
    taken together and both survived), rebuilt into the store
    otherwise — a crash between the two leaves an LSN mismatch and a
    sound, slower rebuild.
    @raise Failure on a malformed snapshot; the message includes
    [path] and the byte offset. *)

(** {1 Replay} *)

val replay :
  ?pstore:Lxu_storage_core.Page_store.t ->
  Lxu_seglog.Update_log.t -> Wal.op -> Lxu_seglog.Update_log.t
(** Applies one logged operation.  Returns the log to use from now on
    — [Rebuild] replaces it with a freshly indexed one, mirroring
    {!Lazy_db.rebuild}.
    @raise Invalid_argument or [Parse_error] on a semantically
    impossible record (which {!recover_bytes} treats as corruption). *)

val recover_bytes :
  ?pstore:Lxu_storage_core.Page_store.t ->
  ?path:string ->
  ?base:int * Lxu_seglog.Update_log.t ->
  ?upto_lsn:int ->
  string ->
  Lxu_seglog.Update_log.t * report
(** [recover_bytes wal_bytes] scans and replays captured WAL bytes in
    memory.  [base] is the checkpoint state [(lsn, log)] to start
    from; without it replay starts from an empty log configured by
    the WAL header.  The [base] log is mutated in place (pass a
    private copy).

    [upto_lsn] (default: everything) is the point-in-time restore
    bound: valid records with a higher LSN are skipped, not treated as
    corruption, so the result is the committed state exactly as of
    [upto_lsn].  [report.last_lsn] still reflects the last record
    {e applied}, and [valid_bytes] the full valid prefix — a
    restore-bounded replay never truncates history.
    @raise Failure only on an unreadable WAL header (see
    {!Wal.scan}). *)
