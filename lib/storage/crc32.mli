(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the per-record
    checksum of the write-ahead log.  Pure OCaml, table-driven; values
    are non-negative ints in [0, 2{^32}).  The reference check value
    is [string "123456789" = 0xCBF43926]. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of the byte range [pos, pos+len).
    @raise Invalid_argument on an out-of-bounds range. *)

val string : string -> int
(** Checksum of the whole string. *)

val bytes_sub : bytes -> pos:int -> len:int -> int
(** Checksum of a byte range of a mutable buffer (no copy; the buffer
    must not be mutated concurrently).
    @raise Invalid_argument on an out-of-bounds range. *)
