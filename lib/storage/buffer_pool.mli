(** Buffer pool: the RAM residency layer between page users (the
    paged B+-trees) and a {!Page_file}.

    Frames hold page payloads; users {!pin} a page to get its frame
    (faulting it in on miss), read or mutate [frame.buf] while pinned,
    and {!unpin} it when done, calling {!mark_dirty} after mutation.
    Unpinned frames stay resident and are evicted coldest-first
    (intrusive LRU, as in [Seg_cache]) once residency exceeds the byte
    budget — dirty victims are written back first.  The budget comes
    from [LXU_POOL_BYTES] (default 16 MiB) unless overridden.

    All operations are thread-safe under one mutex; the frame contents
    themselves are not synchronized (the tree layers guarantee readers
    and the writer don't overlap on a page, matching the seglog's
    single-writer discipline). *)

type frame = private {
  f_pid : int;
  buf : bytes;  (** page payload; stable while the frame is resident *)
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;
  mutable next : frame option;
}

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  frames : int;
  dirty_frames : int;
  pinned_frames : int;
  bytes : int;
  max_bytes : int;
}

type t

val default_max_bytes : unit -> int
(** [LXU_POOL_BYTES] if set and parseable, else 16 MiB. *)

val create : ?max_bytes:int -> Page_file.t -> t
(** [max_bytes] is clamped up to 4 pages (a descent must fit). *)

val max_bytes : t -> int

val pin : t -> int -> read:bool -> frame
(** [pin t pid ~read] returns the pinned frame for [pid].  On a miss
    with [read = true] the page is read from the file (raising
    {!Page_file.Torn_page} as appropriate); with [read = false] the
    frame starts zeroed — for fresh pages about to be written.
    Eviction to budget happens here and never touches pinned frames;
    if everything is pinned the pool temporarily exceeds the budget. *)

val unpin : t -> frame -> unit
(** @raise Invalid_argument if the frame is not pinned. *)

val mark_dirty : t -> frame -> unit
(** The frame's payload was mutated; it will be written back on
    eviction or {!flush_all}. *)

val drop : t -> int -> unit
(** Forget page [pid] without write-back — it was freed and its bytes
    are dead.  No-op when not resident.
    @raise Invalid_argument if the frame is pinned. *)

val flush_all : t -> unit
(** Write back every dirty frame (they stay resident and clean).
    Checkpoint calls this before syncing the device. *)

val stats : t -> stats
val file : t -> Page_file.t
