let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub: range out of bounds";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = sub s ~pos:0 ~len:(String.length s)

(* The page layer checksums mutable page buffers in place; the bytes
   are not mutated while the checksum runs, so the unsafe cast is
   sound and avoids copying a page per write. *)
let bytes_sub b ~pos ~len = sub (Bytes.unsafe_to_string b) ~pos ~len
