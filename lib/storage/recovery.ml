open Lxu_storage_core
open Lxu_seglog

type report = {
  snapshot_lsn : int;
  records_total : int;
  records_applied : int;
  records_skipped : int;
  valid_bytes : int;
  total_bytes : int;
  corruption : string option;
  last_lsn : int;
}

(* --- checkpoint snapshots -------------------------------------------- *)

let snapshot_magic = "LXUCKPT1"

(* The full atomic-rename protocol: write to a temp file, fsync it,
   rename over the target, fsync the directory.  Without the file
   fsync the rename can land before the data; without the directory
   fsync the rename itself can be lost — either way a crash could
   leave a snapshot that claims LSN [lsn] but does not hold it, and a
   later WAL truncation would then destroy the only copy of those
   records. *)
let write_snapshot ~path ~lsn log =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s lsn %d\n" snapshot_magic lsn;
     Update_log.save log oc;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Sim_file.fsync_dir (Filename.dirname path)

(* With a page store at hand, the snapshot's indexes may live there
   already: attach when the store's durable checkpoint carries exactly
   this snapshot's LSN, otherwise rebuild into the store from scratch
   (the crash fell between the page checkpoint and the snapshot
   rename, or vice versa — either way the WAL replays the difference
   on top of a consistent base). *)
let backend_for ?pstore lsn =
  match pstore with
  | None -> Lxu_btree.Storage_backend.Mem
  | Some ps ->
    Lxu_btree.Storage_backend.Paged
      { store = ps; attach = Page_store.checkpoint_lsn ps = lsn }

let read_snapshot ?pstore ~path () =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail msg = failwith (Printf.sprintf "%s: %s (at byte %d)" path msg (pos_in ic)) in
      let first = try input_line ic with End_of_file -> fail "truncated checkpoint header" in
      let lsn =
        try Scanf.sscanf first "LXUCKPT1 lsn %d%!" Fun.id
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "not a lazyxml checkpoint"
      in
      if lsn < 0 then fail "negative checkpoint lsn";
      (* Update_log.load's messages already carry the byte offset. *)
      let log =
        try Update_log.load ~backend:(backend_for ?pstore lsn) ic
        with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
      in
      (lsn, log))

(* --- replay ----------------------------------------------------------- *)

let replay ?pstore log (op : Wal.op) =
  match op with
  | Wal.Insert { gp; text } ->
    ignore (Update_log.insert log ~gp text);
    log
  | Wal.Remove { gp; len } ->
    Update_log.remove log ~gp ~len;
    log
  | Wal.Pack { gp; len } ->
    (* Mirrors Lazy_db.pack_subtree: re-index the byte range as one
       segment. *)
    let whole = Update_log.materialize log in
    if gp < 0 || len <= 0 || gp + len > String.length whole then
      invalid_arg "Recovery.replay: pack range out of bounds";
    let slice = String.sub whole gp len in
    Update_log.remove log ~gp ~len;
    ignore (Update_log.insert log ~gp slice);
    log
  | Wal.Rebuild ->
    let whole = Update_log.materialize log in
    let backend =
      match pstore with
      | None -> Lxu_btree.Storage_backend.Mem
      | Some ps -> Lxu_btree.Storage_backend.Paged { store = ps; attach = false }
    in
    let fresh =
      Update_log.create ~mode:(Update_log.mode log)
        ~index_attributes:(Update_log.indexes_attributes log) ~backend ()
    in
    if whole <> "" then ignore (Update_log.insert fresh ~gp:0 whole);
    fresh

let recover_bytes ?pstore ?path ?base ?(upto_lsn = max_int) wal_bytes =
  let scan = Wal.scan ?path wal_bytes in
  let snapshot_lsn, log0 =
    match base with
    | Some (lsn, log) -> (lsn, log)
    | None ->
      let backend =
        match pstore with
        | None -> Lxu_btree.Storage_backend.Mem
        | Some ps -> Lxu_btree.Storage_backend.Paged { store = ps; attach = false }
      in
      ( 0,
        Update_log.create ~mode:scan.Wal.header.Wal.mode
          ~index_attributes:scan.Wal.header.Wal.index_attributes ~backend () )
  in
  let log = ref log0 in
  let applied = ref 0 and skipped = ref 0 in
  let valid = ref scan.Wal.valid_bytes and note = ref scan.Wal.corruption in
  let last_lsn = ref snapshot_lsn in
  (* End offset of the last record kept; replay failure truncates to it. *)
  let prev_end = ref Wal.header_bytes in
  (try
     List.iter
       (fun (r : Wal.record) ->
         if r.Wal.lsn <= snapshot_lsn then begin
           incr skipped;
           prev_end := r.Wal.end_off
         end
         else if r.Wal.lsn > upto_lsn then
           (* Point-in-time restore: the record is valid but beyond the
              requested LSN.  Not corruption — just history the caller
              does not want. *)
           incr skipped
         else begin
           match replay ?pstore !log r.Wal.op with
           | l ->
             log := l;
             incr applied;
             last_lsn := r.Wal.lsn;
             prev_end := r.Wal.end_off
           | exception e ->
             (* A record that passes the checksum but cannot replay is
                corruption all the same: keep everything before it. *)
             note :=
               Some
                 (Printf.sprintf "replay of lsn %d failed: %s" r.Wal.lsn (Printexc.to_string e));
             valid := !prev_end;
             raise Exit
         end)
       scan.Wal.records
   with Exit -> ());
  ( !log,
    {
      snapshot_lsn;
      records_total = List.length scan.Wal.records;
      records_applied = !applied;
      records_skipped = !skipped;
      valid_bytes = !valid;
      total_bytes = scan.Wal.total_bytes;
      corruption = !note;
      last_lsn = !last_lsn;
    } )
