(* Buffer pool over a Page_file: pinned frames, dirty tracking, LRU
   eviction under a byte budget — the same intrusive doubly-linked LRU
   discipline as Seg_cache (head = hot, tail = cold, one mutex), with
   pins replacing epochs as the "may not evict" condition. *)

type frame = {
  f_pid : int;
  buf : bytes;  (* the page payload; stable address while resident *)
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;  (* toward head *)
  mutable next : frame option;  (* toward tail *)
}

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  frames : int;
  dirty_frames : int;
  pinned_frames : int;
  bytes : int;
  max_bytes : int;
}

type t = {
  file : Page_file.t;
  limit : int;
  mu : Mutex.t;
  tbl : (int, frame) Hashtbl.t;
  mutable head : frame option;
  mutable tail : frame option;
  mutable bytes : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

let default_max_bytes () =
  match Sys.getenv_opt "LXU_POOL_BYTES" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some b -> b | None -> 16 * 1024 * 1024)
  | None -> 16 * 1024 * 1024

let create ?max_bytes file =
  let limit =
    match max_bytes with Some b -> max b (4 * Page_file.page_size file) | None -> default_max_bytes ()
  in
  { file; limit; mu = Mutex.create (); tbl = Hashtbl.create 256; head = None; tail = None;
    bytes = 0; lookups = 0; hits = 0; misses = 0; evictions = 0; writebacks = 0 }

let max_bytes t = t.limit

(* What one resident frame charges against the budget: the payload
   array (length + header word) plus the frame record, hash slot and
   LRU links — the same actual-words accounting Seg_cache uses. *)
let frame_bytes t = Page_file.payload_bytes t.file + 8 + (8 * 8) + (3 * 8)

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.prev <- None;
  f.next <- t.head;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let write_back t f =
  if f.dirty then begin
    Page_file.write t.file f.f_pid f.buf;
    f.dirty <- false;
    t.writebacks <- t.writebacks + 1
  end

(* Evict cold unpinned frames until the budget holds.  Pinned frames
   are skipped; when everything resident is pinned the pool runs over
   budget rather than deadlock (pins are short-lived: a descent holds
   O(tree height) pages). *)
let evict_to_budget t =
  let rec loop candidate =
    if t.bytes > t.limit then
      match candidate with
      | None -> ()
      | Some f ->
        let colder = f.prev in
        if f.pins = 0 then begin
          write_back t f;
          unlink t f;
          Hashtbl.remove t.tbl f.f_pid;
          t.bytes <- t.bytes - frame_bytes t;
          t.evictions <- t.evictions + 1
        end;
        loop colder
  in
  loop t.tail

(* [pin t pid ~read] returns the (pinned) resident frame for [pid],
   faulting it in from the page file when absent.  With [read = false]
   the frame starts zeroed instead of being read — for pages being
   written for the first time.  Raises whatever Page_file.read raises
   (Torn_page) with the pool state intact. *)
let pin t pid ~read =
  Mutex.lock t.mu;
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.tbl pid with
  | Some f ->
    t.hits <- t.hits + 1;
    f.pins <- f.pins + 1;
    if t.head != Some f then begin
      unlink t f;
      push_front t f
    end;
    Mutex.unlock t.mu;
    f
  | None ->
    t.misses <- t.misses + 1;
    let f =
      { f_pid = pid; buf = Bytes.make (Page_file.payload_bytes t.file) '\000'; dirty = false;
        pins = 1; prev = None; next = None }
    in
    (if read then
       try Page_file.read t.file pid f.buf
       with e ->
         Mutex.unlock t.mu;
         raise e);
    Hashtbl.replace t.tbl pid f;
    push_front t f;
    t.bytes <- t.bytes + frame_bytes t;
    evict_to_budget t;
    Mutex.unlock t.mu;
    f

let unpin t f =
  Mutex.lock t.mu;
  if f.pins <= 0 then begin
    Mutex.unlock t.mu;
    invalid_arg "Buffer_pool.unpin: frame is not pinned"
  end;
  f.pins <- f.pins - 1;
  Mutex.unlock t.mu

let mark_dirty t f =
  Mutex.lock t.mu;
  f.dirty <- true;
  Mutex.unlock t.mu

(* Forget page [pid] without writing it back — its contents became
   irrelevant (the page was freed).  No-op when not resident. *)
let drop t pid =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.tbl pid with
  | None -> ()
  | Some f ->
    if f.pins > 0 then begin
      Mutex.unlock t.mu;
      invalid_arg "Buffer_pool.drop: frame is pinned"
    end;
    unlink t f;
    Hashtbl.remove t.tbl pid;
    t.bytes <- t.bytes - frame_bytes t
  );
  Mutex.unlock t.mu

let flush_all t =
  Mutex.lock t.mu;
  Hashtbl.iter (fun _ f -> write_back t f) t.tbl;
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let dirty = ref 0 and pinned = ref 0 in
  Hashtbl.iter
    (fun _ f ->
      if f.dirty then incr dirty;
      if f.pins > 0 then incr pinned)
    t.tbl;
  let s =
    { lookups = t.lookups; hits = t.hits; misses = t.misses; evictions = t.evictions;
      writebacks = t.writebacks; frames = Hashtbl.length t.tbl; dirty_frames = !dirty;
      pinned_frames = !pinned; bytes = t.bytes; max_bytes = t.limit }
  in
  Mutex.unlock t.mu;
  s

let file t = t.file
